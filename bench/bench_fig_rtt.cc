// Fig. 5-6 (reconstructed numbering): fairness under heterogeneous
// round-trip times. Four sessions share one 150 Mb/s link with access
// delays spanning three orders of magnitude.
//
// Paper shape: explicit-rate feedback makes the allocation independent
// of RTT — all sessions converge to u*C/(n+1); only the convergence
// *speed* of the long-RTT session differs.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

int main() {
  exp::print_header("Fig 5-6", "RTT-independence of the allocation");

  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  const Time delays[] = {Time::us(2), Time::us(20), Time::us(200),
                         Time::ms(2)};
  for (const Time d : delays) net.add_session(sw, {}, dest, {}, d);

  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  probe.mark();
  sim.run_until(Time::ms(600));
  const auto rates = probe.rates_mbps();

  exp::Table table{{"session", "access delay", "RTT (approx)",
                    "goodput (Mb/s)", "ideal"}};
  const char* rtts[] = {"~8 us", "~80 us", "~0.8 ms", "~8 ms"};
  for (std::size_t s = 0; s < rates.size(); ++s) {
    table.add_row({std::to_string(s), delays[s].to_string(), rtts[s],
                   exp::Table::num(rates[s]), exp::Table::num(0.95 * 150 / 5)});
  }
  table.print();
  std::printf("\nJain index: %.4f (1.0 = RTT plays no role)\n",
              stats::jain_index(rates));
  return 0;
}
