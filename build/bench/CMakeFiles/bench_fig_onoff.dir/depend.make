# Empty dependencies file for bench_fig_onoff.
# This may be replaced when dependencies are built.
