file(REMOVE_RECURSE
  "CMakeFiles/phantom_tcp.dir/packet_port.cc.o"
  "CMakeFiles/phantom_tcp.dir/packet_port.cc.o.d"
  "CMakeFiles/phantom_tcp.dir/phantom_policies.cc.o"
  "CMakeFiles/phantom_tcp.dir/phantom_policies.cc.o.d"
  "CMakeFiles/phantom_tcp.dir/red_policy.cc.o"
  "CMakeFiles/phantom_tcp.dir/red_policy.cc.o.d"
  "CMakeFiles/phantom_tcp.dir/router.cc.o"
  "CMakeFiles/phantom_tcp.dir/router.cc.o.d"
  "CMakeFiles/phantom_tcp.dir/tcp_network.cc.o"
  "CMakeFiles/phantom_tcp.dir/tcp_network.cc.o.d"
  "CMakeFiles/phantom_tcp.dir/tcp_sender.cc.o"
  "CMakeFiles/phantom_tcp.dir/tcp_sender.cc.o.d"
  "CMakeFiles/phantom_tcp.dir/tcp_sink.cc.o"
  "CMakeFiles/phantom_tcp.dir/tcp_sink.cc.o.d"
  "CMakeFiles/phantom_tcp.dir/vegas.cc.o"
  "CMakeFiles/phantom_tcp.dir/vegas.cc.o.d"
  "libphantom_tcp.a"
  "libphantom_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
