#include "atm/buffer_manager.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace phantom::atm {

void BufferConfig::validate() const {
  if (budget_cells < 1)
    throw std::invalid_argument{"buffer budget must be at least 1 cell"};
  if (guaranteed_fraction < 0.0 || guaranteed_fraction >= 1.0)
    throw std::invalid_argument{"guaranteed_fraction must be in [0, 1)"};
  if (alpha <= 0.0)
    throw std::invalid_argument{"alpha must be positive"};
  if (epd_fraction <= 0.0 || epd_fraction >= 1.0)
    throw std::invalid_argument{"epd_fraction must be in (0, 1)"};
  if (shed_fraction < epd_fraction || shed_fraction >= 1.0)
    throw std::invalid_argument{
        "shed_fraction must be in [epd_fraction, 1)"};
}

std::string to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNormal: return "normal";
    case DegradationLevel::kEarlyDiscard: return "early-discard";
    case DegradationLevel::kShedding: return "shedding";
    case DegradationLevel::kExhausted: return "exhausted";
  }
  return "?";
}

BufferManager::BufferManager(BufferConfig config) : config_{config} {
  config_.validate();
}

int BufferManager::register_port() {
  port_in_use_.push_back(0);
  return static_cast<int>(port_in_use_.size()) - 1;
}

std::size_t BufferManager::effective_budget() const {
  const auto eff = static_cast<std::size_t>(
      static_cast<double>(config_.budget_cells) * squeeze_fraction_);
  return std::max<std::size_t>(1, eff);
}

std::size_t BufferManager::cells_in_use(int port) const {
  assert(port >= 0 && static_cast<std::size_t>(port) < port_in_use_.size());
  return port_in_use_[static_cast<std::size_t>(port)];
}

DegradationLevel BufferManager::level() const {
  const std::size_t e = effective_budget();
  if (in_use_ >= e) return DegradationLevel::kExhausted;
  const double occupancy =
      static_cast<double>(in_use_) / static_cast<double>(e);
  if (occupancy >= config_.shed_fraction) return DegradationLevel::kShedding;
  if (occupancy >= config_.epd_fraction)
    return DegradationLevel::kEarlyDiscard;
  return DegradationLevel::kNormal;
}

void BufferManager::note_level() {
  worst_level_ = std::max(worst_level_, level());
}

void BufferManager::set_vc_mcr(int vc, sim::Rate mcr, sim::Time now) {
  VcState& st = vcs_[vc];
  st.mcr_cells_per_sec = mcr.cells_per_second();
  st.last_refill = now;
  st.tokens = st.token_cap;  // a fresh contract starts with full credit
}

bool BufferManager::evict_vc(int vc) { return vcs_.erase(vc) > 0; }

void BufferManager::squeeze(double fraction) {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument{"squeeze fraction must be in (0, 1]"};
  squeeze_fraction_ = fraction;
  // Cells buffered under the old budget drain at line rate; until they
  // do, the budget invariant allows exactly today's occupancy and the
  // allowance only ever shrinks.
  grace_ = in_use_ > effective_budget() ? in_use_ : 0;
  note_level();
}

bool BufferManager::frame_fits_mcr(VcState& st, const Cell& cell,
                                   sim::Time now) {
  if (st.mcr_cells_per_sec <= 0.0) return false;
  // Token bucket at the admitted MCR, frame-granular: the whole frame is
  // judged at its first cell so MCR protection never splits a frame
  // (EPD's whole point). Two frames of burst tolerance absorb the
  // RM-cell interleaving and pacing jitter of a source holding exactly
  // its MCR.
  st.token_cap = std::max(2.0, 2.0 * static_cast<double>(cell.frame_len));
  st.tokens = std::min(
      st.token_cap,
      st.tokens + st.mcr_cells_per_sec * (now - st.last_refill).seconds());
  st.last_refill = now;
  const auto need = static_cast<double>(cell.frame_len);
  if (st.tokens < need) return false;
  st.tokens -= need;
  return true;
}

void BufferManager::account_accept(int port, const Cell& cell) {
  ++in_use_;
  ++port_in_use_[static_cast<std::size_t>(port)];
  peak_ = std::max(peak_, in_use_);
  ++accepted_;
  (void)cell;
  note_level();
}

BufferManager::Verdict BufferManager::admit(int port, const Cell& cell,
                                            sim::Time now) {
  assert(port >= 0 && static_cast<std::size_t>(port) < port_in_use_.size());
  const std::size_t budget = effective_budget();
  const bool exhausted = in_use_ >= budget;

  // Guaranteed-class and RM cells skip the frame machinery: CBR/VBR
  // carries no frames here, and RM cells are the control loop itself —
  // both yield only to true exhaustion.
  if (cell.high_priority || cell.is_rm()) {
    if (exhausted) {
      ++overflow_cells_;
      note_level();
      return Verdict::kDropOverflow;
    }
    account_accept(port, cell);
    return Verdict::kAccept;
  }

  VcState& st = vcs_[cell.vc];
  const bool new_frame = !st.in_frame || cell.frame != st.cur_frame;
  if (new_frame) {
    st.in_frame = true;
    st.cur_frame = cell.frame;
    st.discarding = false;
    st.epd_frame = false;
    st.head_accepted = false;
    st.protected_frame = frame_fits_mcr(st, cell, now);
  }
  const DegradationLevel lvl = level();

  // EPD / whole-frame shedding decide at the frame's first cell: a frame
  // not worth finishing is not worth starting.
  if (new_frame && !st.protected_frame && lvl >= DegradationLevel::kShedding) {
    st.discarding = true;
    ++shed_cells_;
    note_level();
    if (cell.eof) st.in_frame = false;
    return Verdict::kDropShed;
  }
  if (new_frame && !st.protected_frame && config_.epd &&
      lvl >= DegradationLevel::kEarlyDiscard) {
    st.discarding = true;
    st.epd_frame = true;
    ++epd_frames_;
    note_level();
    if (cell.eof) st.in_frame = false;
    return Verdict::kDropEpd;
  }

  if (st.discarding) {
    // PPD cleanup: the frame is already damaged; its remaining cells
    // would only burn buffer. The EOM still goes through (if anything
    // of the frame did, and there is room) so the receiver can delimit
    // the corpse instead of merging it into the next frame.
    if (cell.eof) {
      st.in_frame = false;
      if (st.head_accepted && in_use_ < budget) {
        account_accept(port, cell);
        return Verdict::kAccept;
      }
    }
    if (st.epd_frame) return Verdict::kDropEpd;  // counted at frame start
    ++ppd_cells_;
    return Verdict::kDropPpd;
  }

  // Mid-frame shedding: above the shed threshold even in-flight elastic
  // frames lose their cells (the receiver loses the frame either way;
  // freeing the buffer now is what keeps admitted MCR traffic whole).
  if (!st.protected_frame && lvl >= DegradationLevel::kShedding) {
    st.discarding = true;
    ++shed_cells_;
    note_level();
    if (cell.eof) st.in_frame = false;
    return Verdict::kDropShed;
  }

  // Capacity: the hard budget binds everyone; the elastic partition and
  // the Choudhury–Hahne per-port threshold bind unprotected traffic.
  bool overflow = exhausted;
  if (!overflow && !st.protected_frame) {
    const auto elastic_limit = static_cast<std::size_t>(
        static_cast<double>(budget) * (1.0 - config_.guaranteed_fraction));
    const auto port_limit = static_cast<std::size_t>(
        config_.alpha * static_cast<double>(budget - in_use_));
    overflow = in_use_ >= elastic_limit ||
               port_in_use_[static_cast<std::size_t>(port)] >= port_limit;
  }
  if (overflow) {
    ++overflow_cells_;
    st.discarding = true;  // PPD: the rest of this frame is waste now
    note_level();
    if (cell.eof) st.in_frame = false;
    return Verdict::kDropOverflow;
  }

  st.head_accepted = true;
  if (st.protected_frame) ++protected_cells_;
  account_accept(port, cell);
  if (cell.eof) st.in_frame = false;
  return Verdict::kAccept;
}

void BufferManager::release(int port, const Cell& cell) {
  assert(port >= 0 && static_cast<std::size_t>(port) < port_in_use_.size());
  assert(in_use_ > 0 && port_in_use_[static_cast<std::size_t>(port)] > 0);
  (void)cell;
  --in_use_;
  --port_in_use_[static_cast<std::size_t>(port)];
  if (grace_ > 0) {
    // Squeeze debt drains monotonically: once occupancy is back under
    // the effective budget the grace allowance is gone for good.
    grace_ = in_use_ > effective_budget() ? std::min(grace_, in_use_) : 0;
  }
}

void BufferManager::register_metrics(obs::Registry& reg,
                                     const std::string& prefix) {
  reg.add_counter({prefix + ".cells_accepted", "buffers.cells_accepted",
                   obs::MetricType::kCounter, "cells", "BufferManager",
                   "cells admitted into the shared memory"},
                  [this] { return accepted_; });
  reg.add_counter({prefix + ".frames_epd_discarded",
                   "buffers.frames_epd_discarded", obs::MetricType::kCounter,
                   "frames", "BufferManager",
                   "elastic frames refused whole by EPD"},
                  [this] { return epd_frames_; });
  reg.add_counter({prefix + ".cells_ppd_discarded",
                   "buffers.cells_ppd_discarded", obs::MetricType::kCounter,
                   "cells", "BufferManager",
                   "damaged-frame tail cells discarded by PPD"},
                  [this] { return ppd_cells_; });
  reg.add_counter({prefix + ".cells_shed", "buffers.cells_shed",
                   obs::MetricType::kCounter, "cells", "BufferManager",
                   "elastic cells shed above the shed threshold"},
                  [this] { return shed_cells_; });
  reg.add_counter({prefix + ".cells_overflow_dropped",
                   "buffers.cells_overflow_dropped", obs::MetricType::kCounter,
                   "cells", "BufferManager",
                   "cells dropped on hard budget/partition exhaustion"},
                  [this] { return overflow_cells_; });
  reg.add_counter({prefix + ".mcr_protected_cells",
                   "buffers.mcr_protected_cells", obs::MetricType::kCounter,
                   "cells", "BufferManager",
                   "cells admitted under MCR frame protection"},
                  [this] { return protected_cells_; });
  reg.add_gauge({prefix + ".cells_in_use", "buffers.cells_in_use",
                 obs::MetricType::kGauge, "cells", "BufferManager",
                 "current shared-memory occupancy"},
                [this] { return static_cast<double>(in_use_); });
  reg.add_gauge({prefix + ".peak_cells_in_use", "buffers.peak_cells_in_use",
                 obs::MetricType::kGauge, "cells", "BufferManager",
                 "peak shared-memory occupancy so far"},
                [this] { return static_cast<double>(peak_); });
  reg.add_gauge({prefix + ".effective_budget", "buffers.effective_budget",
                 obs::MetricType::kGauge, "cells", "BufferManager",
                 "cell budget after any memsqueeze"},
                [this] { return static_cast<double>(effective_budget()); });
  reg.add_gauge({prefix + ".degradation_level", "buffers.degradation_level",
                 obs::MetricType::kGauge, "level", "BufferManager",
                 "0 normal / 1 EPD / 2 shedding / 3 exhausted"},
                [this] { return static_cast<double>(level()); });
  reg.add_gauge({prefix + ".tracked_vcs", "buffers.tracked_vcs",
                 obs::MetricType::kGauge, "vcs", "BufferManager",
                 "VCs with frame/MCR state"},
                [this] { return static_cast<double>(vcs_.size()); });
}

}  // namespace phantom::atm
