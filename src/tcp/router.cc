#include "tcp/router.h"

#include <stdexcept>

namespace phantom::tcp {

std::size_t Router::add_port(sim::Rate rate, std::size_t queue_limit,
                             PacketLink link,
                             std::unique_ptr<QueuePolicy> policy) {
  ports_.push_back(std::make_unique<PacketPort>(*sim_, rate, queue_limit, link,
                                                std::move(policy)));
  return ports_.size() - 1;
}

void Router::route_flow(int flow, std::size_t forward_port,
                        std::size_t backward_port) {
  if (forward_port >= ports_.size() || backward_port >= ports_.size()) {
    throw std::out_of_range{"route_flow: port index out of range"};
  }
  const auto [_, inserted] =
      routes_.emplace(flow, Route{forward_port, backward_port});
  if (!inserted) {
    throw std::invalid_argument{"route_flow: flow already routed on " + name_};
  }
  // Wire the forward port's quench requests onto this flow's backward
  // path. The tap is shared by all flows on the port; it routes by the
  // *packet's* flow id, so a single registration suffices.
  ports_[forward_port]->set_quench_tap([this](const Packet& offender) {
    const auto it = routes_.find(offender.flow);
    if (it == routes_.end()) return;
    ++quenches_;
    ports_[it->second.backward_port]->send(
        Packet::source_quench(offender.flow));
  });
}

void Router::receive_packet(Packet packet) {
  const auto it = routes_.find(packet.flow);
  if (it == routes_.end()) {
    ++unrouted_;
    return;
  }
  const Route route = it->second;
  switch (packet.kind) {
    case PacketKind::kData:
      ports_[route.forward_port]->send(packet);
      break;
    case PacketKind::kAck:
    case PacketKind::kSourceQuench:
      ports_[route.backward_port]->send(packet);
      break;
  }
}

}  // namespace phantom::tcp
