#include "tcp/tcp_sender.h"

#include <algorithm>
#include <cassert>

namespace phantom::tcp {

TcpSender::TcpSender(sim::Simulator& sim, int flow, RenoConfig config,
                     Emitter emit)
    : sim_{&sim},
      flow_{flow},
      config_{config},
      emit_{std::move(emit)},
      cwnd_{config.initial_cwnd_mss * static_cast<double>(config.mss)},
      ssthresh_{config.initial_ssthresh},
      rto_{config.rto_initial},
      rto_backoff_base_{config.rto_initial},
      cwnd_trace_{"cwnd.flow" + std::to_string(flow)} {
  config_.validate();
  if (!emit_) throw std::invalid_argument{"TcpSender needs an emitter"};
}

void TcpSender::start(sim::Time at) {
  assert(!started_ && "start() may only be called once");
  started_ = true;
  sim_->schedule_at(at, [this] {
    cwnd_trace_.record(sim_->now(), cwnd_);
    try_send();
    on_cr_tick();
  });
}

void TcpSender::try_send() {
  // Send while the congestion window has room for a full segment.
  // (Greedy source; receiver window assumed ample, as in the paper's
  // simulations.)
  while (static_cast<double>(flight_size() + config_.mss) <= cwnd_) {
    send_segment(snd_nxt_);
    snd_nxt_ += config_.mss;
  }
}

void TcpSender::send_segment(std::int64_t seq) {
  Packet p = Packet::data(flow_, seq, config_.mss);
  p.header = config_.header;
  p.cr = cr_;
  p.timestamp = sim_->now();
  ++sent_;
  emit_(p);
  if (!rto_timer_.valid()) arm_rto_timer();
}

void TcpSender::receive_packet(Packet packet) {
  if (packet.flow != flow_) return;
  switch (packet.kind) {
    case PacketKind::kAck:
      on_ack(packet);
      break;
    case PacketKind::kSourceQuench:
      on_source_quench();
      break;
    case PacketKind::kData:
      break;  // a sender never consumes data packets
  }
}

void TcpSender::on_ack(const Packet& packet) {
  if (packet.ack > snd_una_) {
    // RTT sample from the echoed timestamp (Karn's problem avoided: the
    // echo is the timestamp of the segment that generated the ACK).
    sample_rtt(sim_->now() - packet.timestamp);
    on_new_ack(packet.ack, packet.ack_efci);
  } else {
    on_dup_ack();
  }
}

void TcpSender::on_new_ack(std::int64_t ack, bool efci) {
  snd_una_ = ack;
  dup_acks_ = 0;
  backoff_ = 0;

  if (in_recovery_) {
    // The first new ACK ends fast recovery [Ste94 §21.7].
    in_recovery_ = false;
    on_recovery_exit();
  } else {
    on_ack_growth(efci && config_.react_to_efci);
  }

  if (flight_size() > 0) {
    arm_rto_timer();  // restart for the oldest outstanding segment
  } else {
    cancel_rto_timer();
  }
  try_send();
}

void TcpSender::on_dup_ack() {
  ++dup_acks_;
  if (in_recovery_) {
    set_cwnd(cwnd_ + mss());  // window inflation per extra dup ACK
    try_send();
    return;
  }
  if (dup_acks_ == 3) {
    send_segment(snd_una_);
    ++fast_rtx_;
    in_recovery_ = on_fast_retransmit();
    arm_rto_timer();
    try_send();
  }
}

std::int64_t TcpSender::half_flight() const {
  return std::max(flight_size() / 2,
                  static_cast<std::int64_t>(2 * config_.mss));
}

void TcpSender::on_source_quench() {
  ++quenches_;
  if (!config_.react_to_quench) return;  // misbehaving sender: ignore
  // React at most once per RTT: routers may emit several quenches
  // before the first one takes effect.
  const sim::Time guard = rtt_seeded_ ? srtt_ : config_.rto_initial;
  if (last_quench_reaction_ >= sim::Time::zero() &&
      sim_->now() - last_quench_reaction_ < guard) {
    return;
  }
  last_quench_reaction_ = sim_->now();
  // 4.4BSD behaviour [Ste94]: collapse to one segment and slow-start
  // back; ssthresh is not changed.
  in_recovery_ = false;
  dup_acks_ = 0;
  set_cwnd(mss());
}

void TcpSender::on_timeout() {
  rto_timer_ = {};
  ++timeouts_;
  ssthresh_ = half_flight();
  set_cwnd(mss());
  dup_acks_ = 0;
  in_recovery_ = false;
  // Go-back-N from the last cumulative ACK; retransmissions are paced
  // by the returning ACK clock (ns-2-style simplification of Reno's
  // timeout recovery).
  snd_nxt_ = snd_una_;
  // Karn: exponential backoff, and do not sample RTT from retransmits
  // (timestamps make samples safe again on fresh segments).
  ++backoff_;
  rto_ = std::min(config_.rto_max,
                  rto_backoff_base_ * (std::int64_t{1} << std::min(backoff_, 6)));
  try_send();
  if (flight_size() > 0) arm_rto_timer();
}

void TcpSender::sample_rtt(sim::Time m) {
  if (m <= sim::Time::zero()) return;
  if (!rtt_seeded_) {
    srtt_ = m;
    rttvar_ = m / 2;
    rtt_seeded_ = true;
  } else {
    const sim::Time err = m >= srtt_ ? m - srtt_ : srtt_ - m;
    rttvar_ = rttvar_ * 3 / 4 + err / 4;
    srtt_ = srtt_ * 7 / 8 + m / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.rto_min, config_.rto_max);
  rto_backoff_base_ = rto_;
  on_rtt_measurement(m);
}

void TcpSender::arm_rto_timer() {
  cancel_rto_timer();
  rto_timer_ = sim_->schedule(rto_, [this] { on_timeout(); });
}

void TcpSender::cancel_rto_timer() {
  if (rto_timer_.valid()) {
    sim_->cancel(rto_timer_);
    rto_timer_ = {};
  }
}

void TcpSender::on_cr_tick() {
  // CR = payload acknowledged in the last interval / interval (§4.3).
  const double bytes = static_cast<double>(snd_una_ - cr_mark_);
  cr_mark_ = snd_una_;
  cr_ = sim::Rate::bps(bytes * 8.0 / config_.cr_interval.seconds());
  sim_->schedule(config_.cr_interval, [this] { on_cr_tick(); });
}

void TcpSender::set_cwnd(double bytes) {
  cwnd_ = std::max(bytes, mss());
  cwnd_trace_.record(sim_->now(), cwnd_);
}

}  // namespace phantom::tcp
