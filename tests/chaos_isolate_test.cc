// Process isolation: forked children, rlimits, wall-clock deadlines and
// exit-status decoding, exercised with real hostile child bodies.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/generator.h"
#include "chaos/isolate.h"

namespace phantom {
namespace {

using sim::Time;

/// Drives one isolated trial to completion the way the supervisor does:
/// poll the pipes, enforce the wall-clock deadline, pump until reaped.
chaos::TrialResult run_to_completion(chaos::IsolatedTrial& t) {
  while (!t.pump()) {
    pollfd fds[2];
    nfds_t n = 0;
    if (t.result_fd() >= 0) fds[n++] = {t.result_fd(), POLLIN, 0};
    if (t.stderr_fd() >= 0) fds[n++] = {t.stderr_fd(), POLLIN, 0};
    int timeout = 100;
    if (t.deadline_ms()) {
      const std::int64_t left = *t.deadline_ms() - chaos::monotonic_ms();
      if (left <= 0) {
        t.kill_child(/*timed_out=*/true);
        timeout = 50;
      } else {
        timeout = static_cast<int>(std::min<std::int64_t>(left, 100));
      }
    }
    ::poll(fds, n, timeout);
  }
  return t.result();
}

chaos::TrialResult run_body(const chaos::IsolatedTrial::Body& body,
                            const chaos::IsolateOptions& opt = {}) {
  std::string infra_error;
  auto t = chaos::IsolatedTrial::spawn(body, opt, infra_error);
  if (!t) {
    ADD_FAILURE() << "spawn failed: " << infra_error;
    return {};
  }
  return run_to_completion(*t);
}

TEST(IsolateTest, SignalNamesAreHuman) {
  EXPECT_EQ(chaos::signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(chaos::signal_name(SIGABRT), "SIGABRT");
  EXPECT_EQ(chaos::signal_name(SIGXCPU), "SIGXCPU");
  EXPECT_EQ(chaos::signal_name(SIGKILL), "SIGKILL");
  // Signals without a common name still render unambiguously.
  EXPECT_EQ(chaos::signal_name(63), "SIG63");
}

TEST(IsolateTest, FatalSignalBecomesStructuredProcessCrash) {
  const auto r = run_body([](int) {
    std::fputs("ERROR: AddressSanitizer: heap-use-after-free 0xdeadbeef\n",
               stderr);
    std::fflush(stderr);
    ::raise(SIGSEGV);
  });
  EXPECT_EQ(r.verdict, chaos::Verdict::kProcessCrash);
  if (chaos::address_space_limit_supported()) {
    EXPECT_EQ(r.crash_signal, "SIGSEGV");
    EXPECT_NE(r.detail.find("SIGSEGV"), std::string::npos) << r.detail;
  } else {
    // Sanitizer runtimes intercept fatal signals and exit with their
    // own code; the crash is still contained and structured.
    EXPECT_TRUE(r.crash_signal == "SIGSEGV" || r.exit_code != 0)
        << "exit_code=" << r.exit_code << " signal=" << r.crash_signal;
  }
  EXPECT_NE(r.stderr_tail.find("heap-use-after-free"), std::string::npos)
      << r.stderr_tail;
}

TEST(IsolateTest, SilentExitWithoutResultIsAProcessCrash) {
  const auto r = run_body([](int) { ::_exit(7); });
  EXPECT_EQ(r.verdict, chaos::Verdict::kProcessCrash);
  EXPECT_EQ(r.exit_code, 7);
  EXPECT_TRUE(r.crash_signal.empty()) << r.crash_signal;
  EXPECT_NE(r.detail.find("exited with code 7"), std::string::npos) << r.detail;
}

TEST(IsolateTest, EscapedExceptionIsContainedAsExitCode) {
  const auto r =
      run_body([](int) { throw std::runtime_error{"escaped the trial"}; });
  EXPECT_EQ(r.verdict, chaos::Verdict::kProcessCrash);
  EXPECT_EQ(r.exit_code, 82);
}

TEST(IsolateTest, WallClockDeadlineKillsAHungChild) {
  chaos::IsolateOptions opt;
  opt.timeout_ms = 200;
  const auto r = run_body([](int) {
    while (true) ::pause();
  }, opt);
  EXPECT_EQ(r.verdict, chaos::Verdict::kProcessCrash);
  EXPECT_EQ(r.crash_signal, "SIGKILL");
  EXPECT_NE(r.detail.find("wall-clock deadline"), std::string::npos)
      << r.detail;
}

TEST(IsolateTest, CpuRlimitKillsASpinningChild) {
  chaos::IsolateOptions opt;
  opt.cpu_limit_sec = 1;
  opt.timeout_ms = 30'000;  // the rlimit should fire long before this
  const auto r = run_body([](int) {
    volatile std::uint64_t x = 0;
    while (true) ++x;
  }, opt);
  EXPECT_EQ(r.verdict, chaos::Verdict::kProcessCrash);
  // SIGXCPU at the soft limit; SIGKILL is the kernel's hard backstop.
  EXPECT_TRUE(r.crash_signal == "SIGXCPU" || r.crash_signal == "SIGKILL")
      << r.crash_signal;
}

TEST(IsolateTest, AddressSpaceRlimitContainsRunawayAllocation) {
  if (!chaos::address_space_limit_supported()) {
    GTEST_SKIP() << "RLIMIT_AS cannot be enforced under this sanitizer";
  }
  chaos::IsolateOptions opt;
  opt.memory_limit_mb = 64;
  const auto r = run_body([](int) {
    std::vector<char> hog(512u << 20, 'x');
    std::fprintf(stderr, "allocated %c\n", hog[0]);  // not reached
  }, opt);
  EXPECT_EQ(r.verdict, chaos::Verdict::kProcessCrash);
  // bad_alloc escapes the body (exit 82); some allocators abort instead.
  EXPECT_TRUE(r.exit_code == 82 || !r.crash_signal.empty())
      << "exit_code=" << r.exit_code << " signal=" << r.crash_signal;
}

TEST(IsolateTest, ProgressFramesSurviveACrash) {
  // A child that reports progress and then dies: the crash result still
  // carries how far it got, decoded from the last 'P' frame.
  const auto r = run_body([](int fd) {
    const std::uint64_t events = 123456;
    std::string frame;
    frame.push_back('P');
    frame.append(reinterpret_cast<const char*>(&events), sizeof events);
    (void)!::write(fd, frame.data(), frame.size());
    ::raise(SIGABRT);
  });
  EXPECT_EQ(r.verdict, chaos::Verdict::kProcessCrash);
  EXPECT_EQ(r.crash_signal, "SIGABRT");
  EXPECT_EQ(r.events, 123456u);
  EXPECT_NE(r.detail.find("after ~123456 events"), std::string::npos)
      << r.detail;
}

TEST(IsolateTest, HealthyIsolatedTrialMatchesInProcessBitExact) {
  chaos::ScenarioSpec spec;
  spec.rate_mbps = 40.0;
  spec.horizon = Time::ms(600);
  sim::Rng rng{7};
  const auto plan = chaos::generate_plan(rng, spec);
  const chaos::TrialOptions opt;
  const auto base = chaos::run_baseline(spec, 7, opt);

  const auto in_process = chaos::run_trial(spec, 7, plan, opt, &base);
  const auto isolated =
      chaos::run_trial_isolated(spec, 7, plan, opt, &base, {});

  EXPECT_EQ(isolated.verdict, in_process.verdict);
  EXPECT_EQ(isolated.detail, in_process.detail);
  EXPECT_EQ(isolated.events, in_process.events);
  EXPECT_EQ(isolated.violations, in_process.violations);
  ASSERT_EQ(isolated.reconverge_latency.has_value(),
            in_process.reconverge_latency.has_value());
  if (isolated.reconverge_latency) {
    EXPECT_EQ(isolated.reconverge_latency->nanoseconds(),
              in_process.reconverge_latency->nanoseconds());
  }
  // Doubles cross the pipe by bit pattern — compare bits, not values.
  EXPECT_EQ(std::memcmp(&isolated.settled_share_mbps,
                        &in_process.settled_share_mbps, sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&isolated.peak_queue_cells,
                        &in_process.peak_queue_cells, sizeof(double)),
            0);
}

}  // namespace
}  // namespace phantom
