file(REMOVE_RECURSE
  "libphantom_atm.a"
)
