# Empty dependencies file for tcp_router_test.
# This may be replaced when dependencies are built.
