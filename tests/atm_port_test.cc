#include "atm/output_port.h"

#include <gtest/gtest.h>

#include <vector>

#include "atm/link.h"
#include "sim/simulator.h"

namespace phantom::atm {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

/// Collects delivered cells with their arrival times.
class Collector final : public CellSink {
 public:
  void receive_cell(Cell cell) override { cells.push_back(cell); }
  std::vector<Cell> cells;
};

/// Controller that records every hook invocation.
class SpyController final : public PortController {
 public:
  void on_cell_accepted(const Cell&, std::size_t q) override {
    accepted.push_back(q);
  }
  void on_cell_dropped(const Cell&) override { ++dropped; }
  void on_cell_transmitted(const Cell&) override { ++transmitted; }
  void on_forward_rm(Cell&, std::size_t) override { ++frm; }
  void on_backward_rm(Cell&, std::size_t) override { ++brm; }
  [[nodiscard]] bool mark_efci(std::size_t q) const override {
    return q >= efci_threshold;
  }
  [[nodiscard]] Rate fair_share() const override { return Rate::zero(); }
  [[nodiscard]] std::string name() const override { return "spy"; }

  std::vector<std::size_t> accepted;
  int dropped = 0, transmitted = 0, frm = 0, brm = 0;
  std::size_t efci_threshold = 1'000'000;
};

struct PortFixture {
  Simulator sim;
  Collector sink;
  SpyController* spy = nullptr;  // owned by port

  OutputPort make_port(Rate rate = Rate::mbps(150), std::size_t limit = 10,
                       Time delay = Time::zero()) {
    auto ctl = std::make_unique<SpyController>();
    spy = ctl.get();
    return OutputPort{sim, rate, limit, Link{sim, delay, sink}, std::move(ctl)};
  }
};

TEST(OutputPortTest, TransmitsAtLinkRate) {
  PortFixture f;
  auto port = f.make_port(Rate::mbps(150));
  port.send(Cell::data(1));
  port.send(Cell::data(1));
  f.sim.run();
  ASSERT_EQ(f.sink.cells.size(), 2u);
  // Two cells back to back: 2 * 424 / 150e6 s = 5.6533 us.
  EXPECT_NEAR(f.sim.now().microseconds(), 5.6533, 1e-3);
  EXPECT_EQ(port.cells_transmitted(), 2u);
}

TEST(OutputPortTest, PropagationDelayAddsToDelivery) {
  PortFixture f;
  auto port = f.make_port(Rate::mbps(150), 10, Time::ms(1));
  port.send(Cell::data(1));
  f.sim.run();
  // 2.827us serialization + 1ms propagation.
  EXPECT_NEAR(f.sim.now().microseconds(), 1002.827, 0.01);
  EXPECT_EQ(f.sink.cells.size(), 1u);
}

TEST(OutputPortTest, DropsWhenQueueFull) {
  PortFixture f;
  auto port = f.make_port(Rate::mbps(150), 3);
  for (int i = 0; i < 5; ++i) port.send(Cell::data(1));
  // First cell starts transmitting immediately but stays in the queue
  // until completion, so the 4th and 5th arrivals overflow.
  EXPECT_EQ(port.cells_dropped(), 2u);
  EXPECT_EQ(f.spy->dropped, 2);
  f.sim.run();
  EXPECT_EQ(f.sink.cells.size(), 3u);
}

TEST(OutputPortTest, QueueLengthAndMaxTracked) {
  PortFixture f;
  auto port = f.make_port(Rate::mbps(150), 10);
  for (int i = 0; i < 4; ++i) port.send(Cell::data(1));
  EXPECT_EQ(port.queue_length(), 4u);
  EXPECT_EQ(port.max_queue_length(), 4u);
  f.sim.run();
  EXPECT_EQ(port.queue_length(), 0u);
  EXPECT_EQ(port.max_queue_length(), 4u);
}

TEST(OutputPortTest, ControllerSeesAcceptAndTransmit) {
  PortFixture f;
  auto port = f.make_port();
  port.send(Cell::data(1));
  port.send(Cell::data(1));
  f.sim.run();
  EXPECT_EQ(f.spy->accepted, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(f.spy->transmitted, 2);
}

TEST(OutputPortTest, EfciMarkedWhenControllerSaysSo) {
  PortFixture f;
  auto port = f.make_port();
  f.spy->efci_threshold = 2;  // mark when >= 2 cells already queued
  for (int i = 0; i < 4; ++i) port.send(Cell::data(1));
  f.sim.run();
  ASSERT_EQ(f.sink.cells.size(), 4u);
  EXPECT_FALSE(f.sink.cells[0].efci);
  EXPECT_FALSE(f.sink.cells[1].efci);
  EXPECT_TRUE(f.sink.cells[2].efci);
  EXPECT_TRUE(f.sink.cells[3].efci);
}

TEST(OutputPortTest, RmCellsAreNeverEfciMarked) {
  PortFixture f;
  auto port = f.make_port();
  f.spy->efci_threshold = 0;  // mark everything markable
  port.send(Cell::forward_rm(1, Rate::mbps(1), Rate::mbps(150)));
  f.sim.run();
  ASSERT_EQ(f.sink.cells.size(), 1u);
  EXPECT_FALSE(f.sink.cells[0].efci);
}

TEST(OutputPortTest, NullControllerByDefault) {
  Simulator sim;
  Collector sink;
  OutputPort port{sim, Rate::mbps(150), 4, Link{sim, Time::zero(), sink}, nullptr};
  EXPECT_EQ(port.controller().name(), "null");
  port.send(Cell::data(1));
  sim.run();
  EXPECT_EQ(sink.cells.size(), 1u);
}

TEST(OutputPortTest, WorkConservingAcrossIdlePeriods) {
  PortFixture f;
  auto port = f.make_port(Rate::mbps(150));
  port.send(Cell::data(1));
  f.sim.run();
  const Time first_done = f.sim.now();
  f.sim.schedule(Time::ms(1), [&] { port.send(Cell::data(1)); });
  f.sim.run();
  // Second cell starts fresh: done 1ms + one cell time after first batch.
  EXPECT_NEAR((f.sim.now() - first_done).microseconds(), 1000.0 + 2.8267, 0.01);
}

}  // namespace
}  // namespace phantom::atm
