// Supervision of a pool of process-isolated chaos trials.
//
// The Supervisor forks up to `jobs` children (chaos/isolate) at a time,
// launching strictly in trial-index order, and merges results back by
// index — so the finished search is a pure function of (spec, seed,
// plans) and the report is byte-identical at --jobs 1, 8 or 64. It is
// deliberately single-threaded: all concurrency lives in child
// processes, multiplexed with poll(2), so there is nothing to fork from
// a thread and nothing to race.
//
// Robustness duties beyond fan-out:
//  * infra failures (fork/pipe exhaustion) are retried with bounded
//    exponential backoff — they are harness trouble, never verdicts;
//  * SIGINT drains gracefully: stop launching, let in-flight children
//    finish, checkpoint what completed (a second SIGINT kills them);
//  * every completed trial is appended to a JSONL checkpoint, so an
//    interrupted search resumes without re-running finished trials;
//  * the early-stop rule (`max_failures`) is evaluated on the decided
//    prefix in index order — the exact serial semantics — and any
//    speculative result past the cutoff is discarded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/isolate.h"
#include "chaos/scenario.h"
#include "fault/fault_plan.h"

namespace phantom::chaos {

struct SupervisorOptions {
  /// Concurrent isolated trials (children). Clamped to [1, 128].
  int jobs = 1;
  /// Spawn retries per trial for infrastructure failures (fork/pipe
  /// errors). Verdicts — including kProcessCrash — are never retried.
  int max_retries = 3;
  /// First retry backoff in wall ms; doubles per attempt.
  int retry_backoff_ms = 10;
  IsolateOptions isolate;
  /// JSONL checkpoint path; empty disables checkpointing. If the file
  /// exists and matches (spec, seed, trial count, plans), its completed
  /// trials are loaded instead of re-run; a mismatched file is an error
  /// (never silently ignored).
  std::string checkpoint_path;
};

struct SupervisedOutcome {
  /// results[i] is engaged iff trial i completed (run now or resumed);
  /// trials past the max_failures cutoff and trials interrupted by
  /// SIGINT stay disengaged.
  std::vector<std::optional<TrialResult>> results;
  bool interrupted = false;
  int resumed = 0;  ///< trials loaded from the checkpoint file
};

class Supervisor {
 public:
  Supervisor(ScenarioSpec spec, std::uint64_t seed, TrialOptions trial,
             std::optional<Baseline> baseline, SupervisorOptions opt);

  /// Runs plans[i] as trial i. Throws std::runtime_error on persistent
  /// infrastructure failure or an unusable checkpoint file.
  [[nodiscard]] SupervisedOutcome run(
      const std::vector<fault::FaultPlan>& plans, int max_failures);

 private:
  ScenarioSpec spec_;
  std::uint64_t seed_;
  TrialOptions trial_;
  std::optional<Baseline> baseline_;
  SupervisorOptions opt_;
};

/// One checkpoint row (exposed for tests). `plan_spec` guards against
/// resuming with a different seed/generator than the file was written
/// with.
[[nodiscard]] std::string checkpoint_row(int trial,
                                         const std::string& plan_spec,
                                         const TrialResult& r);
[[nodiscard]] std::optional<std::pair<int, TrialResult>> parse_checkpoint_row(
    const std::string& line, std::string* plan_spec = nullptr);

}  // namespace phantom::chaos
