#include "exp/report.h"

#include <gtest/gtest.h>

#include "exp/factories.h"

namespace phantom::exp {
namespace {

TEST(TableTest, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(47.5), "47.50");
  EXPECT_EQ(Table::num(47.513, 1), "47.5");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(TableTest, PrintDoesNotCrash) {
  Table t{{"algorithm", "goodput"}};
  t.add_row({"Phantom", Table::num(47.5)});
  t.add_row({"EPRCA", Table::num(44.1)});
  testing::internal::CaptureStdout();
  t.print();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Phantom"), std::string::npos);
  EXPECT_NE(out.find("47.50"), std::string::npos);
}

TEST(SeriesPrintTest, DecimatesLongSeries) {
  sim::Trace trace{"x"};
  for (int i = 0; i < 1000; ++i) {
    trace.record(sim::Time::ms(i), static_cast<double>(i));
  }
  testing::internal::CaptureStdout();
  print_series("x", trace.samples(), 1.0, 10);
  const std::string out = testing::internal::GetCapturedStdout();
  // Roughly 10 rows + final, not 1000.
  const auto rows = std::count(out.begin(), out.end(), '\n');
  EXPECT_LE(rows, 15);
  EXPECT_NE(out.find("(final)"), std::string::npos);
}

TEST(SeriesPrintTest, EmptySeriesHandled) {
  testing::internal::CaptureStdout();
  print_series("empty", {}, 1.0);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("(empty)"), std::string::npos);
}

TEST(FactoriesTest, NamesMatchControllers) {
  sim::Simulator sim;
  for (const auto alg : {Algorithm::kPhantom, Algorithm::kEprca,
                         Algorithm::kAprc, Algorithm::kCapc}) {
    auto factory = make_factory(alg);
    ASSERT_TRUE(factory);
    auto ctl = factory(sim, sim::Rate::mbps(150));
    ASSERT_TRUE(ctl);
    EXPECT_FALSE(ctl->name().empty());
  }
  EXPECT_EQ(to_string(Algorithm::kPhantom), "Phantom");
  EXPECT_EQ(to_string(Algorithm::kCapc), "CAPC");
}

TEST(FactoriesTest, PhantomFactoryHonoursConfig) {
  sim::Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = sim::Rate::mbps(2);  // above the 1% relative floor
  auto ctl = make_phantom_factory(cfg)(sim, sim::Rate::mbps(150));
  EXPECT_DOUBLE_EQ(ctl->fair_share().mbits_per_sec(), 2.0);
}

}  // namespace
}  // namespace phantom::exp
