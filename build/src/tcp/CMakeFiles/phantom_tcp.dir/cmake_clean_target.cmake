file(REMOVE_RECURSE
  "libphantom_tcp.a"
)
