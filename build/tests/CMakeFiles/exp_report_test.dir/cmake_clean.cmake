file(REMOVE_RECURSE
  "CMakeFiles/exp_report_test.dir/exp_report_test.cc.o"
  "CMakeFiles/exp_report_test.dir/exp_report_test.cc.o.d"
  "exp_report_test"
  "exp_report_test.pdb"
  "exp_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
