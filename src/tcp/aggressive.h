// A non-compliant TCP sender: the IP-side analogue of the greedy ABR
// source. It keeps the Reno *machinery* (so losses are still repaired
// and the flow keeps pushing) but refuses every congestion signal the
// Phantom-over-IP mechanisms rely on: echoed EFCI never suppresses
// growth, fast retransmit never shrinks the window, and Source Quench
// is ignored via RenoConfig::react_to_quench (forced off here). Only
// an RTO — where the network physically stopped delivering — resets it,
// and that path lives in the shared chassis. Against such a flow the
// only leverage the network has is what it enforces in the data path
// (selective discard), which is exactly what the misbehavior
// experiments measure.
#pragma once

#include "tcp/tcp_sender.h"

namespace phantom::tcp {

/// Greedy sender that ignores marks and loss signals as input.
class AggressiveSource final : public TcpSender {
 public:
  AggressiveSource(sim::Simulator& sim, int flow, RenoConfig config,
                   Emitter emit)
      : TcpSender{sim, flow, deafened(config), std::move(emit)} {}

  [[nodiscard]] std::string name() const override { return "aggressive"; }

 private:
  [[nodiscard]] static RenoConfig deafened(RenoConfig config) {
    config.react_to_quench = false;
    return config;
  }

  void on_ack_growth(bool /*efci_suppressed*/) override {
    // Grows like Reno but never honours the EFCI suppression rule.
    if (cwnd_bytes() < static_cast<double>(ssthresh_bytes())) {
      set_cwnd(cwnd_bytes() + mss());
    } else {
      set_cwnd(cwnd_bytes() + mss() * mss() / cwnd_bytes());
    }
  }

  bool on_fast_retransmit() override {
    // Retransmit the segment (chassis does that) but keep cwnd and
    // ssthresh untouched: loss is treated as noise, not as feedback.
    return true;  // "fast recovery" at full window
  }

  void on_recovery_exit() override {}  // nothing was deflated
};

}  // namespace phantom::tcp
