#include "chaos/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace phantom::chaos {
namespace {

[[nodiscard]] int parking_hops(const ScenarioSpec& spec) {
  return std::max(2, spec.sessions - 1);
}

}  // namespace

topo::ControllerFactory ScenarioSpec::factory() const {
  return factory_override ? factory_override : exp::make_factory(algorithm);
}

std::string to_string(ScenarioSpec::Kind k) {
  switch (k) {
    case ScenarioSpec::Kind::kBottleneck: return "bottleneck";
    case ScenarioSpec::Kind::kParking: return "parking";
  }
  return "?";
}

std::optional<ScenarioSpec::Kind> kind_from_string(const std::string& name) {
  if (name == "bottleneck") return ScenarioSpec::Kind::kBottleneck;
  if (name == "parking") return ScenarioSpec::Kind::kParking;
  return std::nullopt;
}

TopologyInfo topology_info(const ScenarioSpec& spec) {
  TopologyInfo info;
  switch (spec.kind) {
    case ScenarioSpec::Kind::kBottleneck:
      info.trunks = 0;
      info.dests = 1;
      info.controlled_dests = 1;
      info.sessions = static_cast<std::size_t>(spec.sessions);
      break;
    case ScenarioSpec::Kind::kParking: {
      const auto hops = static_cast<std::size_t>(parking_hops(spec));
      info.trunks = hops;
      info.dests = hops;  // d_end + (hops - 1) stubs; the last local reuses d_end
      info.controlled_dests = 1;
      info.sessions = 1 + hops;  // the long session + one local per hop
      break;
    }
  }
  return info;
}

atm::OutputPort& build_topology(const ScenarioSpec& spec,
                                topo::AbrNetwork& net) {
  using sim::Rate;
  atm::OutputPort* watched = nullptr;
  switch (spec.kind) {
    case ScenarioSpec::Kind::kBottleneck: {
      const auto sw = net.add_switch("sw");
      topo::TrunkOptions opts;
      opts.rate = Rate::mbps(spec.rate_mbps);
      const auto dest = net.add_destination(sw, opts);
      for (int i = 0; i < spec.sessions; ++i) {
        net.add_session(sw, {}, dest, spec.abr_params);
      }
      watched = &net.dest_port(dest);
      break;
    }
    case ScenarioSpec::Kind::kParking: {
      const int hops = parking_hops(spec);
      std::vector<topo::AbrNetwork::SwitchId> sw;
      for (int i = 0; i <= hops; ++i) sw.push_back(net.add_switch("s"));
      std::vector<topo::AbrNetwork::TrunkId> trunks;
      topo::TrunkOptions opts;
      opts.rate = Rate::mbps(spec.rate_mbps);
      for (int i = 0; i < hops; ++i) {
        trunks.push_back(net.add_trunk(sw[static_cast<std::size_t>(i)],
                                       sw[static_cast<std::size_t>(i + 1)],
                                       opts));
      }
      const auto d_end = net.add_destination(sw.back(), opts);
      topo::TrunkOptions stub;
      stub.controlled = false;
      stub.rate = Rate::mbps(4 * spec.rate_mbps);
      net.add_session(sw[0], trunks, d_end, spec.abr_params);  // long session
      for (int i = 0; i < hops; ++i) {                         // one local per hop
        const auto exit_sw = sw[static_cast<std::size_t>(i + 1)];
        const auto d =
            i + 1 == hops ? d_end : net.add_destination(exit_sw, stub);
        net.add_session(sw[static_cast<std::size_t>(i)],
                        {trunks[static_cast<std::size_t>(i)]}, d,
                        spec.abr_params);
      }
      watched = &net.trunk_port(trunks[0]);
      break;
    }
  }
  if (watched == nullptr) throw std::logic_error{"chaos: bad scenario kind"};
  // Armed after the sessions exist so enable_overload_protection
  // grandfathers them (MCRs booked without being re-judged).
  if (spec.overload) net.enable_overload_protection(spec.overload_options);
  return *watched;
}

}  // namespace phantom::chaos
