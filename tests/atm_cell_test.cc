#include "atm/cell.h"

#include <gtest/gtest.h>

namespace phantom::atm {
namespace {

TEST(CellTest, DataFactory) {
  const Cell c = Cell::data(7);
  EXPECT_EQ(c.kind, CellKind::kData);
  EXPECT_EQ(c.vc, 7);
  EXPECT_FALSE(c.is_rm());
  EXPECT_FALSE(c.efci);
  EXPECT_FALSE(c.ci);
}

TEST(CellTest, ForwardRmFactoryCarriesRates) {
  const Cell c = Cell::forward_rm(3, sim::Rate::mbps(8.5), sim::Rate::mbps(150));
  EXPECT_EQ(c.kind, CellKind::kForwardRm);
  EXPECT_EQ(c.vc, 3);
  EXPECT_TRUE(c.is_rm());
  EXPECT_DOUBLE_EQ(c.ccr.mbits_per_sec(), 8.5);
  EXPECT_DOUBLE_EQ(c.er.mbits_per_sec(), 150.0);
  EXPECT_FALSE(c.ci);
}

TEST(CellTest, WireSizeConstants) {
  EXPECT_EQ(kCellBits, 424);
  EXPECT_EQ(kCellBytes, 53);
  EXPECT_EQ(kCellBits, kCellBytes * 8);
}

TEST(CellTest, KindNames) {
  EXPECT_EQ(to_string(CellKind::kData), "data");
  EXPECT_EQ(to_string(CellKind::kForwardRm), "FRM");
  EXPECT_EQ(to_string(CellKind::kBackwardRm), "BRM");
}

}  // namespace
}  // namespace phantom::atm
