#include "atm/switch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace phantom::atm {

void ReaperConfig::validate() const {
  if (timeout <= sim::Time::zero())
    throw std::invalid_argument{"reaper timeout must be positive"};
  if (period <= sim::Time::zero())
    throw std::invalid_argument{"reaper period must be positive"};
}

std::size_t Switch::add_port(sim::Rate rate, std::size_t queue_limit,
                             Link link,
                             std::unique_ptr<PortController> controller,
                             QueueDiscipline discipline) {
  ports_.push_back(std::make_unique<OutputPort>(
      *sim_, rate, queue_limit, link, std::move(controller), discipline));
  return ports_.size() - 1;
}

void Switch::route_vc(int vc, std::size_t forward_port,
                      std::size_t backward_port) {
  if (forward_port >= ports_.size() || backward_port >= ports_.size()) {
    throw std::out_of_range{"route_vc: port index out of range"};
  }
  const auto [_, inserted] = routes_.emplace(vc, Route{forward_port, backward_port});
  if (!inserted) {
    throw std::invalid_argument{"route_vc: VC already routed on " + name_};
  }
}

void Switch::enable_policing(PolicerConfig config) {
  policer_ = std::make_unique<Policer>(config);
}

void Switch::enable_reaping(ReaperConfig config) {
  config.validate();
  reaper_config_ = config;
  if (!reaping_) {
    reaping_ = true;
    sim_->schedule(reaper_config_.period, [this] { on_reap_tick(); });
  }
}

void Switch::on_reap_tick() {
  // Collect first, then evict in VC order: eviction order must not
  // depend on hash-table iteration so runs stay bit-reproducible.
  std::vector<int> dead;
  const sim::Time now = sim_->now();
  for (const auto& [vc, last] : last_activity_) {
    if (now - last > reaper_config_.timeout) dead.push_back(vc);
  }
  std::sort(dead.begin(), dead.end());
  for (const int vc : dead) evict_vc(vc);
  sim_->schedule(reaper_config_.period, [this] { on_reap_tick(); });
}

bool Switch::evict_vc(int vc) {
  const bool had_activity = last_activity_.erase(vc) > 0;
  const bool had_policer_state = policer_ && policer_->evict_vc(vc);
  if (!had_activity && !had_policer_state) return false;
  ++vcs_reaped_;
  // Both directions' controllers get the notification: session-count
  // and per-VC state can live on either side of the route.
  if (const auto it = routes_.find(vc); it != routes_.end()) {
    ports_[it->second.forward_port]->controller().vc_expired(vc);
    ports_[it->second.backward_port]->controller().vc_expired(vc);
  }
  return true;
}

void Switch::sanitize_rm(Cell& cell, sim::Rate link_rate) {
  // A switch must never let a hostile RM field reach controller state:
  // EPRCA-family algorithms *learn* from CCR, and NaN survives every
  // std::min along a feedback chain. ER claims above the physical link
  // rate are meaningless (the port cannot serve them) and are exactly
  // what a forger inflates; claims below zero (or NaN) would wedge the
  // source's ACR clamp.
  bool touched = false;
  const double er = cell.er.bits_per_sec();
  if (std::isnan(er) || er > link_rate.bits_per_sec()) {
    cell.er = link_rate;
    touched = true;
  } else if (er < 0.0) {
    cell.er = sim::Rate::zero();
    touched = true;
  }
  const double ccr = cell.ccr.bits_per_sec();
  if (std::isnan(ccr) || ccr < 0.0) {
    cell.ccr = sim::Rate::zero();
    touched = true;
  } else if (ccr > link_rate.bits_per_sec()) {
    cell.ccr = link_rate;
    touched = true;
  }
  if (touched) ++rm_sanitized_;
}

void Switch::receive_cell(Cell cell) {
  const auto it = routes_.find(cell.vc);
  if (it == routes_.end()) {
    ++unrouted_;
    return;
  }
  const Route route = it->second;
  if (reaping_) last_activity_[cell.vc] = sim_->now();
  OutputPort& fwd = *ports_[route.forward_port];
  // ER/CCR refer to the forward direction either way, so the forward
  // link's capacity is the sanity cap for both cell directions.
  if (cell.is_rm()) sanitize_rm(cell, fwd.rate());
  if (policer_ && cell.kind != CellKind::kBackwardRm) {
    switch (policer_->check(cell, fwd.controller().fair_share(), sim_->now())) {
      case Policer::Verdict::kPass:
        break;
      case Policer::Verdict::kTag:
        cell.clp = true;
        break;
      case Policer::Verdict::kDrop:
        // Discarded at ingress, before the port queue: enforcement
        // drops do NOT feed the controller's offered-load measurement,
        // so a policed violator stops inflating the apparent session
        // count (that is the whole point of dropping here and not at
        // the queue).
        return;
    }
  }
  switch (cell.kind) {
    case CellKind::kData:
      fwd.send(cell);
      break;
    case CellKind::kForwardRm:
      fwd.controller().on_forward_rm(cell, fwd.queue_length());
      fwd.send(cell);
      break;
    case CellKind::kBackwardRm:
      // Feedback for the forward direction is written here, then the
      // cell continues along the reverse path.
      fwd.controller().on_backward_rm(cell, fwd.queue_length());
      ports_[route.backward_port]->send(cell);
      break;
  }
}

}  // namespace phantom::atm
