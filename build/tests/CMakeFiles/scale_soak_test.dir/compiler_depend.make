# Empty compiler generated dependencies file for scale_soak_test.
# This may be replaced when dependencies are built.
