#include "exp/probes.h"

#include "atm/cell.h"

namespace phantom::exp {

void GoodputProbe::mark() {
  t0_ = sim_->now();
  base_.clear();
  for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
    base_.push_back(net_->delivered_cells(s));
  }
}

std::vector<double> GoodputProbe::rates_mbps() const {
  std::vector<double> out;
  const double secs = (sim_->now() - t0_).seconds();
  for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
    const double cells =
        static_cast<double>(net_->delivered_cells(s) - base_[s]);
    out.push_back(secs > 0 ? cells * atm::kCellBits / secs / 1e6 : 0.0);
  }
  return out;
}

double GoodputProbe::total_mbps() const {
  double total = 0.0;
  for (const double r : rates_mbps()) total += r;
  return total;
}

QueueSampler::QueueSampler(sim::Simulator& sim, const atm::OutputPort& port,
                           sim::Time period)
    : sim_{&sim}, port_{&port}, period_{period}, trace_{"queue"} {
  sim_->schedule(sim::Time::zero(), [this] { tick(); });
}

void QueueSampler::tick() {
  trace_.record(sim_->now(), static_cast<double>(port_->queue_length()));
  sim_->schedule(period_, [this] { tick(); });
}

FairShareSampler::FairShareSampler(sim::Simulator& sim,
                                   const atm::PortController& controller,
                                   sim::Time period)
    : sim_{&sim},
      controller_{&controller},
      period_{period},
      trace_{"fair_share"} {
  sim_->schedule(sim::Time::zero(), [this] { tick(); });
}

void FairShareSampler::tick() {
  trace_.record(sim_->now(), controller_->fair_share().bits_per_sec());
  sim_->schedule(period_, [this] { tick(); });
}

}  // namespace phantom::exp
