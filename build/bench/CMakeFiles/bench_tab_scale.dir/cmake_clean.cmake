file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_scale.dir/bench_tab_scale.cc.o"
  "CMakeFiles/bench_tab_scale.dir/bench_tab_scale.cc.o.d"
  "bench_tab_scale"
  "bench_tab_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
