// Pending-event set for the discrete-event kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_function.h"
#include "sim/time.h"

namespace phantom::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint64_t s, std::uint32_t slot)
      : seq_{s}, slot_{slot} {}
  // The seq alone identifies the event; the slot makes cancel O(1)
  // (a direct index into the queue's slot table, validated by seq).
  std::uint64_t seq_ = 0;
  std::uint32_t slot_ = 0;
};

/// Min-heap of timestamped callbacks with deterministic FIFO tie-breaking:
/// events scheduled for the same instant fire in scheduling order. This is
/// what makes simulations reproducible run-to-run regardless of heap
/// internals.
///
/// Layout (see DESIGN.md §11): a flat 4-ary min-heap of trivially
/// copyable {time, seq, slot} nodes over a plain vector of slots that
/// hold the callbacks. Nothing on the schedule/pop path allocates once
/// the vectors have reached the run's high-water mark.
///
/// Cancellation is O(1) and releases the callback (and everything it
/// captured) immediately: the slot is invalidated and freed for reuse,
/// while the heap node remains as a tombstone that is discarded when it
/// reaches the top. A tombstone is detected generationally — its seq no
/// longer matches the slot's, whether the slot is free or was reused —
/// so no per-event hash set of cancelled ids is needed.
class EventQueue {
 public:
  /// Inline capture budget for event callbacks. Sized for the largest
  /// hot-path capture in the library: a Link delivery closure
  /// (shared LinkState handle + sink pointer + a 40-byte atm::Cell) or
  /// a PacketLink closure (sink pointer + 64-byte tcp::Packet), with
  /// headroom for a wrapped std::function (32 bytes on libstdc++).
  /// Callbacks beyond the budget still work — they heap-allocate and
  /// bump InlineFunction's fallback counter.
  static constexpr std::size_t kInlineCallbackBytes = 96;
  using Callback = InlineFunction<kInlineCallbackBytes>;

  /// Schedules `cb` at absolute time `at`. `at` may equal the time of the
  /// event currently executing (zero-delay events are allowed) but must
  /// never be in the past relative to the last popped event — that throws
  /// std::logic_error in every build type.
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event, destroying its callback (and captured
  /// state) immediately. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }
  /// High-water mark of live (scheduled, not yet fired or cancelled)
  /// events over this queue's lifetime.
  [[nodiscard]] std::size_t peak_size() const { return peak_live_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  struct Popped {
    Time time;
    Callback callback;
  };
  Popped pop();

 private:
  // One heap node per scheduled event (plus tombstones of cancelled
  // events until they surface). Trivially copyable on purpose: sifting
  // a 4-ary heap moves nodes, and 24-byte memcpy-able nodes keep that
  // cheap — the callbacks themselves never move after scheduling.
  struct Node {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  // Callback storage, indexed by Node::slot / EventId::slot_. `seq` is
  // the generation check: it matches the node's seq while the event is
  // live, and can never match again after the event fired or was
  // cancelled (seqs are unique), even once the slot is reused.
  struct Slot {
    std::uint64_t seq = 0;  // 0 = free
    Callback callback;
  };

  static constexpr std::size_t kArity = 4;

  [[nodiscard]] static bool before(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  [[nodiscard]] bool is_live(const Node& n) const {
    return slots_[n.slot].seq == n.seq;
  }
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void remove_root() const;
  void drop_cancelled_head() const;
  void free_slot(std::uint32_t slot);

  // `mutable`: const observers (next_time) discard tombstones that have
  // reached the heap top; live events and slots are never touched.
  mutable std::vector<Node> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  std::size_t peak_live_ = 0;
  Time floor_ = Time::zero();  // time of the last popped event
};

}  // namespace phantom::sim
