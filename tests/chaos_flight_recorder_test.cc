// Flight recorder plumbing: failing chaos trials carry the last
// structured events through triage, checkpoints and the search report.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "chaos/json.h"
#include "chaos/runner.h"
#include "chaos/supervisor.h"
#include "chaos/triage.h"
#include "obs/event_log.h"

namespace phantom {
namespace {

using sim::Time;

chaos::ScenarioSpec smoke_spec() {
  chaos::ScenarioSpec spec;
  spec.rate_mbps = 40.0;
  spec.horizon = Time::ms(600);
  return spec;
}

TEST(FlightRecorderTest, FailingTrialAttachesRecentEvents) {
  const auto spec = smoke_spec();
  chaos::TrialOptions opt;
  opt.watchdog.max_events = 5000;  // forces a watchdog failure mid-run
  const auto r = chaos::run_trial(spec, 1, {}, opt);
  ASSERT_TRUE(r.failed());
  if (!obs::kObsEnabled) {
    EXPECT_TRUE(r.flight_recorder.empty());
    return;
  }
  ASSERT_FALSE(r.flight_recorder.empty());
  EXPECT_LE(r.flight_recorder.size(), 16u);
  for (const std::string& line : r.flight_recorder) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos) << line;
  }
}

TEST(FlightRecorderTest, PassingTrialCarriesNoRecorder) {
  const auto spec = smoke_spec();
  const auto r = chaos::run_trial(spec, 1, {});
  ASSERT_FALSE(r.failed()) << r.detail;
  EXPECT_TRUE(r.flight_recorder.empty());
}

TEST(FlightRecorderTest, FailingTrialsAreStillDeterministic) {
  const auto spec = smoke_spec();
  chaos::TrialOptions opt;
  opt.watchdog.max_events = 5000;
  const auto a = chaos::run_trial(spec, 4, {}, opt);
  const auto b = chaos::run_trial(spec, 4, {}, opt);
  EXPECT_EQ(a.flight_recorder, b.flight_recorder);
}

TEST(FlightRecorderTest, TriageKeepsTheRepresentativesRecorder) {
  chaos::TrialResult r;
  r.verdict = chaos::Verdict::kInvariant;
  r.detail = "cell conservation violated";
  r.flight_recorder = {"{\"kind\":\"cell_drop\"}", "{\"kind\":\"rm_forward\"}"};
  chaos::TrialResult later = r;
  later.flight_recorder = {"{\"kind\":\"cell_enqueue\"}"};
  const std::vector<std::pair<int, const chaos::TrialResult*>> failures{
      {0, &r}, {1, &later}};
  const auto classes = chaos::triage_failures(failures);
  ASSERT_EQ(classes.size(), 1u);  // same fingerprint
  EXPECT_EQ(classes[0].flight_recorder, r.flight_recorder);
}

TEST(FlightRecorderTest, CheckpointRowRoundTripsTheRecorder) {
  chaos::TrialResult r;
  r.verdict = chaos::Verdict::kNoReconverge;
  r.detail = "share stuck at 12.5 Mb/s";
  r.events = 123456;
  r.flight_recorder = {
      "{\"t_ns\":1,\"kind\":\"cell_drop\",\"reason\":\"queue_limit\"}",
      "{\"t_ns\":2,\"kind\":\"fault_fired\",\"what\":\"outage \\\"x\\\"\"}"};
  const std::string row = chaos::checkpoint_row(7, "outage:dest0:250:50", r);
  const auto parsed = chaos::parse_checkpoint_row(row);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 7);
  EXPECT_EQ(parsed->second.verdict, r.verdict);
  EXPECT_EQ(parsed->second.flight_recorder, r.flight_recorder);
}

TEST(FlightRecorderTest, OlderCheckpointRowsWithoutRecorderStillParse) {
  chaos::TrialResult r;
  r.verdict = chaos::Verdict::kPass;
  std::string row = chaos::checkpoint_row(3, "", r);
  const auto cut = row.find(", \"flight_recorder\"");
  ASSERT_NE(cut, std::string::npos);
  row = row.substr(0, cut) + "}";  // what a pre-recorder build wrote
  const auto parsed = chaos::parse_checkpoint_row(row);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->second.flight_recorder.empty());
}

TEST(FlightRecorderTest, JsonStringArrayParsing) {
  // JsonLineReader holds a reference; the lines must outlive it.
  const std::string empty_line = "{\"flight_recorder\": []}";
  chaos::JsonLineReader empty{empty_line};
  const auto none = empty.find_string_array("flight_recorder");
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());

  const std::string two_line =
      "{\"flight_recorder\": [\"a\\\"b\", \"c\\\\d\"]}";
  chaos::JsonLineReader two{two_line};
  const auto lines = two.find_string_array("flight_recorder");
  ASSERT_TRUE(lines.has_value());
  ASSERT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[0], "a\"b");
  EXPECT_EQ((*lines)[1], "c\\d");

  const std::string bad_line = "{\"flight_recorder\": [\"unterminated}";
  chaos::JsonLineReader bad{bad_line};
  EXPECT_FALSE(bad.find_string_array("flight_recorder").has_value());
}

}  // namespace
}  // namespace phantom
