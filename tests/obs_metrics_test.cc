// Registry unit tests: registration rules, snapshot formats, histogram.
#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.h"

namespace phantom {
namespace {

using obs::Histogram;
using obs::MetricDef;
using obs::MetricType;
using obs::Registry;
using sim::Time;

MetricDef def(const std::string& name, MetricType type) {
  return {name, "test." + name, type, "units", "Test", "help text"};
}

TEST(RegistryTest, DuplicateNameThrows) {
  Registry reg;
  reg.add_counter(def("a", MetricType::kCounter), [] { return 1u; });
  EXPECT_THROW(
      reg.add_counter(def("a", MetricType::kCounter), [] { return 2u; }),
      std::invalid_argument);
  EXPECT_THROW(reg.add_gauge(def("a", MetricType::kGauge), [] { return 0.0; }),
               std::invalid_argument);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RegistryTest, DefsAreSortedByName) {
  Registry reg;
  reg.add_counter(def("zebra", MetricType::kCounter), [] { return 1u; });
  reg.add_counter(def("alpha", MetricType::kCounter), [] { return 2u; });
  reg.add_gauge(def("mid", MetricType::kGauge), [] { return 3.0; });
  const auto defs = reg.defs();
  ASSERT_EQ(defs.size(), 3u);
  EXPECT_EQ(defs[0]->name, "alpha");
  EXPECT_EQ(defs[1]->name, "mid");
  EXPECT_EQ(defs[2]->name, "zebra");
}

TEST(RegistryTest, SnapshotsPullLiveValues) {
  Registry reg;
  std::uint64_t hits = 0;
  reg.add_counter(def("hits", MetricType::kCounter), [&] { return hits; });
  hits = 41;
  const std::string a = reg.snapshot_json(Time::ms(1));
  hits = 42;
  const std::string b = reg.snapshot_json(Time::ms(2));
  EXPECT_NE(a.find("\"value\":41"), std::string::npos) << a;
  EXPECT_NE(b.find("\"value\":42"), std::string::npos) << b;
}

TEST(RegistryTest, JsonSnapshotIsSingleLine) {
  Registry reg;
  reg.add_counter(def("c", MetricType::kCounter), [] { return 7u; });
  reg.add_gauge(def("g", MetricType::kGauge), [] { return 2.5; });
  const std::string snap = reg.snapshot_json(Time::ms(5));
  EXPECT_EQ(snap.find('\n'), std::string::npos) << snap;
  EXPECT_EQ(snap.front(), '{');
  EXPECT_EQ(snap.back(), '}');
  EXPECT_NE(snap.find("\"time_ns\":5000000"), std::string::npos);
}

TEST(RegistryTest, CsvSnapshotHasOneRowPerScalarMetric) {
  Registry reg;
  reg.add_counter(def("c", MetricType::kCounter), [] { return 7u; });
  reg.add_gauge(def("g", MetricType::kGauge), [] { return 2.5; });
  const std::string csv = reg.snapshot_csv(Time::ms(10));
  EXPECT_NE(csv.find("10,c,counter,units,7\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find("10,g,gauge,units,2.5\n"), std::string::npos) << csv;
  EXPECT_EQ(Registry::csv_header(), "time_ms,name,type,unit,value\n");
}

TEST(HistogramTest, BucketsCountByUpperBoundWithOverflow) {
  Histogram h{{1.0, 10.0, 100.0}};
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.counts()[0], 0u);
}

TEST(RegistryTest, HistogramSnapshotsExpandBuckets) {
  Registry reg;
  Histogram h{{4.0, 16.0}};
  h.observe(3.0);
  h.observe(20.0);
  reg.add_histogram(def("depth", MetricType::kHistogram), &h);
  const std::string json = reg.snapshot_json(Time::zero());
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos) << json;
  const std::string csv = reg.snapshot_csv(Time::zero());
  EXPECT_NE(csv.find("depth.count"), std::string::npos) << csv;
  EXPECT_NE(csv.find("depth.sum"), std::string::npos) << csv;
}

}  // namespace
}  // namespace phantom
