#include "stats/fairness.h"

#include <gtest/gtest.h>

#include <vector>

namespace phantom::stats {
namespace {

using sim::Rate;

TEST(JainIndexTest, EqualRatesArePerfectlyFair) {
  const std::vector<double> r{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(jain_index(r), 1.0);
}

TEST(JainIndexTest, SingleHogGivesOneOverN) {
  const std::vector<double> r{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(r), 0.25);
}

TEST(JainIndexTest, KnownMixedValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42
  const std::vector<double> r{1, 2, 3};
  EXPECT_DOUBLE_EQ(jain_index(r), 36.0 / 42.0);
}

TEST(JainIndexTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(JainIndexTest, ScaleInvariant) {
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b;
  for (double v : a) b.push_back(v * 1e6);
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(MaxMinClosenessTest, IdenticalVectorsScoreOne) {
  const std::vector<double> m{1, 2, 3};
  EXPECT_DOUBLE_EQ(maxmin_closeness(m, m), 1.0);
}

TEST(MaxMinClosenessTest, HalvedRatesScoreHalf) {
  const std::vector<double> m{1, 1};
  const std::vector<double> i{2, 2};
  EXPECT_DOUBLE_EQ(maxmin_closeness(m, i), 0.5);
}

TEST(MaxMinClosenessTest, SymmetricInArguments) {
  const std::vector<double> m{1, 4};
  const std::vector<double> i{2, 2};
  EXPECT_DOUBLE_EQ(maxmin_closeness(m, i), maxmin_closeness(i, m));
}

TEST(MaxMinSolverTest, SingleLinkEqualSplit) {
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(150));
  for (int i = 0; i < 3; ++i) s.add_session({l});
  const auto rates = s.solve();
  ASSERT_EQ(rates.size(), 3u);
  for (const auto& r : rates) EXPECT_DOUBLE_EQ(r.mbits_per_sec(), 50.0);
}

TEST(MaxMinSolverTest, PhantomSessionReducesShareToNPlusOne) {
  // The Phantom equilibrium: n real sessions get u*C/(n+1) each.
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(150));
  for (int i = 0; i < 2; ++i) s.add_session({l});
  const auto rates = s.solve(/*phantom_per_link=*/true);
  ASSERT_EQ(rates.size(), 2u);
  for (const auto& r : rates) EXPECT_DOUBLE_EQ(r.mbits_per_sec(), 50.0);
}

TEST(MaxMinSolverTest, UtilizationScalesCapacity) {
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(100));
  s.add_session({l});
  const auto rates = s.solve(false, 0.95);
  EXPECT_DOUBLE_EQ(rates[0].mbits_per_sec(), 95.0);
}

TEST(MaxMinSolverTest, ClassicTwoBottleneckExample) {
  // Bertsekas-Gallager example: link A cap 10 with sessions {1,2,3},
  // link B cap 20 with sessions {3,4}. Session 3 crosses both.
  // Max-min: s1=s2=s3=10/3 on A; B then has 20-10/3 left for s4.
  MaxMinSolver s;
  const auto a = s.add_link(Rate::bps(10));
  const auto b = s.add_link(Rate::bps(20));
  s.add_session({a});
  s.add_session({a});
  s.add_session({a, b});
  s.add_session({b});
  const auto r = s.solve();
  EXPECT_NEAR(r[0].bits_per_sec(), 10.0 / 3, 1e-9);
  EXPECT_NEAR(r[1].bits_per_sec(), 10.0 / 3, 1e-9);
  EXPECT_NEAR(r[2].bits_per_sec(), 10.0 / 3, 1e-9);
  EXPECT_NEAR(r[3].bits_per_sec(), 20.0 - 10.0 / 3, 1e-9);
}

TEST(MaxMinSolverTest, ParkingLotLongSessionGetsBottleneckShare) {
  // 3 links in a row, one long session over all three plus one local
  // session per link: every link splits evenly two ways.
  MaxMinSolver s;
  std::vector<std::size_t> path;
  for (int i = 0; i < 3; ++i) path.push_back(s.add_link(Rate::mbps(150)));
  s.add_session(path);                       // long session
  for (const auto l : path) s.add_session({l});  // locals
  const auto r = s.solve();
  for (const auto& x : r) EXPECT_DOUBLE_EQ(x.mbits_per_sec(), 75.0);
}

TEST(MaxMinSolverTest, HeterogeneousBottlenecks) {
  // Long session constrained by the narrow middle link; locals on wide
  // links pick up the slack.
  MaxMinSolver s;
  const auto l0 = s.add_link(Rate::mbps(100));
  const auto l1 = s.add_link(Rate::mbps(10));
  const auto l2 = s.add_link(Rate::mbps(100));
  s.add_session({l0, l1, l2});  // long
  s.add_session({l0});
  s.add_session({l1});
  s.add_session({l2});
  const auto r = s.solve();
  EXPECT_DOUBLE_EQ(r[0].mbits_per_sec(), 5.0);   // long: half of narrow link
  EXPECT_DOUBLE_EQ(r[2].mbits_per_sec(), 5.0);   // narrow-link local
  EXPECT_DOUBLE_EQ(r[1].mbits_per_sec(), 95.0);  // wide-link locals
  EXPECT_DOUBLE_EQ(r[3].mbits_per_sec(), 95.0);
}

TEST(MaxMinSolverTest, AllocationsAreFeasible) {
  // Property: on every link the allocated sum never exceeds capacity.
  MaxMinSolver s;
  const auto a = s.add_link(Rate::mbps(45));
  const auto b = s.add_link(Rate::mbps(150));
  const auto c = s.add_link(Rate::mbps(2));
  s.add_session({a, b});
  s.add_session({b, c});
  s.add_session({a, b, c});
  s.add_session({b});
  const auto r = s.solve();
  const double on_a = r[0].bits_per_sec() + r[2].bits_per_sec();
  const double on_b = r[0].bits_per_sec() + r[1].bits_per_sec() +
                      r[2].bits_per_sec() + r[3].bits_per_sec();
  const double on_c = r[1].bits_per_sec() + r[2].bits_per_sec();
  EXPECT_LE(on_a, 45e6 * (1 + 1e-9));
  EXPECT_LE(on_b, 150e6 * (1 + 1e-9));
  EXPECT_LE(on_c, 2e6 * (1 + 1e-9));
  // And link b (the only bottleneck for session 3) is saturated.
  EXPECT_NEAR(on_b, 150e6, 1.0);
}

TEST(MaxMinSolverTest, RejectsBadInput) {
  MaxMinSolver s;
  EXPECT_THROW(s.add_link(Rate::zero()), std::invalid_argument);
  const auto l = s.add_link(Rate::mbps(1));
  EXPECT_THROW(s.add_session({}), std::invalid_argument);
  EXPECT_THROW(s.add_session({l + 5}), std::out_of_range);
}

// Parameterized property sweep: n greedy sessions on one link with a
// phantom each get u*C/(n+1).
class PhantomEquilibriumSweep : public ::testing::TestWithParam<int> {};

TEST_P(PhantomEquilibriumSweep, NPlusOneRule) {
  const int n = GetParam();
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(150));
  for (int i = 0; i < n; ++i) s.add_session({l});
  const auto r = s.solve(/*phantom_per_link=*/true, 0.95);
  for (const auto& x : r) {
    EXPECT_NEAR(x.mbits_per_sec(), 0.95 * 150.0 / (n + 1), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, PhantomEquilibriumSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 50));

}  // namespace
}  // namespace phantom::stats
