// Misbehave faults through the chaos pipeline: opt-in generation,
// grammar round-trips, plan-aware triage, checkpoint round-trips, and
// an isolated smoke search that must finish with zero process crashes.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "chaos/generator.h"
#include "chaos/search.h"
#include "chaos/supervisor.h"
#include "chaos/triage.h"
#include "fault/fault_injector.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace phantom {
namespace {

using fault::FaultEvent;
using sim::Time;

chaos::ScenarioSpec spec_of(int sessions = 4) {
  chaos::ScenarioSpec spec;
  spec.sessions = sessions;
  return spec;
}

chaos::GenOptions with_misbehave() {
  chaos::GenOptions opt;
  opt.misbehave = true;
  return opt;
}

TEST(MisbehaveGeneratorTest, DefaultOptionsNeverGenerateMisbehave) {
  // The flag is opt-in so seeds (and checkpoints) recorded before the
  // fault kind existed keep generating identical plans.
  sim::Rng rng{2026};
  for (int i = 0; i < 50; ++i) {
    const auto plan = chaos::generate_plan(rng, spec_of());
    for (const auto& e : plan.events) {
      EXPECT_NE(e.kind, FaultEvent::Kind::kMisbehave);
      EXPECT_NE(e.kind, FaultEvent::Kind::kComply);
    }
  }
}

TEST(MisbehaveGeneratorTest, OptInEventuallySamplesMisbehaveAndRoundTrips) {
  sim::Rng rng{2026};
  int misbehaves = 0;
  for (int i = 0; i < 50; ++i) {
    const auto plan = chaos::generate_plan(rng, spec_of(), with_misbehave());
    EXPECT_EQ(fault::FaultPlan::parse(plan.to_spec()), plan) << plan.to_spec();
    for (const auto& e : plan.events) {
      misbehaves += e.kind == FaultEvent::Kind::kMisbehave;
    }
  }
  EXPECT_GT(misbehaves, 5);  // 1 kind in 7: ~dozens over 50 plans
}

TEST(MisbehaveGeneratorTest, EveryMisbehaveHasALaterComplyOfTheSameSession) {
  // Mirrors the leave/join pairing guarantee: the network must end the
  // run in its nominal configuration or the differential oracle would
  // flag every misbehave plan.
  sim::Rng rng{7};
  for (int i = 0; i < 50; ++i) {
    const auto plan = chaos::generate_plan(rng, spec_of(), with_misbehave());
    for (const auto& e : plan.events) {
      if (e.kind != FaultEvent::Kind::kMisbehave) continue;
      bool complied = false;
      for (const auto& c : plan.events) {
        complied |= c.kind == FaultEvent::Kind::kComply &&
                    c.target.index == e.target.index && c.at > e.at;
      }
      EXPECT_TRUE(complied) << plan.to_spec();
    }
  }
}

TEST(MisbehaveGeneratorTest, MisbehavePlansApplyCleanly) {
  sim::Rng rng{11};
  for (int i = 0; i < 20; ++i) {
    const auto plan = chaos::generate_plan(rng, spec_of(), with_misbehave());
    sim::Simulator sim{1};
    const auto spec = spec_of();
    topo::AbrNetwork net{sim, spec.factory()};
    chaos::build_topology(spec, net);
    fault::FaultInjector injector{sim, net};
    EXPECT_NO_THROW(injector.apply(plan)) << plan.to_spec();
  }
}

TEST(MisbehaveGeneratorTest, SameSeedSamePlanWithMisbehaveOn) {
  sim::Rng a{42};
  sim::Rng b{42};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(chaos::generate_plan(a, spec_of(), with_misbehave()),
              chaos::generate_plan(b, spec_of(), with_misbehave()));
  }
}

TEST(MisbehaveTriageTest, GroupsByAdversaryPressureNotOracleMessage) {
  // Two trials under the same adversary pressure fail with different
  // oracle messages; the plan-aware fingerprint folds them anyway.
  fault::FaultPlan plan;
  plan.misbehave(2, Time::ms(200), fault::MisbehaveMode::kGreedy)
      .comply(2, Time::ms(300));
  chaos::TrialResult a;
  a.verdict = chaos::Verdict::kInvariant;
  a.detail = "fair-share-retention: session 0 at 0.31 < 0.85";
  chaos::TrialResult b;
  b.verdict = chaos::Verdict::kInvariant;
  b.detail = "fair-share-retention: session 1 at 0.07 < 0.85";
  EXPECT_EQ(chaos::failure_fingerprint(a, &plan),
            chaos::failure_fingerprint(b, &plan));
  EXPECT_EQ(chaos::failure_fingerprint(a, &plan), "invariant|misbehave|1");

  // Distinct adversary counts are distinct classes.
  fault::FaultPlan two = plan;
  two.misbehave(1, Time::ms(220), fault::MisbehaveMode::kForge)
      .comply(1, Time::ms(320));
  EXPECT_EQ(chaos::failure_fingerprint(a, &two), "invariant|misbehave|2");

  // A process crash keeps its signal fingerprint: the crash identity
  // matters more than what provoked it.
  chaos::TrialResult crash;
  crash.verdict = chaos::Verdict::kProcessCrash;
  crash.crash_signal = "SIGSEGV";
  EXPECT_EQ(chaos::failure_fingerprint(crash, &plan),
            chaos::failure_fingerprint(crash));

  // Null or misbehave-free plans fall back to the plain fingerprint.
  fault::FaultPlan benign;
  benign.restart(fault::dest(0), Time::ms(100));
  EXPECT_EQ(chaos::failure_fingerprint(a, nullptr),
            chaos::failure_fingerprint(a));
  EXPECT_EQ(chaos::failure_fingerprint(a, &benign),
            chaos::failure_fingerprint(a));

  // And the tuple-based grouping uses it: one class for a + b.
  const std::vector<
      std::tuple<int, const chaos::TrialResult*, const fault::FaultPlan*>>
      failing{{0, &a, &plan}, {3, &b, &plan}};
  const auto classes = chaos::triage_failures(failing);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].trials, (std::vector<int>{0, 3}));
}

TEST(MisbehaveCheckpointTest, RowsRoundTripMisbehaveSpecs) {
  fault::FaultPlan plan;
  plan.misbehave(1, Time::ms(210), fault::MisbehaveMode::kPartial, 0.35)
      .comply(1, Time::ms(340));
  chaos::TrialResult r;
  r.verdict = chaos::Verdict::kNoReconverge;
  r.detail = "share never returned";
  const std::string row = chaos::checkpoint_row(7, plan.to_spec(), r);
  std::string plan_spec;
  const auto parsed = chaos::parse_checkpoint_row(row, &plan_spec);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 7);
  EXPECT_EQ(parsed->second.verdict, chaos::Verdict::kNoReconverge);
  EXPECT_EQ(fault::FaultPlan::parse(plan_spec), plan);
}

TEST(MisbehaveSearchTest, IsolatedSmokeHasZeroProcessCrashes) {
  // The PR's chaos acceptance: a misbehave-enabled search completes
  // under process isolation without a single child dying — source
  // defection stresses the policing/invariant code paths, it must not
  // crash them. Deterministic: same options, byte-identical report.
  chaos::ScenarioSpec spec;
  spec.rate_mbps = 40.0;
  spec.horizon = Time::ms(600);
  chaos::SearchOptions opt;
  opt.trials = 6;
  opt.seed = 5;
  opt.isolate = true;
  opt.jobs = 2;
  opt.shrink = true;
  opt.gen.misbehave = true;
  const auto report = chaos::run_search(spec, opt);
  EXPECT_EQ(report.trials_run, 6);
  for (const auto& f : report.failures) {
    EXPECT_NE(f.result.verdict, chaos::Verdict::kProcessCrash)
        << f.result.crash_signal << ": " << f.result.stderr_tail;
    // A shrunk plan must replay to the same verdict — that is what the
    // report's replay command promises.
    EXPECT_EQ(f.shrunk_result.verdict, f.result.verdict);
  }
  const auto again = chaos::run_search(spec, opt);
  EXPECT_EQ(report.to_json(), again.to_json());
}

}  // namespace
}  // namespace phantom
