#include "chaos/isolate.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <utility>

#ifdef __linux__
#include <sys/prctl.h>
#endif

// ASan/TSan reserve terabytes of virtual address space for shadow
// memory, so RLIMIT_AS would kill every child at startup.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PHANTOM_ISOLATE_SANITIZED 1
#endif
#if !defined(PHANTOM_ISOLATE_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PHANTOM_ISOLATE_SANITIZED 1
#endif
#endif

namespace phantom::chaos {
namespace {

// ---- pipe frame protocol -------------------------------------------------
//
// The child writes 'P' (progress) frames while the simulation runs and
// exactly one 'R' (result) frame on completion. Parent and child are
// the same binary on the same machine, so integers travel in native
// byte order and doubles travel by bit pattern — decoding a healthy
// result is bit-exact.

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void append_i64(std::string& out, std::int64_t v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

void append_double(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  append_u64(out, bits);
}

void append_str(std::string& out, const std::string& s) {
  append_u64(out, s.size());
  out += s;
}

/// EINTR-safe full write; gives up quietly on a broken pipe (the parent
/// is gone — nobody is left to read a result anyway).
void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return;
    }
  }
}

void write_progress_frame(int fd, std::uint64_t events) {
  std::string frame;
  append_u8(frame, 'P');
  append_u64(frame, events);
  write_all(fd, frame);
}

void write_result_frame(int fd, const TrialResult& r) {
  std::string frame;
  append_u8(frame, 'R');
  std::string body;
  append_u8(body, static_cast<std::uint8_t>(r.verdict));
  append_u64(body, r.events);
  append_u64(body, r.violations);
  append_u8(body, r.reconverge_latency.has_value() ? 1 : 0);
  append_i64(body,
             r.reconverge_latency ? r.reconverge_latency->nanoseconds() : 0);
  append_double(body, r.settled_share_mbps);
  append_double(body, r.peak_queue_cells);
  append_str(body, r.detail);
  append_u64(body, r.flight_recorder.size());
  for (const std::string& line : r.flight_recorder) append_str(body, line);
  append_u64(frame, body.size());
  frame += body;
  write_all(fd, frame);
}

/// Bounds-checked reader over the parent's accumulated pipe bytes.
struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  [[nodiscard]] bool have(std::size_t n) const { return buf.size() - pos >= n; }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, buf.data() + pos, 8);
    pos += 8;
    return v;
  }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
};

struct ParsedFrames {
  std::optional<TrialResult> result;
  std::uint64_t progress = 0;  ///< last reported event count
};

[[nodiscard]] ParsedFrames parse_frames(const std::string& buf) {
  ParsedFrames out;
  Reader r{buf};
  while (r.have(1)) {
    const char tag = buf[r.pos];
    if (tag == 'P') {
      if (!r.have(9)) break;
      ++r.pos;
      out.progress = r.u64();
    } else if (tag == 'R') {
      if (!r.have(9)) break;
      ++r.pos;
      const std::uint64_t len = r.u64();
      if (!r.have(len)) break;
      const std::size_t end = r.pos + len;
      TrialResult res;
      res.verdict = static_cast<Verdict>(buf[r.pos]);
      ++r.pos;
      res.events = r.u64();
      res.violations = r.u64();
      const bool has_latency = buf[r.pos] != 0;
      ++r.pos;
      const std::int64_t latency_ns = static_cast<std::int64_t>(r.u64());
      if (has_latency) res.reconverge_latency = sim::Time::ns(latency_ns);
      res.settled_share_mbps = r.f64();
      res.peak_queue_cells = r.f64();
      const std::uint64_t detail_len = r.u64();
      if (detail_len > end - r.pos) break;  // corrupt frame
      res.detail = buf.substr(r.pos, detail_len);
      r.pos += detail_len;
      if (end - r.pos < 8) break;
      const std::uint64_t n_flight = r.u64();
      bool flight_ok = true;
      for (std::uint64_t i = 0; i < n_flight; ++i) {
        if (end - r.pos < 8) { flight_ok = false; break; }
        const std::uint64_t line_len = r.u64();
        if (line_len > end - r.pos) { flight_ok = false; break; }
        res.flight_recorder.push_back(buf.substr(r.pos, line_len));
        r.pos += line_len;
      }
      if (!flight_ok || r.pos != end) break;  // corrupt frame
      out.progress = res.events;
      out.result = std::move(res);
    } else {
      break;  // corrupt stream; keep what decoded so far
    }
  }
  return out;
}

// ---- child-side setup ----------------------------------------------------

void apply_rlimits(const IsolateOptions& opt) {
  if (opt.cpu_limit_sec > 0) {
    // Soft limit raises SIGXCPU; the hard limit one second later is the
    // kernel's SIGKILL backstop in case the process ignores it.
    rlimit lim{};
    lim.rlim_cur = static_cast<rlim_t>(opt.cpu_limit_sec);
    lim.rlim_max = static_cast<rlim_t>(opt.cpu_limit_sec + 1);
    ::setrlimit(RLIMIT_CPU, &lim);
  }
#ifndef PHANTOM_ISOLATE_SANITIZED
  if (opt.memory_limit_mb > 0) {
    rlimit lim{};
    lim.rlim_cur = lim.rlim_max =
        static_cast<rlim_t>(opt.memory_limit_mb) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &lim);
  }
#endif
}

[[noreturn]] void child_main(const IsolatedTrial::Body& body, int result_fd,
                             int stderr_fd, const IsolateOptions& opt) {
  ::dup2(stderr_fd, 2);
  ::close(stderr_fd);
  // The parent owns interrupt handling: on Ctrl-C it drains in-flight
  // children, so the terminal's process-group SIGINT must not kill them
  // first. A vanished parent is handled by EPIPE (ignored) and, on
  // Linux, the parent-death signal.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGPIPE, SIG_IGN);
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  apply_rlimits(opt);
  try {
    body(result_fd);
  } catch (...) {
    ::_exit(82);  // Body threw past its own catch blocks: still contained.
  }
  ::_exit(0);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string{what} + ": " + std::strerror(errno);
}

/// Drains `fd` without blocking into `out`. Returns false once the fd
/// reached EOF (caller should close it).
[[nodiscard]] bool drain_fd(int fd, std::string& out) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return false;
    } else if (errno == EINTR) {
      continue;
    } else {
      return true;  // EAGAIN: nothing more for now
    }
  }
}

}  // namespace

std::string signal_name(int sig) {
  switch (sig) {
    case SIGHUP:  return "SIGHUP";
    case SIGINT:  return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL:  return "SIGILL";
    case SIGTRAP: return "SIGTRAP";
    case SIGABRT: return "SIGABRT";
    case SIGBUS:  return "SIGBUS";
    case SIGFPE:  return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default:      return "SIG" + std::to_string(sig);
  }
}

ChildExit classify_wait_status(int wait_status, bool timed_out) {
  ChildExit e;
  if (WIFSIGNALED(wait_status)) {
    e.kind = timed_out ? ChildExit::Kind::kTimedOut : ChildExit::Kind::kSignaled;
    e.code = WTERMSIG(wait_status);
  } else if (WIFEXITED(wait_status)) {
    // A parent SIGKILL can race the child's own exit; a child that
    // delivered an exit status was not meaningfully timed out.
    e.kind = ChildExit::Kind::kExited;
    e.code = WEXITSTATUS(wait_status);
  }
  return e;
}

TrialResult process_crash_result(const ChildExit& how,
                                 const std::string& stderr_tail,
                                 std::uint64_t events_so_far,
                                 std::int64_t timeout_ms) {
  TrialResult r;
  r.verdict = Verdict::kProcessCrash;
  r.events = events_so_far;
  r.stderr_tail = stderr_tail;
  switch (how.kind) {
    case ChildExit::Kind::kExited:
      r.exit_code = how.code;
      r.detail = "trial process exited with code " + std::to_string(how.code) +
                 " without reporting a result";
      break;
    case ChildExit::Kind::kSignaled:
      r.crash_signal = signal_name(how.code);
      r.detail = "trial process killed by " + r.crash_signal;
      break;
    case ChildExit::Kind::kTimedOut:
      r.crash_signal = signal_name(how.code);
      r.detail = "trial process exceeded the " + std::to_string(timeout_ms) +
                 " ms wall-clock deadline";
      break;
  }
  if (events_so_far > 0) {
    r.detail += " after ~" + std::to_string(events_so_far) + " events";
  }
  return r;
}

std::int64_t monotonic_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

bool address_space_limit_supported() {
#ifdef PHANTOM_ISOLATE_SANITIZED
  return false;
#else
  return true;
#endif
}

std::unique_ptr<IsolatedTrial> IsolatedTrial::spawn(const Body& body,
                                                    const IsolateOptions& opt,
                                                    std::string& infra_error) {
  int rpipe[2] = {-1, -1};
  int epipe[2] = {-1, -1};
  if (::pipe(rpipe) != 0) {
    infra_error = errno_message("pipe");
    return nullptr;
  }
  if (::pipe(epipe) != 0) {
    infra_error = errno_message("pipe");
    ::close(rpipe[0]);
    ::close(rpipe[1]);
    return nullptr;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    infra_error = errno_message("fork");
    for (const int fd : {rpipe[0], rpipe[1], epipe[0], epipe[1]}) ::close(fd);
    return nullptr;
  }
  if (pid == 0) {
    ::close(rpipe[0]);
    ::close(epipe[0]);
    child_main(body, rpipe[1], epipe[1], opt);  // never returns
  }
  ::close(rpipe[1]);
  ::close(epipe[1]);
  set_nonblocking(rpipe[0]);
  set_nonblocking(epipe[0]);

  auto t = std::unique_ptr<IsolatedTrial>(new IsolatedTrial);
  t->pid_ = pid;
  t->result_fd_ = rpipe[0];
  t->stderr_fd_ = epipe[0];
  t->timeout_ms_ = opt.timeout_ms;
  t->stderr_tail_bytes_ = opt.stderr_tail_bytes;
  if (opt.timeout_ms > 0) t->deadline_ms_ = monotonic_ms() + opt.timeout_ms;
  infra_error.clear();
  return t;
}

IsolatedTrial::~IsolatedTrial() {
  if (pid_ > 0 && !reaped_) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, &wait_status_, 0);
  }
  if (result_fd_ >= 0) ::close(result_fd_);
  if (stderr_fd_ >= 0) ::close(stderr_fd_);
}

bool IsolatedTrial::pump() {
  if (reaped_) return true;
  if (result_fd_ >= 0 && !drain_fd(result_fd_, result_buf_)) {
    ::close(result_fd_);
    result_fd_ = -1;
  }
  if (stderr_fd_ >= 0) {
    const bool open = drain_fd(stderr_fd_, stderr_tail_);
    // Ring-buffer the tail so a log-spewing child stays O(tail).
    if (stderr_tail_.size() > 2 * stderr_tail_bytes_) {
      stderr_tail_.erase(0, stderr_tail_.size() - stderr_tail_bytes_);
    }
    if (!open) {
      ::close(stderr_fd_);
      stderr_fd_ = -1;
    }
  }
  if (result_fd_ < 0 && stderr_fd_ < 0) {
    // Both pipes at EOF: the child is gone (every write end lived in
    // it), so this wait cannot block meaningfully.
    ::waitpid(pid_, &wait_status_, 0);
    reaped_ = true;
  }
  return reaped_;
}

void IsolatedTrial::kill_child(bool timed_out) {
  if (pid_ > 0 && !reaped_) {
    if (timed_out) killed_on_timeout_ = true;
    ::kill(pid_, SIGKILL);
  }
}

TrialResult IsolatedTrial::result() const {
  const ParsedFrames frames = parse_frames(result_buf_);
  const ChildExit how = classify_wait_status(wait_status_, killed_on_timeout_);
  if (frames.result && how.kind == ChildExit::Kind::kExited && how.code == 0) {
    return *frames.result;  // healthy delivery: bit-exact in-process result
  }
  std::string tail = stderr_tail_;
  if (tail.size() > stderr_tail_bytes_) {
    tail.erase(0, tail.size() - stderr_tail_bytes_);
  }
  return process_crash_result(how, tail, frames.progress, timeout_ms_);
}

IsolatedTrial::Body trial_body(ScenarioSpec spec, std::uint64_t seed,
                               fault::FaultPlan plan, TrialOptions opt,
                               std::optional<Baseline> baseline) {
  return [spec = std::move(spec), seed, plan = std::move(plan),
          opt = std::move(opt), baseline = std::move(baseline)](int fd) mutable {
    opt.watchdog.progress_every = 65'536;
    opt.watchdog.on_progress = [fd](std::uint64_t events) {
      write_progress_frame(fd, events);
    };
    const TrialResult r =
        run_trial(spec, seed, plan, opt, baseline ? &*baseline : nullptr);
    write_result_frame(fd, r);
  };
}

TrialResult run_trial_isolated(const ScenarioSpec& spec, std::uint64_t seed,
                               const fault::FaultPlan& plan,
                               const TrialOptions& opt,
                               const Baseline* baseline,
                               const IsolateOptions& iso) {
  std::string infra_error;
  auto body = trial_body(spec, seed, plan, opt,
                         baseline ? std::optional<Baseline>{*baseline}
                                  : std::nullopt);
  std::unique_ptr<IsolatedTrial> t;
  // One retry for transient fork/pipe failure; persistent infra
  // breakage is a harness error, not a verdict.
  for (int attempt = 0; attempt < 2 && !t; ++attempt) {
    t = IsolatedTrial::spawn(body, iso, infra_error);
  }
  if (!t) {
    throw std::runtime_error{"chaos isolate: " + infra_error};
  }
  while (!t->pump()) {
    pollfd fds[2];
    nfds_t n = 0;
    if (t->result_fd() >= 0) fds[n++] = {t->result_fd(), POLLIN, 0};
    if (t->stderr_fd() >= 0) fds[n++] = {t->stderr_fd(), POLLIN, 0};
    int timeout = -1;
    if (t->deadline_ms()) {
      const std::int64_t left = *t->deadline_ms() - monotonic_ms();
      if (left <= 0) {
        t->kill_child(/*timed_out=*/true);
        timeout = 50;  // the EOF after SIGKILL arrives almost at once
      } else {
        timeout = static_cast<int>(left > 1'000'000 ? 1'000'000 : left);
      }
    }
    ::poll(fds, n, timeout);
  }
  return t->result();
}

}  // namespace phantom::chaos
