# Empty dependencies file for tcp_vegas_test.
# This may be replaced when dependencies are built.
