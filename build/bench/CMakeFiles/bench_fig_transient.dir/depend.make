# Empty dependencies file for bench_fig_transient.
# This may be replaced when dependencies are built.
