file(REMOVE_RECURSE
  "CMakeFiles/atm_priority_test.dir/atm_priority_test.cc.o"
  "CMakeFiles/atm_priority_test.dir/atm_priority_test.cc.o.d"
  "atm_priority_test"
  "atm_priority_test.pdb"
  "atm_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
