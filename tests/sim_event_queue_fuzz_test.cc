// Differential fuzz: the production EventQueue (flat 4-ary heap,
// generation-checked cancellation) against an obviously-correct
// reference model (stable-ordered map keyed by (time, seq)), driven by
// the same random operation stream. Any divergence in pop order, pop
// timestamps, or cancel liveness is a kernel bug — this is the test
// that guards the simulator's determinism contract across rewrites.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace phantom::sim {
namespace {

/// Reference model: ordered map of (time, insertion serial) -> payload.
/// std::map iteration order IS the specified pop order; cancellation is
/// erase-by-handle. No heap, no tombstones, nothing clever.
class ReferenceQueue {
 public:
  using Key = std::pair<Time, std::uint64_t>;

  Key schedule(Time at, int payload) {
    const Key k{at, next_serial_++};
    events_.emplace(k, payload);
    return k;
  }
  bool cancel(const Key& k) { return events_.erase(k) > 0; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  std::pair<Time, int> pop() {
    auto it = events_.begin();
    std::pair<Time, int> out{it->first.first, it->second};
    events_.erase(it);
    return out;
  }

 private:
  std::map<Key, int> events_;
  std::uint64_t next_serial_ = 0;
};

struct LivePair {
  EventId real_id;
  ReferenceQueue::Key ref_key;
};

void run_differential(std::uint32_t seed, int ops) {
  std::mt19937 rng{seed};
  EventQueue real;
  ReferenceQueue ref;
  std::vector<LivePair> live;  // handles issued so far (some stale)
  Time floor = Time::zero();
  int next_payload = 0;
  int last_fired = -1;  // written by every real callback when invoked

  auto do_pop = [&] {
    last_fired = -1;
    auto popped = real.pop();
    popped.callback();
    const auto expected = ref.pop();
    EXPECT_EQ(popped.time, expected.first) << "pop timestamp diverged";
    EXPECT_EQ(last_fired, expected.second) << "pop order diverged";
    floor = popped.time;
  };

  for (int op = 0; op < ops; ++op) {
    const int roll = static_cast<int>(rng() % 100);
    if (roll < 55 || real.empty()) {
      // Schedule. The tight delay range (0..49 ns) makes same-timestamp
      // collisions — the FIFO tie-break path — routine, not rare.
      const Time at = floor + Time::ns(static_cast<std::int64_t>(rng() % 50));
      const int payload = next_payload++;
      live.push_back(LivePair{
          real.schedule(at, [payload, &last_fired] { last_fired = payload; }),
          ref.schedule(at, payload)});
    } else if (roll < 75 && !live.empty()) {
      // Cancel a random (possibly stale) handle; both sides must agree
      // on whether it still referred to a live event.
      const std::size_t i = rng() % live.size();
      const bool ref_was_live = ref.cancel(live[i].ref_key);
      const std::size_t before = real.size();
      real.cancel(live[i].real_id);
      const bool real_was_live = real.size() != before;
      ASSERT_EQ(real_was_live, ref_was_live) << "cancel liveness diverged";
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      do_pop();
    }
    ASSERT_EQ(real.size(), ref.size());
  }
  while (!real.empty()) do_pop();
  EXPECT_TRUE(ref.empty());
}

TEST(EventQueueFuzzTest, MatchesReferenceModelAcrossSeeds) {
  for (std::uint32_t seed : {1u, 2u, 7u, 42u, 1996u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_differential(seed, 4000);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace phantom::sim
