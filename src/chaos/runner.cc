#include "chaos/runner.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "exp/probes.h"
#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "obs/event_log.h"
#include "stats/recovery.h"

namespace phantom::chaos {
namespace {

using sim::Time;

/// Flight-recorder sizing: the ring holds enough recent history to
/// cover several control intervals; failures attach the last few lines.
constexpr std::size_t kFlightRingCapacity = 1024;
constexpr std::size_t kFlightTailDepth = 16;

[[nodiscard]] std::string fmt_mbps(double bps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f Mb/s", bps * 1e-6);
  return buf;
}

/// One trial's simulation stack; member order is construction order.
struct Rig {
  sim::Simulator sim;
  topo::AbrNetwork net;
  atm::OutputPort* bottleneck;

  Rig(const ScenarioSpec& spec, std::uint64_t seed)
      : sim{seed}, net{sim, spec.factory()} {
    bottleneck = &build_topology(spec, net);
  }
};

[[nodiscard]] sim::RunGuard guard_for(const ScenarioSpec& spec,
                                      const WatchdogLimits& wd) {
  sim::RunGuard g;
  g.deadline = spec.horizon;
  g.max_events = wd.max_events;
  g.max_events_per_instant = wd.max_events_per_instant;
  g.progress_every = wd.progress_every;
  g.on_progress = wd.on_progress;
  return g;
}

[[nodiscard]] double settled_share_bps(const ScenarioSpec& spec,
                                       const exp::FairShareSampler& share) {
  const Time window = std::min(spec.horizon, Time::ms(50));
  return stats::mean_in_window(share.trace().samples(), spec.horizon - window,
                               spec.horizon);
}

[[nodiscard]] std::uint64_t total_delivered(const topo::AbrNetwork& net) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < net.num_sessions(); ++s) {
    total += net.delivered_cells(s);
  }
  return total;
}

}  // namespace

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass:          return "pass";
    case Verdict::kWatchdog:      return "watchdog";
    case Verdict::kInvariant:     return "invariant";
    case Verdict::kNoReconverge:  return "no-reconverge";
    case Verdict::kDifferential:  return "differential";
    case Verdict::kCrash:         return "crash";
    case Verdict::kProcessCrash:  return "process-crash";
  }
  return "?";
}

std::optional<Verdict> verdict_from_string(const std::string& name) {
  for (const Verdict v :
       {Verdict::kPass, Verdict::kWatchdog, Verdict::kInvariant,
        Verdict::kNoReconverge, Verdict::kDifferential, Verdict::kCrash,
        Verdict::kProcessCrash}) {
    if (name == to_string(v)) return v;
  }
  return std::nullopt;
}

Baseline run_baseline(const ScenarioSpec& spec, std::uint64_t seed,
                      const TrialOptions& opt) {
  Rig rig{spec, seed};
  exp::FairShareSampler share{rig.sim, rig.bottleneck->controller()};
  if (opt.prepare) opt.prepare(rig.sim, rig.net);
  rig.net.start_all(Time::zero(), Time::zero());
  const sim::RunOutcome outcome =
      rig.sim.run_guarded(guard_for(spec, opt.watchdog));
  if (outcome != sim::RunOutcome::kDrained &&
      outcome != sim::RunOutcome::kDeadline) {
    throw std::runtime_error{
        std::string{"chaos: fault-free baseline run tripped the watchdog ("} +
        sim::to_string(outcome) + ")"};
  }
  Baseline base;
  base.settled_share_bps = settled_share_bps(spec, share);
  base.delivered_cells = total_delivered(rig.net);
  return base;
}

TrialResult run_trial(const ScenarioSpec& spec, std::uint64_t seed,
                      const fault::FaultPlan& plan, const TrialOptions& opt,
                      const Baseline* baseline) {
  TrialResult r;
  obs::EventLog log{kFlightRingCapacity};  // outlives the rig holding pointers
  Rig rig{spec, seed};
  rig.net.attach_event_log(&log);
  fault::FaultInjector injector{rig.sim, rig.net};
  injector.set_event_log(&log);
  // Failure verdicts carry the tail of the event log — what the network
  // was doing just before the oracle tripped.
  const auto fail = [&r, &log]() -> TrialResult& {
    r.flight_recorder = log.tail_jsonl(kFlightTailDepth);
    return r;
  };
  try {
    injector.apply(plan);
  } catch (const std::exception& e) {
    r.verdict = Verdict::kCrash;
    r.detail = std::string{"applying plan: "} + e.what();
    return fail();
  }
  fault::InvariantMonitor monitor{rig.sim, rig.net, opt.oracle.monitor_period};
  monitor.set_event_log(&log, kFlightTailDepth);
  exp::FairShareSampler share{rig.sim, rig.bottleneck->controller()};
  exp::QueueSampler queue{rig.sim, *rig.bottleneck};
  if (opt.prepare) opt.prepare(rig.sim, rig.net);
  rig.net.start_all(Time::zero(), Time::zero());

  sim::RunOutcome outcome;
  try {
    outcome = rig.sim.run_guarded(guard_for(spec, opt.watchdog));
  } catch (const std::exception& e) {
    r.verdict = Verdict::kCrash;
    r.detail = e.what();
    r.events = rig.sim.events_executed();
    return fail();
  }
  monitor.check_now();
  r.events = rig.sim.events_executed();
  r.violations = monitor.violations().size();
  r.peak_queue_cells =
      stats::peak_in_window(queue.trace().samples(), Time::zero(), spec.horizon);
  r.settled_share_mbps = settled_share_bps(spec, share) * 1e-6;

  // 1. Watchdog: a run that exhausted its budgets has no meaningful
  // steady state to judge.
  if (outcome == sim::RunOutcome::kEventBudget ||
      outcome == sim::RunOutcome::kLivelock) {
    r.verdict = Verdict::kWatchdog;
    r.detail = std::string{sim::to_string(outcome)} + " after " +
               std::to_string(r.events) + " events at " +
               rig.sim.now().to_string();
    return fail();
  }

  // 2. Invariants: the machine-checked bookkeeping must stay clean.
  if (!monitor.violations().empty()) {
    const auto& v = monitor.violations().front();
    r.verdict = Verdict::kInvariant;
    r.detail = v.invariant + " at " + v.time.to_string() + ": " + v.detail +
               (r.violations > 1
                    ? " (+" + std::to_string(r.violations - 1) + " more)"
                    : "");
    return fail();
  }

  // 3. Reconvergence: back to the pre-fault operating point within the
  // deadline after the last fault stops perturbing the network.
  if (!plan.empty()) {
    const Time first = plan.first_fault_time();
    const double target = stats::mean_in_window(share.trace().samples(),
                                                first * 0.5, first);
    const Time required_by =
        plan.last_recovery_time() + opt.oracle.recovery_deadline;
    if (target > 0.0 && required_by + opt.oracle.hold <= spec.horizon) {
      r.reconverge_latency =
          stats::time_to_reconverge(share.trace().samples(), first, target,
                                    opt.oracle.rel_tol, opt.oracle.hold);
      if (!r.reconverge_latency) {
        r.verdict = Verdict::kNoReconverge;
        r.detail = "share never returned to pre-fault " + fmt_mbps(target) +
                   " +/- " + std::to_string(static_cast<int>(
                                 opt.oracle.rel_tol * 100)) +
                   "% by " + spec.horizon.to_string();
        return fail();
      }
      if (first + *r.reconverge_latency > required_by) {
        r.verdict = Verdict::kNoReconverge;
        r.detail = "reconverged " + r.reconverge_latency->to_string() +
                   " after the first fault — past the deadline (" +
                   required_by.to_string() + ")";
        return fail();
      }
    }
  }

  // 4. Differential: same seed, same topology, no faults — the network
  // must settle to the same operating point, and faults must never
  // *create* goodput. Exception: a misbehave window legitimately
  // creates cells (a greedy source fills the link past the controller's
  // u-utilization target), so plans carrying one skip the delivered
  // bound — the settled-share check still judges post-comply recovery.
  // A vcstorm skips it for the same reason: its admitted storm sessions
  // deliver cells the fault-free baseline never had.
  bool waive_delivered_bound = false;
  for (const auto& e : plan.events) {
    waive_delivered_bound |= e.kind == fault::FaultEvent::Kind::kMisbehave ||
                             e.kind == fault::FaultEvent::Kind::kVcStorm;
  }
  if (baseline != nullptr) {
    const double clean = baseline->settled_share_bps;
    const double faulted = r.settled_share_mbps * 1e6;
    if (clean > 0.0 &&
        std::abs(faulted - clean) > opt.oracle.differential_tol * clean) {
      r.verdict = Verdict::kDifferential;
      r.detail = "settled share " + fmt_mbps(faulted) +
                 " vs fault-free " + fmt_mbps(clean);
      return fail();
    }
    const std::uint64_t delivered = total_delivered(rig.net);
    const auto limit = static_cast<std::uint64_t>(
        static_cast<double>(baseline->delivered_cells) *
        (1.0 + opt.oracle.delivered_slack));
    if (!waive_delivered_bound && delivered > limit) {
      r.verdict = Verdict::kDifferential;
      r.detail = "delivered " + std::to_string(delivered) +
                 " cells, fault-free run delivered only " +
                 std::to_string(baseline->delivered_cells);
      return fail();
    }
  }
  return r;
}

}  // namespace phantom::chaos
