#include "sim/trace.h"

#include <gtest/gtest.h>

namespace phantom::sim {
namespace {

TEST(TraceTest, StartsEmpty) {
  Trace t{"queue"};
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.name(), "queue");
}

TEST(TraceTest, RecordAppendsInOrder) {
  Trace t;
  t.record(Time::ms(1), 10.0);
  t.record(Time::ms(2), 20.0);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.samples()[0], (Sample{Time::ms(1), 10.0}));
  EXPECT_EQ(t.samples()[1], (Sample{Time::ms(2), 20.0}));
  EXPECT_EQ(t.back().value, 20.0);
}

TEST(TraceTest, LastOrFallsBackWhenEmpty) {
  Trace t;
  EXPECT_DOUBLE_EQ(t.last_or(-1.0), -1.0);
  t.record(Time::ms(1), 7.0);
  EXPECT_DOUBLE_EQ(t.last_or(-1.0), 7.0);
}

TEST(TraceTest, ClearResets) {
  Trace t{"x"};
  t.record(Time::ms(1), 1.0);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.name(), "x");
}

}  // namespace
}  // namespace phantom::sim
