// Router/host output port for packets: bounded FIFO + transmitter +
// queue policy, mirroring atm::OutputPort at packet granularity.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "sim/simulator.h"
#include "tcp/packet.h"
#include "tcp/queue_policy.h"

namespace phantom::tcp {

/// Pure-latency pipe, the packet twin of atm::Link. Optional random
/// loss for failure-injection tests.
class PacketLink {
 public:
  PacketLink(sim::Simulator& sim, sim::Time delay, PacketSink& sink,
             double loss_probability = 0.0)
      : sim_{&sim}, delay_{delay}, sink_{&sink}, loss_{loss_probability} {}

  void deliver(Packet packet) {
    if (loss_ > 0.0 && sim_->rng().bernoulli(loss_)) {
      ++lost_;
      return;
    }
    sim_->schedule(delay_,
                   [sink = sink_, packet] { sink->receive_packet(packet); });
  }

  [[nodiscard]] sim::Time delay() const { return delay_; }
  [[nodiscard]] std::uint64_t packets_lost() const { return lost_; }

 private:
  sim::Simulator* sim_;
  sim::Time delay_;
  PacketSink* sink_;
  double loss_ = 0.0;
  std::uint64_t lost_ = 0;
};

/// Output-queued packet port. The queue policy adjudicates every
/// arriving *data* packet (ACK and Source Quench packets bypass it: the
/// paper's mechanisms act on the data direction). `quench_tap`, when
/// set, is invoked for packets whose verdict requests a Source Quench —
/// the owning router wires it to the flow's reverse path.
class PacketPort {
 public:
  PacketPort(sim::Simulator& sim, sim::Rate rate, std::size_t queue_limit,
             PacketLink link, std::unique_ptr<QueuePolicy> policy);

  PacketPort(const PacketPort&) = delete;
  PacketPort& operator=(const PacketPort&) = delete;

  void send(Packet packet);

  void set_quench_tap(std::function<void(const Packet&)> tap) {
    quench_tap_ = std::move(tap);
  }

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t max_queue_length() const { return max_queue_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t packets_transmitted() const {
    return transmitted_;
  }
  [[nodiscard]] sim::Rate rate() const { return rate_; }

  /// Never null; DropTailPolicy when none was supplied.
  [[nodiscard]] QueuePolicy& policy() { return *policy_; }
  [[nodiscard]] const QueuePolicy& policy() const { return *policy_; }

 private:
  void start_transmission();
  void on_transmission_complete();

  sim::Simulator* sim_;
  sim::Rate rate_;
  std::size_t queue_limit_;
  PacketLink link_;
  std::unique_ptr<QueuePolicy> policy_;
  std::function<void(const Packet&)> quench_tap_;

  std::deque<Packet> queue_;
  bool transmitting_ = false;
  std::size_t max_queue_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t transmitted_ = 0;
};

}  // namespace phantom::tcp
