# Empty compiler generated dependencies file for demand_limited_test.
# This may be replaced when dependencies are built.
