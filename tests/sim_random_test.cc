#include "sim/random.h"

#include <gtest/gtest.h>

namespace phantom::sim {
namespace {

TEST(RngTest, UniformStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 1);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanIsApproximatelyRight) {
  Rng rng{11};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ExponentialTimeMatchesMeanScale) {
  Rng rng{11};
  Time sum = Time::zero();
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_time(Time::ms(10));
  EXPECT_NEAR((sum / n).milliseconds(), 10.0, 0.5);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng{5};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace phantom::sim
