#include "tcp/vegas.h"

namespace phantom::tcp {

void VegasSource::on_ack_growth(bool efci_suppressed) {
  if (efci_suppressed) return;

  // Window adjustments happen once per RTT epoch: when the cumulative
  // ACK passes the sequence frontier recorded at the epoch's start.
  if (bytes_acked() < rtt_mark_) return;
  rtt_mark_ = snd_nxt();

  if (base_rtt_.is_zero() || last_rtt_.is_zero()) {
    // No clean measurement yet: conventional slow start.
    set_cwnd(cwnd_bytes() + mss());
    return;
  }

  diff_bytes_ = cwnd_bytes() * (1.0 - base_rtt_ / last_rtt_);

  if (cwnd_bytes() < static_cast<double>(ssthresh_bytes())) {
    // Slow start: leave it as soon as the queue estimate exceeds gamma;
    // otherwise double only every other RTT so the estimate has a
    // congestion-free RTT to settle [BP95].
    if (diff_bytes_ > vegas_.gamma_segments * mss()) {
      set_ssthresh(static_cast<std::int64_t>(cwnd_bytes()));
      set_cwnd(cwnd_bytes() - (diff_bytes_ - vegas_.gamma_segments * mss()));
      return;
    }
    grow_this_epoch_ = !grow_this_epoch_;
    if (grow_this_epoch_) set_cwnd(cwnd_bytes() * 2.0);
    return;
  }

  // Congestion avoidance: keep alpha..beta segments queued.
  if (diff_bytes_ < vegas_.alpha_segments * mss()) {
    set_cwnd(cwnd_bytes() + mss());
  } else if (diff_bytes_ > vegas_.beta_segments * mss()) {
    set_cwnd(cwnd_bytes() - mss());
  }
}

}  // namespace phantom::tcp
