# Empty compiler generated dependencies file for bench_fig_baselines.
# This may be replaced when dependencies are built.
