# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for atm_switch_test.
