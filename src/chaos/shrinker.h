// Automatic minimization of failing fault schedules (delta debugging).
//
// Given a failing plan and a predicate that re-runs the trial, the
// shrinker greedily removes events, then simplifies the survivors
// (fewer flap cycles, shorter windows, no RM corruption) while the
// failure keeps reproducing. The result is the smallest schedule found
// that still trips the same oracle — the thing a human debugs, and the
// thing the report serializes for `phantom_cli --fault-plan` replay.
#pragma once

#include <functional>

#include "fault/fault_plan.h"

namespace phantom::chaos {

struct ShrinkOptions {
  /// Probe budget: each candidate plan costs one full trial re-run.
  int max_probes = 400;
  /// Durations are never shrunk below this (a 0 ms outage is a no-op).
  sim::Time min_duration = sim::Time::ms(1);
};

struct ShrinkResult {
  fault::FaultPlan plan;
  int probes = 0;  ///< trials spent shrinking
};

/// Minimizes `failing`. `still_fails` must return true iff the
/// candidate reproduces the original failure; it is never called on the
/// input plan itself (which is assumed failing). Deterministic: the
/// probe order is fixed, so the same input always shrinks to the same
/// output.
[[nodiscard]] ShrinkResult shrink(
    const fault::FaultPlan& failing,
    const std::function<bool(const fault::FaultPlan&)>& still_fails,
    const ShrinkOptions& opt = {});

}  // namespace phantom::chaos
