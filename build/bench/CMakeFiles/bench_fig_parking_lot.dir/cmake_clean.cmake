file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_parking_lot.dir/bench_fig_parking_lot.cc.o"
  "CMakeFiles/bench_fig_parking_lot.dir/bench_fig_parking_lot.cc.o.d"
  "bench_fig_parking_lot"
  "bench_fig_parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
