# Empty dependencies file for atm_parking_lot.
# This may be replaced when dependencies are built.
