#include "sim/simulator.h"

#include <cassert>

namespace phantom::sim {

EventId Simulator::schedule(Time delay, EventQueue::Callback cb) {
  assert(!delay.is_negative() && "cannot schedule into the past");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  assert(at >= now_ && "cannot schedule into the past");
  return queue_.schedule(at, std::move(cb));
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    auto [time, callback] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    callback();
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time deadline) {
  assert(deadline >= now_);
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    auto [time, callback] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    callback();
    ++executed;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace phantom::sim
