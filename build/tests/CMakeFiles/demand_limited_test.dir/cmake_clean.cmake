file(REMOVE_RECURSE
  "CMakeFiles/demand_limited_test.dir/demand_limited_test.cc.o"
  "CMakeFiles/demand_limited_test.dir/demand_limited_test.cc.o.d"
  "demand_limited_test"
  "demand_limited_test.pdb"
  "demand_limited_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_limited_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
