#include "topo/abr_network.h"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "atm/link.h"

namespace phantom::topo {

using atm::Link;

AbrNetwork::AbrNetwork(sim::Simulator& sim, ControllerFactory factory)
    : sim_{&sim}, factory_{std::move(factory)} {
  if (!factory_) {
    throw std::invalid_argument{"AbrNetwork requires a controller factory"};
  }
}

AbrNetwork::SwitchId AbrNetwork::add_switch(std::string name) {
  switches_.push_back(std::make_unique<atm::Switch>(*sim_, std::move(name)));
  const SwitchId id = switches_.size() - 1;
  if (event_log_ != nullptr) {
    switches_.back()->set_event_log(event_log_, static_cast<int>(id));
  }
  return id;
}

void AbrNetwork::attach_event_log(obs::EventLog* log) {
  event_log_ = log;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    switches_[i]->set_event_log(log, static_cast<int>(i));
  }
  for (auto& source : sources_) source->set_event_log(log);
}

void AbrNetwork::register_metrics(obs::Registry& reg) {
  std::unordered_map<std::string, int> seen;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    std::string prefix = switches_[i]->name();
    if (seen[prefix]++ > 0) prefix += "#" + std::to_string(i);
    switches_[i]->register_metrics(reg, prefix);
  }
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    sources_[s]->register_metrics(reg, "session" + std::to_string(s));
  }
}

std::size_t AbrNetwork::add_port(SwitchId at, atm::CellSink& sink,
                                 sim::Rate rate, sim::Time delay,
                                 std::size_t queue_limit, bool controlled,
                                 double loss,
                                 atm::QueueDiscipline discipline) {
  auto controller = controlled
                        ? factory_(*sim_, rate)
                        : std::unique_ptr<atm::PortController>{};
  return switches_.at(at)->add_port(rate, queue_limit,
                                    Link{*sim_, delay, sink, loss},
                                    std::move(controller), discipline);
}

AbrNetwork::TrunkId AbrNetwork::add_trunk(SwitchId from, SwitchId to,
                                          TrunkOptions options) {
  if (from >= switches_.size() || to >= switches_.size() || from == to) {
    throw std::out_of_range{"add_trunk: bad switch ids"};
  }
  Trunk t;
  t.from = from;
  t.to = to;
  t.controlled = options.controlled;
  t.rate = options.rate;
  t.forward_port = add_port(from, *switches_[to], options.rate, options.delay,
                            options.queue_limit, options.controlled,
                            options.loss, options.discipline);
  // Reverse direction carries only returning RM cells; never controlled,
  // but it shares the physical medium's loss rate.
  t.reverse_port = add_port(to, *switches_[from], options.rate, options.delay,
                            options.queue_limit, /*controlled=*/false,
                            options.loss);
  trunks_.push_back(t);
  return trunks_.size() - 1;
}

AbrNetwork::DestId AbrNetwork::add_destination(SwitchId at,
                                               TrunkOptions options) {
  if (at >= switches_.size()) {
    throw std::out_of_range{"add_destination: bad switch id"};
  }
  Destination d;
  d.at = at;
  d.controlled = options.controlled;
  d.rate = options.rate;
  d.endpoint = std::make_unique<atm::AbrDestination>(
      *sim_, Link{*sim_, options.delay, *switches_[at]});
  d.port = add_port(at, *d.endpoint, options.rate, options.delay,
                    options.queue_limit, options.controlled, options.loss,
                    options.discipline);
  dests_.push_back(std::move(d));
  return dests_.size() - 1;
}

void AbrNetwork::validate_path(SwitchId ingress,
                               const std::vector<TrunkId>& path,
                               DestId dest) const {
  if (ingress >= switches_.size()) {
    throw std::out_of_range{"add_session: bad ingress switch"};
  }
  if (dest >= dests_.size()) {
    throw std::out_of_range{"add_session: bad destination"};
  }
  // Path connectivity: head at ingress, tail at the destination's switch.
  SwitchId cursor = ingress;
  for (const TrunkId t : path) {
    if (t >= trunks_.size() || trunks_[t].from != cursor) {
      throw std::invalid_argument{"add_session: path is not connected"};
    }
    cursor = trunks_[t].to;
  }
  if (dests_[dest].at != cursor) {
    throw std::invalid_argument{
        "add_session: destination does not hang off the path's last switch"};
  }
}

AbrNetwork::SessionId AbrNetwork::add_session(SwitchId ingress,
                                              const std::vector<TrunkId>& path,
                                              DestId dest,
                                              atm::AbrParams params,
                                              sim::Time access_delay) {
  validate_path(ingress, path, dest);
  const int vc = next_vc_++;
  auto source = std::make_unique<atm::AbrSource>(
      *sim_, vc, params, Link{*sim_, access_delay, *switches_[ingress]});

  // Backward port at the ingress switch delivering BRM cells to the
  // source. One per session keeps the wiring simple; its load is only
  // RM cells.
  const std::size_t to_source_port =
      add_port(ingress, *source, params.pcr, access_delay,
               /*queue_limit=*/20'000, /*controlled=*/false, 0.0);

  // Forward/backward routes hop by hop. At each switch the backward
  // port leads one hop back toward the source.
  std::size_t backward = to_source_port;
  SwitchId cursor = ingress;
  for (const TrunkId t : path) {
    switches_[cursor]->route_vc(vc, trunks_[t].forward_port, backward);
    backward = trunks_[t].reverse_port;
    cursor = trunks_[t].to;
  }
  switches_[cursor]->route_vc(vc, dests_[dest].port, backward);

  if (overload_) {
    // Book the session's MCR on every hop (idempotent: a session that
    // came through try_add_session is already booked). Plain
    // add_session after arming bypasses the admission *judgment* — the
    // caller said so by not using try_add_session — but never the
    // *bookkeeping*, or later admissions would see phantom headroom.
    for (const auto& [sw, port] : session_hops(ingress, path, dest)) {
      switches_[sw]->force_admit_vc(vc, params.mcr, port);
    }
  }

  if (event_log_ != nullptr) source->set_event_log(event_log_);
  sources_.push_back(std::move(source));
  sessions_.push_back(Session{ingress, path, dest, vc});
  session_demand_bps_.push_back(std::numeric_limits<double>::infinity());
  return sources_.size() - 1;
}

std::vector<std::pair<AbrNetwork::SwitchId, std::size_t>>
AbrNetwork::session_hops(SwitchId ingress, const std::vector<TrunkId>& path,
                         DestId dest) const {
  std::vector<std::pair<SwitchId, std::size_t>> hops;
  SwitchId cursor = ingress;
  for (const TrunkId t : path) {
    hops.emplace_back(cursor, trunks_[t].forward_port);
    cursor = trunks_[t].to;
  }
  hops.emplace_back(cursor, dests_[dest].port);
  return hops;
}

void AbrNetwork::enable_overload_protection(OverloadOptions options) {
  options.buffer.validate();
  options.cac.validate();
  overload_options_ = options;
  overload_ = true;
  for (const auto& sw : switches_) {
    sw->enable_buffer_management(options.buffer);
    sw->enable_admission_control(options.cac);
  }
  // Grandfather what already exists: arming the armor must not orphan
  // contracts the network accepted while unarmed.
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    const Session& sess = sessions_[s];
    const sim::Rate mcr = sources_[s]->params().mcr;
    for (const auto& [sw, port] :
         session_hops(sess.ingress, sess.path, sess.dest)) {
      switches_[sw]->force_admit_vc(sess.vc, mcr, port);
    }
  }
}

AbrNetwork::AdmissionOutcome AbrNetwork::try_add_session(
    SwitchId ingress, const std::vector<TrunkId>& path, DestId dest,
    atm::AbrParams params, sim::Time access_delay) {
  validate_path(ingress, path, dest);
  params.validate();
  AdmissionOutcome outcome;
  if (overload_) {
    // Every hop must say yes before anything is built; the VC id the
    // session *would* get keys the bookings so an admitted setup flows
    // straight into add_session below.
    const int vc = next_vc_;
    const auto hops = session_hops(ingress, path, dest);
    for (std::size_t i = 0; i < hops.size(); ++i) {
      const atm::AdmitVerdict verdict =
          switches_[hops[i].first]->admit_vc(vc, params.mcr, hops[i].second);
      if (verdict != atm::AdmitVerdict::kAdmitted) {
        for (std::size_t j = 0; j < i; ++j) {
          switches_[hops[j].first]->cancel_admission(vc);
        }
        outcome.admitted = false;
        outcome.verdict = verdict;
        outcome.refused_at = hops[i].first;
        return outcome;
      }
    }
  }
  outcome.admitted = true;
  outcome.verdict = atm::AdmitVerdict::kAdmitted;
  outcome.session = add_session(ingress, path, dest, params, access_delay);
  return outcome;
}

AbrNetwork::SessionShape AbrNetwork::session_shape(SessionId s) const {
  const Session& sess = sessions_.at(s);
  return SessionShape{sess.ingress, sess.path, sess.dest};
}

std::uint64_t AbrNetwork::delivered_frames(SessionId s) const {
  const Session& sess = sessions_.at(s);
  return dests_[sess.dest].endpoint->frames_good(sess.vc);
}

void AbrNetwork::squeeze_buffers(double fraction) {
  for (const auto& sw : switches_) {
    if (atm::BufferManager* bm = sw->buffer_manager()) bm->squeeze(fraction);
  }
}

atm::CacCounters AbrNetwork::cac_totals() const {
  atm::CacCounters total;
  for (const auto& sw : switches_) {
    const atm::CacCounters& c = sw->cac_counters();
    total.admitted += c.admitted;
    total.refused_vc_limit += c.refused_vc_limit;
    total.refused_mcr_budget += c.refused_mcr_budget;
    total.refused_buffer += c.refused_buffer;
    total.refused_pressure += c.refused_pressure;
  }
  return total;
}

std::uint64_t AbrNetwork::epd_frames_discarded() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) {
    if (const atm::BufferManager* bm = sw->buffer_manager())
      n += bm->frames_epd_discarded();
  }
  return n;
}

std::uint64_t AbrNetwork::cells_ppd_discarded() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) {
    if (const atm::BufferManager* bm = sw->buffer_manager())
      n += bm->cells_ppd_discarded();
  }
  return n;
}

std::uint64_t AbrNetwork::cells_shed() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) {
    if (const atm::BufferManager* bm = sw->buffer_manager())
      n += bm->cells_shed();
  }
  return n;
}

std::uint64_t AbrNetwork::buffer_overflow_drops() const {
  std::uint64_t n = 0;
  for (const auto& sw : switches_) {
    if (const atm::BufferManager* bm = sw->buffer_manager())
      n += bm->cells_overflow_dropped();
  }
  return n;
}

std::size_t AbrNetwork::buffer_cells_in_use() const {
  std::size_t n = 0;
  for (const auto& sw : switches_) {
    if (const atm::BufferManager* bm = sw->buffer_manager())
      n += bm->cells_in_use();
  }
  return n;
}

void AbrNetwork::set_session_demand(SessionId s, sim::Rate demand) {
  sources_.at(s)->set_demand(demand);
  session_demand_bps_.at(s) = demand.bits_per_sec();
}

std::size_t AbrNetwork::add_cbr_session(SwitchId ingress,
                                        const std::vector<TrunkId>& path,
                                        DestId dest, sim::Rate rate,
                                        sim::Time access_delay) {
  validate_path(ingress, path, dest);
  const int vc = next_vc_++;
  cbr_sources_.push_back(std::make_unique<atm::CbrSource>(
      *sim_, vc, rate, Link{*sim_, access_delay, *switches_[ingress]}));
  // CBR never generates RM cells, so the backward route is a formality;
  // point it at the forward port.
  SwitchId cursor = ingress;
  for (const TrunkId t : path) {
    switches_[cursor]->route_vc(vc, trunks_[t].forward_port,
                                trunks_[t].forward_port);
    cursor = trunks_[t].to;
  }
  switches_[cursor]->route_vc(vc, dests_[dest].port, dests_[dest].port);
  cbr_sessions_.push_back(CbrSession{path, dest, rate});
  return cbr_sources_.size() - 1;
}

void AbrNetwork::start_all(sim::Time first, sim::Time stagger) {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->start(first + stagger * static_cast<std::int64_t>(i));
  }
  for (const auto& cbr : cbr_sources_) cbr->start(first);
}

atm::OutputPort& AbrNetwork::trunk_port(TrunkId t) {
  const Trunk& trunk = trunks_.at(t);
  return switches_[trunk.from]->port(trunk.forward_port);
}

atm::OutputPort& AbrNetwork::trunk_reverse_port(TrunkId t) {
  const Trunk& trunk = trunks_.at(t);
  return switches_[trunk.to]->port(trunk.reverse_port);
}

std::vector<std::shared_ptr<atm::LinkState>> AbrNetwork::link_states() const {
  std::vector<std::shared_ptr<atm::LinkState>> out;
  for (const auto& sw : switches_) {
    for (std::size_t p = 0; p < sw->num_ports(); ++p) {
      out.push_back(sw->port(p).link().state());
    }
  }
  for (const auto& src : sources_) out.push_back(src->link().state());
  for (const auto& cbr : cbr_sources_) out.push_back(cbr->link().state());
  for (const auto& d : dests_) out.push_back(d.endpoint->link().state());
  return out;
}

std::uint64_t AbrNetwork::total_cells_lost() const {
  std::uint64_t lost = 0;
  for (const auto& st : link_states()) lost += st->lost();
  return lost;
}

atm::OutputPort& AbrNetwork::dest_port(DestId d) {
  const Destination& dest = dests_.at(d);
  return switches_[dest.at]->port(dest.port);
}

std::uint64_t AbrNetwork::delivered_cells(SessionId s) const {
  const Session& sess = sessions_.at(s);
  return dests_[sess.dest].endpoint->data_cells_received(sess.vc);
}

void AbrNetwork::set_session_behavior(SessionId s,
                                      atm::SourceBehavior behavior,
                                      double compliance) {
  sources_.at(s)->set_behavior(behavior, compliance);
}

void AbrNetwork::enable_policing(atm::PolicerConfig config) {
  for (const auto& sw : switches_) {
    sw->enable_policing(config);
    if (config.action == atm::PolicingAction::kTag) {
      // Tagging is only meaningful with partial buffer sharing: tagged
      // cells ride along until a queue passes half its limit, then they
      // are discarded first.
      for (std::size_t p = 0; p < sw->num_ports(); ++p) {
        atm::OutputPort& port = sw->port(p);
        port.set_clp_threshold(std::max<std::size_t>(1, port.queue_limit() / 2));
      }
    }
  }
}

void AbrNetwork::enable_reaping(atm::ReaperConfig config) {
  for (const auto& sw : switches_) sw->enable_reaping(config);
}

void AbrNetwork::teardown_session_state(SessionId s) {
  const Session& session = sessions_.at(s);
  node(session.ingress).evict_vc(session.vc);
  for (const TrunkId t : session.path) {
    node(trunks_.at(t).to).evict_vc(session.vc);
  }
}

std::uint64_t AbrNetwork::vcs_reaped() const {
  std::uint64_t reaped = 0;
  for (const auto& sw : switches_) reaped += sw->vcs_reaped();
  return reaped;
}

std::uint64_t AbrNetwork::policer_dropped_cells() const {
  std::uint64_t dropped = 0;
  for (const auto& sw : switches_) {
    if (const atm::Policer* p = sw->policer()) dropped += p->cells_dropped();
  }
  return dropped;
}

std::uint64_t AbrNetwork::rm_cells_sanitized() const {
  std::uint64_t sanitized = 0;
  for (const auto& sw : switches_) sanitized += sw->rm_cells_sanitized();
  return sanitized;
}

std::vector<sim::Rate> AbrNetwork::reference_rates(bool phantom_per_link,
                                                   double utilization) const {
  stats::MaxMinSolver solver;
  // Controlled trunks and controlled destination ports are the
  // capacity-constrained links; everything else is overprovisioned
  // plumbing.
  // CBR background traffic is not rate-controlled: it simply removes
  // capacity from every controlled link it crosses. The controllers
  // steer toward u*C_raw - cbr, and the solver applies `utilization`
  // to the capacities we hand it, so pre-divide the CBR load by u:
  // u * (C_raw - cbr/u) = u*C_raw - cbr.
  std::vector<double> trunk_cbr(trunks_.size(), 0.0);
  std::vector<double> dest_cbr(dests_.size(), 0.0);
  for (const CbrSession& cbr : cbr_sessions_) {
    const double load = cbr.rate.bits_per_sec() / utilization;
    for (const TrunkId t : cbr.path) trunk_cbr[t] += load;
    dest_cbr[cbr.dest] += load;
  }
  std::vector<std::size_t> trunk_link(trunks_.size(), SIZE_MAX);
  std::vector<std::size_t> dest_link(dests_.size(), SIZE_MAX);
  for (std::size_t t = 0; t < trunks_.size(); ++t) {
    if (trunks_[t].controlled) {
      trunk_link[t] = solver.add_link(
          sim::Rate::bps(trunks_[t].rate.bits_per_sec() - trunk_cbr[t]));
    }
  }
  for (std::size_t d = 0; d < dests_.size(); ++d) {
    if (dests_[d].controlled) {
      dest_link[d] = solver.add_link(
          sim::Rate::bps(dests_[d].rate.bits_per_sec() - dest_cbr[d]));
    }
  }
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    const Session& sess = sessions_[s];
    std::vector<std::size_t> links;
    for (const TrunkId t : sess.path) {
      if (trunk_link[t] != SIZE_MAX) links.push_back(trunk_link[t]);
    }
    if (dest_link[sess.dest] != SIZE_MAX) links.push_back(dest_link[sess.dest]);
    if (links.empty()) {
      throw std::logic_error{
          "reference_rates: a session crosses no controlled link"};
    }
    solver.add_session(std::move(links),
                       sim::Rate::bps(session_demand_bps_[s]));
  }
  return solver.solve(phantom_per_link, utilization);
}

}  // namespace phantom::topo
