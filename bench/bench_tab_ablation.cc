// Ablations of Phantom's design choices (DESIGN.md §3):
//  * adaptive gain vs fixed gain — steady-state MACR oscillation;
//  * target utilization u — goodput vs drain speed;
//  * measurement interval Δt — convergence speed vs noise;
//  * TCP utilization factor and strict-vs-policing discard.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

struct AbrOutcome {
  double goodput_per_session = 0;
  double macr_stddev_mbps = 0;  // steady-state oscillation
  std::size_t max_queue = 0;
  double settle_ms = 0;
};

AbrOutcome run_abr(core::PhantomConfig cfg, int n = 5) {
  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_phantom_factory(cfg)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest);
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  probe.mark();
  sim.run_until(Time::ms(500));
  AbrOutcome out;
  for (const double r : probe.rates_mbps()) out.goodput_per_session += r;
  out.goodput_per_session /= n;
  const auto& ctl = dynamic_cast<const core::PhantomController&>(
      net.dest_port(dest).controller());
  const auto tail =
      stats::summarize(ctl.macr_trace().samples(), Time::ms(300), Time::ms(500));
  out.macr_stddev_mbps = tail.stddev / 1e6;
  out.max_queue = net.dest_port(dest).max_queue_length();
  const double ideal = cfg.utilization * 150.0 / (n + 1);
  out.settle_ms = stats::convergence_time(ctl.macr_trace().samples(),
                                          ideal * 1e6, 0.10)
                      .milliseconds();
  return out;
}

}  // namespace

int main() {
  exp::print_header("Ablation A",
                    "adaptive gain vs fixed gain (noisy on/off load)");
  {
    // The adaptive gain exists to damp measurement noise: exercise it
    // with four fast on/off sessions beside four greedy ones.
    exp::Table t{{"gain", "goodput/greedy session", "MACR stddev (steady)",
                  "max queue"}};
    for (const bool adaptive : {true, false}) {
      core::PhantomConfig cfg;
      cfg.adaptive_gain = adaptive;
      sim::Simulator sim;
      topo::AbrNetwork net{sim, exp::make_phantom_factory(cfg)};
      const auto sw = net.add_switch("sw");
      const auto dest = net.add_destination(sw, {});
      for (int i = 0; i < 8; ++i) net.add_session(sw, {}, dest);
      net.start_all(Time::zero(), Time::zero());
      std::vector<std::unique_ptr<topo::OnOffDriver>> drivers;
      for (int i = 4; i < 8; ++i) {
        topo::OnOffDriver::Options opt;
        opt.on_period = Time::ms(3);
        opt.off_period = Time::ms(3);
        opt.first_toggle = Time::ms(3 + i);
        opt.exponential = true;
        drivers.push_back(std::make_unique<topo::OnOffDriver>(
            sim, net.source(static_cast<std::size_t>(i)), opt));
      }
      exp::GoodputProbe probe{sim, net};
      sim.run_until(Time::ms(300));
      probe.mark();
      sim.run_until(Time::ms(500));
      const auto rates = probe.rates_mbps();
      double greedy = 0;
      for (int i = 0; i < 4; ++i) greedy += rates[static_cast<std::size_t>(i)];
      const auto& ctl = dynamic_cast<const core::PhantomController&>(
          net.dest_port(dest).controller());
      const auto tail = stats::summarize(ctl.macr_trace().samples(),
                                         Time::ms(300), Time::ms(500));
      t.add_row({adaptive ? "adaptive" : "fixed",
                 exp::Table::num(greedy / 4),
                 exp::Table::num(tail.stddev / 1e6, 3),
                 std::to_string(net.dest_port(dest).max_queue_length())});
    }
    t.print();
  }

  exp::print_header("Ablation B", "target utilization u");
  {
    exp::Table t{{"u", "goodput/session", "ideal u*C/6", "max queue"}};
    for (const double u : {0.80, 0.90, 0.95, 1.00}) {
      core::PhantomConfig cfg;
      cfg.utilization = u;
      const auto r = run_abr(cfg);
      t.add_row({exp::Table::num(u, 2), exp::Table::num(r.goodput_per_session),
                 exp::Table::num(u * 150 / 6),
                 std::to_string(r.max_queue)});
    }
    t.print();
  }

  exp::print_header("Ablation C", "measurement interval Δt");
  {
    exp::Table t{{"Δt", "goodput/session", "MACR stddev", "settle (ms)"}};
    for (const auto dt :
         {Time::us(250), Time::ms(1), Time::ms(4), Time::ms(16)}) {
      core::PhantomConfig cfg;
      cfg.interval = dt;
      const auto r = run_abr(cfg);
      t.add_row({dt.to_string(), exp::Table::num(r.goodput_per_session),
                 exp::Table::num(r.macr_stddev_mbps, 3),
                 exp::Table::num(r.settle_ms, 1)});
    }
    t.print();
  }

  exp::print_header("Ablation E", "explicit-rate mode vs binary (CI) mode");
  {
    exp::Table t{{"feedback", "goodput/session", "Jain", "max queue"}};
    for (const bool er_mode : {true, false}) {
      core::PhantomConfig cfg;
      cfg.explicit_rate_mode = er_mode;
      sim::Simulator sim;
      topo::AbrNetwork net{sim, exp::make_phantom_factory(cfg)};
      const auto sw = net.add_switch("sw");
      const auto dest = net.add_destination(sw, {});
      for (int i = 0; i < 5; ++i) net.add_session(sw, {}, dest);
      exp::GoodputProbe probe{sim, net};
      net.start_all(Time::zero(), Time::zero());
      sim.run_until(Time::ms(400));
      probe.mark();
      sim.run_until(Time::ms(700));
      const auto rates = probe.rates_mbps();
      double mean = 0;
      for (const double r : rates) mean += r;
      t.add_row({er_mode ? "explicit rate (ER)" : "binary (EFCI/CI)",
                 exp::Table::num(mean / 5),
                 exp::Table::num(stats::jain_index(rates), 3),
                 std::to_string(net.dest_port(dest).max_queue_length())});
    }
    t.print();
  }

  exp::print_header("Ablation D", "TCP: utilization factor & discard mode");
  {
    exp::Table t{{"mechanism", "total goodput", "Jain", "mean queue"}};
    for (const double uf : {1.1, 2.0, 5.0, 10.0}) {
      const TcpRun r =
          run_tcp_bottleneck([uf](sim::Simulator& sim, Rate rate) {
            return std::make_unique<tcp::SelectiveDiscardPolicy>(sim, rate,
                                                                 uf);
          });
      t.add_row({"police uf=" + exp::Table::num(uf, 1),
                 exp::Table::num(r.total), exp::Table::num(r.jain, 3),
                 exp::Table::num(r.mean_queue, 1)});
    }
    const TcpRun strict =
        run_tcp_bottleneck([](sim::Simulator& sim, Rate rate) {
          return std::make_unique<tcp::SelectiveDiscardPolicy>(
              sim, rate, tcp::kTcpUtilizationFactor,
              tcp::tcp_default_phantom_config(), tcp::DiscardMode::kStrict);
        });
    t.add_row({"strict (Fig 18 literal)", exp::Table::num(strict.total),
               exp::Table::num(strict.jain, 3),
               exp::Table::num(strict.mean_queue, 1)});
    const TcpRun droptail = run_tcp_bottleneck(nullptr);
    t.add_row({"droptail (baseline)", exp::Table::num(droptail.total),
               exp::Table::num(droptail.jain, 3),
               exp::Table::num(droptail.mean_queue, 1)});
    t.print();
  }
  return 0;
}
