file(REMOVE_RECURSE
  "libphantom_baselines.a"
)
