// Propagation-delay pipe between network elements.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "atm/cell.h"
#include "sim/simulator.h"

namespace phantom::atm {

/// Fault model and cumulative statistics of one physical link hop.
///
/// Every copy of a Link shares one LinkState (links are value types, so
/// without sharing each holder's copy would keep private counters and
/// aggregate loss totals would be wrong). The fault subsystem
/// (fault::FaultInjector) mutates the model fields mid-run: outages,
/// Gilbert–Elliott loss bursts and RM-cell-targeted faults.
struct LinkState {
  // --- fault model (mutable at runtime) ---
  bool down = false;  ///< outage: every cell offered is dropped
  double loss = 0.0;  ///< independent per-cell loss probability

  /// Gilbert–Elliott two-state burst-loss model: the chain steps once
  /// per offered cell between Good and Bad, each state with its own
  /// loss probability. Captures the correlated loss runs that
  /// independent Bernoulli loss cannot produce.
  bool burst_enabled = false;
  bool burst_bad = false;         ///< current chain state
  double burst_p_good_bad = 0.0;  ///< P(Good -> Bad) per cell
  double burst_p_bad_good = 0.0;  ///< P(Bad -> Good) per cell
  double burst_loss_good = 0.0;   ///< loss probability while Good
  double burst_loss_bad = 0.0;    ///< loss probability while Bad

  /// RM-cell-only faults: the control loop's feedback path fails while
  /// data cells flow untouched (lost RM cells stall feedback; corrupted
  /// ones carry garbage ER/CI the sources must survive).
  double rm_loss = 0.0;     ///< extra loss applied to RM cells only
  double rm_corrupt = 0.0;  ///< probability an RM cell's fields are scrambled

  // --- cumulative statistics (shared across all copies) ---
  std::uint64_t offered = 0;       ///< deliver() calls
  std::uint64_t delivered = 0;     ///< handed to the sink
  std::uint64_t lost_random = 0;   ///< independent Bernoulli loss
  std::uint64_t lost_outage = 0;   ///< dropped while down
  std::uint64_t lost_burst = 0;    ///< Gilbert–Elliott loss
  std::uint64_t lost_rm = 0;       ///< RM-targeted loss
  std::uint64_t corrupted_rm = 0;  ///< RM cells delivered with scrambled fields

  [[nodiscard]] std::uint64_t lost() const {
    return lost_random + lost_outage + lost_burst + lost_rm;
  }
  /// Cells scheduled for delivery but still propagating.
  [[nodiscard]] std::uint64_t in_flight() const {
    return offered - delivered - lost();
  }
};

/// Unidirectional link: delivers cells to `sink` after a fixed
/// propagation delay. Serialization (transmission) time is modelled by
/// the OutputPort feeding the link, so Link itself is pure latency; this
/// matches the classic DES decomposition and lets sources with their own
/// pacing connect directly.
///
/// Links are value types; all copies share one LinkState, so loss
/// accounting stays aggregate and fault transitions applied through any
/// copy (or through a retained state() handle) affect the physical hop.
class Link {
 public:
  Link(sim::Simulator& sim, sim::Time delay, CellSink& sink,
       double loss_probability = 0.0)
      : sim_{&sim},
        delay_{delay},
        sink_{&sink},
        state_{std::make_shared<LinkState>()} {
    assert(!delay.is_negative());
    assert(loss_probability >= 0.0 && loss_probability <= 1.0);
    state_->loss = loss_probability;
  }

  void deliver(Cell cell) {
    LinkState& st = *state_;
    ++st.offered;
    if (st.down) {
      ++st.lost_outage;
      return;
    }
    // Each random draw is gated on its feature being enabled so that
    // runs without faults consume exactly the same rng stream as before
    // the fault subsystem existed (seed-for-seed reproducibility).
    if (st.burst_enabled) {
      const double p_flip =
          st.burst_bad ? st.burst_p_bad_good : st.burst_p_good_bad;
      if (p_flip > 0.0 && sim_->rng().bernoulli(p_flip)) {
        st.burst_bad = !st.burst_bad;
      }
      const double p_loss = st.burst_bad ? st.burst_loss_bad : st.burst_loss_good;
      if (p_loss > 0.0 && sim_->rng().bernoulli(p_loss)) {
        ++st.lost_burst;
        return;
      }
    }
    if (st.loss > 0.0 && sim_->rng().bernoulli(st.loss)) {
      ++st.lost_random;
      return;
    }
    if (cell.is_rm()) {
      if (st.rm_loss > 0.0 && sim_->rng().bernoulli(st.rm_loss)) {
        ++st.lost_rm;
        return;
      }
      if (st.rm_corrupt > 0.0 && sim_->rng().bernoulli(st.rm_corrupt)) {
        corrupt_rm(cell);
      }
    }
    auto arrive = [state = state_, sink = sink_, cell] {
      ++state->delivered;
      sink->receive_cell(cell);
    };
    // The single hottest callback in the library (every cell, every
    // hop): its 64-byte capture must stay within the kernel's inline
    // buffer or each delivery would heap-allocate.
    static_assert(sim::EventQueue::Callback::fits_inline<decltype(arrive)>);
    sim_->schedule(delay_, std::move(arrive));
  }

  [[nodiscard]] sim::Time delay() const { return delay_; }
  [[nodiscard]] std::uint64_t cells_lost() const { return state_->lost(); }
  [[nodiscard]] std::uint64_t cells_delivered() const {
    return state_->delivered;
  }

  /// Shared fault/statistics block; retain it to drive faults or read
  /// aggregate counters after the Link value has been copied around.
  [[nodiscard]] const std::shared_ptr<LinkState>& state() const {
    return state_;
  }

 private:
  void corrupt_rm(Cell& cell) {
    ++state_->corrupted_rm;
    // Scramble the feedback fields: ER anywhere in [0, 2x its value]
    // (an *increase* exercises the source's PCR clamp) and CI flipped
    // half the time.
    cell.er = sim::Rate::bps(
        sim_->rng().uniform(0.0, 2.0 * cell.er.bits_per_sec() + 1.0));
    if (sim_->rng().bernoulli(0.5)) cell.ci = !cell.ci;
  }

  sim::Simulator* sim_;
  sim::Time delay_;
  CellSink* sink_;
  std::shared_ptr<LinkState> state_;
};

}  // namespace phantom::atm
