// EventLog unit tests: ring wraparound, filtering, export formats.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "obs/event_log.h"

namespace phantom {
namespace {

using obs::Category;
using obs::Event;
using obs::EventKind;
using obs::EventLog;
using sim::Time;

/// Minimal recursive-descent JSON syntax checker — enough to prove an
/// export is well-formed without pulling in a JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_{&text} {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_->size();
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < s_->size() ? (*s_)[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < s_->size() &&
           std::isspace(static_cast<unsigned char>((*s_)[pos_])) != 0) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string_view{lit}.size();
    if (s_->compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_->size()) {
      const char c = (*s_)[pos_++];
      if (c == '\\') {
        if (pos_ >= s_->size()) return false;
        ++pos_;
      } else if (c == '"') {
        return true;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  const std::string* s_;
  std::size_t pos_ = 0;
};

// Tests that assert on recorded content skip when the layer is
// compiled out (-DPHANTOM_DISABLE_OBS=ON turns record() into a no-op).
#define SKIP_IF_OBS_DISABLED()                                            \
  if (!obs::kObsEnabled)                                                  \
  GTEST_SKIP() << "observability compiled out (PHANTOM_DISABLE_OBS=ON)"

Event make_event(EventKind kind, std::int64_t t_ns, std::int32_t vc = -1,
                 std::int16_t node = -1, std::int16_t port = -1) {
  Event e;
  e.kind = kind;
  e.time = Time::ns(t_ns);
  e.vc = vc;
  e.node = node;
  e.port = port;
  return e;
}

TEST(EventLogTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventLog{100}.capacity(), 128u);
  EXPECT_EQ(EventLog{1}.capacity(), 16u);  // floor: a useful recorder
  EXPECT_EQ(EventLog{256}.capacity(), 256u);
}

TEST(EventLogTest, RingWrapsAndKeepsTheNewestEvents) {
  SKIP_IF_OBS_DISABLED();
  EventLog log{16};
  for (int i = 0; i < 40; ++i) {
    log.record(make_event(EventKind::kCellEnqueue, i, i));
  }
  EXPECT_EQ(log.recorded(), 40u);
  EXPECT_EQ(log.size(), 16u);
  EXPECT_EQ(log.overwritten(), 24u);
  // Oldest-first iteration must yield exactly vcs 24..39.
  std::int32_t expect = 24;
  log.for_each([&](const Event& e) { EXPECT_EQ(e.vc, expect++); });
  EXPECT_EQ(expect, 40);
}

TEST(EventLogTest, FilterByVcNodePortAndCategory) {
  SKIP_IF_OBS_DISABLED();
  EventLog log{64};
  log.record(make_event(EventKind::kCellEnqueue, 1, 7, 0, 0));
  log.record(make_event(EventKind::kCellDrop, 2, 8, 0, 1));
  log.record(make_event(EventKind::kRmForward, 3, 7, 1, 0));
  log.record(make_event(EventKind::kRateUpdate, 4, -1, 1, 0));

  EventLog::Filter by_vc;
  by_vc.vc = 7;
  EXPECT_EQ(log.tail_jsonl(10, by_vc).size(), 2u);

  EventLog::Filter by_cat;
  by_cat.category = Category::kCell;
  EXPECT_EQ(log.tail_jsonl(10, by_cat).size(), 2u);

  EventLog::Filter by_node;
  by_node.node = 1;
  EXPECT_EQ(log.tail_jsonl(10, by_node).size(), 2u);

  EventLog::Filter by_port;
  by_port.port = 1;
  EXPECT_EQ(log.tail_jsonl(10, by_port).size(), 1u);

  EventLog::Filter combined;  // axes AND together
  combined.vc = 7;
  combined.category = Category::kRm;
  const auto lines = log.tail_jsonl(10, combined);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\":\"rm_forward\""), std::string::npos);
}

TEST(EventLogTest, TailKeepsTheLastNOldestFirst) {
  SKIP_IF_OBS_DISABLED();
  EventLog log{64};
  for (int i = 0; i < 10; ++i) {
    log.record(make_event(EventKind::kCellEnqueue, i, i));
  }
  const auto tail = log.tail_jsonl(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_NE(tail[0].find("\"vc\":7"), std::string::npos);
  EXPECT_NE(tail[2].find("\"vc\":9"), std::string::npos);
}

TEST(EventLogTest, InternReturnsStableIdsAndLabelsRoundTrip) {
  EventLog log{16};
  const auto a = log.intern("outage on trunk0");
  const auto b = log.intern("restart dest0");
  const auto a2 = log.intern("outage on trunk0");
  EXPECT_NE(a, 0);
  EXPECT_NE(b, a);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(log.label(a), "outage on trunk0");
  EXPECT_EQ(log.label(0), "");
}

TEST(EventLogTest, JsonlIsDeterministicForIdenticalRecordings) {
  const auto fill = [](EventLog& log) {
    for (int i = 0; i < 100; ++i) {
      Event e = make_event(EventKind::kRmBackward, i * 17, i % 5, 0, 0);
      e.a = 12.5 + i;
      e.b = 3.25 * i;
      e.c = 140.0;
      log.record(e);
    }
  };
  EventLog a{64}, b{64};
  fill(a);
  fill(b);
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());  // byte-identical
}

TEST(EventLogTest, EveryJsonlLineIsValidJson) {
  SKIP_IF_OBS_DISABLED();
  EventLog log{64};
  log.record(make_event(EventKind::kCellDrop, 1, 3, 0, 0));
  Event fault = make_event(EventKind::kFaultFired, 2);
  fault.label = log.intern("outage \"quoted\" \\ and\ncontrol");
  log.record(fault);
  Event cac = make_event(EventKind::kCacRefusal, 3, 9, 1, -1);
  cac.detail = 2;
  cac.a = 1.5;
  log.record(cac);
  const std::string jsonl = log.to_jsonl();
  std::size_t start = 0, lines = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = jsonl.substr(start, end - start);
    EXPECT_TRUE(JsonChecker{line}.valid()) << line;
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(EventLogTest, ChromeTraceIsValidJsonWithNamedTracks) {
  SKIP_IF_OBS_DISABLED();
  EventLog log{64};
  log.set_node_name(0, "bottleneck");
  log.record(make_event(EventKind::kCellEnqueue, 1, 3, 0, 0));
  log.record(make_event(EventKind::kRmForward, 2, 3, 0, 0));  // VC track
  Event rate = make_event(EventKind::kRateUpdate, 3, -1, 0, 0);
  rate.a = 48.5;
  log.record(rate);
  const std::string trace = log.to_chrome_trace();
  EXPECT_TRUE(JsonChecker{trace}.valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"bottleneck\""), std::string::npos);  // process_name
  EXPECT_NE(trace.find("\"VC sessions\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);  // counter track
}

TEST(EventLogTest, ClearForgetsEventsButKeepsLabels) {
  EventLog log{16};
  const auto id = log.intern("kept");
  log.record(make_event(EventKind::kCellEnqueue, 1));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.to_jsonl(), "");
  EXPECT_EQ(log.label(id), "kept");
}

#ifdef PHANTOM_OBS_OFF
TEST(EventLogTest, DisabledBuildRecordsNothing) {
  EventLog log{16};
  log.record(make_event(EventKind::kCellEnqueue, 1));
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.to_jsonl(), "");
}
#endif

}  // namespace
}  // namespace phantom
