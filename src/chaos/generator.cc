#include "chaos/generator.h"

#include <algorithm>
#include <stdexcept>

namespace phantom::chaos {
namespace {

using fault::FaultPlan;
using fault::FaultTarget;
using sim::Time;

/// Uniform integer-millisecond instant in [lo, hi].
[[nodiscard]] Time pick_ms(sim::Rng& rng, std::int64_t lo_ms,
                           std::int64_t hi_ms) {
  return Time::ms(rng.uniform_int(lo_ms, hi_ms));
}

/// Two-decimal probability in [lo_pct, hi_pct] percent. Dividing by 100
/// yields the identical double the parser produces from the rendered
/// "0.NN" token, keeping generated plans on the grammar's lattice.
[[nodiscard]] double pick_pct(sim::Rng& rng, int lo_pct, int hi_pct) {
  return static_cast<double>(rng.uniform_int(lo_pct, hi_pct)) / 100.0;
}

/// Any link-faultable target: trunks first, then destination links.
[[nodiscard]] FaultTarget pick_link_target(sim::Rng& rng,
                                           const TopologyInfo& topo) {
  const auto n = topo.trunks + topo.dests;
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  return i < topo.trunks ? fault::trunk(i) : fault::dest(i - topo.trunks);
}

/// A target whose port runs a real (restartable) controller.
[[nodiscard]] FaultTarget pick_restart_target(sim::Rng& rng,
                                              const TopologyInfo& topo) {
  const auto n = topo.trunks + topo.controlled_dests;
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  return i < topo.trunks ? fault::trunk(i) : fault::dest(i - topo.trunks);
}

}  // namespace

FaultPlan generate_plan(sim::Rng& rng, const ScenarioSpec& spec,
                        const GenOptions& opt) {
  const TopologyInfo topo = topology_info(spec);
  const Time earliest = opt.earliest.is_zero() ? spec.horizon / 3 : opt.earliest;
  const Time max_window = std::max(opt.max_duration, opt.max_churn_gap);
  const Time latest = spec.horizon - opt.recovery_budget - max_window;
  const auto lo_ms = static_cast<std::int64_t>(earliest.milliseconds());
  const auto hi_ms = static_cast<std::int64_t>(latest.milliseconds());
  if (hi_ms < lo_ms) {
    throw std::invalid_argument{
        "chaos: horizon " + spec.horizon.to_string() +
        " leaves no fault window (earliest " + earliest.to_string() +
        ", recovery budget " + opt.recovery_budget.to_string() + ")"};
  }
  const auto dur_ms =
      std::max<std::int64_t>(1,
                             static_cast<std::int64_t>(
                                 opt.max_duration.milliseconds()));

  // Opt-in kinds widen the draw range without renumbering the stable
  // kinds: the draw indexes this table, so a `misbehave`-only seed
  // still maps slot 6 -> misbehave, an rm_blackhole-only seed maps its
  // single extra slot onto case 7, and every pre-existing flag combo
  // reproduces its historical RNG stream exactly.
  std::vector<int> enabled_kinds{0, 1, 2, 3, 4, 5};
  if (opt.misbehave) enabled_kinds.push_back(6);
  if (opt.rm_blackhole) enabled_kinds.push_back(7);
  if (opt.overload) {
    enabled_kinds.push_back(8);
    enabled_kinds.push_back(9);
  }

  FaultPlan plan;
  const int target_events = static_cast<int>(
      rng.uniform_int(opt.min_events, std::max(opt.min_events, opt.max_events)));
  while (static_cast<int>(plan.events.size()) < target_events) {
    const Time at = pick_ms(rng, lo_ms, hi_ms);
    const std::size_t before = plan.events.size();
    const int kind = enabled_kinds[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(enabled_kinds.size()) - 1))];
    switch (kind) {
      case 0:
        plan.outage(pick_link_target(rng, topo), at,
                    pick_ms(rng, 1, dur_ms));
        break;
      case 1: {
        const int cycles =
            static_cast<int>(rng.uniform_int(1, opt.max_flap_cycles));
        // Down/up periods sized so the whole flap fits the event window.
        const std::int64_t half =
            std::max<std::int64_t>(1, dur_ms / (2 * cycles));
        plan.flap(pick_link_target(rng, topo), at, cycles,
                  pick_ms(rng, 1, half), pick_ms(rng, 1, half));
        break;
      }
      case 2:
        plan.burst(pick_link_target(rng, topo), at, pick_ms(rng, 1, dur_ms),
                   pick_pct(rng, 5, 50), pick_pct(rng, 10, 80),
                   pick_pct(rng, 20, 100));
        break;
      case 3:
        plan.rm_fault(pick_link_target(rng, topo), at, pick_ms(rng, 1, dur_ms),
                      pick_pct(rng, 5, 60), pick_pct(rng, 0, 50));
        break;
      case 4:
        plan.restart(pick_restart_target(rng, topo), at);
        break;
      case 5: {
        const auto s = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(topo.sessions) - 1));
        const auto gap_ms = std::max<std::int64_t>(
            2, static_cast<std::int64_t>(opt.max_churn_gap.milliseconds()));
        plan.leave(s, at);
        plan.join(s, at + pick_ms(rng, 2, gap_ms));
        break;
      }
      case 6: {
        // Defection window: misbehave, then return to compliance after
        // a churn-sized gap, so the end state matches the fault-free
        // run (same contract as the leave/join pair).
        const auto s = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(topo.sessions) - 1));
        const auto gap_ms = std::max<std::int64_t>(
            2, static_cast<std::int64_t>(opt.max_churn_gap.milliseconds()));
        const auto mode =
            static_cast<fault::MisbehaveMode>(rng.uniform_int(0, 2));
        // Compliance on the two-decimal lattice keeps the round trip
        // exact; only kPartial records it.
        plan.misbehave(s, at, mode, pick_pct(rng, 10, 90));
        plan.comply(s, at + pick_ms(rng, 2, gap_ms));
        break;
      }
      case 7:
        // Feedback blackhole: recovery is paired into the event (the
        // window end restores the reverse link), so the end state
        // matches the fault-free run like every other windowed fault.
        // Drop probability on the two-decimal lattice; 1.00 serializes
        // without the optional field and parses back to the default.
        plan.rm_blackhole(pick_link_target(rng, topo), at,
                          pick_ms(rng, 1, dur_ms), pick_pct(rng, 50, 100));
        break;
      case 8:
        // Memory squeeze: always windowed so the budget is restored
        // before the horizon and the end state matches the fault-free
        // run. Fraction on the two-decimal lattice for the round trip.
        plan.memsqueeze(at, pick_pct(rng, 10, 90), pick_ms(rng, 1, dur_ms));
        break;
      case 9:
        // VC storm: admitted storm sessions tear down at the window
        // end, so pre-existing sessions end in their nominal state.
        plan.vcstorm(at, static_cast<int>(rng.uniform_int(2, 16)),
                     pick_ms(rng, 1, dur_ms));
        break;
    }
    // The grammar rejects two events of the same kind / target /
    // instant as duplicates; drop a colliding draw and redraw so every
    // generated plan survives the parse(to_spec()) round trip. (Extra
    // RNG draws happen only where the old generator produced a plan
    // the shrinker could never have replayed anyway.)
    for (std::size_t n = before; n < plan.events.size(); ++n) {
      for (std::size_t i = 0; i < before; ++i) {
        if (plan.events[i].kind == plan.events[n].kind &&
            plan.events[i].target == plan.events[n].target &&
            plan.events[i].at == plan.events[n].at) {
          plan.events.resize(before);
          n = plan.events.size();  // break both loops
          break;
        }
      }
    }
  }
  return plan;
}

}  // namespace phantom::chaos
