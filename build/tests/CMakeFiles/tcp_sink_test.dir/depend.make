# Empty dependencies file for tcp_sink_test.
# This may be replaced when dependencies are built.
