file(REMOVE_RECURSE
  "libphantom_topo.a"
)
