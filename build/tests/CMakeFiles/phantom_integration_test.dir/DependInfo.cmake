
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phantom_integration_test.cc" "tests/CMakeFiles/phantom_integration_test.dir/phantom_integration_test.cc.o" "gcc" "tests/CMakeFiles/phantom_integration_test.dir/phantom_integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/phantom_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/phantom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/phantom_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/phantom_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
