# Empty dependencies file for baselines_erica_test.
# This may be replaced when dependencies are built.
