// Declarative builder for ABR simulation topologies.
//
// Wires sources, switches, trunks and destinations into a running
// network, handling the fiddly part — per-switch forward/backward VC
// routing so backward RM cells retrace the session's path and collect
// feedback from every controlled port they crossed going forward.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "atm/abr_destination.h"
#include "atm/cbr_source.h"
#include "atm/abr_source.h"
#include "atm/port_controller.h"
#include "atm/switch.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "stats/fairness.h"

namespace phantom::topo {

/// Builds a flow-control algorithm instance for a controlled port of the
/// given capacity.
using ControllerFactory = std::function<std::unique_ptr<atm::PortController>(
    sim::Simulator&, sim::Rate)>;

/// Overload armor for the whole network: every switch gets a bounded
/// cell memory (BufferManager) and Connection Admission Control with
/// one shared configuration.
struct OverloadOptions {
  atm::BufferConfig buffer;
  atm::CacConfig cac;
};

struct TrunkOptions {
  sim::Rate rate = sim::Rate::mbps(150);
  sim::Time delay = sim::Time::us(2);
  std::size_t queue_limit = 20'000;
  bool controlled = true;  ///< run the flow-control algorithm on this port
  double loss = 0.0;       ///< random cell-loss probability (failure tests)
  /// Strict priority serves CBR/VBR cells first (real switches protect
  /// the guaranteed classes); FIFO mixes everything.
  atm::QueueDiscipline discipline = atm::QueueDiscipline::kFifo;
};

/// An ABR network under construction / in operation.
///
/// Index types are plain size_t handles returned by the add_* calls.
/// Typical use (single bottleneck, the paper's base configuration):
///
///     AbrNetwork net{sim, phantom_factory};
///     auto sw = net.add_switch("sw");
///     auto d = net.add_destination(sw, {.rate = Rate::mbps(150)});
///     for (int i = 0; i < n; ++i) net.add_session(sw, {}, d, params);
///     net.start_all(Time::zero(), Time::zero());
///     sim.run_until(Time::ms(200));
class AbrNetwork {
 public:
  using SwitchId = std::size_t;
  using TrunkId = std::size_t;
  using DestId = std::size_t;
  using SessionId = std::size_t;

  AbrNetwork(sim::Simulator& sim, ControllerFactory factory);

  AbrNetwork(const AbrNetwork&) = delete;
  AbrNetwork& operator=(const AbrNetwork&) = delete;

  SwitchId add_switch(std::string name);

  /// Duplex trunk between two switches: a forward port at `from`
  /// (controlled per options) plus an uncontrolled reverse port at `to`
  /// for returning RM cells.
  TrunkId add_trunk(SwitchId from, SwitchId to, TrunkOptions options = {});

  /// Destination endpoint hanging off `at`. The port feeding it is the
  /// session's last hop; mark it controlled when it *is* the bottleneck
  /// under study (single-link configs), uncontrolled when it is just an
  /// exit stub (parking-lot locals).
  DestId add_destination(SwitchId at, TrunkOptions options = {});

  /// Session from a new source at `ingress`, across `path` (trunks must
  /// be connected head-to-tail starting at `ingress`), terminating at
  /// `dest` (which must hang off the last switch of the path).
  /// `access_delay` applies to the source's access link both ways.
  SessionId add_session(SwitchId ingress, const std::vector<TrunkId>& path,
                        DestId dest, atm::AbrParams params = {},
                        sim::Time access_delay = sim::Time::us(2));

  /// Constant-bit-rate background stream along `path` to `dest`,
  /// ignoring all feedback (models the guaranteed-traffic classes that
  /// ABR yields to). Returns an index for cbr_source(). CBR streams are
  /// excluded from reference_rates(); their rate is subtracted from the
  /// capacity of every controlled link they cross.
  std::size_t add_cbr_session(SwitchId ingress,
                              const std::vector<TrunkId>& path, DestId dest,
                              sim::Rate rate,
                              sim::Time access_delay = sim::Time::us(2));

  /// Starts ABR session i at `first + i * stagger`; CBR streams start
  /// at `first`.
  void start_all(sim::Time first, sim::Time stagger);

  [[nodiscard]] atm::AbrSource& source(SessionId s) { return *sources_.at(s); }
  [[nodiscard]] atm::CbrSource& cbr_source(std::size_t i) {
    return *cbr_sources_.at(i);
  }
  [[nodiscard]] const atm::AbrSource& source(SessionId s) const {
    return *sources_.at(s);
  }
  [[nodiscard]] atm::Switch& node(SwitchId s) { return *switches_.at(s); }
  [[nodiscard]] atm::AbrDestination& destination(DestId d) {
    return *dests_.at(d).endpoint;
  }
  /// The controlled output port of a trunk.
  [[nodiscard]] atm::OutputPort& trunk_port(TrunkId t);
  /// The uncontrolled reverse port of a trunk (returning RM cells) —
  /// the fault subsystem takes both directions of a trunk down together.
  [[nodiscard]] atm::OutputPort& trunk_reverse_port(TrunkId t);
  /// The output port feeding a destination.
  [[nodiscard]] atm::OutputPort& dest_port(DestId d);

  [[nodiscard]] std::size_t num_sessions() const { return sources_.size(); }
  [[nodiscard]] std::size_t num_switches() const { return switches_.size(); }
  [[nodiscard]] std::size_t num_trunks() const { return trunks_.size(); }
  [[nodiscard]] std::size_t num_destinations() const { return dests_.size(); }
  [[nodiscard]] std::size_t num_cbr_sessions() const {
    return cbr_sources_.size();
  }

  /// Every physical link hop the network wired — switch-port links plus
  /// source/destination access links. The invariant monitor sums loss /
  /// in-flight counters over exactly this set for cell conservation.
  [[nodiscard]] std::vector<std::shared_ptr<atm::LinkState>> link_states()
      const;

  /// Aggregate cells lost on all links (outages, random loss, bursts,
  /// RM-targeted faults) — the loss-accounting probe.
  [[nodiscard]] std::uint64_t total_cells_lost() const;

  /// Data cells received so far for session `s` at its destination.
  [[nodiscard]] std::uint64_t delivered_cells(SessionId s) const;

  /// The VC identifier session `s` transmits on (policer stats are
  /// keyed by VC).
  [[nodiscard]] int session_vc(SessionId s) const {
    return sessions_.at(s).vc;
  }

  /// Switches session `s` to the given feedback behaviour (see
  /// atm::SourceBehavior) — the `misbehave`/`comply` faults.
  void set_session_behavior(SessionId s, atm::SourceBehavior behavior,
                            double compliance = 1.0);

  /// Attaches a UPC policer (shared config) at every switch's ingress.
  void enable_policing(atm::PolicerConfig config);
  /// Starts the stale-VC reaper (shared config) on every switch: silent
  /// VCs are declared dead, their policer state evicted, and their
  /// share released to the controllers via vc_expired().
  void enable_reaping(atm::ReaperConfig config = {});
  /// Explicit teardown of session `s`'s dynamic per-VC state on every
  /// switch along its path (the caller knows the session is gone; no
  /// need to wait for the silence timeout). The route itself stays.
  void teardown_session_state(SessionId s);
  /// VCs evicted so far (reaper sweeps + explicit teardowns), summed
  /// over all switches. One session crossing k switches counts k times.
  [[nodiscard]] std::uint64_t vcs_reaped() const;
  /// Cells discarded at switch ingress by drop-mode policing, summed
  /// over all switches. These never reached a port queue, so they form
  /// their own term in the cell-conservation ledger.
  [[nodiscard]] std::uint64_t policer_dropped_cells() const;
  /// RM cells whose fields were sanitized on switch ingest, summed over
  /// all switches.
  [[nodiscard]] std::uint64_t rm_cells_sanitized() const;

  /// Ideal allocation for the current topology: max-min over the
  /// *controlled* links, optionally with one phantom session per link
  /// (the paper's predicted Phantom equilibrium), at utilization u.
  [[nodiscard]] std::vector<sim::Rate> reference_rates(
      bool phantom_per_link, double utilization) const;

  // --- Overload protection (bounded memory + admission control) ---

  /// Arms every switch with a bounded cell memory and CAC (shared
  /// config), and grandfathers the sessions that already exist: their
  /// MCRs are booked (and buffer-protected) without being re-judged —
  /// an armed switch must not retroactively orphan contracts it already
  /// accepted. Call before traffic flows; ports refuse to join a budget
  /// with cells already queued.
  void enable_overload_protection(OverloadOptions options = {});
  [[nodiscard]] bool overload_protection_enabled() const { return overload_; }

  /// The admission outcome of try_add_session.
  struct AdmissionOutcome {
    bool admitted = false;
    /// First refusal reason along the path (kAdmitted when admitted).
    atm::AdmitVerdict verdict = atm::AdmitVerdict::kAdmitted;
    /// Switch that refused (meaningful only when !admitted).
    SwitchId refused_at = 0;
    /// The created session (meaningful only when admitted).
    SessionId session = 0;
  };

  /// add_session with admission control: every switch along the path
  /// must admit the VC (MCR booking, buffer headroom, VC table,
  /// pressure) before any state is built. A refusal at hop k rolls back
  /// the bookings at hops 0..k-1 and builds nothing. With overload
  /// protection off, this is exactly add_session.
  AdmissionOutcome try_add_session(SwitchId ingress,
                                   const std::vector<TrunkId>& path,
                                   DestId dest, atm::AbrParams params = {},
                                   sim::Time access_delay = sim::Time::us(2));

  /// Ingress/path/destination of an existing session — what a VC-storm
  /// fault clones to offer the network more of the same load.
  struct SessionShape {
    SwitchId ingress;
    std::vector<TrunkId> path;
    DestId dest;
  };
  [[nodiscard]] SessionShape session_shape(SessionId s) const;

  /// Complete AAL5 frames delivered for session `s` (frame-level
  /// goodput; see AbrDestination frame accounting).
  [[nodiscard]] std::uint64_t delivered_frames(SessionId s) const;

  /// The memsqueeze fault: shrink every switch's effective buffer
  /// budget to `fraction` of its configured size (1.0 restores).
  void squeeze_buffers(double fraction);

  // --- Observability ---

  /// Attaches the structured event log to every switch (node index =
  /// SwitchId) and every source, including ones added later. Pass
  /// nullptr to detach. The log must outlive the network.
  void attach_event_log(obs::EventLog* log);

  /// Registers every switch's metrics (prefix = the switch's name,
  /// deduplicated with "#<id>" on collision) and every session source's
  /// (prefix = "session<i>") into `reg`. Call once, after the topology
  /// is built; sessions added afterwards are not registered.
  void register_metrics(obs::Registry& reg);

  /// CAC counters summed over all switches (a session crossing k armed
  /// switches counts up to k admissions; a refusal counts once, at the
  /// switch that refused).
  [[nodiscard]] atm::CacCounters cac_totals() const;
  /// Buffer-manager discard counters summed over all switches.
  [[nodiscard]] std::uint64_t epd_frames_discarded() const;
  [[nodiscard]] std::uint64_t cells_ppd_discarded() const;
  [[nodiscard]] std::uint64_t cells_shed() const;
  [[nodiscard]] std::uint64_t buffer_overflow_drops() const;
  [[nodiscard]] std::size_t buffer_cells_in_use() const;

 private:
  struct Trunk {
    SwitchId from;
    SwitchId to;
    std::size_t forward_port;  // at `from`
    std::size_t reverse_port;  // at `to`
    bool controlled;
    sim::Rate rate;
  };
  struct Destination {
    SwitchId at;
    std::size_t port;  // at `at`, feeding the endpoint
    std::unique_ptr<atm::AbrDestination> endpoint;
    bool controlled;
    sim::Rate rate;
  };
  struct Session {
    SwitchId ingress;
    std::vector<TrunkId> path;
    DestId dest;
    int vc;
  };

 public:
  /// Caps a session's demand (see AbrSource::set_demand) and records it
  /// so reference_rates() computes the demand-constrained max-min
  /// allocation.
  void set_session_demand(SessionId s, sim::Rate demand);

 private:
  std::vector<double> session_demand_bps_;  // +inf = greedy
  struct CbrSession {
    std::vector<TrunkId> path;
    DestId dest;
    sim::Rate rate;
  };

  std::size_t add_port(SwitchId at, atm::CellSink& sink, sim::Rate rate,
                       sim::Time delay, std::size_t queue_limit,
                       bool controlled, double loss = 0.0,
                       atm::QueueDiscipline discipline =
                           atm::QueueDiscipline::kFifo);
  void validate_path(SwitchId ingress, const std::vector<TrunkId>& path,
                     DestId dest) const;
  /// (switch, forward port) per hop, ingress first, egress last.
  [[nodiscard]] std::vector<std::pair<SwitchId, std::size_t>> session_hops(
      SwitchId ingress, const std::vector<TrunkId>& path, DestId dest) const;

  sim::Simulator* sim_;
  ControllerFactory factory_;
  std::vector<std::unique_ptr<atm::Switch>> switches_;
  std::vector<Trunk> trunks_;
  std::vector<Destination> dests_;
  std::vector<std::unique_ptr<atm::AbrSource>> sources_;
  std::vector<Session> sessions_;
  std::vector<std::unique_ptr<atm::CbrSource>> cbr_sources_;
  std::vector<CbrSession> cbr_sessions_;
  int next_vc_ = 0;
  bool overload_ = false;
  OverloadOptions overload_options_;
  obs::EventLog* event_log_ = nullptr;
};

}  // namespace phantom::topo
