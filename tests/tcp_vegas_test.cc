// Vegas and Tahoe senders: unit behaviour plus the paper's Vegas
// unfairness observation.
#include "tcp/vegas.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "stats/fairness.h"
#include "tcp/reno.h"
#include "tcp/tcp_network.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

struct VegasFixture {
  Simulator sim;
  std::vector<Packet> sent;
  VegasConfig config;
  std::unique_ptr<VegasSource> src;

  explicit VegasFixture(VegasConfig cfg = {}) : config{cfg} {
    src = std::make_unique<VegasSource>(
        sim, 1, config, [this](Packet p) { sent.push_back(p); });
  }

  void start() {
    src->start(Time::zero());
    sim.run_until(Time::us(1));
  }

  /// ACK with a controlled echoed-RTT: the echo timestamp is now - rtt.
  void ack(std::int64_t ack_no, Time rtt) {
    Packet a = Packet::make_ack(1, ack_no);
    a.timestamp = sim.now() - rtt;
    src->receive_packet(a);
  }
};

TEST(VegasTest, TracksMinimumRttAsBase) {
  VegasFixture f;
  f.start();
  f.sim.run_until(Time::ms(100));
  f.ack(512, Time::ms(40));
  EXPECT_EQ(f.src->base_rtt(), Time::ms(40));
  f.ack(1024, Time::ms(60));  // larger: base unchanged
  EXPECT_EQ(f.src->base_rtt(), Time::ms(40));
  f.ack(1536, Time::ms(30));  // smaller: base updates
  EXPECT_EQ(f.src->base_rtt(), Time::ms(30));
}

TEST(VegasTest, GrowsWhileQueueEstimateBelowAlpha) {
  VegasFixture f;
  f.start();
  f.sim.run_until(Time::ms(100));
  // Force congestion-avoidance mode.
  f.src->receive_packet(Packet::source_quench(1));  // cwnd -> 1 mss
  const double before = f.src->cwnd_bytes();
  // RTT == BaseRTT: diff = 0 < alpha -> grow by one mss per RTT epoch.
  f.ack(512, Time::ms(40));
  EXPECT_GT(f.src->cwnd_bytes(), before);
}

TEST(VegasTest, ShrinksWhenQueueEstimateAboveBeta) {
  VegasConfig cfg;
  cfg.base.initial_ssthresh = 1024;  // leave slow start immediately
  VegasFixture f{cfg};
  f.start();
  f.sim.run_until(Time::ms(100));
  // Seed base RTT at 10 ms, then pump the window up.
  f.ack(512, Time::ms(10));
  for (int i = 2; i <= 12; ++i) f.ack(512 * i, Time::ms(10));
  const double before = f.src->cwnd_bytes();
  ASSERT_GT(before, 2048.0);
  // Now the RTT doubles: diff = cwnd * (1 - 10/20) = cwnd/2 >> beta*mss.
  // Drive complete RTT epochs (ack a full window each time) and watch
  // the window walk DOWN one mss per epoch.
  for (int epoch = 0; epoch < 3; ++epoch) {
    f.sim.run_until(f.sim.now() + Time::ms(20));
    f.ack(f.src->bytes_acked() + static_cast<std::int64_t>(f.src->cwnd_bytes()),
          Time::ms(20));
  }
  EXPECT_LT(f.src->cwnd_bytes(), before);
}

TEST(VegasTest, FastRetransmitCutsWindowToThreeQuarters) {
  VegasFixture f;
  f.start();
  for (int i = 1; i <= 8; ++i) f.ack(512 * i, Time::ms(10));
  const double before = f.src->cwnd_bytes();
  for (int i = 0; i < 3; ++i) {
    Packet dup = Packet::make_ack(1, f.src->bytes_acked());
    dup.timestamp = f.sim.now();
    f.src->receive_packet(dup);
  }
  EXPECT_EQ(f.src->fast_retransmits(), 1u);
  // cwnd = 0.75 * before, then +1 mss inflation would come with more
  // dups; check the 3/4 cut.
  EXPECT_NEAR(f.src->cwnd_bytes(), 0.75 * before, 1.0);
  EXPECT_EQ(f.src->name(), "vegas");
}

TEST(VegasTest, ConfigValidation) {
  Simulator sim;
  VegasConfig bad;
  bad.beta_segments = bad.alpha_segments;  // beta must exceed alpha
  EXPECT_THROW((VegasSource{sim, 1, bad, [](Packet) {}}),
               std::invalid_argument);
}

TEST(TahoeTest, FastRetransmitRestartsSlowStart) {
  Simulator sim;
  std::vector<Packet> sent;
  TahoeSource src{sim, 1, RenoConfig{}, [&](Packet p) { sent.push_back(p); }};
  src.start(Time::zero());
  sim.run_until(Time::us(1));
  auto ack = [&](std::int64_t n) {
    Packet a = Packet::make_ack(1, n);
    a.timestamp = sim.now();
    src.receive_packet(a);
  };
  ack(512);
  ack(1024);
  ack(1536);  // cwnd 4 mss, flight 1536..3584
  for (int i = 0; i < 3; ++i) ack(1536);
  EXPECT_EQ(src.fast_retransmits(), 1u);
  EXPECT_FALSE(src.in_fast_recovery());       // Tahoe never enters recovery
  EXPECT_DOUBLE_EQ(src.cwnd_bytes(), 512.0);  // back to one segment
  EXPECT_EQ(src.name(), "tahoe");
}

TEST(VegasNetworkTest, SingleVegasFlowFillsThePipeWithShortQueue) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  const auto s = net.add_sink_node(r, {});
  FlowOptions opts;
  opts.kind = SenderKind::kVegas;
  net.add_flow(r, {}, s, opts);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(2));
  const auto at_2s = net.delivered_bytes(0);
  sim.run_until(Time::sec(4));
  const double mbps =
      static_cast<double>(net.delivered_bytes(0) - at_2s) * 8 / 2.0 / 1e6;
  EXPECT_GT(mbps, 7.0);
  // Vegas' signature: it holds only alpha..beta segments of queue, so
  // the bottleneck buffer stays nearly empty (Reno rides the limit).
  EXPECT_LT(net.sink_port(s).max_queue_length(), 20u);
  EXPECT_EQ(net.source(0).timeouts(), 0u);
}

TEST(VegasNetworkTest, UnequalVegasSharesNeverRebalance) {
  // The paper: "when two sources that use Vegas get different window
  // sizes ... there is no mechanism that would balance them. The
  // current mechanisms would either increase both or decrease both."
  // Stagger the flows (the latecomer measures an inflated BaseRTT while
  // the first flow's segments sit in the queue); whatever imbalance
  // results, it must PERSIST — Vegas has no equalizing force.
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  const auto s = net.add_sink_node(r, {});
  FlowOptions opts;
  opts.kind = SenderKind::kVegas;
  net.add_flow(r, {}, s, opts);
  net.add_flow(r, {}, s, opts);
  net.source(0).start(Time::zero());
  net.source(1).start(Time::sec(1));

  auto window_share = [&](Time from, Time to) {
    sim.run_until(from);
    std::vector<std::int64_t> base{net.delivered_bytes(0),
                                   net.delivered_bytes(1)};
    sim.run_until(to);
    const double a = static_cast<double>(net.delivered_bytes(0) - base[0]);
    const double b = static_cast<double>(net.delivered_bytes(1) - base[1]);
    return a / (a + b);
  };
  const double early = window_share(Time::sec(4), Time::sec(8));
  const double late = window_share(Time::sec(8), Time::sec(16));
  // Both windows are clearly unfair...
  EXPECT_GT(std::abs(early - 0.5), 0.05);
  EXPECT_GT(std::abs(late - 0.5), 0.05);
  // ...in the same direction, and the gap does not close over time.
  EXPECT_GT((early - 0.5) * (late - 0.5), 0.0);
  EXPECT_GT(std::abs(late - 0.5), 0.6 * std::abs(early - 0.5));
}

}  // namespace
}  // namespace phantom::tcp
