// Property tests on randomly generated topologies: for any linear
// multi-switch network with random trunk rates and random session
// paths, Phantom's measured goodputs track the phantom-augmented
// max-min reference.
#include <gtest/gtest.h>

#include <vector>

#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;
using topo::TrunkOptions;

struct Generated {
  std::unique_ptr<AbrNetwork> net;
  std::size_t sessions = 0;
};

/// Random linear chain: 2-4 switches, trunks at 45/100/150 Mb/s, 3-6
/// sessions with random contiguous sub-paths. Every session also has a
/// 25% chance of exiting through an uncontrolled stub before the chain
/// ends.
Generated generate(Simulator& sim, sim::Rng& rng) {
  Generated g;
  g.net = std::make_unique<AbrNetwork>(
      sim, exp::make_factory(exp::Algorithm::kPhantom));
  AbrNetwork& net = *g.net;

  const int hops = static_cast<int>(rng.uniform_int(1, 3));  // trunk count
  std::vector<AbrNetwork::SwitchId> sw;
  for (int i = 0; i <= hops; ++i) sw.push_back(net.add_switch("s"));
  std::vector<AbrNetwork::TrunkId> trunks;
  const double rates[] = {45, 100, 150};
  for (int i = 0; i < hops; ++i) {
    TrunkOptions opt;
    opt.rate = Rate::mbps(rates[rng.uniform_int(0, 2)]);
    trunks.push_back(net.add_trunk(sw[static_cast<std::size_t>(i)],
                                   sw[static_cast<std::size_t>(i + 1)], opt));
  }
  // One controlled destination at the chain's end plus uncontrolled
  // stubs at every switch.
  const auto d_end = net.add_destination(sw.back(), {});
  TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  std::vector<AbrNetwork::DestId> stubs;
  for (const auto s : sw) stubs.push_back(net.add_destination(s, stub));

  const int sessions = static_cast<int>(rng.uniform_int(3, 6));
  for (int s = 0; s < sessions; ++s) {
    const auto from =
        static_cast<std::size_t>(rng.uniform_int(0, hops - 1));
    // Random contiguous sub-path [from, to).
    const auto to = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(from) + 1, hops));
    std::vector<AbrNetwork::TrunkId> path(trunks.begin() +
                                              static_cast<std::ptrdiff_t>(from),
                                          trunks.begin() +
                                              static_cast<std::ptrdiff_t>(to));
    if (to == static_cast<std::size_t>(hops) && rng.bernoulli(0.75)) {
      net.add_session(sw[from], path, d_end);  // runs to the real end
    } else {
      net.add_session(sw[from], path, stubs[to]);  // exits via a stub
    }
  }
  g.sessions = net.num_sessions();
  return g;
}

class RandomTopologySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopologySweep, GoodputTracksReference) {
  Simulator sim{static_cast<std::uint64_t>(GetParam())};
  sim::Rng topo_rng{static_cast<std::uint64_t>(GetParam()) * 977 + 13};
  const Generated g = generate(sim, topo_rng);
  exp::GoodputProbe probe{sim, *g.net};
  g.net->start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(500));
  probe.mark();
  sim.run_until(Time::ms(900));
  const auto measured = probe.rates_mbps();
  const auto ideal = g.net->reference_rates(/*phantom_per_link=*/true, 0.95);
  ASSERT_EQ(measured.size(), ideal.size());
  std::vector<double> ideal_mbps;
  for (const auto& r : ideal) ideal_mbps.push_back(r.mbits_per_sec());
  // Property: the whole allocation lands near the reference.
  EXPECT_GT(stats::maxmin_closeness(measured, ideal_mbps), 0.85)
      << "seed " << GetParam() << " with " << g.sessions << " sessions";
  // Property: nothing is starved (every session gets > TCR by far).
  for (std::size_t s = 0; s < measured.size(); ++s) {
    EXPECT_GT(measured[s], 0.5) << "session " << s << " starved";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologySweep,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace phantom
