# Empty compiler generated dependencies file for bench_fig_rtt.
# This may be replaced when dependencies are built.
