#include "atm/output_port.h"

#include <cassert>
#include <utility>

namespace phantom::atm {

OutputPort::OutputPort(sim::Simulator& sim, sim::Rate rate,
                       std::size_t queue_limit, Link link,
                       std::unique_ptr<PortController> controller,
                       QueueDiscipline discipline)
    : sim_{&sim},
      rate_{rate},
      queue_limit_{queue_limit},
      link_{link},
      controller_{std::move(controller)},
      discipline_{discipline} {
  assert(rate.bits_per_sec() > 0.0);
  assert(queue_limit_ > 0);
  if (!controller_) controller_ = std::make_unique<NullController>();
}

void OutputPort::send(Cell cell) {
  const bool clp_overflow = cell.clp && queue_length() >= clp_threshold_;
  if (queue_length() >= queue_limit_ || clp_overflow) {
    ++dropped_;
    if (clp_overflow && queue_length() < queue_limit_) ++clp_dropped_;
    // Either way the drop goes through the controller: queue-pressure
    // drops are offered load the algorithm must see [Sat96 counts every
    // arrival, served or not].
    controller_->on_cell_dropped(cell);
    return;
  }
  if (buffer_mgr_ != nullptr &&
      buffer_mgr_->admit(bm_port_id_, cell, sim_->now()) !=
          BufferManager::Verdict::kAccept) {
    // Same accounting as a queue-limit drop: the controller still sees
    // the offered load, and the port's dropped counter keeps the
    // conservation ledger exact (the manager's counters say *why*).
    ++dropped_;
    controller_->on_cell_dropped(cell);
    return;
  }
  if (cell.kind == CellKind::kData && controller_->mark_efci(queue_length())) {
    cell.efci = true;
  }
  if (discipline_ == QueueDiscipline::kStrictPriority && cell.high_priority) {
    priority_queue_.push_back(cell);
  } else {
    queue_.push_back(cell);
  }
  max_queue_ = std::max(max_queue_, queue_length());
  ++accepted_;
  controller_->on_cell_accepted(cell, queue_length());
  if (!transmitting_) start_transmission();
}

void OutputPort::start_transmission() {
  assert(queue_length() > 0);
  transmitting_ = true;
  // Pin the cell entering service now: a higher-priority arrival during
  // its serialization must not preempt it.
  serving_ = priority_queue_.empty() ? &queue_ : &priority_queue_;
  sim_->schedule(rate_.transmission_time(kCellBits),
                 sim::bind_member<&OutputPort::on_transmission_complete>(this));
}

void OutputPort::on_transmission_complete() {
  assert(serving_ != nullptr && !serving_->empty());
  std::deque<Cell>& q = *serving_;
  serving_ = nullptr;
  const Cell cell = q.front();
  q.pop_front();
  if (buffer_mgr_ != nullptr) buffer_mgr_->release(bm_port_id_, cell);
  ++transmitted_;
  controller_->on_cell_transmitted(cell);
  link_.deliver(cell);
  if (queue_length() > 0) {
    start_transmission();
  } else {
    transmitting_ = false;
  }
}

}  // namespace phantom::atm
