#include "chaos/search.h"

#include <utility>

#include "chaos/json.h"
#include "chaos/supervisor.h"

namespace phantom::chaos {
namespace {

/// splitmix64 (Steele et al.) — decorrelates per-trial generator seeds
/// from the master seed and each other.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t trial_gen_seed(std::uint64_t master, int trial) {
  // 0x6368616f73 == "chaos"; keeps the generator stream distinct from
  // the simulator stream even when master seeds collide with sim seeds.
  return splitmix64(master ^ (0x6368616f73ULL + static_cast<std::uint64_t>(trial)));
}

void append_trial_result(std::string& out, const char* prefix,
                         const TrialResult& r) {
  out += std::string{"\""} + prefix + "verdict\": \"" + to_string(r.verdict) +
         "\", ";
  out += std::string{"\""} + prefix + "detail\": \"" + json_escape(r.detail) +
         "\", ";
  if (r.verdict == Verdict::kProcessCrash) {
    out += std::string{"\""} + prefix + "crash_signal\": \"" +
           json_escape(r.crash_signal) + "\", ";
    out += std::string{"\""} + prefix + "exit_code\": " +
           std::to_string(r.exit_code) + ", ";
    out += std::string{"\""} + prefix + "stderr_tail\": \"" +
           json_escape(r.stderr_tail) + "\", ";
  }
}

}  // namespace

std::string SearchReport::to_json() const {
  std::string out = "{\n";
  out += "  \"scenario\": {\"kind\": \"" + json_escape(to_string(spec.kind)) +
         "\", \"algorithm\": \"" + json_escape(exp::to_string(spec.algorithm)) +
         "\", \"sessions\": " + std::to_string(spec.sessions) +
         ", \"rate_mbps\": " + fmt_double(spec.rate_mbps) +
         ", \"horizon_ms\": " + fmt_double(spec.horizon.milliseconds()) +
         "},\n";
  out += "  \"options\": {\"trials\": " + std::to_string(options.trials) +
         ", \"seed\": " + std::to_string(options.seed) +
         ", \"max_failures\": " + std::to_string(options.max_failures) +
         ", \"shrink\": " + (options.shrink ? "true" : "false") + "},\n";
  out += "  \"baseline_share_mbps\": " + fmt_double(baseline_share_mbps) +
         ",\n";
  out += "  \"trials_run\": " + std::to_string(trials_run) + ",\n";
  out += "  \"passed\": " + std::to_string(passed) + ",\n";
  out += std::string{"  \"interrupted\": "} + (interrupted ? "true" : "false") +
         ",\n";
  out += "  \"failures\": [";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const Failure& f = failures[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"trial\": " + std::to_string(f.trial) + ", ";
    append_trial_result(out, "", f.result);
    out += "\"plan\": \"" + json_escape(f.plan.to_spec()) + "\", ";
    out += "\"shrunk_plan\": \"" + json_escape(f.shrunk_plan.to_spec()) +
           "\", ";
    append_trial_result(out, "shrunk_", f.shrunk_result);
    out += "\"shrink_probes\": " + std::to_string(f.shrink_probes) + ", ";
    out += "\"replay\": \"" + json_escape(cli_replay(f)) + "\"}";
  }
  out += failures.empty() ? "],\n" : "\n  ],\n";
  out += "  \"failure_classes\": [";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const TriagedClass& c = classes[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"fingerprint\": \"" + json_escape(c.fingerprint) + "\", ";
    out += "\"verdict\": \"" + std::string{to_string(c.verdict)} + "\", ";
    out += "\"signal\": \"" + json_escape(c.signal) + "\", ";
    out += "\"count\": " + std::to_string(c.trials.size()) + ", ";
    out += "\"trials\": [";
    for (std::size_t t = 0; t < c.trials.size(); ++t) {
      out += (t == 0 ? "" : ", ") + std::to_string(c.trials[t]);
    }
    out += "], ";
    out += "\"sample_detail\": \"" + json_escape(c.sample_detail) + "\", ";
    out += "\"flight_recorder\": [";
    for (std::size_t t = 0; t < c.flight_recorder.size(); ++t) {
      if (t > 0) out += ", ";
      out += "\"" + json_escape(c.flight_recorder[t]) + "\"";
    }
    out += "]}";
  }
  out += classes.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string SearchReport::cli_replay(const Failure& f) const {
  std::string cmd = "phantom_cli --scenario=" + to_string(spec.kind);
  cmd += " --algorithm=" + exp::to_string(spec.algorithm);
  cmd += " --sessions=" + std::to_string(spec.sessions);
  cmd += " --rate-mbps=" + fmt_double(spec.rate_mbps);
  cmd += " --duration-ms=" + fmt_double(spec.horizon.milliseconds());
  cmd += " --seed=" + std::to_string(options.seed);
  if (spec.overload) cmd += " --overload";
  cmd += " --fault-plan='" + f.shrunk_plan.to_spec() + "'";
  return cmd;
}

SearchReport run_search(const ScenarioSpec& spec, const SearchOptions& opt) {
  SearchReport report;
  report.spec = spec;
  report.options = opt;

  const Baseline baseline = run_baseline(spec, opt.seed, opt.trial);
  report.baseline_share_mbps = baseline.settled_share_bps * 1e-6;

  // Every trial draws its plan from a private generator stream, so
  // generating the whole schedule up front is exactly equivalent to
  // generating lazily — and it is what lets the supervisor hand trials
  // to children in any completion order while the report stays a pure
  // function of (spec, options).
  std::vector<fault::FaultPlan> plans;
  plans.reserve(static_cast<std::size_t>(opt.trials));
  for (int t = 0; t < opt.trials; ++t) {
    sim::Rng gen_rng{trial_gen_seed(opt.seed, t)};
    plans.push_back(generate_plan(gen_rng, spec, opt.gen));
  }

  std::vector<std::optional<TrialResult>> results;
  if (opt.isolate) {
    SupervisorOptions sup;
    sup.jobs = opt.jobs;
    sup.isolate = opt.isolation;
    sup.checkpoint_path = opt.checkpoint;
    Supervisor supervisor{spec, opt.seed, opt.trial, baseline, sup};
    SupervisedOutcome outcome = supervisor.run(plans, opt.max_failures);
    results = std::move(outcome.results);
    report.interrupted = outcome.interrupted;
    report.resumed = outcome.resumed;
  } else {
    results.resize(plans.size());
    int failures = 0;
    for (std::size_t t = 0; t < plans.size(); ++t) {
      if (failures >= opt.max_failures) break;
      results[t] = run_trial(spec, opt.seed, plans[t], opt.trial, &baseline);
      if (results[t]->failed()) ++failures;
    }
  }

  // Shrink probes honour the isolation setting: a minimization step
  // that crashes or hangs the process must be as contained as the
  // trial that found the bug.
  const auto probe = [&](const fault::FaultPlan& p) {
    return opt.isolate ? run_trial_isolated(spec, opt.seed, p, opt.trial,
                                            &baseline, opt.isolation)
                       : run_trial(spec, opt.seed, p, opt.trial, &baseline);
  };

  for (std::size_t t = 0; t < results.size(); ++t) {
    if (!results[t]) continue;  // past the cutoff, or interrupted
    ++report.trials_run;
    if (!results[t]->failed()) {
      ++report.passed;
      continue;
    }
    Failure f;
    f.trial = static_cast<int>(t);
    f.plan = plans[t];
    f.result = *results[t];
    f.shrunk_plan = plans[t];
    if (report.interrupted) {
      // Drain fast: report the raw failure; a resumed run can shrink.
      f.shrunk_result = f.result;
    } else {
      if (opt.shrink) {
        // "Still fails" means the same oracle fires — a plan that trips a
        // *different* oracle is a different bug, not a smaller repro.
        const auto still_fails = [&](const fault::FaultPlan& candidate) {
          return probe(candidate).verdict == f.result.verdict;
        };
        ShrinkResult s = shrink(plans[t], still_fails, opt.shrinker);
        f.shrunk_plan = std::move(s.plan);
        f.shrink_probes = s.probes;
      }
      f.shrunk_result = probe(f.shrunk_plan);
    }
    report.failures.push_back(std::move(f));
  }

  std::vector<std::tuple<int, const TrialResult*, const fault::FaultPlan*>>
      failing;
  failing.reserve(report.failures.size());
  for (const Failure& f : report.failures) {
    // Fingerprint against the *generated* plan: the shrunk plan may
    // have dropped the misbehave events that define the class.
    failing.emplace_back(f.trial, &f.result, &f.plan);
  }
  report.classes = triage_failures(failing);
  return report;
}

}  // namespace phantom::chaos
