file(REMOVE_RECURSE
  "CMakeFiles/scale_soak_test.dir/scale_soak_test.cc.o"
  "CMakeFiles/scale_soak_test.dir/scale_soak_test.cc.o.d"
  "scale_soak_test"
  "scale_soak_test.pdb"
  "scale_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
