file(REMOVE_RECURSE
  "CMakeFiles/baselines_integration_test.dir/baselines_integration_test.cc.o"
  "CMakeFiles/baselines_integration_test.dir/baselines_integration_test.cc.o.d"
  "baselines_integration_test"
  "baselines_integration_test.pdb"
  "baselines_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
