file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_rtt.dir/bench_fig_rtt.cc.o"
  "CMakeFiles/bench_fig_rtt.dir/bench_fig_rtt.cc.o.d"
  "bench_fig_rtt"
  "bench_fig_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
