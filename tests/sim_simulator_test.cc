#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace phantom::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<Time> seen;
  sim.schedule(Time::ms(2), [&] { seen.push_back(sim.now()); });
  sim.schedule(Time::ms(5), [&] { seen.push_back(sim.now()); });
  const auto n = sim.run();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(seen, (std::vector<Time>{Time::ms(2), Time::ms(5)}));
  EXPECT_EQ(sim.now(), Time::ms(5));
}

TEST(SimulatorTest, CallbacksCanScheduleMoreEvents) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) sim.schedule(Time::ms(1), tick);
  };
  sim.schedule(Time::ms(1), tick);
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), Time::ms(5));
}

TEST(SimulatorTest, ZeroDelayEventRunsAtCurrentInstant) {
  Simulator sim;
  Time inner_time = Time::max();
  sim.schedule(Time::ms(3), [&] {
    sim.schedule(Time::zero(), [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, Time::ms(3));
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Time::ms(1), [&] { ++fired; });
  sim.schedule(Time::ms(10), [&] { ++fired; });
  const auto n = sim.run_until(Time::ms(5));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::ms(5));
  EXPECT_TRUE(sim.pending());
  sim.run_until(Time::ms(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Time::ms(20));
}

TEST(SimulatorTest, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule(Time::ms(5), [&] { fired = true; });
  sim.run_until(Time::ms(5));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Time::ms(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(Time::ms(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(Time::ms(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, ScheduleAtUsesAbsoluteTime) {
  Simulator sim;
  Time seen = Time::zero();
  sim.schedule(Time::ms(1), [&] {
    sim.schedule_at(Time::ms(10), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, Time::ms(10));
}

TEST(SimulatorTest, PendingCountReflectsQueue) {
  Simulator sim;
  sim.schedule(Time::ms(1), [] {});
  sim.schedule(Time::ms(2), [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_FALSE(sim.pending());
}

TEST(SimulatorTest, SameSeedSameStream) {
  Simulator a{42}, b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.rng().uniform(0, 1), b.rng().uniform(0, 1));
  }
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(Time::ms(-1), [] {}), std::logic_error);
}

TEST(SimulatorTest, ScheduleAtInThePastThrows) {
  Simulator sim;
  sim.schedule(Time::ms(5), [&] {
    EXPECT_THROW(sim.schedule_at(Time::ms(2), [] {}), std::logic_error);
  });
  sim.run();
  // Scheduling exactly at `now` is allowed.
  EXPECT_NO_THROW(sim.schedule_at(sim.now(), [] {}));
}

TEST(SimulatorTest, RunUntilPastDeadlineThrows) {
  Simulator sim;
  sim.schedule(Time::ms(5), [] {});
  sim.run();
  EXPECT_EQ(sim.now(), Time::ms(5));
  EXPECT_THROW(sim.run_until(Time::ms(2)), std::logic_error);
  EXPECT_NO_THROW(sim.run_until(sim.now()));
}

TEST(SimulatorTest, RejectedEventIsNotEnqueued) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(Time::ms(-3), [] {}), std::logic_error);
  EXPECT_FALSE(sim.pending());
}

TEST(SimulatorTest, PeriodicProcessPattern) {
  // The idiom every model's interval timer uses.
  Simulator sim;
  int intervals = 0;
  std::function<void()> timer = [&] {
    ++intervals;
    sim.schedule(Time::ms(1), timer);
  };
  sim.schedule(Time::ms(1), timer);
  sim.run_until(Time::ms(100));
  EXPECT_EQ(intervals, 100);
}

TEST(RunGuardedTest, DrainsAndAdvancesToDeadline) {
  Simulator sim;
  int ran = 0;
  sim.schedule(Time::ms(3), [&] { ++ran; });
  RunGuard guard;
  guard.deadline = Time::ms(10);
  EXPECT_EQ(sim.run_guarded(guard), RunOutcome::kDrained);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), Time::ms(10));  // clock lands on the deadline
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(RunGuardedTest, DeadlineLeavesLaterEventsPending) {
  Simulator sim;
  int ran = 0;
  sim.schedule(Time::ms(3), [&] { ++ran; });
  sim.schedule(Time::ms(30), [&] { ++ran; });
  RunGuard guard;
  guard.deadline = Time::ms(10);
  EXPECT_EQ(sim.run_guarded(guard), RunOutcome::kDeadline);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), Time::ms(10));
  EXPECT_TRUE(sim.pending());
}

TEST(RunGuardedTest, EventBudgetStopsARunawayCascade) {
  Simulator sim;
  std::function<void()> cascade = [&] { sim.schedule(Time::us(1), cascade); };
  sim.schedule(Time::us(1), cascade);
  RunGuard guard;
  guard.max_events = 500;
  EXPECT_EQ(sim.run_guarded(guard), RunOutcome::kEventBudget);
  EXPECT_EQ(sim.events_executed(), 500u);
}

TEST(RunGuardedTest, LivelockDetectedWhenClockStopsAdvancing) {
  // Zero-delay self-rescheduling: sim time never moves past 1 ms.
  Simulator sim;
  std::function<void()> spin = [&] { sim.schedule(Time::zero(), spin); };
  sim.schedule(Time::ms(1), spin);
  RunGuard guard;
  guard.deadline = Time::ms(100);
  guard.max_events_per_instant = 1000;
  EXPECT_EQ(sim.run_guarded(guard), RunOutcome::kLivelock);
  EXPECT_EQ(sim.now(), Time::ms(1));  // wedged instant, not the deadline
}

TEST(RunGuardedTest, BoundedFanoutAtOneInstantIsNotALivelock) {
  Simulator sim;
  int ran = 0;
  for (int i = 0; i < 50; ++i) sim.schedule(Time::ms(1), [&] { ++ran; });
  RunGuard guard;
  guard.deadline = Time::ms(2);
  guard.max_events_per_instant = 100;
  EXPECT_EQ(sim.run_guarded(guard), RunOutcome::kDrained);
  EXPECT_EQ(ran, 50);
}

TEST(RunGuardedTest, StopFromCallbackWins) {
  Simulator sim;
  sim.schedule(Time::ms(1), [&] { sim.stop(); });
  sim.schedule(Time::ms(2), [] { FAIL() << "ran past stop()"; });
  RunGuard guard;
  guard.deadline = Time::ms(10);
  EXPECT_EQ(sim.run_guarded(guard), RunOutcome::kStopped);
  EXPECT_EQ(sim.now(), Time::ms(1));  // stop() does not advance to deadline
}

TEST(RunGuardedTest, PastDeadlineThrows) {
  Simulator sim;
  sim.schedule(Time::ms(5), [] {});
  sim.run();
  RunGuard guard;
  guard.deadline = Time::ms(2);
  EXPECT_THROW((void)sim.run_guarded(guard), std::logic_error);
}

}  // namespace
}  // namespace phantom::sim
