# Empty dependencies file for stats_series_test.
# This may be replaced when dependencies are built.
