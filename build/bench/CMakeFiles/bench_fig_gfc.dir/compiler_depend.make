# Empty compiler generated dependencies file for bench_fig_gfc.
# This may be replaced when dependencies are built.
