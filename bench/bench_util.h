// Shared scenario builders for the per-figure bench binaries.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "exp/factories.h"
#include "exp/probes.h"
#include "exp/report.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/series.h"
#include "tcp/phantom_policies.h"
#include "tcp/tcp_network.h"
#include "topo/abr_network.h"
#include "topo/workload.h"

namespace phantom::bench {

/// Single-bottleneck ABR scenario (the paper's base configuration):
/// n greedy sessions, one 150 Mb/s controlled link, ~8 us RTT.
struct AbrBottleneck {
  AbrBottleneck(sim::Simulator& sim, exp::Algorithm alg, int n,
                sim::Rate rate = sim::Rate::mbps(150))
      : net{sim, exp::make_factory(alg)} {
    const auto sw = net.add_switch("sw");
    topo::TrunkOptions opts;
    opts.rate = rate;
    dest = net.add_destination(sw, opts);
    for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest);
  }

  [[nodiscard]] atm::OutputPort& port() { return net.dest_port(dest); }

  topo::AbrNetwork net;
  topo::AbrNetwork::DestId dest = 0;
};

/// Result of one TCP single-bottleneck run.
struct TcpRun {
  std::vector<double> mbps;
  double total = 0.0;
  double jain = 0.0;
  double mean_queue = 0.0;
  std::size_t max_queue = 0;
};

/// The §4.3 TCP scenario: four greedy Reno flows with access delays
/// 3/6/12/24 ms through one 10 Mb/s bottleneck running `policy`
/// (nullptr = drop-tail). Goodput measured over [3 s, 12 s].
[[nodiscard]] TcpRun run_tcp_bottleneck(tcp::PolicyFactory policy,
                                        std::size_t queue_limit = 60);

}  // namespace phantom::bench
