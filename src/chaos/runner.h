// Executes one chaos trial: scenario + fault schedule under a watchdog,
// judged by an oracle set.
//
// A trial is a pure function of (spec, seed, plan): the simulator's
// budgets are event counts and sim time — never wall clock — so a
// verdict reproduces exactly, and a hung or exploding simulation
// becomes a structured kWatchdog failure instead of a wedged process.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "fault/fault_plan.h"

namespace phantom::chaos {

/// Deterministic run budgets. Defaults are sized for the stock
/// scenarios (a 600 ms bottleneck run executes ~1M events).
struct WatchdogLimits {
  std::uint64_t max_events = 50'000'000;
  std::uint64_t max_events_per_instant = 100'000;
  /// Forwarded to sim::RunGuard: crash-safe progress streaming for the
  /// isolation layer (0 = off). The hook observes only.
  std::uint64_t progress_every = 0;
  std::function<void(std::uint64_t)> on_progress;
};

struct OracleOptions {
  /// Reconvergence: the fair-share trace must re-enter its pre-fault
  /// band (target * (1 ± rel_tol)) and stay there.
  double rel_tol = 0.15;
  /// ...within this long after the last fault stops perturbing.
  sim::Time recovery_deadline = sim::Time::ms(250);
  sim::Time hold = sim::Time::ms(5);
  /// Differential: the settled share must be within this relative
  /// distance of the fault-free run's, and total goodput must not
  /// exceed the fault-free run's by more than delivered_slack (the
  /// goodput bound is waived for plans with misbehave events — a
  /// greedy source legitimately out-delivers a compliant baseline).
  double differential_tol = 0.15;
  double delivered_slack = 0.05;
  sim::Time monitor_period = sim::Time::ms(1);
};

struct TrialOptions {
  WatchdogLimits watchdog;
  OracleOptions oracle;
  /// Test/experiment hook, run after the topology is built and the
  /// fault plan applied, before start_all() — e.g. to schedule extra
  /// load, or an artificial livelock in the watchdog's own tests.
  std::function<void(sim::Simulator&, topo::AbrNetwork&)> prepare;
};

enum class Verdict {
  kPass,
  kWatchdog,      ///< event budget exhausted or livelock detected
  kInvariant,     ///< InvariantMonitor recorded a violation
  kNoReconverge,  ///< fair share never returned to the pre-fault band in time
  kDifferential,  ///< end state disagrees with the fault-free run
  kCrash,         ///< the simulation threw a C++ exception
  kProcessCrash,  ///< the trial process died (signal, abort, rlimit, timeout)
};

[[nodiscard]] const char* to_string(Verdict v);
/// Inverse of to_string; std::nullopt for an unknown name (used by the
/// supervisor's checkpoint loader).
[[nodiscard]] std::optional<Verdict> verdict_from_string(
    const std::string& name);

struct TrialResult {
  Verdict verdict = Verdict::kPass;
  std::string detail;  ///< first failing oracle's specifics, empty on pass
  std::uint64_t events = 0;
  std::size_t violations = 0;
  std::optional<sim::Time> reconverge_latency;  ///< from the first fault
  double settled_share_mbps = 0.0;  ///< mean share over the last 50 ms
  double peak_queue_cells = 0.0;

  // kProcessCrash specifics, filled by the isolation layer (chaos/isolate)
  // — an in-process run can never produce them.
  std::string crash_signal;  ///< "SIGSEGV", ...; empty if the child exited
  int exit_code = 0;         ///< child's exit code when it exited on its own
  std::string stderr_tail;   ///< last bytes of the child's stderr (ASan etc.)

  /// Flight recorder: the last structured events (JSONL lines, oldest
  /// first) the trial's obs::EventLog held when the verdict was
  /// reached. Empty on pass and in PHANTOM_DISABLE_OBS builds.
  std::vector<std::string> flight_recorder;

  [[nodiscard]] bool failed() const { return verdict != Verdict::kPass; }
};

/// Fault-free reference run for the differential oracle.
struct Baseline {
  double settled_share_bps = 0.0;
  std::uint64_t delivered_cells = 0;
};

/// Runs `spec` with no faults under the same watchdog. Throws
/// std::runtime_error if even the clean run trips the watchdog (the
/// scenario itself is broken — no trial verdict would mean anything).
[[nodiscard]] Baseline run_baseline(const ScenarioSpec& spec,
                                    std::uint64_t seed,
                                    const TrialOptions& opt = {});

/// Runs one trial and judges it. Oracles are checked in severity order:
/// watchdog, invariants, reconvergence, differential; the verdict is
/// the first that fails. The differential oracle is skipped when
/// `baseline` is null; the reconvergence oracle is skipped when the
/// plan is empty, when no pre-fault operating point is measurable, or
/// when the horizon leaves no room to observe the deadline.
[[nodiscard]] TrialResult run_trial(const ScenarioSpec& spec,
                                    std::uint64_t seed,
                                    const fault::FaultPlan& plan,
                                    const TrialOptions& opt = {},
                                    const Baseline* baseline = nullptr);

}  // namespace phantom::chaos
