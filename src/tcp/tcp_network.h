// Declarative builder for TCP simulation topologies — the packet twin
// of topo::AbrNetwork.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "tcp/packet_port.h"
#include "tcp/queue_policy.h"
#include "tcp/aggressive.h"
#include "tcp/reno.h"
#include "tcp/vegas.h"
#include "tcp/router.h"
#include "tcp/tcp_sink.h"

namespace phantom::tcp {

/// Builds the queue policy for a router port of the given capacity.
/// A null factory yields plain drop-tail.
using PolicyFactory =
    std::function<std::unique_ptr<QueuePolicy>(sim::Simulator&, sim::Rate)>;

struct TcpTrunkOptions {
  sim::Rate rate = sim::Rate::mbps(10);
  sim::Time delay = sim::Time::ms(1);
  std::size_t queue_limit = 64;  ///< packets (paper-era router buffers)
  PolicyFactory policy;          ///< null => drop-tail
  double loss = 0.0;             ///< random packet-loss probability
};

/// Demultiplexes packets arriving at a host that terminates several
/// flows, handing each to its per-flow TcpSink.
class SinkHost final : public PacketSink {
 public:
  void attach(int flow, TcpSink& sink) { sinks_.emplace(flow, &sink); }
  void receive_packet(Packet packet) override {
    const auto it = sinks_.find(packet.flow);
    if (it != sinks_.end()) it->second->receive_packet(packet);
  }

 private:
  std::unordered_map<int, TcpSink*> sinks_;
};

/// Which congestion-control flavour a flow's sender runs.
/// kAggressive is the misbehaving sender (tcp/aggressive.h): ignores
/// EFCI, Source Quench, and loss-as-signal.
enum class SenderKind { kReno, kTahoe, kVegas, kAggressive };

/// Per-flow construction options (see add_flow).
struct FlowOptions {
  RenoConfig config{};
  sim::Rate access_rate = sim::Rate::mbps(100);
  sim::Time access_delay = sim::Time::ms(1);
  TcpSinkOptions sink{};
  SenderKind kind = SenderKind::kReno;
  /// Vegas thresholds; `vegas.base` is ignored — `config` is used.
  VegasConfig vegas{};
};

/// A TCP network under construction / in operation. Handles the
/// forward/backward flow routing so ACKs and Source Quenches retrace
/// the data path.
class TcpNetwork {
 public:
  using RouterId = std::size_t;
  using TrunkId = std::size_t;
  using SinkNodeId = std::size_t;
  using FlowId = std::size_t;

  explicit TcpNetwork(sim::Simulator& sim) : sim_{&sim} {}

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  RouterId add_router(std::string name);

  /// Duplex trunk: a (policy-controlled) forward port at `from` plus an
  /// uncontrolled reverse port at `to` for ACK/SQ traffic.
  TrunkId add_trunk(RouterId from, RouterId to, TcpTrunkOptions options = {});

  /// Host terminating flows, attached at `at`. The port feeding it runs
  /// `options.policy` — in single-router configurations this is the
  /// bottleneck under study.
  SinkNodeId add_sink_node(RouterId at, TcpTrunkOptions options = {});

  /// Flow from a new sender at `ingress`, across `path`, ending at
  /// `sink`. The access link's rate/delay bound the source's burstiness
  /// and contribute (twice) to the flow's RTT.
  FlowId add_flow(RouterId ingress, const std::vector<TrunkId>& path,
                  SinkNodeId sink, FlowOptions options);

  /// Convenience overload: Reno sender, positional knobs.
  FlowId add_flow(RouterId ingress, const std::vector<TrunkId>& path,
                  SinkNodeId sink, RenoConfig config = {},
                  sim::Rate access_rate = sim::Rate::mbps(100),
                  sim::Time access_delay = sim::Time::ms(1),
                  TcpSinkOptions sink_options = {});

  /// Starts flow i at `first + i * stagger`.
  void start_all(sim::Time first, sim::Time stagger);

  [[nodiscard]] TcpSender& source(FlowId f) { return *sources_.at(f); }
  [[nodiscard]] const TcpSender& source(FlowId f) const {
    return *sources_.at(f);
  }
  [[nodiscard]] TcpSink& sink(FlowId f) { return *sinks_.at(f); }
  [[nodiscard]] Router& router(RouterId r) { return *routers_.at(r); }
  [[nodiscard]] PacketPort& trunk_port(TrunkId t);
  [[nodiscard]] PacketPort& sink_port(SinkNodeId s);
  [[nodiscard]] std::size_t num_flows() const { return sources_.size(); }

  /// In-order bytes delivered for a flow (goodput counter).
  [[nodiscard]] std::int64_t delivered_bytes(FlowId f) const {
    return sinks_.at(f)->delivered_bytes();
  }

 private:
  struct Trunk {
    RouterId from;
    RouterId to;
    std::size_t forward_port;
    std::size_t reverse_port;
  };
  struct SinkNode {
    RouterId at;
    std::size_t port;
    std::unique_ptr<SinkHost> host;
    sim::Time delay;  ///< host <-> router propagation delay
  };

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<Trunk> trunks_;
  std::vector<SinkNode> sink_nodes_;
  std::vector<std::unique_ptr<TcpSender>> sources_;
  std::vector<std::unique_ptr<TcpSink>> sinks_;
  // Access ports: source-side serialization, owned here.
  std::vector<std::unique_ptr<PacketPort>> access_ports_;
};

}  // namespace phantom::tcp
