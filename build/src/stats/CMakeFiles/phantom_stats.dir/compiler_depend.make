# Empty compiler generated dependencies file for phantom_stats.
# This may be replaced when dependencies are built.
