// Reno window dynamics, driven by hand-crafted ACK streams.
#include "tcp/reno.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

struct RenoFixture {
  Simulator sim;
  std::vector<Packet> sent;
  RenoConfig config;
  std::unique_ptr<RenoSource> src;

  explicit RenoFixture(RenoConfig cfg = {}) : config{cfg} {
    src = std::make_unique<RenoSource>(
        sim, 1, config, [this](Packet p) { sent.push_back(p); });
  }

  void start() {
    src->start(Time::zero());
    sim.run_until(Time::us(1));
  }

  /// Delivers a cumulative ACK (echoing ts for a clean RTT sample).
  void ack(std::int64_t ack_no, Time echo = Time::zero(), bool efci = false) {
    Packet a = Packet::make_ack(1, ack_no);
    a.timestamp = echo.is_zero() ? sim.now() : echo;
    a.ack_efci = efci;
    src->receive_packet(a);
  }
};

TEST(RenoTest, StartsInSlowStartWithOneSegment) {
  RenoFixture f;
  f.start();
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].seq, 0);
  EXPECT_EQ(f.sent[0].payload, 512);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 512.0);
}

TEST(RenoTest, SlowStartDoublesPerRtt) {
  RenoFixture f;
  f.start();
  // ACK the first segment: cwnd 1 -> 2 mss, two segments go out.
  f.ack(512);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 1024.0);
  EXPECT_EQ(f.sent.size(), 3u);
  // ACK both: cwnd -> 4 mss.
  f.ack(1024);
  f.ack(1536);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 2048.0);
}

TEST(RenoTest, CongestionAvoidanceGrowsLinearly) {
  RenoConfig cfg;
  cfg.initial_ssthresh = 1024;  // leave slow start quickly
  RenoFixture f{cfg};
  f.start();
  f.ack(512);   // cwnd = 1024 = ssthresh
  const double before = f.src->cwnd_bytes();
  f.ack(1024);  // now in congestion avoidance: += mss*mss/cwnd
  EXPECT_NEAR(f.src->cwnd_bytes() - before, 512.0 * 512.0 / before, 1.0);
}

TEST(RenoTest, ThreeDupAcksTriggerFastRetransmit) {
  RenoFixture f;
  f.start();
  f.ack(512);
  f.ack(1024);  // cwnd 4 mss; flight: 1024..3072
  f.ack(1536);
  const auto sent_before = f.sent.size();
  f.ack(1536);  // dup 1
  f.ack(1536);  // dup 2
  EXPECT_EQ(f.src->fast_retransmits(), 0u);
  f.ack(1536);  // dup 3 -> fast retransmit
  EXPECT_EQ(f.src->fast_retransmits(), 1u);
  EXPECT_TRUE(f.src->in_fast_recovery());
  ASSERT_GT(f.sent.size(), sent_before);
  EXPECT_EQ(f.sent[sent_before].seq, 1536);  // retransmitted snd_una first
  // ssthresh = flight/2; cwnd = ssthresh + 3 mss.
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(),
                   static_cast<double>(f.src->ssthresh_bytes()) + 3 * 512);
}

TEST(RenoTest, NewAckExitsFastRecoveryAndDeflates) {
  RenoFixture f;
  f.start();
  f.ack(512);
  f.ack(1024);
  f.ack(1536);
  for (int i = 0; i < 3; ++i) f.ack(1536);
  ASSERT_TRUE(f.src->in_fast_recovery());
  f.ack(3072);  // everything repaired
  EXPECT_FALSE(f.src->in_fast_recovery());
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(),
                   static_cast<double>(f.src->ssthresh_bytes()));
}

TEST(RenoTest, DupAcksInflateWindowDuringRecovery) {
  RenoFixture f;
  f.start();
  f.ack(512);
  f.ack(1024);
  f.ack(1536);
  for (int i = 0; i < 3; ++i) f.ack(1536);
  const double during = f.src->cwnd_bytes();
  f.ack(1536);  // 4th dup: inflation
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), during + 512);
}

TEST(RenoTest, TimeoutCollapsesToOneSegmentAndRetransmits) {
  RenoFixture f;
  f.start();
  f.ack(512);
  f.ack(1024);  // some window built up
  const auto before = f.sent.size();
  // No more ACKs: wait for the RTO to fire.
  f.sim.run_until(Time::sec(3));
  EXPECT_GE(f.src->timeouts(), 1u);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 512.0);
  ASSERT_GT(f.sent.size(), before);
  EXPECT_EQ(f.sent[before].seq, 1024);  // go-back-N from snd_una
}

TEST(RenoTest, TimeoutBacksOffExponentially) {
  RenoFixture f;
  f.start();
  f.sim.run_until(Time::sec(10));
  // Repeated timeouts without progress: rto grows (Karn).
  EXPECT_GE(f.src->timeouts(), 3u);
  EXPECT_GT(f.src->rto(), f.config.rto_initial);
}

TEST(RenoTest, RttSampleSeedsSrttAndRto) {
  RenoFixture f;
  f.start();
  f.sim.run_until(Time::ms(100));
  f.ack(512, /*echo=*/Time::ms(60));  // RTT sample = 40 ms
  EXPECT_EQ(f.src->smoothed_rtt(), Time::ms(40));
  // rto = srtt + 4*rttvar = 40 + 4*20 = 120 ms -> clamped to >= 200.
  EXPECT_EQ(f.src->rto(), Time::ms(200));
}

TEST(RenoTest, EfciEchoSuppressesGrowth) {
  RenoFixture f;
  f.start();
  f.ack(512, Time::zero(), /*efci=*/true);
  // Window must not have grown.
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 512.0);
  // But data keeps flowing (the ACK still slides the window).
  EXPECT_EQ(f.sent.size(), 2u);
}

TEST(RenoTest, EfciReactionCanBeDisabled) {
  RenoConfig cfg;
  cfg.react_to_efci = false;
  RenoFixture f{cfg};
  f.start();
  f.ack(512, Time::zero(), /*efci=*/true);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 1024.0);
}

TEST(RenoTest, SourceQuenchCollapsesWindow) {
  RenoFixture f;
  f.start();
  for (int i = 1; i <= 6; ++i) f.ack(512 * i);
  ASSERT_GT(f.src->cwnd_bytes(), 2048.0);
  f.src->receive_packet(Packet::source_quench(1));
  EXPECT_EQ(f.src->quenches_received(), 1u);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 512.0);
}

TEST(RenoTest, RepeatedQuenchesWithinRttCollapseOnlyOnce) {
  RenoFixture f;
  f.start();
  for (int i = 1; i <= 6; ++i) f.ack(512 * i);
  f.src->receive_packet(Packet::source_quench(1));
  // Window regrows a little...
  f.ack(512 * 7);
  const double after_growth = f.src->cwnd_bytes();
  ASSERT_GT(after_growth, 512.0);
  // ...and an immediate second quench is ignored.
  f.src->receive_packet(Packet::source_quench(1));
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), after_growth);
}

TEST(RenoTest, CrTracksAckedPayloadRate) {
  RenoFixture f;
  f.start();
  // Ack 10 segments within the first CR interval (10 ms).
  f.sim.run_until(Time::ms(5));
  for (int i = 1; i <= 10; ++i) f.ack(512 * i);
  f.sim.run_until(Time::ms(11));  // CR tick at 10 ms
  // 5120 bytes / 10 ms = 4.096 Mb/s.
  EXPECT_NEAR(f.src->current_rate().mbits_per_sec(), 4.096, 1e-6);
  // Stamped into subsequent packets.
  f.ack(512 * 11);
  EXPECT_NEAR(f.sent.back().cr.mbits_per_sec(), 4.096, 1e-6);
}

TEST(RenoTest, ConfigValidation) {
  Simulator sim;
  RenoConfig bad;
  bad.mss = 0;
  EXPECT_THROW((RenoSource{sim, 1, bad, [](Packet) {}}),
               std::invalid_argument);
  bad = {};
  bad.initial_ssthresh = 512;
  EXPECT_THROW((RenoSource{sim, 1, bad, [](Packet) {}}),
               std::invalid_argument);
  EXPECT_THROW((RenoSource{sim, 1, RenoConfig{}, nullptr}),
               std::invalid_argument);
}

TEST(RenoTest, CwndTraceRecordsSawtooth) {
  RenoFixture f;
  f.start();
  f.ack(512);
  f.ack(1024);
  EXPECT_GE(f.src->cwnd_trace().size(), 3u);
}

}  // namespace
}  // namespace phantom::tcp
