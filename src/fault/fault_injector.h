// Executes a FaultPlan against a running ABR network.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "atm/link.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom::fault {

/// One fault transition that actually happened, for the experiment
/// report (faults are experiment inputs; the report records them next to
/// the measured outputs so a run is self-describing).
struct AppliedFault {
  sim::Time time;
  std::string description;
};

/// Resolves a FaultPlan's targets against a topo::AbrNetwork and
/// schedules every fault transition on the simulator clock.
///
/// Target semantics:
///  * trunk  — both directions of the duplex trunk (outage/burst/RM
///             faults sever data *and* the returning RM feedback);
///             restart hits the forward port's controller.
///  * dest   — the link feeding the destination endpoint; restart hits
///             the destination port's controller.
///  * session — ABR source churn (leave deactivates; join re-activates,
///             or starts a source that was never started).
///
/// The injector must outlive the run: the scheduled events call back
/// into it to record the applied-fault log.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, topo::AbrNetwork& net)
      : sim_{&sim}, net_{&net} {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event in `plan`. Validates all targets up front and
  /// throws std::out_of_range before scheduling anything if one is bad.
  /// Events in the simulator's past throw std::logic_error (the
  /// hardened scheduler refuses past-time scheduling).
  void apply(const FaultPlan& plan);

  /// Chronological log of the transitions that have fired so far.
  [[nodiscard]] const std::vector<AppliedFault>& log() const { return log_; }

 private:
  /// Link-state blocks a link-level fault acts on (1 for dest targets,
  /// 2 for trunks — forward + reverse).
  [[nodiscard]] std::vector<std::shared_ptr<atm::LinkState>> links_of(
      FaultTarget t) const;
  [[nodiscard]] atm::PortController& controller_of(FaultTarget t) const;
  void validate(const FaultEvent& e) const;
  void schedule_event(const FaultEvent& e);
  void record(const std::string& description);

  sim::Simulator* sim_;
  topo::AbrNetwork* net_;
  std::vector<AppliedFault> log_;
};

}  // namespace phantom::fault
