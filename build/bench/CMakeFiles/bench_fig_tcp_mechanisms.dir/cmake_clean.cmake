file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_tcp_mechanisms.dir/bench_fig_tcp_mechanisms.cc.o"
  "CMakeFiles/bench_fig_tcp_mechanisms.dir/bench_fig_tcp_mechanisms.cc.o.d"
  "bench_fig_tcp_mechanisms"
  "bench_fig_tcp_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_tcp_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
