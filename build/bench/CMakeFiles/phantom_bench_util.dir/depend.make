# Empty dependencies file for phantom_bench_util.
# This may be replaced when dependencies are built.
