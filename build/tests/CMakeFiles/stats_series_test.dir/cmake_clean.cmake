file(REMOVE_RECURSE
  "CMakeFiles/stats_series_test.dir/stats_series_test.cc.o"
  "CMakeFiles/stats_series_test.dir/stats_series_test.cc.o.d"
  "stats_series_test"
  "stats_series_test.pdb"
  "stats_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
