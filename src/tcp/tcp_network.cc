#include "tcp/tcp_network.h"

#include <stdexcept>

namespace phantom::tcp {

namespace {
constexpr std::size_t kPlumbingQueueLimit = 100'000;  // never the bottleneck
}

TcpNetwork::RouterId TcpNetwork::add_router(std::string name) {
  routers_.push_back(std::make_unique<Router>(*sim_, std::move(name)));
  return routers_.size() - 1;
}

TcpNetwork::TrunkId TcpNetwork::add_trunk(RouterId from, RouterId to,
                                          TcpTrunkOptions options) {
  if (from >= routers_.size() || to >= routers_.size() || from == to) {
    throw std::out_of_range{"add_trunk: bad router ids"};
  }
  Trunk t;
  t.from = from;
  t.to = to;
  auto policy = options.policy ? options.policy(*sim_, options.rate)
                               : std::unique_ptr<QueuePolicy>{};
  t.forward_port = routers_[from]->add_port(
      options.rate, options.queue_limit,
      PacketLink{*sim_, options.delay, *routers_[to], options.loss},
      std::move(policy));
  t.reverse_port = routers_[to]->add_port(
      options.rate, kPlumbingQueueLimit,
      PacketLink{*sim_, options.delay, *routers_[from], options.loss},
      nullptr);
  trunks_.push_back(t);
  return trunks_.size() - 1;
}

TcpNetwork::SinkNodeId TcpNetwork::add_sink_node(RouterId at,
                                                 TcpTrunkOptions options) {
  if (at >= routers_.size()) {
    throw std::out_of_range{"add_sink_node: bad router id"};
  }
  SinkNode node;
  node.at = at;
  node.host = std::make_unique<SinkHost>();
  node.delay = options.delay;
  auto policy = options.policy ? options.policy(*sim_, options.rate)
                               : std::unique_ptr<QueuePolicy>{};
  node.port = routers_[at]->add_port(
      options.rate, options.queue_limit,
      PacketLink{*sim_, options.delay, *node.host, options.loss},
      std::move(policy));
  sink_nodes_.push_back(std::move(node));
  return sink_nodes_.size() - 1;
}

TcpNetwork::FlowId TcpNetwork::add_flow(RouterId ingress,
                                        const std::vector<TrunkId>& path,
                                        SinkNodeId sink_id, RenoConfig config,
                                        sim::Rate access_rate,
                                        sim::Time access_delay,
                                        TcpSinkOptions sink_options) {
  FlowOptions options;
  options.config = config;
  options.access_rate = access_rate;
  options.access_delay = access_delay;
  options.sink = sink_options;
  return add_flow(ingress, path, sink_id, options);
}

TcpNetwork::FlowId TcpNetwork::add_flow(RouterId ingress,
                                        const std::vector<TrunkId>& path,
                                        SinkNodeId sink_id,
                                        FlowOptions options) {
  const RenoConfig& config = options.config;
  const sim::Rate access_rate = options.access_rate;
  const sim::Time access_delay = options.access_delay;
  const TcpSinkOptions sink_options = options.sink;
  if (ingress >= routers_.size()) {
    throw std::out_of_range{"add_flow: bad ingress router"};
  }
  if (sink_id >= sink_nodes_.size()) {
    throw std::out_of_range{"add_flow: bad sink node"};
  }
  RouterId cursor = ingress;
  for (const TrunkId t : path) {
    if (t >= trunks_.size() || trunks_[t].from != cursor) {
      throw std::invalid_argument{"add_flow: path is not connected"};
    }
    cursor = trunks_[t].to;
  }
  SinkNode& node = sink_nodes_[sink_id];
  if (node.at != cursor) {
    throw std::invalid_argument{
        "add_flow: sink node does not hang off the path's last router"};
  }

  const int flow = static_cast<int>(sources_.size());

  // Source-side access port: serializes the window's bursts onto the
  // access link before they reach the ingress router.
  access_ports_.push_back(std::make_unique<PacketPort>(
      *sim_, access_rate, kPlumbingQueueLimit,
      PacketLink{*sim_, access_delay, *routers_[ingress]}, nullptr));
  PacketPort* access = access_ports_.back().get();

  TcpSender::Emitter emitter = [access](Packet p) { access->send(p); };
  std::unique_ptr<TcpSender> source;
  switch (options.kind) {
    case SenderKind::kReno:
      source = std::make_unique<RenoSource>(*sim_, flow, config,
                                            std::move(emitter));
      break;
    case SenderKind::kTahoe:
      source = std::make_unique<TahoeSource>(*sim_, flow, config,
                                             std::move(emitter));
      break;
    case SenderKind::kAggressive:
      source = std::make_unique<AggressiveSource>(*sim_, flow, config,
                                                  std::move(emitter));
      break;
    case SenderKind::kVegas: {
      VegasConfig vcfg = options.vegas;
      vcfg.base = config;
      source = std::make_unique<VegasSource>(*sim_, flow, vcfg,
                                             std::move(emitter));
      break;
    }
  }

  // Backward port at the ingress router delivering ACKs / quenches to
  // the source.
  const std::size_t to_source_port = routers_[ingress]->add_port(
      access_rate, kPlumbingQueueLimit,
      PacketLink{*sim_, access_delay, *source}, nullptr);

  // Per-router routes, walking the path.
  std::size_t backward = to_source_port;
  cursor = ingress;
  for (const TrunkId t : path) {
    routers_[cursor]->route_flow(flow, trunks_[t].forward_port, backward);
    backward = trunks_[t].reverse_port;
    cursor = trunks_[t].to;
  }
  routers_[cursor]->route_flow(flow, node.port, backward);

  // Receiver: ACKs re-enter the terminating router and follow the
  // backward route.
  Router* terminus = routers_[cursor].get();
  const sim::Time return_delay = node.delay;
  auto sink = std::make_unique<TcpSink>(
      *sim_, flow,
      [this, terminus, return_delay](Packet ack) {
        PacketLink{*sim_, return_delay, *terminus}.deliver(ack);
      },
      sink_options);
  node.host->attach(flow, *sink);

  sources_.push_back(std::move(source));
  sinks_.push_back(std::move(sink));
  return static_cast<FlowId>(flow);
}

void TcpNetwork::start_all(sim::Time first, sim::Time stagger) {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->start(first + stagger * static_cast<std::int64_t>(i));
  }
}

PacketPort& TcpNetwork::trunk_port(TrunkId t) {
  const Trunk& trunk = trunks_.at(t);
  return routers_[trunk.from]->port(trunk.forward_port);
}

PacketPort& TcpNetwork::sink_port(SinkNodeId s) {
  const SinkNode& node = sink_nodes_.at(s);
  return routers_[node.at]->port(node.port);
}

}  // namespace phantom::tcp
