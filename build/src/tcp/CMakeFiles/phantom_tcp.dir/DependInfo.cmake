
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/packet_port.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/packet_port.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/packet_port.cc.o.d"
  "/root/repo/src/tcp/phantom_policies.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/phantom_policies.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/phantom_policies.cc.o.d"
  "/root/repo/src/tcp/red_policy.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/red_policy.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/red_policy.cc.o.d"
  "/root/repo/src/tcp/router.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/router.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/router.cc.o.d"
  "/root/repo/src/tcp/tcp_network.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/tcp_network.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/tcp_network.cc.o.d"
  "/root/repo/src/tcp/tcp_sender.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/tcp_sender.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/tcp_sender.cc.o.d"
  "/root/repo/src/tcp/tcp_sink.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/tcp_sink.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/tcp_sink.cc.o.d"
  "/root/repo/src/tcp/vegas.cc" "src/tcp/CMakeFiles/phantom_tcp.dir/vegas.cc.o" "gcc" "src/tcp/CMakeFiles/phantom_tcp.dir/vegas.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/phantom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/phantom_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/phantom_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
