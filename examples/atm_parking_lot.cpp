// Parking-lot example: Phantom achieves max-min fairness across hops.
//
// Three switches in a row. One "long" session crosses every hop; each
// hop also carries one single-hop local session. A naive scheme starves
// the long session (it loses at every hop — the "beat down" problem);
// Phantom gives it exactly the max-min share predicted by progressive
// filling with one phantom session per link.
//
//   src_long --> [s0] ==t01==> [s1] ==t12==> [s2] --> dest
//   src_l1   ----^  (exit s1)   ^---- src_l2 (exit s2)   ^---- src_l3
#include <cstdio>

#include "exp/factories.h"
#include "exp/probes.h"
#include "exp/report.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

int main() {
  using namespace phantom;
  using sim::Rate;
  using sim::Time;

  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};

  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, {});
  const auto d_end = net.add_destination(s2, {});

  topo::TrunkOptions stub;  // uncontrolled exits for the local sessions
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  const auto d2 = net.add_destination(s2, stub);

  net.add_session(s0, {t01, t12}, d_end);  // 0: long session
  net.add_session(s0, {t01}, d1);          // 1: local on hop 1
  net.add_session(s1, {t12}, d2);          // 2: local on hop 2
  net.add_session(s2, {}, d_end);          // 3: local on the last hop

  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  probe.mark();
  sim.run_until(Time::ms(600));

  exp::print_header("parking-lot",
                    "long session vs one local per hop, 3 x 150 Mb/s links");
  const auto measured = probe.rates_mbps();
  const auto ideal = net.reference_rates(/*phantom_per_link=*/true, 0.95);
  const char* kNames[] = {"long (3 hops)", "local hop 1", "local hop 2",
                          "local hop 3"};
  exp::Table table{{"session", "measured (Mb/s)", "max-min + phantom (Mb/s)"}};
  std::vector<double> ideal_mbps;
  for (std::size_t s = 0; s < measured.size(); ++s) {
    ideal_mbps.push_back(ideal[s].mbits_per_sec());
    table.add_row({kNames[s], exp::Table::num(measured[s]),
                   exp::Table::num(ideal_mbps.back())});
  }
  table.print();
  std::printf("\ncloseness to reference: %.4f (1.0 = exact)\n",
              stats::maxmin_closeness(measured, ideal_mbps));
  std::printf("long-session share vs local: %.2f (no beat-down when ~1)\n",
              measured[0] / measured[1]);
  return 0;
}
