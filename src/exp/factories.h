// Algorithm selection: build any of the four controllers behind the
// common PortController interface.
#pragma once

#include <optional>
#include <string>

#include "baselines/aprc.h"
#include "baselines/capc.h"
#include "baselines/eprca.h"
#include "baselines/erica.h"
#include "core/phantom_config.h"
#include "core/phantom_controller.h"
#include "topo/abr_network.h"

namespace phantom::exp {

enum class Algorithm { kPhantom, kEprca, kAprc, kCapc, kErica };

[[nodiscard]] std::string to_string(Algorithm a);

/// Case-insensitive inverse of to_string (CLI flag parsing); nullopt for
/// unknown names.
[[nodiscard]] std::optional<Algorithm> algorithm_from_string(
    const std::string& name);

/// Factory with each algorithm's default (recommended) parameters.
[[nodiscard]] topo::ControllerFactory make_factory(Algorithm a);

/// Phantom with explicit parameters (ablations, TCP-threshold sweeps).
[[nodiscard]] topo::ControllerFactory make_phantom_factory(
    core::PhantomConfig config);

}  // namespace phantom::exp
