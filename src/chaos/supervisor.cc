#include "chaos/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "chaos/json.h"

namespace phantom::chaos {
namespace {

volatile std::sig_atomic_t g_sigint = 0;

void handle_sigint(int) { g_sigint = g_sigint + 1; }

/// Installs the drain handler for the duration of a supervised run.
/// sa_flags deliberately omits SA_RESTART so a Ctrl-C interrupts
/// poll() immediately.
class SigintScope {
 public:
  SigintScope() {
    g_sigint = 0;
    struct sigaction sa = {};
    sa.sa_handler = handle_sigint;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, &old_);
  }
  ~SigintScope() { ::sigaction(SIGINT, &old_, nullptr); }
  SigintScope(const SigintScope&) = delete;
  SigintScope& operator=(const SigintScope&) = delete;

 private:
  struct sigaction old_ = {};
};

/// The serial early-stop rule: walking the decided prefix in index
/// order, the trial at which the max_failures-th failure lands is the
/// last trial a serial search would have run. std::nullopt while the
/// prefix is still undecided or never accumulates enough failures.
[[nodiscard]] std::optional<int> failure_cutoff(
    const std::vector<std::optional<TrialResult>>& results,
    int max_failures) {
  int fails = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i]) return std::nullopt;
    if (results[i]->failed() && ++fails >= max_failures) {
      return static_cast<int>(i);
    }
  }
  return std::nullopt;
}

[[nodiscard]] std::string checkpoint_header(const ScenarioSpec& spec,
                                            std::uint64_t seed,
                                            std::size_t trials) {
  std::string out = "{\"phantom_chaos_checkpoint\": 1";
  out += ", \"scenario\": \"" + json_escape(to_string(spec.kind)) + "\"";
  out += ", \"algorithm\": \"" + json_escape(exp::to_string(spec.algorithm)) +
         "\"";
  out += ", \"sessions\": " + std::to_string(spec.sessions);
  out += ", \"rate_mbps\": " + fmt_double_exact(spec.rate_mbps);
  out += ", \"horizon_ns\": " + std::to_string(spec.horizon.nanoseconds());
  out += ", \"seed\": " + std::to_string(seed);
  out += ", \"trials\": " + std::to_string(trials);
  // Only emitted when armed, so checkpoints from overload-free searches
  // stay byte-identical to those written before the field existed.
  if (spec.overload) out += ", \"overload\": true";
  out += "}";
  return out;
}

/// Incremental JSONL checkpoint: header line describing the search,
/// then one row per completed trial, flushed as they land. Loading
/// validates the header and each row's plan spec against the current
/// search — a checkpoint from a different spec/seed is an error, not a
/// silent partial resume. A torn final line (crash mid-append) is
/// tolerated and overwritten by re-running that trial.
class Checkpoint {
 public:
  void open(const std::string& path, const ScenarioSpec& spec,
            std::uint64_t seed, const std::vector<fault::FaultPlan>& plans,
            std::vector<std::optional<TrialResult>>& results, int& resumed) {
    const std::string header = checkpoint_header(spec, seed, plans.size());
    std::ifstream in{path};
    bool resuming = false;
    bool torn = false;
    std::streamoff last_good_end = 0;
    if (in) {
      std::string line;
      if (std::getline(in, line) && !line.empty()) {
        if (line != header) {
          throw std::runtime_error{
              "chaos checkpoint " + path +
              " was written by a different search;\n  file:    " + line +
              "\n  current: " + header};
        }
        resuming = true;
        last_good_end = in.tellg();
        int lineno = 1;
        while (std::getline(in, line)) {
          ++lineno;
          if (line.empty()) continue;
          std::string plan_spec;
          const auto row = parse_checkpoint_row(line, &plan_spec);
          if (!row) {
            // Torn write (crash mid-append) — drop the row, warn so the
            // re-run is visible, and keep resuming the rest.
            std::fprintf(stderr,
                         "chaos checkpoint %s: dropping unparseable row at "
                         "line %d (torn write?); its trial will re-run\n",
                         path.c_str(), lineno);
            torn = true;
            continue;
          }
          const auto [trial, result] = *row;
          if (trial < 0 || trial >= static_cast<int>(plans.size())) {
            throw std::runtime_error{
                "chaos checkpoint " + path + ": line " +
                std::to_string(lineno) + " names trial " +
                std::to_string(trial) + " of " +
                std::to_string(plans.size())};
          }
          if (plan_spec != plans[trial].to_spec()) {
            throw std::runtime_error{
                "chaos checkpoint " + path + ": trial " +
                std::to_string(trial) +
                " was generated from a different plan (stale seed?)"};
          }
          if (!results[trial]) ++resumed;
          results[trial] = result;
          // tellg() is -1 once EOF is hit (a final row with no newline);
          // keep the previous mark — resize may drop that row, but its
          // trial simply re-runs.
          if (const std::streamoff pos = in.tellg(); pos != -1) {
            last_good_end = pos;
          }
        }
      }
    }
    in.close();
    if (torn) {
      // Cut the torn tail off before appending: writing after a partial
      // row would fuse the re-run's row onto it, turning one lost trial
      // into two on the next resume. Trailing garbage after the last
      // parseable row goes with it.
      std::filesystem::resize_file(
          path, static_cast<std::uintmax_t>(last_good_end));
    }
    // A crash exactly between a row and its newline leaves a parseable
    // but unterminated last line; appending needs a fresh line either
    // way.
    bool unterminated = false;
    if (resuming) {
      std::ifstream tail{path, std::ios::binary};
      tail.seekg(0, std::ios::end);
      if (tail.tellg() > 0) {
        tail.seekg(-1, std::ios::end);
        char last = '\n';
        tail.get(last);
        unterminated = last != '\n';
      }
    }
    out_.open(path, resuming ? std::ios::app : std::ios::trunc);
    if (!out_) {
      throw std::runtime_error{"chaos checkpoint: cannot write " + path};
    }
    if (!resuming) out_ << header << "\n" << std::flush;
    if (unterminated) out_ << "\n" << std::flush;
  }

  void append(int trial, const std::string& plan_spec, const TrialResult& r) {
    if (!out_.is_open()) return;
    out_ << checkpoint_row(trial, plan_spec, r) << "\n" << std::flush;
  }

 private:
  std::ofstream out_;
};

}  // namespace

std::string checkpoint_row(int trial, const std::string& plan_spec,
                           const TrialResult& r) {
  std::string out = "{\"trial\": " + std::to_string(trial);
  out += ", \"plan\": \"" + json_escape(plan_spec) + "\"";
  out += ", \"verdict\": \"" + std::string{to_string(r.verdict)} + "\"";
  out += ", \"detail\": \"" + json_escape(r.detail) + "\"";
  out += ", \"events\": " + std::to_string(r.events);
  out += ", \"violations\": " + std::to_string(r.violations);
  out += ", \"reconverge_ns\": " +
         (r.reconverge_latency
              ? std::to_string(r.reconverge_latency->nanoseconds())
              : std::string{"null"});
  out += ", \"settled_share_mbps\": " + fmt_double_exact(r.settled_share_mbps);
  out += ", \"peak_queue_cells\": " + fmt_double_exact(r.peak_queue_cells);
  out += ", \"crash_signal\": \"" + json_escape(r.crash_signal) + "\"";
  out += ", \"exit_code\": " + std::to_string(r.exit_code);
  out += ", \"stderr_tail\": \"" + json_escape(r.stderr_tail) + "\"";
  // Last field, so parse_checkpoint_row's ordered scan reads it after
  // everything else (and rows from older checkpoints simply lack it).
  out += ", \"flight_recorder\": [";
  for (std::size_t i = 0; i < r.flight_recorder.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(r.flight_recorder[i]) + "\"";
  }
  out += "]}";
  return out;
}

std::optional<std::pair<int, TrialResult>> parse_checkpoint_row(
    const std::string& line, std::string* plan_spec) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  JsonLineReader reader{line};
  const auto trial = reader.find_int("trial");
  const auto plan = reader.find_string("plan");
  const auto verdict_name = reader.find_string("verdict");
  const auto detail = reader.find_string("detail");
  const auto events = reader.find_int("events");
  const auto violations = reader.find_int("violations");
  const auto reconverge = reader.find_token("reconverge_ns");
  const auto settled = reader.find_double("settled_share_mbps");
  const auto peak = reader.find_double("peak_queue_cells");
  const auto crash_signal = reader.find_string("crash_signal");
  const auto exit_code = reader.find_int("exit_code");
  const auto stderr_tail = reader.find_string("stderr_tail");
  if (!trial || !plan || !verdict_name || !detail || !events || !violations ||
      !reconverge || !settled || !peak || !crash_signal || !exit_code ||
      !stderr_tail) {
    return std::nullopt;
  }
  const auto verdict = verdict_from_string(*verdict_name);
  if (!verdict) return std::nullopt;

  TrialResult r;
  r.verdict = *verdict;
  r.detail = *detail;
  r.events = static_cast<std::uint64_t>(*events);
  r.violations = static_cast<std::size_t>(*violations);
  if (*reconverge != "null") {
    char* end = nullptr;
    const long long ns = std::strtoll(reconverge->c_str(), &end, 10);
    if (end != reconverge->c_str() + reconverge->size()) return std::nullopt;
    r.reconverge_latency = sim::Time::ns(ns);
  }
  r.settled_share_mbps = *settled;
  r.peak_queue_cells = *peak;
  r.crash_signal = *crash_signal;
  r.exit_code = static_cast<int>(*exit_code);
  r.stderr_tail = *stderr_tail;
  // Optional (rows written before the flight recorder existed lack it).
  if (auto flight = reader.find_string_array("flight_recorder")) {
    r.flight_recorder = std::move(*flight);
  }
  if (plan_spec != nullptr) *plan_spec = *plan;
  return std::make_pair(static_cast<int>(*trial), r);
}

Supervisor::Supervisor(ScenarioSpec spec, std::uint64_t seed,
                       TrialOptions trial, std::optional<Baseline> baseline,
                       SupervisorOptions opt)
    : spec_{std::move(spec)},
      seed_{seed},
      trial_{std::move(trial)},
      baseline_{std::move(baseline)},
      opt_{std::move(opt)} {}

SupervisedOutcome Supervisor::run(const std::vector<fault::FaultPlan>& plans,
                                  int max_failures) {
  const int n = static_cast<int>(plans.size());
  SupervisedOutcome out;
  out.results.resize(plans.size());

  Checkpoint ckpt;
  if (!opt_.checkpoint_path.empty()) {
    ckpt.open(opt_.checkpoint_path, spec_, seed_, plans, out.results,
              out.resumed);
  }

  const int jobs = std::clamp(opt_.jobs, 1, 128);

  struct InFlight {
    int trial = 0;
    std::unique_ptr<IsolatedTrial> child;
    bool cancelled = false;  ///< killed for cutoff/abort — result discarded
  };
  std::vector<InFlight> inflight;

  const auto spawn_with_retry = [&](int trial) {
    const auto body =
        trial_body(spec_, seed_, plans[trial], trial_, baseline_);
    std::string err;
    int backoff_ms = std::max(1, opt_.retry_backoff_ms);
    for (int attempt = 0; attempt <= opt_.max_retries; ++attempt) {
      if (attempt > 0) {
        ::usleep(static_cast<useconds_t>(backoff_ms) * 1000);
        backoff_ms *= 2;
      }
      if (auto child = IsolatedTrial::spawn(body, opt_.isolate, err)) {
        return child;
      }
    }
    throw std::runtime_error{"chaos supervisor: cannot start trial " +
                             std::to_string(trial) + " after " +
                             std::to_string(opt_.max_retries + 1) +
                             " attempts (" + err + ")"};
  };

  SigintScope sigint_scope;
  int next = 0;

  while (true) {
    const auto cut = failure_cutoff(out.results, max_failures);
    while (g_sigint == 0 && static_cast<int>(inflight.size()) < jobs &&
           next < n && (!cut || next <= *cut)) {
      if (out.results[next]) {  // resumed from the checkpoint
        ++next;
        continue;
      }
      InFlight f;
      f.trial = next;
      f.child = spawn_with_retry(next);
      inflight.push_back(std::move(f));
      ++next;
    }
    if (inflight.empty()) break;  // nothing running and nothing launchable

    // Wait for activity: any pipe readable, the nearest kill deadline,
    // or EINTR from Ctrl-C.
    std::vector<pollfd> fds;
    fds.reserve(inflight.size() * 2);
    for (const auto& f : inflight) {
      if (f.child->result_fd() >= 0) {
        fds.push_back({f.child->result_fd(), POLLIN, 0});
      }
      if (f.child->stderr_fd() >= 0) {
        fds.push_back({f.child->stderr_fd(), POLLIN, 0});
      }
    }
    int timeout_ms = -1;
    const std::int64_t now = monotonic_ms();
    for (const auto& f : inflight) {
      if (const auto deadline = f.child->deadline_ms()) {
        const std::int64_t left = std::max<std::int64_t>(0, *deadline - now);
        const int left_ms = static_cast<int>(std::min<std::int64_t>(
            left, std::numeric_limits<int>::max() / 2));
        timeout_ms = timeout_ms < 0 ? left_ms : std::min(timeout_ms, left_ms);
      }
    }
    ::poll(fds.data(), fds.size(), timeout_ms);

    if (g_sigint >= 2) {
      // Second Ctrl-C: the user wants out now. Kill in-flight children;
      // their trials are simply not recorded and resume re-runs them.
      for (auto& f : inflight) {
        f.cancelled = true;
        f.child->kill_child(/*timed_out=*/false);
      }
    }

    const std::int64_t after_poll = monotonic_ms();
    for (auto it = inflight.begin(); it != inflight.end();) {
      const auto deadline = it->child->deadline_ms();
      if (deadline && after_poll >= *deadline) {
        it->child->kill_child(/*timed_out=*/true);
      }
      if (it->child->pump()) {
        if (!it->cancelled) {
          TrialResult r = it->child->result();
          ckpt.append(it->trial, plans[it->trial].to_spec(), r);
          out.results[it->trial] = std::move(r);
        }
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }

    // A freshly decided cutoff makes speculative children pointless.
    if (const auto decided = failure_cutoff(out.results, max_failures)) {
      for (auto& f : inflight) {
        if (f.trial > *decided) {
          f.cancelled = true;
          f.child->kill_child(/*timed_out=*/false);
        }
      }
    }
  }

  // Serial semantics: nothing after the cutoff exists, even if a
  // speculative child finished it first (or a checkpoint carried it).
  if (const auto cut = failure_cutoff(out.results, max_failures)) {
    for (int i = *cut + 1; i < n; ++i) out.results[i].reset();
  }
  out.interrupted = g_sigint != 0;
  return out;
}

}  // namespace phantom::chaos
