file(REMOVE_RECURSE
  "CMakeFiles/tcp_resilience_test.dir/tcp_resilience_test.cc.o"
  "CMakeFiles/tcp_resilience_test.dir/tcp_resilience_test.cc.o.d"
  "tcp_resilience_test"
  "tcp_resilience_test.pdb"
  "tcp_resilience_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
