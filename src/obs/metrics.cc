#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace phantom::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:   out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter:   return "counter";
    case MetricType::kGauge:     return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_{std::move(upper_bounds)}, counts_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"histogram bounds must be sorted"};
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

void Registry::add(Entry entry) {
  if (entry.def.name.empty()) {
    throw std::invalid_argument{"metric name must not be empty"};
  }
  if (!names_.insert(entry.def.name).second) {
    throw std::invalid_argument{"duplicate metric name: " + entry.def.name};
  }
  entries_.push_back(std::move(entry));
}

void Registry::add_counter(MetricDef def, CounterFn sample) {
  def.type = MetricType::kCounter;
  add(Entry{std::move(def), std::move(sample), {}, nullptr});
}

void Registry::add_gauge(MetricDef def, GaugeFn sample) {
  def.type = MetricType::kGauge;
  add(Entry{std::move(def), {}, std::move(sample), nullptr});
}

void Registry::add_histogram(MetricDef def, const Histogram* hist) {
  if (hist == nullptr) {
    throw std::invalid_argument{"null histogram: " + def.name};
  }
  def.type = MetricType::kHistogram;
  add(Entry{std::move(def), {}, {}, hist});
}

std::vector<std::size_t> Registry::sorted() const {
  std::vector<std::size_t> idx(entries_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return entries_[a].def.name < entries_[b].def.name;
  });
  return idx;
}

std::vector<const MetricDef*> Registry::defs() const {
  std::vector<const MetricDef*> out;
  out.reserve(entries_.size());
  for (const std::size_t i : sorted()) out.push_back(&entries_[i].def);
  return out;
}

std::string Registry::snapshot_json(sim::Time now) const {
  std::string out = "{\"time_ns\":";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, now.nanoseconds());
  out += buf;
  out += ",\"metrics\":[";
  bool first = true;
  for (const std::size_t i : sorted()) {
    const Entry& e = entries_[i];
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.def.name);
    out += "\",\"id\":\"";
    append_escaped(out, e.def.id);
    out += "\",\"type\":\"";
    out += to_string(e.def.type);
    out += "\",\"unit\":\"";
    append_escaped(out, e.def.unit);
    out += "\",\"component\":\"";
    append_escaped(out, e.def.component);
    out += "\",\"value\":";
    switch (e.def.type) {
      case MetricType::kCounter:
        append_u64(out, e.counter());
        break;
      case MetricType::kGauge:
        append_double(out, e.gauge());
        break;
      case MetricType::kHistogram: {
        out += "{\"count\":";
        append_u64(out, e.hist->count());
        out += ",\"sum\":";
        append_double(out, e.hist->sum());
        out += ",\"buckets\":[";
        const auto& bounds = e.hist->bounds();
        const auto& counts = e.hist->counts();
        for (std::size_t b = 0; b < counts.size(); ++b) {
          if (b > 0) out += ',';
          out += "{\"le\":";
          if (b < bounds.size()) {
            append_double(out, bounds[b]);
          } else {
            out += "\"inf\"";
          }
          out += ",\"count\":";
          append_u64(out, counts[b]);
          out += '}';
        }
        out += "]}";
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Registry::csv_header() { return "time_ms,name,type,unit,value\n"; }

std::string Registry::snapshot_csv(sim::Time now) const {
  std::string time_ms;
  append_double(time_ms, now.milliseconds());
  std::string out;
  const auto row = [&](const std::string& name, const char* type,
                       const std::string& unit, const std::string& value) {
    out += time_ms;
    out += ',';
    out += name;
    out += ',';
    out += type;
    out += ',';
    out += unit;
    out += ',';
    out += value;
    out += '\n';
  };
  for (const std::size_t i : sorted()) {
    const Entry& e = entries_[i];
    std::string value;
    switch (e.def.type) {
      case MetricType::kCounter:
        append_u64(value, e.counter());
        row(e.def.name, "counter", e.def.unit, value);
        break;
      case MetricType::kGauge:
        append_double(value, e.gauge());
        row(e.def.name, "gauge", e.def.unit, value);
        break;
      case MetricType::kHistogram: {
        append_u64(value, e.hist->count());
        row(e.def.name + ".count", "histogram", e.def.unit, value);
        value.clear();
        append_double(value, e.hist->sum());
        row(e.def.name + ".sum", "histogram", e.def.unit, value);
        const auto& bounds = e.hist->bounds();
        const auto& counts = e.hist->counts();
        for (std::size_t b = 0; b < counts.size(); ++b) {
          std::string bucket = e.def.name + ".le_";
          if (b < bounds.size()) {
            append_double(bucket, bounds[b]);
          } else {
            bucket += "inf";
          }
          value.clear();
          append_u64(value, counts[b]);
          row(bucket, "histogram", e.def.unit, value);
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace phantom::obs
