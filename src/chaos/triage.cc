#include "chaos/triage.h"

#include <cctype>
#include <set>

namespace phantom::chaos {
namespace {

[[nodiscard]] bool is_hex_digit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

/// Lines worth fingerprinting from assert/sanitizer output, in rough
/// saliency order (the first match in the tail wins).
constexpr const char* kSalientMarkers[] = {
    "ERROR: AddressSanitizer",  // ASan header carries the bug kind
    "ERROR: LeakSanitizer",
    "WARNING: ThreadSanitizer",
    "runtime error:",           // UBSan
    "Assertion",                // glibc assert
    "assertion",
    "terminate called",         // uncaught C++ exception
    "FATAL",
};

}  // namespace

std::string normalize_failure_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '0' && i + 2 < text.size() && text[i + 1] == 'x' &&
        is_hex_digit(text[i + 2])) {
      out += '@';
      i += 2;
      while (i < text.size() && is_hex_digit(text[i])) ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      out += '#';
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
              text[i] == '.')) {
        ++i;
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!out.empty() && out.back() != ' ') out += ' ';
      ++i;
      continue;
    }
    out += c;
    ++i;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string salient_stderr_line(const std::string& stderr_tail) {
  std::size_t start = 0;
  while (start <= stderr_tail.size()) {
    std::size_t end = stderr_tail.find('\n', start);
    if (end == std::string::npos) end = stderr_tail.size();
    const std::string line = stderr_tail.substr(start, end - start);
    for (const char* marker : kSalientMarkers) {
      if (line.find(marker) != std::string::npos) return line;
    }
    if (end == stderr_tail.size()) break;
    start = end + 1;
  }
  return {};
}

std::string failure_fingerprint(const TrialResult& r) {
  std::string fp = to_string(r.verdict);
  if (r.verdict == Verdict::kProcessCrash) {
    fp += "|" + (r.crash_signal.empty()
                     ? "exit:" + std::to_string(r.exit_code)
                     : r.crash_signal);
    const std::string salient = salient_stderr_line(r.stderr_tail);
    fp += "|" + normalize_failure_text(salient.empty() ? r.detail : salient);
  } else {
    fp += "||" + normalize_failure_text(r.detail);
  }
  return fp;
}

std::string failure_fingerprint(const TrialResult& r,
                                const fault::FaultPlan* plan) {
  if (plan != nullptr && r.verdict != Verdict::kProcessCrash) {
    std::set<std::size_t> adversaries;
    for (const fault::FaultEvent& e : plan->events) {
      if (e.kind == fault::FaultEvent::Kind::kMisbehave) {
        adversaries.insert(e.target.index);
      }
    }
    if (!adversaries.empty()) {
      return std::string{to_string(r.verdict)} + "|misbehave|" +
             std::to_string(adversaries.size());
    }
    // Checked after misbehave (defection dominates: overload pressure
    // from a defector is still the defector's class) and before
    // rm_blackhole, so a plan mixing overload and feedback loss groups
    // by the resource-exhaustion pressure that actually sheds cells.
    std::size_t overload_events = 0;
    for (const fault::FaultEvent& e : plan->events) {
      if (e.kind == fault::FaultEvent::Kind::kMemSqueeze ||
          e.kind == fault::FaultEvent::Kind::kVcStorm) {
        ++overload_events;
      }
    }
    if (overload_events > 0) {
      return std::string{to_string(r.verdict)} + "|overload|" +
             std::to_string(overload_events);
    }
    std::size_t blackholes = 0;
    for (const fault::FaultEvent& e : plan->events) {
      if (e.kind == fault::FaultEvent::Kind::kRmBlackhole) ++blackholes;
    }
    if (blackholes > 0) {
      return std::string{to_string(r.verdict)} + "|rm_blackhole|" +
             std::to_string(blackholes);
    }
  }
  return failure_fingerprint(r);
}

std::vector<TriagedClass> triage_failures(
    const std::vector<std::tuple<int, const TrialResult*,
                                 const fault::FaultPlan*>>& failures) {
  std::vector<TriagedClass> classes;
  for (const auto& [trial, result, plan] : failures) {
    const std::string fp = failure_fingerprint(*result, plan);
    TriagedClass* found = nullptr;
    for (auto& c : classes) {
      if (c.fingerprint == fp) {
        found = &c;
        break;
      }
    }
    if (found == nullptr) {
      TriagedClass c;
      c.fingerprint = fp;
      c.verdict = result->verdict;
      c.signal = result->crash_signal;
      c.sample_detail = result->detail;
      c.flight_recorder = result->flight_recorder;
      classes.push_back(std::move(c));
      found = &classes.back();
    }
    found->trials.push_back(trial);
  }
  return classes;
}

std::vector<TriagedClass> triage_failures(
    const std::vector<std::pair<int, const TrialResult*>>& failures) {
  std::vector<std::tuple<int, const TrialResult*, const fault::FaultPlan*>>
      with_plans;
  with_plans.reserve(failures.size());
  for (const auto& [trial, result] : failures) {
    with_plans.emplace_back(trial, result, nullptr);
  }
  return triage_failures(with_plans);
}

}  // namespace phantom::chaos
