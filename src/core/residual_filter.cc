#include "core/residual_filter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace phantom::core {

ResidualFilter::ResidualFilter(sim::Rate link_capacity,
                               const PhantomConfig& config)
    : target_{link_capacity.bits_per_sec() * config.utilization},
      floor_{std::max(config.min_macr.bits_per_sec(),
                      config.min_macr_fraction * link_capacity.bits_per_sec() *
                          config.utilization)},
      alpha_inc_{config.alpha_inc},
      alpha_dec_{config.alpha_dec},
      dev_gain_{config.dev_gain},
      noise_scale_{config.noise_scale},
      adaptive_{config.adaptive_gain},
      macr_{std::clamp(config.initial_macr.bits_per_sec(), floor_, target_)} {
  config.validate();
  assert(link_capacity.bits_per_sec() > 0.0);
  initial_macr_ = macr_;
}

void ResidualFilter::reset() {
  macr_ = initial_macr_;
  dev_ = 0.0;
}

void ResidualFilter::seed(sim::Rate macr) {
  macr_ = std::clamp(macr.bits_per_sec(), floor_, target_);
  dev_ = 0.0;
}

sim::Rate ResidualFilter::update(sim::Rate offered) {
  const double delta = target_ - offered.bits_per_sec();  // residual bandwidth
  const double err = delta - macr_;
  const double abs_err = std::fabs(err);
  dev_ += dev_gain_ * (abs_err - dev_);

  const double base = err > 0.0 ? alpha_inc_ : alpha_dec_;
  double alpha = base;
  if (adaptive_) {
    const double denom = abs_err + noise_scale_ * dev_;
    alpha = denom > 0.0 ? base * abs_err / denom : 0.0;
  }
  macr_ += alpha * err;
  macr_ = std::clamp(macr_, floor_, target_);
  return macr();
}

}  // namespace phantom::core
