# Empty compiler generated dependencies file for tcp_sender_edge_test.
# This may be replaced when dependencies are built.
