# Empty dependencies file for phantom_baselines.
# This may be replaced when dependencies are built.
