# Empty compiler generated dependencies file for phantom_tcp.
# This may be replaced when dependencies are built.
