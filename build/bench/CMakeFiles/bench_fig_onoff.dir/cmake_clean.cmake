file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_onoff.dir/bench_fig_onoff.cc.o"
  "CMakeFiles/bench_fig_onoff.dir/bench_fig_onoff.cc.o.d"
  "bench_fig_onoff"
  "bench_fig_onoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
