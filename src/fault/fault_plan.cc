#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace phantom::fault {
namespace {

[[nodiscard]] std::string kind_name(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kOutage:  return "outage";
    case FaultEvent::Kind::kFlap:    return "flap";
    case FaultEvent::Kind::kBurst:   return "burst";
    case FaultEvent::Kind::kRmFault: return "rmloss";
    case FaultEvent::Kind::kRmBlackhole: return "rm_blackhole";
    case FaultEvent::Kind::kRestart: return "restart";
    case FaultEvent::Kind::kLeave:   return "leave";
    case FaultEvent::Kind::kJoin:    return "join";
    case FaultEvent::Kind::kMisbehave: return "misbehave";
    case FaultEvent::Kind::kComply:  return "comply";
    case FaultEvent::Kind::kMemSqueeze: return "memsqueeze";
    case FaultEvent::Kind::kVcStorm: return "vcstorm";
    case FaultEvent::Kind::kCustom:  return "custom";
  }
  return "?";
}

[[nodiscard]] MisbehaveMode parse_mode(const std::string& field) {
  if (field == "greedy") return MisbehaveMode::kGreedy;
  if (field == "forge") return MisbehaveMode::kForge;
  if (field == "partial") return MisbehaveMode::kPartial;
  throw std::invalid_argument{
      "fault plan: unknown misbehave mode '" + field +
      "' (want greedy, forge or partial)"};
}

[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in{s};
  while (std::getline(in, item, sep)) out.push_back(item);
  return out;
}

[[nodiscard]] double parse_number(const std::string& field,
                                  const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(field, &used);
    if (used != field.size()) throw std::invalid_argument{""};
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument{"fault plan: bad " + what + " '" + field + "'"};
  }
}

[[nodiscard]] sim::Time parse_ms(const std::string& field,
                                 const std::string& what) {
  const double ms = parse_number(field, what);
  if (ms < 0) throw std::invalid_argument{"fault plan: negative " + what};
  return sim::Time::from_seconds(ms / 1e3);
}

[[nodiscard]] double parse_probability(const std::string& field,
                                       const std::string& what) {
  const double p = parse_number(field, what);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument{"fault plan: " + what + " must be in [0,1]"};
  }
  return p;
}

[[nodiscard]] FaultTarget parse_target(const std::string& field) {
  const auto make = [&](FaultTarget::Kind kind, std::size_t prefix_len) {
    const std::string digits = field.substr(prefix_len);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument{"fault plan: bad target index in '" + field +
                                  "'"};
    }
    return FaultTarget{kind, static_cast<std::size_t>(std::stoul(digits))};
  };
  if (field.rfind("trunk", 0) == 0) return make(FaultTarget::Kind::kTrunk, 5);
  if (field.rfind("dest", 0) == 0) return make(FaultTarget::Kind::kDest, 4);
  throw std::invalid_argument{
      "fault plan: unknown target '" + field + "' (want trunkN or destN)"};
}

[[nodiscard]] std::size_t parse_session(const std::string& field) {
  if (field.empty() ||
      field.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument{"fault plan: bad session index '" + field +
                                "'"};
  }
  return static_cast<std::size_t>(std::stoul(field));
}

void expect_fields(const std::vector<std::string>& f, std::size_t lo,
                   std::size_t hi, const std::string& kind) {
  if (f.size() < lo || f.size() > hi) {
    throw std::invalid_argument{"fault plan: wrong field count for '" + kind +
                                "' event (got " + std::to_string(f.size() - 1) +
                                " fields)"};
  }
}

/// Exact decimal milliseconds: integer nanoseconds have at most six
/// fractional ms digits, so the rendering loses nothing and parse()
/// recovers the identical Time.
[[nodiscard]] std::string format_ms(sim::Time t) {
  const std::int64_t ns = t.nanoseconds();
  const std::int64_t whole = ns / 1'000'000;
  std::int64_t frac = ns % 1'000'000;
  std::string out = std::to_string(whole);
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%06lld", static_cast<long long>(frac));
    std::string digits{buf};
    while (!digits.empty() && digits.back() == '0') digits.pop_back();
    out += '.' + digits;
  }
  return out;
}

/// Shortest-ish decimal that survives a stod round trip for the
/// probabilities the grammar carries ("%.12g" exceeds their precision).
[[nodiscard]] std::string format_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

std::string FaultTarget::to_string() const {
  switch (kind) {
    case Kind::kTrunk: return "trunk" + std::to_string(index);
    case Kind::kDest: return "dest" + std::to_string(index);
    case Kind::kSession: return "session" + std::to_string(index);
  }
  return "?";
}

bool operator==(const FaultTarget& a, const FaultTarget& b) {
  return a.kind == b.kind && a.index == b.index;
}

std::string to_string(MisbehaveMode m) {
  switch (m) {
    case MisbehaveMode::kGreedy: return "greedy";
    case MisbehaveMode::kForge: return "forge";
    case MisbehaveMode::kPartial: return "partial";
  }
  return "?";
}

bool operator==(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.target == b.target && a.at == b.at &&
         a.duration == b.duration && a.down_period == b.down_period &&
         a.up_period == b.up_period && a.cycles == b.cycles &&
         a.p_good_bad == b.p_good_bad && a.p_bad_good == b.p_bad_good &&
         a.loss_bad == b.loss_bad && a.rm_loss == b.rm_loss &&
         a.rm_corrupt == b.rm_corrupt && a.warm == b.warm &&
         a.mode == b.mode && a.compliance == b.compliance &&
         a.mem_frac == b.mem_frac && a.storm_sessions == b.storm_sessions &&
         a.label == b.label;
}

std::string FaultEvent::to_spec() const {
  switch (kind) {
    case Kind::kOutage:
      return "outage:" + target.to_string() + ':' + format_ms(at) + ':' +
             format_ms(duration);
    case Kind::kFlap:
      return "flap:" + target.to_string() + ':' + format_ms(at) + ':' +
             std::to_string(cycles) + ':' + format_ms(down_period) + ':' +
             format_ms(up_period);
    case Kind::kBurst:
      return "burst:" + target.to_string() + ':' + format_ms(at) + ':' +
             format_ms(duration) + ':' + format_num(p_good_bad) + ':' +
             format_num(p_bad_good) + ':' + format_num(loss_bad);
    case Kind::kRmFault:
      return "rmloss:" + target.to_string() + ':' + format_ms(at) + ':' +
             format_ms(duration) + ':' + format_num(rm_loss) + ':' +
             format_num(rm_corrupt);
    case Kind::kRmBlackhole:
      // A full blackout (the default) omits the probability so the
      // shortest spelling round-trips; partial blackholes carry it.
      return "rm_blackhole:" + target.to_string() + ':' + format_ms(at) + ':' +
             format_ms(duration) +
             (rm_loss == 1.0 ? std::string{} : ':' + format_num(rm_loss));
    case Kind::kRestart:
      return "restart:" + target.to_string() + ':' + format_ms(at) +
             (warm ? ":warm" : std::string{});
    case Kind::kLeave:
      return "leave:" + std::to_string(target.index) + ':' + format_ms(at);
    case Kind::kJoin:
      return "join:" + std::to_string(target.index) + ':' + format_ms(at);
    case Kind::kMisbehave:
      return "misbehave:" + std::to_string(target.index) + ':' +
             format_ms(at) + ':' + to_string(mode) +
             (mode == MisbehaveMode::kPartial ? ':' + format_num(compliance)
                                              : std::string{});
    case Kind::kComply:
      return "comply:" + std::to_string(target.index) + ':' + format_ms(at);
    case Kind::kMemSqueeze:
      // Network-wide: no target field. A zero duration (squeeze holds
      // for the rest of the run) takes the shortest spelling.
      return "memsqueeze:" + format_ms(at) + ':' + format_num(mem_frac) +
             (duration.is_zero() ? std::string{} : ':' + format_ms(duration));
    case Kind::kVcStorm:
      return "vcstorm:" + format_ms(at) + ':' +
             std::to_string(storm_sessions) +
             (duration.is_zero() ? std::string{} : ':' + format_ms(duration));
    case Kind::kCustom:
      throw std::logic_error{
          "fault plan: custom event '" + label +
          "' has no text form (programmatic plans only)"};
  }
  throw std::logic_error{"fault plan: bad event kind"};
}

std::string FaultEvent::describe() const {
  std::ostringstream out;
  out << kind_name(kind);
  if (kind == Kind::kCustom) {
    if (!label.empty()) out << ':' << label;
  } else if (kind == Kind::kMemSqueeze || kind == Kind::kVcStorm) {
    out << ":network";  // resource faults hit every switch at once
  } else {
    out << ':' << target.to_string();
  }
  out << " @" << at.to_string();
  switch (kind) {
    case Kind::kOutage:
    case Kind::kBurst:
    case Kind::kRmFault:
      out << " for " << duration.to_string();
      break;
    case Kind::kRmBlackhole:
      out << " for " << duration.to_string() << " (backward RM x"
          << format_num(rm_loss) << ')';
      break;
    case Kind::kRestart:
      out << (warm ? " (warm)" : " (cold)");
      break;
    case Kind::kFlap:
      out << " x" << cycles << " (" << down_period.to_string() << " down / "
          << up_period.to_string() << " up)";
      break;
    case Kind::kMisbehave:
      out << " (" << fault::to_string(mode);
      if (mode == MisbehaveMode::kPartial) out << " compliance=" << compliance;
      out << ')';
      break;
    case Kind::kMemSqueeze:
      out << " (budget x" << format_num(mem_frac) << ')';
      if (!duration.is_zero()) out << " for " << duration.to_string();
      break;
    case Kind::kVcStorm:
      out << " (" << storm_sessions << " setups)";
      if (!duration.is_zero()) out << " for " << duration.to_string();
      break;
    default:
      break;
  }
  return out.str();
}

FaultPlan& FaultPlan::outage(FaultTarget t, sim::Time at, sim::Time duration) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kOutage;
  e.target = t;
  e.at = at;
  e.duration = duration;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::flap(FaultTarget t, sim::Time at, int cycles,
                           sim::Time down, sim::Time up) {
  if (cycles < 1) throw std::invalid_argument{"flap: cycles must be >= 1"};
  FaultEvent e;
  e.kind = FaultEvent::Kind::kFlap;
  e.target = t;
  e.at = at;
  e.cycles = cycles;
  e.down_period = down;
  e.up_period = up;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::burst(FaultTarget t, sim::Time at, sim::Time duration,
                            double p_good_bad, double p_bad_good,
                            double loss_bad) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kBurst;
  e.target = t;
  e.at = at;
  e.duration = duration;
  e.p_good_bad = p_good_bad;
  e.p_bad_good = p_bad_good;
  e.loss_bad = loss_bad;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::rm_fault(FaultTarget t, sim::Time at, sim::Time duration,
                               double drop_probability,
                               double corrupt_probability) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kRmFault;
  e.target = t;
  e.at = at;
  e.duration = duration;
  e.rm_loss = drop_probability;
  e.rm_corrupt = corrupt_probability;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::rm_blackhole(FaultTarget t, sim::Time at,
                                   sim::Time duration,
                                   double drop_probability) {
  if (drop_probability < 0.0 || drop_probability > 1.0) {
    throw std::invalid_argument{
        "rm_blackhole: drop probability must be in [0,1]"};
  }
  FaultEvent e;
  e.kind = FaultEvent::Kind::kRmBlackhole;
  e.target = t;
  e.at = at;
  e.duration = duration;
  e.rm_loss = drop_probability;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::restart(FaultTarget t, sim::Time at, bool warm) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kRestart;
  e.target = t;
  e.at = at;
  e.warm = warm;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::leave(std::size_t session_index, sim::Time at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLeave;
  e.target = session(session_index);
  e.at = at;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::join(std::size_t session_index, sim::Time at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kJoin;
  e.target = session(session_index);
  e.at = at;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::misbehave(std::size_t session_index, sim::Time at,
                                MisbehaveMode mode, double compliance) {
  if (compliance < 0.0 || compliance > 1.0) {
    throw std::invalid_argument{"misbehave: compliance must be in [0,1]"};
  }
  FaultEvent e;
  e.kind = FaultEvent::Kind::kMisbehave;
  e.target = session(session_index);
  e.at = at;
  e.mode = mode;
  // Only kPartial carries a compliance factor; normalizing the others
  // to zero keeps operator== and the parse(to_spec()) round trip exact.
  e.compliance = mode == MisbehaveMode::kPartial ? compliance : 0.0;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::comply(std::size_t session_index, sim::Time at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kComply;
  e.target = session(session_index);
  e.at = at;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::memsqueeze(sim::Time at, double fraction,
                                 sim::Time duration) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument{
        "memsqueeze: budget fraction must be in (0,1]"};
  }
  FaultEvent e;
  e.kind = FaultEvent::Kind::kMemSqueeze;
  e.at = at;
  e.duration = duration;
  e.mem_frac = fraction;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::vcstorm(sim::Time at, int sessions,
                              sim::Time duration) {
  if (sessions < 1) {
    throw std::invalid_argument{"vcstorm: session count must be >= 1"};
  }
  FaultEvent e;
  e.kind = FaultEvent::Kind::kVcStorm;
  e.at = at;
  e.duration = duration;
  e.storm_sessions = sessions;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::custom(sim::Time at, std::function<void()> action,
                             std::string label) {
  if (!action) throw std::invalid_argument{"custom fault: null action"};
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCustom;
  e.at = at;
  e.action = std::move(action);
  e.label = std::move(label);
  events.push_back(std::move(e));
  return *this;
}

sim::Time FaultPlan::first_fault_time() const {
  sim::Time first = sim::Time::max();
  for (const FaultEvent& e : events) first = std::min(first, e.at);
  return events.empty() ? sim::Time::zero() : first;
}

sim::Time FaultPlan::last_recovery_time() const {
  sim::Time last = sim::Time::zero();
  for (const FaultEvent& e : events) {
    sim::Time end = e.at;
    switch (e.kind) {
      case FaultEvent::Kind::kOutage:
      case FaultEvent::Kind::kBurst:
      case FaultEvent::Kind::kRmFault:
      case FaultEvent::Kind::kRmBlackhole:
      case FaultEvent::Kind::kMemSqueeze:
      case FaultEvent::Kind::kVcStorm:
        end = e.at + e.duration;
        break;
      case FaultEvent::Kind::kFlap:
        end = e.at + (e.down_period + e.up_period) * e.cycles;
        break;
      default:
        break;
    }
    last = std::max(last, end);
  }
  return last;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t offset = 0;  // character position of the current event
  std::size_t index = 1;   // 1-based ordinal of the current event
  for (const std::string& item : split(spec, ';')) {
    const std::size_t item_offset = offset;
    offset += item.size() + 1;  // +1 for the ';' separator
    if (item.empty()) continue;
    try {
      plan.parse_event(item);
      // Duplicate rejection: two events of the same kind on the same
      // entity at the same instant can only be a typo (or a generator
      // bug) — the injector would apply one of them twice.
      const FaultEvent& added = plan.events.back();
      for (std::size_t i = 0; i + 1 < plan.events.size(); ++i) {
        const FaultEvent& prev = plan.events[i];
        if (prev.kind == added.kind && prev.target == added.target &&
            prev.at == added.at) {
          // memsqueeze/vcstorm act network-wide; naming their (unused)
          // default target would point the user at a trunk that plays
          // no part in the clash.
          const bool network_wide = added.kind == FaultEvent::Kind::kMemSqueeze ||
                                    added.kind == FaultEvent::Kind::kVcStorm;
          throw std::invalid_argument{
              "fault plan: duplicate " + kind_name(added.kind) + " event" +
              (network_wide ? "" : " on " + added.target.to_string()) +
              " at " + format_ms(added.at) + "ms (first occurrence is event " +
              std::to_string(i + 1) + ")"};
        }
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument{std::string{e.what()} + " in event " +
                                  std::to_string(index) + " (\"" + item +
                                  "\") at character " +
                                  std::to_string(item_offset)};
    }
    ++index;
  }
  return plan;
}

void FaultPlan::parse_event(const std::string& item) {
  FaultPlan& plan = *this;
  {
    const auto f = split(item, ':');
    const std::string& kind = f[0];
    if (kind == "outage") {
      expect_fields(f, 4, 4, kind);
      plan.outage(parse_target(f[1]), parse_ms(f[2], "time"),
                  parse_ms(f[3], "duration"));
    } else if (kind == "flap") {
      expect_fields(f, 6, 6, kind);
      const double cycles = parse_number(f[3], "cycle count");
      if (cycles < 1 || cycles != static_cast<int>(cycles)) {
        throw std::invalid_argument{"fault plan: bad cycle count '" + f[3] +
                                    "'"};
      }
      plan.flap(parse_target(f[1]), parse_ms(f[2], "time"),
                static_cast<int>(cycles), parse_ms(f[4], "down period"),
                parse_ms(f[5], "up period"));
    } else if (kind == "burst") {
      expect_fields(f, 7, 7, kind);
      plan.burst(parse_target(f[1]), parse_ms(f[2], "time"),
                 parse_ms(f[3], "duration"),
                 parse_probability(f[4], "P(good->bad)"),
                 parse_probability(f[5], "P(bad->good)"),
                 parse_probability(f[6], "bad-state loss"));
    } else if (kind == "rmloss") {
      expect_fields(f, 5, 6, kind);
      plan.rm_fault(parse_target(f[1]), parse_ms(f[2], "time"),
                    parse_ms(f[3], "duration"),
                    parse_probability(f[4], "RM drop probability"),
                    f.size() == 6
                        ? parse_probability(f[5], "RM corrupt probability")
                        : 0.0);
    } else if (kind == "rm_blackhole") {
      expect_fields(f, 4, 5, kind);
      plan.rm_blackhole(parse_target(f[1]), parse_ms(f[2], "time"),
                        parse_ms(f[3], "duration"),
                        f.size() == 5
                            ? parse_probability(f[4], "RM drop probability")
                            : 1.0);
    } else if (kind == "restart") {
      expect_fields(f, 3, 4, kind);
      bool warm = false;
      if (f.size() == 4) {
        if (f[3] == "warm") {
          warm = true;
        } else if (f[3] != "cold") {
          throw std::invalid_argument{"fault plan: unknown restart mode '" +
                                      f[3] + "' (want warm or cold)"};
        }
      }
      plan.restart(parse_target(f[1]), parse_ms(f[2], "time"), warm);
    } else if (kind == "leave" || kind == "join" || kind == "comply") {
      expect_fields(f, 3, 3, kind);
      const std::size_t s = parse_session(f[1]);
      const sim::Time at = parse_ms(f[2], "time");
      if (kind == "leave") {
        plan.leave(s, at);
      } else if (kind == "join") {
        plan.join(s, at);
      } else {
        plan.comply(s, at);
      }
    } else if (kind == "misbehave") {
      expect_fields(f, 4, 5, kind);
      plan.misbehave(parse_session(f[1]), parse_ms(f[2], "time"),
                     parse_mode(f[3]),
                     f.size() == 5 ? parse_probability(f[4], "compliance")
                                   : 0.0);
    } else if (kind == "memsqueeze") {
      expect_fields(f, 3, 4, kind);
      const double frac = parse_number(f[2], "budget fraction");
      if (frac <= 0.0 || frac > 1.0) {
        throw std::invalid_argument{
            "fault plan: budget fraction must be in (0,1]"};
      }
      plan.memsqueeze(parse_ms(f[1], "time"), frac,
                      f.size() == 4 ? parse_ms(f[3], "duration")
                                    : sim::Time::zero());
    } else if (kind == "vcstorm") {
      expect_fields(f, 3, 4, kind);
      const double n = parse_number(f[2], "session count");
      if (n < 1 || n != static_cast<int>(n)) {
        throw std::invalid_argument{"fault plan: bad session count '" + f[2] +
                                    "'"};
      }
      plan.vcstorm(parse_ms(f[1], "time"), static_cast<int>(n),
                   f.size() == 4 ? parse_ms(f[3], "duration")
                                 : sim::Time::zero());
    } else {
      throw std::invalid_argument{"fault plan: unknown event kind '" + kind +
                                  "'"};
    }
  }
}

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += ';';
    out += e.to_spec();
  }
  return out;
}

}  // namespace phantom::fault
