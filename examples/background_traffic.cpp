// Example: ABR means *available* bit rate — Phantom shares what the
// guaranteed-traffic classes leave behind.
//
// A 150 Mb/s link carries a 50 Mb/s constant-bit-rate stream (think
// CBR video) that ignores flow control entirely, plus three greedy ABR
// sessions. Phantom measures the residual bandwidth, so the ABR
// sessions converge to (u*C - 50)/(3+1) each without any explicit
// knowledge of the CBR stream. Halfway through, the CBR stream stops
// and the ABR sessions absorb the released bandwidth.
#include <cstdio>

#include "exp/factories.h"
#include "exp/probes.h"
#include "exp/report.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

int main() {
  using namespace phantom;
  using sim::Rate;
  using sim::Time;

  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 3; ++i) net.add_session(sw, {}, dest);
  const auto cbr = net.add_cbr_session(sw, {}, dest, Rate::mbps(50));

  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.schedule_at(Time::ms(400), [&] { net.cbr_source(cbr).stop(); });

  exp::print_header("background-traffic",
                    "3 ABR sessions + 50 Mb/s CBR on one 150 Mb/s link");

  // Phase 1: CBR active.
  sim.run_until(Time::ms(300));
  probe.mark();
  sim.run_until(Time::ms(390));
  const auto with_cbr = probe.rates_mbps();
  // Phase 2: CBR gone.
  sim.run_until(Time::ms(650));
  probe.mark();
  sim.run_until(Time::ms(800));
  const auto without_cbr = probe.rates_mbps();

  exp::Table table{{"ABR session", "with CBR (Mb/s)", "after CBR stops"}};
  for (std::size_t s = 0; s < 3; ++s) {
    table.add_row({std::to_string(s), exp::Table::num(with_cbr[s]),
                   exp::Table::num(without_cbr[s])});
  }
  table.print();
  std::printf(
      "\nexpected: (0.95*150-50)/4 = 23.1 with CBR, 0.95*150/4 = 35.6 after\n"
      "(the imaginary phantom session always takes one share).\n"
      "CBR cells sent: %llu, port drops: %llu\n",
      static_cast<unsigned long long>(net.cbr_source(cbr).cells_sent()),
      static_cast<unsigned long long>(net.dest_port(dest).cells_dropped()));
  return 0;
}
