#include "atm/abr_source.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace phantom::atm {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

class Collector final : public CellSink {
 public:
  void receive_cell(Cell cell) override { cells.push_back(cell); }
  [[nodiscard]] std::size_t count(CellKind k) const {
    std::size_t n = 0;
    for (const auto& c : cells) n += (c.kind == k) ? 1 : 0;
    return n;
  }
  std::vector<Cell> cells;
};

AbrParams small_params() {
  AbrParams p;
  p.icr = Rate::mbps(8.5);
  return p;
}

Cell brm(int vc, bool ci, Rate er) {
  Cell c = Cell::forward_rm(vc, Rate::zero(), er);
  c.kind = CellKind::kBackwardRm;
  c.ci = ci;
  return c;
}

struct SourceFixture {
  Simulator sim;
  Collector net;
  AbrSource src{sim, 1, small_params(), Link{sim, Time::zero(), net}};
};

TEST(AbrSourceTest, StartsAtIcr) {
  SourceFixture f;
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), 8.5);
  EXPECT_FALSE(f.src.active());
}

TEST(AbrSourceTest, PacesCellsAtAcr) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.sim.run_until(Time::ms(10));
  // 8.5 Mb/s = 20047 cells/s -> ~200 cells in 10 ms.
  const auto total = f.net.cells.size();
  EXPECT_NEAR(static_cast<double>(total), 200.0, 3.0);
}

TEST(AbrSourceTest, OneRmCellPerNrmCells) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.sim.run_until(Time::ms(50));
  const auto frm = f.net.count(CellKind::kForwardRm);
  const auto data = f.net.count(CellKind::kData);
  ASSERT_GT(frm, 5u);
  // data : FRM ratio is Nrm-1 : 1.
  EXPECT_NEAR(static_cast<double>(data) / static_cast<double>(frm), 31.0, 1.0);
  EXPECT_EQ(f.src.rm_cells_sent(), frm);
  EXPECT_EQ(f.src.data_cells_sent(), data);
}

TEST(AbrSourceTest, FirstCellIsForwardRm) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.sim.run_until(Time::us(10));
  ASSERT_FALSE(f.net.cells.empty());
  EXPECT_EQ(f.net.cells[0].kind, CellKind::kForwardRm);
  EXPECT_DOUBLE_EQ(f.net.cells[0].ccr.mbits_per_sec(), 8.5);
  EXPECT_DOUBLE_EQ(f.net.cells[0].er.mbits_per_sec(), 150.0);
}

TEST(AbrSourceTest, AdditiveIncreaseOnCleanBrm) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.sim.run_until(Time::us(1));
  f.src.receive_cell(brm(1, /*ci=*/false, Rate::mbps(150)));
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), 8.5 + 4.25);
  EXPECT_EQ(f.src.brm_cells_received(), 1u);
}

TEST(AbrSourceTest, MultiplicativeDecreaseOnCi) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.src.receive_cell(brm(1, /*ci=*/true, Rate::mbps(150)));
  // ACR *= (1 - 32/256) = 0.875.
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), 8.5 * 0.875);
}

TEST(AbrSourceTest, ErClampsAcr) {
  SourceFixture f;
  f.src.receive_cell(brm(1, false, Rate::mbps(2)));
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), 2.0);
}

TEST(AbrSourceTest, AcrNeverExceedsPcr) {
  SourceFixture f;
  for (int i = 0; i < 100; ++i) {
    f.src.receive_cell(brm(1, false, Rate::mbps(1000)));
  }
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), 150.0);
}

TEST(AbrSourceTest, AcrNeverDropsBelowTcr) {
  SourceFixture f;
  for (int i = 0; i < 200; ++i) {
    f.src.receive_cell(brm(1, true, Rate::mbps(150)));
  }
  EXPECT_DOUBLE_EQ(f.src.acr().bits_per_sec(),
                   Rate::cells_per_sec(10).bits_per_sec());
}

TEST(AbrSourceTest, McrIsRespected) {
  Simulator sim;
  Collector net;
  AbrParams p = small_params();
  p.mcr = Rate::mbps(1);
  AbrSource src{sim, 1, p, Link{sim, Time::zero(), net}};
  for (int i = 0; i < 200; ++i) src.receive_cell(brm(1, true, Rate::mbps(150)));
  EXPECT_DOUBLE_EQ(src.acr().mbits_per_sec(), 1.0);
}

TEST(AbrSourceTest, IgnoresForeignAndForwardCells) {
  SourceFixture f;
  f.src.receive_cell(brm(2, false, Rate::mbps(150)));     // other VC
  f.src.receive_cell(Cell::forward_rm(1, Rate::zero(), Rate::mbps(1)));
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), 8.5);
  EXPECT_EQ(f.src.brm_cells_received(), 0u);
}

TEST(AbrSourceTest, DeactivationStopsTransmission) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.sim.run_until(Time::ms(5));
  const auto sent = f.net.cells.size();
  f.src.set_active(false);
  f.sim.run_until(Time::ms(10));
  EXPECT_EQ(f.net.cells.size(), sent);
}

TEST(AbrSourceTest, ReactivationResumes) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.sim.run_until(Time::ms(2));
  f.src.set_active(false);
  f.sim.run_until(Time::ms(3));
  const auto sent = f.net.cells.size();
  f.src.set_active(true);
  f.sim.run_until(Time::ms(6));
  EXPECT_GT(f.net.cells.size(), sent);
}

TEST(AbrSourceTest, UseItOrLoseItResetsToIcrAfterLongIdle) {
  SourceFixture f;
  f.src.start(Time::zero());
  // Pump the rate up.
  for (int i = 0; i < 20; ++i) f.src.receive_cell(brm(1, false, Rate::mbps(150)));
  f.sim.run_until(Time::ms(1));
  EXPECT_GT(f.src.acr().mbits_per_sec(), 50.0);
  f.src.set_active(false);
  // Idle far beyond TOF * Nrm cell times.
  f.sim.run_until(Time::sec(1));
  f.src.set_active(true);
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), 8.5);
}

TEST(AbrSourceTest, ShortIdleKeepsAcr) {
  SourceFixture f;
  f.src.start(Time::zero());
  for (int i = 0; i < 20; ++i) f.src.receive_cell(brm(1, false, Rate::mbps(150)));
  f.sim.run_until(Time::ms(1));
  const double acr = f.src.acr().mbits_per_sec();
  f.src.set_active(false);
  // At 93.5 Mb/s the nrm-block timeout is ~2 * 32 * 4.5us = ~290us; idle 50us.
  f.sim.run_until(Time::ms(1) + Time::us(50));
  f.src.set_active(true);
  EXPECT_DOUBLE_EQ(f.src.acr().mbits_per_sec(), acr);
}

TEST(AbrSourceTest, AcrTraceRecordsChanges) {
  SourceFixture f;
  f.src.start(Time::zero());
  f.sim.run_until(Time::us(1));
  f.src.receive_cell(brm(1, false, Rate::mbps(150)));
  EXPECT_GE(f.src.acr_trace().size(), 2u);
  EXPECT_DOUBLE_EQ(f.src.acr_trace().back().value, (8.5 + 4.25) * 1e6);
}

TEST(AbrSourceTest, ValidatesParams) {
  Simulator sim;
  Collector net;
  AbrParams bad;
  bad.icr = Rate::mbps(200);  // exceeds PCR
  EXPECT_THROW((AbrSource{sim, 1, bad, Link{sim, Time::zero(), net}}),
               std::invalid_argument);
  AbrParams bad2;
  bad2.nrm = 1;
  EXPECT_THROW((AbrSource{sim, 1, bad2, Link{sim, Time::zero(), net}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace phantom::atm
