#include "bench_util.h"

namespace phantom::bench {

TcpRun run_tcp_bottleneck(tcp::PolicyFactory policy, std::size_t queue_limit) {
  using sim::Rate;
  using sim::Time;
  sim::Simulator sim;
  tcp::TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  tcp::TcpTrunkOptions opts;
  opts.queue_limit = queue_limit;
  opts.policy = std::move(policy);
  const auto s = net.add_sink_node(r, opts);
  const Time delays[] = {Time::ms(3), Time::ms(6), Time::ms(12), Time::ms(24)};
  for (const Time d : delays) {
    net.add_flow(r, {}, s, tcp::RenoConfig{}, Rate::mbps(100), d);
  }
  net.start_all(Time::zero(), Time::ms(73));
  const Time settle = Time::sec(3), horizon = Time::sec(12);
  sim.run_until(settle);
  std::vector<std::int64_t> base;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    base.push_back(net.delivered_bytes(f));
  }
  TcpRun out;
  std::size_t samples = 0;
  std::function<void()> sample = [&] {
    out.mean_queue += static_cast<double>(net.sink_port(s).queue_length());
    ++samples;
    sim.schedule(Time::ms(5), sample);
  };
  sim.schedule(Time::zero(), sample);
  sim.run_until(horizon);
  out.mean_queue /= static_cast<double>(samples);
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    out.mbps.push_back(static_cast<double>(net.delivered_bytes(f) - base[f]) *
                       8.0 / (horizon - settle).seconds() / 1e6);
    out.total += out.mbps.back();
  }
  out.jain = stats::jain_index(out.mbps);
  out.max_queue = net.sink_port(s).max_queue_length();
  return out;
}

}  // namespace phantom::bench
