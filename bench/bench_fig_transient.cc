// Fig. 12-13 (reconstructed numbering): transient adaptation — sessions
// join and leave a loaded link.
//
// Paper shape: each join pulls MACR down a step (u*C/2 -> u*C/3 ->
// u*C/4 ...); each leave releases it back up; adaptation completes in
// tens of ms with bounded queue excursions.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Time;

int main() {
  exp::print_header("Fig 12-13", "sessions joining and leaving");

  sim::Simulator sim;
  AbrBottleneck b{sim, exp::Algorithm::kPhantom, 4};
  exp::QueueSampler queue{sim, b.port()};
  // Session 0,1 start at t=0; 2 joins at 150 ms; 3 joins at 300 ms;
  // session 1 leaves at 450 ms.
  b.net.source(0).start(Time::zero());
  b.net.source(1).start(Time::zero());
  b.net.source(2).start(Time::ms(150));
  b.net.source(3).start(Time::ms(300));
  sim.schedule_at(Time::ms(450), [&] { b.net.source(1).set_active(false); });

  exp::GoodputProbe probe{sim, b.net};
  struct Phase {
    const char* name;
    Time from, to;
    double ideal;
  };
  const Phase phases[] = {
      {"2 sessions [100,145ms]", Time::ms(100), Time::ms(145), 47.5},
      {"3 sessions [250,295ms]", Time::ms(250), Time::ms(295), 35.625},
      {"4 sessions [400,445ms]", Time::ms(400), Time::ms(445), 28.5},
      {"3 sessions [550,600ms]", Time::ms(550), Time::ms(600), 35.625},
  };

  exp::Table table{{"phase", "mean active goodput (Mb/s)", "ideal u*C/(n+1)"}};
  for (const Phase& p : phases) {
    sim.run_until(p.from);
    probe.mark();
    sim.run_until(p.to);
    const auto rates = probe.rates_mbps();
    double mean = 0;
    int active = 0;
    for (const double r : rates) {
      if (r > 1.0) {  // active sessions only
        mean += r;
        ++active;
      }
    }
    mean /= std::max(1, active);
    table.add_row({p.name, exp::Table::num(mean), exp::Table::num(p.ideal)});
  }
  table.print();

  const auto& ctl =
      dynamic_cast<const core::PhantomController&>(b.port().controller());
  exp::print_series("MACR (Mb/s)", ctl.macr_trace().samples(), 1e-6, 30);
  exp::print_series("queue (cells)", queue.trace().samples(), 1.0, 20);
  std::printf("\nmax queue: %zu cells, drops: %llu\n",
              b.port().max_queue_length(),
              static_cast<unsigned long long>(b.port().cells_dropped()));
  return 0;
}
