# Empty dependencies file for bench_tab_source_params.
# This may be replaced when dependencies are built.
