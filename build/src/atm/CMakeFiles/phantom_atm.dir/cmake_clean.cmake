file(REMOVE_RECURSE
  "CMakeFiles/phantom_atm.dir/abr_destination.cc.o"
  "CMakeFiles/phantom_atm.dir/abr_destination.cc.o.d"
  "CMakeFiles/phantom_atm.dir/abr_source.cc.o"
  "CMakeFiles/phantom_atm.dir/abr_source.cc.o.d"
  "CMakeFiles/phantom_atm.dir/cbr_source.cc.o"
  "CMakeFiles/phantom_atm.dir/cbr_source.cc.o.d"
  "CMakeFiles/phantom_atm.dir/cell.cc.o"
  "CMakeFiles/phantom_atm.dir/cell.cc.o.d"
  "CMakeFiles/phantom_atm.dir/output_port.cc.o"
  "CMakeFiles/phantom_atm.dir/output_port.cc.o.d"
  "CMakeFiles/phantom_atm.dir/switch.cc.o"
  "CMakeFiles/phantom_atm.dir/switch.cc.o.d"
  "libphantom_atm.a"
  "libphantom_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
