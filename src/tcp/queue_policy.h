// Router queue-management policies: the seam where the paper's four TCP
// mechanisms (and the DropTail / RED baselines) plug into a router port.
#pragma once

#include <cstddef>
#include <string>

#include "sim/time.h"
#include "tcp/packet.h"

namespace phantom::tcp {

/// What the policy wants done with an arriving data packet. Overflow
/// drops are applied by the port afterwards regardless.
struct Verdict {
  bool drop = false;           ///< discard instead of enqueuing
  bool mark_efci = false;      ///< set the packet's EFCI bit
  bool send_quench = false;    ///< emit an ICMP Source Quench to the source

  [[nodiscard]] static Verdict accept() { return {}; }
  [[nodiscard]] static Verdict discard() { return {.drop = true}; }
};

/// Per-port queue policy. Called for every arriving data packet before
/// the overflow check, so implementations observe the full offered load.
class QueuePolicy {
 public:
  virtual ~QueuePolicy() = default;

  /// Decides the fate of `packet` given the current queue state.
  virtual Verdict on_arrival(const Packet& packet, std::size_t queue_len,
                             std::size_t queue_limit) = 0;

  /// The port ran out of buffer after on_arrival accepted (overflow).
  virtual void on_overflow(const Packet& packet) { (void)packet; }

  /// Fair-share estimate, zero for policies that do not compute one.
  [[nodiscard]] virtual sim::Rate fair_share() const {
    return sim::Rate::zero();
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Plain drop-tail: accept until the buffer overflows. The paper's
/// baseline for the unfairness figures (Fig. 14/17 left sides).
class DropTailPolicy final : public QueuePolicy {
 public:
  Verdict on_arrival(const Packet&, std::size_t, std::size_t) override {
    return Verdict::accept();
  }
  [[nodiscard]] std::string name() const override { return "droptail"; }
};

}  // namespace phantom::tcp
