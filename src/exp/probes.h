// Measurement probes shared by tests, examples and the bench harness.
#pragma once

#include <cstdint>
#include <vector>

#include "atm/output_port.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "topo/abr_network.h"

namespace phantom::exp {

/// Per-session goodput over a marked window, from delivered-cell deltas
/// at the destinations. This is how the paper's per-session throughput
/// numbers are measured (rates of *useful* data cells, not ACR).
class GoodputProbe {
 public:
  GoodputProbe(sim::Simulator& sim, topo::AbrNetwork& net)
      : sim_{&sim}, net_{&net} {}

  /// Starts (or restarts) the measurement window at the current time.
  void mark();

  /// Per-session goodput in Mb/s since the last mark().
  [[nodiscard]] std::vector<double> rates_mbps() const;

  /// Aggregate goodput in Mb/s since the last mark().
  [[nodiscard]] double total_mbps() const;

 private:
  sim::Simulator* sim_;
  topo::AbrNetwork* net_;
  sim::Time t0_;
  std::vector<std::uint64_t> base_;
};

/// Samples a port's queue length into a Trace on a fixed period — the
/// paper's "Queue length" curves.
class QueueSampler {
 public:
  QueueSampler(sim::Simulator& sim, const atm::OutputPort& port,
               sim::Time period = sim::Time::us(500));

  QueueSampler(const QueueSampler&) = delete;
  QueueSampler& operator=(const QueueSampler&) = delete;

  [[nodiscard]] const sim::Trace& trace() const { return trace_; }

 private:
  void tick();

  sim::Simulator* sim_;
  const atm::OutputPort* port_;
  sim::Time period_;
  sim::Trace trace_;
};

/// Samples a controller's fair-share estimate (MACR / ERS) into a Trace.
class FairShareSampler {
 public:
  FairShareSampler(sim::Simulator& sim, const atm::PortController& controller,
                   sim::Time period = sim::Time::us(500));

  FairShareSampler(const FairShareSampler&) = delete;
  FairShareSampler& operator=(const FairShareSampler&) = delete;

  [[nodiscard]] const sim::Trace& trace() const { return trace_; }

 private:
  void tick();

  sim::Simulator* sim_;
  const atm::PortController* controller_;
  sim::Time period_;
  sim::Trace trace_;
};

}  // namespace phantom::exp
