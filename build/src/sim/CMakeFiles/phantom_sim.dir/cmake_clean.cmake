file(REMOVE_RECURSE
  "CMakeFiles/phantom_sim.dir/event_queue.cc.o"
  "CMakeFiles/phantom_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/phantom_sim.dir/simulator.cc.o"
  "CMakeFiles/phantom_sim.dir/simulator.cc.o.d"
  "CMakeFiles/phantom_sim.dir/time.cc.o"
  "CMakeFiles/phantom_sim.dir/time.cc.o.d"
  "libphantom_sim.a"
  "libphantom_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
