// End-to-end tests of the Phantom control loop over the full ABR
// substrate: sources pace cells, RM cells loop through switches, the
// controller measures residual bandwidth and writes ER feedback.
#include <gtest/gtest.h>

#include <vector>

#include "core/phantom_controller.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/series.h"
#include "topo/abr_network.h"
#include "topo/workload.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;
using topo::TrunkOptions;

topo::ControllerFactory phantom_factory(core::PhantomConfig cfg = {}) {
  return [cfg](Simulator& sim, Rate rate) {
    return std::make_unique<core::PhantomController>(sim, rate, cfg);
  };
}

/// Goodput of session `s` over [t0, t1], from delivered-cell deltas.
class GoodputProbe {
 public:
  GoodputProbe(Simulator& sim, AbrNetwork& net) : sim_{&sim}, net_{&net} {}
  void mark() {
    t0_ = sim_->now();
    base_.clear();
    for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
      base_.push_back(net_->delivered_cells(s));
    }
  }
  [[nodiscard]] std::vector<double> rates_mbps() const {
    std::vector<double> out;
    const double secs = (sim_->now() - t0_).seconds();
    for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
      const double cells =
          static_cast<double>(net_->delivered_cells(s) - base_[s]);
      out.push_back(cells * atm::kCellBits / secs / 1e6);
    }
    return out;
  }

 private:
  Simulator* sim_;
  AbrNetwork* net_;
  Time t0_;
  std::vector<std::uint64_t> base_;
};

struct SingleBottleneck {
  explicit SingleBottleneck(Simulator& sim, int n,
                            core::PhantomConfig cfg = {},
                            Rate rate = Rate::mbps(150))
      : net{sim, phantom_factory(cfg)} {
    const auto sw = net.add_switch("sw");
    TrunkOptions opts;
    opts.rate = rate;
    opts.controlled = true;
    dest = net.add_destination(sw, opts);
    for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest);
  }
  AbrNetwork net;
  AbrNetwork::DestId dest = 0;
};

TEST(PhantomIntegrationTest, TwoGreedySessionsConvergeToUCOver3) {
  Simulator sim;
  SingleBottleneck b{sim, 2};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(400));
  const auto rates = probe.rates_mbps();
  // Phantom equilibrium: u*C/(n+1) = 0.95*150/3 = 47.5 Mb/s each.
  for (const double r : rates) EXPECT_NEAR(r, 47.5, 4.0);
  EXPECT_GT(stats::jain_index(rates), 0.999);
}

TEST(PhantomIntegrationTest, MacrConvergesToPredictedEquilibrium) {
  Simulator sim;
  SingleBottleneck b{sim, 2};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  const auto& ctl = dynamic_cast<const core::PhantomController&>(
      b.net.dest_port(b.dest).controller());
  const auto tail = stats::summarize(ctl.macr_trace().samples(),
                                     Time::ms(300), Time::ms(400));
  EXPECT_NEAR(tail.mean / 1e6, 47.5, 3.0);
}

TEST(PhantomIntegrationTest, LateJoinerGetsEqualShare) {
  Simulator sim;
  SingleBottleneck b{sim, 3};
  // Session 2 joins 100 ms late.
  b.net.source(0).start(Time::zero());
  b.net.source(1).start(Time::zero());
  b.net.source(2).start(Time::ms(100));
  sim.run_until(Time::ms(400));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(500));
  const auto rates = probe.rates_mbps();
  // u*C/4 = 35.625 each.
  for (const double r : rates) EXPECT_NEAR(r, 35.6, 4.0);
  EXPECT_GT(stats::jain_index(rates), 0.999);
}

TEST(PhantomIntegrationTest, DepartingSessionFreesBandwidth) {
  Simulator sim;
  SingleBottleneck b{sim, 2};
  b.net.start_all(Time::zero(), Time::zero());
  sim.schedule_at(Time::ms(250), [&] { b.net.source(1).set_active(false); });
  sim.run_until(Time::ms(500));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(600));
  const auto rates = probe.rates_mbps();
  // Lone survivor converges to u*C/2 = 71.25.
  EXPECT_NEAR(rates[0], 71.25, 6.0);
  EXPECT_NEAR(rates[1], 0.0, 0.1);
}

TEST(PhantomIntegrationTest, QueueStaysModerateAndDrains) {
  Simulator sim;
  SingleBottleneck b{sim, 5};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(500));
  const auto& port = b.net.dest_port(b.dest);
  // "Moderate queue": bounded well below 1000 cells for 5 sessions with
  // tiny RTT, and fully drained in steady state thanks to u < 1.
  EXPECT_LT(port.max_queue_length(), 1000u);
  EXPECT_LT(port.queue_length(), 20u);
  EXPECT_EQ(port.cells_dropped(), 0u);
}

TEST(PhantomIntegrationTest, UtilizationApproachesTargetAsNGrows) {
  Simulator sim;
  SingleBottleneck b{sim, 9};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(600));
  double total = 0;
  for (const double r : probe.rates_mbps()) total += r;
  // n/(n+1) * u * C = 0.9 * 142.5 = 128.25 Mb/s aggregate.
  EXPECT_NEAR(total, 128.25, 8.0);
}

TEST(PhantomIntegrationTest, HeterogeneousRttStaysFair) {
  // One session with ~8 us access RTT, one with ~4 ms: goodputs must
  // still match (the paper's RTT-insensitivity claim).
  Simulator sim;
  AbrNetwork net{sim, phantom_factory()};
  const auto sw = net.add_switch("sw");
  const auto d = net.add_destination(sw, {});
  net.add_session(sw, {}, d, {}, /*access_delay=*/Time::us(2));
  net.add_session(sw, {}, d, {}, /*access_delay=*/Time::ms(1));
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  GoodputProbe probe{sim, net};
  probe.mark();
  sim.run_until(Time::ms(600));
  const auto rates = probe.rates_mbps();
  EXPECT_GT(stats::jain_index(rates), 0.99);
  EXPECT_NEAR(rates[0], rates[1], 0.1 * rates[0]);
}

TEST(PhantomIntegrationTest, ParkingLotMatchesMaxMinReference) {
  // 3 switches, long session across both trunks + dest link; one local
  // session per hop. Compare goodputs with the phantom-augmented
  // max-min reference computed by the solver.
  Simulator sim;
  AbrNetwork net{sim, phantom_factory()};
  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, {});
  const auto d_end = net.add_destination(s2, {});  // controlled last hop
  // Exit stubs for locals: uncontrolled, generous.
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  const auto d2 = net.add_destination(s2, stub);

  net.add_session(s0, {t01, t12}, d_end);  // long session
  net.add_session(s0, {t01}, d1);          // local hop 1
  net.add_session(s1, {t12}, d2);          // local hop 2
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  GoodputProbe probe{sim, net};
  probe.mark();
  sim.run_until(Time::ms(600));
  const auto rates = probe.rates_mbps();

  const auto ref = net.reference_rates(/*phantom_per_link=*/true, 0.95);
  ASSERT_EQ(ref.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(rates[s], ref[s].mbits_per_sec(),
                0.15 * ref[s].mbits_per_sec())
        << "session " << s;
  }
}

TEST(PhantomIntegrationTest, OnOffSessionsReconverge) {
  // Fig. 4 configuration: greedy sessions plus an on/off session. After
  // each toggle the network must re-converge; queues stay bounded.
  Simulator sim;
  SingleBottleneck b{sim, 3};
  b.net.start_all(Time::zero(), Time::zero());
  topo::OnOffDriver::Options opt;
  opt.on_period = Time::ms(60);
  opt.off_period = Time::ms(60);
  opt.first_toggle = Time::ms(60);
  topo::OnOffDriver driver{sim, b.net.source(2), opt};
  sim.run_until(Time::ms(365));
  EXPECT_GE(driver.toggles(), 5u);
  // Toggles land at 60 (off), 120 (on), 180, 240, 300, 360 (on), 420:
  // measure inside the 360-420 ms ON phase, leaving 10 ms to re-ramp.
  GoodputProbe probe{sim, b.net};
  sim.run_until(Time::ms(370));
  probe.mark();
  sim.run_until(Time::ms(415));
  const auto on_rates = probe.rates_mbps();
  EXPECT_GT(on_rates[2], 15.0);  // on/off session is getting bandwidth again
  EXPECT_LT(b.net.dest_port(b.dest).max_queue_length(), 2000u);
  EXPECT_EQ(b.net.dest_port(b.dest).cells_dropped(), 0u);
}

TEST(PhantomIntegrationTest, BinaryModeStillControlsAndShares) {
  // The CI-bit variant: no ER clamping, only EFCI marks latched by the
  // destination into returning RM cells. Sources then oscillate in the
  // classic additive-increase / multiplicative-decrease sawtooth around
  // the fair share; fairness holds, utilization is rougher than ER mode.
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.explicit_rate_mode = false;
  SingleBottleneck b{sim, 3, cfg};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(700));
  const auto rates = probe.rates_mbps();
  EXPECT_GT(stats::jain_index(rates), 0.95);
  double total = 0;
  for (const double r : rates) total += r;
  // Bounded utilization: above half the target, at most the link rate.
  EXPECT_GT(total, 0.5 * 142.5);
  EXPECT_LT(total, 150.0);
  // The queue must stay bounded (the whole point of feedback).
  EXPECT_LT(b.net.dest_port(b.dest).max_queue_length(), 20'000u);
}

// Parameterized sweep: convergence to u*C/(n+1) for a range of session
// counts (the paper's basic experiment at several scales).
class ConvergenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConvergenceSweep, GoodputMatchesNPlusOneRule) {
  const int n = GetParam();
  Simulator sim;
  SingleBottleneck b{sim, n};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(600));
  const auto rates = probe.rates_mbps();
  const double expect = 0.95 * 150.0 / (n + 1);
  for (const double r : rates) EXPECT_NEAR(r, expect, 0.15 * expect);
  EXPECT_GT(stats::jain_index(rates), 0.995);
}

INSTANTIATE_TEST_SUITE_P(Counts, ConvergenceSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace phantom
