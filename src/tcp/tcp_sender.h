// Common chassis of window-based TCP senders.
//
// Sequence tracking, segment emission, the Jacobson/Karn retransmission
// timer, duplicate-ACK accounting, CR stamping and Source-Quench /
// EFCI handling are identical across Reno, Tahoe and Vegas; what
// differs is the *window policy* — how cwnd grows on new ACKs and how
// it reacts to loss. Concrete senders override the policy hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tcp/packet.h"

namespace phantom::tcp {

struct RenoConfig {
  std::int64_t mss = 512;          ///< segment payload [paper §4.3]
  std::int64_t header = 40;        ///< TCP/IP header bytes
  double initial_cwnd_mss = 1.0;
  std::int64_t initial_ssthresh = 64 * 1024;  ///< bytes
  sim::Time rto_initial = sim::Time::ms(1000);
  sim::Time rto_min = sim::Time::ms(200);
  sim::Time rto_max = sim::Time::sec(60);
  /// Window for the CR (current rate) measurement stamped into packets.
  sim::Time cr_interval = sim::Time::ms(10);
  /// Honour echoed EFCI bits (required by the EFCI mechanism; harmless
  /// otherwise since plain routers never set the bit).
  bool react_to_efci = true;
  /// Honour Source Quench (collapse cwnd to one segment). A
  /// misbehaving sender turns this off: quenches are still counted,
  /// but the window never reacts — the enforcement experiments measure
  /// what the network can do about such a flow on its own.
  bool react_to_quench = true;

  void validate() const {
    if (mss <= 0) throw std::invalid_argument{"mss must be positive"};
    if (header < 0) throw std::invalid_argument{"header must be >= 0"};
    if (initial_cwnd_mss < 1.0)
      throw std::invalid_argument{"initial cwnd must be >= 1 mss"};
    if (initial_ssthresh < 2 * mss)
      throw std::invalid_argument{"ssthresh must be >= 2 mss"};
    if (rto_min > rto_max || rto_initial < rto_min || rto_initial > rto_max)
      throw std::invalid_argument{"rto bounds inconsistent"};
    if (cr_interval <= sim::Time::zero())
      throw std::invalid_argument{"cr_interval must be positive"};
  }
};

/// Greedy window-based sender base: always has data, sends mss-sized
/// segments. Policy hooks (private virtual, NVI style) define the
/// congestion-control flavour.
class TcpSender : public PacketSink {
 public:
  /// `emit` injects packets into the network (typically the access
  /// port's send()).
  using Emitter = std::function<void(Packet)>;

  TcpSender(sim::Simulator& sim, int flow, RenoConfig config, Emitter emit);

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Begins transmitting at absolute time `at`.
  void start(sim::Time at);

  /// Handles ACKs and Source Quench packets for this flow.
  void receive_packet(Packet packet) override;

  [[nodiscard]] int flow() const { return flow_; }
  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] std::int64_t ssthresh_bytes() const { return ssthresh_; }
  [[nodiscard]] std::int64_t bytes_acked() const { return snd_una_; }
  [[nodiscard]] sim::Rate current_rate() const { return cr_; }
  [[nodiscard]] sim::Time smoothed_rtt() const { return srtt_; }
  [[nodiscard]] sim::Time rto() const { return rto_; }
  [[nodiscard]] bool in_fast_recovery() const { return in_recovery_; }
  [[nodiscard]] std::uint64_t fast_retransmits() const { return fast_rtx_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t quenches_received() const { return quenches_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

  /// cwnd (bytes) over time — the classic sawtooth plots.
  [[nodiscard]] const sim::Trace& cwnd_trace() const { return cwnd_trace_; }

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  // Shared machinery available to policies.
  void set_cwnd(double bytes);
  void try_send();
  void send_segment(std::int64_t seq);
  [[nodiscard]] std::int64_t flight_size() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] const RenoConfig& config() const { return config_; }
  [[nodiscard]] double mss() const {
    return static_cast<double>(config_.mss);
  }
  /// Halved flight size floored at 2 mss — the standard ssthresh update.
  [[nodiscard]] std::int64_t half_flight() const;
  void set_ssthresh(std::int64_t bytes) { ssthresh_ = bytes; }
  void exit_recovery() { in_recovery_ = false; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] std::int64_t snd_una() const { return snd_una_; }
  [[nodiscard]] std::int64_t snd_nxt() const { return snd_nxt_; }

 private:
  // -------- policy hooks ------------------------------------------------
  /// New cumulative ACK outside recovery: grow (or not) the window.
  /// `efci_suppressed` is true when the EFCI rule forbids growth.
  virtual void on_ack_growth(bool efci_suppressed) = 0;
  /// Third duplicate ACK: adjust ssthresh/cwnd for the retransmission.
  /// Return true to enter fast recovery (Reno), false to restart in
  /// slow start (Tahoe).
  virtual bool on_fast_retransmit() = 0;
  /// First new ACK while in fast recovery (window deflation).
  virtual void on_recovery_exit() = 0;
  /// A clean RTT measurement arrived (Vegas tracks base RTT here).
  virtual void on_rtt_measurement(sim::Time rtt) { (void)rtt; }
  // -----------------------------------------------------------------------

  void on_ack(const Packet& packet);
  void on_new_ack(std::int64_t ack, bool efci);
  void on_dup_ack();
  void on_source_quench();
  void on_timeout();
  void sample_rtt(sim::Time m);
  void arm_rto_timer();
  void cancel_rto_timer();
  void on_cr_tick();

  sim::Simulator* sim_;
  int flow_;
  RenoConfig config_;
  Emitter emit_;

  // Sequence state (bytes; greedy source, data is unbounded).
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;

  // Congestion state shared by all flavours.
  double cwnd_;
  std::int64_t ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;

  // RTO machinery [Jac88].
  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  sim::Time rto_;
  sim::Time rto_backoff_base_;
  int backoff_ = 0;
  sim::EventId rto_timer_;
  bool rtt_seeded_ = false;

  // CR measurement.
  sim::Rate cr_ = sim::Rate::zero();
  std::int64_t cr_mark_ = 0;

  // Source-quench damping.
  sim::Time last_quench_reaction_ = sim::Time::ns(-1);

  bool started_ = false;
  std::uint64_t fast_rtx_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t quenches_ = 0;
  std::uint64_t sent_ = 0;
  sim::Trace cwnd_trace_;
};

}  // namespace phantom::tcp
