# Empty compiler generated dependencies file for phantom_atm.
# This may be replaced when dependencies are built.
