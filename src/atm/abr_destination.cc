#include "atm/abr_destination.h"

#include <algorithm>

namespace phantom::atm {

void AbrDestination::receive_cell(Cell cell) {
  switch (cell.kind) {
    case CellKind::kData: {
      VcState& st = per_vc_[cell.vc];
      st.efci_latched = cell.efci;
      ++st.data_cells;
      ++total_data_;
      const double delay_ms = (sim_->now() - cell.sent_at).milliseconds();
      st.delay_sum_ms += delay_ms;
      st.delay_max_ms = std::max(st.delay_max_ms, delay_ms);
      delays_.add(delay_ms);
      break;
    }
    case CellKind::kForwardRm: {
      VcState& st = per_vc_[cell.vc];
      Cell brm = cell;
      brm.kind = CellKind::kBackwardRm;
      brm.ci = cell.ci || st.efci_latched;
      ++rm_turned_;
      link_.deliver(brm);
      break;
    }
    case CellKind::kBackwardRm:
      // A destination never receives backward RM cells; ignore.
      break;
  }
}

}  // namespace phantom::atm
