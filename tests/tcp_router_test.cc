#include "tcp/router.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "tcp/packet_port.h"
#include "tcp/phantom_policies.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

class Collector final : public PacketSink {
 public:
  void receive_packet(Packet p) override { packets.push_back(p); }
  std::vector<Packet> packets;
};

struct RouterFixture {
  Simulator sim;
  Collector fwd, bwd;
  Router router{sim, "r0"};
  std::size_t fwd_port, bwd_port;

  explicit RouterFixture(std::unique_ptr<QueuePolicy> policy = nullptr) {
    fwd_port = router.add_port(Rate::mbps(10), 64,
                               PacketLink{sim, Time::zero(), fwd},
                               std::move(policy));
    bwd_port = router.add_port(Rate::mbps(10), 64,
                               PacketLink{sim, Time::zero(), bwd}, nullptr);
    router.route_flow(1, fwd_port, bwd_port);
  }
};

TEST(PacketPortTest, SerializesAtLinkRate) {
  Simulator sim;
  Collector sink;
  PacketPort port{sim, Rate::mbps(10), 64, PacketLink{sim, Time::zero(), sink},
                  nullptr};
  port.send(Packet::data(1, 0, 512));
  sim.run();
  // 552 bytes at 10 Mb/s = 441.6 us.
  EXPECT_NEAR(sim.now().microseconds(), 441.6, 0.1);
  EXPECT_EQ(port.packets_transmitted(), 1u);
}

TEST(PacketPortTest, OverflowDropsAndCounts) {
  Simulator sim;
  Collector sink;
  PacketPort port{sim, Rate::mbps(10), 2, PacketLink{sim, Time::zero(), sink},
                  nullptr};
  for (int i = 0; i < 5; ++i) port.send(Packet::data(1, 512 * i, 512));
  EXPECT_EQ(port.packets_dropped(), 3u);
  sim.run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(port.max_queue_length(), 2u);
}

TEST(PacketPortTest, DefaultPolicyIsDropTail) {
  Simulator sim;
  Collector sink;
  PacketPort port{sim, Rate::mbps(10), 4, PacketLink{sim, Time::zero(), sink},
                  nullptr};
  EXPECT_EQ(port.policy().name(), "droptail");
}

/// Drops every data packet; never touches anything else.
class DropAllDataPolicy final : public QueuePolicy {
 public:
  Verdict on_arrival(const Packet&, std::size_t, std::size_t) override {
    return Verdict::discard();
  }
  [[nodiscard]] std::string name() const override { return "drop-all"; }
};

TEST(PacketPortTest, AcksBypassThePolicy) {
  // A policy that drops every data packet must not touch ACKs.
  Simulator sim;
  Collector sink;
  PacketPort port{sim, Rate::mbps(10), 64, PacketLink{sim, Time::zero(), sink},
                  std::make_unique<DropAllDataPolicy>()};
  port.send(Packet::data(1, 0, 512));
  port.send(Packet::make_ack(1, 512));
  sim.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0].kind, PacketKind::kAck);
}

TEST(RouterTest, DataForwardAcksBackward) {
  RouterFixture f;
  f.router.receive_packet(Packet::data(1, 0, 512));
  f.router.receive_packet(Packet::make_ack(1, 512));
  f.sim.run();
  ASSERT_EQ(f.fwd.packets.size(), 1u);
  EXPECT_EQ(f.fwd.packets[0].kind, PacketKind::kData);
  ASSERT_EQ(f.bwd.packets.size(), 1u);
  EXPECT_EQ(f.bwd.packets[0].kind, PacketKind::kAck);
}

TEST(RouterTest, SourceQuenchRoutedBackward) {
  RouterFixture f;
  f.router.receive_packet(Packet::source_quench(1));
  f.sim.run();
  ASSERT_EQ(f.bwd.packets.size(), 1u);
  EXPECT_EQ(f.bwd.packets[0].kind, PacketKind::kSourceQuench);
}

TEST(RouterTest, PolicyQuenchRequestInjectedOntoBackwardPath) {
  Simulator sim;
  Collector fwd, bwd;
  Router router{sim, "r"};
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::kbps(1);  // everything over-rate
  auto policy = std::make_unique<SelectiveQuenchPolicy>(
      sim, Rate::mbps(10), 1.0, Time::ms(1), cfg);
  const auto fp = router.add_port(Rate::mbps(10), 64,
                                  PacketLink{sim, Time::zero(), fwd},
                                  std::move(policy));
  const auto bp = router.add_port(Rate::mbps(10), 64,
                                  PacketLink{sim, Time::zero(), bwd}, nullptr);
  router.route_flow(1, fp, bp);
  Packet data = Packet::data(1, 0, 512);
  data.cr = Rate::mbps(5);
  router.receive_packet(data);
  sim.run_until(Time::ms(5));  // the meter timer never drains; bound the run
  // The data packet was forwarded AND a quench went backward.
  EXPECT_EQ(fwd.packets.size(), 1u);
  ASSERT_EQ(bwd.packets.size(), 1u);
  EXPECT_EQ(bwd.packets[0].kind, PacketKind::kSourceQuench);
  EXPECT_EQ(bwd.packets[0].flow, 1);
  EXPECT_EQ(router.quenches_injected(), 1u);
}

TEST(RouterTest, UnroutedPacketsCounted) {
  RouterFixture f;
  f.router.receive_packet(Packet::data(99, 0, 512));
  EXPECT_EQ(f.router.unrouted_packets(), 1u);
}

TEST(RouterTest, DuplicateRouteRejected) {
  RouterFixture f;
  EXPECT_THROW(f.router.route_flow(1, f.fwd_port, f.bwd_port),
               std::invalid_argument);
}

TEST(RouterTest, BadPortIndexRejected) {
  RouterFixture f;
  EXPECT_THROW(f.router.route_flow(2, 9, 0), std::out_of_range);
}

}  // namespace
}  // namespace phantom::tcp
