#include "sim/time.h"

#include <gtest/gtest.h>

namespace phantom::sim {
namespace {

TEST(TimeTest, DefaultIsZero) {
  EXPECT_TRUE(Time{}.is_zero());
  EXPECT_EQ(Time{}.nanoseconds(), 0);
}

TEST(TimeTest, FactoryUnitsAgree) {
  EXPECT_EQ(Time::us(1), Time::ns(1'000));
  EXPECT_EQ(Time::ms(1), Time::us(1'000));
  EXPECT_EQ(Time::sec(1), Time::ms(1'000));
  EXPECT_EQ(Time::sec(3).nanoseconds(), 3'000'000'000LL);
}

TEST(TimeTest, FromSecondsRoundsToNearestNs) {
  EXPECT_EQ(Time::from_seconds(1e-9), Time::ns(1));
  EXPECT_EQ(Time::from_seconds(1.4e-9), Time::ns(1));
  EXPECT_EQ(Time::from_seconds(1.6e-9), Time::ns(2));
  EXPECT_EQ(Time::from_seconds(-1.6e-9), Time::ns(-2));
  EXPECT_EQ(Time::from_seconds(0.00325), Time::us(3250));
}

TEST(TimeTest, ArithmeticIsExact) {
  const Time a = Time::ms(3);
  const Time b = Time::us(250);
  EXPECT_EQ((a + b).nanoseconds(), 3'250'000);
  EXPECT_EQ((a - b).nanoseconds(), 2'750'000);
  EXPECT_EQ((a * 4).nanoseconds(), 12'000'000);
  EXPECT_EQ((a / 3).nanoseconds(), 1'000'000);
  EXPECT_DOUBLE_EQ(a / b, 12.0);
}

TEST(TimeTest, CompoundAssignment) {
  Time t = Time::ms(1);
  t += Time::ms(2);
  EXPECT_EQ(t, Time::ms(3));
  t -= Time::us(500);
  EXPECT_EQ(t, Time::us(2500));
}

TEST(TimeTest, ComparisonIsTotalOrder) {
  EXPECT_LT(Time::us(999), Time::ms(1));
  EXPECT_GT(Time::sec(1), Time::ms(999));
  EXPECT_LE(Time::ms(5), Time::ms(5));
  EXPECT_TRUE(Time::ns(-1).is_negative());
  EXPECT_FALSE(Time::zero().is_negative());
}

TEST(TimeTest, SecondsConversions) {
  const Time t = Time::ms(1500);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.milliseconds(), 1500.0);
  EXPECT_DOUBLE_EQ(t.microseconds(), 1.5e6);
}

TEST(TimeTest, ScaleByDouble) {
  EXPECT_EQ(Time::ms(10) * 0.5, Time::ms(5));
  EXPECT_EQ(Time::ms(10) * 2.0, Time::ms(20));
}

TEST(TimeTest, ToStringPicksUnit) {
  EXPECT_EQ(Time::ns(5).to_string(), "5ns");
  EXPECT_EQ(Time::us(5).to_string(), "5us");
  EXPECT_EQ(Time::ms(5).to_string(), "5ms");
  EXPECT_EQ(Time::sec(5).to_string(), "5s");
  EXPECT_EQ(Time::us(3250).to_string(), "3.25ms");
}

TEST(TimeTest, MaxActsAsInfinity) {
  EXPECT_GT(Time::max(), Time::sec(1'000'000));
}

TEST(RateTest, FactoryUnitsAgree) {
  EXPECT_DOUBLE_EQ(Rate::mbps(150).bits_per_sec(), 150e6);
  EXPECT_DOUBLE_EQ(Rate::kbps(4.24).bits_per_sec(), 4240.0);
  EXPECT_DOUBLE_EQ(Rate::bps(424).cells_per_second(), 1.0);
}

TEST(RateTest, CellConversionUses424BitCells) {
  // The paper: TCR = 10 cells/s = 4.24 Kb/s.
  EXPECT_DOUBLE_EQ(Rate::cells_per_sec(10).bits_per_sec(), 4240.0);
  EXPECT_NEAR(Rate::mbps(150).cells_per_second(), 353773.58, 0.01);
}

TEST(RateTest, TransmissionTime) {
  // One 424-bit cell at 150 Mb/s takes ~2.8267 us.
  const Time cell = Rate::mbps(150).transmission_time(424);
  EXPECT_NEAR(cell.microseconds(), 2.8267, 1e-3);
  // 512-byte packet at 10 Mb/s: 409.6 us.
  EXPECT_EQ(Rate::mbps(10).transmission_time(512 * 8), Time::ns(409'600));
}

TEST(RateTest, Arithmetic) {
  const Rate a = Rate::mbps(100);
  const Rate b = Rate::mbps(50);
  EXPECT_EQ(a + b, Rate::mbps(150));
  EXPECT_EQ(a - b, b);
  EXPECT_EQ(a * 0.5, b);
  EXPECT_EQ(a / 2.0, b);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(RateTest, BitsIn) {
  EXPECT_DOUBLE_EQ(Rate::mbps(150).bits_in(Time::ms(1)), 150e3);
}

TEST(RateTest, BytesPerSec) {
  EXPECT_DOUBLE_EQ(Rate::bps(800).bytes_per_sec(), 100.0);
}

TEST(RateTest, ToString) {
  EXPECT_EQ(Rate::mbps(150).to_string(), "150Mb/s");
  EXPECT_EQ(Rate::kbps(4.24).to_string(), "4.24Kb/s");
  EXPECT_EQ(Rate::bps(10).to_string(), "10b/s");
}

}  // namespace
}  // namespace phantom::sim
