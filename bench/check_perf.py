#!/usr/bin/env python3
"""Kernel perf gate: compare a fresh bench_micro run against the
checked-in baseline (BENCH_kernel.json) and fail on regression.

Usage:
    bench_micro --benchmark_min_time=0.05 --json-out=current.json
    python3 bench/check_perf.py --baseline BENCH_kernel.json \
        --current current.json [--tolerance-pct 25] [--update]

The gate compares items_per_sec per benchmark; a benchmark more than
--tolerance-pct slower than its baseline fails the check. A benchmark
in the current run with no key in the baseline also fails the gate —
an unbaselined benchmark is a comparison that silently never happens,
so adding one means refreshing the baseline (--update) in the same
commit. A baseline entry missing from the current run is reported but
does not fail (the run may be filtered). --update rewrites the
baseline's measurements from the current run (preserving everything
else in the file) instead of checking.

The default tolerance is deliberately loose (25%): shared CI runners
jitter by 10-15% run to run, and this gate exists to catch structural
regressions — an accidental O(n) scan in the hot path, a reintroduced
per-event allocation — not single-digit drift. If the gate fires on a
commit that plausibly changed kernel-adjacent code, believe it. If the
hardware baseline itself moved (new runner generation), refresh with
--update in a dedicated commit and say so in the message.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_kernel.json")
    ap.add_argument("--current", required=True,
                    help="fresh phantom-bench-micro-v1 JSON")
    ap.add_argument("--tolerance-pct", type=float, default=None,
                    help="allowed slowdown in percent "
                         "(default: the baseline file's tolerance_pct)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's measurements from "
                         "--current instead of checking")
    args = ap.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if current.get("schema") != "phantom-bench-micro-v1":
        sys.exit(f"unexpected schema in {args.current}: "
                 f"{current.get('schema')!r}")
    current_marks = current["benchmarks"]

    if args.update:
        baseline["benchmarks"] = {
            name: round(row["items_per_sec"], 1)
            for name, row in sorted(current_marks.items())
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"updated {args.baseline} from {args.current}")
        return

    tolerance = (args.tolerance_pct if args.tolerance_pct is not None
                 else baseline.get("tolerance_pct", 25.0))
    failures = []
    for name, base_ips in sorted(baseline["benchmarks"].items()):
        row = current_marks.get(name)
        if row is None:
            print(f"  ?  {name}: in baseline but not in current run")
            continue
        ips = row["items_per_sec"]
        delta_pct = 100.0 * (ips - base_ips) / base_ips
        verdict = "ok"
        if delta_pct < -tolerance:
            verdict = "REGRESSION"
            failures.append(name)
        mark = "!!" if verdict != "ok" else "ok"
        print(f"  {mark} {name}: {ips:.3e} items/s vs baseline "
              f"{base_ips:.3e} ({delta_pct:+.1f}%)"
              f"{' ' + verdict if verdict != 'ok' else ''}")
    unbaselined = sorted(set(current_marks) - set(baseline["benchmarks"]))
    for name in unbaselined:
        print(f"  !! {name}: no baseline key in {args.baseline}")

    if failures:
        sys.exit(f"perf gate FAILED: {', '.join(failures)} regressed "
                 f"more than {tolerance:.0f}% vs {args.baseline}")
    if unbaselined:
        sys.exit(f"perf gate FAILED: {', '.join(unbaselined)} missing "
                 f"from {args.baseline} — refresh it with --update")
    print(f"perf gate passed (tolerance {tolerance:.0f}%)")


if __name__ == "__main__":
    main()
