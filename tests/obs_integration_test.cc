// Full-stack observability: the event log and registry wired through a
// running network — coverage, determinism, and the allocation-free
// hot-path contract.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exp/factories.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Time;

// Tests asserting on traced content skip when the layer is compiled
// out (-DPHANTOM_DISABLE_OBS=ON turns record() into a no-op).
#define SKIP_IF_OBS_DISABLED()                                            \
  if (!obs::kObsEnabled)                                                  \
  GTEST_SKIP() << "observability compiled out (PHANTOM_DISABLE_OBS=ON)"

/// Single-bottleneck stack with the event log attached: the paper's
/// base configuration, small enough for fast tests.
struct Rig {
  explicit Rig(std::uint64_t seed, std::size_t log_capacity = 1 << 14)
      : sim{seed},
        net{sim, exp::make_factory(exp::Algorithm::kPhantom)},
        log{log_capacity} {
    const auto sw = net.add_switch("bottleneck");
    const auto d = net.add_destination(sw, {.rate = Rate::mbps(40)});
    for (int i = 0; i < 3; ++i) net.add_session(sw, {}, d);
    net.attach_event_log(&log);
  }

  void run(Time horizon = Time::ms(120)) {
    net.start_all(Time::zero(), Time::zero());
    sim.run_until(horizon);
  }

  sim::Simulator sim;
  topo::AbrNetwork net;
  obs::EventLog log;
};

std::set<std::string> kinds_in(const std::string& jsonl) {
  std::set<std::string> kinds;
  std::size_t pos = 0;
  const std::string key = "\"kind\":\"";
  while ((pos = jsonl.find(key, pos)) != std::string::npos) {
    pos += key.size();
    kinds.insert(jsonl.substr(pos, jsonl.find('"', pos) - pos));
  }
  return kinds;
}

TEST(ObsIntegrationTest, FullStackRecordsEveryControlLoopCategory) {
  SKIP_IF_OBS_DISABLED();
  Rig rig{1};
  rig.run();
  const auto kinds = kinds_in(rig.log.to_jsonl());
  EXPECT_TRUE(kinds.count("cell_enqueue")) << rig.log.recorded();
  EXPECT_TRUE(kinds.count("rm_forward"));
  EXPECT_TRUE(kinds.count("rm_backward"));
  EXPECT_TRUE(kinds.count("rate_update"));
  EXPECT_TRUE(kinds.count("source_rate"));
}

TEST(ObsIntegrationTest, SameSeedProducesByteIdenticalJsonl) {
  SKIP_IF_OBS_DISABLED();
  Rig a{7}, b{7};
  a.run();
  b.run();
  EXPECT_GT(a.log.recorded(), 0u);
  EXPECT_EQ(a.log.to_jsonl(), b.log.to_jsonl());
}

TEST(ObsIntegrationTest, TracingAddsNoInlineCallbackHeapFallbacks) {
  // The kernel's inline-callback budget is the allocation-free contract
  // for the hot path; attaching the event log must not push any model's
  // capture over it.
  SKIP_IF_OBS_DISABLED();
  const auto before = sim::EventQueue::Callback::heap_fallbacks();
  Rig rig{3};
  rig.run();
  EXPECT_GT(rig.log.recorded(), 0u);
  EXPECT_EQ(sim::EventQueue::Callback::heap_fallbacks(), before);
}

TEST(ObsIntegrationTest, FaultLifecycleIsTraced) {
  SKIP_IF_OBS_DISABLED();
  Rig rig{5};
  fault::FaultInjector injector{rig.sim, rig.net};
  injector.set_event_log(&rig.log);
  fault::FaultPlan plan;
  plan.outage(fault::dest(0), Time::ms(40), Time::ms(10));
  injector.apply(plan);
  rig.run();
  obs::EventLog::Filter faults;
  faults.category = obs::Category::kFault;
  const auto lines = rig.log.tail_jsonl(10, faults);
  ASSERT_EQ(lines.size(), 3u);  // armed, fired, recovered
  EXPECT_NE(lines[0].find("fault_armed"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("fault_fired"), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("fault_recovered"), std::string::npos) << lines[2];
}

TEST(ObsIntegrationTest, RegistryCoversPortsControllersAndSources) {
  Rig rig{1};
  rig.run();
  obs::Registry reg;
  rig.net.register_metrics(reg);
  std::set<std::string> names;
  for (const obs::MetricDef* d : reg.defs()) names.insert(d->name);
  EXPECT_TRUE(names.count("bottleneck.port0.cells_transmitted"));
  EXPECT_TRUE(names.count("bottleneck.port0.queue_cells"));
  EXPECT_TRUE(names.count("bottleneck.port0.ctl.fair_share_mbps"));
  EXPECT_TRUE(names.count("bottleneck.port0.ctl.macr_mbps"));
  EXPECT_TRUE(names.count("bottleneck.active_vcs"));
  EXPECT_TRUE(names.count("session0.acr_mbps"));
  EXPECT_TRUE(names.count("session2.data_cells_sent"));
  // Snapshots carry live simulation state, not zeros.
  const std::string snap = reg.snapshot_json(rig.sim.now());
  EXPECT_NE(snap.find("\"name\":\"session0.data_cells_sent\",\"id\":"
                      "\"source.data_cells_sent\""),
            std::string::npos);
}

TEST(ObsIntegrationTest, DuplicateSwitchNamesDeduplicateByIndex) {
  sim::Simulator sim{1};
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto s0 = net.add_switch("sw");
  net.add_switch("sw");
  const auto d = net.add_destination(s0);
  net.add_session(s0, {}, d);
  obs::Registry reg;
  net.register_metrics(reg);  // must not throw duplicate-name
  std::set<std::string> names;
  for (const obs::MetricDef* def : reg.defs()) names.insert(def->name);
  EXPECT_TRUE(names.count("sw.active_vcs"));
  EXPECT_TRUE(names.count("sw#1.active_vcs"));
}

TEST(ObsIntegrationTest, SessionsAddedAfterAttachAreTraced) {
  // A VC-storm fault adds sessions mid-run; their sources must inherit
  // the event log.
  SKIP_IF_OBS_DISABLED();
  Rig rig{2};
  const auto shape = rig.net.session_shape(0);
  rig.net.start_all(Time::zero(), Time::zero());
  rig.sim.run_until(Time::ms(20));
  const auto outcome =
      rig.net.try_add_session(shape.ingress, shape.path, shape.dest);
  ASSERT_TRUE(outcome.admitted);
  rig.net.source(outcome.session).start(rig.sim.now());
  rig.sim.run_until(Time::ms(120));
  obs::EventLog::Filter f;
  f.vc = rig.net.session_vc(outcome.session);
  f.category = obs::Category::kController;
  EXPECT_FALSE(rig.log.tail_jsonl(5, f).empty());
}

}  // namespace
}  // namespace phantom
