// rm_blackhole faults through the chaos pipeline: opt-in generation,
// grammar round-trips, seed stability against older option sets,
// plan-aware triage, checkpoint round-trips, and an isolated smoke
// search that must finish with zero process crashes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "chaos/generator.h"
#include "chaos/search.h"
#include "chaos/supervisor.h"
#include "chaos/triage.h"
#include "fault/fault_injector.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace phantom {
namespace {

using fault::FaultEvent;
using sim::Time;

chaos::ScenarioSpec spec_of(int sessions = 4) {
  chaos::ScenarioSpec spec;
  spec.sessions = sessions;
  return spec;
}

chaos::GenOptions with_blackhole() {
  chaos::GenOptions opt;
  opt.rm_blackhole = true;
  return opt;
}

TEST(BlackholeGeneratorTest, DefaultOptionsNeverGenerateBlackholes) {
  // Opt-in, so seeds (and checkpoints) recorded before the fault kind
  // existed keep generating identical plans.
  sim::Rng rng{2026};
  for (int i = 0; i < 50; ++i) {
    const auto plan = chaos::generate_plan(rng, spec_of());
    for (const auto& e : plan.events) {
      EXPECT_NE(e.kind, FaultEvent::Kind::kRmBlackhole);
    }
  }
}

TEST(BlackholeGeneratorTest, MisbehaveOnlySeedsAreUnchanged) {
  // The draw-range widening must not disturb the rng stream of option
  // sets that predate rm_blackhole: misbehave-only generation is
  // byte-identical with the new flag merely *available*.
  sim::Rng a{314};
  sim::Rng b{314};
  chaos::GenOptions misbehave_only;
  misbehave_only.misbehave = true;
  for (int i = 0; i < 30; ++i) {
    const auto plan = chaos::generate_plan(a, spec_of(), misbehave_only);
    chaos::GenOptions same = misbehave_only;
    same.rm_blackhole = false;  // explicit: the default
    EXPECT_EQ(plan, chaos::generate_plan(b, spec_of(), same));
  }
}

TEST(BlackholeGeneratorTest, OptInEventuallySamplesBlackholesAndRoundTrips) {
  sim::Rng rng{2026};
  int blackholes = 0;
  for (int i = 0; i < 50; ++i) {
    const auto plan = chaos::generate_plan(rng, spec_of(), with_blackhole());
    EXPECT_EQ(fault::FaultPlan::parse(plan.to_spec()), plan) << plan.to_spec();
    for (const auto& e : plan.events) {
      blackholes += e.kind == FaultEvent::Kind::kRmBlackhole;
      if (e.kind == FaultEvent::Kind::kRmBlackhole) {
        // Recovery is paired into the event: a bounded window with a
        // real drop probability, never a permanent blackhole.
        EXPECT_GT(e.duration, Time::zero()) << plan.to_spec();
        EXPECT_GT(e.rm_loss, 0.0) << plan.to_spec();
        EXPECT_LE(e.rm_loss, 1.0) << plan.to_spec();
      }
    }
  }
  EXPECT_GT(blackholes, 5);  // 1 kind in 7: ~dozens over 50 plans
}

TEST(BlackholeGeneratorTest, BlackholePlansApplyCleanly) {
  sim::Rng rng{11};
  for (int i = 0; i < 20; ++i) {
    const auto plan = chaos::generate_plan(rng, spec_of(), with_blackhole());
    sim::Simulator sim{1};
    const auto spec = spec_of();
    topo::AbrNetwork net{sim, spec.factory()};
    chaos::build_topology(spec, net);
    fault::FaultInjector injector{sim, net};
    EXPECT_NO_THROW(injector.apply(plan)) << plan.to_spec();
  }
}

TEST(BlackholeGeneratorTest, SameSeedSamePlanWithBlackholeOn) {
  sim::Rng a{42};
  sim::Rng b{42};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(chaos::generate_plan(a, spec_of(), with_blackhole()),
              chaos::generate_plan(b, spec_of(), with_blackhole()));
  }
}

TEST(BlackholeGrammarTest, SpecRoundTripsWithAndWithoutProbability) {
  // Full drop probability serializes without the optional field (the
  // shrinker's lattice steps through the short form).
  fault::FaultPlan total;
  total.rm_blackhole(fault::dest(0), Time::ms(100), Time::ms(50));
  EXPECT_EQ(total.to_spec(), "rm_blackhole:dest0:100:50");
  EXPECT_EQ(fault::FaultPlan::parse(total.to_spec()), total);

  fault::FaultPlan partial;
  partial.rm_blackhole(fault::trunk(1), Time::ms(100), Time::ms(50), 0.75);
  EXPECT_EQ(partial.to_spec(), "rm_blackhole:trunk1:100:50:0.75");
  EXPECT_EQ(fault::FaultPlan::parse(partial.to_spec()), partial);
}

TEST(BlackholeGrammarTest, SessionTargetIsRejectedAtValidation) {
  // Sessions have no feedback-direction link of their own; the parser
  // accepts only trunk/dest targets and the injector enforces it.
  sim::Simulator sim{1};
  const auto spec = spec_of();
  topo::AbrNetwork net{sim, spec.factory()};
  chaos::build_topology(spec, net);
  fault::FaultInjector injector{sim, net};
  fault::FaultPlan plan;
  plan.rm_blackhole(fault::session(0), Time::ms(100), Time::ms(50));
  EXPECT_THROW(injector.apply(plan), std::invalid_argument);
}

TEST(BlackholeTriageTest, GroupsByBlackholeCountAfterMisbehave) {
  fault::FaultPlan plan;
  plan.rm_blackhole(fault::dest(0), Time::ms(200), Time::ms(80));
  chaos::TrialResult a;
  a.verdict = chaos::Verdict::kInvariant;
  a.detail = "stale-rate: session 0 above envelope";
  chaos::TrialResult b;
  b.verdict = chaos::Verdict::kInvariant;
  b.detail = "stale-rate: session 2 above envelope";
  EXPECT_EQ(chaos::failure_fingerprint(a, &plan),
            chaos::failure_fingerprint(b, &plan));
  EXPECT_EQ(chaos::failure_fingerprint(a, &plan), "invariant|rm_blackhole|1");

  fault::FaultPlan two = plan;
  two.rm_blackhole(fault::trunk(0), Time::ms(300), Time::ms(40), 0.5);
  EXPECT_EQ(chaos::failure_fingerprint(a, &two), "invariant|rm_blackhole|2");

  // Defection dominates: a plan with both keeps its misbehave class, so
  // fingerprints recorded before this PR are unchanged.
  fault::FaultPlan both = plan;
  both.misbehave(1, Time::ms(220), fault::MisbehaveMode::kGreedy)
      .comply(1, Time::ms(320));
  EXPECT_EQ(chaos::failure_fingerprint(a, &both), "invariant|misbehave|1");

  // Blackhole-free plans fall back to the plain fingerprint.
  fault::FaultPlan benign;
  benign.restart(fault::dest(0), Time::ms(100));
  EXPECT_EQ(chaos::failure_fingerprint(a, &benign),
            chaos::failure_fingerprint(a));

  // And the tuple-based grouping folds a + b into one class.
  const std::vector<
      std::tuple<int, const chaos::TrialResult*, const fault::FaultPlan*>>
      failing{{0, &a, &plan}, {3, &b, &plan}};
  const auto classes = chaos::triage_failures(failing);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].trials, (std::vector<int>{0, 3}));
}

TEST(BlackholeCheckpointTest, RowsRoundTripBlackholeSpecs) {
  fault::FaultPlan plan;
  plan.rm_blackhole(fault::dest(0), Time::ms(210), Time::ms(90), 0.85);
  chaos::TrialResult r;
  r.verdict = chaos::Verdict::kNoReconverge;
  r.detail = "share never returned";
  const std::string row = chaos::checkpoint_row(7, plan.to_spec(), r);
  std::string plan_spec;
  const auto parsed = chaos::parse_checkpoint_row(row, &plan_spec);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, 7);
  EXPECT_EQ(parsed->second.verdict, chaos::Verdict::kNoReconverge);
  EXPECT_EQ(fault::FaultPlan::parse(plan_spec), plan);
}

TEST(BlackholeSearchTest, IsolatedSmokeHasZeroProcessCrashes) {
  // The chaos acceptance for this PR: a blackhole-enabled search
  // completes under process isolation without a single child dying —
  // feedback starvation stresses the decay/ADTF and invariant code
  // paths, it must not crash them. Deterministic: same options,
  // byte-identical report.
  chaos::ScenarioSpec spec;
  spec.rate_mbps = 40.0;
  spec.horizon = Time::ms(600);
  chaos::SearchOptions opt;
  opt.trials = 6;
  opt.seed = 5;
  opt.isolate = true;
  opt.jobs = 2;
  opt.shrink = true;
  opt.gen.rm_blackhole = true;
  const auto report = chaos::run_search(spec, opt);
  EXPECT_EQ(report.trials_run, 6);
  for (const auto& f : report.failures) {
    EXPECT_NE(f.result.verdict, chaos::Verdict::kProcessCrash)
        << f.result.crash_signal << ": " << f.result.stderr_tail;
    EXPECT_EQ(f.shrunk_result.verdict, f.result.verdict);
  }
  const auto again = chaos::run_search(spec, opt);
  EXPECT_EQ(report.to_json(), again.to_json());
}

}  // namespace
}  // namespace phantom
