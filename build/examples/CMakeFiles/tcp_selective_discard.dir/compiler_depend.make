# Empty compiler generated dependencies file for tcp_selective_discard.
# This may be replaced when dependencies are built.
