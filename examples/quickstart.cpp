// Quickstart: the Phantom algorithm on a single bottleneck link.
//
// Three greedy ABR sessions share one 150 Mb/s link whose output port
// runs a PhantomController. The controller's MACR (the imaginary
// session's rate) converges to u*C/(n+1) = 0.95*150/4 ≈ 35.6 Mb/s, and
// every session's goodput converges to the same value — the max-min
// fair share with one phantom session added.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "exp/factories.h"
#include "exp/probes.h"
#include "exp/report.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

int main() {
  using namespace phantom;
  using sim::Rate;
  using sim::Time;

  sim::Simulator sim;

  // 1. Build the network: n sources -> switch -> destination.
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("bottleneck");
  const auto dest = net.add_destination(sw, {});  // 150 Mb/s, controlled
  constexpr int kSessions = 3;
  for (int i = 0; i < kSessions; ++i) net.add_session(sw, {}, dest);

  // 2. Instrument: sample the queue and run a goodput probe.
  exp::QueueSampler queue{sim, net.dest_port(dest)};
  exp::GoodputProbe goodput{sim, net};

  // 3. Run: everything starts at t = 0; measure over the last 100 ms.
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  goodput.mark();
  sim.run_until(Time::ms(400));

  // 4. Report.
  exp::print_header("quickstart", "3 greedy sessions, one 150 Mb/s link");
  const auto& controller = dynamic_cast<const core::PhantomController&>(
      net.dest_port(dest).controller());
  exp::print_series("MACR (Mb/s)", controller.macr_trace().samples(), 1e-6, 15);
  exp::print_series("queue (cells)", queue.trace().samples(), 1.0, 15);

  const auto rates = goodput.rates_mbps();
  exp::Table table{{"session", "goodput (Mb/s)", "ideal u*C/(n+1)"}};
  for (std::size_t s = 0; s < rates.size(); ++s) {
    table.add_row({std::to_string(s), exp::Table::num(rates[s]),
                   exp::Table::num(0.95 * 150 / (kSessions + 1))});
  }
  table.print();
  std::printf("\nJain fairness index: %.4f\n", stats::jain_index(rates));
  std::printf("max queue: %zu cells, drops: %llu\n",
              net.dest_port(dest).max_queue_length(),
              static_cast<unsigned long long>(
                  net.dest_port(dest).cells_dropped()));
  return 0;
}
