#include "atm/abr_source.h"

#include <algorithm>
#include <cassert>

namespace phantom::atm {

AbrSource::AbrSource(sim::Simulator& sim, int vc, AbrParams params,
                     Link to_network)
    : sim_{&sim},
      vc_{vc},
      params_{params},
      link_{to_network},
      acr_{params.icr},
      acr_trace_{"acr.vc" + std::to_string(vc)} {
  params_.validate();
}

void AbrSource::start(sim::Time at) {
  assert(!started_ && "start() may only be called once");
  started_ = true;
  sim_->schedule_at(at, [this] {
    active_ = true;
    set_acr(acr_);  // record the initial rate
    if (!sending_) {
      sending_ = true;
      send_next_cell();
    }
    on_trm_check();
  });
}

void AbrSource::emit_forward_rm() {
  Cell cell = Cell::forward_rm(vc_, effective_rate(), params_.pcr);
  cell.sent_at = sim_->now();
  ++rm_sent_;
  last_rm_sent_ = sim_->now();
  link_.deliver(cell);
}

void AbrSource::on_trm_check() {
  // Out-of-rate FRM: keeps the feedback loop alive when the in-rate RM
  // spacing (Nrm cells at the current ACR) exceeds Trm — without it a
  // beaten-down source could wait seconds for permission to recover.
  if (active_ && sim_->now() - last_rm_sent_ >= params_.trm) {
    emit_forward_rm();
  }
  sim_->schedule(params_.trm / 2, [this] { on_trm_check(); });
}

void AbrSource::set_active(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) {
    // The pacing chain notices `active_ == false` and stops; bump the
    // epoch so a stale event can never resume a deactivated source.
    ++epoch_;
    sending_ = false;
    return;
  }
  // Use-it-or-lose-it: restarting after a long idle period resets to ICR
  // so a stale (large) ACR cannot dump a burst into the network.
  const sim::Time idle = sim_->now() - last_send_;
  const sim::Time timeout =
      acr_.transmission_time(kCellBits * params_.nrm) * params_.tof;
  if (idle > timeout && acr_ > params_.icr) {
    set_acr(params_.icr);
  }
  if (started_ && !sending_) {
    sending_ = true;
    send_next_cell();
  }
}

void AbrSource::send_next_cell() {
  if (!active_) {
    sending_ = false;
    return;
  }
  // First cell of every Nrm-cell block is the in-rate forward RM cell,
  // so the control loop starts with the very first transmission. CCR
  // carries the rate cells actually leave at.
  const sim::Rate effective = effective_rate();
  Cell cell;
  if (cells_since_rm_ == 0) {
    cell = Cell::forward_rm(vc_, effective, params_.pcr);
    ++rm_sent_;
    last_rm_sent_ = sim_->now();
  } else {
    cell = Cell::data(vc_);
    ++data_sent_;
  }
  cells_since_rm_ = (cells_since_rm_ + 1) % static_cast<std::uint64_t>(params_.nrm);
  cell.sent_at = sim_->now();
  last_send_ = sim_->now();
  link_.deliver(cell);

  const std::uint64_t epoch = epoch_;
  sim_->schedule(effective.transmission_time(kCellBits), [this, epoch] {
    if (epoch != epoch_) return;  // source was deactivated meanwhile
    send_next_cell();
  });
}

void AbrSource::set_demand(sim::Rate demand) {
  assert(demand.bits_per_sec() > 0.0 && "demand must be positive");
  demand_ = demand;
}

void AbrSource::receive_cell(Cell cell) {
  if (cell.kind != CellKind::kBackwardRm || cell.vc != vc_) return;
  ++brm_received_;
  apply_backward_rm(cell);
}

void AbrSource::apply_backward_rm(const Cell& cell) {
  sim::Rate next = acr_;
  if (cell.ci) {
    next = next * (1.0 - static_cast<double>(params_.nrm) / params_.rdf);
  } else {
    next = next + params_.air_nrm;
  }
  next = std::min(next, cell.er);
  next = std::min(next, params_.pcr);
  next = std::max(next, params_.mcr);
  next = std::max(next, params_.tcr);  // keep probing even when beaten down
  set_acr(next);
}

void AbrSource::set_acr(sim::Rate r) {
  acr_ = r;
  acr_trace_.record(sim_->now(), r.bits_per_sec());
}

}  // namespace phantom::atm
