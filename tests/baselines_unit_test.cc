// Unit tests of the three ATM Forum baseline controllers (§5).
#include <gtest/gtest.h>

#include "baselines/aprc.h"
#include "baselines/capc.h"
#include "baselines/eprca.h"
#include "sim/simulator.h"

namespace phantom::baselines {
namespace {

using atm::Cell;
using atm::CellKind;
using sim::Rate;
using sim::Simulator;
using sim::Time;

Cell frm(double ccr_mbps) {
  return Cell::forward_rm(1, Rate::mbps(ccr_mbps), Rate::mbps(150));
}

Cell brm(double ccr_mbps, double er_mbps = 150.0) {
  Cell c = Cell::forward_rm(1, Rate::mbps(ccr_mbps), Rate::mbps(er_mbps));
  c.kind = CellKind::kBackwardRm;
  return c;
}

// ---------------------------------------------------------------- EPRCA

TEST(EprcaTest, MacrIsExponentialAverageOfCcr) {
  Simulator sim;
  EprcaController ctl{sim, Rate::mbps(150)};
  Cell f = frm(40.0);
  ctl.on_forward_rm(f, 0);
  // 8.5 + (40 - 8.5)/16 = 10.46875
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 10.46875, 1e-9);
  for (int i = 0; i < 500; ++i) ctl.on_forward_rm(f, 0);
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 40.0, 0.01);
}

TEST(EprcaTest, UncongestedBrmUntouched) {
  Simulator sim;
  EprcaController ctl{sim, Rate::mbps(150)};
  Cell b = brm(100.0);
  ctl.on_backward_rm(b, /*queue=*/50);  // below QT=100
  EXPECT_DOUBLE_EQ(b.er.mbits_per_sec(), 150.0);
  EXPECT_FALSE(b.ci);
}

TEST(EprcaTest, CongestedReducesOnlyFastSessions) {
  Simulator sim;
  EprcaController ctl{sim, Rate::mbps(150)};  // MACR = 8.5
  Cell fast = brm(100.0);
  ctl.on_backward_rm(fast, /*queue=*/200);  // QT < 200 < DQT
  EXPECT_NEAR(fast.er.mbits_per_sec(), 8.5 * 15.0 / 16, 1e-9);
  EXPECT_FALSE(fast.ci);
  Cell slow = brm(5.0);  // below DPF * MACR
  ctl.on_backward_rm(slow, 200);
  EXPECT_DOUBLE_EQ(slow.er.mbits_per_sec(), 150.0);
}

TEST(EprcaTest, VeryCongestedBeatsDownEveryone) {
  Simulator sim;
  EprcaController ctl{sim, Rate::mbps(150)};
  Cell slow = brm(0.1);  // far below MACR, still hit
  ctl.on_backward_rm(slow, /*queue=*/600);
  EXPECT_NEAR(slow.er.mbits_per_sec(), 8.5 / 4, 1e-9);
  EXPECT_TRUE(slow.ci);
}

TEST(EprcaTest, ErNeverIncreased) {
  Simulator sim;
  EprcaController ctl{sim, Rate::mbps(150)};
  Cell b = brm(100.0, /*er=*/1.0);
  ctl.on_backward_rm(b, 600);
  EXPECT_DOUBLE_EQ(b.er.mbits_per_sec(), 1.0);
}

TEST(EprcaTest, ConfigValidation) {
  Simulator sim;
  EprcaConfig bad;
  bad.very_congested_threshold = 50;  // below QT
  EXPECT_THROW((EprcaController{sim, Rate::mbps(150), bad}),
               std::invalid_argument);
  bad = {};
  bad.averaging = 0.0;
  EXPECT_THROW((EprcaController{sim, Rate::mbps(150), bad}),
               std::invalid_argument);
}

TEST(EprcaTest, MacrClampedToLinkRate) {
  Simulator sim;
  EprcaController ctl{sim, Rate::mbps(150)};
  Cell f = frm(1000.0);
  for (int i = 0; i < 200; ++i) ctl.on_forward_rm(f, 0);
  EXPECT_LE(ctl.fair_share().mbits_per_sec(), 150.0 + 1e-9);
}

// ----------------------------------------------------------------- APRC

TEST(AprcTest, CongestionFollowsQueueGrowth) {
  Simulator sim;
  AprcController ctl{sim, Rate::mbps(150)};
  EXPECT_FALSE(ctl.congested());
  // Queue grows between two ticks.
  ctl.on_cell_accepted(Cell::data(1), 10);
  sim.run_until(Time::ms(1));
  EXPECT_TRUE(ctl.congested());
  // Queue static: not congested.
  sim.run_until(Time::ms(2));
  EXPECT_FALSE(ctl.congested());
  // Queue shrinks: not congested.
  ctl.on_cell_accepted(Cell::data(1), 5);
  sim.run_until(Time::ms(3));
  EXPECT_FALSE(ctl.congested());
}

TEST(AprcTest, CongestedReducesFastSessionsEvenWithShortQueue) {
  // The "intelligent" part: a short but *growing* queue is congestion.
  Simulator sim;
  AprcController ctl{sim, Rate::mbps(150)};
  ctl.on_cell_accepted(Cell::data(1), 8);  // tiny queue, but growing
  sim.run_until(Time::ms(1));
  ASSERT_TRUE(ctl.congested());
  Cell fast = brm(100.0);
  ctl.on_backward_rm(fast, /*queue=*/8);
  EXPECT_NEAR(fast.er.mbits_per_sec(), 8.5 * 15.0 / 16, 1e-9);
}

TEST(AprcTest, VeryCongestedUsesLengthThreshold) {
  Simulator sim;
  AprcController ctl{sim, Rate::mbps(150)};
  Cell b = brm(0.1);
  ctl.on_backward_rm(b, /*queue=*/301);  // > 300 cells [ST94]
  EXPECT_TRUE(b.ci);
  EXPECT_NEAR(b.er.mbits_per_sec(), 8.5 / 4, 1e-9);
}

TEST(AprcTest, NotCongestedLeavesBrmAlone) {
  Simulator sim;
  AprcController ctl{sim, Rate::mbps(150)};
  Cell b = brm(100.0);
  ctl.on_backward_rm(b, 50);
  EXPECT_DOUBLE_EQ(b.er.mbits_per_sec(), 150.0);
  EXPECT_FALSE(b.ci);
}

TEST(AprcTest, MacrAveragesCcrLikeEprca) {
  Simulator sim;
  AprcController ctl{sim, Rate::mbps(150)};
  Cell f = frm(40.0);
  for (int i = 0; i < 500; ++i) ctl.on_forward_rm(f, 0);
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 40.0, 0.01);
}

TEST(AprcTest, ConfigValidation) {
  Simulator sim;
  AprcConfig bad;
  bad.growth_interval = Time::zero();
  EXPECT_THROW((AprcController{sim, Rate::mbps(150), bad}),
               std::invalid_argument);
}

// ----------------------------------------------------------------- CAPC

TEST(CapcTest, IdleLinkGrowsErsMultiplicatively) {
  Simulator sim;
  CapcController ctl{sim, Rate::mbps(150)};
  sim.run_until(Time::ms(1));  // one interval, z = 0
  // growth factor min(ERU, 1 + 1*Rup) = 1.1
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 8.5 * 1.1, 1e-6);
  sim.run_until(Time::ms(2));
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 8.5 * 1.21, 1e-6);
}

TEST(CapcTest, OverloadShrinksErs) {
  Simulator sim;
  CapcConfig cfg;
  CapcController ctl{sim, Rate::mbps(150), cfg};
  // Offer 2x the target: z = 2 -> factor max(ERF, 1 - 0.8) = 0.5.
  const double target_cells =
      0.9 * 150e6 / atm::kCellBits * 0.001;  // cells per interval at z=1
  for (int i = 0; i < static_cast<int>(2 * target_cells); ++i) {
    ctl.on_cell_accepted(Cell::data(1), 1);
  }
  sim.run_until(Time::ms(1));
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 8.5 * 0.5, 0.1);
}

TEST(CapcTest, DroppedCellsCountTowardLoad) {
  Simulator sim;
  CapcController a{sim, Rate::mbps(150)};
  CapcController b{sim, Rate::mbps(150)};
  for (int i = 0; i < 400; ++i) a.on_cell_accepted(Cell::data(1), 1);
  for (int i = 0; i < 200; ++i) {
    b.on_cell_accepted(Cell::data(1), 1);
    b.on_cell_dropped(Cell::data(1));
  }
  sim.run_until(Time::ms(1));
  EXPECT_DOUBLE_EQ(a.fair_share().bits_per_sec(), b.fair_share().bits_per_sec());
}

TEST(CapcTest, BrmAlwaysClampedToErs) {
  Simulator sim;
  CapcController ctl{sim, Rate::mbps(150)};
  Cell b = brm(100.0);
  ctl.on_backward_rm(b, 0);
  EXPECT_DOUBLE_EQ(b.er.mbits_per_sec(), 8.5);
  EXPECT_FALSE(b.ci);
}

TEST(CapcTest, CiSetAboveQueueThreshold) {
  Simulator sim;
  CapcController ctl{sim, Rate::mbps(150)};
  Cell b = brm(100.0);
  ctl.on_backward_rm(b, 51);
  EXPECT_TRUE(b.ci);
}

TEST(CapcTest, ErsStaysWithinBounds) {
  Simulator sim;
  CapcController ctl{sim, Rate::mbps(150)};
  sim.run_until(Time::sec(1));  // idle forever: ERS must cap at u*C
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 0.9 * 150, 1e-6);
}

TEST(CapcTest, ClosedLoopEquilibriumIsTargetOverN) {
  // n sessions pinned at ERS: offered = n * ERS; fixed point z = 1 at
  // ERS = u*C/n.
  Simulator sim;
  CapcController ctl{sim, Rate::mbps(150)};
  const int n = 3;
  std::function<void()> feed = [&] {
    // Feed the controller the load it would see this interval.
    const double cells = n * ctl.fair_share().bits_per_sec() * 0.001 /
                         atm::kCellBits;
    for (int i = 0; i < static_cast<int>(cells); ++i) {
      ctl.on_cell_accepted(Cell::data(1), 1);
    }
    sim.schedule(Time::ms(1), feed);
  };
  sim.schedule(Time::zero(), feed);
  sim.run_until(Time::sec(1));
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 0.9 * 150 / n, 2.0);
}

TEST(CapcTest, ConfigValidation) {
  Simulator sim;
  CapcConfig bad;
  bad.eru = 1.0;
  EXPECT_THROW((CapcController{sim, Rate::mbps(150), bad}),
               std::invalid_argument);
  bad = {};
  bad.utilization = 0.0;
  EXPECT_THROW((CapcController{sim, Rate::mbps(150), bad}),
               std::invalid_argument);
}

// ------------------------------------------------- constant-space class

TEST(BaselineSpaceTest, AllControllersAreConstantSpace) {
  static_assert(sizeof(EprcaController) < 512);
  static_assert(sizeof(AprcController) < 512);
  static_assert(sizeof(CapcController) < 512);
  SUCCEED();
}

}  // namespace
}  // namespace phantom::baselines
