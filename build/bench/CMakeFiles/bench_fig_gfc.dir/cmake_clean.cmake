file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_gfc.dir/bench_fig_gfc.cc.o"
  "CMakeFiles/bench_fig_gfc.dir/bench_fig_gfc.cc.o.d"
  "bench_fig_gfc"
  "bench_fig_gfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_gfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
