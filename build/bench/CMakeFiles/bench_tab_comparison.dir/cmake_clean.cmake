file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_comparison.dir/bench_tab_comparison.cc.o"
  "CMakeFiles/bench_tab_comparison.dir/bench_tab_comparison.cc.o.d"
  "bench_tab_comparison"
  "bench_tab_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
