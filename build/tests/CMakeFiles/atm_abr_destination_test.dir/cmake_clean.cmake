file(REMOVE_RECURSE
  "CMakeFiles/atm_abr_destination_test.dir/atm_abr_destination_test.cc.o"
  "CMakeFiles/atm_abr_destination_test.dir/atm_abr_destination_test.cc.o.d"
  "atm_abr_destination_test"
  "atm_abr_destination_test.pdb"
  "atm_abr_destination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_abr_destination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
