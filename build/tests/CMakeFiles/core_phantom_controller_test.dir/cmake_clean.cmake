file(REMOVE_RECURSE
  "CMakeFiles/core_phantom_controller_test.dir/core_phantom_controller_test.cc.o"
  "CMakeFiles/core_phantom_controller_test.dir/core_phantom_controller_test.cc.o.d"
  "core_phantom_controller_test"
  "core_phantom_controller_test.pdb"
  "core_phantom_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_phantom_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
