// Seeded random stream for workload generators.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>

#include "sim/time.h"

namespace phantom::sim {

/// Thin wrapper over std::mt19937_64 exposing only the distributions the
/// models need. Keeping one engine per Simulator makes an entire run a
/// pure function of its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    assert(lo <= hi);
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Exponentially distributed time span with the given mean.
  [[nodiscard]] Time exponential_time(Time mean) {
    return Time::from_seconds(exponential(mean.seconds()));
  }

  [[nodiscard]] bool bernoulli(double p) {
    assert(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution{p}(engine_);
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace phantom::sim
