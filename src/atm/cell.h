// ATM cells and the Resource-Management (RM) cell fields used by the
// ABR rate-based flow-control loop [Sat96].
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace phantom::atm {

/// Cells on the wire are 53 bytes (424 bits) regardless of kind.
inline constexpr std::int64_t kCellBits = 424;
inline constexpr std::int64_t kCellBytes = 53;

enum class CellKind : std::uint8_t {
  kData,        ///< payload-carrying cell
  kForwardRm,   ///< RM cell travelling source -> destination
  kBackwardRm,  ///< RM cell turned around by the destination
};

[[nodiscard]] std::string to_string(CellKind kind);

/// A single ATM cell. The RM fields (`ccr`, `er`, `ci`) are meaningful
/// only on RM cells; `efci` rides on data cells and is copied into the
/// destination's per-VC congestion state [Sat96, RJ90].
struct Cell {
  CellKind kind = CellKind::kData;
  int vc = -1;  ///< virtual circuit (session) identifier

  sim::Rate ccr;     ///< Current Cell Rate stamped by the source on FRM cells
  sim::Rate er;      ///< Explicit Rate: set to PCR by the source, only ever
                     ///< *reduced* by switches on the way back
  bool ci = false;   ///< Congestion Indication (binary feedback)
  bool efci = false; ///< Explicit Forward Congestion Indication (data cells)
  /// Guaranteed-class (CBR/VBR) cell: strict-priority ports serve it
  /// ahead of ABR traffic.
  bool high_priority = false;
  /// Cell Loss Priority: set by a policer tagging a non-conforming cell;
  /// tagged cells are dropped first when a port queue passes its CLP
  /// threshold (partial buffer sharing).
  bool clp = false;
  /// AAL5 frame boundary: last cell of a frame (the EOM bit in the
  /// payload-type field). Frame-aware discard (EPD/PPD) keys off it.
  bool eof = false;
  /// Frame identity: per-VC frame sequence number and the frame's length
  /// in cells. Destinations judge a frame good only when all `frame_len`
  /// cells of the same `frame` arrive; switches use the boundary to shed
  /// whole frames instead of corrupting several. frame_len = 1 (the
  /// default) makes every data cell its own complete frame, which is the
  /// pre-frame behaviour exactly.
  std::uint32_t frame = 0;
  std::uint16_t frame_len = 1;
  /// Source transmission time; destinations derive end-to-end delay.
  sim::Time sent_at;

  [[nodiscard]] bool is_rm() const { return kind != CellKind::kData; }

  /// FRM factory: how sources emit in-rate RM cells.
  [[nodiscard]] static Cell forward_rm(int vc, sim::Rate ccr, sim::Rate er) {
    Cell c;
    c.kind = CellKind::kForwardRm;
    c.vc = vc;
    c.ccr = ccr;
    c.er = er;
    return c;
  }

  /// Data-cell factory.
  [[nodiscard]] static Cell data(int vc) {
    Cell c;
    c.vc = vc;
    return c;
  }
};

/// Anything that can accept a cell: switches, end systems, test probes.
class CellSink {
 public:
  virtual ~CellSink() = default;
  virtual void receive_cell(Cell cell) = 0;
};

}  // namespace phantom::atm
