file(REMOVE_RECURSE
  "CMakeFiles/tcp_policy_test.dir/tcp_policy_test.cc.o"
  "CMakeFiles/tcp_policy_test.dir/tcp_policy_test.cc.o.d"
  "tcp_policy_test"
  "tcp_policy_test.pdb"
  "tcp_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
