// JSON emission: escaping of quotes, backslashes and control bytes;
// whole-report validity under hostile field contents; exact double
// round-trips for the checkpoint format.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/json.h"
#include "chaos/search.h"

namespace phantom {
namespace {

/// Minimal strict JSON validator: enough grammar to prove the report is
/// parseable (objects, arrays, strings with legal escapes only, numbers,
/// literals) without pulling in a JSON library the repo doesn't have.
struct JsonValidator {
  const std::string& s;
  std::size_t p = 0;

  void ws() {
    while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(p, n, t) != 0) return false;
    p += n;
    return true;
  }
  bool string() {
    if (p >= s.size() || s[p] != '"') return false;
    ++p;
    while (p < s.size()) {
      const char c = s[p++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (p >= s.size()) return false;
        const char e = s[p++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i, ++p) {
            if (p >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(s[p]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = p;
    if (p < s.size() && s[p] == '-') ++p;
    while (p < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[p])) ||
            std::strchr(".eE+-", s[p]) != nullptr)) {
      ++p;
    }
    return p > start && std::isdigit(static_cast<unsigned char>(s[p - 1]));
  }
  bool members(char close) {
    while (true) {
      ws();
      if (close == '}') {
        if (!string()) return false;
        ws();
        if (p >= s.size() || s[p++] != ':') return false;
      }
      if (!value()) return false;
      ws();
      if (p < s.size() && s[p] == ',') {
        ++p;
        continue;
      }
      if (p < s.size() && s[p] == close) {
        ++p;
        return true;
      }
      return false;
    }
  }
  bool value() {
    ws();
    if (p >= s.size()) return false;
    const char c = s[p];
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++p;
      ws();
      if (p < s.size() && s[p] == close) {
        ++p;
        return true;
      }
      return members(close);
    }
    if (c == '"') return string();
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }
};

bool is_valid_json(const std::string& text) {
  JsonValidator v{text};
  if (!v.value()) return false;
  v.ws();
  return v.p == text.size();
}

TEST(JsonTest, ValidatorRejectsBrokenDocuments) {
  EXPECT_TRUE(is_valid_json(R"({"a": [1, -2.5e3, "x\n\"y\""], "b": null})"));
  EXPECT_FALSE(is_valid_json(R"({"a": "unescaped " quote"})"));
  EXPECT_FALSE(is_valid_json(R"({"a": "bad \q escape"})"));
  EXPECT_FALSE(is_valid_json(R"({"a": 1)"));
  EXPECT_FALSE(is_valid_json("{\"a\": \"raw\ncontrol\"}"));
}

TEST(JsonTest, EscapesMandatoryAndControlCharacters) {
  EXPECT_EQ(chaos::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(chaos::json_escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(chaos::json_escape(std::string{"\x01\x1f"}), "\\u0001\\u001f");
  EXPECT_EQ(chaos::json_escape("plain text"), "plain text");
}

TEST(JsonTest, EscapedStringsRoundTripThroughTheLineReader) {
  const std::string hostile = "q\" b\\ n\n t\t ctl\x01 end";
  const std::string line =
      "{\"detail\": \"" + chaos::json_escape(hostile) + "\"}";
  EXPECT_TRUE(is_valid_json(line)) << line;
  chaos::JsonLineReader reader{line};
  const auto back = reader.find_string("detail");
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, hostile);
}

TEST(JsonTest, ExactDoubleFormatRoundTripsBitForBit) {
  for (const double v : {0.1 + 0.2, 9.40592, 1.0 / 3.0, -1e-300, 0.0}) {
    const std::string text = chaos::fmt_double_exact(v);
    char* end = nullptr;
    const double back = std::strtod(text.c_str(), &end);
    EXPECT_EQ(end, text.c_str() + text.size()) << text;
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0) << text;
  }
}

// Arbitrary bytes in details, plans, stderr tails and fingerprints —
// quotes, backslashes, newlines, control characters — must never
// produce an unparseable report.
TEST(JsonTest, HostileReportContentsStayValidJson) {
  chaos::SearchReport report;
  report.spec.rate_mbps = 40.0;
  report.trials_run = 1;
  report.baseline_share_mbps = 9.40592;

  chaos::Failure f;
  f.trial = 0;
  f.result.verdict = chaos::Verdict::kProcessCrash;
  f.result.detail = "she said \"boom\" \\ and\nleft\ttown \x01";
  f.result.crash_signal = "SIGSEGV";
  f.result.exit_code = 0;
  f.result.stderr_tail = "C:\\path\\\"quoted\"\r\n\x02 bytes";
  f.shrunk_result = f.result;
  report.failures.push_back(f);

  chaos::TriagedClass c;
  c.fingerprint = "process-crash|SIGSEGV|say \"hi\" \\";
  c.verdict = chaos::Verdict::kProcessCrash;
  c.signal = "SIGSEGV";
  c.sample_detail = f.result.detail;
  c.trials = {0};
  report.classes.push_back(c);

  const std::string json = report.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\\\"boom\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\ and\\nleft"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);

  // The decoded detail survives the trip exactly.
  chaos::JsonLineReader reader{json};
  EXPECT_EQ(reader.find_string("detail"), f.result.detail);
}

}  // namespace
}  // namespace phantom
