// End-to-end tests of the paper's §4 TCP mechanisms: Selective Discard
// (Fig. 14/17), Selective Source Quench (Fig. 9), EFCI (Fig. 11) and
// Selective RED, against the drop-tail baseline.
//
// Scenario (per §4.3, with RTTs scaled to give workable per-flow
// windows): four greedy Reno flows, 512-byte packets, one 10 Mb/s
// bottleneck, heterogeneous access delays 3/6/12/24 ms, staggered
// starts. Drop-tail produces strongly RTT-biased shares; the Phantom
// mechanisms equalize them without touching the TCP window code.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "stats/fairness.h"
#include "tcp/phantom_policies.h"
#include "tcp/tcp_network.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

// Larger-than-default factor for test robustness; the bench sweeps the
// factor and shows 5-10 behave alike (see bench_tab_tcp_factor).
constexpr double kUf = 10.0;

PolicyFactory discard_factory(double factor = kUf) {
  return [factor](Simulator& sim, Rate rate) {
    return std::make_unique<SelectiveDiscardPolicy>(sim, rate, factor);
  };
}

PolicyFactory quench_factory(double factor = kUf) {
  return [factor](Simulator& sim, Rate rate) {
    return std::make_unique<SelectiveQuenchPolicy>(sim, rate, factor,
                                                   Time::ms(10));
  };
}

PolicyFactory efci_factory(double factor = kUf) {
  return [factor](Simulator& sim, Rate rate) {
    return std::make_unique<EfciMarkPolicy>(sim, rate, factor);
  };
}

PolicyFactory sel_red_factory(double factor = kUf) {
  return [factor](Simulator& sim, Rate rate) {
    return std::make_unique<SelectiveRedPolicy>(sim, rate, factor);
  };
}

struct RunResult {
  std::vector<double> mbps;
  double total = 0.0;
  double jain = 0.0;
  std::size_t max_queue = 0;   // whole run, including slow-start burst
  double mean_queue = 0.0;     // sampled after the settle period
};

RunResult run_single_bottleneck(PolicyFactory policy,
                                std::size_t queue_limit = 60) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions opts;
  opts.queue_limit = queue_limit;
  opts.policy = std::move(policy);
  const auto s = net.add_sink_node(r, opts);
  const Time delays[] = {Time::ms(3), Time::ms(6), Time::ms(12), Time::ms(24)};
  for (const Time d : delays) {
    net.add_flow(r, {}, s, RenoConfig{}, Rate::mbps(100), d);
  }
  net.start_all(Time::zero(), Time::ms(73));
  const Time settle = Time::sec(3), horizon = Time::sec(12);
  sim.run_until(settle);
  std::vector<std::int64_t> base;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    base.push_back(net.delivered_bytes(f));
  }
  RunResult out;
  // Sample the queue every 5 ms through the measurement window.
  std::size_t samples = 0;
  std::function<void()> sample = [&] {
    out.mean_queue += static_cast<double>(net.sink_port(s).queue_length());
    ++samples;
    sim.schedule(Time::ms(5), sample);
  };
  sim.schedule(Time::zero(), sample);
  sim.run_until(horizon);
  out.mean_queue /= static_cast<double>(samples);
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    out.mbps.push_back(static_cast<double>(net.delivered_bytes(f) - base[f]) *
                       8.0 / (horizon - settle).seconds() / 1e6);
    out.total += out.mbps.back();
  }
  out.jain = stats::jain_index(out.mbps);
  out.max_queue = net.sink_port(s).max_queue_length();
  return out;
}

TEST(TcpMechanismsTest, DropTailIsRttBiased) {
  const auto r = run_single_bottleneck(nullptr);
  // Fig. 14 left: heterogeneous RTTs make drop-tail visibly unfair.
  EXPECT_LT(r.jain, 0.80);
  // ...while utilization is high (that is drop-tail's one virtue).
  EXPECT_GT(r.total, 7.5);
}

TEST(TcpMechanismsTest, SelectiveDiscardEqualizesAcrossRtts) {
  const auto droptail = run_single_bottleneck(nullptr);
  const auto discard = run_single_bottleneck(discard_factory());
  EXPECT_GT(discard.jain, droptail.jain);
  EXPECT_GT(discard.jain, 0.85);
  EXPECT_GT(discard.total, 5.5);  // moderate utilization cost
}

TEST(TcpMechanismsTest, SelectiveRedEqualizesAcrossRtts) {
  const auto droptail = run_single_bottleneck(nullptr);
  const auto red = run_single_bottleneck(sel_red_factory());
  EXPECT_GT(red.jain, droptail.jain);
  EXPECT_GT(red.total, 5.0);
}

TEST(TcpMechanismsTest, SelectiveQuenchImprovesFairness) {
  const auto droptail = run_single_bottleneck(nullptr);
  const auto quench = run_single_bottleneck(quench_factory());
  EXPECT_GT(quench.jain, droptail.jain);
  EXPECT_GT(quench.total, 4.0);
}

TEST(TcpMechanismsTest, EfciImprovesFairness) {
  const auto droptail = run_single_bottleneck(nullptr);
  const auto efci = run_single_bottleneck(efci_factory());
  EXPECT_GT(efci.jain, droptail.jain);
  EXPECT_GT(efci.total, 5.0);
}

TEST(TcpMechanismsTest, SelectiveDiscardControlsTheQueue) {
  // "Avoids congestion even in drop tail routers": drop-tail rides the
  // buffer limit; the gated selective policy keeps the peak queue
  // below it.
  const auto droptail = run_single_bottleneck(nullptr, 100);
  const auto discard = run_single_bottleneck(discard_factory(), 100);
  EXPECT_EQ(droptail.max_queue, 100u);  // drop-tail rides the limit
  // Drop-tail parks the queue near the limit; the gated policy keeps the
  // *typical* occupancy markedly lower (transient peaks still occur).
  EXPECT_LT(discard.mean_queue, 0.75 * droptail.mean_queue);
}

TEST(TcpMechanismsTest, BeatDownChainDropTailVsSelectiveDiscard) {
  // Fig. 17 configuration: one long flow crossing three congested
  // routers vs one local flow per hop.
  auto run_chain = [](PolicyFactory policy_factory) {
    Simulator sim;
    TcpNetwork net{sim};
    const auto r0 = net.add_router("r0");
    const auto r1 = net.add_router("r1");
    const auto r2 = net.add_router("r2");
    auto mk_opts = [&] {
      TcpTrunkOptions o;
      o.queue_limit = 60;
      o.delay = Time::ms(3);
      if (policy_factory) o.policy = policy_factory;
      return o;
    };
    const auto t01 = net.add_trunk(r0, r1, mk_opts());
    const auto t12 = net.add_trunk(r1, r2, mk_opts());
    const auto s_end = net.add_sink_node(r2, mk_opts());
    TcpTrunkOptions stub;  // uncontrolled, fat exit for locals
    stub.rate = Rate::mbps(100);
    stub.queue_limit = 1000;
    const auto s1 = net.add_sink_node(r1, stub);
    const auto s2 = net.add_sink_node(r2, stub);
    net.add_flow(r0, {t01, t12}, s_end);  // long flow
    net.add_flow(r0, {t01}, s1);
    net.add_flow(r1, {t12}, s2);
    net.add_flow(r2, {}, s_end);
    net.start_all(Time::zero(), Time::ms(73));
    sim.run_until(Time::sec(3));
    std::vector<std::int64_t> base;
    for (std::size_t f = 0; f < net.num_flows(); ++f) {
      base.push_back(net.delivered_bytes(f));
    }
    sim.run_until(Time::sec(12));
    std::vector<double> mbps;
    for (std::size_t f = 0; f < net.num_flows(); ++f) {
      mbps.push_back(static_cast<double>(net.delivered_bytes(f) - base[f]) *
                     8.0 / 9.0 / 1e6);
    }
    return mbps;
  };
  const auto droptail = run_chain(nullptr);
  const auto discard = run_chain(discard_factory());
  const double dt_share = droptail[0] / (droptail[1] + droptail[2] + 1e-9);
  const double sd_share = discard[0] / (discard[1] + discard[2] + 1e-9);
  // Selective Discard lifts the long flow's relative share.
  EXPECT_GT(sd_share, dt_share);
}

TEST(TcpMechanismsTest, QuenchesActuallyFlow) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions opts;
  opts.queue_limit = 60;
  opts.policy = quench_factory();
  const auto s = net.add_sink_node(r, opts);
  net.add_flow(r, {}, s, RenoConfig{}, Rate::mbps(100), Time::ms(5));
  net.add_flow(r, {}, s, RenoConfig{}, Rate::mbps(100), Time::ms(10));
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(5));
  EXPECT_GT(net.router(r).quenches_injected(), 10u);
  EXPECT_GT(net.source(0).quenches_received() +
                net.source(1).quenches_received(),
            10u);
}

TEST(TcpMechanismsTest, EfciMarksReachSourcesViaAckEcho) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions opts;
  opts.queue_limit = 60;
  opts.policy = efci_factory();
  const auto s = net.add_sink_node(r, opts);
  net.add_flow(r, {}, s, RenoConfig{}, Rate::mbps(100), Time::ms(5));
  net.add_flow(r, {}, s, RenoConfig{}, Rate::mbps(100), Time::ms(10));
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(5));
  const auto& policy =
      dynamic_cast<const EfciMarkPolicy&>(net.sink_port(s).policy());
  EXPECT_GT(policy.marks(), 50u);
}

TEST(TcpMechanismsTest, StrictModeCollapsesGoodput) {
  // The ablation behind DiscardMode's documentation: the literal
  // drop-everything-over-rate reading wipes whole windows and starves
  // the link relative to the policing mode.
  auto strict_factory = [](Simulator& sim, Rate rate) {
    return std::make_unique<SelectiveDiscardPolicy>(
        sim, rate, kUf, tcp_default_phantom_config(), DiscardMode::kStrict);
  };
  const auto strict = run_single_bottleneck(strict_factory);
  const auto police = run_single_bottleneck(discard_factory());
  EXPECT_GT(police.total, strict.total);
}

}  // namespace
}  // namespace phantom::tcp
