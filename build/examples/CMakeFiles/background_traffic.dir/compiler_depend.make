# Empty compiler generated dependencies file for background_traffic.
# This may be replaced when dependencies are built.
