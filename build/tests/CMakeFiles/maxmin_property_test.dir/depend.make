# Empty dependencies file for maxmin_property_test.
# This may be replaced when dependencies are built.
