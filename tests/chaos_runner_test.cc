// Trial execution: watchdog conversions, oracle verdicts, determinism.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "chaos/runner.h"

namespace phantom {
namespace {

using sim::Time;

chaos::ScenarioSpec smoke_spec() {
  chaos::ScenarioSpec spec;  // modest rate keeps smoke trials fast
  spec.rate_mbps = 40.0;
  spec.horizon = Time::ms(600);
  return spec;
}

TEST(RunnerTest, FaultFreeTrialPasses) {
  const auto spec = smoke_spec();
  chaos::TrialOptions opt;
  const auto base = chaos::run_baseline(spec, 1, opt);
  EXPECT_GT(base.settled_share_bps, 0.0);
  EXPECT_GT(base.delivered_cells, 0u);
  const auto r = chaos::run_trial(spec, 1, {}, opt, &base);
  EXPECT_FALSE(r.failed()) << r.detail;
  EXPECT_GT(r.events, 0u);
}

TEST(RunnerTest, PhantomSurvivesOutageAndRestart) {
  const auto spec = smoke_spec();
  fault::FaultPlan plan;
  plan.outage(fault::dest(0), Time::ms(250), Time::ms(20))
      .restart(fault::dest(0), Time::ms(290));
  chaos::TrialOptions opt;
  const auto base = chaos::run_baseline(spec, 1, opt);
  const auto r = chaos::run_trial(spec, 1, plan, opt, &base);
  EXPECT_EQ(r.verdict, chaos::Verdict::kPass) << r.detail;
  ASSERT_TRUE(r.reconverge_latency.has_value());
  EXPECT_GE(*r.reconverge_latency, Time::zero());
}

TEST(RunnerTest, UnresolvableTargetIsACrashVerdict) {
  const auto spec = smoke_spec();  // bottleneck has no trunks
  fault::FaultPlan plan;
  plan.outage(fault::trunk(3), Time::ms(250), Time::ms(20));
  const auto r = chaos::run_trial(spec, 1, plan);
  EXPECT_EQ(r.verdict, chaos::Verdict::kCrash);
  EXPECT_NE(r.detail.find("applying plan"), std::string::npos) << r.detail;
}

TEST(RunnerTest, LivelockBecomesAWatchdogVerdict) {
  const auto spec = smoke_spec();
  chaos::TrialOptions opt;
  opt.watchdog.max_events_per_instant = 2000;
  // Inject a zero-delay self-rescheduling event: sim time freezes at
  // 50 ms and only the per-instant budget can end the run.
  opt.prepare = [](sim::Simulator& sim, topo::AbrNetwork&) {
    // Static storage, not a self-capturing shared_ptr: the closure
    // referencing itself through a shared_ptr is a reference cycle
    // that LeakSanitizer rightly reports.
    static std::function<void()> spin;
    spin = [&sim] { sim.schedule(Time::zero(), spin); };
    sim.schedule_at(Time::ms(50), spin);
  };
  const auto r = chaos::run_trial(spec, 1, {}, opt);
  EXPECT_EQ(r.verdict, chaos::Verdict::kWatchdog) << r.detail;
  EXPECT_NE(r.detail.find("livelock"), std::string::npos) << r.detail;
}

TEST(RunnerTest, EventBudgetBecomesAWatchdogVerdict) {
  const auto spec = smoke_spec();
  chaos::TrialOptions opt;
  opt.watchdog.max_events = 5000;  // far below a real run's event count
  const auto r = chaos::run_trial(spec, 1, {}, opt);
  EXPECT_EQ(r.verdict, chaos::Verdict::kWatchdog) << r.detail;
  EXPECT_NE(r.detail.find("event-budget"), std::string::npos) << r.detail;
  EXPECT_EQ(r.events, 5000u);
}

TEST(RunnerTest, BrokenBaselineThrowsInsteadOfJudging) {
  const auto spec = smoke_spec();
  chaos::TrialOptions opt;
  opt.watchdog.max_events = 100;  // even the clean run cannot finish
  EXPECT_THROW((void)chaos::run_baseline(spec, 1, opt), std::runtime_error);
}

TEST(RunnerTest, TrialsAreDeterministic) {
  const auto spec = smoke_spec();
  fault::FaultPlan plan;
  plan.burst(fault::dest(0), Time::ms(250), Time::ms(30), 0.2, 0.5, 0.8);
  const auto a = chaos::run_trial(spec, 9, plan);
  const auto b = chaos::run_trial(spec, 9, plan);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.reconverge_latency, b.reconverge_latency);
  EXPECT_DOUBLE_EQ(a.settled_share_mbps, b.settled_share_mbps);
  EXPECT_DOUBLE_EQ(a.peak_queue_cells, b.peak_queue_cells);
}

}  // namespace
}  // namespace phantom
