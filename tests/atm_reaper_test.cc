// Stale-VC reclamation: policer state eviction (the VC-reuse bugfix),
// the switch's periodic reaper, and the share released back to
// controllers that keep per-VC state.
#include <gtest/gtest.h>

#include "atm/policer.h"
#include "exp/factories.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;

TEST(PolicerEvictionTest, ReusedVcStartsWithAFreshContract) {
  // The bug this PR fixes: per-VC GCRA state was never evicted, so a VC
  // id reused by a new session inherited the dead session's TAT debt
  // and violation history. Drive VC 7 to GCRA saturation, evict, and
  // the "new" VC 7 must start conforming with a clean record.
  atm::PolicerConfig config;
  config.action = atm::PolicingAction::kDrop;
  config.tolerance = Time::ms(1);
  atm::Policer policer{config};
  const Rate share = Rate::mbps(10);

  // 200 back-to-back cells at t=0: the first ~τ/increment conform
  // (pushing TAT out to t + τ), the rest are violations.
  for (int i = 0; i < 200; ++i) {
    (void)policer.check(atm::Cell::data(7), share, Time::zero());
  }
  ASSERT_GT(policer.vc_stats(7).nonconforming, 0u);
  EXPECT_EQ(policer.tracked_vcs(), 1u);

  // Without eviction, a reused VC 7 is judged against the inherited
  // saturated TAT: still dropping.
  EXPECT_EQ(policer.check(atm::Cell::data(7), share, Time::zero()),
            atm::Policer::Verdict::kDrop);

  EXPECT_TRUE(policer.evict_vc(7));
  EXPECT_EQ(policer.tracked_vcs(), 0u);
  EXPECT_EQ(policer.vcs_evicted(), 1u);
  EXPECT_FALSE(policer.evict_vc(7));  // nothing left to evict

  // Fresh contract at the same instant: first cell conforms, and the
  // dead session's violations no longer pollute the detection signal.
  EXPECT_EQ(policer.check(atm::Cell::data(7), share, Time::zero()),
            atm::Policer::Verdict::kPass);
  EXPECT_EQ(policer.vc_stats(7).conforming, 1u);
  EXPECT_EQ(policer.vc_stats(7).nonconforming, 0u);
  EXPECT_EQ(policer.violation_rate(7), 0.0);
}

TEST(PolicerEvictionTest, EvictionKeepsAggregateTotals) {
  atm::Policer policer;
  for (int i = 0; i < 50; ++i) {
    (void)policer.check(atm::Cell::data(3), Rate::mbps(100), Time::ms(i));
  }
  const auto checked = policer.cells_checked();
  ASSERT_GT(checked, 0u);
  EXPECT_TRUE(policer.evict_vc(3));
  EXPECT_EQ(policer.cells_checked(), checked);
}

TEST(ReaperTest, SilentVcIsReapedAndShareReleased) {
  // Two ERICA sessions; one falls silent at 300 ms. ERICA keeps a
  // per-VC table, so the released share is directly observable: the
  // survivor's fair share doubles once the dead VC is gone. The reaper
  // must also evict the policer state (vcs_reaped counts both).
  Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kErica)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  net.add_session(sw, {}, dest);
  net.add_session(sw, {}, dest);
  net.enable_policing({});
  atm::ReaperConfig reaper;
  reaper.timeout = Time::ms(100);
  reaper.period = Time::ms(25);
  net.enable_reaping(reaper);

  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  EXPECT_EQ(net.vcs_reaped(), 0u);  // both sessions active: no reaping
  const double shared = net.dest_port(dest).controller().fair_share()
                            .mbits_per_sec();

  ASSERT_EQ(net.node(sw).policer()->tracked_vcs(), 2u);

  net.source(1).set_active(false);
  sim.run_until(Time::ms(600));
  EXPECT_GT(net.vcs_reaped(), 0u);
  EXPECT_EQ(net.node(sw).policer()->tracked_vcs(), 1u);
  const double alone = net.dest_port(dest).controller().fair_share()
                           .mbits_per_sec();
  // target/1 instead of target/2.
  EXPECT_NEAR(alone, 2.0 * shared, 0.2 * alone);
}

TEST(ReaperTest, ExplicitTeardownEvictsWithoutWaitingForTimeout) {
  Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  net.add_session(sw, {}, dest);
  const auto leaver = net.add_session(sw, {}, dest);
  net.enable_policing({});
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(200));
  ASSERT_EQ(net.node(sw).policer()->tracked_vcs(), 2u);

  net.source(leaver).set_active(false);
  net.teardown_session_state(leaver);
  EXPECT_EQ(net.vcs_reaped(), 1u);
  EXPECT_EQ(net.node(sw).policer()->tracked_vcs(), 1u);

  // The torn-down VC's GCRA slate is clean if the id is ever reused.
  EXPECT_EQ(net.node(sw).policer()->vc_stats(net.session_vc(leaver))
                .nonconforming,
            0u);
}

TEST(ReaperTest, BeatenDownSessionSurvivesTheReaper) {
  // "Silent" must mean dead, not slow: a compliant session throttled to
  // a tiny share still turns RM cells well inside the timeout (Trm
  // bounds its FRM spacing by 100 ms), so a sane reaper config never
  // reaps a live session.
  Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 8; ++i) net.add_session(sw, {}, dest);
  atm::ReaperConfig reaper;
  reaper.timeout = Time::ms(150);  // > Trm: a live session always beats it
  reaper.period = Time::ms(25);
  net.enable_reaping(reaper);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(800));
  EXPECT_EQ(net.vcs_reaped(), 0u);
}

}  // namespace
}  // namespace phantom
