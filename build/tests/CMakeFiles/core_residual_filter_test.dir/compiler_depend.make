# Empty compiler generated dependencies file for core_residual_filter_test.
# This may be replaced when dependencies are built.
