#!/usr/bin/env python3
"""Intra-repo markdown link checker (the CI docs-check job).

Scans markdown files for inline links/images `[text](target)` and
verifies every *intra-repo* target resolves:

  - relative paths must exist on disk (relative to the linking file);
  - `#anchor` fragments — bare or on a markdown target — must match a
    heading in the addressed file (GitHub slugification);
  - external schemes (http/https/mailto) are skipped, not fetched.

Usage:
  python3 tools/check_markdown_links.py [FILE_OR_DIR ...]

With no arguments checks the repo's operator-facing set: README.md,
DESIGN.md, EXPERIMENTS.md, and every .md under docs/. Exits 1 and
prints file:line for each dead link.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target "title") — target stops at whitespace or the closing
# paren; images share the syntax behind a '!'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)       # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def links_of(path: Path):
    """Yields (line_number, target) for every inline link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: Path, heading_cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    for lineno, target in links_of(path):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        file_part, _, anchor = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{path}:{lineno}: dead link: {target}")
            continue
        if anchor and dest.suffix == ".md":
            if dest not in heading_cache:
                heading_cache[dest] = headings_of(dest)
            if anchor.lower() not in heading_cache[dest]:
                errors.append(f"{path}:{lineno}: dead anchor: {target}")
    return errors


def main(argv: list[str]) -> int:
    if argv:
        roots = [Path(a) for a in argv]
    else:
        roots = [
            REPO_ROOT / "README.md",
            REPO_ROOT / "DESIGN.md",
            REPO_ROOT / "EXPERIMENTS.md",
            REPO_ROOT / "docs",
        ]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.exists():
            files.append(root)
        else:
            print(f"no such file: {root}", file=sys.stderr)
            return 2

    heading_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f, heading_cache))
    for e in errors:
        print(e, file=sys.stderr)
    checked = len(files)
    if errors:
        print(f"{len(errors)} dead link(s) across {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"ok: {checked} markdown file(s), no dead intra-repo links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
