#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace phantom::sim {

const char* to_string(RunOutcome o) {
  switch (o) {
    case RunOutcome::kDrained:     return "drained";
    case RunOutcome::kDeadline:    return "deadline";
    case RunOutcome::kStopped:     return "stopped";
    case RunOutcome::kEventBudget: return "event-budget";
    case RunOutcome::kLivelock:    return "livelock";
  }
  return "?";
}

EventId Simulator::schedule(Time delay, EventQueue::Callback cb) {
  if (delay.is_negative()) {
    throw std::logic_error{"Simulator::schedule: negative delay " +
                           delay.to_string()};
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) {
    throw std::logic_error{"Simulator::schedule_at: " + at.to_string() +
                           " is in the past (now " + now_.to_string() + ")"};
  }
  return queue_.schedule(at, std::move(cb));
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    auto [time, callback] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    callback();
    ++executed;
  }
  executed_ += executed;
  return executed;
}

std::uint64_t Simulator::run_until(Time deadline) {
  if (deadline < now_) {
    throw std::logic_error{"Simulator::run_until: deadline " +
                           deadline.to_string() + " is in the past (now " +
                           now_.to_string() + ")"};
  }
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    auto [time, callback] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    callback();
    ++executed;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  executed_ += executed;
  return executed;
}

RunOutcome Simulator::run_guarded(const RunGuard& guard) {
  if (guard.deadline < now_) {
    throw std::logic_error{"Simulator::run_guarded: deadline " +
                           guard.deadline.to_string() + " is in the past (now " +
                           now_.to_string() + ")"};
  }
  stopped_ = false;
  std::uint64_t executed = 0;
  std::uint64_t at_instant = 0;
  Time instant = now_;
  RunOutcome outcome = RunOutcome::kDrained;
  while (true) {
    if (queue_.empty()) {
      outcome = RunOutcome::kDrained;
      break;
    }
    if (queue_.next_time() > guard.deadline) {
      outcome = RunOutcome::kDeadline;
      break;
    }
    if (executed >= guard.max_events) {
      outcome = RunOutcome::kEventBudget;
      break;
    }
    auto [time, callback] = queue_.pop();
    assert(time >= now_);
    if (time == instant) {
      if (++at_instant > guard.max_events_per_instant) {
        outcome = RunOutcome::kLivelock;
        now_ = time;
        break;
      }
    } else {
      instant = time;
      at_instant = 1;
    }
    now_ = time;
    callback();
    ++executed;
    if (guard.progress_every != 0 && guard.on_progress &&
        executed % guard.progress_every == 0) {
      guard.on_progress(executed_ + executed);
    }
    if (stopped_) {
      outcome = RunOutcome::kStopped;
      break;
    }
  }
  executed_ += executed;
  // Mirror run_until: a healthy run ends with the clock at the deadline.
  if ((outcome == RunOutcome::kDrained || outcome == RunOutcome::kDeadline) &&
      guard.deadline != Time::max() && now_ < guard.deadline) {
    now_ = guard.deadline;
  }
  return outcome;
}

}  // namespace phantom::sim
