// Strict-priority service for guaranteed-class (CBR) cells, and the
// end-to-end delay measurement at destinations.
#include <gtest/gtest.h>

#include <vector>

#include "atm/output_port.h"
#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using atm::Cell;
using atm::Link;
using atm::OutputPort;
using atm::QueueDiscipline;
using sim::Rate;
using sim::Simulator;
using sim::Time;

class Collector final : public atm::CellSink {
 public:
  void receive_cell(Cell cell) override { cells.push_back(cell); }
  std::vector<Cell> cells;
};

Cell cbr_cell(int vc) {
  Cell c = Cell::data(vc);
  c.high_priority = true;
  return c;
}

TEST(PriorityPortTest, HighPriorityOvertakesBacklog) {
  Simulator sim;
  Collector sink;
  OutputPort port{sim,
                  Rate::mbps(150),
                  100,
                  Link{sim, Time::zero(), sink},
                  nullptr,
                  QueueDiscipline::kStrictPriority};
  // Five best-effort cells queue up, then one CBR cell arrives.
  for (int i = 0; i < 5; ++i) port.send(Cell::data(1));
  port.send(cbr_cell(2));
  sim.run();
  ASSERT_EQ(sink.cells.size(), 6u);
  // The first cell was already on the wire; the CBR cell goes second.
  EXPECT_EQ(sink.cells[0].vc, 1);
  EXPECT_EQ(sink.cells[1].vc, 2);
}

TEST(PriorityPortTest, FifoModeIgnoresThePriorityBit) {
  Simulator sim;
  Collector sink;
  OutputPort port{sim, Rate::mbps(150), 100, Link{sim, Time::zero(), sink},
                  nullptr, QueueDiscipline::kFifo};
  for (int i = 0; i < 3; ++i) port.send(Cell::data(1));
  port.send(cbr_cell(2));
  sim.run();
  ASSERT_EQ(sink.cells.size(), 4u);
  EXPECT_EQ(sink.cells.back().vc, 2);  // stayed at the tail
}

TEST(PriorityPortTest, QueueLengthCountsBothClasses) {
  Simulator sim;
  Collector sink;
  OutputPort port{sim,
                  Rate::mbps(150),
                  4,
                  Link{sim, Time::zero(), sink},
                  nullptr,
                  QueueDiscipline::kStrictPriority};
  port.send(Cell::data(1));
  port.send(cbr_cell(2));
  port.send(Cell::data(1));
  port.send(cbr_cell(2));
  EXPECT_EQ(port.queue_length(), 4u);
  // Shared limit: the fifth cell is dropped regardless of class.
  port.send(cbr_cell(2));
  EXPECT_EQ(port.cells_dropped(), 1u);
}

TEST(PriorityIntegrationTest, CbrDelayShieldedFromAbrLoad) {
  // EPRCA keeps a ~100-cell standing queue (its congestion thresholds);
  // FIFO service makes the CBR stream ride that queue (~0.3 ms), while
  // strict priority keeps its delay at the propagation floor. The CBR
  // stream's VC is the last one created (after 4 ABR sessions).
  auto run = [](atm::QueueDiscipline discipline) {
    Simulator sim;
    topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kEprca)};
    const auto sw = net.add_switch("sw");
    topo::TrunkOptions opts;
    opts.discipline = discipline;
    const auto dest = net.add_destination(sw, opts);
    for (int i = 0; i < 4; ++i) net.add_session(sw, {}, dest);
    net.add_cbr_session(sw, {}, dest, Rate::mbps(30));
    net.start_all(Time::zero(), Time::zero());
    sim.run_until(Time::ms(400));
    const int cbr_vc = 4;  // VCs are allocated in creation order
    return net.destination(dest).mean_delay_ms(cbr_vc);
  };
  const double fifo_delay = run(QueueDiscipline::kFifo);
  const double prio_delay = run(QueueDiscipline::kStrictPriority);
  EXPECT_LT(prio_delay, 0.5 * fifo_delay);
  EXPECT_LT(prio_delay, 0.05);  // essentially the propagation floor
}

TEST(DelayHistogramTest, RecordsEndToEndDelays) {
  Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  net.add_session(sw, {}, dest);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(100));
  const auto& h = net.destination(dest).delay_histogram();
  EXPECT_GT(h.count(), 100u);
  // One uncongested session: delay = 2 us access + 2 us link + one or
  // two cell serializations; well under a millisecond at any quantile.
  EXPECT_LT(h.quantile(0.99), 1.0);
  EXPECT_GT(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace phantom
