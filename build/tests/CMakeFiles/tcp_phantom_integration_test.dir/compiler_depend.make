# Empty compiler generated dependencies file for tcp_phantom_integration_test.
# This may be replaced when dependencies are built.
