// Misbehaving-source resilience: the adversarial source models, RM
// sanitization at switch ingress, policing end to end (the PR's
// acceptance scenario), and the fair-share invariant check — plus its
// edge cases (saturated reference, single session, mid-window churn).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "atm/policer.h"
#include "exp/factories.h"
#include "exp/probes.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_monitor.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;

constexpr double kLinkMbps = 150.0;
constexpr double kUtilization = 0.95;  // exp::make_factory default

/// Single-bottleneck Phantom network: n sessions, one 150 Mb/s link.
struct Bottleneck {
  explicit Bottleneck(Simulator& sim, int n,
                      std::size_t queue_limit = topo::TrunkOptions{}.queue_limit)
      : net{sim, exp::make_factory(exp::Algorithm::kPhantom)} {
    const auto sw = net.add_switch("sw");
    topo::TrunkOptions trunk;
    trunk.queue_limit = queue_limit;
    dest = net.add_destination(sw, trunk);
    for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest);
  }
  AbrNetwork net;
  AbrNetwork::DestId dest = 0;
};

/// Runs to 600 ms and returns per-session goodput (Mb/s) measured over
/// the settled back 40%.
std::vector<double> measure(Simulator& sim, AbrNetwork& net) {
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(360));
  probe.mark();
  sim.run_until(Time::ms(600));
  return probe.rates_mbps();
}

/// Ideal per-session share with one phantom session: u * C / (n + 1).
double ideal_share(int n) { return kUtilization * kLinkMbps / (n + 1); }

// ---------------------------------------------------------------------
// The PR's acceptance scenario: 3 compliant + 1 greedy on one link.
// ---------------------------------------------------------------------

TEST(MisbehaviorTest, GreedySourceStarvesCompliantTrafficWithoutPolicing) {
  Simulator sim{1};
  Bottleneck b{sim, 4};
  b.net.set_session_behavior(3, atm::SourceBehavior::kGreedy);
  const auto rates = measure(sim, b.net);

  const double ideal = ideal_share(4);
  const double compliant_mean = (rates[0] + rates[1] + rates[2]) / 3.0;
  // The greedy source's queue drops count as offered load, the MACR
  // collapses to its floor, and the compliant sessions follow it down.
  EXPECT_LT(compliant_mean, 0.5 * ideal);
  // The adversary pockets what everyone else lost.
  EXPECT_GT(rates[3], 0.8 * kLinkMbps);
}

TEST(MisbehaviorTest, DropPolicingRestoresCompliantFairShare) {
  Simulator sim{1};
  Bottleneck b{sim, 4};
  b.net.set_session_behavior(3, atm::SourceBehavior::kGreedy);
  atm::PolicerConfig pc;
  pc.action = atm::PolicingAction::kDrop;
  b.net.enable_policing(pc);
  const auto rates = measure(sim, b.net);

  const double ideal = ideal_share(4);
  const double compliant_mean = (rates[0] + rates[1] + rates[2]) / 3.0;
  EXPECT_GE(compliant_mean, 0.85 * ideal);
  // The adversary is held near its policed contract (headroom * share),
  // nowhere near the line rate it asks for.
  EXPECT_LT(rates[3], 2.0 * ideal);
  EXPECT_GT(b.net.policer_dropped_cells(), 0u);
}

TEST(MisbehaviorTest, MonitorModeDetectsWithoutEnforcing) {
  Simulator sim{1};
  Bottleneck b{sim, 4};
  b.net.set_session_behavior(3, atm::SourceBehavior::kGreedy);
  b.net.enable_policing({});  // default action: monitor
  const auto rates = measure(sim, b.net);

  // Detection: the adversary's VC stands out; compliant VCs stay clean
  // (the headroom exists precisely so honest transients don't trip it).
  const atm::Policer* p = b.net.node(0).policer();
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->violation_rate(b.net.session_vc(3)), 0.5);
  for (int s = 0; s < 3; ++s) {
    EXPECT_LT(p->violation_rate(b.net.session_vc(s)), 0.05) << "session " << s;
  }
  // No enforcement: the starvation is unchanged.
  EXPECT_EQ(p->cells_dropped(), 0u);
  EXPECT_EQ(b.net.policer_dropped_cells(), 0u);
  EXPECT_LT((rates[0] + rates[1] + rates[2]) / 3.0, 0.5 * ideal_share(4));
}

TEST(MisbehaviorTest, TagModeDiscardsTaggedCellsAtHalfQueue) {
  Simulator sim{1};
  // Small queue so the CLP threshold is actually reached: the greedy
  // source's PCR matches the link rate, so the backlog grows only at
  // the compliant sessions' (collapsing) rate — a few thousand cells
  // over the whole run.
  Bottleneck b{sim, 4, /*queue_limit=*/2000};
  b.net.set_session_behavior(3, atm::SourceBehavior::kGreedy);
  atm::PolicerConfig pc;
  pc.action = atm::PolicingAction::kTag;
  b.net.enable_policing(pc);
  atm::OutputPort& port = b.net.dest_port(b.dest);
  ASSERT_EQ(port.clp_threshold(), std::max<std::size_t>(1, port.queue_limit() / 2));
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(600));

  // Partial buffer sharing: tagged cells are discarded once the queue
  // passes the threshold, so the queue saturates there instead of at
  // the full limit, and every drop so far is a CLP drop.
  EXPECT_GT(port.clp_cells_dropped(), 0u);
  EXPECT_EQ(port.clp_cells_dropped(), port.cells_dropped());
  EXPECT_LE(port.max_queue_length(), port.clp_threshold() + 16);
}

// ---------------------------------------------------------------------
// RM forging and ingress sanitization.
// ---------------------------------------------------------------------

TEST(MisbehaviorTest, ForgedRmFieldsAreClampedAtIngress) {
  Simulator sim{1};
  Bottleneck b{sim, 2};
  const int vc = b.net.session_vc(0);
  atm::Switch& sw = b.net.node(0);

  auto forged = [vc](double er_bps, double ccr_bps) {
    atm::Cell c = atm::Cell::forward_rm(vc, Rate::bps(ccr_bps),
                                        Rate::bps(er_bps));
    return c;
  };
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  sw.receive_cell(forged(nan, 1e6));     // NaN ER
  sw.receive_cell(forged(-5e6, 1e6));    // negative ER
  sw.receive_cell(forged(inf, 1e6));     // ER above any link capacity
  sw.receive_cell(forged(1e9, 1e6));     // ER above this link's rate
  sw.receive_cell(forged(1e6, nan));     // NaN CCR
  sw.receive_cell(forged(1e6, -1e6));    // negative CCR
  EXPECT_EQ(sw.rm_cells_sanitized(), 6u);
  sw.receive_cell(forged(1e6, 1e6));     // honest cell: untouched
  EXPECT_EQ(sw.rm_cells_sanitized(), 6u);

  // The clamps kept the poison out of the controller: its estimate is
  // still finite and within the physical link rate.
  const double share = b.net.dest_port(b.dest).controller().fair_share()
                           .bits_per_sec();
  EXPECT_TRUE(std::isfinite(share));
  EXPECT_LE(share, kLinkMbps * 1e6);
}

TEST(MisbehaviorTest, ForgingSourceCannotInflateItsShareUnderPolicing) {
  Simulator sim{1};
  Bottleneck b{sim, 4};
  b.net.set_session_behavior(3, atm::SourceBehavior::kForging);
  atm::PolicerConfig pc;
  pc.action = atm::PolicingAction::kDrop;
  b.net.enable_policing(pc);
  const auto rates = measure(sim, b.net);

  // The forged BRMs (ER = 10 * PCR) were clamped on ingress...
  EXPECT_GT(b.net.source(3).forged_brm_sent(), 0u);
  EXPECT_GT(b.net.rm_cells_sanitized(), 0u);
  // ...and the data-path enforcement holds regardless of what the
  // forged feedback claims.
  const double ideal = ideal_share(4);
  EXPECT_GE((rates[0] + rates[1] + rates[2]) / 3.0, 0.85 * ideal);
  EXPECT_LT(rates[3], 2.0 * ideal);
}

TEST(MisbehaviorTest, PartialComplianceSitsBetweenHonestAndGreedy) {
  const auto compliant_mean = [](double compliance) {
    Simulator sim{1};
    Bottleneck b{sim, 4};
    if (compliance < 1.0) {
      b.net.set_session_behavior(3, atm::SourceBehavior::kPartial, compliance);
    }
    const auto rates = measure(sim, b.net);
    return (rates[0] + rates[1] + rates[2]) / 3.0;
  };
  const double honest = compliant_mean(1.0);
  const double half = compliant_mean(0.5);
  const double barely = compliant_mean(0.1);
  EXPECT_GT(honest, half);
  EXPECT_GT(half, barely);
}

// ---------------------------------------------------------------------
// Invariants under adversarial load.
// ---------------------------------------------------------------------

TEST(MisbehaviorTest, ConservationHoldsWithAdversariesAndPolicing) {
  // Policer drops are a new way for cells to vanish; the conservation
  // check must account for them. Forged BRMs are a new way for cells to
  // appear; they are counted at their creator.
  for (const auto behavior :
       {atm::SourceBehavior::kGreedy, atm::SourceBehavior::kForging}) {
    Simulator sim{1};
    Bottleneck b{sim, 4};
    b.net.set_session_behavior(3, behavior);
    atm::PolicerConfig pc;
    pc.action = atm::PolicingAction::kDrop;
    b.net.enable_policing(pc);
    fault::InvariantMonitor monitor{sim, b.net};
    b.net.start_all(Time::zero(), Time::zero());
    sim.run_until(Time::ms(400));
    monitor.check_now();
    EXPECT_TRUE(monitor.violations().empty())
        << to_string(behavior) << ": "
        << monitor.violations().front().invariant << ": "
        << monitor.violations().front().detail;
    EXPECT_GT(b.net.policer_dropped_cells(), 0u);
  }
}

TEST(FairShareInvariantTest, CleanWithDropPolicingOn) {
  Simulator sim{1};
  Bottleneck b{sim, 4};
  b.net.set_session_behavior(3, atm::SourceBehavior::kGreedy);
  atm::PolicerConfig pc;
  pc.action = atm::PolicingAction::kDrop;
  b.net.enable_policing(pc);
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(200));  // warm up past the convergence transient
  fault::InvariantMonitor::FairShareOptions fs;
  fs.sessions = {0, 1, 2};  // watch the compliant sessions only
  fs.bound = 0.80;          // leave margin below the steady-state ~0.88
  monitor.enable_fair_share_check(fs);
  sim.run_until(Time::ms(600));
  monitor.check_now();
  for (const auto& v : monitor.violations()) {
    EXPECT_NE(v.invariant, "fair-share-retention") << v.detail;
  }
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(FairShareInvariantTest, FlagsStarvationWithPolicingOff) {
  Simulator sim{1};
  Bottleneck b{sim, 4};
  b.net.set_session_behavior(3, atm::SourceBehavior::kGreedy);
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(200));
  fault::InvariantMonitor::FairShareOptions fs;
  fs.sessions = {0, 1, 2};
  monitor.enable_fair_share_check(fs);
  sim.run_until(Time::ms(600));
  monitor.check_now();
  bool flagged = false;
  for (const auto& v : monitor.violations()) {
    flagged |= v.invariant == "fair-share-retention";
  }
  EXPECT_TRUE(flagged);
}

// ---------------------------------------------------------------------
// Fair-share check edge cases.
// ---------------------------------------------------------------------

TEST(FairShareInvariantTest, SurvivesSaturatedReferenceAllocation) {
  // CBR load eating the whole link leaves zero controlled capacity: the
  // reference allocation is undefined. The check must skip the window,
  // not crash or emit a bogus violation.
  Simulator sim{1};
  Bottleneck b{sim, 2};
  b.net.add_cbr_session(0, {}, b.dest, Rate::mbps(kLinkMbps));
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(100));
  monitor.enable_fair_share_check({});
  sim.run_until(Time::ms(400));
  monitor.check_now();
  for (const auto& v : monitor.violations()) {
    EXPECT_NE(v.invariant, "fair-share-retention") << v.detail;
  }
}

TEST(FairShareInvariantTest, SingleSessionPortRunsClean) {
  // n = 1: the session converges to u * C / 2 (one phantom), and the
  // check against that reference passes.
  Simulator sim{1};
  Bottleneck b{sim, 1};
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(200));
  monitor.enable_fair_share_check({});
  sim.run_until(Time::ms(600));
  monitor.check_now();
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(FairShareInvariantTest, WatchedSessionLeavingMidWindowIsNotFlagged) {
  // The watched session churns out mid-window: it delivered half a
  // window of cells and is entitled to nothing afterwards. The check
  // must treat the inactive session as satisfied, not starved.
  Simulator sim{1};
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}.leave(1, Time::ms(325)));
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  fault::InvariantMonitor::FairShareOptions fs;
  fs.sessions = {1};  // the session that is about to leave
  monitor.enable_fair_share_check(fs);
  sim.run_until(Time::ms(600));
  monitor.check_now();
  for (const auto& v : monitor.violations()) {
    EXPECT_NE(v.invariant, "fair-share-retention") << v.detail;
  }
}

}  // namespace
}  // namespace phantom
