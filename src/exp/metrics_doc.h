// Canonical metric reference: the single source of truth behind
// docs/METRICS.md.
//
// Instead of hand-maintaining a table that silently drifts from the
// code, the reference is *generated*: a representative full stack —
// every controller algorithm, policing, overload protection, fault
// injection — is instantiated, its components register into an
// obs::Registry, and the registered definitions are deduplicated by
// stable metric id. `phantom_cli --metrics-doc` prints the markdown;
// a tier-1 test diffs docs/METRICS.md against it, so adding a metric
// without regenerating the doc fails CI.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace phantom::exp {

/// Every metric kind any component of the full stack registers, one
/// entry per stable id (MetricDef::id), sorted by (component, id).
/// MetricDef::name holds a representative instance path.
[[nodiscard]] std::vector<obs::MetricDef> canonical_metric_defs();

/// The complete docs/METRICS.md content (markdown, trailing newline).
/// Deterministic: same build, same bytes.
[[nodiscard]] std::string metrics_reference_markdown();

}  // namespace phantom::exp
