// Constant-bit-rate background source.
//
// ABR is the *available* bit rate service: whatever guaranteed-class
// (CBR/VBR) traffic leaves behind. A CbrSource models that guaranteed
// traffic — a fixed-rate stream of data cells that ignores all
// flow-control feedback. Phantom's residual-bandwidth measurement sees
// it as load and hands the ABR sessions only what remains.
#pragma once

#include <cstdint>

#include "atm/cell.h"
#include "atm/link.h"
#include "sim/simulator.h"

namespace phantom::atm {

class CbrSource {
 public:
  CbrSource(sim::Simulator& sim, int vc, sim::Rate rate, Link to_network);

  CbrSource(const CbrSource&) = delete;
  CbrSource& operator=(const CbrSource&) = delete;

  /// Begins transmitting at absolute time `at`.
  void start(sim::Time at);

  /// Stops transmission (the stream may not be restarted).
  void stop() { running_ = false; }

  [[nodiscard]] int vc() const { return vc_; }
  [[nodiscard]] sim::Rate rate() const { return rate_; }
  [[nodiscard]] std::uint64_t cells_sent() const { return sent_; }
  /// Access link into the network (shared fault state, see LinkState).
  [[nodiscard]] Link& link() { return link_; }
  [[nodiscard]] const Link& link() const { return link_; }

 private:
  void send_next();

  sim::Simulator* sim_;
  int vc_;
  sim::Rate rate_;
  Link link_;
  bool running_ = false;
  bool started_ = false;
  std::uint64_t sent_ = 0;
};

}  // namespace phantom::atm
