// EPRCA — Enhanced Proportional Rate Control Algorithm [Rob94].
//
// The first of the three constant-space ATM Forum baselines the paper's
// §5 compares Phantom against. EPRCA learns the fair share (MACR) as an
// exponential average of the CCR values stamped on *forward* RM cells,
// and detects congestion from queue-length thresholds:
//
//   on FRM:  MACR += AV * (CCR - MACR)                  (AV = 1/16)
//   on BRM:  very congested (q > DQT):  ER = min(ER, MRF*MACR), CI = 1
//            congested (q > QT) and CCR > DPF*MACR:
//                                       ER = min(ER, ERF*MACR)
//
// Weaknesses the paper points at (and our benches reproduce): the
// queue-threshold congestion signal arrives late, producing rate
// oscillations and queue spikes; the indiscriminate CI in the very-
// congested state "beats down" long-path sessions [BdJ94].
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "atm/port_controller.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace phantom::baselines {

struct EprcaConfig {
  double averaging = 1.0 / 16;   ///< AV: MACR exponential-average gain
  double dpf = 7.0 / 8;          ///< Down-Pressure Factor
  double erf = 15.0 / 16;        ///< Explicit-Reduction Factor
  double mrf = 1.0 / 4;          ///< Major-Reduction Factor (very congested)
  std::size_t queue_threshold = 100;       ///< QT (cells)
  std::size_t very_congested_threshold = 500;  ///< DQT (cells)
  sim::Rate initial_macr = sim::Rate::mbps(8.5);

  void validate() const {
    if (averaging <= 0 || averaging > 1)
      throw std::invalid_argument{"averaging must be in (0,1]"};
    if (dpf <= 0 || dpf > 1) throw std::invalid_argument{"dpf must be in (0,1]"};
    if (erf <= 0 || erf > 1) throw std::invalid_argument{"erf must be in (0,1]"};
    if (mrf <= 0 || mrf > 1) throw std::invalid_argument{"mrf must be in (0,1]"};
    if (very_congested_threshold <= queue_threshold)
      throw std::invalid_argument{"DQT must exceed QT"};
  }
};

class EprcaController final : public atm::PortController {
 public:
  EprcaController(sim::Simulator& sim, sim::Rate link_capacity,
                  EprcaConfig config = {});

  void on_forward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void on_backward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void reset() override;
  void warm_restart() override;
  [[nodiscard]] const atm::WarmStartAudit* warm_audit() const override {
    return &warm_.audit();
  }

  [[nodiscard]] sim::Rate fair_share() const override {
    return sim::Rate::bps(macr_);
  }
  [[nodiscard]] std::string name() const override { return "eprca"; }
  [[nodiscard]] const sim::Trace& macr_trace() const { return macr_trace_; }

  /// Base surface plus the CCR-averaged MACR.
  void register_metrics(obs::Registry& reg,
                        const std::string& prefix) override {
    PortController::register_metrics(reg, prefix);
    reg.add_gauge({prefix + ".macr_mbps", "eprca.macr_mbps",
                   obs::MetricType::kGauge, "Mb/s", "EprcaController",
                   "exponential average of FRM-stamped CCRs"},
                  [this] { return macr_ / 1e6; });
  }

 private:
  sim::Simulator* sim_;
  EprcaConfig config_;
  double link_bps_;
  double macr_;
  atm::WarmStartWindow warm_;
  sim::Trace macr_trace_;
};

}  // namespace phantom::baselines
