#include "atm/abr_source.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace phantom::atm {

std::string to_string(SourceBehavior b) {
  switch (b) {
    case SourceBehavior::kCompliant: return "compliant";
    case SourceBehavior::kGreedy: return "greedy";
    case SourceBehavior::kForging: return "forge";
    case SourceBehavior::kPartial: return "partial";
  }
  return "?";
}

AbrSource::AbrSource(sim::Simulator& sim, int vc, AbrParams params,
                     Link to_network)
    : sim_{&sim},
      vc_{vc},
      params_{params},
      link_{to_network},
      acr_{params.icr},
      last_granted_er_{std::max(params.icr, params.mcr)},
      acr_trace_{"acr.vc" + std::to_string(vc)} {
  params_.validate();
}

void AbrSource::start(sim::Time at) {
  assert(!started_ && "start() may only be called once");
  started_ = true;
  sim_->schedule_at(at, [this] {
    active_ = true;
    last_brm_time_ = sim_->now();  // staleness is measured from startup
    set_acr(acr_);  // record the initial rate
    if (!sending_) {
      sending_ = true;
      send_next_cell();
    }
    on_trm_check();
  });
}

Cell AbrSource::make_forward_rm() const {
  if (behavior_ == SourceBehavior::kForging) {
    // Understate CCR (so rate-learning baselines are steered low) and
    // inflate ER far beyond anything the source could claim honestly.
    // Switches only ever *reduce* ER, so nothing downstream repairs it.
    return Cell::forward_rm(vc_, params_.mcr, params_.pcr * 10.0);
  }
  return Cell::forward_rm(vc_, effective_rate(), params_.pcr);
}

void AbrSource::pre_frm_update() {
  // TM 4.0 source rules, applied at every FRM emission (in-rate and
  // out-of-rate alike — both keep the missing-RM count honest):
  //  * ADTF: an ACR above ICR that has heard no backward RM for ADTF is
  //    stale by definition; snap it to ICR.
  //  * Crm/CDF: once `crm` FRMs are unanswered, cut ACR by `cdf` per
  //    further FRM, never below max(MCR, min(ACR, ICR)) — a beaten-down
  //    source is not pushed lower than it already is.
  const bool obeys = behavior_ == SourceBehavior::kCompliant ||
                     behavior_ == SourceBehavior::kPartial;
  if (obeys && params_.feedback_decay) {
    const sim::Rate icr_floor = std::max(params_.icr, params_.mcr);
    if (sim_->now() - last_brm_time_ > params_.adtf && acr_ > icr_floor) {
      set_acr(icr_floor);
    } else if (frm_since_brm_ >= static_cast<std::uint64_t>(params_.crm)) {
      const sim::Rate floor = std::max(params_.mcr, std::min(acr_, params_.icr));
      const sim::Rate cut = acr_ * params_.cdf;
      if (cut < acr_) set_acr(std::max(floor, cut));
    }
  }
  ++frm_since_brm_;
}

sim::Rate AbrSource::stale_rate_envelope() const {
  if (!active_) return params_.pcr;  // an idle source transmits nothing
  const sim::Rate icr_floor = std::max(params_.icr, params_.mcr);
  // The ADTF backstop, with slack for the worst-case FRM spacing (the
  // decay is applied at FRM emission; the Trm ticker bounds the gap
  // between FRMs by 1.5 * Trm).
  if (sim_->now() - last_brm_time_ > params_.adtf + params_.trm * 2.0) {
    return icr_floor;
  }
  if (frm_since_brm_ < static_cast<std::uint64_t>(params_.crm)) {
    return params_.pcr;  // feedback not yet overdue
  }
  const auto overdue = frm_since_brm_ - static_cast<std::uint64_t>(params_.crm);
  const double decayed = last_granted_er_.bits_per_sec() *
                         std::pow(params_.cdf, static_cast<double>(overdue));
  return std::max(icr_floor, sim::Rate::bps(decayed));
}

void AbrSource::emit_forward_rm() {
  pre_frm_update();
  Cell cell = make_forward_rm();
  cell.sent_at = sim_->now();
  ++rm_sent_;
  last_rm_sent_ = sim_->now();
  link_.deliver(cell);
}

void AbrSource::emit_forged_backward_rm() {
  // A forger injects backward RM cells claiming the path is idle
  // (CI clear, huge ER). They are self-addressed: the ingress switch
  // runs them through the forward port's controller (poisoning any
  // state the algorithm keeps about backward traffic) and then routes
  // them straight back here, where apply_backward_rm's huge ER lets
  // the additive-increase clamp pass unhindered.
  Cell cell;
  cell.kind = CellKind::kBackwardRm;
  cell.vc = vc_;
  cell.ccr = params_.pcr;
  cell.er = params_.pcr * 10.0;
  cell.ci = false;
  cell.sent_at = sim_->now();
  ++rm_sent_;
  ++forged_brm_sent_;
  link_.deliver(cell);
}

void AbrSource::set_behavior(SourceBehavior behavior, double compliance) {
  behavior_ = behavior;
  compliance_ = std::clamp(compliance, 0.0, 1.0);
  switch (behavior_) {
    case SourceBehavior::kGreedy:
    case SourceBehavior::kForging:
      // A defector doesn't wait for permission: jump straight to PCR.
      set_acr(params_.pcr);
      break;
    case SourceBehavior::kCompliant:
      // A reformed defector must not keep its ill-gotten rate.
      set_acr(params_.icr);
      break;
    case SourceBehavior::kPartial:
      break;  // keeps adapting from wherever it is
  }
}

void AbrSource::on_trm_check() {
  // Out-of-rate FRM: keeps the feedback loop alive when the in-rate RM
  // spacing (Nrm cells at the current ACR) exceeds Trm — without it a
  // beaten-down source could wait seconds for permission to recover.
  if (active_ && sim_->now() - last_rm_sent_ >= params_.trm) {
    emit_forward_rm();
  }
  sim_->schedule(params_.trm / 2,
                 sim::bind_member<&AbrSource::on_trm_check>(this));
}

void AbrSource::set_active(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!active_) {
    // The pacing chain notices `active_ == false` and stops; bump the
    // epoch so a stale event can never resume a deactivated source.
    ++epoch_;
    sending_ = false;
    return;
  }
  // Use-it-or-lose-it: restarting after a long idle period resets to ICR
  // so a stale (large) ACR cannot dump a burst into the network.
  const sim::Time idle = sim_->now() - last_send_;
  const sim::Time timeout =
      acr_.transmission_time(kCellBits * params_.nrm) * params_.tof;
  const bool obeys_uili = behavior_ == SourceBehavior::kCompliant ||
                          behavior_ == SourceBehavior::kPartial;
  if (obeys_uili && idle > timeout && acr_ > params_.icr) {
    set_acr(params_.icr);
  }
  if (started_ && !sending_) {
    sending_ = true;
    send_next_cell();
  }
}

void AbrSource::send_next_cell() {
  if (!active_) {
    sending_ = false;
    return;
  }
  // First cell of every Nrm-cell block is the in-rate forward RM cell,
  // so the control loop starts with the very first transmission. CCR
  // carries the rate cells actually leave at.
  Cell cell;
  if (cells_since_rm_ == 0) {
    pre_frm_update();  // may lower ACR; CCR below reflects the cut rate
    cell = make_forward_rm();
    ++rm_sent_;
    last_rm_sent_ = sim_->now();
    if (behavior_ == SourceBehavior::kForging) emit_forged_backward_rm();
  } else {
    cell = Cell::data(vc_);
    // Stamp the AAL5 frame boundary: in-rate RM cells interleave with a
    // frame's data cells on the wire, but the frame itself is data-only.
    cell.frame = frame_id_;
    cell.frame_len = static_cast<std::uint16_t>(params_.frame_cells);
    if (++frame_pos_ >= params_.frame_cells) {
      cell.eof = true;
      frame_pos_ = 0;
      ++frame_id_;
    }
    ++data_sent_;
  }
  cells_since_rm_ = (cells_since_rm_ + 1) % static_cast<std::uint64_t>(params_.nrm);
  cell.sent_at = sim_->now();
  last_send_ = sim_->now();
  link_.deliver(cell);

  // Pace off the post-decay rate: a source that just cut its ACR must
  // not ride out the old spacing for one more cell.
  const sim::Rate effective = effective_rate();
  auto pace = [this, epoch = epoch_] {
    if (epoch != epoch_) return;  // source was deactivated meanwhile
    send_next_cell();
  };
  static_assert(sim::EventQueue::Callback::fits_inline<decltype(pace)>);
  sim_->schedule(effective.transmission_time(kCellBits), std::move(pace));
}

void AbrSource::set_demand(sim::Rate demand) {
  assert(demand.bits_per_sec() > 0.0 && "demand must be positive");
  demand_ = demand;
}

void AbrSource::receive_cell(Cell cell) {
  if (cell.kind != CellKind::kBackwardRm || cell.vc != vc_) return;
  ++brm_received_;
  apply_backward_rm(cell);
}

void AbrSource::apply_backward_rm(const Cell& cell) {
  // Feedback is alive again, whatever it says: the missing-RM count and
  // the ADTF clock restart here.
  frm_since_brm_ = 0;
  last_brm_time_ = sim_->now();
  if (behavior_ == SourceBehavior::kGreedy ||
      behavior_ == SourceBehavior::kForging) {
    // Feedback? What feedback. Pin ACR at PCR regardless.
    last_granted_er_ = params_.pcr;
    set_acr(params_.pcr);
    return;
  }
  sim::Rate next = acr_;
  if (cell.ci) {
    next = next * (1.0 - static_cast<double>(params_.nrm) / params_.rdf);
  } else {
    next = next + params_.air_nrm;
  }
  sim::Rate er = cell.er;
  if (behavior_ == SourceBehavior::kPartial) {
    // Obeys the ER only partially: the effective cap is relaxed toward
    // PCR by (1 - compliance). compliance = 1 is TM 4.0; 0 ignores ER.
    er = std::min(
        sim::Rate::bps(er.bits_per_sec() +
                       (1.0 - compliance_) *
                           (params_.pcr.bits_per_sec() - er.bits_per_sec())),
        params_.pcr);
  }
  last_granted_er_ = std::min(er, params_.pcr);
  next = std::min(next, er);
  next = std::min(next, params_.pcr);
  next = std::max(next, params_.mcr);
  next = std::max(next, params_.tcr);  // keep probing even when beaten down
  set_acr(next);
}

void AbrSource::set_acr(sim::Rate r) {
  acr_ = r;
  acr_trace_.record(sim_->now(), r.bits_per_sec());
  if constexpr (obs::kObsEnabled) {
    if (event_log_ != nullptr) {
      obs::Event e;
      e.time = sim_->now();
      e.kind = obs::EventKind::kSourceRate;
      e.vc = vc_;
      e.a = r.mbits_per_sec();
      event_log_->record(e);
    }
  }
}

void AbrSource::register_metrics(obs::Registry& reg,
                                 const std::string& prefix) {
  reg.add_gauge({prefix + ".acr_mbps", "source.acr_mbps",
                 obs::MetricType::kGauge, "Mb/s", "AbrSource",
                 "current allowed cell rate"},
                [this] { return acr_.mbits_per_sec(); });
  reg.add_counter({prefix + ".data_cells_sent", "source.data_cells_sent",
                   obs::MetricType::kCounter, "cells", "AbrSource",
                   "data cells transmitted"},
                  [this] { return data_sent_; });
  reg.add_counter({prefix + ".frames_sent", "source.frames_sent",
                   obs::MetricType::kCounter, "frames", "AbrSource",
                   "complete AAL5 frames emitted"},
                  [this] { return static_cast<std::uint64_t>(frame_id_); });
  reg.add_counter({prefix + ".rm_cells_sent", "source.rm_cells_sent",
                   obs::MetricType::kCounter, "cells", "AbrSource",
                   "forward RM cells emitted"},
                  [this] { return rm_sent_; });
  reg.add_counter({prefix + ".brm_cells_received", "source.brm_cells_received",
                   obs::MetricType::kCounter, "cells", "AbrSource",
                   "backward RM cells received"},
                  [this] { return brm_received_; });
  reg.add_counter({prefix + ".forged_brm_sent", "source.forged_brm_sent",
                   obs::MetricType::kCounter, "cells", "AbrSource",
                   "self-addressed forged BRM cells emitted (kForging)"},
                  [this] { return forged_brm_sent_; });
  reg.add_gauge({prefix + ".frms_since_brm", "source.frms_since_brm",
                 obs::MetricType::kGauge, "cells", "AbrSource",
                 "FRMs sent since the last BRM (feedback-loss counter)"},
                [this] { return static_cast<double>(frm_since_brm_); });
}

}  // namespace phantom::atm
