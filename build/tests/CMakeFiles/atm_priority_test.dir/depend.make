# Empty dependencies file for atm_priority_test.
# This may be replaced when dependencies are built.
