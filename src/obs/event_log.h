// Structured event tracing: a ring-buffered flight recorder for the
// control loop.
//
// Every layer of the system already *counts* (see obs/metrics.h); what
// the counters cannot answer is "what happened just before it broke" —
// which RM cell carried the stale ER, which drop tipped the queue,
// which fault fired last. The EventLog answers that: components record
// small typed POD events into a fixed-size ring, and the ring can be
// exported as JSONL (one event per line, deterministic bytes) or as
// Chrome trace-event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev — one track per switch port, one per VC).
//
// Hot-path contract: record() is allocation-free — the ring is
// preallocated and events are fixed-size PODs. Strings enter only via
// intern(), which fault injection calls at *arm* time (plan
// application), never per cell. Compiling with PHANTOM_DISABLE_OBS
// turns kObsEnabled into a constant false so every `if (kObsEnabled &&
// log_)` guard in the hot paths folds away entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace phantom::obs {

#ifdef PHANTOM_OBS_OFF
inline constexpr bool kObsEnabled = false;
#else
/// Whether observability instrumentation is compiled in. Constant, so
/// instrumentation guards cost nothing when the build disables it.
inline constexpr bool kObsEnabled = true;
#endif

/// What happened. Each kind documents how it uses the Event payload
/// fields (`detail`, `label`, `a`/`b`/`c`).
enum class EventKind : std::uint8_t {
  kCellEnqueue,     ///< cell accepted into a port queue; a = queue length
  kCellDrop,        ///< cell dropped; detail = DropReason, a = queue length
  kRmForward,       ///< FRM transited a controlled port; a = ER Mb/s,
                    ///< b = CCR Mb/s, c = controller fair share Mb/s
  kRmBackward,      ///< BRM stamped by the forward port's controller;
                    ///< same payload as kRmForward (post-stamp values)
  kPolicerVerdict,  ///< non-conforming cell; detail = 1 tag / 2 drop
  kCacRefusal,      ///< VC setup refused; detail = refusal code,
                    ///< a = requested MCR Mb/s
  kFaultArmed,      ///< fault event scheduled; label = description
  kFaultFired,      ///< fault took effect; label = description
  kFaultRecovered,  ///< fault's recovery half ran; label = description
  kRateUpdate,      ///< controller fair-share update; a = fair share Mb/s
  kSourceRate,      ///< source ACR change; a = ACR Mb/s
};

/// Coarse filter axis over EventKind.
enum class Category : std::uint8_t {
  kCell,        ///< enqueue / drop
  kRm,          ///< RM forward / backward
  kPolicer,     ///< policing verdicts
  kAdmission,   ///< CAC refusals
  kFault,       ///< fault arm / fire / recover
  kController,  ///< controller + source rate updates
};

/// Why a cell was dropped (Event::detail for kCellDrop).
enum class DropReason : std::uint8_t {
  kQueueLimit,      ///< per-port queue_limit overflow
  kClpThreshold,    ///< CLP-tagged cell over the partial-buffer threshold
  kBufferOverflow,  ///< BufferManager hard budget / partition exhaustion
  kBufferEpd,       ///< EPD refused the frame at its first cell
  kBufferPpd,       ///< PPD discarding a damaged frame's tail
  kBufferShed,      ///< shedding elastic traffic above the shed rung
};

[[nodiscard]] const char* to_string(EventKind kind);
[[nodiscard]] const char* to_string(Category cat);
[[nodiscard]] const char* to_string(DropReason reason);
[[nodiscard]] Category category_of(EventKind kind);

/// Inverse of to_string(Category) ("cell", "rm", "policer", "admission",
/// "fault", "controller"); nullopt for unknown names. CLI flag parsing.
[[nodiscard]] std::optional<Category> category_from_string(
    std::string_view name);

/// One recorded event. Fixed-size POD: recording is a struct copy into
/// a preallocated ring slot. -1 in node/port/vc means "not applicable".
struct Event {
  sim::Time time = sim::Time::zero();
  EventKind kind = EventKind::kCellEnqueue;
  std::uint8_t detail = 0;  ///< kind-specific code (DropReason, verdict…)
  std::uint16_t label = 0;  ///< interned string id; 0 = none
  std::int16_t node = -1;   ///< switch index within the network
  std::int16_t port = -1;   ///< output-port index within the switch
  std::int32_t vc = -1;     ///< virtual circuit id
  double a = 0.0;           ///< kind-specific payload (see EventKind)
  double b = 0.0;
  double c = 0.0;
};

/// Ring-buffered event recorder. Capacity is rounded up to a power of
/// two; once full, each record overwrites the oldest event — the log is
/// a flight recorder, not an archive.
class EventLog {
 public:
  /// Which events an export keeps. Unset axes match everything.
  struct Filter {
    std::optional<std::int32_t> vc;
    std::optional<std::int16_t> node;
    std::optional<std::int16_t> port;
    std::optional<Category> category;

    [[nodiscard]] bool matches(const Event& e) const {
      if (vc && e.vc != *vc) return false;
      if (node && e.node != *node) return false;
      if (port && e.port != *port) return false;
      if (category && category_of(e.kind) != *category) return false;
      return true;
    }
  };

  explicit EventLog(std::size_t capacity = 1 << 16);

  /// Records one event. Allocation-free: a struct copy into the ring.
  void record(const Event& e) {
    if constexpr (!kObsEnabled) {
      (void)e;
      return;
    }
    ring_[head_ & mask_] = e;
    ++head_;
  }

  /// Maps a string to a stable small id for Event::label. Allocates on
  /// first sight of a string — callers must keep this off per-cell
  /// paths (fault injection interns at plan-application time). Returns
  /// 0 (no label) if the table is full.
  [[nodiscard]] std::uint16_t intern(std::string_view label);

  /// The string behind an interned id ("" for 0 / unknown).
  [[nodiscard]] const std::string& label(std::uint16_t id) const;

  /// Names a switch node for the Chrome-trace track metadata.
  void set_node_name(std::int16_t node, std::string name);

  /// Events recorded since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const { return head_; }
  /// Events currently held (≤ capacity).
  [[nodiscard]] std::size_t size() const {
    return head_ < capacity() ? static_cast<std::size_t>(head_) : capacity();
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events that overwrote an older one (ring wrapped).
  [[nodiscard]] std::uint64_t overwritten() const {
    return head_ < capacity() ? 0 : head_ - capacity();
  }

  void clear();

  /// Calls `fn(const Event&)` for each held event, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::uint64_t cap = capacity();
    const std::uint64_t begin = head_ < cap ? 0 : head_ - cap;
    for (std::uint64_t i = begin; i < head_; ++i) fn(ring_[i & mask_]);
  }

  /// One JSON object per line, oldest first, filtered. Deterministic
  /// bytes for a deterministic simulation.
  [[nodiscard]] std::string to_jsonl(const Filter& filter = {}) const;

  /// The last `n` matching events as individual JSONL lines (oldest of
  /// the n first) — the flight-recorder view chaos failures attach.
  [[nodiscard]] std::vector<std::string> tail_jsonl(
      std::size_t n, const Filter& filter = {}) const;

  /// Chrome trace-event JSON (the `{"traceEvents":[...]}` object
  /// format): one process per switch (pid = node, named via
  /// set_node_name), one thread per port, plus a dedicated "VC"
  /// process with one thread per virtual circuit for the per-session
  /// events (RM round-trips, policer verdicts, source rates). Rate
  /// updates become counter tracks; everything else instant events.
  [[nodiscard]] std::string to_chrome_trace() const;

  /// Formats one event as a single-line JSON object (no newline).
  [[nodiscard]] std::string event_json(const Event& e) const;

 private:
  std::vector<Event> ring_;
  std::uint64_t head_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<std::string> labels_;  // id -> string; id 0 reserved ""
  std::unordered_map<std::string, std::uint16_t> label_ids_;
  std::unordered_map<std::int16_t, std::string> node_names_;
};

}  // namespace phantom::obs
