# Empty dependencies file for baselines_integration_test.
# This may be replaced when dependencies are built.
