#include "sim/event_queue.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace phantom::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  if (!cb) throw std::logic_error{"EventQueue::schedule: null callback"};
  if (at < floor_) {
    throw std::logic_error{"EventQueue::schedule: " + at.to_string() +
                           " is before the last popped event (" +
                           floor_.to_string() + ")"};
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq});
  callbacks_.emplace(seq, std::move(cb));
  ++live_count_;
  return EventId{seq};
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  const auto it = callbacks_.find(id.seq_);
  if (it == callbacks_.end()) return;  // already fired or cancelled
  callbacks_.erase(it);
  cancelled_.insert(id.seq_);
  --live_count_;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  floor_ = top.time;
  auto it = callbacks_.find(top.seq);
  assert(it != callbacks_.end());
  Popped out{top.time, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return out;
}

}  // namespace phantom::sim
