// Fig. 1-3 (reconstructed numbering): Phantom convergence on a single
// 150 Mb/s bottleneck — MACR, sessions' allowed rate, and queue length
// over time, for several session counts; plus a convergence-time table.
//
// Paper shape to reproduce: MACR overshoots toward u*C while sources
// ramp, then settles at u*C/(n+1) within a few tens of ms; sessions'
// ACR tracks it; the queue spikes transiently and drains to zero.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

int main() {
  exp::print_header("Fig 1-3", "Phantom convergence, n greedy sessions");

  exp::Table table{{"sessions", "goodput/session (Mb/s)", "ideal u*C/(n+1)",
                    "Jain", "MACR settle (ms)", "max queue (cells)",
                    "steady queue"}};

  for (const int n : {2, 5, 10}) {
    sim::Simulator sim;
    AbrBottleneck b{sim, exp::Algorithm::kPhantom, n};
    exp::QueueSampler queue{sim, b.port()};
    exp::GoodputProbe probe{sim, b.net};
    b.net.start_all(Time::zero(), Time::zero());
    sim.run_until(Time::ms(300));
    probe.mark();
    sim.run_until(Time::ms(400));

    const auto& ctl = dynamic_cast<const core::PhantomController&>(
        b.port().controller());
    const double ideal = 0.95 * 150.0 / (n + 1);
    const auto settle = stats::convergence_time(ctl.macr_trace().samples(),
                                                ideal * 1e6, 0.10);
    const auto rates = probe.rates_mbps();
    double mean = 0;
    for (const double r : rates) mean += r;
    mean /= static_cast<double>(rates.size());

    table.add_row({std::to_string(n), exp::Table::num(mean),
                   exp::Table::num(ideal),
                   exp::Table::num(stats::jain_index(rates), 3),
                   exp::Table::num(settle.milliseconds(), 1),
                   std::to_string(b.port().max_queue_length()),
                   std::to_string(b.port().queue_length())});

    if (n == 2) {  // the figure's curves, for the base case
      exp::print_series("MACR, n=2 (Mb/s)", ctl.macr_trace().samples(), 1e-6,
                        20);
      exp::print_series("session 0 allowed rate (Mb/s)",
                        b.net.source(0).acr_trace().samples(), 1e-6, 20);
      exp::print_series("queue length (cells)", queue.trace().samples(), 1.0,
                        20);
    }
  }
  table.print();
  return 0;
}
