# Empty compiler generated dependencies file for topo_network_test.
# This may be replaced when dependencies are built.
