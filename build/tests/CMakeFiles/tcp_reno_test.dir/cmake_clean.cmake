file(REMOVE_RECURSE
  "CMakeFiles/tcp_reno_test.dir/tcp_reno_test.cc.o"
  "CMakeFiles/tcp_reno_test.dir/tcp_reno_test.cc.o.d"
  "tcp_reno_test"
  "tcp_reno_test.pdb"
  "tcp_reno_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_reno_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
