# Empty dependencies file for phantom_integration_test.
# This may be replaced when dependencies are built.
