// Property tests of the max-min solver on randomized inputs: the
// allocation must always be feasible, saturate each session's
// bottleneck, and satisfy the max-min defining property (no session can
// gain without hurting an equal-or-poorer one).
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"
#include "stats/fairness.h"

namespace phantom::stats {
namespace {

using sim::Rate;

struct Instance {
  std::vector<double> capacity;                 // bps
  std::vector<std::vector<std::size_t>> paths;  // session -> links
  std::vector<double> demand;                   // bps (may be +inf)
  std::vector<double> rate;                     // solver output
};

Instance random_instance(std::uint64_t seed) {
  sim::Rng rng{seed};
  Instance inst;
  MaxMinSolver solver;
  const int links = static_cast<int>(rng.uniform_int(1, 6));
  for (int l = 0; l < links; ++l) {
    inst.capacity.push_back(rng.uniform(10e6, 200e6));
    solver.add_link(Rate::bps(inst.capacity.back()));
  }
  const int sessions = static_cast<int>(rng.uniform_int(2, 10));
  for (int s = 0; s < sessions; ++s) {
    // Random contiguous path (so multi-link sessions exist).
    const auto from = static_cast<std::size_t>(rng.uniform_int(0, links - 1));
    const auto to =
        static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(from), links - 1));
    std::vector<std::size_t> path;
    for (std::size_t l = from; l <= to; ++l) path.push_back(l);
    inst.paths.push_back(path);
    const bool bounded = rng.bernoulli(0.3);
    const double demand =
        bounded ? rng.uniform(1e6, 50e6) : std::numeric_limits<double>::infinity();
    inst.demand.push_back(demand);
    solver.add_session(path, Rate::bps(std::min(demand, 1e18)));
  }
  for (const auto& r : solver.solve()) {
    inst.rate.push_back(r.bits_per_sec());
  }
  return inst;
}

std::vector<double> link_loads(const Instance& inst) {
  std::vector<double> load(inst.capacity.size(), 0.0);
  for (std::size_t s = 0; s < inst.paths.size(); ++s) {
    for (const std::size_t l : inst.paths[s]) load[l] += inst.rate[s];
  }
  return load;
}

class MaxMinPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinPropertySweep, AllocationIsFeasible) {
  const Instance inst = random_instance(static_cast<std::uint64_t>(GetParam()));
  const auto load = link_loads(inst);
  for (std::size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l], inst.capacity[l] * (1 + 1e-9)) << "link " << l;
  }
  for (std::size_t s = 0; s < inst.rate.size(); ++s) {
    EXPECT_GT(inst.rate[s], 0.0) << "session " << s << " starved";
    EXPECT_LE(inst.rate[s], inst.demand[s] * (1 + 1e-9));
  }
}

TEST_P(MaxMinPropertySweep, EverySessionHasASaturatedBottleneckOrMetDemand) {
  const Instance inst = random_instance(static_cast<std::uint64_t>(GetParam()));
  const auto load = link_loads(inst);
  for (std::size_t s = 0; s < inst.rate.size(); ++s) {
    const bool demand_met = inst.rate[s] >= inst.demand[s] * (1 - 1e-9);
    bool saturated = false;
    for (const std::size_t l : inst.paths[s]) {
      saturated |= load[l] >= inst.capacity[l] * (1 - 1e-9);
    }
    EXPECT_TRUE(demand_met || saturated) << "session " << s;
  }
}

TEST_P(MaxMinPropertySweep, NoGainWithoutHurtingAPoorerSession) {
  // Max-min defining property: a session below its demand cannot be
  // given more bandwidth using only capacity taken from strictly
  // richer sessions. Equivalent check: on some saturated link of the
  // session, it already has the maximal rate among sessions whose
  // demand is not the binding constraint.
  const Instance inst = random_instance(static_cast<std::uint64_t>(GetParam()));
  const auto load = link_loads(inst);
  for (std::size_t s = 0; s < inst.rate.size(); ++s) {
    if (inst.rate[s] >= inst.demand[s] * (1 - 1e-9)) continue;  // demand-bound
    bool justified = false;
    for (const std::size_t l : inst.paths[s]) {
      if (load[l] < inst.capacity[l] * (1 - 1e-9)) continue;  // not saturated
      // On this saturated link, is `s` among the top earners (so any
      // increase must come from an equal-or-poorer session)?
      double max_rate_on_link = 0.0;
      for (std::size_t t = 0; t < inst.rate.size(); ++t) {
        for (const std::size_t lt : inst.paths[t]) {
          if (lt == l) max_rate_on_link = std::max(max_rate_on_link, inst.rate[t]);
        }
      }
      if (inst.rate[s] >= max_rate_on_link * (1 - 1e-9)) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "session " << s << " could be raised";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinPropertySweep, ::testing::Range(1, 25));

}  // namespace
}  // namespace phantom::stats
