// Bounded switch cell memory: one hard budget per switch, shared by all
// ports, with frame-aware discard when it runs short.
//
// The reproduction's output ports each had a private queue_limit, which
// bounds one queue but not the switch: a box with 16 ports and 1000-cell
// limits can still hold 16000 cells, and nothing relates that number to
// the memory a real switch actually has. The BufferManager owns the
// switch-wide budget and decides, per arriving cell, whether buffering
// it is worth the memory:
//
//  * Dynamic per-port partitioning (Choudhury & Hahne): a port may hold
//    at most alpha * (budget - total_in_use) cells, so an overloaded
//    port's allowance shrinks exactly as the switch fills and no static
//    carve-up strands memory on idle ports.
//  * A guaranteed-class reservation: the top `guaranteed_fraction` of
//    the budget is reachable only by high-priority (CBR/VBR) cells and
//    by MCR-protected frames, so elastic ABR overload cannot evict the
//    traffic the switch contracted to carry.
//  * Early Packet Discard: above `epd_fraction` occupancy, *new* frames
//    are refused at their first cell. Dropping a whole frame costs the
//    sender one frame; dropping one mid-frame cell costs the receiver
//    the whole frame anyway while the remaining cells still burn buffer
//    and link capacity downstream [RF95-style EPD, see PAPERS.md].
//  * Partial Packet Discard: once any cell of a frame is lost, the rest
//    of that frame's cells are dropped too — except the EOM cell, which
//    is forwarded so the receiver can delimit (and discard) the corrupt
//    frame immediately instead of folding it into the next one.
//  * MCR protection: per-VC token buckets at the admitted MCR mark
//    frames inside the minimum-rate contract as protected; protected
//    frames bypass EPD and shedding and are dropped only on true budget
//    exhaustion. This is the "never starve an admitted VC below MCR"
//    rung of the degradation ladder.
//
// RM cells never carry frames and are exempt from EPD/shedding (losing
// control traffic under overload is how overload becomes collapse); they
// are still counted against the budget and drop on hard exhaustion.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "atm/cell.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace phantom::atm {

struct BufferConfig {
  /// Hard switch-wide cell memory, in cells. Every queued cell on every
  /// port of the switch counts against it.
  std::size_t budget_cells = 8192;
  /// Fraction of the budget reachable only by guaranteed-class cells
  /// and MCR-protected frames (the reservation elastic traffic cannot
  /// touch).
  double guaranteed_fraction = 0.10;
  /// Choudhury–Hahne dynamic-threshold factor: a port may occupy at
  /// most alpha * (budget - total_in_use) cells. A single hot port
  /// saturates at alpha/(1+alpha) of the budget, so alpha must be
  /// large enough that this cap sits above shed_fraction — otherwise
  /// the EPD/shed rungs are unreachable on a one-bottleneck switch and
  /// every discard degrades to mid-frame overflow. 8 puts the cap at
  /// ~0.89 while still collapsing to a fair split when several ports
  /// heat up (k hot ports share k*alpha/(1+k*alpha) of the budget).
  double alpha = 8.0;
  /// Occupancy fraction (of the effective budget) at which EPD starts
  /// refusing new elastic frames.
  double epd_fraction = 0.70;
  /// Occupancy fraction at which the switch sheds elastic traffic
  /// mid-frame (the last rung before exhaustion).
  double shed_fraction = 0.85;
  /// Ablation switch: EPD off degenerates to tail-dropping individual
  /// cells at the budget, which is exactly the goodput cliff the
  /// overload figure measures.
  bool epd = true;

  /// Throws std::invalid_argument on an inconsistent configuration.
  void validate() const;
};

/// How full the switch is, as a ladder of increasingly lossy modes. The
/// level is derived from occupancy, so it falls back down as queues
/// drain — degradation is a mode, not a ratchet.
enum class DegradationLevel {
  kNormal,        ///< below the EPD threshold; no frame-aware discard
  kEarlyDiscard,  ///< EPD refusing new elastic frames
  kShedding,      ///< dropping elastic cells mid-frame (PPD cleanup)
  kExhausted,     ///< at the hard budget; only departures make room
};

[[nodiscard]] std::string to_string(DegradationLevel level);

/// Per-switch bounded cell memory with frame-aware discard. Ports call
/// `admit` before queueing and `release` after transmitting; everything
/// else is bookkeeping the overload experiments and invariants read.
class BufferManager {
 public:
  enum class Verdict {
    kAccept,        ///< buffer the cell
    kDropOverflow,  ///< hard budget / partition exhaustion
    kDropEpd,       ///< EPD refused the frame at its first cell
    kDropPpd,       ///< PPD discarding the tail of a damaged frame
    kDropShed,      ///< shedding elastic traffic above the shed threshold
  };

  explicit BufferManager(BufferConfig config = {});

  /// Registers a port and returns its id (dense, starting at 0).
  [[nodiscard]] int register_port();

  /// Decides whether `port` may buffer `cell` at time `now`, updating
  /// occupancy and discard state. kAccept means the caller MUST queue
  /// the cell and later call `release` for it.
  [[nodiscard]] Verdict admit(int port, const Cell& cell, sim::Time now);

  /// Returns the memory of a transmitted cell. `port` and `cell` must
  /// match a prior accepted `admit`.
  void release(int port, const Cell& cell);

  /// Registers VC's admitted MCR: frames within this rate's token
  /// bucket are protected from EPD/shedding. A zero MCR (or never
  /// calling this) leaves the VC fully elastic.
  void set_vc_mcr(int vc, sim::Rate mcr, sim::Time now);

  /// Drops a VC's frame/MCR state (session teardown / reaper sweep).
  /// Returns whether the VC had state to evict.
  bool evict_vc(int vc);

  /// The memsqueeze fault: shrinks the effective budget to
  /// `fraction` of the configured one (fraction in (0, 1]). Cells
  /// already buffered above the new budget are not evicted — they
  /// drain, and the grace high-water mark below tracks that the excess
  /// only ever shrinks.
  void squeeze(double fraction);
  void unsqueeze() { squeeze(1.0); }

  [[nodiscard]] const BufferConfig& config() const { return config_; }
  [[nodiscard]] std::size_t effective_budget() const;
  [[nodiscard]] double squeeze_fraction() const { return squeeze_fraction_; }
  [[nodiscard]] std::size_t cells_in_use() const { return in_use_; }
  [[nodiscard]] std::size_t cells_in_use(int port) const;
  [[nodiscard]] std::size_t peak_cells_in_use() const { return peak_; }

  /// The budget invariant, squeeze-aware: occupancy never exceeds the
  /// effective budget except for cells buffered before a squeeze, and
  /// that grace excess must shrink monotonically as they drain.
  [[nodiscard]] bool within_budget() const {
    return in_use_ <= std::max(effective_budget(), grace_);
  }
  /// Transient allowance for cells buffered before the last squeeze
  /// (equals the budget when no squeeze debt remains).
  [[nodiscard]] std::size_t grace_cells() const { return grace_; }

  [[nodiscard]] DegradationLevel level() const;
  /// Worst level reached so far (for reports; `level()` itself recovers
  /// as queues drain).
  [[nodiscard]] DegradationLevel worst_level() const { return worst_level_; }

  [[nodiscard]] std::uint64_t frames_epd_discarded() const {
    return epd_frames_;
  }
  [[nodiscard]] std::uint64_t cells_ppd_discarded() const {
    return ppd_cells_;
  }
  [[nodiscard]] std::uint64_t cells_shed() const { return shed_cells_; }
  [[nodiscard]] std::uint64_t cells_overflow_dropped() const {
    return overflow_cells_;
  }
  [[nodiscard]] std::uint64_t cells_accepted() const { return accepted_; }
  /// Cells admitted under MCR protection (inside their VC's token
  /// bucket) — the traffic the ladder must never shed.
  [[nodiscard]] std::uint64_t mcr_protected_cells() const {
    return protected_cells_;
  }
  [[nodiscard]] std::size_t tracked_vcs() const { return vcs_.size(); }

  /// Registers the discard ladder's counters and occupancy gauges
  /// under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix);

 private:
  struct VcState {
    double mcr_cells_per_sec = 0.0;
    double tokens = 0.0;   ///< MCR credit, in cells
    double token_cap = 2.0;
    sim::Time last_refill = sim::Time::zero();
    bool in_frame = false;
    std::uint32_t cur_frame = 0;
    bool discarding = false;       ///< EPD/PPD: drop the rest of cur_frame
    bool epd_frame = false;        ///< cur_frame was EPD-refused whole
    bool head_accepted = false;    ///< any cell of cur_frame buffered?
    bool protected_frame = false;  ///< cur_frame rides on MCR credit
  };

  [[nodiscard]] bool frame_fits_mcr(VcState& st, const Cell& cell,
                                    sim::Time now);
  void account_accept(int port, const Cell& cell);
  void note_level();

  BufferConfig config_;
  double squeeze_fraction_ = 1.0;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t grace_ = 0;  ///< squeeze debt: pre-squeeze cells not yet drained
  std::vector<std::size_t> port_in_use_;
  std::unordered_map<int, VcState> vcs_;
  DegradationLevel worst_level_ = DegradationLevel::kNormal;
  std::uint64_t epd_frames_ = 0;
  std::uint64_t ppd_cells_ = 0;
  std::uint64_t shed_cells_ = 0;
  std::uint64_t overflow_cells_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t protected_cells_ = 0;
};

}  // namespace phantom::atm
