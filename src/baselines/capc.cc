#include "baselines/capc.h"

#include <algorithm>
#include <cassert>

#include "atm/cell.h"

namespace phantom::baselines {

CapcController::CapcController(sim::Simulator& sim, sim::Rate link_capacity,
                               CapcConfig config)
    : sim_{&sim},
      config_{config},
      target_bps_{link_capacity.bits_per_sec() * config.utilization},
      ers_{std::clamp(config.initial_ers.bits_per_sec(),
                      config.min_ers.bits_per_sec(), target_bps_)},
      ers_trace_{"capc.ers"} {
  config_.validate();
  assert(link_capacity.bits_per_sec() > 0.0);
  ers_trace_.record(sim_->now(), ers_);
  sim_->schedule(config_.interval,
                 sim::bind_member<&CapcController::on_interval>(this));
}

void CapcController::on_cell_accepted(const atm::Cell&, std::size_t) {
  ++arrived_cells_;
}

void CapcController::on_cell_dropped(const atm::Cell&) { ++arrived_cells_; }

void CapcController::on_forward_rm(atm::Cell& cell, std::size_t) {
  // CAPC learns nothing from CCRs in steady state; the warm-start audit
  // window is the only listener.
  if (warm_.open() && warm_.sample(cell.ccr.bits_per_sec())) {
    close_warm_window();
  }
}

void CapcController::close_warm_window() {
  if (const auto seed = warm_.close()) {
    ers_ = std::clamp(*seed, config_.min_ers.bits_per_sec(), target_bps_);
    warm_.record_seed(ers_);
    ers_trace_.record(sim_->now(), ers_);
  }
}

void CapcController::warm_restart() {
  reset();
  warm_.begin();
}

void CapcController::on_interval() {
  if (warm_.ripe()) close_warm_window();  // first tick after RM traffic
  const double offered_bps = static_cast<double>(arrived_cells_) *
                             static_cast<double>(atm::kCellBits) /
                             config_.interval.seconds();
  arrived_cells_ = 0;
  const double z = offered_bps / target_bps_;
  if (z < 1.0) {
    ers_ *= std::min(config_.eru, 1.0 + (1.0 - z) * config_.rate_up);
  } else {
    ers_ *= std::max(config_.erf, 1.0 - (z - 1.0) * config_.rate_down);
  }
  ers_ = std::clamp(ers_, config_.min_ers.bits_per_sec(), target_bps_);
  ers_trace_.record(sim_->now(), ers_);
  note_rate_update(sim_->now());
  sim_->schedule(config_.interval,
                 sim::bind_member<&CapcController::on_interval>(this));
}

void CapcController::reset() {
  ers_ = std::clamp(config_.initial_ers.bits_per_sec(),
                    config_.min_ers.bits_per_sec(), target_bps_);
  arrived_cells_ = 0;
  ers_trace_.record(sim_->now(), ers_);
}

void CapcController::on_backward_rm(atm::Cell& cell, std::size_t queue_len) {
  cell.er = std::min(cell.er, sim::Rate::bps(ers_));
  if (queue_len > config_.ci_queue_threshold) cell.ci = true;
}

}  // namespace phantom::baselines
