// Scaling behaviour: session counts from 2 to 50 on one port.
//
// Two paper claims live here: utilization grows as n/(n+1) (the phantom
// session's share becomes negligible), and the per-port state stays
// O(1) no matter how many sessions arrive. The large-n rows also expose
// the operating envelope: with the default (coarse) AIR the control
// granularity exceeds the fair share around n ~ 30, and either AIR or
// the relative MACR floor must be scaled — the trade-off DESIGN.md §3
// documents.
//
// `--json=PATH` additionally records the kernel-level cost of the whole
// sweep (events executed, wall-clock, events/sec) in the schema the
// perf-smoke CI job reads — the macro counterpart to bench_micro's
// per-primitive numbers.
#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

struct Row {
  double total = 0, jain = 0;
  std::size_t max_queue = 0;
  std::uint64_t events = 0;
};

Row run(int n, sim::Rate air, double floor_fraction) {
  sim::Simulator sim;
  core::PhantomConfig cfg;
  cfg.min_macr_fraction = floor_fraction;
  topo::AbrNetwork net{sim, exp::make_phantom_factory(cfg)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  atm::AbrParams params;
  params.air_nrm = air;
  for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest, params);
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::ms(1));
  sim.run_until(Time::ms(600));
  probe.mark();
  sim.run_until(Time::ms(1000));
  Row out;
  const auto rates = probe.rates_mbps();
  for (const double r : rates) out.total += r;
  out.jain = stats::jain_index(rates);
  out.max_queue = net.dest_port(dest).max_queue_length();
  out.events = sim.events_executed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  exp::print_header("Scaling", "n sessions on one 150 Mb/s Phantom port");
  exp::Table t{{"n", "params", "total goodput", "ideal n/(n+1)*u*C", "Jain",
                "max queue"}};
  std::uint64_t events = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  for (const int n : {2, 5, 10, 20, 30, 50}) {
    const double ideal = 0.95 * 150 * n / (n + 1);
    const Row defaults = run(n, Rate::mbps(4.25), 0.01);
    events += defaults.events;
    t.add_row({std::to_string(n), "defaults", exp::Table::num(defaults.total),
               exp::Table::num(ideal), exp::Table::num(defaults.jain, 3),
               std::to_string(defaults.max_queue)});
    if (n >= 30) {
      const Row scaled = run(n, Rate::mbps(0.5), 0.02);
      events += scaled.events;
      t.add_row({std::to_string(n), "AIR=0.5, floor=2%",
                 exp::Table::num(scaled.total), exp::Table::num(ideal),
                 exp::Table::num(scaled.jain, 3),
                 std::to_string(scaled.max_queue)});
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  t.print();
  std::printf(
      "\nexpected: near-ideal totals through n ~ 20 with defaults; at\n"
      "n >= 30 the default AIR (4.25 Mb/s per RM) exceeds the fair share\n"
      "and the system limit-cycles — rescaling AIR / the MACR floor\n"
      "restores the n/(n+1) law. Per-port state is identical in every\n"
      "row (two doubles + a counter).\n");
  std::printf("\nkernel: %llu events in %.3f s wall (%.3g events/sec)\n",
              static_cast<unsigned long long>(events), wall_s,
              static_cast<double>(events) / wall_s);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_tab_scale: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"schema\": \"phantom-bench-tab-scale-v1\",\n"
                 "  \"events\": %llu,\n  \"wall_s\": %.6g,\n"
                 "  \"events_per_sec\": %.6g\n}\n",
                 static_cast<unsigned long long>(events), wall_s,
                 static_cast<double>(events) / wall_s);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
