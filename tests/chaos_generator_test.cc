// Fault-schedule generation: grammar round-trips, positional parse
// errors, determinism, and validity of generated plans.
#include <gtest/gtest.h>

#include <string>

#include "chaos/generator.h"
#include "fault/fault_injector.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace phantom {
namespace {

using sim::Time;

chaos::ScenarioSpec spec_of(chaos::ScenarioSpec::Kind kind) {
  chaos::ScenarioSpec spec;
  spec.kind = kind;
  spec.sessions = 4;
  return spec;
}

TEST(GeneratorTest, RoundTripPropertyOverGeneratedPlans) {
  // The core property the shrinker and CLI replay depend on: every
  // generated plan survives to_spec -> parse exactly.
  for (const auto kind : {chaos::ScenarioSpec::Kind::kBottleneck,
                          chaos::ScenarioSpec::Kind::kParking}) {
    const auto spec = spec_of(kind);
    sim::Rng rng{2026};
    for (int i = 0; i < 30; ++i) {
      const auto plan = chaos::generate_plan(rng, spec);
      const std::string text = plan.to_spec();
      EXPECT_EQ(fault::FaultPlan::parse(text), plan) << text;
    }
  }
}

TEST(GeneratorTest, GeneratedPlansApplyCleanly) {
  // Every target index the generator picks must resolve against the
  // actually-built topology.
  for (const auto kind : {chaos::ScenarioSpec::Kind::kBottleneck,
                          chaos::ScenarioSpec::Kind::kParking}) {
    const auto spec = spec_of(kind);
    sim::Rng rng{7};
    for (int i = 0; i < 20; ++i) {
      const auto plan = chaos::generate_plan(rng, spec);
      sim::Simulator sim{1};
      topo::AbrNetwork net{sim, spec.factory()};
      chaos::build_topology(spec, net);
      fault::FaultInjector injector{sim, net};
      EXPECT_NO_THROW(injector.apply(plan)) << plan.to_spec();
    }
  }
}

TEST(GeneratorTest, SameSeedSamePlan) {
  const auto spec = spec_of(chaos::ScenarioSpec::Kind::kBottleneck);
  sim::Rng a{42};
  sim::Rng b{42};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(chaos::generate_plan(a, spec), chaos::generate_plan(b, spec));
  }
}

TEST(GeneratorTest, EveryLeaveHasALaterJoinOfTheSameSession) {
  // The differential oracle compares end states, so generated churn
  // must always restore the nominal session set.
  const auto spec = spec_of(chaos::ScenarioSpec::Kind::kBottleneck);
  sim::Rng rng{11};
  for (int i = 0; i < 40; ++i) {
    const auto plan = chaos::generate_plan(rng, spec);
    for (std::size_t e = 0; e < plan.events.size(); ++e) {
      if (plan.events[e].kind != fault::FaultEvent::Kind::kLeave) continue;
      bool rejoined = false;
      for (std::size_t j = e + 1; j < plan.events.size(); ++j) {
        if (plan.events[j].kind == fault::FaultEvent::Kind::kJoin &&
            plan.events[j].target.index == plan.events[e].target.index &&
            plan.events[j].at > plan.events[e].at) {
          rejoined = true;
        }
      }
      EXPECT_TRUE(rejoined) << plan.to_spec();
    }
  }
}

TEST(GeneratorTest, EventsRespectTheRecoveryBudget) {
  const auto spec = spec_of(chaos::ScenarioSpec::Kind::kBottleneck);
  chaos::GenOptions opt;
  sim::Rng rng{3};
  for (int i = 0; i < 40; ++i) {
    const auto plan = chaos::generate_plan(rng, spec, opt);
    EXPECT_LE(plan.last_recovery_time(), spec.horizon - opt.recovery_budget)
        << plan.to_spec();
    EXPECT_GE(plan.first_fault_time(), spec.horizon / 3) << plan.to_spec();
  }
}

TEST(GeneratorTest, TooShortHorizonThrows) {
  auto spec = spec_of(chaos::ScenarioSpec::Kind::kBottleneck);
  spec.horizon = Time::ms(100);  // < recovery budget alone
  sim::Rng rng{1};
  EXPECT_THROW((void)chaos::generate_plan(rng, spec), std::invalid_argument);
}

TEST(FaultPlanParseErrorTest, NamesTokenEventIndexAndPosition) {
  try {
    (void)fault::FaultPlan::parse("outage:trunk0:10:5;outage:trunk0:x:50");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'x'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("event 2"), std::string::npos) << msg;
    // The second event starts at character 19.
    EXPECT_NE(msg.find("at character 19"), std::string::npos) << msg;
    EXPECT_NE(msg.find("outage:trunk0:x:50"), std::string::npos) << msg;
  }
}

TEST(FaultPlanParseErrorTest, FirstEventPositionIsZero) {
  try {
    (void)fault::FaultPlan::parse("meteor:trunk0:1:2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("event 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("at character 0"), std::string::npos) << msg;
  }
}

TEST(FaultPlanSpecTest, HandRolledPlanRoundTripsThroughText) {
  fault::FaultPlan plan;
  plan.outage(fault::trunk(0), Time::ms(250), Time::ms(50))
      .flap(fault::dest(1), Time::ms(100), 3, Time::ms(5), Time::ms(10))
      .burst(fault::trunk(0), Time::ms(300), Time::ms(40), 0.1, 0.3, 0.5)
      .rm_fault(fault::dest(0), Time::ms(350), Time::ms(20), 0.25, 0.5)
      .restart(fault::trunk(0), Time::ms(450))
      .leave(1, Time::ms(500))
      .join(1, Time::ms(550));
  EXPECT_EQ(fault::FaultPlan::parse(plan.to_spec()), plan) << plan.to_spec();
}

TEST(FaultPlanSpecTest, SubMillisecondTimesSerializeExactly) {
  fault::FaultPlan plan;
  plan.outage(fault::trunk(0), Time::us(1500), Time::ns(250'000));
  EXPECT_EQ(plan.to_spec(), "outage:trunk0:1.5:0.25");
  EXPECT_EQ(fault::FaultPlan::parse(plan.to_spec()), plan);
}

TEST(FaultPlanSpecTest, CustomEventsHaveNoTextualForm) {
  fault::FaultPlan plan;
  plan.custom(Time::ms(10), [] {});
  EXPECT_THROW((void)plan.to_spec(), std::logic_error);
}

}  // namespace
}  // namespace phantom
