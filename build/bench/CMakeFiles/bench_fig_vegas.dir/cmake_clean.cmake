file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_vegas.dir/bench_fig_vegas.cc.o"
  "CMakeFiles/bench_fig_vegas.dir/bench_fig_vegas.cc.o.d"
  "bench_fig_vegas"
  "bench_fig_vegas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_vegas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
