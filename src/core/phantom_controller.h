// Phantom as an ATM switch port controller.
#pragma once

#include <cstdint>
#include <string>

#include "atm/port_controller.h"
#include "core/phantom_config.h"
#include "core/residual_filter.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace phantom::core {

/// The paper's algorithm attached to one switch output port:
///
///  * every Δt it measures the offered load (cells that arrived for this
///    port, whether queued or dropped) and feeds the ResidualFilter;
///  * every backward RM cell of a VC routed through this port gets
///    ER := min(ER, MACR) — the phantom's rate *is* the allowed rate;
///  * optionally (efci_queue_threshold > 0) data cells are EFCI-marked
///    while the queue is long, enabling the binary-feedback variant the
///    paper's TCP section uses.
///
/// Per-port state: the filter's two doubles + one interval counter —
/// independent of the number of VCs, as required for the paper's
/// "constant space" class (the MACR trace is measurement-only).
class PhantomController final : public atm::PortController {
 public:
  /// Starts the Δt interval timer immediately.
  PhantomController(sim::Simulator& sim, sim::Rate link_capacity,
                    PhantomConfig config = {});

  void on_cell_accepted(const atm::Cell& cell, std::size_t queue_len) override;
  void on_cell_dropped(const atm::Cell& cell) override;
  void on_forward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void on_backward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void reset() override;
  void warm_restart() override;
  [[nodiscard]] const atm::WarmStartAudit* warm_audit() const override {
    return &warm_.audit();
  }
  [[nodiscard]] bool mark_efci(std::size_t queue_len) const override;

  [[nodiscard]] sim::Rate fair_share() const override { return filter_.macr(); }
  [[nodiscard]] std::string name() const override { return "phantom"; }

  /// MACR after every interval update (the paper's MACR curves).
  [[nodiscard]] const sim::Trace& macr_trace() const { return macr_trace_; }
  [[nodiscard]] std::uint64_t intervals_elapsed() const { return intervals_; }

  /// Base surface plus the MACR estimate and interval count.
  void register_metrics(obs::Registry& reg,
                        const std::string& prefix) override {
    PortController::register_metrics(reg, prefix);
    reg.add_gauge({prefix + ".macr_mbps", "phantom.macr_mbps",
                   obs::MetricType::kGauge, "Mb/s", "PhantomController",
                   "residual-filter MACR (the phantom session's rate)"},
                  [this] { return filter_.macr().mbits_per_sec(); });
    reg.add_counter({prefix + ".intervals", "phantom.intervals",
                     obs::MetricType::kCounter, "intervals",
                     "PhantomController",
                     "measurement intervals elapsed (filter updates)"},
                    [this] { return intervals_; });
  }

 private:
  void on_interval();
  void close_warm_window();

  bool over_subscribed_ = false;  // binary mode: last interval's verdict
  atm::WarmStartWindow warm_;

  sim::Simulator* sim_;
  PhantomConfig config_;
  ResidualFilter filter_;
  std::uint64_t arrived_cells_ = 0;  // accepted + dropped in this interval
  std::uint64_t intervals_ = 0;
  sim::Trace macr_trace_;
};

}  // namespace phantom::core
