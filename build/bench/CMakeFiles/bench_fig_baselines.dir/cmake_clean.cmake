file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_baselines.dir/bench_fig_baselines.cc.o"
  "CMakeFiles/bench_fig_baselines.dir/bench_fig_baselines.cc.o.d"
  "bench_fig_baselines"
  "bench_fig_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
