file(REMOVE_RECURSE
  "CMakeFiles/baselines_erica_test.dir/baselines_erica_test.cc.o"
  "CMakeFiles/baselines_erica_test.dir/baselines_erica_test.cc.o.d"
  "baselines_erica_test"
  "baselines_erica_test.pdb"
  "baselines_erica_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_erica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
