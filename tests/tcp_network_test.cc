#include "tcp/tcp_network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

TEST(TcpNetworkTest, SingleBottleneckWiring) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  const auto s = net.add_sink_node(r, {});
  const auto f0 = net.add_flow(r, {}, s);
  const auto f1 = net.add_flow(r, {}, s);
  EXPECT_EQ(net.num_flows(), 2u);
  EXPECT_EQ(f0, 0u);
  EXPECT_EQ(f1, 1u);
  EXPECT_EQ(net.sink_port(s).policy().name(), "droptail");
}

TEST(TcpNetworkTest, DataFlowsEndToEnd) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  const auto s = net.add_sink_node(r, {});
  net.add_flow(r, {}, s);
  net.start_all(Time::zero(), Time::zero());
  // Skip the slow-start/first-RTO transient, then expect near-capacity
  // goodput: 10 Mb/s * 512/552 = 9.27 Mb/s.
  sim.run_until(Time::sec(2));
  const auto at_2s = net.delivered_bytes(0);
  sim.run_until(Time::sec(4));
  const double mbps =
      static_cast<double>(net.delivered_bytes(0) - at_2s) * 8.0 / 2.0 / 1e6;
  EXPECT_GT(mbps, 7.5);
  EXPECT_EQ(net.router(r).unrouted_packets(), 0u);
  EXPECT_GT(net.source(0).bytes_acked(), 0);
  EXPECT_GT(net.sink(0).acks_sent(), 100u);
}

TEST(TcpNetworkTest, MultiHopPathDelivers) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto a = net.add_router("a");
  const auto b = net.add_router("b");
  const auto t = net.add_trunk(a, b, {});
  const auto s = net.add_sink_node(b, {});
  net.add_flow(a, {t}, s);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(1));
  EXPECT_GT(net.delivered_bytes(0), 400'000);  // ~4.4 Mb/s incl. slow-start/RTO transient
  EXPECT_GT(net.trunk_port(t).packets_transmitted(), 500u);
}

TEST(TcpNetworkTest, PathValidation) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto a = net.add_router("a");
  const auto b = net.add_router("b");
  const auto c = net.add_router("c");
  const auto t_bc = net.add_trunk(b, c, {});
  const auto s_at_c = net.add_sink_node(c, {});
  EXPECT_THROW(net.add_flow(a, {t_bc}, s_at_c), std::invalid_argument);
  const auto s_at_b = net.add_sink_node(b, {});
  EXPECT_THROW(net.add_flow(b, {t_bc}, s_at_b), std::invalid_argument);
  EXPECT_THROW(net.add_flow(a, {}, 99), std::out_of_range);
}

TEST(TcpNetworkTest, RetransmissionsRecoverFromOverflowDrops) {
  // Tiny bottleneck buffer: drops are guaranteed, yet everything is
  // eventually delivered in order.
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions opts;
  opts.queue_limit = 5;
  const auto s = net.add_sink_node(r, opts);
  net.add_flow(r, {}, s);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(2));
  EXPECT_GT(net.sink_port(s).packets_dropped(), 0u);
  EXPECT_GT(net.source(0).fast_retransmits() + net.source(0).timeouts(), 0u);
  EXPECT_GT(net.delivered_bytes(0), 1'000'000);
}

TEST(TcpNetworkTest, TwoFlowsShareRoughlyEvenlyWithSameRtt) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  const auto s = net.add_sink_node(r, {});
  net.add_flow(r, {}, s);
  net.add_flow(r, {}, s);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(5));
  const double a = static_cast<double>(net.delivered_bytes(0));
  const double b = static_cast<double>(net.delivered_bytes(1));
  EXPECT_GT(std::min(a, b) / std::max(a, b), 0.5);
}

}  // namespace
}  // namespace phantom::tcp
