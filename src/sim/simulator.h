// The discrete-event simulator driving every model in this library.
//
// The paper's simulations were run in BONeS Designer [ALT94], a commercial
// event-driven simulator that is no longer obtainable; this kernel is the
// functional substitute (see DESIGN.md, "Substitutions"). All protocol
// behaviour lives in the models — the kernel only provides an exact,
// deterministic clock and scheduler.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace phantom::sim {

/// Single-threaded discrete-event simulator.
///
/// Usage:
///     Simulator sim;
///     sim.schedule(Time::ms(1), [&]{ ... });
///     sim.run_until(Time::sec(10));
///
/// Invariants: `now()` is non-decreasing; events at equal timestamps run
/// in scheduling order; a callback may schedule further events, including
/// at the current instant.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now. Negative delays throw
  /// std::logic_error in every build type (a release build must not
  /// silently corrupt the event order).
  EventId schedule(Time delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute simulation time `at`. Throws
  /// std::logic_error if `at` < now().
  EventId schedule_at(Time at, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with timestamp <= `deadline`, then sets now() to
  /// `deadline` (if it is later than the last event). Returns the number
  /// of events executed.
  std::uint64_t run_until(Time deadline);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool pending() const { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending_count() const { return queue_.size(); }

  /// Kernel-owned random stream; models share it so one seed reproduces
  /// an entire run.
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  Rng rng_;
};

}  // namespace phantom::sim
