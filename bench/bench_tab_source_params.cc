// Source-parameter sensitivity (TM 4.0 end-system knobs): how the
// paper's quoted AIR*Nrm, Nrm and RDF settings shape convergence.
//
// The paper leans on "AIR*Nrm much smaller than 30 Mb/s" for its
// two-session convergence argument; this bench shows what happens when
// that assumption is stretched, and how RM-cell frequency (Nrm) and the
// decrease factor (RDF) trade convergence speed against steady-state
// ripple.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

struct Outcome {
  double goodput_per_session = 0;
  double settle_ms = 0;
  double acr_stddev = 0;  // steady-state ripple of session 0's ACR, Mb/s
  std::size_t max_queue = 0;
};

Outcome run(atm::AbrParams params, int n = 2) {
  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest, params);
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  probe.mark();
  sim.run_until(Time::ms(500));
  Outcome out;
  for (const double r : probe.rates_mbps()) out.goodput_per_session += r;
  out.goodput_per_session /= n;
  const double ideal = 0.95 * 150e6 / (n + 1);
  out.settle_ms = stats::convergence_time(
                      net.source(0).acr_trace().samples(), ideal, 0.10)
                      .milliseconds();
  const auto tail = stats::summarize(net.source(0).acr_trace().samples(),
                                     Time::ms(300), Time::ms(500));
  out.acr_stddev = tail.stddev / 1e6;
  out.max_queue = net.dest_port(dest).max_queue_length();
  return out;
}

}  // namespace

int main() {
  exp::print_header("Source params",
                    "TM 4.0 end-system knobs, 2 greedy sessions @ 150 Mb/s");

  {
    exp::Table t{{"AIR*Nrm (Mb/s)", "goodput/session", "ACR settle (ms)",
                  "ACR ripple", "max queue"}};
    for (const double air : {1.0, 4.25, 10.0, 30.0}) {
      atm::AbrParams p;
      p.air_nrm = Rate::mbps(air);
      const auto r = run(p);
      t.add_row({exp::Table::num(air, 2),
                 exp::Table::num(r.goodput_per_session),
                 exp::Table::num(r.settle_ms, 1),
                 exp::Table::num(r.acr_stddev, 3),
                 std::to_string(r.max_queue)});
    }
    t.print();
    std::printf(
        "expected: larger AIR ramps faster but overshoots MACR between\n"
        "RM cells, growing ripple and transient queue (the paper's\n"
        "\"AIR*Nrm much smaller than 30 Mb/s\" assumption).\n");
  }

  {
    exp::Table t{{"Nrm (cells/RM)", "goodput/session", "ACR settle (ms)",
                  "RM overhead %"}};
    for (const int nrm : {8, 16, 32, 64}) {
      atm::AbrParams p;
      p.nrm = nrm;
      // Keep the per-RM increase equivalent so only feedback frequency
      // varies.
      const auto r = run(p);
      t.add_row({std::to_string(nrm), exp::Table::num(r.goodput_per_session),
                 exp::Table::num(r.settle_ms, 1),
                 exp::Table::num(100.0 / nrm, 1)});
    }
    t.print();
    std::printf(
        "expected: small Nrm = tighter control loop but more overhead\n"
        "(1/Nrm of cells are RM cells and carry no payload).\n");
  }

  {
    exp::Table t{{"RDF", "goodput/session", "ACR ripple", "max queue"}};
    for (const double rdf : {64.0, 128.0, 256.0, 1024.0}) {
      atm::AbrParams p;
      p.rdf = rdf;
      const auto r = run(p);
      t.add_row({exp::Table::num(rdf, 0),
                 exp::Table::num(r.goodput_per_session),
                 exp::Table::num(r.acr_stddev, 3),
                 std::to_string(r.max_queue)});
    }
    t.print();
    std::printf(
        "expected: with pure explicit-rate feedback (CI never set) RDF is\n"
        "almost inert — it matters for the binary/EFCI variants.\n");
  }
  return 0;
}
