# Empty dependencies file for atm_resilience_test.
# This may be replaced when dependencies are built.
