// Head-to-head: Phantom vs the three ATM Forum baselines (§5).
//
// Same single-bottleneck scenario for each algorithm (5 greedy ABR
// sessions, 150 Mb/s link). The table reports what the paper's §5
// figures show per algorithm: steady-state goodput per session, Jain
// fairness, transient peak queue, steady queue, and early goodput
// (a convergence-speed proxy).
#include <cstdio>

#include "exp/factories.h"
#include "exp/probes.h"
#include "exp/report.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

using namespace phantom;
using sim::Rate;
using sim::Time;

int main() {
  exp::print_header("algorithm-comparison",
                    "5 greedy sessions, one 150 Mb/s link, each algorithm");
  exp::Table table{{"algorithm", "goodput/session (Mb/s)", "Jain", "max queue",
                    "steady queue", "early goodput (Mb/s)"}};

  for (const auto alg : {exp::Algorithm::kPhantom, exp::Algorithm::kEprca,
                         exp::Algorithm::kAprc, exp::Algorithm::kCapc}) {
    sim::Simulator sim;
    topo::AbrNetwork net{sim, exp::make_factory(alg)};
    const auto sw = net.add_switch("sw");
    const auto dest = net.add_destination(sw, {});
    for (int i = 0; i < 5; ++i) net.add_session(sw, {}, dest);
    exp::GoodputProbe probe{sim, net};
    net.start_all(Time::zero(), Time::zero());

    // Early window: how much gets through while converging.
    probe.mark();
    sim.run_until(Time::ms(30));
    const double early = probe.total_mbps();

    // Steady state.
    sim.run_until(Time::ms(400));
    probe.mark();
    sim.run_until(Time::ms(600));
    const auto rates = probe.rates_mbps();
    double mean = 0;
    for (const double r : rates) mean += r;
    mean /= static_cast<double>(rates.size());

    table.add_row({exp::to_string(alg), exp::Table::num(mean),
                   exp::Table::num(stats::jain_index(rates), 3),
                   std::to_string(net.dest_port(dest).max_queue_length()),
                   std::to_string(net.dest_port(dest).queue_length()),
                   exp::Table::num(early)});
  }
  table.print();
  std::printf(
      "\nReading guide: Phantom converges to u*C/(n+1) = 23.75 Mb/s with a\n"
      "drained steady queue; EPRCA/APRC oscillate around C/n with standing\n"
      "queues; CAPC converges more slowly (low early goodput) but with a\n"
      "small queue — the trade-off the paper's Fig. 22 describes.\n");
  return 0;
}
