# Empty dependencies file for bench_tab_ablation.
# This may be replaced when dependencies are built.
