#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace phantom::sim {

EventId Simulator::schedule(Time delay, EventQueue::Callback cb) {
  if (delay.is_negative()) {
    throw std::logic_error{"Simulator::schedule: negative delay " +
                           delay.to_string()};
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) {
    throw std::logic_error{"Simulator::schedule_at: " + at.to_string() +
                           " is in the past (now " + now_.to_string() + ")"};
  }
  return queue_.schedule(at, std::move(cb));
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    auto [time, callback] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    callback();
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time deadline) {
  if (deadline < now_) {
    throw std::logic_error{"Simulator::run_until: deadline " +
                           deadline.to_string() + " is in the past (now " +
                           now_.to_string() + ")"};
  }
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    auto [time, callback] = queue_.pop();
    assert(time >= now_);
    now_ = time;
    callback();
    ++executed;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace phantom::sim
