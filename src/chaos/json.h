// Tiny JSON emission/decoding helpers shared by the chaos report,
// the supervisor's JSONL checkpoint and the triage summary.
//
// Everything here is deliberately deterministic: fixed field order,
// fixed float formats, no locale dependence — the report's
// byte-for-byte reproducibility contract rests on it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace phantom::chaos {

/// Escapes `s` for embedding inside a JSON string literal. Handles the
/// two mandatory characters (`"` and `\`), the common control-character
/// shorthands, and \u00XX for the rest — output is always valid JSON
/// regardless of what a scenario name, fault spec or ASan report
/// contains.
[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Report float format: compact, stable (%.6g).
[[nodiscard]] inline std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Checkpoint float format: %.17g round-trips every finite double
/// exactly, so a resumed search re-renders the identical report.
[[nodiscard]] inline std::string fmt_double_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Minimal reader for the flat single-line JSON objects this module
/// itself emits (checkpoint rows). Not a general JSON parser: it scans
/// for `"key": ` left to right, so callers must query fields in
/// emission order. Every getter returns std::nullopt on malformed or
/// missing input — the checkpoint loader treats that as a corrupt row.
class JsonLineReader {
 public:
  explicit JsonLineReader(const std::string& line) : line_{line} {}

  [[nodiscard]] std::optional<std::string> find_string(const std::string& key) {
    if (!seek(key)) return std::nullopt;
    return read_string_here();
  }

  /// For `"key": ["s1", "s2", ...]` — a flat array of strings (the
  /// checkpoint's flight-recorder field). Nested arrays/objects are not
  /// supported; any non-string element makes the row corrupt.
  [[nodiscard]] std::optional<std::vector<std::string>> find_string_array(
      const std::string& key) {
    if (!seek(key)) return std::nullopt;
    if (pos_ >= line_.size() || line_[pos_] != '[') return std::nullopt;
    ++pos_;
    std::vector<std::string> out;
    skip_spaces();
    if (pos_ < line_.size() && line_[pos_] == ']') {
      ++pos_;
      return out;
    }
    while (pos_ < line_.size()) {
      auto s = read_string_here();
      if (!s) return std::nullopt;
      out.push_back(std::move(*s));
      skip_spaces();
      if (pos_ >= line_.size()) return std::nullopt;
      if (line_[pos_] == ']') {
        ++pos_;
        return out;
      }
      if (line_[pos_] != ',') return std::nullopt;
      ++pos_;
      skip_spaces();
    }
    return std::nullopt;  // unterminated
  }

  [[nodiscard]] std::optional<long long> find_int(const std::string& key) {
    const auto tok = find_token(key);
    if (!tok) return std::nullopt;
    char* end = nullptr;
    const long long v = std::strtoll(tok->c_str(), &end, 10);
    if (end != tok->c_str() + tok->size()) return std::nullopt;
    return v;
  }

  [[nodiscard]] std::optional<double> find_double(const std::string& key) {
    const auto tok = find_token(key);
    if (!tok) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(tok->c_str(), &end);
    if (end != tok->c_str() + tok->size()) return std::nullopt;
    return v;
  }

  /// For `"key": null | <number> | true | false` — the raw token.
  [[nodiscard]] std::optional<std::string> find_token(const std::string& key) {
    if (!seek(key)) return std::nullopt;
    std::size_t end = pos_;
    while (end < line_.size() && line_[end] != ',' && line_[end] != '}' &&
           line_[end] != ' ') {
      ++end;
    }
    if (end == pos_) return std::nullopt;
    return line_.substr(pos_, end - pos_);
  }

 private:
  /// Reads a quoted, escaped JSON string starting at pos_.
  [[nodiscard]] std::optional<std::string> read_string_here() {
    if (pos_ >= line_.size() || line_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < line_.size()) {
      const char c = line_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= line_.size()) return std::nullopt;
      const char e = line_[pos_++];
      switch (e) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'n':  out += '\n'; break;
        case 't':  out += '\t'; break;
        case 'r':  out += '\r'; break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > line_.size()) return std::nullopt;
          const std::string hex = line_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long v = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || v < 0 || v > 0xff) return std::nullopt;
          out += static_cast<char>(v);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  void skip_spaces() {
    while (pos_ < line_.size() && line_[pos_] == ' ') ++pos_;
  }

  bool seek(const std::string& key) {
    const std::string needle = "\"" + key + "\": ";
    const auto at = line_.find(needle, pos_);
    if (at == std::string::npos) return false;
    pos_ = at + needle.size();
    return true;
  }

  const std::string& line_;
  std::size_t pos_ = 0;
};

}  // namespace phantom::chaos
