file(REMOVE_RECURSE
  "libphantom_bench_util.a"
)
