// Deterministic fault replay: the same seed and the same FaultPlan must
// reproduce the run exactly — sample-for-sample traces, identical
// counters and fault logs, and byte-identical CSV report output.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/factories.h"
#include "exp/probes.h"
#include "exp/report.h"
#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;

struct RunOutput {
  std::vector<sim::Sample> share;
  std::vector<sim::Sample> queue;
  std::vector<std::uint64_t> delivered;
  std::uint64_t lost = 0;
  std::vector<std::string> fault_log;
  std::size_t violations = 0;
};

fault::FaultPlan make_plan() {
  return fault::FaultPlan{}
      .outage(fault::dest(0), Time::ms(80), Time::ms(30))
      .burst(fault::dest(0), Time::ms(150), Time::ms(100), 0.1, 0.3, 0.5)
      .rm_fault(fault::dest(0), Time::ms(200), Time::ms(60), 0.2, 0.4)
      .restart(fault::dest(0), Time::ms(280))
      .leave(1, Time::ms(120))
      .join(1, Time::ms(220));
}

RunOutput run_once(std::uint64_t seed) {
  Simulator sim{seed};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 3; ++i) net.add_session(sw, {}, dest);

  fault::FaultInjector injector{sim, net};
  injector.apply(make_plan());
  fault::InvariantMonitor monitor{sim, net};
  exp::FairShareSampler share{sim, net.dest_port(dest).controller()};
  exp::QueueSampler queue{sim, net.dest_port(dest)};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(350));
  monitor.check_now();

  RunOutput out;
  out.share.assign(share.trace().samples().begin(),
                   share.trace().samples().end());
  out.queue.assign(queue.trace().samples().begin(),
                   queue.trace().samples().end());
  for (std::size_t s = 0; s < net.num_sessions(); ++s) {
    out.delivered.push_back(net.delivered_cells(s));
  }
  out.lost = net.total_cells_lost();
  for (const auto& f : injector.log()) {
    out.fault_log.push_back(f.time.to_string() + " " + f.description);
  }
  out.violations = monitor.violations().size();
  return out;
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(FaultReplayTest, SameSeedSamePlanIsByteIdentical) {
  const RunOutput a = run_once(1234);
  const RunOutput b = run_once(1234);

  EXPECT_EQ(a.share, b.share);
  EXPECT_EQ(a.queue, b.queue);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.violations, 0u);
  EXPECT_EQ(b.violations, 0u);
  EXPECT_GT(a.lost, 0u);  // the faults actually did something

  // The written report artifacts are byte-identical too.
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(exp::write_series_csv(dir + "/replay_a.csv", a.share, 1e-6));
  ASSERT_TRUE(exp::write_series_csv(dir + "/replay_b.csv", b.share, 1e-6));
  const std::string bytes_a = slurp(dir + "/replay_a.csv");
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, slurp(dir + "/replay_b.csv"));
}

TEST(FaultReplayTest, DifferentSeedsDivergeUnderRandomFaults) {
  // Sanity check that the replay test has teeth: the burst/RM faults
  // draw from the seeded RNG, so different seeds must produce different
  // loss patterns.
  const RunOutput a = run_once(1);
  const RunOutput b = run_once(2);
  EXPECT_NE(a.lost, b.lost);
}

}  // namespace
}  // namespace phantom
