#include "atm/output_port.h"

#include <cassert>
#include <utility>

namespace phantom::atm {

OutputPort::OutputPort(sim::Simulator& sim, sim::Rate rate,
                       std::size_t queue_limit, Link link,
                       std::unique_ptr<PortController> controller,
                       QueueDiscipline discipline)
    : sim_{&sim},
      rate_{rate},
      queue_limit_{queue_limit},
      link_{link},
      controller_{std::move(controller)},
      discipline_{discipline} {
  assert(rate.bits_per_sec() > 0.0);
  assert(queue_limit_ > 0);
  if (!controller_) controller_ = std::make_unique<NullController>();
}

void OutputPort::send(Cell cell) {
  const bool clp_overflow = cell.clp && queue_length() >= clp_threshold_;
  if (queue_length() >= queue_limit_ || clp_overflow) {
    ++dropped_;
    const bool clp_only = clp_overflow && queue_length() < queue_limit_;
    if (clp_only) ++clp_dropped_;
    record_cell_event(obs::EventKind::kCellDrop, cell,
                      static_cast<std::uint8_t>(
                          clp_only ? obs::DropReason::kClpThreshold
                                   : obs::DropReason::kQueueLimit));
    // Either way the drop goes through the controller: queue-pressure
    // drops are offered load the algorithm must see [Sat96 counts every
    // arrival, served or not].
    controller_->on_cell_dropped(cell);
    return;
  }
  if (buffer_mgr_ != nullptr) {
    const BufferManager::Verdict verdict =
        buffer_mgr_->admit(bm_port_id_, cell, sim_->now());
    if (verdict != BufferManager::Verdict::kAccept) {
      // Same accounting as a queue-limit drop: the controller still sees
      // the offered load, and the port's dropped counter keeps the
      // conservation ledger exact (the manager's counters say *why*).
      ++dropped_;
      obs::DropReason reason = obs::DropReason::kBufferOverflow;
      switch (verdict) {
        case BufferManager::Verdict::kDropEpd:
          reason = obs::DropReason::kBufferEpd;
          break;
        case BufferManager::Verdict::kDropPpd:
          reason = obs::DropReason::kBufferPpd;
          break;
        case BufferManager::Verdict::kDropShed:
          reason = obs::DropReason::kBufferShed;
          break;
        default:
          break;
      }
      record_cell_event(obs::EventKind::kCellDrop, cell,
                        static_cast<std::uint8_t>(reason));
      controller_->on_cell_dropped(cell);
      return;
    }
  }
  if (cell.kind == CellKind::kData && controller_->mark_efci(queue_length())) {
    cell.efci = true;
  }
  if (discipline_ == QueueDiscipline::kStrictPriority && cell.high_priority) {
    priority_queue_.push_back(cell);
  } else {
    queue_.push_back(cell);
  }
  max_queue_ = std::max(max_queue_, queue_length());
  ++accepted_;
  if (queue_hist_) queue_hist_->observe(static_cast<double>(queue_length()));
  record_cell_event(obs::EventKind::kCellEnqueue, cell, 0);
  controller_->on_cell_accepted(cell, queue_length());
  if (!transmitting_) start_transmission();
}

void OutputPort::register_metrics(obs::Registry& reg,
                                  const std::string& prefix) {
  reg.add_counter({prefix + ".cells_transmitted", "port.cells_transmitted",
                   obs::MetricType::kCounter, "cells", "OutputPort",
                   "cells fully serialized onto the link"},
                  [this] { return transmitted_; });
  reg.add_counter({prefix + ".cells_accepted", "port.cells_accepted",
                   obs::MetricType::kCounter, "cells", "OutputPort",
                   "cells accepted into the queue"},
                  [this] { return accepted_; });
  reg.add_counter({prefix + ".cells_dropped", "port.cells_dropped",
                   obs::MetricType::kCounter, "cells", "OutputPort",
                   "cells dropped at the queue (all reasons)"},
                  [this] { return dropped_; });
  reg.add_counter({prefix + ".clp_cells_dropped", "port.clp_cells_dropped",
                   obs::MetricType::kCounter, "cells", "OutputPort",
                   "CLP-tagged cells dropped by partial buffer sharing"},
                  [this] { return clp_dropped_; });
  reg.add_gauge({prefix + ".queue_cells", "port.queue_cells",
                 obs::MetricType::kGauge, "cells", "OutputPort",
                 "current queue occupancy"},
                [this] { return static_cast<double>(queue_length()); });
  reg.add_gauge({prefix + ".max_queue_cells", "port.max_queue_cells",
                 obs::MetricType::kGauge, "cells", "OutputPort",
                 "peak queue occupancy so far"},
                [this] { return static_cast<double>(max_queue_); });
  if (!queue_hist_) {
    queue_hist_ = std::make_unique<obs::Histogram>(
        std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                            1024, 2048, 4096});
  }
  reg.add_histogram({prefix + ".queue_depth", "port.queue_depth",
                     obs::MetricType::kHistogram, "cells", "OutputPort",
                     "queue depth observed at each accepted cell"},
                    queue_hist_.get());
  controller_->register_metrics(reg, prefix + ".ctl");
}

void OutputPort::start_transmission() {
  assert(queue_length() > 0);
  transmitting_ = true;
  // Pin the cell entering service now: a higher-priority arrival during
  // its serialization must not preempt it.
  serving_ = priority_queue_.empty() ? &queue_ : &priority_queue_;
  sim_->schedule(rate_.transmission_time(kCellBits),
                 sim::bind_member<&OutputPort::on_transmission_complete>(this));
}

void OutputPort::on_transmission_complete() {
  assert(serving_ != nullptr && !serving_->empty());
  std::deque<Cell>& q = *serving_;
  serving_ = nullptr;
  const Cell cell = q.front();
  q.pop_front();
  if (buffer_mgr_ != nullptr) buffer_mgr_->release(bm_port_id_, cell);
  ++transmitted_;
  controller_->on_cell_transmitted(cell);
  link_.deliver(cell);
  if (queue_length() > 0) {
    start_transmission();
  } else {
    transmitting_ = false;
  }
}

}  // namespace phantom::atm
