#include "chaos/search.h"

#include <cstdio>

namespace phantom::chaos {
namespace {

/// splitmix64 (Steele et al.) — decorrelates per-trial generator seeds
/// from the master seed and each other.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t trial_gen_seed(std::uint64_t master, int trial) {
  // 0x6368616f73 == "chaos"; keeps the generator stream distinct from
  // the simulator stream even when master seeds collide with sim seeds.
  return splitmix64(master ^ (0x6368616f73ULL + static_cast<std::uint64_t>(trial)));
}

[[nodiscard]] std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_trial_result(std::string& out, const char* prefix,
                         const TrialResult& r) {
  out += std::string{"\""} + prefix + "verdict\": \"" + to_string(r.verdict) +
         "\", ";
  out += std::string{"\""} + prefix + "detail\": \"" + json_escape(r.detail) +
         "\", ";
}

}  // namespace

std::string SearchReport::to_json() const {
  std::string out = "{\n";
  out += "  \"scenario\": {\"kind\": \"" + to_string(spec.kind) +
         "\", \"algorithm\": \"" + exp::to_string(spec.algorithm) +
         "\", \"sessions\": " + std::to_string(spec.sessions) +
         ", \"rate_mbps\": " + fmt_double(spec.rate_mbps) +
         ", \"horizon_ms\": " + fmt_double(spec.horizon.milliseconds()) +
         "},\n";
  out += "  \"options\": {\"trials\": " + std::to_string(options.trials) +
         ", \"seed\": " + std::to_string(options.seed) +
         ", \"max_failures\": " + std::to_string(options.max_failures) +
         ", \"shrink\": " + (options.shrink ? "true" : "false") + "},\n";
  out += "  \"baseline_share_mbps\": " + fmt_double(baseline_share_mbps) +
         ",\n";
  out += "  \"trials_run\": " + std::to_string(trials_run) + ",\n";
  out += "  \"passed\": " + std::to_string(passed) + ",\n";
  out += "  \"failures\": [";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const Failure& f = failures[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"trial\": " + std::to_string(f.trial) + ", ";
    append_trial_result(out, "", f.result);
    out += "\"plan\": \"" + json_escape(f.plan.to_spec()) + "\", ";
    out += "\"shrunk_plan\": \"" + json_escape(f.shrunk_plan.to_spec()) +
           "\", ";
    append_trial_result(out, "shrunk_", f.shrunk_result);
    out += "\"shrink_probes\": " + std::to_string(f.shrink_probes) + ", ";
    out += "\"replay\": \"" + json_escape(cli_replay(f)) + "\"}";
  }
  out += failures.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string SearchReport::cli_replay(const Failure& f) const {
  std::string cmd = "phantom_cli --scenario=" + to_string(spec.kind);
  cmd += " --algorithm=" + exp::to_string(spec.algorithm);
  cmd += " --sessions=" + std::to_string(spec.sessions);
  cmd += " --rate-mbps=" + fmt_double(spec.rate_mbps);
  cmd += " --duration-ms=" + fmt_double(spec.horizon.milliseconds());
  cmd += " --seed=" + std::to_string(options.seed);
  cmd += " --fault-plan='" + f.shrunk_plan.to_spec() + "'";
  return cmd;
}

SearchReport run_search(const ScenarioSpec& spec, const SearchOptions& opt) {
  SearchReport report;
  report.spec = spec;
  report.options = opt;

  const Baseline baseline = run_baseline(spec, opt.seed, opt.trial);
  report.baseline_share_mbps = baseline.settled_share_bps * 1e-6;

  for (int trial = 0; trial < opt.trials; ++trial) {
    if (static_cast<int>(report.failures.size()) >= opt.max_failures) break;
    sim::Rng gen_rng{trial_gen_seed(opt.seed, trial)};
    const fault::FaultPlan plan = generate_plan(gen_rng, spec, opt.gen);
    const TrialResult result =
        run_trial(spec, opt.seed, plan, opt.trial, &baseline);
    ++report.trials_run;
    if (!result.failed()) {
      ++report.passed;
      continue;
    }

    Failure f;
    f.trial = trial;
    f.plan = plan;
    f.result = result;
    f.shrunk_plan = plan;
    if (opt.shrink) {
      // "Still fails" means the same oracle fires — a plan that trips a
      // *different* oracle is a different bug, not a smaller repro.
      const auto still_fails = [&](const fault::FaultPlan& candidate) {
        return run_trial(spec, opt.seed, candidate, opt.trial, &baseline)
                   .verdict == result.verdict;
      };
      ShrinkResult s = shrink(plan, still_fails, opt.shrinker);
      f.shrunk_plan = std::move(s.plan);
      f.shrink_probes = s.probes;
    }
    f.shrunk_result =
        run_trial(spec, opt.seed, f.shrunk_plan, opt.trial, &baseline);
    report.failures.push_back(std::move(f));
  }
  return report;
}

}  // namespace phantom::chaos
