// Time-series recording for experiment output.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "sim/time.h"

namespace phantom::sim {

/// One recorded observation.
struct Sample {
  Time time;
  double value = 0.0;
  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Append-only time series, the raw material of every figure the paper
/// plots (MACR over time, queue length over time, per-session rate...).
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_{std::move(name)} {}

  void record(Time t, double v) { samples_.push_back(Sample{t, v}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::span<const Sample> samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const Sample& back() const { return samples_.back(); }

  /// Last recorded value, or `fallback` if nothing was recorded yet.
  [[nodiscard]] double last_or(double fallback) const {
    return samples_.empty() ? fallback : samples_.back().value;
  }

  void clear() { samples_.clear(); }

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace phantom::sim
