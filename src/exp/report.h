// Plain-text experiment output: the series and tables the paper plots.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "sim/trace.h"

namespace phantom::exp {

/// Prints a banner identifying the experiment (figure/table id + title).
void print_header(const std::string& experiment_id, const std::string& title);

/// Prints a time series as aligned "t_ms  value" rows, decimated to at
/// most `max_rows` evenly spaced samples so the output stays readable.
void print_series(const std::string& name, std::span<const sim::Sample> samples,
                  double value_scale = 1.0, std::size_t max_rows = 25);

/// Aligned table printer:
///     Table t{{"col-a", "col-b"}};
///     t.add_row({"1", "2.5"});
///     t.print();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print() const;

  /// Formats a double with fixed precision (helper for rows).
  [[nodiscard]] static std::string num(double v, int precision = 2);

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

/// Writes a series as "time_ms,value" CSV. Returns false (and prints a
/// warning) if the file cannot be created.
bool write_series_csv(const std::string& path,
                      std::span<const sim::Sample> samples,
                      double value_scale = 1.0);

/// Prints the chronological log of fault transitions an injector applied
/// ("(none)" when the run was fault-free) — resilience runs record their
/// inputs next to their outputs so the report is self-describing.
void print_fault_log(std::span<const fault::AppliedFault> log);

/// Prints invariant-monitor results: a one-line all-clear with the check
/// count, or every violation with its timestamp and detail.
void print_violations(const fault::InvariantMonitor& monitor);

/// Convenience used by the bench binaries: when the environment variable
/// PHANTOM_TRACE_DIR is set, dump the series to
/// "$PHANTOM_TRACE_DIR/<experiment>_<series>.csv" for external plotting;
/// otherwise do nothing. Never fails the caller.
void maybe_dump_series(const std::string& experiment, const std::string& series,
                       std::span<const sim::Sample> samples,
                       double value_scale = 1.0);

}  // namespace phantom::exp
