// Post-fault recovery metrics.
//
// The resilience experiments perturb a running network (outage, burst
// loss, controller restart) and ask how the control loop comes back.
// These helpers turn a recorded trace (MACR, ACR, queue length...) into
// the three numbers the resilience figures report: time-to-reconverge,
// the peak transient, and the settled mean.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/time.h"
#include "sim/trace.h"

namespace phantom::stats {

/// Earliest time >= `from` at which the trace enters the band
/// target * (1 ± rel_tol) and stays inside it for `hold` (and through
/// every later sample). Returned as latency relative to `from` — the
/// time-to-reconvergence metric. std::nullopt if the trace never
/// settles, settles only in the last `hold` (not yet proven stable), or
/// has no samples at/after `from`.
///
/// Samples are step-interpolated (a trace records value changes), so a
/// sample before `from` pins the value entering the window.
[[nodiscard]] std::optional<sim::Time> time_to_reconverge(
    std::span<const sim::Sample> samples, sim::Time from, double target,
    double rel_tol = 0.1, sim::Time hold = sim::Time::ms(5));

/// Largest sample value in [from, to] (step-interpolated at `from`).
/// 0.0 if the trace has no samples at or before `to`. The peak-transient
/// metric, e.g. the worst queue spike after an outage heals.
[[nodiscard]] double peak_in_window(std::span<const sim::Sample> samples,
                                    sim::Time from, sim::Time to);

/// Time-weighted mean over [from, to] under step interpolation. 0.0 for
/// an empty window or a trace with no sample at or before `to`. Used to
/// establish the pre-fault operating point a controller must return to.
[[nodiscard]] double mean_in_window(std::span<const sim::Sample> samples,
                                    sim::Time from, sim::Time to);

/// The three resilience numbers for one trace in one call — the shape
/// every recovery comparison (cold vs warm restart, decay on vs off)
/// tabulates per configuration.
struct RecoverySummary {
  /// time_to_reconverge(samples, from, target, ...): latency from the
  /// fault to provably-stable re-entry into the target band.
  std::optional<sim::Time> reconverge;
  /// peak_in_window(samples, from, last sample): worst transient after
  /// the fault.
  double peak = 0.0;
  /// mean_in_window over the trailing `settle_tail` of the trace: where
  /// the loop actually settled (compare against `target`).
  double settled_mean = 0.0;
};

/// Resamples a step-interpolated trace into `width`-wide buckets, each
/// carrying the bucket's time-weighted mean and stamped at the bucket's
/// end. Estimators that are noisy by *design* (APRC's congestion signal
/// flip-flops every growth interval) recover in the mean while their
/// instantaneous value never holds a reconvergence band — smooth first,
/// then ask time_to_reconverge. Empty input or non-positive width
/// yields an empty series.
[[nodiscard]] std::vector<sim::Sample> smooth_series(
    std::span<const sim::Sample> samples, sim::Time width);

/// Bundles the three metrics over the post-fault tail of a trace.
/// `from` is the fault (or recovery) instant; the settled mean is taken
/// over the final `settle_tail` of the recorded samples.
[[nodiscard]] RecoverySummary summarize_recovery(
    std::span<const sim::Sample> samples, sim::Time from, double target,
    double rel_tol = 0.1, sim::Time hold = sim::Time::ms(5),
    sim::Time settle_tail = sim::Time::ms(20));

}  // namespace phantom::stats
