#include "core/residual_filter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace phantom::core {
namespace {

using sim::Rate;

PhantomConfig base_config() {
  PhantomConfig c;
  c.initial_macr = Rate::mbps(8.5);
  return c;
}

TEST(ResidualFilterTest, StartsAtInitialMacr) {
  ResidualFilter f{Rate::mbps(150), base_config()};
  EXPECT_DOUBLE_EQ(f.macr().mbits_per_sec(), 8.5);
  EXPECT_DOUBLE_EQ(f.target().mbits_per_sec(), 0.95 * 150);
}

TEST(ResidualFilterTest, InitialMacrClampedToTarget) {
  PhantomConfig c = base_config();
  c.initial_macr = Rate::mbps(500);
  ResidualFilter f{Rate::mbps(150), c};
  EXPECT_DOUBLE_EQ(f.macr().mbits_per_sec(), 0.95 * 150);
}

TEST(ResidualFilterTest, IdleLinkDrivesMacrToTarget) {
  ResidualFilter f{Rate::mbps(150), base_config()};
  for (int i = 0; i < 3000; ++i) f.update(Rate::zero());
  EXPECT_NEAR(f.macr().mbits_per_sec(), 0.95 * 150, 1.0);
}

TEST(ResidualFilterTest, FixedPointIsResidualBandwidth) {
  // If the offered load is a constant L, MACR converges to u*C - L.
  ResidualFilter f{Rate::mbps(150), base_config()};
  for (int i = 0; i < 5000; ++i) f.update(Rate::mbps(100));
  EXPECT_NEAR(f.macr().mbits_per_sec(), 0.95 * 150 - 100, 0.5);
}

TEST(ResidualFilterTest, NPlusOneEquilibriumUnderClosedLoop) {
  // Close the loop the way n pinned greedy sessions do: offered = n*MACR.
  // Fixed point: MACR = u*C/(n+1).
  for (const int n : {1, 2, 5, 10}) {
    ResidualFilter f{Rate::mbps(150), base_config()};
    for (int i = 0; i < 20000; ++i) {
      f.update(f.macr() * static_cast<double>(n));
    }
    EXPECT_NEAR(f.macr().mbits_per_sec(), 0.95 * 150 / (n + 1),
                0.02 * 0.95 * 150 / (n + 1))
        << "n = " << n;
  }
}

TEST(ResidualFilterTest, OverloadPushesMacrTowardFloor) {
  ResidualFilter f{Rate::mbps(150), base_config()};
  for (int i = 0; i < 5000; ++i) f.update(Rate::mbps(300));
  // Effective floor = max(TCR, 1% of u*C) = 1.425 Mb/s.
  EXPECT_NEAR(f.macr().mbits_per_sec(), 0.01 * 0.95 * 150, 1e-6);
}

TEST(ResidualFilterTest, RelativeFloorDisablableForPureTcrFloor) {
  PhantomConfig c = base_config();
  c.min_macr_fraction = 0.0;
  ResidualFilter f{Rate::mbps(150), c};
  for (int i = 0; i < 5000; ++i) f.update(Rate::mbps(300));
  EXPECT_NEAR(f.macr().bits_per_sec(), c.min_macr.bits_per_sec(), 1.0);
}

TEST(ResidualFilterTest, RejectsBadFloorFraction) {
  PhantomConfig c = base_config();
  c.min_macr_fraction = 1.0;
  EXPECT_THROW((ResidualFilter{Rate::mbps(150), c}), std::invalid_argument);
}

TEST(ResidualFilterTest, MacrNeverLeavesClampRange) {
  ResidualFilter f{Rate::mbps(150), base_config()};
  // Alternate violently between idle and massive overload.
  for (int i = 0; i < 2000; ++i) {
    f.update(i % 2 == 0 ? Rate::zero() : Rate::mbps(1000));
    EXPECT_GE(f.macr().mbits_per_sec(), 0.01 * 0.95 * 150 - 1e-9);
    EXPECT_LE(f.macr().mbits_per_sec(), 0.95 * 150 + 1e-9);
  }
}

TEST(ResidualFilterTest, DecreaseReactsFasterThanIncrease) {
  // Same-magnitude error: the downward step must be at least as large,
  // because alpha_dec > alpha_inc (congestion handled urgently).
  PhantomConfig c = base_config();
  c.adaptive_gain = false;
  c.initial_macr = Rate::mbps(50);
  ResidualFilter up{Rate::mbps(150), c};
  ResidualFilter down{Rate::mbps(150), c};
  // up: offered 52.5 -> delta 90 -> err +40 Mb/s.
  const double before_up = up.macr().mbits_per_sec();
  up.update(Rate::mbps(52.5));
  const double step_up = up.macr().mbits_per_sec() - before_up;
  // down: offered 132.5 -> delta 10 -> err -40 Mb/s.
  const double before_down = down.macr().mbits_per_sec();
  down.update(Rate::mbps(132.5));
  const double step_down = before_down - down.macr().mbits_per_sec();
  EXPECT_GT(step_up, 0.0);
  EXPECT_GT(step_down, 0.0);
  EXPECT_GT(step_down, 2.0 * step_up);
}

TEST(ResidualFilterTest, FixedGainMatchesClassicEwma) {
  PhantomConfig c = base_config();
  c.adaptive_gain = false;
  c.alpha_inc = 0.5;
  c.initial_macr = Rate::mbps(10);
  ResidualFilter f{Rate::mbps(150), c};
  // delta = 142.5 - 42.5 = 100; err = 90; step = 45.
  f.update(Rate::mbps(42.5));
  EXPECT_NEAR(f.macr().mbits_per_sec(), 55.0, 1e-9);
}

TEST(ResidualFilterTest, AdaptiveGainDampsNoisyInput) {
  // Offered load alternates +-20 Mb/s around 100; the adaptive filter's
  // steady-state oscillation must be smaller than the fixed filter's.
  PhantomConfig fixed = base_config();
  fixed.adaptive_gain = false;
  PhantomConfig adaptive = base_config();
  ResidualFilter ff{Rate::mbps(150), fixed};
  ResidualFilter fa{Rate::mbps(150), adaptive};
  double span_fixed = 0, span_adaptive = 0;
  double min_f = 1e18, max_f = -1e18, min_a = 1e18, max_a = -1e18;
  for (int i = 0; i < 4000; ++i) {
    const Rate offered = Rate::mbps(i % 2 == 0 ? 80 : 120);
    ff.update(offered);
    fa.update(offered);
    if (i > 2000) {  // steady state
      min_f = std::min(min_f, ff.macr().mbits_per_sec());
      max_f = std::max(max_f, ff.macr().mbits_per_sec());
      min_a = std::min(min_a, fa.macr().mbits_per_sec());
      max_a = std::max(max_a, fa.macr().mbits_per_sec());
    }
  }
  span_fixed = max_f - min_f;
  span_adaptive = max_a - min_a;
  EXPECT_LT(span_adaptive, span_fixed);
}

TEST(ResidualFilterTest, DeviationTracksErrorMagnitude) {
  ResidualFilter f{Rate::mbps(150), base_config()};
  EXPECT_DOUBLE_EQ(f.deviation_bps(), 0.0);
  f.update(Rate::zero());
  EXPECT_GT(f.deviation_bps(), 0.0);
  // After long convergence the error (and hence DEV) decays.
  for (int i = 0; i < 5000; ++i) f.update(Rate::mbps(100));
  EXPECT_LT(f.deviation_bps(), 1e6);
}

TEST(ResidualFilterTest, RejectsInvalidConfig) {
  PhantomConfig c = base_config();
  c.utilization = 1.5;
  EXPECT_THROW((ResidualFilter{Rate::mbps(150), c}), std::invalid_argument);
  c = base_config();
  c.alpha_dec = 0.0;
  EXPECT_THROW((ResidualFilter{Rate::mbps(150), c}), std::invalid_argument);
  c = base_config();
  c.interval = sim::Time::zero();
  EXPECT_THROW((ResidualFilter{Rate::mbps(150), c}), std::invalid_argument);
}

// Property sweep: the closed-loop fixed point holds across utilization
// targets and session counts.
class FixedPointSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(FixedPointSweep, ConvergesToUtilizationOverNPlusOne) {
  const auto [u, n] = GetParam();
  PhantomConfig c = base_config();
  c.utilization = u;
  ResidualFilter f{Rate::mbps(150), c};
  for (int i = 0; i < 30000; ++i) f.update(f.macr() * static_cast<double>(n));
  const double expect = u * 150.0 / (n + 1);
  EXPECT_NEAR(f.macr().mbits_per_sec(), expect, 0.05 * expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedPointSweep,
    ::testing::Combine(::testing::Values(0.8, 0.9, 0.95, 1.0),
                       ::testing::Values(1, 3, 8, 20)));

}  // namespace
}  // namespace phantom::core
