// Output-queued ATM switch with per-VC routing.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "atm/buffer_manager.h"
#include "atm/cell.h"
#include "atm/output_port.h"
#include "atm/policer.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace phantom::atm {

/// Connection Admission Control: whether a new VC may be set up through
/// this switch. ER feedback shares bandwidth among sessions already
/// admitted; nothing in the data path bounds how many sessions get
/// admitted in the first place, and each admitted VC costs switch memory
/// (routes, policer GCRA state, MCR reservation) no matter how little it
/// sends. CAC closes that hole: setup is refused — with a per-reason
/// counter — rather than letting the switch over-commit and fail later.
struct CacConfig {
  /// Fraction of a forward port's link rate bookable as the sum of
  /// admitted MCRs. Below 1.0 so admitted minimum rates stay deliverable
  /// alongside RM-cell overhead and guaranteed-class traffic.
  double mcr_utilization = 0.9;
  /// Buffer headroom each admitted VC must be able to claim: a setup is
  /// refused when admitted_vcs * per_vc_buffer_cells would exceed the
  /// switch's cell-memory budget.
  std::size_t per_vc_buffer_cells = 16;
  /// Hard bound on the VC table (routes, policer state, reaper
  /// timestamps are all per-VC).
  std::size_t max_vcs = 4096;

  void validate() const;
};

/// Why a VC was admitted or refused at setup.
enum class AdmitVerdict {
  kAdmitted,
  kRefusedVcLimit,         ///< VC table at max_vcs
  kRefusedMcrBudget,       ///< MCR sum would exceed the port's booking limit
  kRefusedBufferHeadroom,  ///< cell memory cannot back another VC
  kRefusedPressure,        ///< degradation ladder: switch already shedding
};

[[nodiscard]] std::string to_string(AdmitVerdict v);

/// Per-reason admission counters. Only ever incremented — the invariant
/// monitor checks refusals are monotone (a squeeze must not "un-refuse").
struct CacCounters {
  std::uint64_t admitted = 0;
  std::uint64_t refused_vc_limit = 0;
  std::uint64_t refused_mcr_budget = 0;
  std::uint64_t refused_buffer = 0;
  std::uint64_t refused_pressure = 0;

  [[nodiscard]] std::uint64_t refused_total() const {
    return refused_vc_limit + refused_mcr_budget + refused_buffer +
           refused_pressure;
  }
};

/// Stale-VC reaper policy: a VC silent for `timeout` is declared dead
/// by the next periodic sweep. "Silent" means no cell of any kind — a
/// beaten-down but live session still turns RM cells well inside any
/// sane timeout (the Trm ticker bounds its FRM spacing by 100 ms).
struct ReaperConfig {
  sim::Time timeout = sim::Time::ms(100);  ///< silence that means death
  sim::Time period = sim::Time::ms(25);    ///< sweep cadence

  void validate() const;
};

/// A switch is a set of output ports plus a VC routing table. Forward
/// cells (data / FRM) of a VC exit via the VC's forward port; backward
/// RM cells exit via the VC's backward port *after* the forward port's
/// controller has written its feedback into them — this models the
/// standard ABR arrangement where the congestion state of the forward
/// direction is conveyed on the returning RM cells [Sat96].
class Switch final : public CellSink {
 public:
  explicit Switch(sim::Simulator& sim, std::string name = "switch")
      : sim_{&sim}, name_{std::move(name)} {}

  /// Adds an output port; returns its index.
  std::size_t add_port(sim::Rate rate, std::size_t queue_limit, Link link,
                       std::unique_ptr<PortController> controller,
                       QueueDiscipline discipline = QueueDiscipline::kFifo);

  /// Routes a VC: forward cells to `forward_port`, backward RM cells to
  /// `backward_port` (both indices from add_port). A VC may be routed at
  /// most once per switch.
  void route_vc(int vc, std::size_t forward_port, std::size_t backward_port);

  void receive_cell(Cell cell) override;

  [[nodiscard]] OutputPort& port(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] const OutputPort& port(std::size_t i) const {
    return *ports_.at(i);
  }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Cells that arrived for a VC with no route (counts a modelling bug).
  [[nodiscard]] std::uint64_t unrouted_cells() const { return unrouted_; }

  /// Attaches a UPC policer at this switch's ingress: every forward
  /// cell is GCRA-checked against its forward port's fair-share
  /// estimate before it may enter the port queue. Replaces any policer
  /// already attached.
  void enable_policing(PolicerConfig config);

  /// The attached policer, or nullptr when policing is off.
  [[nodiscard]] Policer* policer() { return policer_.get(); }
  [[nodiscard]] const Policer* policer() const { return policer_.get(); }

  /// RM cells whose ER/CCR fields were clamped on ingest (negative,
  /// NaN, or above the forward link's capacity) — forged or corrupted
  /// feedback the switch refused to propagate into controller state.
  [[nodiscard]] std::uint64_t rm_cells_sanitized() const {
    return rm_sanitized_;
  }

  /// Starts the stale-VC reaper: every `period` the switch sweeps its
  /// per-VC activity timestamps and evicts VCs silent for longer than
  /// `timeout` — policer GCRA state goes, and both the forward and the
  /// backward port controllers get a vc_expired() so session-count
  /// state releases the dead VC's share. The route stays: a reused VC
  /// id simply re-registers on its next cell, with a fresh contract.
  void enable_reaping(ReaperConfig config);

  /// Explicit teardown of one VC's dynamic state (the reaper's eviction
  /// path, callable directly when the caller *knows* the session is
  /// gone rather than inferring it from silence). Returns whether any
  /// state existed.
  bool evict_vc(int vc);

  /// VCs evicted so far (reaper sweeps + explicit evict_vc calls).
  [[nodiscard]] std::uint64_t vcs_reaped() const { return vcs_reaped_; }
  /// VCs with a live activity timestamp (seen and not yet evicted).
  [[nodiscard]] std::size_t active_vcs() const { return last_activity_.size(); }
  [[nodiscard]] bool reaping_enabled() const { return reaping_; }

  /// Bounds this switch's cell memory: all ports (present and future)
  /// share one BufferManager budget with frame-aware discard. Must be
  /// enabled before any cell is queued.
  void enable_buffer_management(BufferConfig config);
  [[nodiscard]] BufferManager* buffer_manager() { return buffer_mgr_.get(); }
  [[nodiscard]] const BufferManager* buffer_manager() const {
    return buffer_mgr_.get();
  }

  /// Arms Connection Admission Control: subsequent admit_vc calls are
  /// checked against the MCR booking limit, buffer headroom, the VC
  /// table bound, and the degradation ladder.
  void enable_admission_control(CacConfig config);
  [[nodiscard]] bool admission_control_enabled() const { return cac_enabled_; }

  /// Asks to admit VC `vc` with minimum rate `mcr` exiting via
  /// `forward_port`. kAdmitted books the MCR (and registers MCR
  /// protection with the buffer manager); any refusal increments the
  /// matching counter and leaves no state behind. With CAC off, setup
  /// is always admitted (and still registered, so MCR protection and
  /// release-on-evict work for grandfathered sessions).
  AdmitVerdict admit_vc(int vc, sim::Rate mcr, std::size_t forward_port);

  /// Registers an already-established VC without consulting (or
  /// counting against) the admission checks: grandfathering for
  /// sessions that predate enable_admission_control. Still books the
  /// MCR so later setups see the true commitment.
  void force_admit_vc(int vc, sim::Rate mcr, std::size_t forward_port);

  /// Removes a VC's route *and* dynamic state — teardown for a session
  /// the caller is unwiring entirely. Returns whether a route existed.
  bool unroute_vc(int vc);

  /// Rollback half of multi-hop admission: a VC admitted here but
  /// refused at a later hop releases its booking without counting as an
  /// eviction (it never carried a cell).
  void cancel_admission(int vc) {
    release_admission(vc);
    if (buffer_mgr_) buffer_mgr_->evict_vc(vc);
  }

  /// Attaches the structured event log to this switch and every port
  /// (present and future): RM round-trips, policer verdicts, CAC
  /// refusals, enqueues/drops and controller rate updates get recorded.
  /// `node` is this switch's index in the trace's track layout.
  void set_event_log(obs::EventLog* log, int node);

  /// Registers this switch's metrics — CAC counters, reaper/sanitizer
  /// totals, and the policer's, buffer manager's, every port's and
  /// every controller's surface — under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix);

  [[nodiscard]] const CacCounters& cac_counters() const {
    return cac_counters_;
  }
  /// MCR currently booked on a forward port (sum over admitted VCs).
  [[nodiscard]] sim::Rate mcr_booked(std::size_t port) const {
    return mcr_booked_.at(port);
  }
  /// VCs currently holding an admission record.
  [[nodiscard]] std::size_t admitted_vcs() const { return admitted_.size(); }

 private:
  void on_reap_tick();

  /// Clamps hostile RM field values before any controller sees them.
  void sanitize_rm(Cell& cell, sim::Rate link_rate);

  /// Records an RM transit event (ER/CCR as stamped, plus the forward
  /// port controller's fair share at that instant).
  void record_rm_event(obs::EventKind kind, const Cell& cell,
                       std::size_t forward_port);
  /// Records a policer verdict (detail: 1 = tag, 2 = drop).
  void record_policer_event(const Cell& cell, std::uint8_t verdict);
  /// Records a CAC refusal (detail: AdmitVerdict code).
  void record_cac_refusal(int vc, sim::Rate mcr, AdmitVerdict verdict);

  struct Route {
    std::size_t forward_port;
    std::size_t backward_port;
  };

  sim::Simulator* sim_;
  std::string name_;
  /// Books `mcr` for an established VC (shared by admit and force-admit).
  void record_admission(int vc, sim::Rate mcr, std::size_t forward_port);
  /// Releases a VC's admission record and MCR booking, if any.
  bool release_admission(int vc);

  std::vector<std::unique_ptr<OutputPort>> ports_;
  std::unordered_map<int, Route> routes_;
  std::uint64_t unrouted_ = 0;
  std::unique_ptr<BufferManager> buffer_mgr_;
  bool cac_enabled_ = false;
  CacConfig cac_config_;
  CacCounters cac_counters_;
  struct Admission {
    sim::Rate mcr;
    std::size_t forward_port;
  };
  std::unordered_map<int, Admission> admitted_;
  std::vector<sim::Rate> mcr_booked_;  // per forward port
  std::unique_ptr<Policer> policer_;
  std::uint64_t rm_sanitized_ = 0;
  bool reaping_ = false;
  ReaperConfig reaper_config_;
  std::unordered_map<int, sim::Time> last_activity_;
  std::uint64_t vcs_reaped_ = 0;
  obs::EventLog* event_log_ = nullptr;
  std::int16_t obs_node_ = -1;
};

}  // namespace phantom::atm
