file(REMOVE_RECURSE
  "CMakeFiles/tcp_phantom_integration_test.dir/tcp_phantom_integration_test.cc.o"
  "CMakeFiles/tcp_phantom_integration_test.dir/tcp_phantom_integration_test.cc.o.d"
  "tcp_phantom_integration_test"
  "tcp_phantom_integration_test.pdb"
  "tcp_phantom_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_phantom_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
