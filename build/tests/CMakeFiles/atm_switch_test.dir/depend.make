# Empty dependencies file for atm_switch_test.
# This may be replaced when dependencies are built.
