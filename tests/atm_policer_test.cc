// GCRA policer unit tests: conformance arithmetic, the action modes,
// the exemptions, and the moving fair-share reference.
#include <gtest/gtest.h>

#include "atm/policer.h"

namespace phantom {
namespace {

using atm::Cell;
using atm::Policer;
using atm::PolicerConfig;
using atm::PolicingAction;
using sim::Rate;
using sim::Time;

/// Config with no headroom and no floor: the contract is exactly
/// `fair_share`, which makes the GCRA arithmetic easy to reason about.
PolicerConfig tight(PolicingAction action = PolicingAction::kDrop,
                    Time tolerance = Time::zero()) {
  PolicerConfig c;
  c.action = action;
  c.headroom = 1.0;
  c.floor = Rate::zero();
  c.tolerance = tolerance;
  return c;
}

constexpr int kCellBits = 424;

TEST(PolicerTest, CellsAtTheContractRateAllConform) {
  Policer p{tight()};
  const Rate share = Rate::mbps(10);
  const Time interval = share.transmission_time(kCellBits);
  Time now = Time::zero();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.check(Cell::data(1), share, now), Policer::Verdict::kPass);
    now = now + interval;
  }
  EXPECT_EQ(p.cells_conforming(), 100u);
  EXPECT_EQ(p.cells_nonconforming(), 0u);
  EXPECT_DOUBLE_EQ(p.violation_rate(), 0.0);
}

TEST(PolicerTest, BackToBackCellsBeyondToleranceViolate) {
  Policer p{tight()};
  const Rate share = Rate::mbps(10);
  // All at t = 0: the first cell conforms (TAT starts at now), every
  // later one arrives a full emission interval early.
  EXPECT_EQ(p.check(Cell::data(1), share, Time::zero()),
            Policer::Verdict::kPass);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(p.check(Cell::data(1), share, Time::zero()),
              Policer::Verdict::kDrop);
  }
  EXPECT_EQ(p.cells_nonconforming(), 9u);
  EXPECT_DOUBLE_EQ(p.violation_rate(), 0.9);
  EXPECT_DOUBLE_EQ(p.violation_rate(1), 0.9);
  EXPECT_EQ(p.vc_stats(1).dropped, 9u);
}

TEST(PolicerTest, ToleranceAbsorbsABoundedBurst) {
  // τ of 3 emission intervals lets a cell arrive up to 3 intervals
  // early: a 4-cell back-to-back burst passes, the 5th is caught.
  const Rate share = Rate::mbps(10);
  const Time interval = share.transmission_time(kCellBits);
  Policer p{tight(PolicingAction::kDrop, interval * 3.0)};
  int conforming = 0;
  for (int i = 0; i < 5; ++i) {
    if (p.check(Cell::data(1), share, Time::zero()) ==
        Policer::Verdict::kPass) {
      ++conforming;
    }
  }
  EXPECT_EQ(conforming, 4);
}

TEST(PolicerTest, NonconformingCellsDoNotAdvanceTheContract) {
  // A violating burst must not push TAT forward — otherwise dropped
  // cells would earn the VC future credit. After the burst, a cell at
  // the next legitimate slot still conforms.
  Policer p{tight()};
  const Rate share = Rate::mbps(10);
  const Time interval = share.transmission_time(kCellBits);
  EXPECT_EQ(p.check(Cell::data(1), share, Time::zero()),
            Policer::Verdict::kPass);
  for (int i = 0; i < 50; ++i) {
    p.check(Cell::data(1), share, Time::zero());
  }
  EXPECT_EQ(p.check(Cell::data(1), share, interval),
            Policer::Verdict::kPass);
}

TEST(PolicerTest, ActionSelectsTheVerdict) {
  const Rate share = Rate::mbps(10);
  Policer monitor{tight(PolicingAction::kMonitor)};
  Policer tag{tight(PolicingAction::kTag)};
  monitor.check(Cell::data(1), share, Time::zero());
  tag.check(Cell::data(1), share, Time::zero());
  // Second back-to-back cell violates in both; the verdict differs.
  EXPECT_EQ(monitor.check(Cell::data(1), share, Time::zero()),
            Policer::Verdict::kPass);
  EXPECT_EQ(tag.check(Cell::data(1), share, Time::zero()),
            Policer::Verdict::kTag);
  EXPECT_EQ(monitor.cells_nonconforming(), 1u);
  EXPECT_EQ(monitor.cells_dropped(), 0u);
  EXPECT_EQ(tag.cells_tagged(), 1u);
  EXPECT_EQ(tag.cells_dropped(), 0u);
}

TEST(PolicerTest, ExemptCellsAreNeverPoliced) {
  Policer p{tight()};
  const Rate share = Rate::mbps(10);
  Cell cbr = Cell::data(1);
  cbr.high_priority = true;
  Cell brm = Cell::data(1);
  brm.kind = atm::CellKind::kBackwardRm;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.check(cbr, share, Time::zero()), Policer::Verdict::kPass);
    EXPECT_EQ(p.check(brm, share, Time::zero()), Policer::Verdict::kPass);
    // No estimate yet (NullController port): nothing to police against.
    EXPECT_EQ(p.check(Cell::data(1), Rate::zero(), Time::zero()),
              Policer::Verdict::kPass);
  }
  EXPECT_EQ(p.cells_checked(), 0u);
}

TEST(PolicerTest, FloorProtectsRampingSources) {
  PolicerConfig c = tight();
  c.floor = Rate::mbps(10);
  Policer p{c};
  // Fair share far below the floor: the contract is the floor, so a
  // source pacing at 10 Mb/s stays conformant.
  const Time interval = Rate::mbps(10).transmission_time(kCellBits);
  Time now = Time::zero();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.check(Cell::data(1), Rate::mbps(1), now),
              Policer::Verdict::kPass);
    now = now + interval;
  }
}

TEST(PolicerTest, ContractTracksTheMovingFairShare) {
  // Pacing at 10 Mb/s conforms while the share is 10, then becomes a
  // violation after the share (re-read per cell) halves.
  Policer p{tight()};
  const Time interval = Rate::mbps(10).transmission_time(kCellBits);
  Time now = Time::zero();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.check(Cell::data(1), Rate::mbps(10), now),
              Policer::Verdict::kPass);
    now = now + interval;
  }
  std::uint64_t before = p.cells_nonconforming();
  EXPECT_EQ(before, 0u);
  for (int i = 0; i < 20; ++i) {
    p.check(Cell::data(1), Rate::mbps(5), now);
    now = now + interval;
  }
  // Every other cell (roughly) is now ahead of the halved contract.
  EXPECT_GT(p.cells_nonconforming(), 5u);
  EXPECT_LT(p.cells_nonconforming(), 15u);
}

TEST(PolicerTest, VcsArePolicedIndependently) {
  Policer p{tight()};
  const Rate share = Rate::mbps(10);
  // VC 1 floods; VC 2 sends a single cell at the same instant.
  p.check(Cell::data(1), share, Time::zero());
  p.check(Cell::data(1), share, Time::zero());
  p.check(Cell::data(1), share, Time::zero());
  EXPECT_EQ(p.check(Cell::data(2), share, Time::zero()),
            Policer::Verdict::kPass);
  EXPECT_EQ(p.vc_stats(1).nonconforming, 2u);
  EXPECT_EQ(p.vc_stats(2).nonconforming, 0u);
  EXPECT_EQ(p.vc_stats(7).conforming, 0u);  // never seen
}

}  // namespace
}  // namespace phantom
