# Empty dependencies file for atm_abr_destination_test.
# This may be replaced when dependencies are built.
