# Empty dependencies file for atm_port_test.
# This may be replaced when dependencies are built.
