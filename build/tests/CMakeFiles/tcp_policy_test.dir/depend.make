# Empty dependencies file for tcp_policy_test.
# This may be replaced when dependencies are built.
