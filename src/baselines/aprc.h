// APRC — Adaptive Proportional Rate Control [ST94].
//
// Siu and Tzeng's modification of EPRCA: congestion is declared not by
// the queue *length* but by the rate at which the queue is *changing*
// ("intelligent congestion indication") — a growing queue means the port
// is congested even if it is still short. The very-congested state
// remains a length threshold (the paper quotes 300 cells).
//
// The paper's critique (bench `bench_fig_aprc` reproduces it): because
// growth is measured over a short window, noise in the arrival process
// flips the congestion signal, and in some scenarios the queue still
// exceeds the very-congested threshold, triggering the same
// indiscriminate beat-down as EPRCA.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "atm/port_controller.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace phantom::baselines {

struct AprcConfig {
  double averaging = 1.0 / 16;  ///< AV for the MACR exponential average
  double dpf = 7.0 / 8;         ///< Down-Pressure Factor
  double erf = 15.0 / 16;       ///< Explicit-Reduction Factor
  double mrf = 1.0 / 4;         ///< Major-Reduction Factor
  /// Queue-growth sampling period; congestion = queue grew since the
  /// last sample.
  sim::Time growth_interval = sim::Time::ms(1);
  std::size_t very_congested_threshold = 300;  ///< cells [ST94 via paper]
  sim::Rate initial_macr = sim::Rate::mbps(8.5);

  void validate() const {
    if (averaging <= 0 || averaging > 1)
      throw std::invalid_argument{"averaging must be in (0,1]"};
    if (dpf <= 0 || dpf > 1) throw std::invalid_argument{"dpf must be in (0,1]"};
    if (erf <= 0 || erf > 1) throw std::invalid_argument{"erf must be in (0,1]"};
    if (mrf <= 0 || mrf > 1) throw std::invalid_argument{"mrf must be in (0,1]"};
    if (growth_interval <= sim::Time::zero())
      throw std::invalid_argument{"growth_interval must be positive"};
  }
};

class AprcController final : public atm::PortController {
 public:
  AprcController(sim::Simulator& sim, sim::Rate link_capacity,
                 AprcConfig config = {});

  void on_cell_accepted(const atm::Cell& cell, std::size_t queue_len) override;
  void on_forward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void on_backward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void reset() override;
  void warm_restart() override;
  [[nodiscard]] const atm::WarmStartAudit* warm_audit() const override {
    return &warm_.audit();
  }

  [[nodiscard]] sim::Rate fair_share() const override {
    return sim::Rate::bps(macr_);
  }
  [[nodiscard]] std::string name() const override { return "aprc"; }
  [[nodiscard]] const sim::Trace& macr_trace() const { return macr_trace_; }
  [[nodiscard]] bool congested() const { return congested_; }

  /// Base surface plus the MACR estimate and queue-growth verdict.
  void register_metrics(obs::Registry& reg,
                        const std::string& prefix) override {
    PortController::register_metrics(reg, prefix);
    reg.add_gauge({prefix + ".macr_mbps", "aprc.macr_mbps",
                   obs::MetricType::kGauge, "Mb/s", "AprcController",
                   "exponential average of FRM-stamped CCRs"},
                  [this] { return macr_ / 1e6; });
    reg.add_gauge({prefix + ".congested", "aprc.congested",
                   obs::MetricType::kGauge, "bool", "AprcController",
                   "1 while the queue grew over the last growth interval"},
                  [this] { return congested_ ? 1.0 : 0.0; });
  }

 private:
  void on_growth_tick();

  sim::Simulator* sim_;
  AprcConfig config_;
  double link_bps_;
  double macr_;
  std::size_t last_queue_len_ = 0;
  std::size_t current_queue_len_ = 0;
  bool congested_ = false;
  atm::WarmStartWindow warm_;
  sim::Trace macr_trace_;
};

}  // namespace phantom::baselines
