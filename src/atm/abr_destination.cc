#include "atm/abr_destination.h"

#include <algorithm>

namespace phantom::atm {

void AbrDestination::account_frame(VcState& st, const Cell& cell) {
  if (st.frame_open && cell.frame != st.cur_frame_id) {
    // A new frame started before the previous one's EOM arrived: a
    // mid-frame drop (or a dropped EOM) corrupted it.
    ++st.frames_corrupted;
    ++total_frames_corrupted_;
    st.frame_open = false;
  }
  if (!st.frame_open) {
    st.frame_open = true;
    st.cur_frame_id = cell.frame;
    st.cur_frame_cells = 0;
  }
  ++st.cur_frame_cells;
  if (cell.eof) {
    st.frame_open = false;
    const bool complete = st.cur_frame_cells == cell.frame_len;
    if (complete) {
      ++st.frames_good;
      ++total_frames_good_;
    } else {
      ++st.frames_corrupted;
      ++total_frames_corrupted_;
    }
  }
}

void AbrDestination::receive_cell(Cell cell) {
  switch (cell.kind) {
    case CellKind::kData: {
      VcState& st = per_vc_[cell.vc];
      st.efci_latched = cell.efci;
      ++st.data_cells;
      ++total_data_;
      account_frame(st, cell);
      const double delay_ms = (sim_->now() - cell.sent_at).milliseconds();
      st.delay_sum_ms += delay_ms;
      st.delay_max_ms = std::max(st.delay_max_ms, delay_ms);
      delays_.add(delay_ms);
      break;
    }
    case CellKind::kForwardRm: {
      VcState& st = per_vc_[cell.vc];
      Cell brm = cell;
      brm.kind = CellKind::kBackwardRm;
      brm.ci = cell.ci || st.efci_latched;
      ++rm_turned_;
      link_.deliver(brm);
      break;
    }
    case CellKind::kBackwardRm:
      // A destination never receives backward RM cells; ignore.
      break;
  }
}

}  // namespace phantom::atm
