#include "baselines/erica.h"

#include <algorithm>
#include <cassert>

#include "atm/cell.h"

namespace phantom::baselines {

EricaController::EricaController(sim::Simulator& sim, sim::Rate link_capacity,
                                 EricaConfig config)
    : sim_{&sim},
      config_{config},
      target_bps_{link_capacity.bits_per_sec() * config.utilization},
      fair_share_{std::min(config.initial_fair_share.bits_per_sec(),
                           target_bps_)},
      trace_{"erica.fair_share"} {
  config_.validate();
  assert(link_capacity.bits_per_sec() > 0.0);
  trace_.record(sim_->now(), fair_share_);
  sim_->schedule(config_.interval,
                 sim::bind_member<&EricaController::on_interval>(this));
}

void EricaController::on_cell_accepted(const atm::Cell&, std::size_t) {
  ++arrived_cells_;
}

void EricaController::on_cell_dropped(const atm::Cell&) { ++arrived_cells_; }

void EricaController::on_forward_rm(atm::Cell& cell, std::size_t) {
  VcState& vc = vcs_[cell.vc];
  vc.ccr_bps = cell.ccr.bits_per_sec();
  vc.last_seen_interval = interval_index_;
  if (warm_.open() && warm_.sample(cell.ccr.bits_per_sec())) {
    close_warm_window();
  }
}

void EricaController::close_warm_window() {
  // The per-VC table has been refilling since the restart (every FRM
  // above re-registers its VC); the audit window additionally seeds the
  // advertised share at the mean observed CCR so the first BRMs out of
  // the restarted port do not clamp everyone to the boot constant.
  if (const auto seed = warm_.close()) {
    fair_share_ = std::clamp(*seed, 0.0, target_bps_);
    warm_.record_seed(fair_share_);
    trace_.record(sim_->now(), fair_share_);
  }
}

void EricaController::warm_restart() {
  reset();
  warm_.begin();
}

void EricaController::vc_expired(int vc) { vcs_.erase(vc); }

void EricaController::reset() {
  // ERICA's per-VC table is exactly the state the constant-space class
  // avoids; a restart here loses every learned CCR, not just a filter.
  vcs_.clear();
  fair_share_ =
      std::min(config_.initial_fair_share.bits_per_sec(), target_bps_);
  load_factor_ = 0.0;
  arrived_cells_ = 0;
  trace_.record(sim_->now(), fair_share_);
}

void EricaController::on_interval() {
  if (warm_.ripe()) close_warm_window();  // first tick after RM traffic
  const double input_bps = static_cast<double>(arrived_cells_) *
                           static_cast<double>(atm::kCellBits) /
                           config_.interval.seconds();
  arrived_cells_ = 0;
  ++interval_index_;

  // Expire idle VCs so departures release their share.
  const auto timeout =
      static_cast<std::uint64_t>(config_.activity_timeout_intervals);
  for (auto it = vcs_.begin(); it != vcs_.end();) {
    if (interval_index_ - it->second.last_seen_interval > timeout) {
      it = vcs_.erase(it);
    } else {
      ++it;
    }
  }

  load_factor_ = input_bps / target_bps_;
  if (!vcs_.empty()) {
    fair_share_ = target_bps_ / static_cast<double>(vcs_.size());
  }
  trace_.record(sim_->now(), fair_share_);
  note_rate_update(sim_->now());
  sim_->schedule(config_.interval,
                 sim::bind_member<&EricaController::on_interval>(this));
}

void EricaController::on_backward_rm(atm::Cell& cell, std::size_t) {
  const auto it = vcs_.find(cell.vc);
  const double ccr = it == vcs_.end() ? 0.0 : it->second.ccr_bps;
  double er = fair_share_;
  if (load_factor_ > 0.0) {
    // A VC already above the overload-scaled share keeps that much,
    // which lets under-share VCs catch up without collapsing anyone.
    er = std::max(er, ccr / std::max(load_factor_, 1e-9));
  }
  er = std::min(er, target_bps_);
  cell.er = std::min(cell.er, sim::Rate::bps(er));
}

}  // namespace phantom::baselines
