// ABR destination end system: RM-cell turnaround + EFCI latching.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "atm/cell.h"
#include "atm/link.h"
#include "sim/simulator.h"
#include "stats/histogram.h"

namespace phantom::atm {

/// Destination end system. Forward RM cells are turned around as
/// backward RM cells onto the reverse path. Per TM 4.0, the destination
/// latches the EFCI state of the most recent data cell of each VC and
/// copies it into the CI bit of the next turned-around RM cell — this is
/// the path by which EFCI marking at switches reaches the source.
///
/// Per-VC state here is fine: a destination only tracks its *own*
/// sessions; the constant-space requirement applies to switch ports.
class AbrDestination final : public CellSink {
 public:
  AbrDestination(sim::Simulator& sim, Link to_network)
      : sim_{&sim}, link_{to_network} {
    (void)sim_;
  }

  AbrDestination(const AbrDestination&) = delete;
  AbrDestination& operator=(const AbrDestination&) = delete;

  void receive_cell(Cell cell) override;

  [[nodiscard]] std::uint64_t data_cells_received(int vc) const {
    const auto it = per_vc_.find(vc);
    return it == per_vc_.end() ? 0 : it->second.data_cells;
  }
  [[nodiscard]] std::uint64_t total_data_cells() const { return total_data_; }
  [[nodiscard]] std::uint64_t rm_cells_turned() const { return rm_turned_; }

  /// AAL5 frame accounting (cells arrive in order on a VC, so a frame
  /// closes when its EOM cell arrives or when the next frame's first
  /// cell does): a frame is good only if the EOM arrived and every one
  /// of its `frame_len` cells did. A switch dropping mid-frame without
  /// PPD corrupts the frame even though most of its cells consumed link
  /// capacity — the frame-level goodput the overload figures plot.
  [[nodiscard]] std::uint64_t frames_good(int vc) const {
    const auto it = per_vc_.find(vc);
    return it == per_vc_.end() ? 0 : it->second.frames_good;
  }
  [[nodiscard]] std::uint64_t frames_corrupted(int vc) const {
    const auto it = per_vc_.find(vc);
    return it == per_vc_.end() ? 0 : it->second.frames_corrupted;
  }
  [[nodiscard]] std::uint64_t total_frames_good() const {
    return total_frames_good_;
  }
  [[nodiscard]] std::uint64_t total_frames_corrupted() const {
    return total_frames_corrupted_;
  }
  /// Reverse access link carrying turned-around RM cells back into the
  /// network (shared fault state, see LinkState).
  [[nodiscard]] Link& link() { return link_; }
  [[nodiscard]] const Link& link() const { return link_; }

  /// End-to-end delay distribution (ms) of received data cells; the
  /// paper's "moderate queue" claim, expressed in time. Bins cover
  /// [0, 100 ms); later spikes land in the overflow bin.
  [[nodiscard]] const stats::Histogram& delay_histogram() const {
    return delays_;
  }

  /// Per-VC delay statistics (ms); zero for unknown VCs.
  [[nodiscard]] double mean_delay_ms(int vc) const {
    const auto it = per_vc_.find(vc);
    return it == per_vc_.end() || it->second.data_cells == 0
               ? 0.0
               : it->second.delay_sum_ms /
                     static_cast<double>(it->second.data_cells);
  }
  [[nodiscard]] double max_delay_ms(int vc) const {
    const auto it = per_vc_.find(vc);
    return it == per_vc_.end() ? 0.0 : it->second.delay_max_ms;
  }

 private:
  struct VcState {
    bool efci_latched = false;
    std::uint64_t data_cells = 0;
    double delay_sum_ms = 0.0;
    double delay_max_ms = 0.0;
    bool frame_open = false;        // cells of cur_frame_id seen, no EOM yet
    std::uint32_t cur_frame_id = 0;
    std::uint32_t cur_frame_cells = 0;
    std::uint64_t frames_good = 0;
    std::uint64_t frames_corrupted = 0;
  };

  void account_frame(VcState& st, const Cell& cell);

  sim::Simulator* sim_;
  Link link_;
  std::unordered_map<int, VcState> per_vc_;
  std::uint64_t total_data_ = 0;
  std::uint64_t rm_turned_ = 0;
  std::uint64_t total_frames_good_ = 0;
  std::uint64_t total_frames_corrupted_ = 0;
  stats::Histogram delays_{100.0, 1000};  // ms, 0.1 ms bins
};

}  // namespace phantom::atm
