#include "tcp/phantom_policies.h"

#include <algorithm>
#include <stdexcept>

namespace phantom::tcp {

core::PhantomConfig tcp_default_phantom_config() {
  core::PhantomConfig config;
  config.utilization = 1.0;
  config.interval = sim::Time::ms(10);
  return config;
}

core::PhantomConfig tcp_tuned(core::PhantomConfig config,
                              sim::Rate link_capacity) {
  config.interval = std::max(config.interval, sim::Time::ms(10));
  config.min_macr =
      std::max(config.min_macr, link_capacity * (0.02 * config.utilization));
  return config;
}

PhantomRateMeter::PhantomRateMeter(sim::Simulator& sim,
                                   sim::Rate link_capacity,
                                   core::PhantomConfig raw_config)
    : sim_{&sim},
      config_{tcp_tuned(raw_config, link_capacity)},
      interval_{config_.interval},
      filter_{link_capacity, config_},
      macr_trace_{"tcp.macr"} {
  macr_trace_.record(sim_->now(), filter_.macr().bits_per_sec());
  sim_->schedule(interval_, [this] { on_interval(); });
}

void PhantomRateMeter::on_interval() {
  const sim::Rate offered =
      sim::Rate::bps(static_cast<double>(bits_) / interval_.seconds());
  bits_ = 0;
  const sim::Rate macr = filter_.update(offered);
  macr_trace_.record(sim_->now(), macr.bits_per_sec());
  sim_->schedule(interval_, [this] { on_interval(); });
}

namespace {
void check_factor(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument{"utilization_factor must be positive"};
  }
}
}  // namespace

SelectiveDiscardPolicy::SelectiveDiscardPolicy(sim::Simulator& sim,
                                               sim::Rate link_capacity,
                                               double utilization_factor,
                                               core::PhantomConfig config,
                                               DiscardMode mode)
    : sim_{&sim},
      meter_{sim, link_capacity, config},
      factor_{utilization_factor},
      mode_{mode} {
  check_factor(factor_);
}

Verdict SelectiveDiscardPolicy::on_arrival(const Packet& packet,
                                           std::size_t queue_len,
                                           std::size_t queue_limit) {
  const double threshold = factor_ * meter_.macr().bits_per_sec();
  const bool congested =
      static_cast<double>(queue_len) >=
      kDiscardQueueGate * static_cast<double>(queue_limit);
  if (congested && packet.cr.bits_per_sec() > threshold) {
    const double p = std::min(1.0 - threshold / packet.cr.bits_per_sec(),
                              kMaxPoliceDropProbability);
    const bool drop =
        mode_ == DiscardMode::kStrict || sim_->rng().bernoulli(p);
    if (drop) {
      ++drops_;
      return Verdict::discard();
    }
  }
  // Unlike the ATM controller (which counts drops so overload reads as
  // strongly negative residual), the TCP meter counts *admitted* load
  // only: what the policer discards never occupies the link, and with
  // greedy TCP the offered load saturates permanently — counting it
  // would pin MACR to its floor and destroy the fair-share signal.
  meter_.count(packet);
  return Verdict::accept();
}

SelectiveRedPolicy::SelectiveRedPolicy(sim::Simulator& sim,
                                       sim::Rate link_capacity,
                                       double utilization_factor,
                                       core::PhantomConfig config,
                                       RedConfig red)
    : RedPolicy{sim, red},
      meter_{sim, link_capacity, config},
      factor_{utilization_factor} {
  check_factor(factor_);
}

Verdict SelectiveRedPolicy::on_arrival(const Packet& packet,
                                       std::size_t queue_len,
                                       std::size_t queue_limit) {
  const Verdict v = RedPolicy::on_arrival(packet, queue_len, queue_limit);
  if (!v.drop) meter_.count(packet);  // admitted load only, as in Discard
  return v;
}

bool SelectiveRedPolicy::eligible(const Packet& packet) const {
  return packet.cr.bits_per_sec() > factor_ * meter_.macr().bits_per_sec();
}

SelectiveQuenchPolicy::SelectiveQuenchPolicy(sim::Simulator& sim,
                                             sim::Rate link_capacity,
                                             double utilization_factor,
                                             sim::Time min_quench_gap,
                                             core::PhantomConfig config)
    : sim_{&sim},
      meter_{sim, link_capacity, config},
      factor_{utilization_factor},
      min_gap_{min_quench_gap} {
  check_factor(factor_);
}

Verdict SelectiveQuenchPolicy::on_arrival(const Packet& packet, std::size_t,
                                          std::size_t) {
  meter_.count(packet);
  Verdict v = Verdict::accept();
  if (packet.cr.bits_per_sec() > factor_ * meter_.macr().bits_per_sec() &&
      sim_->now() - last_quench_ >= min_gap_) {
    last_quench_ = sim_->now();
    ++quenches_;
    v.send_quench = true;
  }
  return v;
}

EfciMarkPolicy::EfciMarkPolicy(sim::Simulator& sim, sim::Rate link_capacity,
                               double utilization_factor,
                               core::PhantomConfig config)
    : meter_{sim, link_capacity, config}, factor_{utilization_factor} {
  check_factor(factor_);
}

Verdict EfciMarkPolicy::on_arrival(const Packet& packet, std::size_t,
                                   std::size_t) {
  meter_.count(packet);
  Verdict v = Verdict::accept();
  if (packet.cr.bits_per_sec() > factor_ * meter_.macr().bits_per_sec()) {
    ++marks_;
    v.mark_efci = true;
  }
  return v;
}

}  // namespace phantom::tcp
