// Fault-injection subsystem: plans, the injector, and the invariant
// monitor, exercised on real networks.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "exp/factories.h"
#include "exp/probes.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_monitor.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;

struct Counter final : atm::CellSink {
  void receive_cell(atm::Cell) override { ++cells; }
  int cells = 0;
};

/// Single-bottleneck Phantom network: n sessions, one 150 Mb/s link.
struct Bottleneck {
  explicit Bottleneck(Simulator& sim, int n)
      : net{sim, exp::make_factory(exp::Algorithm::kPhantom)} {
    const auto sw = net.add_switch("sw");
    dest = net.add_destination(sw, {});
    for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest);
  }
  AbrNetwork net;
  AbrNetwork::DestId dest = 0;
};

TEST(FaultPlanTest, ParsesAllEventKinds) {
  const auto plan = fault::FaultPlan::parse(
      "outage:trunk0:250:50;flap:dest1:100:3:5:10;"
      "burst:trunk2:10:200:0.1:0.3:0.5;rmloss:trunk0:0:100:0.25:0.5;"
      "restart:trunk0:450;leave:1:500;join:1:550");
  ASSERT_EQ(plan.events.size(), 7u);
  using K = fault::FaultEvent::Kind;
  EXPECT_EQ(plan.events[0].kind, K::kOutage);
  EXPECT_EQ(plan.events[0].target.kind, fault::FaultTarget::Kind::kTrunk);
  EXPECT_EQ(plan.events[0].at, Time::ms(250));
  EXPECT_EQ(plan.events[0].duration, Time::ms(50));
  EXPECT_EQ(plan.events[1].kind, K::kFlap);
  EXPECT_EQ(plan.events[1].target.kind, fault::FaultTarget::Kind::kDest);
  EXPECT_EQ(plan.events[1].cycles, 3);
  EXPECT_EQ(plan.events[2].kind, K::kBurst);
  EXPECT_DOUBLE_EQ(plan.events[2].p_good_bad, 0.1);
  EXPECT_DOUBLE_EQ(plan.events[2].loss_bad, 0.5);
  EXPECT_EQ(plan.events[3].kind, K::kRmFault);
  EXPECT_DOUBLE_EQ(plan.events[3].rm_corrupt, 0.5);
  EXPECT_EQ(plan.events[4].kind, K::kRestart);
  EXPECT_EQ(plan.events[5].kind, K::kLeave);
  EXPECT_EQ(plan.events[5].target.index, 1u);
  EXPECT_EQ(plan.events[6].kind, K::kJoin);
  EXPECT_EQ(plan.first_fault_time(), Time::zero());
  EXPECT_EQ(plan.last_recovery_time(), Time::ms(550));
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::FaultPlan::parse("meteor:trunk0:1:2"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("outage:link0:1:2"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("outage:trunk0:1"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("outage:trunk0:-5:2"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("burst:trunk0:1:2:1.5:0.3:0.5"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("flap:trunk0:1:0:5:5"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("leave:x:5"), std::invalid_argument);
  EXPECT_NO_THROW(fault::FaultPlan::parse(""));  // empty plan is fine
}

TEST(FaultInjectorTest, ValidatesTargetsBeforeScheduling) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  const auto pending_before = sim.pending_count();
  EXPECT_THROW(
      injector.apply(
          fault::FaultPlan{}.outage(fault::trunk(5), Time::ms(1), Time::ms(1))),
      std::out_of_range);
  EXPECT_THROW(
      injector.apply(fault::FaultPlan{}.leave(9, Time::ms(1))),
      std::out_of_range);
  // Nothing was scheduled by the failed applications.
  EXPECT_EQ(sim.pending_count(), pending_before);
}

TEST(FaultInjectorTest, OutageStopsAndRestoresDelivery) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}.outage(fault::dest(b.dest), Time::ms(100),
                                           Time::ms(50)));
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(101));  // in-flight cells from before have landed
  const auto during_start = b.net.delivered_cells(0) + b.net.delivered_cells(1);
  sim.run_until(Time::ms(149));
  const auto during_end = b.net.delivered_cells(0) + b.net.delivered_cells(1);
  EXPECT_EQ(during_start, during_end);  // nothing crosses a dead link
  const auto lost_during = b.net.total_cells_lost();
  EXPECT_GT(lost_during, 0u);
  sim.run_until(Time::ms(300));
  EXPECT_GT(b.net.delivered_cells(0) + b.net.delivered_cells(1), during_end);
  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_EQ(injector.log()[0].time, Time::ms(100));
  EXPECT_EQ(injector.log()[1].time, Time::ms(150));
}

TEST(FaultInjectorTest, FlapTogglesLinkRepeatedly) {
  Simulator sim;
  Bottleneck b{sim, 1};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}.flap(fault::dest(b.dest), Time::ms(50), 3,
                                         Time::ms(5), Time::ms(10)));
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(200));
  ASSERT_EQ(injector.log().size(), 6u);  // 3 x (down + up)
  EXPECT_EQ(injector.log()[0].time, Time::ms(50));
  EXPECT_EQ(injector.log()[1].time, Time::ms(55));
  EXPECT_EQ(injector.log()[4].time, Time::ms(80));
  EXPECT_GT(b.net.total_cells_lost(), 0u);
  EXPECT_GT(b.net.delivered_cells(0), 0u);  // survives the flapping
}

TEST(LinkFaultModelTest, GilbertElliottLossMatchesStationaryRate) {
  Simulator sim{99};
  Counter sink;
  atm::Link link{sim, Time::zero(), sink};
  auto st = link.state();
  st->burst_enabled = true;
  st->burst_p_good_bad = 0.1;
  st->burst_p_bad_good = 0.3;
  st->burst_loss_good = 0.0;
  st->burst_loss_bad = 0.5;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) link.deliver(atm::Cell::data(1));
  sim.run();
  // Stationary P(bad) = p_gb / (p_gb + p_bg) = 0.25; loss = 0.25 * 0.5.
  const double loss_rate = static_cast<double>(st->lost_burst) / n;
  EXPECT_NEAR(loss_rate, 0.125, 0.01);
  EXPECT_EQ(st->lost_burst + st->delivered, static_cast<std::uint64_t>(n));
}

TEST(LinkFaultModelTest, RmLossKillsOnlyRmCells) {
  Simulator sim{5};
  Counter sink;
  atm::Link link{sim, Time::zero(), sink};
  link.state()->rm_loss = 1.0;
  for (int i = 0; i < 100; ++i) {
    link.deliver(atm::Cell::data(1));
    link.deliver(atm::Cell::forward_rm(1, Rate::mbps(10), Rate::mbps(150)));
  }
  sim.run();
  EXPECT_EQ(sink.cells, 100);  // every data cell, no RM cells
  EXPECT_EQ(link.state()->lost_rm, 100u);
}

TEST(LinkFaultModelTest, RmCorruptionScramblesFeedbackFields) {
  Simulator sim{5};
  struct Collector final : atm::CellSink {
    void receive_cell(atm::Cell c) override { cells.push_back(c); }
    std::vector<atm::Cell> cells;
  } sink;
  atm::Link link{sim, Time::zero(), sink};
  link.state()->rm_corrupt = 1.0;
  const auto er = Rate::mbps(150);
  for (int i = 0; i < 200; ++i) {
    link.deliver(atm::Cell::forward_rm(1, Rate::mbps(10), er));
  }
  sim.run();
  ASSERT_EQ(sink.cells.size(), 200u);
  int changed_er = 0;
  int ci_set = 0;
  for (const atm::Cell& c : sink.cells) {
    if (std::abs(c.er.bits_per_sec() - er.bits_per_sec()) > 1.0) ++changed_er;
    if (c.ci) ++ci_set;
  }
  EXPECT_GT(changed_er, 150);  // uniform redraw almost never lands on ER
  EXPECT_GT(ci_set, 50);       // CI flips with p = 0.5
  EXPECT_LT(ci_set, 150);
}

TEST(FaultInjectorTest, RmCorruptionWindowSurvivedWithoutViolations) {
  // Corrupted ER/CI feedback must not drive any source outside [0, PCR]
  // (the source-side clamps are the last line of defense) and must not
  // break cell conservation.
  Simulator sim{3};
  Bottleneck b{sim, 3};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}.rm_fault(fault::dest(b.dest), Time::ms(100),
                                             Time::ms(200), 0.2, 0.8));
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  monitor.check_now();
  EXPECT_TRUE(monitor.violations().empty())
      << monitor.violations().front().detail;
  EXPECT_GT(b.net.delivered_cells(0), 1'000u);
  EXPECT_GT(monitor.checks_run(), 100u);
}

TEST(FaultInjectorTest, ControllerRestartRelearnsFairShare) {
  Simulator sim;
  Bottleneck b{sim, 3};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}.restart(fault::dest(b.dest), Time::ms(200)));
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(199));
  const double before = b.net.dest_port(b.dest).controller().fair_share()
                            .mbits_per_sec();
  sim.run_until(Time::ms(201));
  const double wiped = b.net.dest_port(b.dest).controller().fair_share()
                           .mbits_per_sec();
  EXPECT_LT(wiped, before);  // state really was wiped to the boot value
  sim.run_until(Time::ms(400));
  const double relearned = b.net.dest_port(b.dest).controller().fair_share()
                               .mbits_per_sec();
  // u*C/(n+1) = 0.95 * 150 / 4 = 35.625; relearned within 10%.
  EXPECT_NEAR(relearned, 35.625, 3.6);
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_NE(injector.log()[0].description.find("restart"), std::string::npos);
}

TEST(FaultInjectorTest, SessionChurnThroughPlan) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}
                     .leave(1, Time::ms(100))
                     .join(1, Time::ms(200)));
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(150));
  EXPECT_FALSE(b.net.source(1).active());
  const auto s1_away = b.net.delivered_cells(1);
  sim.run_until(Time::ms(350));
  EXPECT_TRUE(b.net.source(1).active());
  EXPECT_GT(b.net.delivered_cells(1), s1_away);  // transmitting again
  monitor.check_now();
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(FaultInjectorTest, JoinStartsANeverStartedSource) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}.join(1, Time::ms(50)));
  b.net.source(0).start(Time::zero());  // session 1 never started
  sim.run_until(Time::ms(200));
  EXPECT_TRUE(b.net.source(1).started());
  EXPECT_GT(b.net.delivered_cells(1), 0u);
}

TEST(FaultInjectorTest, CustomActionRunsOnSchedule) {
  Simulator sim;
  Bottleneck b{sim, 1};
  fault::FaultInjector injector{sim, b.net};
  bool ran = false;
  injector.apply(fault::FaultPlan{}.custom(
      Time::ms(42), [&] { ran = true; }, "demand change"));
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(100));
  EXPECT_TRUE(ran);
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].description, "demand change");
  EXPECT_EQ(injector.log()[0].time, Time::ms(42));
}

TEST(InvariantMonitorTest, HealthyRunIsClean) {
  Simulator sim;
  Bottleneck b{sim, 3};
  fault::InvariantMonitor monitor{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(250));
  monitor.check_now();
  EXPECT_GT(monitor.checks_run(), 200u);
  EXPECT_TRUE(monitor.violations().empty())
      << monitor.violations().front().detail;
}

/// Deliberately broken controller: advertises a negative fair share.
class BrokenController final : public atm::PortController {
 public:
  void on_backward_rm(atm::Cell&, std::size_t) override {}
  [[nodiscard]] sim::Rate fair_share() const override {
    return sim::Rate::bps(-1.0);
  }
  [[nodiscard]] std::string name() const override { return "broken"; }
};

TEST(InvariantMonitorTest, FlagsRateBoundViolations) {
  Simulator sim;
  AbrNetwork net{sim, [](sim::Simulator&, Rate) {
                   return std::make_unique<BrokenController>();
                 }};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  net.add_session(sw, {}, dest);
  fault::InvariantMonitor monitor{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(5));
  ASSERT_FALSE(monitor.violations().empty());
  EXPECT_EQ(monitor.violations().front().invariant, "rate-bounds");
  EXPECT_NE(monitor.violations().front().detail.find("broken"),
            std::string::npos);
}

TEST(InvariantMonitorTest, ConservationHoldsUnderCombinedFaults) {
  // Parking lot under an outage + burst loss + RM faults + restart +
  // churn, all at once: every cell must still be accounted for at every
  // periodic check.
  Simulator sim{11};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, {});
  const auto d_end = net.add_destination(s2, {});
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  net.add_session(s0, {t01, t12}, d_end);
  net.add_session(s0, {t01}, d1);
  net.add_session(s1, {t12}, d_end);

  fault::FaultInjector injector{sim, net};
  injector.apply(
      fault::FaultPlan{}
          .outage(fault::trunk(t01), Time::ms(60), Time::ms(20))
          .burst(fault::trunk(t12), Time::ms(30), Time::ms(150), 0.05, 0.4, 0.6)
          .rm_fault(fault::trunk(t01), Time::ms(100), Time::ms(80), 0.3, 0.3)
          .restart(fault::trunk(t01), Time::ms(150))
          .leave(1, Time::ms(90))
          .join(1, Time::ms(180)));
  fault::InvariantMonitor monitor{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  monitor.check_now();
  EXPECT_GT(net.total_cells_lost(), 0u);
  EXPECT_TRUE(monitor.violations().empty())
      << monitor.violations().front().detail;
  EXPECT_EQ(injector.log().size(), 2u + 2u + 2u + 1u + 1u + 1u);
}

TEST(FaultInjectorTest, DeferredValidationRejectsChurnAtActivation) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  // Deferred mode accepts the plan at load time...
  EXPECT_NO_THROW(
      injector.apply(fault::FaultPlan{}.leave(9, Time::ms(10)),
                     fault::FaultInjector::ValidateMode::kAtActivation));
  b.net.start_all(Time::zero(), Time::zero());
  // ...but the out-of-range index is still caught when the event fires,
  // not silently dropped or applied to some other session.
  EXPECT_THROW(sim.run_until(Time::ms(20)), std::out_of_range);
  EXPECT_EQ(sim.now(), Time::ms(10));  // threw at the activation instant
}

TEST(FaultInjectorTest, DeferredValidationStillRejectsBadLinksEagerly) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  // Only session churn is deferred; an unresolvable link target can
  // never become valid and is refused up front in both modes.
  EXPECT_THROW(
      injector.apply(
          fault::FaultPlan{}.outage(fault::trunk(5), Time::ms(1), Time::ms(1)),
          fault::FaultInjector::ValidateMode::kAtActivation),
      std::out_of_range);
}

TEST(FaultPlanTest, ParsesMisbehaveAndComply) {
  const auto plan = fault::FaultPlan::parse(
      "misbehave:1:100:greedy;misbehave:2:150:partial:0.25;"
      "misbehave:0:120:forge;comply:1:300");
  ASSERT_EQ(plan.events.size(), 4u);
  using K = fault::FaultEvent::Kind;
  EXPECT_EQ(plan.events[0].kind, K::kMisbehave);
  EXPECT_EQ(plan.events[0].target.kind, fault::FaultTarget::Kind::kSession);
  EXPECT_EQ(plan.events[0].target.index, 1u);
  EXPECT_EQ(plan.events[0].mode, fault::MisbehaveMode::kGreedy);
  EXPECT_EQ(plan.events[0].at, Time::ms(100));
  EXPECT_EQ(plan.events[1].mode, fault::MisbehaveMode::kPartial);
  EXPECT_DOUBLE_EQ(plan.events[1].compliance, 0.25);
  EXPECT_EQ(plan.events[2].mode, fault::MisbehaveMode::kForge);
  EXPECT_EQ(plan.events[3].kind, K::kComply);
  EXPECT_EQ(plan.events[3].target.index, 1u);
  // And back out through the grammar, exactly.
  EXPECT_EQ(fault::FaultPlan::parse(plan.to_spec()), plan);
}

TEST(FaultPlanTest, RejectsMalformedMisbehave) {
  EXPECT_THROW(fault::FaultPlan::parse("misbehave:1:100:sneaky"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("misbehave:1:100"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("misbehave:1:100:partial:1.5"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("comply:1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("comply:x:5"), std::invalid_argument);
}

TEST(FaultInjectorTest, MisbehaveSwitchesSourceBehaviorOnSchedule) {
  Simulator sim;
  Bottleneck b{sim, 3};
  fault::FaultInjector injector{sim, b.net};
  injector.apply(fault::FaultPlan{}
                     .misbehave(1, Time::ms(50), fault::MisbehaveMode::kGreedy)
                     .comply(1, Time::ms(150)));
  b.net.start_all(Time::zero(), Time::zero());
  EXPECT_EQ(b.net.source(1).behavior(), atm::SourceBehavior::kCompliant);
  sim.run_until(Time::ms(100));
  EXPECT_EQ(b.net.source(1).behavior(), atm::SourceBehavior::kGreedy);
  EXPECT_EQ(b.net.source(0).behavior(), atm::SourceBehavior::kCompliant);
  sim.run_until(Time::ms(200));
  EXPECT_EQ(b.net.source(1).behavior(), atm::SourceBehavior::kCompliant);
  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_NE(injector.log()[0].description.find("misbehaves"),
            std::string::npos);
  EXPECT_NE(injector.log()[1].description.find("compliance"),
            std::string::npos);
}

TEST(FaultInjectorTest, MisbehaveValidatesSessionIndexAtLoad) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  const auto pending_before = sim.pending_count();
  EXPECT_THROW(
      injector.apply(fault::FaultPlan{}.misbehave(
          5, Time::ms(1), fault::MisbehaveMode::kGreedy)),
      std::out_of_range);
  EXPECT_THROW(injector.apply(fault::FaultPlan{}.comply(5, Time::ms(1))),
               std::out_of_range);
  EXPECT_EQ(sim.pending_count(), pending_before);
}

TEST(FaultInjectorTest, EagerValidationNamesLoadTime) {
  Simulator sim;
  Bottleneck b{sim, 2};
  fault::FaultInjector injector{sim, b.net};
  try {
    injector.apply(fault::FaultPlan{}.join(7, Time::ms(1)));
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string{e.what()}.find("at plan load"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string{e.what()}.find("session 7"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace phantom
