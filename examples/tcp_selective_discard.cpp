// TCP example: Phantom's Selective Discard in an IP router.
//
// Four greedy TCP Reno connections with very different RTTs share one
// 10 Mb/s drop-tail router. Plain drop-tail is strongly biased by RTT;
// adding Phantom's Selective Discard (router compares each packet's
// stamped rate CR against utilization_factor * MACR and polices the
// over-rate flows when the queue builds) equalizes the goodputs without
// modifying TCP's window machinery.
#include <cstdio>
#include <vector>

#include "exp/report.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "tcp/phantom_policies.h"
#include "tcp/tcp_network.h"

using namespace phantom;
using sim::Rate;
using sim::Time;

namespace {

struct Result {
  std::vector<double> mbps;
  double jain = 0.0;
  double total = 0.0;
};

Result run(tcp::PolicyFactory policy) {
  sim::Simulator sim;
  tcp::TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  tcp::TcpTrunkOptions opts;
  opts.queue_limit = 60;
  opts.policy = std::move(policy);
  const auto s = net.add_sink_node(r, opts);
  const Time delays[] = {Time::ms(3), Time::ms(6), Time::ms(12), Time::ms(24)};
  for (const Time d : delays) {
    net.add_flow(r, {}, s, tcp::RenoConfig{}, Rate::mbps(100), d);
  }
  net.start_all(Time::zero(), Time::ms(73));
  sim.run_until(Time::sec(3));
  std::vector<std::int64_t> base;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    base.push_back(net.delivered_bytes(f));
  }
  sim.run_until(Time::sec(12));
  Result out;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    out.mbps.push_back(
        static_cast<double>(net.delivered_bytes(f) - base[f]) * 8 / 9.0 / 1e6);
    out.total += out.mbps.back();
  }
  out.jain = stats::jain_index(out.mbps);
  return out;
}

}  // namespace

int main() {
  const Result droptail = run(nullptr);
  const Result discard = run([](sim::Simulator& sim, Rate rate) {
    return std::make_unique<tcp::SelectiveDiscardPolicy>(sim, rate, 10.0);
  });

  exp::print_header("tcp-selective-discard",
                    "4 Reno flows (RTT 6..48 ms), 10 Mb/s bottleneck");
  exp::Table table{{"flow (2*access delay)", "drop-tail (Mb/s)",
                    "selective discard (Mb/s)"}};
  const char* kNames[] = {"6 ms", "12 ms", "24 ms", "48 ms"};
  for (std::size_t f = 0; f < droptail.mbps.size(); ++f) {
    table.add_row({kNames[f], exp::Table::num(droptail.mbps[f]),
                   exp::Table::num(discard.mbps[f])});
  }
  table.add_row({"total", exp::Table::num(droptail.total),
                 exp::Table::num(discard.total)});
  table.add_row({"Jain index", exp::Table::num(droptail.jain, 3),
                 exp::Table::num(discard.jain, 3)});
  table.print();
  std::printf(
      "\nSelective Discard trades a little utilization for RTT-independent\n"
      "fairness, with no change to the end hosts' TCP implementation.\n");
  return 0;
}
