// Fig. 4: Phantom with on/off sessions — two greedy sessions plus one
// on/off session toggling every 60 ms on a 150 Mb/s link.
//
// Paper shape: MACR re-converges after every toggle (up when the
// session leaves, down when it returns); the queue spikes moderately at
// each ON transition and drains; no cells are lost.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Time;

int main() {
  exp::print_header("Fig 4", "Phantom with an on/off session");

  sim::Simulator sim;
  AbrBottleneck b{sim, exp::Algorithm::kPhantom, 3};
  exp::QueueSampler queue{sim, b.port()};
  b.net.start_all(Time::zero(), Time::zero());
  topo::OnOffDriver::Options opt;
  opt.on_period = Time::ms(60);
  opt.off_period = Time::ms(60);
  opt.first_toggle = Time::ms(60);
  topo::OnOffDriver driver{sim, b.net.source(2), opt};

  exp::GoodputProbe probe{sim, b.net};
  // Measure one ON window (360-415 ms) and one OFF window (420-475 ms).
  sim.run_until(Time::ms(370));
  probe.mark();
  sim.run_until(Time::ms(415));
  const auto on_rates = probe.rates_mbps();
  sim.run_until(Time::ms(430));
  probe.mark();
  sim.run_until(Time::ms(475));
  const auto off_rates = probe.rates_mbps();

  const auto& ctl =
      dynamic_cast<const core::PhantomController&>(b.port().controller());
  exp::print_series("MACR (Mb/s)", ctl.macr_trace().samples(), 1e-6, 25);
  exp::print_series("queue (cells)", queue.trace().samples(), 1.0, 25);

  exp::Table table{{"session", "ON phase (Mb/s)", "OFF phase (Mb/s)"}};
  const char* names[] = {"greedy 0", "greedy 1", "on/off"};
  for (std::size_t s = 0; s < 3; ++s) {
    table.add_row({names[s], exp::Table::num(on_rates[s]),
                   exp::Table::num(off_rates[s])});
  }
  table.print();
  std::printf(
      "\nexpected: ON -> all ~u*C/4 = 35.6; OFF -> greedy ~u*C/3 = 47.5\n"
      "toggles: %llu, drops: %llu, max queue: %zu cells\n",
      static_cast<unsigned long long>(driver.toggles()),
      static_cast<unsigned long long>(b.port().cells_dropped()),
      b.port().max_queue_length());
  return 0;
}
