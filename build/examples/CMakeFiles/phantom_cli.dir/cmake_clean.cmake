file(REMOVE_RECURSE
  "CMakeFiles/phantom_cli.dir/phantom_cli.cpp.o"
  "CMakeFiles/phantom_cli.dir/phantom_cli.cpp.o.d"
  "phantom_cli"
  "phantom_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
