// IP router: per-flow forward/backward routing over packet ports.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tcp/packet.h"
#include "tcp/packet_port.h"

namespace phantom::tcp {

/// A router is a set of output ports plus a flow routing table. Data
/// packets of a flow exit via the flow's forward port; ACK and Source
/// Quench packets exit via its backward port. A Source Quench requested
/// by a forward port's policy is materialized here and injected onto the
/// flow's backward path toward the source.
class Router final : public PacketSink {
 public:
  explicit Router(sim::Simulator& sim, std::string name = "router")
      : sim_{&sim}, name_{std::move(name)} {
    (void)sim_;
  }

  /// Adds an output port; returns its index.
  std::size_t add_port(sim::Rate rate, std::size_t queue_limit,
                       PacketLink link, std::unique_ptr<QueuePolicy> policy);

  /// Routes a flow. A flow may be routed at most once per router.
  void route_flow(int flow, std::size_t forward_port,
                  std::size_t backward_port);

  void receive_packet(Packet packet) override;

  [[nodiscard]] PacketPort& port(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] const PacketPort& port(std::size_t i) const {
    return *ports_.at(i);
  }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t unrouted_packets() const { return unrouted_; }
  [[nodiscard]] std::uint64_t quenches_injected() const { return quenches_; }

 private:
  struct Route {
    std::size_t forward_port;
    std::size_t backward_port;
  };

  sim::Simulator* sim_;
  std::string name_;
  std::vector<std::unique_ptr<PacketPort>> ports_;
  std::unordered_map<int, Route> routes_;
  std::uint64_t unrouted_ = 0;
  std::uint64_t quenches_ = 0;
};

}  // namespace phantom::tcp
