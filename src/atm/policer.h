// Per-VC usage parameter control (UPC): GCRA conformance + enforcement.
//
// Phantom — like every ER-based ABR scheme — steers sources by *asking*
// them to slow down; nothing in the data path stops a source that
// ignores the ER field. The ATM Forum TM spec pairs ER control with
// policing at the network ingress for exactly this reason. This policer
// runs the Generic Cell Rate Algorithm (virtual-scheduling form,
// I.371 / TM 4.0) per VC, but against a *moving* reference rate: the
// forward port's current fair-share estimate (Phantom's MACR) times a
// headroom factor, rather than a static PCR contract. A compliant
// source tracking the advertised ER is conformant by construction; a
// source sending faster than its fair share for longer than the
// tolerance τ is not.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "atm/cell.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace phantom::atm {

/// What to do with a non-conforming cell.
enum class PolicingAction {
  kMonitor,  ///< count violations only (detection without enforcement)
  kTag,      ///< set CLP; tagged cells are dropped first under pressure
  kDrop,     ///< discard at ingress, before the cell consumes a queue slot
};

[[nodiscard]] std::string to_string(PolicingAction a);

struct PolicerConfig {
  PolicingAction action = PolicingAction::kMonitor;

  /// The conformance rate is `headroom * fair_share`: the slack keeps
  /// honest sources (whose ACR overshoots transiently during additive
  /// increase, and whose MACR reference itself moves each measurement
  /// interval) out of the violation counters. 1.5 tolerates a full
  /// additive-increase excursion between two MACR updates.
  double headroom = 1.5;

  /// Never police below this rate: sources are entitled to ramp from
  /// ICR even while the fair-share estimate is still settling.
  sim::Rate floor = sim::Rate::mbps(8.5);

  /// GCRA limit τ: how far ahead of its theoretical arrival time a cell
  /// may arrive. Two Phantom measurement intervals (2 * Δt = 2 ms)
  /// cover the reference-rate staleness plus source-side burstiness.
  sim::Time tolerance = sim::Time::ms(2);
};

/// GCRA (virtual scheduling) conformance checker over the VCs crossing
/// one switch. Unlike the flow-control algorithms, a policer is *meant*
/// to keep per-VC state — UPC is an ingress function, where per-VC
/// tables are standard practice, and it is exactly the state Phantom's
/// constant-space controller cannot afford.
class Policer {
 public:
  enum class Verdict { kPass, kTag, kDrop };

  struct VcStats {
    std::uint64_t conforming = 0;
    std::uint64_t nonconforming = 0;
    std::uint64_t tagged = 0;
    std::uint64_t dropped = 0;
  };

  explicit Policer(PolicerConfig config = {}) : config_{config} {}

  /// Checks one forward cell against the GCRA at the current reference
  /// rate `fair_share` (the forward port's estimate; re-read per cell so
  /// the contract tracks the moving MACR). High-priority (CBR/VBR)
  /// cells, backward RM cells, and ports with no estimate (fair_share
  /// zero) are never policed. Updates the conformance state and the
  /// counters; the caller applies the verdict (tag the cell / drop it).
  Verdict check(const Cell& cell, sim::Rate fair_share, sim::Time now);

  [[nodiscard]] const PolicerConfig& config() const { return config_; }

  /// Evicts one VC's GCRA state (TAT and per-VC counters): the stale-VC
  /// reaper's half of session teardown. Without this, every VC ever
  /// policed leaks a table entry forever, and — worse — a VC id reused
  /// by a new session inherits the dead session's TAT and starts its
  /// contract already in debt. Aggregate totals are unaffected. Returns
  /// whether the VC had state to evict.
  bool evict_vc(int vc);

  /// VCs evicted so far (reaper sweeps + explicit teardowns).
  [[nodiscard]] std::uint64_t vcs_evicted() const { return evicted_; }
  /// VCs currently holding GCRA state.
  [[nodiscard]] std::size_t tracked_vcs() const { return vcs_.size(); }

  /// Per-VC counters; zeros for a VC never seen.
  [[nodiscard]] VcStats vc_stats(int vc) const;
  [[nodiscard]] std::uint64_t cells_checked() const {
    return total_.conforming + total_.nonconforming;
  }
  [[nodiscard]] std::uint64_t cells_conforming() const {
    return total_.conforming;
  }
  [[nodiscard]] std::uint64_t cells_nonconforming() const {
    return total_.nonconforming;
  }
  [[nodiscard]] std::uint64_t cells_tagged() const { return total_.tagged; }
  [[nodiscard]] std::uint64_t cells_dropped() const { return total_.dropped; }

  /// Fraction of checked cells found non-conforming (0 if none checked).
  [[nodiscard]] double violation_rate() const;
  /// Same, for one VC — the per-session detection signal.
  [[nodiscard]] double violation_rate(int vc) const;

  /// Registers the aggregate policing surface under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix);

 private:
  struct VcState {
    sim::Time tat;  ///< GCRA theoretical arrival time
    VcStats stats;
  };

  PolicerConfig config_;
  std::unordered_map<int, VcState> vcs_;
  VcStats total_;
  std::uint64_t evicted_ = 0;
};

}  // namespace phantom::atm
