// Propagation-delay pipe between network elements.
#pragma once

#include <cassert>

#include "atm/cell.h"
#include "sim/simulator.h"

namespace phantom::atm {

/// Unidirectional link: delivers cells to `sink` after a fixed
/// propagation delay. Serialization (transmission) time is modelled by
/// the OutputPort feeding the link, so Link itself is pure latency; this
/// matches the classic DES decomposition and lets sources with their own
/// pacing connect directly.
///
/// `loss_probability` injects independent random cell loss (failure
/// testing: lost RM cells stall feedback, lost data cells starve the
/// destination). Links are value types; each holder's copy keeps its own
/// loss counter.
class Link {
 public:
  Link(sim::Simulator& sim, sim::Time delay, CellSink& sink,
       double loss_probability = 0.0)
      : sim_{&sim}, delay_{delay}, sink_{&sink}, loss_{loss_probability} {
    assert(!delay.is_negative());
    assert(loss_probability >= 0.0 && loss_probability <= 1.0);
  }

  void deliver(Cell cell) {
    if (loss_ > 0.0 && sim_->rng().bernoulli(loss_)) {
      ++lost_;
      return;
    }
    sim_->schedule(delay_, [sink = sink_, cell] { sink->receive_cell(cell); });
  }

  [[nodiscard]] sim::Time delay() const { return delay_; }
  [[nodiscard]] std::uint64_t cells_lost() const { return lost_; }

 private:
  sim::Simulator* sim_;
  sim::Time delay_;
  CellSink* sink_;
  double loss_ = 0.0;
  std::uint64_t lost_ = 0;
};

}  // namespace phantom::atm
