// Workload shapers: drive sources through on/off and bursty patterns.
#pragma once

#include "atm/abr_source.h"
#include "sim/simulator.h"

namespace phantom::topo {

/// Toggles an ABR source between active and idle. Periods are either
/// fixed (deterministic square wave, like the paper's Fig. 4 on/off
/// configuration) or exponentially distributed with the given means.
class OnOffDriver {
 public:
  struct Options {
    sim::Time on_period = sim::Time::ms(20);
    sim::Time off_period = sim::Time::ms(20);
    sim::Time first_toggle = sim::Time::ms(20);  ///< absolute time of first off
    bool exponential = false;
  };

  /// The driver assumes the source is started (active) elsewhere; it
  /// schedules the first *off* transition at `options.first_toggle`.
  OnOffDriver(sim::Simulator& sim, atm::AbrSource& source, Options options)
      : sim_{&sim}, source_{&source}, options_{options} {
    sim_->schedule_at(options_.first_toggle, [this] { toggle(false); });
  }

  OnOffDriver(const OnOffDriver&) = delete;
  OnOffDriver& operator=(const OnOffDriver&) = delete;

  [[nodiscard]] std::uint64_t toggles() const { return toggles_; }

 private:
  void toggle(bool to_active) {
    source_->set_active(to_active);
    ++toggles_;
    const sim::Time mean =
        to_active ? options_.on_period : options_.off_period;
    const sim::Time wait =
        options_.exponential ? sim_->rng().exponential_time(mean) : mean;
    sim_->schedule(wait, [this, to_active] { toggle(!to_active); });
  }

  sim::Simulator* sim_;
  atm::AbrSource* source_;
  Options options_;
  std::uint64_t toggles_ = 0;
};

}  // namespace phantom::topo
