// Fairness metrics and the exact max-min reference allocation.
//
// The paper's yardstick is max-min fairness [BG87]: an allocation is
// max-min fair if no session's rate can be raised without lowering the
// rate of a session with equal or smaller rate. `MaxMinSolver` computes
// that allocation exactly by progressive filling, so every experiment can
// report measured-vs-ideal. The solver can also insert one *phantom*
// session per link, which yields the equilibrium the Phantom algorithm
// itself converges to (each link behaves as if it carried one extra
// session; see DESIGN.md §1).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "sim/time.h"

namespace phantom::stats {

/// Jain's fairness index: (Σx)² / (n·Σx²). 1.0 means perfectly equal;
/// k/n means k sessions hog everything. Empty input yields 1.0 (an empty
/// allocation is vacuously fair); all-zero input likewise.
[[nodiscard]] double jain_index(std::span<const double> rates);

/// Normalized max-min fairness: mean over sessions of
/// min(measured, ideal)/max(measured, ideal) against a reference
/// allocation. 1.0 means the measured rates equal the reference.
[[nodiscard]] double maxmin_closeness(std::span<const double> measured,
                                      std::span<const double> ideal);

/// Fair-share retention: mean over sessions of min(measured/ideal, 1).
/// The misbehavior experiments' headline metric — what fraction of its
/// entitled rate a (compliant) session actually kept. Unlike
/// maxmin_closeness, overshooting the ideal is not penalized: a session
/// briefly above its share has retained it. Sessions with a zero ideal
/// count as fully retained. Empty input yields 1.0.
[[nodiscard]] double fair_share_retention(std::span<const double> measured,
                                          std::span<const double> ideal);

/// Exact max-min allocation over an arbitrary capacitated topology.
class MaxMinSolver {
 public:
  /// Adds a link and returns its index.
  std::size_t add_link(sim::Rate capacity);

  /// Adds a session traversing the given links (by index) and returns the
  /// session's index. A session must traverse at least one link.
  /// `demand` caps the session's allocation (a source that only ever
  /// wants 2 Mb/s is frozen there and the excess is shared on); the
  /// default is unbounded (greedy).
  std::size_t add_session(std::vector<std::size_t> links,
                          sim::Rate demand = sim::Rate::bps(
                              std::numeric_limits<double>::infinity()));

  /// Progressive-filling max-min allocation. If `phantom_per_link` is
  /// true, every link also carries one imaginary single-hop session; the
  /// returned rates are for the real sessions only. `utilization` scales
  /// every link capacity (the paper drives links at u < 1).
  [[nodiscard]] std::vector<sim::Rate> solve(bool phantom_per_link = false,
                                             double utilization = 1.0) const;

  [[nodiscard]] std::size_t num_links() const { return capacities_.size(); }
  [[nodiscard]] std::size_t num_sessions() const { return sessions_.size(); }

 private:
  std::vector<sim::Rate> capacities_;
  std::vector<std::vector<std::size_t>> sessions_;  // session -> links
  std::vector<double> demands_;                     // bps, may be +inf
};

}  // namespace phantom::stats
