#include "fault/fault_injector.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace phantom::fault {
namespace {

std::string format_fraction(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", f);
  return buf;
}

void check_index(std::size_t index, std::size_t count, const char* what) {
  if (index >= count) {
    throw std::out_of_range{"fault plan: no such " + std::string{what} + " " +
                            std::to_string(index) + " (network has " +
                            std::to_string(count) + ")"};
  }
}

}  // namespace

std::vector<std::shared_ptr<atm::LinkState>> FaultInjector::links_of(
    FaultTarget t) const {
  switch (t.kind) {
    case FaultTarget::Kind::kTrunk:
      check_index(t.index, net_->num_trunks(), "trunk");
      return {net_->trunk_port(t.index).link().state(),
              net_->trunk_reverse_port(t.index).link().state()};
    case FaultTarget::Kind::kDest:
      check_index(t.index, net_->num_destinations(), "dest");
      return {net_->dest_port(t.index).link().state()};
    case FaultTarget::Kind::kSession:
      throw std::invalid_argument{
          "fault plan: link fault cannot target a session"};
  }
  return {};
}

std::vector<std::shared_ptr<atm::LinkState>> FaultInjector::reverse_links_of(
    FaultTarget t) const {
  switch (t.kind) {
    case FaultTarget::Kind::kTrunk:
      check_index(t.index, net_->num_trunks(), "trunk");
      return {net_->trunk_reverse_port(t.index).link().state()};
    case FaultTarget::Kind::kDest:
      check_index(t.index, net_->num_destinations(), "dest");
      return {net_->destination(t.index).link().state()};
    case FaultTarget::Kind::kSession:
      throw std::invalid_argument{
          "fault plan: rm_blackhole cannot target a session"};
  }
  return {};
}

atm::PortController& FaultInjector::controller_of(FaultTarget t) const {
  switch (t.kind) {
    case FaultTarget::Kind::kTrunk:
      check_index(t.index, net_->num_trunks(), "trunk");
      return net_->trunk_port(t.index).controller();
    case FaultTarget::Kind::kDest:
      check_index(t.index, net_->num_destinations(), "dest");
      return net_->dest_port(t.index).controller();
    case FaultTarget::Kind::kSession:
      throw std::invalid_argument{"fault plan: restart cannot target a session"};
  }
  throw std::invalid_argument{"fault plan: bad target kind"};
}

void FaultInjector::validate(const FaultEvent& e) const {
  using K = FaultEvent::Kind;
  switch (e.kind) {
    case K::kOutage:
    case K::kFlap:
    case K::kBurst:
    case K::kRmFault:
    case K::kRmBlackhole:
    case K::kRestart: {
      // Resolve the target now: .at() throws std::out_of_range on a bad
      // index, before anything was scheduled.
      if (e.kind == K::kRestart) {
        (void)controller_of(e.target);
      } else if (e.kind == K::kRmBlackhole) {
        (void)reverse_links_of(e.target);
      } else {
        (void)links_of(e.target);
      }
      if (e.duration.is_negative()) {
        throw std::invalid_argument{"fault plan: negative duration"};
      }
      break;
    }
    case K::kLeave:
    case K::kJoin:
    case K::kMisbehave:
    case K::kComply:
      check_session_live(e.target.index, "at plan load");
      break;
    case K::kMemSqueeze:
      if (!net_->overload_protection_enabled()) {
        throw std::invalid_argument{
            "fault plan: memsqueeze requires overload protection "
            "(enable_overload_protection / --overload)"};
      }
      if (e.duration.is_negative()) {
        throw std::invalid_argument{"fault plan: negative duration"};
      }
      break;
    case K::kVcStorm:
      if (!net_->overload_protection_enabled()) {
        throw std::invalid_argument{
            "fault plan: vcstorm requires overload protection "
            "(enable_overload_protection / --overload)"};
      }
      if (net_->num_sessions() == 0) {
        throw std::invalid_argument{
            "fault plan: vcstorm needs an existing session 0 to clone"};
      }
      if (e.duration.is_negative()) {
        throw std::invalid_argument{"fault plan: negative duration"};
      }
      break;
    case K::kCustom:
      if (!e.action) throw std::invalid_argument{"custom fault: null action"};
      break;
  }
}

void FaultInjector::record(const std::string& description, Phase phase) {
  log_.push_back(AppliedFault{sim_->now(), description});
  if constexpr (obs::kObsEnabled) {
    if (event_log_ != nullptr) {
      obs::Event e;
      e.time = sim_->now();
      e.kind = phase == Phase::kRecover ? obs::EventKind::kFaultRecovered
                                        : obs::EventKind::kFaultFired;
      e.label = event_log_->intern(description);
      event_log_->record(e);
    }
  }
}

void FaultInjector::arm(sim::Time at, std::function<void()> action) {
  const std::size_t i = armed_.size();
  armed_.push_back(std::move(action));
  auto fire = [this, i] { armed_[i](); };
  static_assert(sim::EventQueue::Callback::fits_inline<decltype(fire)>);
  sim_->schedule_at(at, fire);
}

void FaultInjector::check_session_live(std::size_t s, const char* when) const {
  if (s >= net_->num_sessions()) {
    throw std::out_of_range{"fault plan: no such session " +
                            std::to_string(s) + " " + when + " (network has " +
                            std::to_string(net_->num_sessions()) + ")"};
  }
}

void FaultInjector::schedule_event(const FaultEvent& e) {
  using K = FaultEvent::Kind;
  switch (e.kind) {
    case K::kOutage: {
      auto links = links_of(e.target);
      const std::string name = e.target.to_string();
      arm(e.at, [this, links, name] {
        for (const auto& st : links) st->down = true;
        record("outage begins on " + name);
      });
      arm(e.at + e.duration, [this, links, name] {
        for (const auto& st : links) st->down = false;
        record("outage ends on " + name + " (restored)", Phase::kRecover);
      });
      break;
    }
    case K::kFlap: {
      auto links = links_of(e.target);
      const std::string name = e.target.to_string();
      sim::Time t = e.at;
      for (int c = 0; c < e.cycles; ++c) {
        arm(t, [this, links, name, c] {
          for (const auto& st : links) st->down = true;
          record("flap cycle " + std::to_string(c + 1) + ": " + name +
                 " down");
        });
        arm(t + e.down_period, [this, links, name, c] {
          for (const auto& st : links) st->down = false;
          record("flap cycle " + std::to_string(c + 1) + ": " + name + " up",
                 Phase::kRecover);
        });
        t += e.down_period + e.up_period;
      }
      break;
    }
    case K::kBurst: {
      auto links = links_of(e.target);
      const std::string name = e.target.to_string();
      const double p_gb = e.p_good_bad, p_bg = e.p_bad_good, lb = e.loss_bad;
      arm(e.at, [this, links, name, p_gb, p_bg, lb] {
        for (const auto& st : links) {
          st->burst_enabled = true;
          st->burst_bad = false;  // every burst window starts Good
          st->burst_p_good_bad = p_gb;
          st->burst_p_bad_good = p_bg;
          st->burst_loss_good = 0.0;
          st->burst_loss_bad = lb;
        }
        record("burst loss begins on " + name);
      });
      arm(e.at + e.duration, [this, links, name] {
        for (const auto& st : links) st->burst_enabled = false;
        record("burst loss ends on " + name, Phase::kRecover);
      });
      break;
    }
    case K::kRmFault: {
      auto links = links_of(e.target);
      const std::string name = e.target.to_string();
      const double drop = e.rm_loss, corrupt = e.rm_corrupt;
      arm(e.at, [this, links, name, drop, corrupt] {
        for (const auto& st : links) {
          st->rm_loss = drop;
          st->rm_corrupt = corrupt;
        }
        record("RM fault begins on " + name);
      });
      arm(e.at + e.duration, [this, links, name] {
        for (const auto& st : links) {
          st->rm_loss = 0.0;
          st->rm_corrupt = 0.0;
        }
        record("RM fault ends on " + name, Phase::kRecover);
      });
      break;
    }
    case K::kRmBlackhole: {
      auto links = reverse_links_of(e.target);
      const std::string name = e.target.to_string();
      const double drop = e.rm_loss;
      arm(e.at, [this, links, name, drop] {
        for (const auto& st : links) st->rm_loss = drop;
        record("feedback blackhole begins on " + name +
               " (backward RM cells dropped)");
      });
      arm(e.at + e.duration, [this, links, name] {
        for (const auto& st : links) st->rm_loss = 0.0;
        record("feedback blackhole ends on " + name + " (restored)",
               Phase::kRecover);
      });
      break;
    }
    case K::kRestart: {
      atm::PortController* ctl = &controller_of(e.target);
      const std::string name = e.target.to_string();
      const bool warm = e.warm;
      arm(e.at, [this, ctl, name, warm] {
        if (warm) {
          ctl->warm_restart();
          record("controller warm restart on " + name + " (" + ctl->name() +
                 " reseeding from observed RM traffic)");
        } else {
          ctl->reset();
          record("controller restart on " + name + " (" + ctl->name() +
                 " state wiped)");
        }
      });
      break;
    }
    case K::kLeave: {
      const std::size_t s = e.target.index;
      arm(e.at, [this, s] {
        check_session_live(s, "at activation");
        net_->source(s).set_active(false);
        record("session " + std::to_string(s) + " leaves");
      });
      break;
    }
    case K::kJoin: {
      const std::size_t s = e.target.index;
      arm(e.at, [this, s] {
        check_session_live(s, "at activation");
        atm::AbrSource& src = net_->source(s);
        if (src.started()) {
          src.set_active(true);
        } else {
          src.start(sim_->now());
        }
        record("session " + std::to_string(s) + " joins");
      });
      break;
    }
    case K::kMisbehave: {
      const std::size_t s = e.target.index;
      const MisbehaveMode mode = e.mode;
      const double compliance = e.compliance;
      arm(e.at, [this, s, mode, compliance] {
        check_session_live(s, "at activation");
        atm::SourceBehavior behavior = atm::SourceBehavior::kGreedy;
        switch (mode) {
          case MisbehaveMode::kGreedy:
            behavior = atm::SourceBehavior::kGreedy;
            break;
          case MisbehaveMode::kForge:
            behavior = atm::SourceBehavior::kForging;
            break;
          case MisbehaveMode::kPartial:
            behavior = atm::SourceBehavior::kPartial;
            break;
        }
        net_->set_session_behavior(s, behavior, compliance);
        std::string detail = "session " + std::to_string(s) +
                             " misbehaves (" + to_string(mode);
        if (mode == MisbehaveMode::kPartial) {
          detail += " compliance=" + std::to_string(compliance);
        }
        record(detail + ")");
      });
      break;
    }
    case K::kComply: {
      const std::size_t s = e.target.index;
      arm(e.at, [this, s] {
        check_session_live(s, "at activation");
        net_->set_session_behavior(s, atm::SourceBehavior::kCompliant);
        record("session " + std::to_string(s) + " returns to compliance",
               Phase::kRecover);
      });
      break;
    }
    case K::kMemSqueeze: {
      const double frac = e.mem_frac;
      arm(e.at, [this, frac] {
        net_->squeeze_buffers(frac);
        record("memory squeeze begins (budgets at " + format_fraction(frac) +
               " of configured)");
      });
      if (!e.duration.is_zero()) {
        arm(e.at + e.duration, [this] {
          net_->squeeze_buffers(1.0);
          record("memory squeeze ends (budgets restored)", Phase::kRecover);
        });
      }
      break;
    }
    case K::kVcStorm: {
      const int n = e.storm_sessions;
      // The storm's admitted-session list only exists once the setup
      // burst has fired; the teardown closure shares it via shared_ptr.
      auto admitted = std::make_shared<std::vector<std::size_t>>();
      arm(e.at, [this, n, admitted] {
        check_session_live(0, "at vcstorm activation");
        const topo::AbrNetwork::SessionShape shape = net_->session_shape(0);
        const atm::AbrParams params = net_->source(0).params();
        int refused = 0;
        for (int k = 0; k < n; ++k) {
          const auto outcome =
              net_->try_add_session(shape.ingress, shape.path, shape.dest,
                                    params);
          if (outcome.admitted) {
            admitted->push_back(outcome.session);
            net_->source(outcome.session).start(sim_->now());
          } else {
            ++refused;
          }
        }
        record("vc storm offers " + std::to_string(n) + " setups (" +
               std::to_string(admitted->size()) + " admitted, " +
               std::to_string(refused) + " refused)");
      });
      if (!e.duration.is_zero()) {
        arm(e.at + e.duration, [this, admitted] {
          for (const std::size_t s : *admitted) {
            net_->source(s).set_active(false);
            net_->teardown_session_state(s);
          }
          record("vc storm ends (" + std::to_string(admitted->size()) +
                     " storm sessions torn down)",
                 Phase::kRecover);
        });
      }
      break;
    }
    case K::kCustom: {
      auto action = e.action;
      const std::string label = e.label.empty() ? "custom" : e.label;
      arm(e.at, [this, action = std::move(action), label] {
        action();
        record(label);
      });
      break;
    }
  }
}

void FaultInjector::apply(const FaultPlan& plan, ValidateMode mode) {
  if (mode == ValidateMode::kEager) {
    for (const FaultEvent& e : plan.events) validate(e);
  } else {
    // Deferred mode still refuses what cannot be scheduled at all:
    // link/controller targets are resolved below, and a null custom
    // action can never become valid later.
    for (const FaultEvent& e : plan.events) {
      if (e.kind != FaultEvent::Kind::kLeave &&
          e.kind != FaultEvent::Kind::kJoin &&
          e.kind != FaultEvent::Kind::kMisbehave &&
          e.kind != FaultEvent::Kind::kComply) {
        validate(e);
      }
    }
  }
  for (const FaultEvent& e : plan.events) schedule_event(e);
  if constexpr (obs::kObsEnabled) {
    if (event_log_ != nullptr) {
      for (const FaultEvent& e : plan.events) {
        obs::Event armed;
        armed.time = sim_->now();
        armed.kind = obs::EventKind::kFaultArmed;
        armed.label = event_log_->intern(e.describe());
        event_log_->record(armed);
      }
    }
  }
}

void FaultInjector::register_metrics(obs::Registry& reg,
                                     const std::string& prefix) {
  reg.add_counter({prefix + ".transitions_armed", "fault.transitions_armed",
                   obs::MetricType::kCounter, "transitions", "FaultInjector",
                   "fault transitions scheduled by apply() (each windowed "
                   "fault contributes its fire and recover halves)"},
                  [this] { return armed_.size(); });
  reg.add_counter({prefix + ".transitions_fired", "fault.transitions_fired",
                   obs::MetricType::kCounter, "transitions", "FaultInjector",
                   "fault transitions that have taken effect so far"},
                  [this] { return log_.size(); });
}

}  // namespace phantom::fault
