file(REMOVE_RECURSE
  "CMakeFiles/topo_network_test.dir/topo_network_test.cc.o"
  "CMakeFiles/topo_network_test.dir/topo_network_test.cc.o.d"
  "topo_network_test"
  "topo_network_test.pdb"
  "topo_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
