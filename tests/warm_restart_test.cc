// Warm controller restart: the audited path that reseeds a restarted
// controller's rate estimate from the first window of observed RM
// traffic instead of cold-booting at the initial constant.
#include <gtest/gtest.h>

#include <string>

#include "atm/port_controller.h"
#include "exp/factories.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;

TEST(WarmStartWindowTest, ClosesWithTheMeanObservedCcr) {
  atm::WarmStartWindow w;
  EXPECT_FALSE(w.open());
  w.begin();
  EXPECT_TRUE(w.open());
  EXPECT_FALSE(w.ripe());  // no samples yet: a tick must not close it
  EXPECT_FALSE(w.sample(30e6));
  EXPECT_TRUE(w.ripe());
  EXPECT_FALSE(w.sample(50e6));
  const auto seed = w.close();
  ASSERT_TRUE(seed.has_value());
  EXPECT_DOUBLE_EQ(*seed, 40e6);
  EXPECT_FALSE(w.open());
  EXPECT_EQ(w.audit().warm_restarts, 1u);
  EXPECT_EQ(w.audit().ccr_samples, 2u);
}

TEST(WarmStartWindowTest, EmptyWindowClosesToNothing) {
  // No RM traffic at all during the window: the controller stays on its
  // cold boot value (close() reports that honestly).
  atm::WarmStartWindow w;
  w.begin();
  EXPECT_FALSE(w.close().has_value());
}

TEST(WarmStartWindowTest, FillingTheWindowRequestsImmediateClose) {
  atm::WarmStartWindow w;
  w.begin();
  for (std::uint64_t i = 0; i + 1 < atm::WarmStartWindow::kMaxSamples; ++i) {
    EXPECT_FALSE(w.sample(10e6));
  }
  EXPECT_TRUE(w.sample(10e6));  // sample kMaxSamples: close now
  EXPECT_TRUE(w.close().has_value());
  // Samples after the close are ignored (the window is shut).
  EXPECT_FALSE(w.sample(99e6));
}

class WarmRestartTest : public testing::TestWithParam<exp::Algorithm> {};

TEST_P(WarmRestartTest, ReseedsFromObservedTrafficAndAudits) {
  // Let the network settle, warm-restart the bottleneck controller via
  // the fault plan, and check the audit: exactly one warm restart, a
  // non-empty sample window, and a seed near the rate sources were
  // demonstrably sending at (the fair share, not the boot constant).
  Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(GetParam())};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 4; ++i) net.add_session(sw, {}, dest);

  fault::FaultInjector injector{sim, net};
  injector.apply(
      fault::FaultPlan{}.restart(fault::dest(0), Time::ms(400), /*warm=*/true));

  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(390));
  const double before =
      net.dest_port(dest).controller().fair_share().mbits_per_sec();
  sim.run_until(Time::ms(600));

  const auto* audit = net.dest_port(dest).controller().warm_audit();
  ASSERT_NE(audit, nullptr)
      << exp::to_string(GetParam()) << " has no warm-start audit";
  EXPECT_EQ(audit->warm_restarts, 1u);
  EXPECT_FALSE(audit->window_open);  // long closed by 600 ms
  EXPECT_GT(audit->ccr_samples, 0u);
  // Sources track the advertised share, so their CCRs — and hence the
  // seed — sit near the pre-restart operating point. Wide tolerance:
  // the window catches sources mid-additive-increase.
  EXPECT_GT(audit->seeded_bps, 0.0);
  EXPECT_NEAR(audit->seeded_bps * 1e-6, before, 0.75 * before);
}

TEST_P(WarmRestartTest, ColdRestartNeverOpensTheWindow) {
  Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(GetParam())};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 4; ++i) net.add_session(sw, {}, dest);
  fault::FaultInjector injector{sim, net};
  injector.apply(fault::FaultPlan{}.restart(fault::dest(0), Time::ms(400),
                                            /*warm=*/false));
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(600));
  if (const auto* audit = net.dest_port(dest).controller().warm_audit()) {
    EXPECT_EQ(audit->warm_restarts, 0u);
    EXPECT_EQ(audit->seeded_bps, 0.0);
  }
}

std::string warm_name(const testing::TestParamInfo<exp::Algorithm>& info) {
  return exp::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, WarmRestartTest,
                         testing::Values(exp::Algorithm::kPhantom,
                                         exp::Algorithm::kEprca,
                                         exp::Algorithm::kAprc,
                                         exp::Algorithm::kCapc,
                                         exp::Algorithm::kErica),
                         warm_name);

}  // namespace
}  // namespace phantom
