// Failure injection and background traffic on the ABR substrate.
#include <gtest/gtest.h>

#include "atm/cbr_source.h"
#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;
using topo::TrunkOptions;

TEST(CbrSourceTest, PacesAtConfiguredRate) {
  Simulator sim;
  struct Counter final : atm::CellSink {
    void receive_cell(atm::Cell) override { ++cells; }
    int cells = 0;
  } sink;
  atm::CbrSource cbr{sim, 1, Rate::mbps(42.4),
                     atm::Link{sim, Time::zero(), sink}};
  cbr.start(Time::zero());
  sim.run_until(Time::ms(100));
  // 42.4 Mb/s = 100k cells/s -> 10000 cells in 100 ms.
  EXPECT_NEAR(static_cast<double>(sink.cells), 10'000.0, 10.0);
  EXPECT_EQ(cbr.cells_sent(), static_cast<std::uint64_t>(sink.cells));
}

TEST(CbrSourceTest, StopHaltsTransmission) {
  Simulator sim;
  struct Counter final : atm::CellSink {
    void receive_cell(atm::Cell) override { ++cells; }
    int cells = 0;
  } sink;
  atm::CbrSource cbr{sim, 1, Rate::mbps(10), atm::Link{sim, Time::zero(), sink}};
  cbr.start(Time::zero());
  sim.run_until(Time::ms(10));
  const int at_10ms = sink.cells;
  cbr.stop();
  sim.run_until(Time::ms(20));
  EXPECT_EQ(sink.cells, at_10ms);
}

TEST(CbrSourceTest, RejectsNonPositiveRate) {
  Simulator sim;
  struct Null final : atm::CellSink {
    void receive_cell(atm::Cell) override {}
  } sink;
  EXPECT_THROW(
      (atm::CbrSource{sim, 1, Rate::zero(), atm::Link{sim, Time::zero(), sink}}),
      std::invalid_argument);
}

TEST(AbrWithCbrTest, PhantomYieldsToBackgroundTraffic) {
  // 50 Mb/s of CBR + 2 greedy ABR sessions: the ABR share is
  // (u*C - 50) / 3 = 30.8 Mb/s each (the phantom still takes a share of
  // what remains).
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  net.add_session(sw, {}, dest);
  net.add_session(sw, {}, dest);
  net.add_cbr_session(sw, {}, dest, Rate::mbps(50));
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  probe.mark();
  sim.run_until(Time::ms(600));
  const auto rates = probe.rates_mbps();
  const double expect = (0.95 * 150 - 50) / 3;
  EXPECT_NEAR(rates[0], expect, 0.15 * expect);
  EXPECT_NEAR(rates[1], expect, 0.15 * expect);
  // The CBR stream itself is untouched (no drops at the port).
  EXPECT_EQ(net.dest_port(dest).cells_dropped(), 0u);
  // And the reference solver accounts for the background load.
  const auto ref = net.reference_rates(true, 0.95);
  EXPECT_NEAR(ref[0].mbits_per_sec(), expect, 1e-6);
}

TEST(AbrWithCbrTest, CbrDepartureReleasesBandwidth) {
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  net.add_session(sw, {}, dest);
  const auto cbr = net.add_cbr_session(sw, {}, dest, Rate::mbps(100));
  net.start_all(Time::zero(), Time::zero());
  sim.schedule_at(Time::ms(300), [&] { net.cbr_source(cbr).stop(); });
  sim.run_until(Time::ms(600));
  exp::GoodputProbe probe{sim, net};
  probe.mark();
  sim.run_until(Time::ms(800));
  // Alone now: u*C/2.
  EXPECT_NEAR(probe.rates_mbps()[0], 0.95 * 150 / 2, 6.0);
}

TEST(LossyLinkTest, DropsApproximatelyTheConfiguredFraction) {
  Simulator sim{17};
  struct Counter final : atm::CellSink {
    void receive_cell(atm::Cell) override { ++cells; }
    int cells = 0;
  } sink;
  atm::Link link{sim, Time::zero(), sink, 0.1};
  for (int i = 0; i < 10'000; ++i) link.deliver(atm::Cell::data(1));
  sim.run();
  EXPECT_NEAR(static_cast<double>(sink.cells), 9'000.0, 200.0);
  EXPECT_NEAR(static_cast<double>(link.cells_lost()), 1'000.0, 200.0);
}

TEST(LossyLinkTest, CopiesShareLossAccounting) {
  // Link is a value type passed around by copy (ports, sources and the
  // network builder each hold one); every copy must see the same fault
  // state and counters or losses vanish from per-copy bookkeeping.
  Simulator sim{17};
  struct Counter final : atm::CellSink {
    void receive_cell(atm::Cell) override { ++cells; }
    int cells = 0;
  } sink;
  atm::Link original{sim, Time::zero(), sink, 0.1};
  atm::Link copy = original;
  for (int i = 0; i < 5'000; ++i) original.deliver(atm::Cell::data(1));
  for (int i = 0; i < 5'000; ++i) copy.deliver(atm::Cell::data(1));
  sim.run();
  EXPECT_EQ(original.cells_lost(), copy.cells_lost());
  EXPECT_EQ(original.cells_delivered(), copy.cells_delivered());
  EXPECT_EQ(original.cells_lost() + original.cells_delivered(), 10'000u);
  EXPECT_GT(original.cells_lost(), 0u);
  // Fault state set through one copy acts on the other.
  copy.state()->down = true;
  const auto lost_before = original.cells_lost();
  original.deliver(atm::Cell::data(1));
  sim.run();
  EXPECT_EQ(original.cells_lost(), lost_before + 1);
}

TEST(LossyLinkTest, NetworkExposesCumulativeLinkLosses) {
  Simulator sim{7};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  TrunkOptions lossy;
  lossy.loss = 0.05;
  const auto dest = net.add_destination(sw, lossy);
  net.add_session(sw, {}, dest);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(200));
  EXPECT_GT(net.total_cells_lost(), 0u);
  // The probe agrees with the per-link counters.
  std::uint64_t sum = 0;
  for (const auto& st : net.link_states()) sum += st->lost();
  EXPECT_EQ(net.total_cells_lost(), sum);
}

TEST(AbrResilienceTest, ControlLoopSurvivesRmCellLoss) {
  // 2% random cell loss on the bottleneck trunk (data AND RM cells).
  // The loop must keep converging near the fair share: lost BRMs only
  // delay rate updates, and TCR keeps beaten-down sources probing.
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  TrunkOptions lossy;
  lossy.loss = 0.02;
  const auto dest = net.add_destination(sw, lossy);
  for (int i = 0; i < 3; ++i) net.add_session(sw, {}, dest);
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  probe.mark();
  sim.run_until(Time::ms(700));
  const auto rates = probe.rates_mbps();
  // Delivered goodput ~ (1 - loss) * u*C/4 per session, generous band.
  for (const double r : rates) EXPECT_NEAR(r, 35.6 * 0.98, 6.0);
  EXPECT_GT(stats::jain_index(rates), 0.98);
}

TEST(AbrResilienceTest, SevereLossDegradesButDoesNotDeadlock) {
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  TrunkOptions lossy;
  lossy.loss = 0.3;
  const auto dest = net.add_destination(sw, lossy);
  net.add_session(sw, {}, dest);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(500));
  // Still making progress end to end.
  EXPECT_GT(net.delivered_cells(0), 1'000u);
  EXPECT_GT(net.source(0).brm_cells_received(), 10u);
}

}  // namespace
}  // namespace phantom
