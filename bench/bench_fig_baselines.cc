// Fig. 19-22: the three ATM Forum baselines in Phantom's scenarios.
//
//  * Fig 19-20 (EPRCA): MACR oscillates around the mean CCR; the queue
//    bounces between the congestion thresholds; in the very-congested
//    state every session is beaten down indiscriminately.
//  * Fig 21 (APRC): queue-growth congestion detection reacts earlier,
//    but the 300-cell very-congested threshold is still exceeded in
//    stress scenarios.
//  * Fig 22 (CAPC, on/off scenario of Fig 4): slower convergence than
//    Phantom with a smaller queue during that time — Phantom's larger
//    transient queue "stems from the faster reaction of Phantom".
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Time;

namespace {

const sim::Trace& fair_share_trace(const atm::PortController& ctl) {
  if (const auto* e = dynamic_cast<const baselines::EprcaController*>(&ctl)) {
    return e->macr_trace();
  }
  if (const auto* a = dynamic_cast<const baselines::AprcController*>(&ctl)) {
    return a->macr_trace();
  }
  if (const auto* c = dynamic_cast<const baselines::CapcController*>(&ctl)) {
    return c->ers_trace();
  }
  return dynamic_cast<const core::PhantomController&>(ctl).macr_trace();
}

void greedy_figure(exp::Algorithm alg, const char* fig) {
  sim::Simulator sim;
  AbrBottleneck b{sim, alg, 5};
  exp::QueueSampler queue{sim, b.port()};
  exp::GoodputProbe probe{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  probe.mark();
  sim.run_until(Time::ms(400));

  std::printf("\n--- %s: %s, 5 greedy sessions ---\n", fig,
              exp::to_string(alg).c_str());
  exp::print_series("fair-share estimate (Mb/s)",
                    fair_share_trace(b.port().controller()).samples(), 1e-6,
                    20);
  exp::print_series("queue (cells)", queue.trace().samples(), 1.0, 20);
  const auto rates = probe.rates_mbps();
  double mean = 0;
  for (const double r : rates) mean += r;
  std::printf("goodput/session %.2f Mb/s, Jain %.3f, max queue %zu\n",
              mean / static_cast<double>(rates.size()),
              stats::jain_index(rates), b.port().max_queue_length());
}

struct OnOffOutcome {
  double early_goodput = 0.0;  // Mb/s through the first 30 ms
  std::size_t max_queue = 0;
};

OnOffOutcome onoff_figure(exp::Algorithm alg) {
  sim::Simulator sim;
  AbrBottleneck b{sim, alg, 3};
  exp::GoodputProbe probe{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  topo::OnOffDriver::Options opt;
  opt.on_period = Time::ms(60);
  opt.off_period = Time::ms(60);
  opt.first_toggle = Time::ms(60);
  topo::OnOffDriver driver{sim, b.net.source(2), opt};
  probe.mark();
  sim.run_until(Time::ms(30));
  OnOffOutcome out;
  out.early_goodput = probe.total_mbps();
  sim.run_until(Time::ms(400));
  out.max_queue = b.port().max_queue_length();
  return out;
}

}  // namespace

int main() {
  exp::print_header("Fig 19-22", "EPRCA / APRC / CAPC in Phantom's scenarios");
  greedy_figure(exp::Algorithm::kEprca, "Fig 19-20");
  greedy_figure(exp::Algorithm::kAprc, "Fig 21");
  greedy_figure(exp::Algorithm::kCapc, "Fig 22 (greedy part)");

  std::printf("\n--- Fig 22: CAPC vs Phantom on the Fig 4 on/off scenario ---\n");
  exp::Table table{
      {"algorithm", "goodput in first 30 ms (Mb/s)", "max queue (cells)"}};
  for (const auto alg : {exp::Algorithm::kPhantom, exp::Algorithm::kCapc}) {
    const auto r = onoff_figure(alg);
    table.add_row({exp::to_string(alg), exp::Table::num(r.early_goodput),
                   std::to_string(r.max_queue)});
  }
  table.print();
  std::printf(
      "\nexpected shape: CAPC converges more slowly (lower early goodput)\n"
      "while its queue stays smaller; Phantom's faster reaction costs a\n"
      "larger transient queue — the trade-off the paper reports.\n");
  return 0;
}
