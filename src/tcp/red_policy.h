// Random Early Detection [FJ93] — the classic router baseline the
// paper's Selective RED mechanism builds on.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/random.h"
#include "sim/simulator.h"
#include "tcp/queue_policy.h"

namespace phantom::tcp {

struct RedConfig {
  double weight = 0.002;    ///< w_q: EWMA gain for the average queue
  double min_threshold = 5;    ///< min_th, packets
  double max_threshold = 15;   ///< max_th, packets
  double max_drop_prob = 0.1;  ///< max_p at avg == max_th

  void validate() const {
    if (weight <= 0 || weight > 1)
      throw std::invalid_argument{"weight must be in (0,1]"};
    if (min_threshold < 0 || max_threshold <= min_threshold)
      throw std::invalid_argument{"need 0 <= min_th < max_th"};
    if (max_drop_prob <= 0 || max_drop_prob > 1)
      throw std::invalid_argument{"max_drop_prob must be in (0,1]"};
  }
};

/// Floyd-Jacobson RED with the count-based drop-spreading of the
/// original paper. `eligible()` is a customization point: plain RED
/// treats every packet as eligible; Selective RED (see
/// phantom_policies.h) restricts eligibility to over-rate packets.
class RedPolicy : public QueuePolicy {
 public:
  RedPolicy(sim::Simulator& sim, RedConfig config = {});

  Verdict on_arrival(const Packet& packet, std::size_t queue_len,
                     std::size_t queue_limit) override;

  [[nodiscard]] std::string name() const override { return "red"; }
  [[nodiscard]] double average_queue() const { return avg_; }
  [[nodiscard]] std::uint64_t early_drops() const { return early_drops_; }

 protected:
  /// Whether this packet participates in early dropping.
  [[nodiscard]] virtual bool eligible(const Packet& packet) const {
    (void)packet;
    return true;
  }

 private:
  sim::Simulator* sim_;
  RedConfig config_;
  double avg_ = 0.0;
  std::int64_t count_ = -1;  // packets since last early drop
  std::uint64_t early_drops_ = 0;
};

}  // namespace phantom::tcp
