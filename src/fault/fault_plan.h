// Scriptable fault schedules for resilience experiments.
//
// A FaultPlan is pure data: a list of fault events with absolute
// activation times, built either programmatically (fluent builders) or
// from a compact text spec (`parse`, used by phantom_cli --fault-plan).
// fault::FaultInjector resolves the targets against a topo::AbrNetwork
// and schedules the transitions on the simulator clock.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace phantom::fault {

/// What a fault event acts on. Trunk faults hit both directions of the
/// duplex trunk (data forward, returning RM cells backward); dest
/// faults hit the link feeding the destination endpoint.
struct FaultTarget {
  enum class Kind { kTrunk, kDest, kSession };
  Kind kind = Kind::kTrunk;
  std::size_t index = 0;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] inline FaultTarget trunk(std::size_t i) {
  return {FaultTarget::Kind::kTrunk, i};
}
[[nodiscard]] inline FaultTarget dest(std::size_t i) {
  return {FaultTarget::Kind::kDest, i};
}
[[nodiscard]] inline FaultTarget session(std::size_t i) {
  return {FaultTarget::Kind::kSession, i};
}

/// How a session misbehaves (kMisbehave); mirrors atm::SourceBehavior
/// without coupling the plan grammar to the ATM layer.
enum class MisbehaveMode {
  kGreedy,   ///< ignore ER/CI, transmit at PCR
  kForge,    ///< greedy + forged RM cells (inflated ER, fake BRMs)
  kPartial,  ///< obey ER scaled by a compliance factor
};

[[nodiscard]] std::string to_string(MisbehaveMode m);

struct FaultEvent {
  enum class Kind {
    kOutage,     ///< link drops everything during [at, at + duration)
    kFlap,       ///< `cycles` down/up windows starting at `at`
    kBurst,      ///< Gilbert–Elliott burst loss during [at, at + duration)
    kRmFault,    ///< RM-only drop/corruption during [at, at + duration)
    kRmBlackhole,  ///< backward-RM-only loss during [at, at + duration):
                   ///< the feedback direction goes dark while data and
                   ///< forward RM cells keep flowing — the scenario the
                   ///< source-side Crm/CDF/ADTF decay exists for
    kRestart,    ///< wipe the port controller's learned state at `at`
    kLeave,      ///< deactivate an ABR session at `at`
    kJoin,       ///< (re)activate an ABR session at `at`
    kMisbehave,  ///< session defects from the feedback protocol at `at`
    kComply,     ///< session returns to compliant behaviour at `at`
    kMemSqueeze,  ///< shrink every switch's cell-memory budget to a
                  ///< fraction during [at, at + duration) (network-wide;
                  ///< zero duration = the rest of the run)
    kVcStorm,     ///< offer `storm_sessions` extra session setups at `at`
                  ///< (cloning session 0's shape); admitted storm
                  ///< sessions tear down at `at + duration`
    kCustom,     ///< run an arbitrary callback at `at` (programmatic only)
  };

  Kind kind = Kind::kOutage;
  FaultTarget target;
  sim::Time at;                         ///< absolute activation time
  sim::Time duration = sim::Time::zero();  ///< outage / burst / RM window

  // Flapping.
  sim::Time down_period;
  sim::Time up_period;
  int cycles = 1;

  // Gilbert–Elliott parameters (kBurst).
  double p_good_bad = 0.0;
  double p_bad_good = 0.0;
  double loss_bad = 0.0;

  // RM-targeted fault parameters (kRmFault; kRmBlackhole uses rm_loss
  // for its backward-direction drop probability).
  double rm_loss = 0.0;
  double rm_corrupt = 0.0;

  /// kRestart only: warm restarts rebuild the controller's estimate
  /// from the first window of observed RM traffic (PortController::
  /// warm_restart) instead of cold-booting at the initial constant.
  bool warm = false;

  // Misbehaving-source parameters (kMisbehave).
  MisbehaveMode mode = MisbehaveMode::kGreedy;
  double compliance = 0.0;  ///< kPartial only; always 0 otherwise

  // Resource-exhaustion parameters.
  double mem_frac = 0.0;    ///< kMemSqueeze: remaining budget fraction (0,1]
  int storm_sessions = 0;   ///< kVcStorm: session setups to offer

  /// kCustom hook: arbitrary scripted action (e.g. TCP flow churn, a
  /// demand change) on the same schedule as the built-in faults.
  std::function<void()> action;
  std::string label;  ///< description for kCustom events

  [[nodiscard]] std::string describe() const;

  /// This event in the text grammar (the exact form parse() accepts).
  /// Throws std::logic_error for kCustom: arbitrary callbacks have no
  /// textual form, so shrinker output and CLI replay exclude them.
  [[nodiscard]] std::string to_spec() const;
};

/// Structural equality over every scriptable field. kCustom callbacks
/// are not comparable; two custom events are equal when their times and
/// labels match (the shrinker and the round-trip property test only ever
/// compare fully scriptable plans).
[[nodiscard]] bool operator==(const FaultEvent& a, const FaultEvent& b);
[[nodiscard]] inline bool operator!=(const FaultEvent& a, const FaultEvent& b) {
  return !(a == b);
}

[[nodiscard]] bool operator==(const FaultTarget& a, const FaultTarget& b);

/// An ordered (by construction, not sorted) fault schedule.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& outage(FaultTarget t, sim::Time at, sim::Time duration);
  /// `cycles` repetitions of (down for `down`, up for `up`), first going
  /// down at `at`.
  FaultPlan& flap(FaultTarget t, sim::Time at, int cycles, sim::Time down,
                  sim::Time up);
  FaultPlan& burst(FaultTarget t, sim::Time at, sim::Time duration,
                   double p_good_bad, double p_bad_good, double loss_bad);
  FaultPlan& rm_fault(FaultTarget t, sim::Time at, sim::Time duration,
                      double drop_probability, double corrupt_probability);
  /// Directional feedback loss: backward RM cells returning through `t`
  /// are dropped with `drop_probability` (default: all of them) during
  /// the window; the forward direction is untouched. Recovery is paired
  /// into the event — the window end restores the link.
  FaultPlan& rm_blackhole(FaultTarget t, sim::Time at, sim::Time duration,
                          double drop_probability = 1.0);
  FaultPlan& restart(FaultTarget t, sim::Time at, bool warm = false);
  FaultPlan& leave(std::size_t session_index, sim::Time at);
  FaultPlan& join(std::size_t session_index, sim::Time at);
  /// Session defects at `at`. `compliance` is only meaningful (and only
  /// recorded) for MisbehaveMode::kPartial; it must lie in [0, 1].
  FaultPlan& misbehave(std::size_t session_index, sim::Time at,
                       MisbehaveMode mode, double compliance = 0.0);
  /// Session returns to TM 4.0 behaviour (re-entering at ICR).
  FaultPlan& comply(std::size_t session_index, sim::Time at);
  /// Every switch's effective cell-memory budget drops to `fraction` of
  /// its configured size during [at, at + duration); zero duration means
  /// the squeeze holds for the rest of the run. Requires a network with
  /// overload protection enabled (the injector validates this).
  FaultPlan& memsqueeze(sim::Time at, double fraction,
                        sim::Time duration = sim::Time::zero());
  /// Offers `sessions` extra session setups at `at`, each cloning
  /// session 0's shape and parameters — admission control decides which
  /// get in. Admitted storm sessions start immediately and tear down at
  /// `at + duration` (zero duration = they stay). Requires overload
  /// protection.
  FaultPlan& vcstorm(sim::Time at, int sessions,
                     sim::Time duration = sim::Time::zero());
  FaultPlan& custom(sim::Time at, std::function<void()> action,
                    std::string label = "custom");

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Earliest activation time across all events (zero if empty).
  [[nodiscard]] sim::Time first_fault_time() const;
  /// Latest instant at which any event is still perturbing the network
  /// (end of the last outage/burst/flap window; zero if empty).
  [[nodiscard]] sim::Time last_recovery_time() const;

  /// Parses a compact text spec; throws std::invalid_argument with a
  /// precise message on malformed input. Grammar (events split on ';',
  /// fields on ':', times in ms, targets `trunkN` / `destN`, sessions by
  /// index):
  ///
  ///   outage:<target>:<at_ms>:<dur_ms>
  ///   flap:<target>:<at_ms>:<cycles>:<down_ms>:<up_ms>
  ///   burst:<target>:<at_ms>:<dur_ms>:<p_good_bad>:<p_bad_good>:<loss_bad>
  ///   rmloss:<target>:<at_ms>:<dur_ms>:<drop_p>[:<corrupt_p>]
  ///   rm_blackhole:<target>:<at_ms>:<dur_ms>[:<drop_p>]
  ///   restart:<target>:<at_ms>[:warm|cold]
  ///   leave:<session>:<at_ms>
  ///   join:<session>:<at_ms>
  ///   misbehave:<session>:<at_ms>:<greedy|forge|partial>[:<compliance>]
  ///   comply:<session>:<at_ms>
  ///   memsqueeze:<at_ms>:<frac>[:<dur_ms>]
  ///   vcstorm:<at_ms>:<n>[:<dur_ms>]
  ///
  /// Example: "outage:trunk0:250:50;restart:trunk0:450;leave:1:500"
  ///
  /// Two events of the same kind, at the same instant, on the same
  /// target are rejected as duplicates (the position names the repeat).
  ///
  /// Error messages name the offending token, the event's index and its
  /// character position in the spec, e.g.
  ///   fault plan: bad time 'x' in event 2 ("outage:trunk0:x:50") at
  ///   character 17
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// The whole plan in the text grammar, ';'-separated in event order;
  /// parse(to_spec()) reconstructs the plan exactly (times serialize as
  /// exact decimal milliseconds — integer nanoseconds have at most six
  /// fractional ms digits). Throws std::logic_error if the plan contains
  /// kCustom events.
  [[nodiscard]] std::string to_spec() const;

 private:
  /// Parses one ';'-free grammar item and appends it (parse()'s body;
  /// errors get the event's index/position added by the caller).
  void parse_event(const std::string& item);
};

[[nodiscard]] inline bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.events == b.events;
}
[[nodiscard]] inline bool operator!=(const FaultPlan& a, const FaultPlan& b) {
  return !(a == b);
}

}  // namespace phantom::fault
