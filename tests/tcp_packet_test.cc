#include "tcp/packet.h"

#include <gtest/gtest.h>

namespace phantom::tcp {
namespace {

TEST(PacketTest, DataFactory) {
  const Packet p = Packet::data(3, 1024, 512);
  EXPECT_EQ(p.kind, PacketKind::kData);
  EXPECT_EQ(p.flow, 3);
  EXPECT_EQ(p.seq, 1024);
  EXPECT_EQ(p.payload, 512);
  EXPECT_EQ(p.header, 40);
  EXPECT_FALSE(p.efci);
}

TEST(PacketTest, WireSizeIncludesHeader) {
  const Packet p = Packet::data(1, 0, 512);
  EXPECT_EQ(p.wire_bytes(), 552);
  EXPECT_EQ(p.wire_bits(), 4416);
}

TEST(PacketTest, AckFactory) {
  const Packet a = Packet::make_ack(2, 4096);
  EXPECT_EQ(a.kind, PacketKind::kAck);
  EXPECT_EQ(a.flow, 2);
  EXPECT_EQ(a.ack, 4096);
  EXPECT_EQ(a.payload, 0);
  EXPECT_EQ(a.wire_bytes(), 40);
}

TEST(PacketTest, SourceQuenchFactory) {
  const Packet q = Packet::source_quench(7);
  EXPECT_EQ(q.kind, PacketKind::kSourceQuench);
  EXPECT_EQ(q.flow, 7);
}

}  // namespace
}  // namespace phantom::tcp
