// observe_basics — the paper's convergence scenario (Fig. 1–3: three
// greedy sessions sharing one 150 Mb/s link) with the observability
// layer attached: periodic metric snapshots plus a Chrome trace.
//
//   ./build/examples/observe_basics
//   -> observe_metrics.jsonl   registry snapshots, one JSON object/line
//   -> observe_trace.json      load in https://ui.perfetto.dev
//   -> observe_events.jsonl    the same events, one JSON object each
//
// The identical exports are available from the scenario runner without
// writing any code:
//
//   phantom_cli --scenario=bottleneck --sessions=3 --duration-ms=400
//       --metrics-out=metrics.jsonl --metrics-interval=50
//       --trace-out=trace.json         (one line; wrapped for width)
//
// docs/OPERATIONS.md documents every flag; docs/METRICS.md documents
// every metric id that can appear in the snapshots.
#include <cstdio>
#include <fstream>

#include "exp/factories.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

int main() {
  using namespace phantom;
  using sim::Time;

  sim::Simulator sim{1};
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("bottleneck");
  const auto dest = net.add_destination(sw, {});  // 150 Mb/s controlled link
  for (int i = 0; i < 3; ++i) net.add_session(sw, {}, dest);

  // Tracing: every cell / RM / rate-update event lands in a fixed-size
  // ring (oldest overwritten once full; record() never allocates).
  obs::EventLog events{1 << 16};
  net.attach_event_log(&events);

  // Metrics: each component registers its counters and gauges once;
  // the registry pulls live values whenever a snapshot is taken.
  obs::Registry registry;
  net.register_metrics(registry);

  std::ofstream metrics{"observe_metrics.jsonl"};
  net.start_all(Time::zero(), Time::zero());
  for (int tick = 1; tick <= 8; ++tick) {  // snapshot every 50 ms
    sim.run_until(Time::ms(50 * tick));
    metrics << registry.snapshot_json(sim.now()) << '\n';
  }

  std::ofstream{"observe_trace.json"} << events.to_chrome_trace();
  std::ofstream{"observe_events.jsonl"} << events.to_jsonl();

  // At equilibrium each session converges to ~u*C/(n+1) = 35.6 Mb/s;
  // watch `session*.acr_mbps` do it in the snapshots, or scrub the
  // `rate_update` counter track in the trace.
  std::printf("simulated %.0f ms, %llu events traced (%llu overwritten)\n",
              sim.now().milliseconds(),
              static_cast<unsigned long long>(events.recorded()),
              static_cast<unsigned long long>(events.overwritten()));
  std::printf("%zu metrics -> observe_metrics.jsonl\n", registry.size());
  std::printf("trace      -> observe_trace.json (open in Perfetto)\n");
  std::printf("events     -> observe_events.jsonl\n");
  return 0;
}
