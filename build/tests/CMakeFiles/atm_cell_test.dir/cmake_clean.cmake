file(REMOVE_RECURSE
  "CMakeFiles/atm_cell_test.dir/atm_cell_test.cc.o"
  "CMakeFiles/atm_cell_test.dir/atm_cell_test.cc.o.d"
  "atm_cell_test"
  "atm_cell_test.pdb"
  "atm_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
