// Fig. 7-8 (reconstructed numbering): multi-hop max-min fairness on the
// parking-lot topology — one long session across three controlled links
// plus one local session per hop — and a second, heterogeneous variant
// with a narrow middle link.
//
// Paper shape: measured goodputs match the progressive-filling max-min
// reference (with one phantom session per link); the long session is
// not beaten down.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

void run_case(const char* title, Rate middle_rate) {
  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  topo::TrunkOptions mid;
  mid.rate = middle_rate;
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, mid);
  const auto d_end = net.add_destination(s2, {});
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  const auto d2 = net.add_destination(s2, stub);
  net.add_session(s0, {t01, t12}, d_end);  // long
  net.add_session(s0, {t01}, d1);
  net.add_session(s1, {t12}, d2);
  net.add_session(s2, {}, d_end);

  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  probe.mark();
  sim.run_until(Time::ms(700));
  const auto measured = probe.rates_mbps();
  const auto ideal = net.reference_rates(true, 0.95);

  std::printf("\n%s\n", title);
  exp::Table table{{"session", "measured (Mb/s)", "max-min+phantom (Mb/s)"}};
  const char* names[] = {"long (3 links)", "local 1", "local 2", "local 3"};
  std::vector<double> ideal_mbps;
  for (std::size_t s = 0; s < measured.size(); ++s) {
    ideal_mbps.push_back(ideal[s].mbits_per_sec());
    table.add_row({names[s], exp::Table::num(measured[s]),
                   exp::Table::num(ideal_mbps.back())});
  }
  table.print();
  std::printf("closeness to reference: %.4f\n",
              stats::maxmin_closeness(measured, ideal_mbps));
}

}  // namespace

int main() {
  exp::print_header("Fig 7-8", "parking lot: long session vs per-hop locals");
  run_case("uniform links (3 x 150 Mb/s):", Rate::mbps(150));
  run_case("narrow middle link (150 / 45 / 150 Mb/s):", Rate::mbps(45));
  return 0;
}
