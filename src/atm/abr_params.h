// ABR source/end-system parameters, defaulted to the values the paper
// quotes from ATM Forum TM 4.0 Appendix I [Sat96]:
//   Nrm = 32, AIR*Nrm = 4.25 Mb/s, RDF = 256, PCR = 150 Mb/s, TOF = 2,
//   TCR = 10 cells/s (4.24 Kb/s), ICR = 8.5 Mb/s.
// (The OCR of the paper prints "AIR Nrm = 42:5Mbs"; the paper elsewhere
// requires AIR*Nrm << 30 Mb/s, so we read it as 4.25 Mb/s — see
// DESIGN.md "Substitutions".)
#pragma once

#include <stdexcept>

#include "sim/time.h"

namespace phantom::atm {

struct AbrParams {
  sim::Rate pcr = sim::Rate::mbps(150);   ///< Peak Cell Rate (never exceeded)
  sim::Rate mcr = sim::Rate::zero();      ///< Minimum Cell Rate (guaranteed)
  sim::Rate icr = sim::Rate::mbps(8.5);   ///< Initial Cell Rate
  sim::Rate tcr = sim::Rate::cells_per_sec(10);  ///< Tagged Cell Rate (idle floor)
  /// Additive increase applied per backward RM cell without CI set
  /// (= AIR * Nrm in TM 4.0 terms).
  sim::Rate air_nrm = sim::Rate::mbps(4.25);
  int nrm = 32;        ///< cells per forward RM cell (one FRM in every Nrm)
  double rdf = 256.0;  ///< Rate Decrease Factor: ACR *= (1 - Nrm/RDF) per CI
  double tof = 2.0;    ///< Time-Out Factor for use-it-or-lose-it
  /// Trm: upper bound on the FRM spacing. A source whose ACR is beaten
  /// down sends in-rate RM cells very rarely (one per Nrm cells), which
  /// would stall its own recovery; TM 4.0 therefore emits an
  /// out-of-rate FRM whenever none was sent for Trm [Sat96].
  sim::Time trm = sim::Time::ms(100);

  // --- Feedback-loss self-healing (TM 4.0 source rule 5 + ADTF) ---
  //
  // An ER-controlled source is only as safe as its feedback channel: if
  // backward RM cells stop arriving (link outage, RM blackhole), the
  // last granted rate goes stale and the source would otherwise blast
  // at it for the whole silence. TM 4.0 closes the loop from the source
  // side: count forward RM cells sent since the last backward RM was
  // received, and once `crm` of them are unacknowledged, cut ACR by
  // `cdf` on every further FRM until feedback resumes.

  /// Crm: missing-RM threshold, in forward RM cells. Must exceed the
  /// number of FRMs a healthy path keeps in flight (≈ RTT including
  /// queueing, divided by the FRM spacing) or the decrease fires on
  /// ordinary congestion transients; 32 clears the stock topologies'
  /// worst queueing delay with margin.
  int crm = 32;
  /// CDF: Cutoff Decrease Factor, ACR *= cdf per FRM once crm is
  /// exceeded. The decrease never pushes ACR below max(MCR, min(ACR,
  /// ICR)) — a stale source degrades to its initial rate, not to zero.
  double cdf = 0.5;
  /// ADTF: time-based backstop for sources too beaten down to trip the
  /// Crm counter quickly (their FRM spacing is bounded only by Trm). An
  /// ACR above ICR with no backward RM for this long snaps to ICR.
  /// TM 4.0's default is 500 ms; scaled to this repo's sub-second
  /// horizons the same way Trm is.
  sim::Time adtf = sim::Time::ms(250);
  /// Ablation switch (`phantom_cli --no-feedback-decay`): disables both
  /// the Crm/CDF decrease and the ADTF decay, restoring the pre-self-
  /// healing behaviour of freezing at the stale ACR. The stale-rate
  /// invariant still judges such a source — that is the point of the
  /// ablation.
  bool feedback_decay = true;

  /// AAL5 frame size in cells: data cells are stamped with frame
  /// boundaries so frame-aware discard (EPD/PPD) has something to key
  /// off. 1 (the default) makes every cell its own complete frame,
  /// which is byte-identical to the pre-frame behaviour; the overload
  /// experiments use larger frames so a single dropped cell wastes a
  /// whole frame's worth of link work unless the switch discards
  /// frame-aligned.
  int frame_cells = 1;

  /// Throws std::invalid_argument if the parameter set is inconsistent.
  void validate() const {
    if (pcr.bits_per_sec() <= 0) throw std::invalid_argument{"PCR must be positive"};
    if (mcr.bits_per_sec() < 0) throw std::invalid_argument{"MCR must be >= 0"};
    if (icr > pcr) throw std::invalid_argument{"ICR must not exceed PCR"};
    if (tcr.bits_per_sec() <= 0) throw std::invalid_argument{"TCR must be positive"};
    if (nrm < 2) throw std::invalid_argument{"Nrm must be at least 2"};
    if (rdf <= nrm) throw std::invalid_argument{"RDF must exceed Nrm"};
    if (tof <= 0) throw std::invalid_argument{"TOF must be positive"};
    if (trm <= sim::Time::zero())
      throw std::invalid_argument{"Trm must be positive"};
    if (crm < 1) throw std::invalid_argument{"Crm must be at least 1"};
    if (cdf <= 0.0 || cdf > 1.0)
      throw std::invalid_argument{"CDF must be in (0, 1]"};
    if (adtf <= sim::Time::zero())
      throw std::invalid_argument{"ADTF must be positive"};
    if (frame_cells < 1 || frame_cells > 65535)
      throw std::invalid_argument{"frame_cells must be in [1, 65535]"};
  }
};

}  // namespace phantom::atm
