file(REMOVE_RECURSE
  "CMakeFiles/phantom_exp.dir/factories.cc.o"
  "CMakeFiles/phantom_exp.dir/factories.cc.o.d"
  "CMakeFiles/phantom_exp.dir/probes.cc.o"
  "CMakeFiles/phantom_exp.dir/probes.cc.o.d"
  "CMakeFiles/phantom_exp.dir/report.cc.o"
  "CMakeFiles/phantom_exp.dir/report.cc.o.d"
  "libphantom_exp.a"
  "libphantom_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
