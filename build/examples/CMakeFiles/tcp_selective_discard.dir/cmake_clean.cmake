file(REMOVE_RECURSE
  "CMakeFiles/tcp_selective_discard.dir/tcp_selective_discard.cpp.o"
  "CMakeFiles/tcp_selective_discard.dir/tcp_selective_discard.cpp.o.d"
  "tcp_selective_discard"
  "tcp_selective_discard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_selective_discard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
