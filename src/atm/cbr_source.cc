#include "atm/cbr_source.h"

#include <cassert>
#include <stdexcept>

namespace phantom::atm {

CbrSource::CbrSource(sim::Simulator& sim, int vc, sim::Rate rate,
                     Link to_network)
    : sim_{&sim}, vc_{vc}, rate_{rate}, link_{to_network} {
  if (rate.bits_per_sec() <= 0.0) {
    throw std::invalid_argument{"CBR rate must be positive"};
  }
}

void CbrSource::start(sim::Time at) {
  assert(!started_ && "start() may only be called once");
  started_ = true;
  sim_->schedule_at(at, [this] {
    running_ = true;
    send_next();
  });
}

void CbrSource::send_next() {
  if (!running_) return;
  Cell cell = Cell::data(vc_);
  cell.high_priority = true;  // guaranteed service class
  cell.sent_at = sim_->now();
  link_.deliver(cell);
  ++sent_;
  sim_->schedule(rate_.transmission_time(kCellBits),
                 sim::bind_member<&CbrSource::send_next>(this));
}

}  // namespace phantom::atm
