// Queue policies: DropTail, RED, and the four Phantom mechanisms.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "tcp/phantom_policies.h"
#include "tcp/queue_policy.h"
#include "tcp/red_policy.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

Packet pkt(double cr_mbps, int flow = 1) {
  Packet p = Packet::data(flow, 0, 512);
  p.cr = Rate::mbps(cr_mbps);
  return p;
}

TEST(DropTailTest, AlwaysAccepts) {
  DropTailPolicy p;
  const Verdict v = p.on_arrival(pkt(100), 63, 64);
  EXPECT_FALSE(v.drop);
  EXPECT_FALSE(v.mark_efci);
  EXPECT_FALSE(v.send_quench);
}

TEST(RedTest, ShortQueueNeverDrops) {
  Simulator sim;
  RedPolicy red{sim};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(red.on_arrival(pkt(1), 2, 64).drop);
  }
}

TEST(RedTest, SustainedLongQueueForcesDrops) {
  Simulator sim;
  RedPolicy red{sim};
  int drops = 0;
  for (int i = 0; i < 5000; ++i) {
    drops += red.on_arrival(pkt(1), 30, 64).drop ? 1 : 0;
  }
  EXPECT_GT(drops, 100);
  EXPECT_GT(red.average_queue(), 15.0);
  EXPECT_EQ(red.early_drops(), static_cast<std::uint64_t>(drops));
}

TEST(RedTest, IntermediateQueueDropsProbabilistically) {
  Simulator sim;
  RedPolicy red{sim};
  // Hold the instantaneous queue at 10 (between min=5 and max=15).
  int drops = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    drops += red.on_arrival(pkt(1), 10, 64).drop ? 1 : 0;
  }
  const double rate = static_cast<double>(drops) / n;
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.35);
}

TEST(RedTest, ConfigValidation) {
  Simulator sim;
  RedConfig bad;
  bad.max_threshold = bad.min_threshold;
  EXPECT_THROW((RedPolicy{sim, bad}), std::invalid_argument);
  bad = {};
  bad.weight = 0;
  EXPECT_THROW((RedPolicy{sim, bad}), std::invalid_argument);
}

TEST(RateMeterTest, MacrConvergesOnResidualBandwidth) {
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(1);
  PhantomRateMeter meter{sim, Rate::mbps(10), cfg};
  // Offer a steady 4 Mb/s: 1000 packets of 552 bytes over 1.104 s.
  std::function<void()> feed = [&] {
    Packet p = pkt(4);
    meter.count(p);
    sim.schedule(Rate::mbps(4).transmission_time(p.wire_bits()), feed);
  };
  sim.schedule(Time::zero(), feed);
  sim.run_until(Time::sec(3));
  // MACR -> u*C - offered = 9.5 - 4 = 5.5 Mb/s.
  EXPECT_NEAR(meter.macr().mbits_per_sec(), 5.5, 0.3);
}

TEST(SelectiveDiscardTest, StrictModeDropsOnlyOverRatePackets) {
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(2);
  SelectiveDiscardPolicy p{sim, Rate::mbps(10), 1.1, cfg,
                           DiscardMode::kStrict};
  // threshold = 1.1 * 2 = 2.2 Mb/s; queue (32 of 64) is above the gate.
  EXPECT_FALSE(p.on_arrival(pkt(2.0), 32, 64).drop);
  EXPECT_TRUE(p.on_arrival(pkt(3.0), 32, 64).drop);
  EXPECT_FALSE(p.on_arrival(pkt(0.0), 32, 64).drop);  // unmeasured flows pass
  EXPECT_EQ(p.selective_drops(), 1u);
  EXPECT_EQ(p.name(), "selective-discard");
}

TEST(SelectiveDiscardTest, ShortQueueGatesOffAllSelectiveDrops) {
  // Below the queue gate there is no congestion to avoid: even a
  // grossly over-rate packet is admitted.
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(2);
  SelectiveDiscardPolicy p{sim, Rate::mbps(10), 1.1, cfg,
                           DiscardMode::kStrict};
  EXPECT_FALSE(p.on_arrival(pkt(9.0), 0, 64).drop);
  EXPECT_FALSE(p.on_arrival(pkt(9.0), 15, 64).drop);  // 15 < 0.25*64
  EXPECT_TRUE(p.on_arrival(pkt(9.0), 16, 64).drop);
}

TEST(SelectiveDiscardTest, PolicingDropsAreProbabilisticAndCapped) {
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(2);
  SelectiveDiscardPolicy p{sim, Rate::mbps(10), 1.1, cfg,
                           DiscardMode::kPolice};
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    drops += p.on_arrival(pkt(100.0), 32, 64).drop ? 1 : 0;
  }
  // CR >> threshold: drop probability saturates at the cap.
  EXPECT_NEAR(static_cast<double>(drops) / n, kMaxPoliceDropProbability,
              0.02);
  // Under-rate packets are never dropped.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(p.on_arrival(pkt(1.0), 32, 64).drop);
  }
}

TEST(SelectiveDiscardTest, FairShareExposesMacr) {
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(2);
  SelectiveDiscardPolicy p{sim, Rate::mbps(10), 1.1, cfg};
  EXPECT_DOUBLE_EQ(p.fair_share().mbits_per_sec(), 2.0);
}

TEST(SelectiveRedTest, OnlyOverRatePacketsEligibleForEarlyDrop) {
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(2);
  SelectiveRedPolicy p{sim, Rate::mbps(10), 1.1, cfg};
  int drops_under = 0, drops_over = 0;
  for (int i = 0; i < 3000; ++i) {
    drops_under += p.on_arrival(pkt(1.0), 30, 64).drop ? 1 : 0;
    drops_over += p.on_arrival(pkt(5.0), 30, 64).drop ? 1 : 0;
  }
  EXPECT_EQ(drops_under, 0);
  EXPECT_GT(drops_over, 100);
}

TEST(SelectiveQuenchTest, QuenchesOverRateFlowsRateLimited) {
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(2);
  SelectiveQuenchPolicy p{sim, Rate::mbps(10), 1.1, Time::ms(1), cfg};
  const Verdict v1 = p.on_arrival(pkt(5.0), 0, 64);
  EXPECT_TRUE(v1.send_quench);
  EXPECT_FALSE(v1.drop);  // packet itself is kept
  // Immediately after: rate limit suppresses the second quench.
  const Verdict v2 = p.on_arrival(pkt(5.0), 0, 64);
  EXPECT_FALSE(v2.send_quench);
  sim.run_until(Time::ms(2));
  EXPECT_TRUE(p.on_arrival(pkt(5.0), 0, 64).send_quench);
  EXPECT_EQ(p.quenches_sent(), 2u);
  // Under-rate flows never quenched.
  sim.run_until(Time::ms(4));
  EXPECT_FALSE(p.on_arrival(pkt(1.0), 0, 64).send_quench);
}

TEST(EfciMarkTest, MarksOverRatePackets) {
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.initial_macr = Rate::mbps(2);
  EfciMarkPolicy p{sim, Rate::mbps(10), 1.0, cfg};
  EXPECT_TRUE(p.on_arrival(pkt(3.0), 0, 64).mark_efci);
  EXPECT_FALSE(p.on_arrival(pkt(1.0), 0, 64).mark_efci);
  EXPECT_FALSE(p.on_arrival(pkt(3.0), 0, 64).drop);
  EXPECT_EQ(p.marks(), 2u);
}

TEST(PhantomPoliciesTest, RejectNonPositiveFactor) {
  Simulator sim;
  EXPECT_THROW((SelectiveDiscardPolicy{sim, Rate::mbps(10), 0.0}),
               std::invalid_argument);
  EXPECT_THROW((EfciMarkPolicy{sim, Rate::mbps(10), -1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace phantom::tcp
