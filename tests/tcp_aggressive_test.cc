// The non-compliant TCP sender: unit behaviour of the ignored signals,
// and what the network-side mechanisms can (and cannot) do about a
// flow that refuses to back off.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "stats/fairness.h"
#include "tcp/aggressive.h"
#include "tcp/phantom_policies.h"
#include "tcp/tcp_network.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

/// An AggressiveSource on a bench, fed handcrafted packets.
struct Bench {
  Simulator sim;
  std::vector<Packet> sent;
  AggressiveSource src{sim, 0, RenoConfig{},
                       [this](Packet p) { sent.push_back(p); }};

  void start() {
    src.start(Time::zero());
    sim.run_until(Time::us(1));
  }
  void ack(std::int64_t bytes, bool efci = false) {
    Packet a = Packet::make_ack(0, bytes);
    a.ack_efci = efci;
    a.timestamp = sim.now() - Time::ms(1);
    src.receive_packet(a);
  }
};

TEST(AggressiveSourceTest, IgnoresSourceQuench) {
  Bench b;
  b.start();
  b.ack(512);  // grow a little first
  const double before = b.src.cwnd_bytes();
  b.src.receive_packet(Packet::source_quench(0));
  EXPECT_EQ(b.src.quenches_received(), 1u);  // counted...
  EXPECT_DOUBLE_EQ(b.src.cwnd_bytes(), before);  // ...but not obeyed
}

TEST(AggressiveSourceTest, IgnoresEchoedEfci) {
  Bench b;
  b.start();
  const double before = b.src.cwnd_bytes();
  b.ack(512, /*efci=*/true);
  // A compliant Reno sender would suppress growth on an EFCI-marked
  // ACK; the aggressive one grows anyway.
  EXPECT_GT(b.src.cwnd_bytes(), before);
}

TEST(AggressiveSourceTest, FastRetransmitKeepsTheWindow) {
  Bench b;
  b.start();
  for (int i = 1; i <= 8; ++i) b.ack(512 * i);
  const double before = b.src.cwnd_bytes();
  const auto sent_before = b.sent.size();
  for (int i = 0; i < 3; ++i) b.ack(512 * 8);  // three dup ACKs
  EXPECT_GT(b.sent.size(), sent_before);         // it did retransmit
  EXPECT_EQ(b.src.fast_retransmits(), 1u);
  EXPECT_GE(b.src.cwnd_bytes(), before);         // but never deflated
  // Recovery exit changes nothing either.
  b.ack(512 * 9);
  EXPECT_GE(b.src.cwnd_bytes(), before);
}

/// Shared bottleneck: 3 Reno flows + 1 aggressive flow, 10 Mb/s link.
std::vector<double> run_mixed(PolicyFactory policy) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions opts;
  opts.queue_limit = 60;
  opts.policy = std::move(policy);
  const auto s = net.add_sink_node(r, opts);
  for (int i = 0; i < 3; ++i) {
    net.add_flow(r, {}, s, RenoConfig{}, Rate::mbps(100), Time::ms(6));
  }
  FlowOptions aggressive;
  aggressive.kind = SenderKind::kAggressive;
  aggressive.access_delay = Time::ms(6);
  net.add_flow(r, {}, s, aggressive);
  net.start_all(Time::zero(), Time::ms(73));

  const Time settle = Time::sec(3), horizon = Time::sec(12);
  sim.run_until(settle);
  std::vector<std::int64_t> base;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    base.push_back(net.delivered_bytes(f));
  }
  sim.run_until(horizon);
  std::vector<double> mbps;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    mbps.push_back(static_cast<double>(net.delivered_bytes(f) - base[f]) *
                   8.0 / (horizon - settle).seconds() / 1e6);
  }
  return mbps;
}

TEST(AggressiveSourceTest, GrabsMoreThanItsShareUnderDropTail) {
  const auto mbps = run_mixed(nullptr);
  const double reno_mean = (mbps[0] + mbps[1] + mbps[2]) / 3.0;
  // Only RTOs slow it down, so it beats the compliant flows decisively.
  EXPECT_GT(mbps[3], 1.5 * reno_mean);
}

TEST(AggressiveSourceTest, SelectiveDiscardContainsIt) {
  const auto droptail = run_mixed(nullptr);
  const auto discard = run_mixed([](Simulator& sim, Rate rate) {
    return std::make_unique<SelectiveDiscardPolicy>(sim, rate, 10.0);
  });
  // Enforcement in the data path is the one lever that works against a
  // sender that ignores every congestion signal: selective discard
  // takes losses out of the aggressive flow specifically, so the
  // compliant flows keep a larger piece than under drop-tail...
  const double reno_droptail = (droptail[0] + droptail[1] + droptail[2]) / 3.0;
  const double reno_discard = (discard[0] + discard[1] + discard[2]) / 3.0;
  EXPECT_GT(reno_discard, reno_droptail);
  // ...and the fairness of the whole mix improves.
  EXPECT_GT(stats::jain_index(discard), stats::jain_index(droptail));
}

}  // namespace
}  // namespace phantom::tcp
