file(REMOVE_RECURSE
  "CMakeFiles/phantom_topo.dir/abr_network.cc.o"
  "CMakeFiles/phantom_topo.dir/abr_network.cc.o.d"
  "libphantom_topo.a"
  "libphantom_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
