// §5 summary table: Phantom vs EPRCA vs APRC vs CAPC, head to head on
// the single-bottleneck scenario — goodput, fairness, convergence speed
// (early goodput), queue behaviour, and beat-down resistance on the
// parking lot.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

double beatdown_ratio(exp::Algorithm alg) {
  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(alg)};
  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, {});
  const auto d_end = net.add_destination(s2, {});
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  const auto d2 = net.add_destination(s2, stub);
  net.add_session(s0, {t01, t12}, d_end);  // long
  net.add_session(s0, {t01}, d1);
  net.add_session(s1, {t12}, d2);
  net.add_session(s2, {}, d_end);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  exp::GoodputProbe probe{sim, net};
  probe.mark();
  sim.run_until(Time::ms(700));
  const auto r = probe.rates_mbps();
  const double locals = (r[1] + r[2] + r[3]) / 3.0;
  return r[0] / locals;
}

}  // namespace

int main() {
  exp::print_header("Table (§5 summary)",
                    "all four algorithms, 5 greedy sessions @ 150 Mb/s");
  exp::Table table{{"algorithm", "state", "goodput/session", "Jain",
                    "early goodput", "max queue", "steady queue",
                    "delay p99 (ms)", "long/local (parking lot)"}};

  for (const auto alg : {exp::Algorithm::kPhantom, exp::Algorithm::kEprca,
                         exp::Algorithm::kAprc, exp::Algorithm::kCapc,
                         exp::Algorithm::kErica}) {
    sim::Simulator sim;
    AbrBottleneck b{sim, alg, 5};
    exp::GoodputProbe probe{sim, b.net};
    b.net.start_all(Time::zero(), Time::zero());
    probe.mark();
    sim.run_until(Time::ms(30));
    const double early = probe.total_mbps();
    sim.run_until(Time::ms(400));
    probe.mark();
    sim.run_until(Time::ms(600));
    const auto rates = probe.rates_mbps();
    double mean = 0;
    for (const double r : rates) mean += r;
    mean /= static_cast<double>(rates.size());

    const bool per_vc = alg == exp::Algorithm::kErica;
    table.add_row({exp::to_string(alg), per_vc ? "O(VCs)" : "O(1)",
                   exp::Table::num(mean),
                   exp::Table::num(stats::jain_index(rates), 3),
                   exp::Table::num(early),
                   std::to_string(b.port().max_queue_length()),
                   std::to_string(b.port().queue_length()),
                   exp::Table::num(
                       b.net.destination(b.dest).delay_histogram().quantile(0.99),
                       3),
                   exp::Table::num(beatdown_ratio(alg), 2)});
  }
  table.print();
  std::printf(
      "\nreading guide: Phantom = fair, fast, drained queue, no beat-down\n"
      "(long/local ~1). EPRCA/APRC = standing queues, beat-down < 1.\n"
      "CAPC = small queue but slow start-up (low early goodput). ERICA\n"
      "buys the exact fair share (u*C/n, no phantom penalty) with per-VC\n"
      "state — the space/precision trade-off the paper's classification\n"
      "of algorithms describes.\n");
  return 0;
}
