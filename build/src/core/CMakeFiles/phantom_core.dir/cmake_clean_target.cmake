file(REMOVE_RECURSE
  "libphantom_core.a"
)
