// Scale / soak tests: many sessions, long horizons, mixed traffic.
#include <gtest/gtest.h>

#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"
#include "topo/workload.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;

TEST(ScaleTest, FiftySessionsShareOneLink) {
  // The constant-space claim only matters if the algorithm actually
  // scales. At n = 50 the default AIR (4.25 Mb/s per RM) exceeds the
  // fair share (2.8 Mb/s), so the paper's own provision applies:
  // AIR*Nrm must be small relative to the shares (its "much smaller
  // than 30 Mb/s" note, scaled). With AIR = 0.5 Mb/s the allocation is
  // near-exact and drop-free.
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  atm::AbrParams params;
  params.air_nrm = Rate::mbps(0.5);
  for (int i = 0; i < 50; ++i) net.add_session(sw, {}, dest, params);
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::ms(1));
  sim.run_until(Time::ms(1000));
  probe.mark();
  sim.run_until(Time::ms(1400));
  const auto rates = probe.rates_mbps();
  const double ideal = 0.95 * 150 / 51;
  EXPECT_GT(stats::jain_index(rates), 0.99);
  double total = 0;
  for (const double r : rates) total += r;
  EXPECT_GT(total, 0.7 * ideal * 50);
  EXPECT_LE(total, 142.5);
  EXPECT_EQ(net.dest_port(dest).cells_dropped(), 0u);
}

TEST(ScaleTest, FiftySessionsWithMatchedFloor) {
  // With the relative MACR floor raised to 2% (just below the n = 50
  // share) the allocation is essentially perfect even with the default
  // coarse AIR — the knob a deployment sized for many VCs would turn.
  Simulator sim;
  core::PhantomConfig cfg;
  cfg.min_macr_fraction = 0.02;
  AbrNetwork net{sim, exp::make_phantom_factory(cfg)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 50; ++i) net.add_session(sw, {}, dest);
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::ms(1));
  sim.run_until(Time::ms(1000));
  probe.mark();
  sim.run_until(Time::ms(1400));
  const auto rates = probe.rates_mbps();
  EXPECT_GT(stats::jain_index(rates), 0.995);
  double total = 0;
  for (const double r : rates) total += r;
  EXPECT_NEAR(total, 0.95 * 150 * 50 / 51, 0.05 * 142.5);
  EXPECT_EQ(net.dest_port(dest).cells_dropped(), 0u);
}

TEST(ScaleTest, ChurnSoakSessionsComeAndGo) {
  // 12 sessions with staggered on/off phases churning for 1.5 s: no
  // drops explosion, no starvation, controller stays sane.
  Simulator sim{7};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 12; ++i) net.add_session(sw, {}, dest);
  net.start_all(Time::zero(), Time::ms(5));
  std::vector<std::unique_ptr<topo::OnOffDriver>> drivers;
  for (int i = 0; i < 12; ++i) {
    topo::OnOffDriver::Options opt;
    opt.on_period = Time::ms(40);
    opt.off_period = Time::ms(25);
    opt.first_toggle = Time::ms(40 + 7 * i);
    opt.exponential = true;
    drivers.push_back(std::make_unique<topo::OnOffDriver>(
        sim, net.source(static_cast<std::size_t>(i)), opt));
  }
  sim.run_until(Time::ms(1500));
  const auto& port = net.dest_port(dest);
  const auto& ctl = port.controller();
  EXPECT_GT(ctl.fair_share().bits_per_sec(), 0.0);
  EXPECT_LE(ctl.fair_share().mbits_per_sec(), 0.95 * 150 + 1e-6);
  // Offered load is feedback-controlled: drops, if any, are rare.
  EXPECT_LT(port.cells_dropped(), port.cells_accepted() / 100 + 10);
  // Every session made progress.
  for (std::size_t s = 0; s < net.num_sessions(); ++s) {
    EXPECT_GT(net.delivered_cells(s), 100u) << "session " << s;
  }
}

TEST(ScaleTest, LongChainOfSwitches) {
  // 6 switches in a row; one session end to end plus locals: the BRM
  // gauntlet (feedback from 6 controllers) still produces the max-min
  // allocation.
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  std::vector<AbrNetwork::SwitchId> sw;
  for (int i = 0; i < 6; ++i) sw.push_back(net.add_switch("s"));
  std::vector<AbrNetwork::TrunkId> trunks;
  for (int i = 0; i < 5; ++i) {
    trunks.push_back(net.add_trunk(sw[static_cast<std::size_t>(i)],
                                   sw[static_cast<std::size_t>(i + 1)], {}));
  }
  const auto d_end = net.add_destination(sw.back(), {});
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  net.add_session(sw[0], trunks, d_end);  // the 6-hop session
  for (int i = 0; i < 5; ++i) {
    const auto d = net.add_destination(sw[static_cast<std::size_t>(i + 1)], stub);
    net.add_session(sw[static_cast<std::size_t>(i)],
                    {trunks[static_cast<std::size_t>(i)]}, d);
  }
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(500));
  probe.mark();
  sim.run_until(Time::ms(800));
  const auto rates = probe.rates_mbps();
  const auto ideal = net.reference_rates(true, 0.95);
  std::vector<double> ideal_mbps;
  for (const auto& r : ideal) ideal_mbps.push_back(r.mbits_per_sec());
  EXPECT_GT(stats::maxmin_closeness(rates, ideal_mbps), 0.9);
}

TEST(ScaleTest, DeterministicAcrossRuns) {
  // Same seed, same topology: bit-for-bit identical delivered counts.
  auto run = [] {
    Simulator sim{42};
    AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
    const auto sw = net.add_switch("sw");
    const auto dest = net.add_destination(sw, {});
    for (int i = 0; i < 5; ++i) net.add_session(sw, {}, dest);
    net.start_all(Time::zero(), Time::ms(3));
    sim.run_until(Time::ms(200));
    std::vector<std::uint64_t> out;
    for (std::size_t s = 0; s < net.num_sessions(); ++s) {
      out.push_back(net.delivered_cells(s));
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace phantom
