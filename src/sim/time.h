// Simulation time and data-rate value types.
//
// Time is an integer count of nanoseconds. Integer time keeps event
// ordering exact and simulations bit-for-bit reproducible; nanosecond
// resolution is ~350x finer than one ATM cell time on a 150 Mb/s link,
// so quantization error is negligible for every model in this library.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace phantom::sim {

/// A point in (or span of) simulation time, in integer nanoseconds.
///
/// The same type serves as instant and duration (like ns-3's Time);
/// arithmetic is closed and exact. Construct via the named factories:
///
///     Time t = Time::ms(3) + Time::us(250);
///     double s = t.seconds();   // 0.00325
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  [[nodiscard]] static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  [[nodiscard]] static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }

  /// Converts a floating-point second count, rounding to the nearest ns.
  [[nodiscard]] static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr double microseconds() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double milliseconds() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(Time a, int k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(int k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(Time a, double k) {
    return from_seconds(a.seconds() * k);
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  /// Ratio of two spans, e.g. elapsed / interval.
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

  friend constexpr auto operator<=>(Time, Time) = default;

  /// Human-readable rendering with an auto-selected unit ("3.25ms").
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

/// A data rate in bits per second.
///
/// Stored as a double: rates are measured/filtered quantities, never used
/// for event ordering, so floating point is appropriate. Conversions to
/// and from ATM cells (424 bits = 53 bytes on the wire) are provided
/// because the paper quotes most rates in cells/s or Mb/s.
class Rate {
 public:
  static constexpr double kBitsPerCell = 424.0;  // 53-byte ATM cell

  constexpr Rate() = default;

  [[nodiscard]] static constexpr Rate bps(double v) { return Rate{v}; }
  [[nodiscard]] static constexpr Rate kbps(double v) { return Rate{v * 1e3}; }
  [[nodiscard]] static constexpr Rate mbps(double v) { return Rate{v * 1e6}; }
  [[nodiscard]] static constexpr Rate cells_per_sec(double v) {
    return Rate{v * kBitsPerCell};
  }
  [[nodiscard]] static constexpr Rate zero() { return Rate{0}; }

  [[nodiscard]] constexpr double bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double mbits_per_sec() const { return bps_ / 1e6; }
  [[nodiscard]] constexpr double cells_per_second() const { return bps_ / kBitsPerCell; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_ / 8.0; }

  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0.0; }

  /// Time to serialize `bits` at this rate. Requires a positive rate.
  [[nodiscard]] Time transmission_time(std::int64_t bits) const {
    assert(bps_ > 0.0);
    return Time::from_seconds(static_cast<double>(bits) / bps_);
  }

  friend constexpr Rate operator+(Rate a, Rate b) { return Rate{a.bps_ + b.bps_}; }
  friend constexpr Rate operator-(Rate a, Rate b) { return Rate{a.bps_ - b.bps_}; }
  friend constexpr Rate operator*(Rate a, double k) { return Rate{a.bps_ * k}; }
  friend constexpr Rate operator*(double k, Rate a) { return Rate{a.bps_ * k}; }
  friend constexpr Rate operator/(Rate a, double k) { return Rate{a.bps_ / k}; }
  friend constexpr double operator/(Rate a, Rate b) { return a.bps_ / b.bps_; }
  constexpr Rate& operator+=(Rate o) { bps_ += o.bps_; return *this; }
  constexpr Rate& operator-=(Rate o) { bps_ -= o.bps_; return *this; }

  friend constexpr auto operator<=>(Rate, Rate) = default;

  /// Bits transferred in `span` at this rate.
  [[nodiscard]] constexpr double bits_in(Time span) const { return bps_ * span.seconds(); }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Rate(double v) : bps_{v} {}
  double bps_ = 0.0;
};

}  // namespace phantom::sim
