#include "stats/series.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace phantom::stats {

using sim::Sample;
using sim::Time;

Summary summarize(std::span<const Sample> samples, Time t0, Time t1) {
  Summary s;
  double sum = 0.0, sum_sq = 0.0;
  for (const Sample& x : samples) {
    if (x.time < t0 || x.time > t1) continue;
    if (s.count == 0) {
      s.min = s.max = x.value;
    } else {
      s.min = std::min(s.min, x.value);
      s.max = std::max(s.max, x.value);
    }
    sum += x.value;
    sum_sq += x.value * x.value;
    ++s.count;
  }
  if (s.count > 0) {
    const auto n = static_cast<double>(s.count);
    s.mean = sum / n;
    const double var = std::max(0.0, sum_sq / n - s.mean * s.mean);
    s.stddev = std::sqrt(var);
  }
  return s;
}

Summary summarize(std::span<const Sample> samples) {
  return summarize(samples, Time::zero(), Time::max());
}

double value_at(std::span<const Sample> samples, Time t, double fallback) {
  // Samples are recorded in nondecreasing time order; binary search for
  // the last one at or before t.
  const auto it = std::upper_bound(
      samples.begin(), samples.end(), t,
      [](Time lhs, const Sample& rhs) { return lhs < rhs.time; });
  if (it == samples.begin()) return fallback;
  return std::prev(it)->value;
}

double time_average(std::span<const Sample> samples, Time t0, Time t1) {
  assert(t1 > t0);
  double integral = 0.0;
  double current = value_at(samples, t0);
  Time cursor = t0;
  for (const Sample& x : samples) {
    if (x.time <= t0) continue;
    if (x.time >= t1) break;
    integral += current * (x.time - cursor).seconds();
    current = x.value;
    cursor = x.time;
  }
  integral += current * (t1 - cursor).seconds();
  return integral / (t1 - t0).seconds();
}

Time convergence_time(std::span<const Sample> samples, double target,
                      double tolerance_frac, Time min_hold) {
  assert(tolerance_frac >= 0.0);
  const double tol = std::abs(target) * tolerance_frac;
  // Scan backwards for the last sample outside the band; convergence is
  // just after it.
  std::size_t first_inside = samples.size();
  for (std::size_t i = samples.size(); i-- > 0;) {
    if (std::abs(samples[i].value - target) > tol) break;
    first_inside = i;
  }
  if (first_inside == samples.size()) return Time::max();
  const Time settled = samples[first_inside].time;
  const Time end = samples.back().time;
  if (end - settled < min_hold) return Time::max();
  return settled;
}

}  // namespace phantom::stats
