// Output-queued switch port: FIFO buffer + transmitter + controller.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "atm/buffer_manager.h"
#include "atm/cell.h"
#include "atm/link.h"
#include "atm/port_controller.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace phantom::atm {

/// How an output port schedules its buffered cells.
enum class QueueDiscipline {
  kFifo,            ///< single FIFO (default)
  kStrictPriority,  ///< high_priority cells (CBR/VBR) always go first
};

/// One output port of a switch: a bounded cell queue drained at the
/// link rate, with an attached flow-control algorithm.
///
/// The port notifies its controller of accepted / dropped / transmitted
/// cells (the raw material for rate measurement) and lets the controller
/// mark EFCI on queued data cells. Backward-RM processing is *not* done
/// here — the owning Switch routes BRM cells to the controller of the
/// VC's forward port (see Switch::receive_cell).
class OutputPort {
 public:
  /// `rate` is the link's cell rate; `queue_limit` is in cells; `link`
  /// carries transmitted cells to the next hop.
  OutputPort(sim::Simulator& sim, sim::Rate rate, std::size_t queue_limit,
             Link link, std::unique_ptr<PortController> controller,
             QueueDiscipline discipline = QueueDiscipline::kFifo);

  OutputPort(const OutputPort&) = delete;
  OutputPort& operator=(const OutputPort&) = delete;

  /// Enqueues (or drops) a cell for transmission.
  void send(Cell cell);

  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() + priority_queue_.size();
  }
  [[nodiscard]] std::size_t max_queue_length() const { return max_queue_; }
  [[nodiscard]] std::uint64_t cells_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t cells_transmitted() const { return transmitted_; }
  [[nodiscard]] std::uint64_t cells_accepted() const { return accepted_; }
  [[nodiscard]] sim::Rate rate() const { return rate_; }
  [[nodiscard]] std::size_t queue_limit() const { return queue_limit_; }

  /// Partial buffer sharing: once the queue holds at least `threshold`
  /// cells, CLP-tagged (policer-marked) arrivals are dropped instead of
  /// queued, so a tag-mode policer costs violators buffer space under
  /// pressure while untagged traffic still gets the full queue_limit.
  /// Default SIZE_MAX = tagged cells are treated like any other.
  void set_clp_threshold(std::size_t threshold) { clp_threshold_ = threshold; }
  [[nodiscard]] std::size_t clp_threshold() const { return clp_threshold_; }
  /// CLP-tagged cells dropped by the partial-buffer-sharing threshold
  /// (a subset of cells_dropped()).
  [[nodiscard]] std::uint64_t clp_cells_dropped() const { return clp_dropped_; }

  /// The link this port transmits onto — the fault subsystem drives
  /// outages/loss through its shared state, and the invariant monitor
  /// reads its aggregate counters.
  [[nodiscard]] Link& link() { return link_; }
  [[nodiscard]] const Link& link() const { return link_; }

  /// Never null; NullController when the port runs no flow control.
  [[nodiscard]] PortController& controller() { return *controller_; }
  [[nodiscard]] const PortController& controller() const { return *controller_; }

  /// Joins the owning switch's bounded cell memory: every enqueue must
  /// clear the BufferManager's admission (frame-aware EPD/PPD, dynamic
  /// thresholds, hard budget) and every transmission returns its cell.
  /// `bm` must outlive the port; `port_id` is the id register_port()
  /// returned. Attach before traffic flows — cells already queued are
  /// unknown to the manager.
  void attach_buffer_manager(BufferManager* bm, int port_id) {
    assert(queue_length() == 0 && "attach before any cell is queued");
    buffer_mgr_ = bm;
    bm_port_id_ = port_id;
  }
  [[nodiscard]] bool buffer_managed() const { return buffer_mgr_ != nullptr; }

  /// Attaches the structured event log: every enqueue and every drop
  /// (with its reason) is recorded, and the controller's rate updates
  /// ride along. `node`/`port` identify this port in the trace.
  void set_event_log(obs::EventLog* log, int node, int port) {
    event_log_ = log;
    obs_node_ = static_cast<std::int16_t>(node);
    obs_port_ = static_cast<std::int16_t>(port);
    controller_->set_event_log(log, node, port);
  }

  /// Registers this port's counters, queue gauges, the queue-depth
  /// histogram (sampled at each accepted cell from registration on),
  /// and the controller's metrics, all under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix);

 private:
  void start_transmission();
  void on_transmission_complete();

  void record_cell_event(obs::EventKind kind, const Cell& cell,
                         std::uint8_t detail) {
    if constexpr (obs::kObsEnabled) {
      if (event_log_ != nullptr) {
        obs::Event e;
        e.time = sim_->now();
        e.kind = kind;
        e.detail = detail;
        e.node = obs_node_;
        e.port = obs_port_;
        e.vc = cell.vc;
        e.a = static_cast<double>(queue_length());
        event_log_->record(e);
      }
    } else {
      (void)kind;
      (void)cell;
      (void)detail;
    }
  }

  sim::Simulator* sim_;
  sim::Rate rate_;
  std::size_t queue_limit_;
  Link link_;
  std::unique_ptr<PortController> controller_;

  QueueDiscipline discipline_;
  std::deque<Cell> queue_;           // best-effort (ABR) cells
  std::deque<Cell> priority_queue_;  // guaranteed-class cells
  std::deque<Cell>* serving_ = nullptr;  // queue of the cell on the wire
  bool transmitting_ = false;
  std::size_t max_queue_ = 0;
  BufferManager* buffer_mgr_ = nullptr;  // switch-wide memory, if bounded
  int bm_port_id_ = -1;
  std::size_t clp_threshold_ = SIZE_MAX;
  std::uint64_t clp_dropped_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t transmitted_ = 0;
  std::uint64_t accepted_ = 0;
  obs::EventLog* event_log_ = nullptr;
  std::int16_t obs_node_ = -1;
  std::int16_t obs_port_ = -1;
  /// Queue depth at each accepted cell; allocated (and sampled) only
  /// once register_metrics has run, so unobserved ports pay nothing.
  std::unique_ptr<obs::Histogram> queue_hist_;
};

}  // namespace phantom::atm
