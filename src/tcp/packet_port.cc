#include "tcp/packet_port.h"

#include <cassert>

namespace phantom::tcp {

PacketPort::PacketPort(sim::Simulator& sim, sim::Rate rate,
                       std::size_t queue_limit, PacketLink link,
                       std::unique_ptr<QueuePolicy> policy)
    : sim_{&sim},
      rate_{rate},
      queue_limit_{queue_limit},
      link_{link},
      policy_{std::move(policy)} {
  assert(rate.bits_per_sec() > 0.0);
  assert(queue_limit_ > 0);
  if (!policy_) policy_ = std::make_unique<DropTailPolicy>();
}

void PacketPort::send(Packet packet) {
  if (packet.kind == PacketKind::kData) {
    const Verdict v =
        policy_->on_arrival(packet, queue_.size(), queue_limit_);
    if (v.send_quench && quench_tap_) quench_tap_(packet);
    if (v.drop) {
      ++dropped_;
      return;
    }
    if (v.mark_efci) packet.efci = true;
  }
  if (queue_.size() >= queue_limit_) {
    ++dropped_;
    policy_->on_overflow(packet);
    return;
  }
  queue_.push_back(packet);
  max_queue_ = std::max(max_queue_, queue_.size());
  if (!transmitting_) start_transmission();
}

void PacketPort::start_transmission() {
  assert(!queue_.empty());
  transmitting_ = true;
  sim_->schedule(rate_.transmission_time(queue_.front().wire_bits()),
                 sim::bind_member<&PacketPort::on_transmission_complete>(this));
}

void PacketPort::on_transmission_complete() {
  assert(!queue_.empty());
  const Packet packet = queue_.front();
  queue_.pop_front();
  ++transmitted_;
  link_.deliver(packet);
  if (!queue_.empty()) {
    start_transmission();
  } else {
    transmitting_ = false;
  }
}

}  // namespace phantom::tcp
