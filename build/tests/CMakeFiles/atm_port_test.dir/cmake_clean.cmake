file(REMOVE_RECURSE
  "CMakeFiles/atm_port_test.dir/atm_port_test.cc.o"
  "CMakeFiles/atm_port_test.dir/atm_port_test.cc.o.d"
  "atm_port_test"
  "atm_port_test.pdb"
  "atm_port_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
