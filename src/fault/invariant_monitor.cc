#include "fault/invariant_monitor.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "atm/cell.h"
#include "stats/fairness.h"

namespace phantom::fault {

InvariantMonitor::InvariantMonitor(sim::Simulator& sim, topo::AbrNetwork& net,
                                   sim::Time period)
    : sim_{&sim}, net_{&net}, period_{period}, last_check_{sim.now()} {
  if (period_ <= sim::Time::zero()) {
    throw std::invalid_argument{"InvariantMonitor: period must be positive"};
  }
  sim_->schedule(period_, [this] { tick(); });
}

void InvariantMonitor::tick() {
  check_now();
  sim_->schedule(period_, [this] { tick(); });
}

void InvariantMonitor::check_now() {
  ++checks_;
  check_time_monotonic();
  check_conservation();
  check_queue_bounds();
  check_rate_bounds();
  check_stale_rate();
  check_fair_share();
  check_buffer_budget();
  check_refusal_monotone();
  check_mcr_retention();
  last_check_ = sim_->now();
}

void InvariantMonitor::enable_fair_share_check(FairShareOptions options) {
  fs_options_ = std::move(options);
  if (fs_options_.sessions.empty()) {
    for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
      fs_options_.sessions.push_back(s);
    }
  }
  fs_prev_delivered_.clear();
  for (const std::size_t s : fs_options_.sessions) {
    fs_prev_delivered_.push_back(net_->delivered_cells(s));
  }
  fs_last_sample_ = sim_->now();
  fs_enabled_ = true;
}

void InvariantMonitor::add(const char* invariant, std::string detail) {
  InvariantViolation v{sim_->now(), invariant, std::move(detail), {}};
  if (event_log_ != nullptr) {
    v.recent_events = event_log_->tail_jsonl(flight_depth_);
  }
  violations_.push_back(std::move(v));
}

void InvariantMonitor::check_time_monotonic() {
  if (sim_->now() < last_check_) {
    add("time-monotonicity", "clock ran backwards: now " +
                                 sim_->now().to_string() + " < previous check " +
                                 last_check_.to_string());
  }
}

void InvariantMonitor::check_conservation() {
  // Every cell ever created must be somewhere. Creation points: ABR
  // sources (data + FRM), CBR sources, and destinations (each turned FRM
  // creates one BRM). A cell is accounted for when it is absorbed at an
  // endpoint (destination data/FRM, source BRM, switch unrouted-bin),
  // dropped at a full port queue, lost on a link, still queued at a
  // port (including the cell being serialized), or in flight on a link.
  std::uint64_t created = 0;
  std::uint64_t absorbed = 0;
  for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
    const atm::AbrSource& src = net_->source(s);
    created += src.data_cells_sent() + src.rm_cells_sent();
    absorbed += src.brm_cells_received();
  }
  for (std::size_t c = 0; c < net_->num_cbr_sessions(); ++c) {
    created += net_->cbr_source(c).cells_sent();
  }
  for (std::size_t d = 0; d < net_->num_destinations(); ++d) {
    const atm::AbrDestination& dst = net_->destination(d);
    created += dst.rm_cells_turned();  // each turned FRM births a BRM
    absorbed += dst.total_data_cells() + dst.rm_cells_turned();
  }
  std::uint64_t queued = 0;
  std::uint64_t dropped = 0;
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    atm::Switch& sw = net_->node(w);
    absorbed += sw.unrouted_cells();
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      queued += sw.port(p).queue_length();
      dropped += sw.port(p).cells_dropped();
    }
  }
  std::uint64_t lost = 0;
  std::uint64_t in_flight = 0;
  for (const auto& st : net_->link_states()) {
    lost += st->lost();
    in_flight += st->in_flight();
  }
  // Cells discarded by drop-mode policing never reach a port queue, so
  // they are neither "dropped" (port counter) nor "lost" (link
  // counter): they get their own ledger term.
  const std::uint64_t policed = net_->policer_dropped_cells();
  const std::uint64_t accounted =
      absorbed + queued + dropped + lost + in_flight + policed;
  if (created != accounted) {
    std::ostringstream out;
    out << "created " << created << " != accounted " << accounted
        << " (absorbed " << absorbed << " + queued " << queued << " + dropped "
        << dropped << " + lost " << lost << " + in-flight " << in_flight
        << " + policed " << policed << ")";
    add("cell-conservation", out.str());
  }
}

void InvariantMonitor::check_queue_bounds() {
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    atm::Switch& sw = net_->node(w);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const atm::OutputPort& port = sw.port(p);
      if (port.queue_length() > port.queue_limit()) {
        add("queue-bounds",
            sw.name() + " port " + std::to_string(p) + ": occupancy " +
                std::to_string(port.queue_length()) + " exceeds limit " +
                std::to_string(port.queue_limit()));
      }
    }
  }
}

void InvariantMonitor::check_rate_bounds() {
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    atm::Switch& sw = net_->node(w);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const atm::PortController& ctl = sw.port(p).controller();
      const double share = ctl.fair_share().bits_per_sec();
      if (!std::isfinite(share) || share < 0.0) {
        add("rate-bounds", sw.name() + " port " + std::to_string(p) + " (" +
                               ctl.name() + "): fair share " +
                               std::to_string(share) + " b/s");
      }
    }
  }
  for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
    const atm::AbrSource& src = net_->source(s);
    const double acr = src.acr().bits_per_sec();
    const double pcr = src.params().pcr.bits_per_sec();
    if (!std::isfinite(acr) || acr < 0.0 || acr > pcr) {
      add("rate-bounds", "session " + std::to_string(s) + ": ACR " +
                             std::to_string(acr) + " b/s outside [0, PCR=" +
                             std::to_string(pcr) + "]");
    }
  }
}

void InvariantMonitor::check_stale_rate() {
  // Only sources that claim to follow the feedback protocol are held to
  // the decay envelope: greedy/forging sources ignore feedback by
  // design (the policer is their countermeasure, not this invariant).
  // The check runs whether or not feedback_decay is enabled — that is
  // the point of the ablation: with decay off, a feedback blackhole
  // leaves ACR parked above the envelope and this invariant names it.
  for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
    const atm::AbrSource& src = net_->source(s);
    const atm::SourceBehavior b = src.behavior();
    if (b != atm::SourceBehavior::kCompliant &&
        b != atm::SourceBehavior::kPartial) {
      continue;
    }
    const double envelope = src.stale_rate_envelope().bits_per_sec();
    const double acr = src.acr().bits_per_sec();
    // The envelope reproduces the source's stepwise CDF decay with one
    // pow(), so allow FP ulp drift but nothing that looks like a
    // skipped decay step.
    if (acr > envelope * (1.0 + 1e-6)) {
      std::ostringstream out;
      out << "session " << s << ": ACR " << acr
          << " b/s exceeds stale-rate envelope " << envelope << " b/s ("
          << src.frms_since_brm() << " FRMs since last BRM, crm="
          << src.params().crm << ")";
      add("stale-rate", out.str());
    }
  }
}

void InvariantMonitor::check_fair_share() {
  if (!fs_enabled_) return;
  const sim::Time now = sim_->now();
  const sim::Time elapsed = now - fs_last_sample_;
  if (elapsed < fs_options_.window) return;

  std::vector<sim::Rate> ideal;
  try {
    ideal = net_->reference_rates(fs_options_.phantom_per_link,
                                  fs_options_.utilization);
  } catch (const std::exception&) {
    // The reference allocation can be undefined mid-fault (e.g. CBR
    // load saturating a link leaves zero controlled capacity). Nothing
    // to compare against — resync the sample baseline and move on.
    for (std::size_t i = 0; i < fs_options_.sessions.size(); ++i) {
      fs_prev_delivered_[i] = net_->delivered_cells(fs_options_.sessions[i]);
    }
    fs_last_sample_ = now;
    return;
  }

  std::vector<double> measured;
  std::vector<double> reference;
  for (std::size_t i = 0; i < fs_options_.sessions.size(); ++i) {
    const std::size_t s = fs_options_.sessions[i];
    const std::uint64_t delivered = net_->delivered_cells(s);
    const std::uint64_t delta = delivered - fs_prev_delivered_[i];
    fs_prev_delivered_[i] = delivered;
    // A session that is (or went) inactive this window is entitled to
    // nothing; comparing its partial-window goodput to a full share
    // would be a false alarm. Same for a zero reference rate.
    const atm::AbrSource& src = net_->source(s);
    if (!src.active() || ideal[s].bits_per_sec() <= 0.0) continue;
    // delivered_cells counts data cells only; every Nrm-th cell of the
    // allocation is an FRM, so scale goodput back up to wire rate.
    const double rm_overhead = static_cast<double>(src.params().nrm) /
                               static_cast<double>(src.params().nrm - 1);
    measured.push_back(static_cast<double>(delta) * atm::kCellBits *
                       rm_overhead / elapsed.seconds());
    reference.push_back(ideal[s].bits_per_sec());
  }
  fs_last_sample_ = now;
  if (measured.empty()) return;

  const double retention = stats::fair_share_retention(measured, reference);
  if (retention < fs_options_.bound) {
    std::ostringstream out;
    out << "compliant sessions retained " << retention
        << " of fair share over " << elapsed.to_string() << " (bound "
        << fs_options_.bound << ", " << measured.size() << " sessions)";
    add("fair-share-retention", out.str());
  }
}

void InvariantMonitor::check_buffer_budget() {
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    const atm::Switch& sw = net_->node(w);
    const atm::BufferManager* bm = sw.buffer_manager();
    if (bm == nullptr) continue;
    if (!bm->within_budget()) {
      std::ostringstream out;
      out << sw.name() << ": " << bm->cells_in_use()
          << " cells in use exceeds effective budget "
          << bm->effective_budget() << " (squeeze grace "
          << bm->grace_cells() << ", level " << to_string(bm->level()) << ")";
      add("buffer-budget", out.str());
    }
  }
}

void InvariantMonitor::check_refusal_monotone() {
  if (prev_refused_.size() < net_->num_switches()) {
    prev_refused_.resize(net_->num_switches(), 0);
  }
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    const std::uint64_t refused =
        net_->node(w).cac_counters().refused_total();
    if (refused < prev_refused_[w]) {
      add("refusal-monotonicity",
          net_->node(w).name() + ": refusal total went backwards (" +
              std::to_string(prev_refused_[w]) + " -> " +
              std::to_string(refused) + ")");
    }
    prev_refused_[w] = refused;
  }
}

void InvariantMonitor::enable_mcr_retention_check(McrRetentionOptions options) {
  mcr_options_ = std::move(options);
  if (mcr_options_.sessions.empty()) {
    for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
      if (net_->source(s).params().mcr.bits_per_sec() > 0.0) {
        mcr_options_.sessions.push_back(s);
      }
    }
  }
  mcr_prev_delivered_.clear();
  for (const std::size_t s : mcr_options_.sessions) {
    mcr_prev_delivered_.push_back(net_->delivered_cells(s));
  }
  mcr_last_sample_ = sim_->now();
  mcr_enabled_ = true;
}

void InvariantMonitor::check_mcr_retention() {
  if (!mcr_enabled_) return;
  const sim::Time now = sim_->now();
  const sim::Time elapsed = now - mcr_last_sample_;
  if (elapsed < mcr_options_.window) return;

  for (std::size_t i = 0; i < mcr_options_.sessions.size(); ++i) {
    const std::size_t s = mcr_options_.sessions[i];
    const std::uint64_t delivered = net_->delivered_cells(s);
    const std::uint64_t delta = delivered - mcr_prev_delivered_[i];
    mcr_prev_delivered_[i] = delivered;
    const atm::AbrSource& src = net_->source(s);
    const double mcr = src.params().mcr.bits_per_sec();
    // An inactive session delivers nothing by design; a zero-MCR
    // session has no contracted minimum to retain.
    if (!src.active() || mcr <= 0.0) continue;
    // delivered_cells counts data cells only; every Nrm-th cell of the
    // allocation is an FRM, so scale goodput back up to wire rate.
    const double rm_overhead = static_cast<double>(src.params().nrm) /
                               static_cast<double>(src.params().nrm - 1);
    const double goodput = static_cast<double>(delta) * atm::kCellBits *
                           rm_overhead / elapsed.seconds();
    if (goodput < mcr_options_.bound * mcr) {
      std::ostringstream out;
      out << "session " << s << ": goodput " << goodput
          << " b/s below " << mcr_options_.bound << " x MCR (" << mcr
          << " b/s) over " << elapsed.to_string();
      add("mcr-retention", out.str());
    }
  }
  mcr_last_sample_ = now;
}

}  // namespace phantom::fault
