file(REMOVE_RECURSE
  "CMakeFiles/phantom_baselines.dir/aprc.cc.o"
  "CMakeFiles/phantom_baselines.dir/aprc.cc.o.d"
  "CMakeFiles/phantom_baselines.dir/capc.cc.o"
  "CMakeFiles/phantom_baselines.dir/capc.cc.o.d"
  "CMakeFiles/phantom_baselines.dir/eprca.cc.o"
  "CMakeFiles/phantom_baselines.dir/eprca.cc.o.d"
  "CMakeFiles/phantom_baselines.dir/erica.cc.o"
  "CMakeFiles/phantom_baselines.dir/erica.cc.o.d"
  "libphantom_baselines.a"
  "libphantom_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
