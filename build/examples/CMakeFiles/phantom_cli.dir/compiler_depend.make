# Empty compiler generated dependencies file for phantom_cli.
# This may be replaced when dependencies are built.
