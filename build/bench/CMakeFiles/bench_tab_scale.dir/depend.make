# Empty dependencies file for bench_tab_scale.
# This may be replaced when dependencies are built.
