// TCP Vegas sender [BP95], the delay-based end-host algorithm the
// paper's §4 discusses at length.
//
// Vegas compares the throughput the window *should* achieve at the
// propagation RTT against what it actually achieves:
//
//   diff = cwnd * (1 - BaseRTT / RTT)      (bytes queued in the network)
//
// and, once per RTT: grows the window while diff < alpha segments,
// shrinks it while diff > beta segments, and holds otherwise. Slow
// start doubles only every other RTT and exits when diff exceeds gamma.
//
// The paper's critique — reproduced by `bench_fig_vegas` — is that
// nothing equalizes two Vegas connections: each is happy with *its own*
// alpha..beta band of queued bytes, so whoever grabbed a larger window
// first keeps it, and flows with different BaseRTT estimates settle at
// persistently different rates. Phantom's router mechanisms fix this
// from the network side.
#pragma once

#include "tcp/tcp_sender.h"

namespace phantom::tcp {

struct VegasConfig {
  RenoConfig base;
  double alpha_segments = 1.0;  ///< grow below this many queued segments
  double beta_segments = 3.0;   ///< shrink above this many
  double gamma_segments = 1.0;  ///< leave slow start above this many

  void validate() const {
    base.validate();
    if (alpha_segments <= 0 || beta_segments <= alpha_segments)
      throw std::invalid_argument{"need 0 < alpha < beta"};
    if (gamma_segments <= 0)
      throw std::invalid_argument{"gamma must be positive"};
  }
};

class VegasSource final : public TcpSender {
 public:
  VegasSource(sim::Simulator& sim, int flow, VegasConfig config, Emitter emit)
      : TcpSender{sim, flow, config.base, std::move(emit)},
        vegas_{config} {
    vegas_.validate();
  }

  [[nodiscard]] std::string name() const override { return "vegas"; }
  [[nodiscard]] sim::Time base_rtt() const { return base_rtt_; }
  /// Estimated bytes this connection keeps queued in the network.
  [[nodiscard]] double diff_bytes() const { return diff_bytes_; }

 private:
  void on_rtt_measurement(sim::Time rtt) override {
    if (base_rtt_.is_zero() || rtt < base_rtt_) base_rtt_ = rtt;
    last_rtt_ = rtt;
  }

  void on_ack_growth(bool efci_suppressed) override;

  bool on_fast_retransmit() override {
    // Vegas decrease [BP95]: the loss is a sign of real congestion, but
    // the window is cut to 3/4 (not 1/2) because Vegas was already
    // holding the queue short.
    set_ssthresh(half_flight());
    set_cwnd(cwnd_bytes() * 0.75);
    return true;
  }

  void on_recovery_exit() override {}  // cwnd already adjusted on entry

  VegasConfig vegas_;
  sim::Time base_rtt_ = sim::Time::zero();
  sim::Time last_rtt_ = sim::Time::zero();
  std::int64_t rtt_mark_ = 0;     // snd_una at the start of this RTT epoch
  bool grow_this_epoch_ = false;  // slow start doubles every other RTT
  double diff_bytes_ = 0.0;
};

}  // namespace phantom::tcp
