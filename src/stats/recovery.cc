#include "stats/recovery.h"

#include <algorithm>
#include <cmath>

namespace phantom::stats {
namespace {

[[nodiscard]] bool in_band(double v, double target, double rel_tol) {
  return std::abs(v - target) <= rel_tol * std::abs(target);
}

/// Index of the first sample with time > t, or samples.size().
[[nodiscard]] std::size_t first_after(std::span<const sim::Sample> samples,
                                      sim::Time t) {
  const auto it = std::upper_bound(
      samples.begin(), samples.end(), t,
      [](sim::Time lhs, const sim::Sample& s) { return lhs < s.time; });
  return static_cast<std::size_t>(it - samples.begin());
}

}  // namespace

std::optional<sim::Time> time_to_reconverge(std::span<const sim::Sample> samples,
                                            sim::Time from, double target,
                                            double rel_tol, sim::Time hold) {
  if (samples.empty()) return std::nullopt;
  const std::size_t start = first_after(samples, from);
  if (start == 0 && samples.front().time > from) {
    // Nothing defines the value at `from`; scan from the first sample.
  } else if (start == samples.size() && start > 0 &&
             samples[start - 1].time < from) {
    // Value frozen before the window: treat the step value as one sample
    // at `from` (handled below by seeding with samples[start - 1]).
  }

  std::optional<sim::Time> entered;
  // Value entering the window (step interpolation), pinned at `from`.
  if (start > 0) {
    if (in_band(samples[start - 1].value, target, rel_tol)) entered = from;
  }
  for (std::size_t i = start; i < samples.size(); ++i) {
    if (in_band(samples[i].value, target, rel_tol)) {
      if (!entered) entered = samples[i].time;
    } else {
      entered.reset();
    }
  }
  if (!entered) return std::nullopt;
  const sim::Time last = samples.back().time;
  if (last - *entered < hold) return std::nullopt;  // not yet proven stable
  return *entered - from;
}

double peak_in_window(std::span<const sim::Sample> samples, sim::Time from,
                      sim::Time to) {
  double peak = 0.0;
  bool any = false;
  const std::size_t start = first_after(samples, from);
  if (start > 0 && samples[start - 1].time <= to) {
    peak = samples[start - 1].value;  // step value carried into the window
    any = true;
  }
  for (std::size_t i = start; i < samples.size() && samples[i].time <= to;
       ++i) {
    peak = any ? std::max(peak, samples[i].value) : samples[i].value;
    any = true;
  }
  return any ? peak : 0.0;
}

double mean_in_window(std::span<const sim::Sample> samples, sim::Time from,
                      sim::Time to) {
  if (to <= from) return 0.0;
  double weighted = 0.0;
  double covered = 0.0;
  std::size_t i = first_after(samples, from);
  // Step value in force at `from`, if any sample precedes the window.
  sim::Time seg_start = from;
  double value = 0.0;
  bool have_value = false;
  if (i > 0) {
    value = samples[i - 1].value;
    have_value = true;
  }
  for (; i < samples.size() && samples[i].time <= to; ++i) {
    if (have_value) {
      const double dt = (samples[i].time - seg_start).seconds();
      weighted += value * dt;
      covered += dt;
    }
    seg_start = samples[i].time;
    value = samples[i].value;
    have_value = true;
  }
  if (have_value) {
    const double dt = (to - seg_start).seconds();
    weighted += value * dt;
    covered += dt;
  }
  return covered > 0.0 ? weighted / covered : 0.0;
}

std::vector<sim::Sample> smooth_series(std::span<const sim::Sample> samples,
                                       sim::Time width) {
  std::vector<sim::Sample> out;
  if (samples.empty() || width <= sim::Time::zero()) return out;
  const sim::Time from = samples.front().time;
  const sim::Time to = samples.back().time;
  for (sim::Time t = from; t < to; t += width) {
    const sim::Time end = t + width < to ? t + width : to;
    out.push_back(sim::Sample{end, mean_in_window(samples, t, end)});
  }
  return out;
}

RecoverySummary summarize_recovery(std::span<const sim::Sample> samples,
                                   sim::Time from, double target,
                                   double rel_tol, sim::Time hold,
                                   sim::Time settle_tail) {
  RecoverySummary out;
  out.reconverge = time_to_reconverge(samples, from, target, rel_tol, hold);
  if (samples.empty()) return out;
  const sim::Time last = samples.back().time;
  out.peak = peak_in_window(samples, from, last);
  const sim::Time tail_start =
      last - settle_tail > from ? last - settle_tail : from;
  out.settled_mean = mean_in_window(samples, tail_start, last);
  return out;
}

}  // namespace phantom::stats
