// Pending-event set for the discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace phantom::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(std::uint64_t s) : seq_{s} {}
  std::uint64_t seq_ = 0;
};

/// Min-heap of timestamped callbacks with deterministic FIFO tie-breaking:
/// events scheduled for the same instant fire in scheduling order. This is
/// what makes simulations reproducible run-to-run regardless of heap
/// internals.
///
/// Cancellation is lazy: cancelled ids are remembered and their events are
/// discarded when they reach the top of the heap, so cancel is O(1) and
/// pop stays O(log n).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. `at` may equal the time of the
  /// event currently executing (zero-delay events are allowed) but must
  /// never be in the past relative to the last popped event — that throws
  /// std::logic_error in every build type.
  EventId schedule(Time at, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest live event. Requires !empty().
  struct Popped {
    Time time;
    Callback callback;
  };
  Popped pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    // Ordered for a min-heap: later time (or later seq at equal time)
    // has lower priority.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head() const;

  // `heap_` orders (time, seq); callbacks live in `callbacks_` keyed by
  // seq so Entry stays trivially copyable.
  mutable std::priority_queue<Entry> heap_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  Time floor_ = Time::zero();  // time of the last popped event

};

}  // namespace phantom::sim
