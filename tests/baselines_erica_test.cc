// ERICA — the per-VC ("unbounded space") comparator class.
#include "baselines/erica.h"

#include <gtest/gtest.h>

#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

namespace phantom::baselines {
namespace {

using atm::Cell;
using atm::CellKind;
using sim::Rate;
using sim::Simulator;
using sim::Time;

Cell frm(int vc, double ccr_mbps) {
  return Cell::forward_rm(vc, Rate::mbps(ccr_mbps), Rate::mbps(150));
}

Cell brm(int vc, double er_mbps = 150.0) {
  Cell c = Cell::forward_rm(vc, Rate::zero(), Rate::mbps(er_mbps));
  c.kind = CellKind::kBackwardRm;
  return c;
}

TEST(EricaTest, TracksOneStatePerVc) {
  Simulator sim;
  EricaController ctl{sim, Rate::mbps(150)};
  EXPECT_EQ(ctl.tracked_vcs(), 0u);
  Cell a = frm(1, 10), b = frm(2, 10), c = frm(3, 10);
  ctl.on_forward_rm(a, 0);
  ctl.on_forward_rm(b, 0);
  ctl.on_forward_rm(c, 0);
  ctl.on_forward_rm(a, 0);  // same VC again
  EXPECT_EQ(ctl.tracked_vcs(), 3u);  // O(connections) by design
}

TEST(EricaTest, FairShareIsTargetOverActiveVcs) {
  Simulator sim;
  EricaController ctl{sim, Rate::mbps(150)};
  for (int vc = 0; vc < 3; ++vc) {
    Cell f = frm(vc, 10);
    ctl.on_forward_rm(f, 0);
  }
  sim.run_until(Time::ms(1));  // one interval
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 0.95 * 150 / 3, 1e-9);
}

TEST(EricaTest, IdleVcsExpireAndReleaseShare) {
  Simulator sim;
  EricaConfig cfg;
  cfg.activity_timeout_intervals = 3;
  EricaController ctl{sim, Rate::mbps(150), cfg};
  Cell f1 = frm(1, 10), f2 = frm(2, 10);
  ctl.on_forward_rm(f1, 0);
  ctl.on_forward_rm(f2, 0);
  sim.run_until(Time::ms(1));
  EXPECT_EQ(ctl.tracked_vcs(), 2u);
  // VC 2 goes silent; VC 1 keeps refreshing.
  for (int i = 0; i < 6; ++i) {
    ctl.on_forward_rm(f1, 0);
    sim.run_until(Time::ms(2 + i));
  }
  EXPECT_EQ(ctl.tracked_vcs(), 1u);
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 0.95 * 150, 1e-9);
}

TEST(EricaTest, BrmClampedToComputedEr) {
  Simulator sim;
  EricaController ctl{sim, Rate::mbps(150)};
  Cell f1 = frm(1, 10), f2 = frm(2, 10);
  ctl.on_forward_rm(f1, 0);
  ctl.on_forward_rm(f2, 0);
  sim.run_until(Time::ms(1));  // fair share = 71.25, load tiny
  Cell b = brm(1);
  ctl.on_backward_rm(b, 0);
  // ER limited to at most the target rate, at least the fair share.
  EXPECT_LE(b.er.mbits_per_sec(), 0.95 * 150 + 1e-9);
  EXPECT_GE(b.er.mbits_per_sec(), 0.95 * 150 / 2 - 1e-9);
}

TEST(EricaTest, ConfigValidation) {
  Simulator sim;
  EricaConfig bad;
  bad.utilization = 0;
  EXPECT_THROW((EricaController{sim, Rate::mbps(150), bad}),
               std::invalid_argument);
  bad = {};
  bad.activity_timeout_intervals = 0;
  EXPECT_THROW((EricaController{sim, Rate::mbps(150), bad}),
               std::invalid_argument);
}

TEST(EricaIntegrationTest, ExactFairShareWithoutPhantomPenalty) {
  // The pay-off of per-VC state: n sessions get u*C/n (not /(n+1)).
  Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kErica)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < 3; ++i) net.add_session(sw, {}, dest);
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(300));
  probe.mark();
  sim.run_until(Time::ms(500));
  const auto rates = probe.rates_mbps();
  for (const double r : rates) EXPECT_NEAR(r, 0.95 * 150 / 3, 4.0);
  EXPECT_GT(stats::jain_index(rates), 0.995);
}

TEST(EricaIntegrationTest, MoreThroughputThanPhantomAtSmallN) {
  // Phantom cedes one share to the imaginary session; ERICA does not.
  auto total = [](exp::Algorithm alg) {
    Simulator sim;
    topo::AbrNetwork net{sim, exp::make_factory(alg)};
    const auto sw = net.add_switch("sw");
    const auto dest = net.add_destination(sw, {});
    for (int i = 0; i < 2; ++i) net.add_session(sw, {}, dest);
    exp::GoodputProbe probe{sim, net};
    net.start_all(Time::zero(), Time::zero());
    sim.run_until(Time::ms(300));
    probe.mark();
    sim.run_until(Time::ms(500));
    return probe.total_mbps();
  };
  EXPECT_GT(total(exp::Algorithm::kErica),
            1.2 * total(exp::Algorithm::kPhantom));
}

}  // namespace
}  // namespace phantom::baselines
