#include "chaos/shrinker.h"

#include <algorithm>

namespace phantom::chaos {
namespace {

using fault::FaultEvent;
using fault::FaultPlan;
using sim::Time;

class Shrinker {
 public:
  Shrinker(FaultPlan plan,
           const std::function<bool(const FaultPlan&)>& still_fails,
           const ShrinkOptions& opt)
      : current_{std::move(plan)}, still_fails_{still_fails}, opt_{opt} {}

  [[nodiscard]] ShrinkResult run() {
    bool changed = true;
    while (changed && probes_ < opt_.max_probes) {
      changed = remove_events();
      changed = simplify_events() || changed;
    }
    return {std::move(current_), probes_};
  }

 private:
  /// True if `candidate` still reproduces the failure; adopts it then.
  bool adopt_if_failing(FaultPlan&& candidate) {
    if (probes_ >= opt_.max_probes) return false;
    ++probes_;
    if (!still_fails_(candidate)) return false;
    current_ = std::move(candidate);
    return true;
  }

  /// One greedy removal sweep to fixpoint: drop any event whose absence
  /// keeps the failure alive. Iterates back-to-front so indices stay
  /// valid across erasures within a sweep.
  bool remove_events() {
    bool any = false;
    bool progress = true;
    while (progress && probes_ < opt_.max_probes) {
      progress = false;
      for (std::size_t i = current_.events.size(); i-- > 0;) {
        if (current_.events.size() == 1) break;  // keep at least one event
        FaultPlan candidate = current_;
        candidate.events.erase(candidate.events.begin() +
                               static_cast<std::ptrdiff_t>(i));
        if (adopt_if_failing(std::move(candidate))) {
          any = true;
          progress = true;
        }
      }
    }
    return any;
  }

  /// Per-event simplification sweep: fewer cycles, shorter windows,
  /// simpler RM faults. Each accepted step re-tries from the new plan.
  bool simplify_events() {
    bool any = false;
    for (std::size_t i = 0; i < current_.events.size(); ++i) {
      // Flap: one cycle is the simplest oscillation.
      if (current_.events[i].kind == FaultEvent::Kind::kFlap) {
        while (current_.events[i].cycles > 1 && probes_ < opt_.max_probes) {
          FaultPlan candidate = current_;
          candidate.events[i].cycles = 1;
          if (!adopt_if_failing(std::move(candidate))) break;
          any = true;
        }
        any = halve(i, &FaultEvent::down_period) || any;
        any = halve(i, &FaultEvent::up_period) || any;
      }
      // Windowed faults: halve the window while the failure survives.
      any = halve(i, &FaultEvent::duration) || any;
      // RM faults: corruption is the more exotic half — try dropping it.
      if (current_.events[i].kind == FaultEvent::Kind::kRmFault &&
          current_.events[i].rm_corrupt > 0.0 && probes_ < opt_.max_probes) {
        FaultPlan candidate = current_;
        candidate.events[i].rm_corrupt = 0.0;
        if (adopt_if_failing(std::move(candidate))) any = true;
      }
    }
    return any;
  }

  /// Repeatedly halves events[i].*field (floored at min_duration) while
  /// the failure reproduces.
  bool halve(std::size_t i, Time FaultEvent::* field) {
    bool any = false;
    while (probes_ < opt_.max_probes) {
      const Time value = current_.events[i].*field;
      if (value <= opt_.min_duration) break;
      FaultPlan candidate = current_;
      candidate.events[i].*field = std::max(opt_.min_duration, value / 2);
      if (!adopt_if_failing(std::move(candidate))) break;
      any = true;
    }
    return any;
  }

  FaultPlan current_;
  const std::function<bool(const FaultPlan&)>& still_fails_;
  ShrinkOptions opt_;
  int probes_ = 0;
};

}  // namespace

ShrinkResult shrink(const FaultPlan& failing,
                    const std::function<bool(const FaultPlan&)>& still_fails,
                    const ShrinkOptions& opt) {
  return Shrinker{failing, still_fails, opt}.run();
}

}  // namespace phantom::chaos
