// Self-healing figure (new; no paper counterpart): the control loop
// under feedback loss. A directional blackhole drops backward RM cells
// on the bottleneck's feedback path for 200 ms at sweep probabilities
// {0, 0.25, 0.5, 0.75, 1.0} while data keeps flowing — the scenario the
// TM 4.0 source-side backoff (Crm missing-RM threshold, CDF cutoff
// decrease, ADTF stale-ACR deadline; atm/abr_params.h) exists for.
// Every run arms the stale-VC reaper and the invariant monitor, and the
// whole sweep is repeated with the backoff disabled (the
// --no-feedback-decay ablation).
//
// Expected shape: with decay on, every algorithm keeps queues bounded
// at every loss rate and reconverges to its pre-fault operating point
// within tens of ms of the feedback path healing — at total loss the
// sources walk themselves down toward ICR and climb back by additive
// increase. With decay off, a total blackhole parks every source at a
// rate the network stopped granting: the stale-rate invariant names
// each of them, which is the whole argument for the mechanism.
//
// A second table compares cold vs warm controller restart: a cold
// restart wipes the learned state back to its initial constant, a warm
// restart reseeds it from the first window of observed RM traffic
// (PortController::warm_restart), and the recovery summary shows what
// that buys.
#include "bench_util.h"

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "stats/recovery.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

constexpr int kSessions = 4;
constexpr double kRateMbps = 150.0;
// Reconvergence is judged on a 10 ms-bucket smoothed share (APRC's
// congestion signal flip-flops by design, so its instantaneous
// estimate never holds a band even fault-free) with the chaos oracle's
// 15% tolerance.
constexpr double kRelTol = 0.15;
const Time kSmooth = Time::ms(10);
constexpr double kLossSweep[] = {0.0, 0.25, 0.5, 0.75, 1.0};
// Queues must not blow up while feedback is dark: well under the port's
// 20k-cell limit, with head room above the normal transient.
constexpr double kQueueBound = 4000.0;

const Time kBlackholeAt = Time::ms(250);
const Time kBlackholeLen = Time::ms(200);
const Time kEnd = Time::ms(800);

constexpr exp::Algorithm kAlgorithms[] = {
    exp::Algorithm::kPhantom, exp::Algorithm::kEprca, exp::Algorithm::kAprc,
    exp::Algorithm::kCapc, exp::Algorithm::kErica};

struct SweepResult {
  double target_mbps = 0.0;        // pre-fault operating point
  std::optional<Time> reconverge;  // from the window end
  double peak_queue = 0.0;         // cells, from the window start
  std::size_t stale_violations = 0;
  std::size_t other_violations = 0;
};

SweepResult run_sweep(exp::Algorithm alg, double loss, bool decay) {
  sim::Simulator sim{1};
  topo::AbrNetwork net{sim, exp::make_factory(alg)};
  const auto sw = net.add_switch("sw");
  topo::TrunkOptions opts;
  opts.rate = Rate::mbps(kRateMbps);
  const auto dest = net.add_destination(sw, opts);
  atm::AbrParams params;
  params.feedback_decay = decay;
  for (int i = 0; i < kSessions; ++i) net.add_session(sw, {}, dest, params);
  net.enable_reaping();

  fault::FaultInjector injector{sim, net};
  if (loss > 0.0) {
    injector.apply(fault::FaultPlan{}.rm_blackhole(fault::dest(0), kBlackholeAt,
                                                   kBlackholeLen, loss));
  }
  fault::InvariantMonitor monitor{sim, net};
  exp::FairShareSampler share{sim, net.dest_port(dest).controller()};
  exp::QueueSampler queue{sim, net.dest_port(dest)};

  net.start_all(Time::zero(), Time::zero());
  sim.run_until(kEnd);
  monitor.check_now();

  SweepResult r;
  r.target_mbps = stats::mean_in_window(share.trace().samples(), Time::ms(150),
                                        kBlackholeAt) *
                  1e-6;
  const auto smoothed = stats::smooth_series(share.trace().samples(), kSmooth);
  r.reconverge = stats::time_to_reconverge(
      smoothed, kBlackholeAt + kBlackholeLen, r.target_mbps * 1e6, kRelTol);
  r.peak_queue =
      stats::peak_in_window(queue.trace().samples(), kBlackholeAt, kEnd);
  for (const auto& v : monitor.violations()) {
    if (v.invariant == "stale-rate") {
      ++r.stale_violations;
    } else {
      ++r.other_violations;
    }
  }
  if (alg == exp::Algorithm::kPhantom && loss == 1.0) {
    exp::maybe_dump_series("fig_selfheal",
                           decay ? "share_decay_on" : "share_decay_off",
                           share.trace().samples(), 1e-6);
  }
  return r;
}

struct RestartResult {
  stats::RecoverySummary summary;
  double target_mbps = 0.0;
  std::uint64_t warm_restarts = 0;
  double seeded_mbps = 0.0;
};

RestartResult run_restart(exp::Algorithm alg, bool warm) {
  const Time restart_at = Time::ms(400);
  sim::Simulator sim{1};
  topo::AbrNetwork net{sim, exp::make_factory(alg)};
  const auto sw = net.add_switch("sw");
  topo::TrunkOptions opts;
  opts.rate = Rate::mbps(kRateMbps);
  const auto dest = net.add_destination(sw, opts);
  for (int i = 0; i < kSessions; ++i) net.add_session(sw, {}, dest);

  fault::FaultInjector injector{sim, net};
  injector.apply(fault::FaultPlan{}.restart(fault::dest(0), restart_at, warm));
  exp::FairShareSampler share{sim, net.dest_port(dest).controller()};

  net.start_all(Time::zero(), Time::zero());
  sim.run_until(kEnd);

  RestartResult r;
  r.target_mbps = stats::mean_in_window(share.trace().samples(), Time::ms(300),
                                        restart_at) *
                  1e-6;
  const auto smoothed = stats::smooth_series(share.trace().samples(), kSmooth);
  r.summary = stats::summarize_recovery(smoothed, restart_at,
                                        r.target_mbps * 1e6, kRelTol);
  if (const auto* audit = net.dest_port(dest).controller().warm_audit()) {
    r.warm_restarts = audit->warm_restarts;
    r.seeded_mbps = audit->seeded_bps * 1e-6;
  }
  return r;
}

std::string fmt_reconverge(const std::optional<Time>& t) {
  return t ? exp::Table::num(t->milliseconds()) + " ms" : "never";
}

}  // namespace

int main() {
  exp::print_header("Fig SH", "self-healing under feedback loss");
  std::printf(
      "bottleneck, %d sessions @ %.0f Mb/s; backward-RM blackhole on the\n"
      "destination's feedback path at %.0f ms for %.0f ms, loss swept over\n"
      "{0, 0.25, 0.5, 0.75, 1.0}; reaper armed; run to %.0f ms.\n"
      "decay on = TM 4.0 backoff (crm=32, cdf=0.5, adtf=250 ms);\n"
      "decay off = the --no-feedback-decay ablation\n\n",
      kSessions, kRateMbps, kBlackholeAt.milliseconds(),
      kBlackholeLen.milliseconds(), kEnd.milliseconds());

  exp::Table table{{"algorithm", "BRM loss", "reconverge (on)",
                    "peak queue (on)", "stale viol (on)", "reconverge (off)",
                    "peak queue (off)", "stale viol (off)"}};
  bool sweep_ok = true;
  bool ablation_violates = true;
  for (const auto alg : kAlgorithms) {
    for (const double loss : kLossSweep) {
      const SweepResult on = run_sweep(alg, loss, /*decay=*/true);
      const SweepResult off = run_sweep(alg, loss, /*decay=*/false);
      table.add_row({exp::to_string(alg), exp::Table::num(loss, 2),
                     fmt_reconverge(on.reconverge),
                     exp::Table::num(on.peak_queue, 0),
                     std::to_string(on.stale_violations),
                     fmt_reconverge(off.reconverge),
                     exp::Table::num(off.peak_queue, 0),
                     std::to_string(off.stale_violations)});

      // Acceptance, decay on: bounded queues, zero stale-rate
      // violations and finite post-recovery reconvergence at every
      // loss rate, for every algorithm.
      if (!on.reconverge || on.peak_queue > kQueueBound ||
          on.stale_violations != 0 || on.other_violations != 0) {
        std::printf(
            "FAILED %s @ loss %.2f (decay on): reconverged %s, peak queue "
            "%.0f, %zu stale + %zu other violations\n",
            exp::to_string(alg).c_str(), loss,
            on.reconverge ? "yes" : "no", on.peak_queue, on.stale_violations,
            on.other_violations);
        sweep_ok = false;
      }
      // Acceptance, decay off: a total blackhole must trip the
      // stale-rate invariant (that is what the ablation demonstrates).
      // Below 100% the missing-RM counter never accumulates Crm
      // consecutive losses, so no violation is expected there.
      if (loss == 1.0 && off.stale_violations == 0) {
        std::printf("FAILED %s: decay-off total blackhole tripped no "
                    "stale-rate violation\n",
                    exp::to_string(alg).c_str());
        ablation_violates = false;
      }
    }
  }
  std::printf("\n");
  table.print();

  std::printf("\ncold vs warm controller restart at 400 ms (no blackhole):\n\n");
  exp::Table restart{{"algorithm", "mode", "reconverge", "peak (Mb/s)",
                      "settled (Mb/s)", "seeded (Mb/s)"}};
  for (const auto alg : kAlgorithms) {
    for (const bool warm : {false, true}) {
      const RestartResult r = run_restart(alg, warm);
      restart.add_row(
          {exp::to_string(alg), warm ? "warm" : "cold",
           fmt_reconverge(r.summary.reconverge),
           exp::Table::num(r.summary.peak * 1e-6),
           exp::Table::num(r.summary.settled_mean * 1e-6),
           warm ? exp::Table::num(r.seeded_mbps) : std::string{"-"}});
    }
  }
  restart.print();

  std::printf("\nacceptance: sweep (decay on, all algorithms) %s | "
              "decay-off ablation violates stale-rate %s\n",
              sweep_ok ? "PASS" : "FAIL",
              ablation_violates ? "PASS" : "FAIL");
  return sweep_ok && ablation_violates ? 0 : 1;
}
