file(REMOVE_RECURSE
  "CMakeFiles/atm_parking_lot.dir/atm_parking_lot.cpp.o"
  "CMakeFiles/atm_parking_lot.dir/atm_parking_lot.cpp.o.d"
  "atm_parking_lot"
  "atm_parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
