#include "core/phantom_controller.h"

#include <algorithm>

#include "atm/cell.h"

namespace phantom::core {

PhantomController::PhantomController(sim::Simulator& sim,
                                     sim::Rate link_capacity,
                                     PhantomConfig config)
    : sim_{&sim},
      config_{config},
      filter_{link_capacity, config},
      macr_trace_{"macr"} {
  macr_trace_.record(sim_->now(), filter_.macr().bits_per_sec());
  sim_->schedule(config_.interval,
                 sim::bind_member<&PhantomController::on_interval>(this));
}

void PhantomController::on_cell_accepted(const atm::Cell&, std::size_t) {
  ++arrived_cells_;
}

void PhantomController::on_cell_dropped(const atm::Cell&) {
  // Dropped cells still represent offered load: counting them keeps the
  // residual-bandwidth signal strongly negative during overload, which
  // is what drives MACR down fast enough to drain the queue.
  ++arrived_cells_;
}

void PhantomController::on_forward_rm(atm::Cell& cell, std::size_t) {
  // Phantom learns nothing from FRMs in steady state (constant space);
  // the only listener is the warm-start audit window after a restart.
  if (warm_.open() && warm_.sample(cell.ccr.bits_per_sec())) {
    close_warm_window();
  }
}

void PhantomController::close_warm_window() {
  if (const auto seed = warm_.close()) {
    filter_.seed(sim::Rate::bps(*seed));
    warm_.record_seed(filter_.macr().bits_per_sec());
    macr_trace_.record(sim_->now(), filter_.macr().bits_per_sec());
    note_rate_update(sim_->now());
  }
}

void PhantomController::on_interval() {
  if (warm_.ripe()) close_warm_window();  // first tick after RM traffic
  const double cells = static_cast<double>(arrived_cells_);
  arrived_cells_ = 0;
  const sim::Rate offered = sim::Rate::bps(
      cells * static_cast<double>(atm::kCellBits) / config_.interval.seconds());
  over_subscribed_ = offered > filter_.target();
  const sim::Rate macr = filter_.update(offered);
  ++intervals_;
  macr_trace_.record(sim_->now(), macr.bits_per_sec());
  note_rate_update(sim_->now());
  sim_->schedule(config_.interval,
                 sim::bind_member<&PhantomController::on_interval>(this));
}

void PhantomController::reset() {
  // Cold restart: MACR/DEV wiped, interval timer keeps ticking (the
  // restarted controller immediately resumes measuring). The trace keeps
  // its history so the restart transient is visible in the figures.
  filter_.reset();
  arrived_cells_ = 0;
  over_subscribed_ = false;
  macr_trace_.record(sim_->now(), filter_.macr().bits_per_sec());
}

void PhantomController::warm_restart() {
  // Same wipe as a cold reset, but the next window of FRM traffic
  // re-seeds MACR at the rate sources are demonstrably sending at —
  // the restarted port resumes steering near the old operating point
  // instead of clamping everyone back to the boot constant.
  reset();
  warm_.begin();
}

void PhantomController::on_backward_rm(atm::Cell& cell, std::size_t) {
  if (config_.explicit_rate_mode) {
    cell.er = std::min(cell.er, filter_.macr());
  }
  // Binary mode conveys congestion via EFCI on data cells (latched by
  // the destination into the CI bit of returning RM cells), not here.
}

bool PhantomController::mark_efci(std::size_t queue_len) const {
  if (!config_.explicit_rate_mode && over_subscribed_) return true;
  return config_.efci_queue_threshold > 0 &&
         queue_len >= config_.efci_queue_threshold;
}

}  // namespace phantom::core
