#include "atm/abr_destination.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace phantom::atm {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

class Collector final : public CellSink {
 public:
  void receive_cell(Cell cell) override { cells.push_back(cell); }
  std::vector<Cell> cells;
};

struct DestFixture {
  Simulator sim;
  Collector reverse;
  AbrDestination dest{sim, Link{sim, Time::zero(), reverse}};
};

TEST(AbrDestinationTest, TurnsFrmIntoBrm) {
  DestFixture f;
  f.dest.receive_cell(Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150)));
  f.sim.run();
  ASSERT_EQ(f.reverse.cells.size(), 1u);
  const Cell& brm = f.reverse.cells[0];
  EXPECT_EQ(brm.kind, CellKind::kBackwardRm);
  EXPECT_EQ(brm.vc, 1);
  EXPECT_DOUBLE_EQ(brm.ccr.mbits_per_sec(), 5.0);
  EXPECT_DOUBLE_EQ(brm.er.mbits_per_sec(), 150.0);
  EXPECT_FALSE(brm.ci);
  EXPECT_EQ(f.dest.rm_cells_turned(), 1u);
}

TEST(AbrDestinationTest, CountsDataCellsPerVc) {
  DestFixture f;
  for (int i = 0; i < 3; ++i) f.dest.receive_cell(Cell::data(1));
  f.dest.receive_cell(Cell::data(2));
  EXPECT_EQ(f.dest.data_cells_received(1), 3u);
  EXPECT_EQ(f.dest.data_cells_received(2), 1u);
  EXPECT_EQ(f.dest.data_cells_received(9), 0u);
  EXPECT_EQ(f.dest.total_data_cells(), 4u);
}

TEST(AbrDestinationTest, EfciLatchedIntoNextBrm) {
  DestFixture f;
  Cell marked = Cell::data(1);
  marked.efci = true;
  f.dest.receive_cell(marked);
  f.dest.receive_cell(Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150)));
  f.sim.run();
  ASSERT_EQ(f.reverse.cells.size(), 1u);
  EXPECT_TRUE(f.reverse.cells[0].ci);
}

TEST(AbrDestinationTest, EfciStateFollowsMostRecentDataCell) {
  DestFixture f;
  Cell marked = Cell::data(1);
  marked.efci = true;
  f.dest.receive_cell(marked);
  f.dest.receive_cell(Cell::data(1));  // unmarked, clears the latch
  f.dest.receive_cell(Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150)));
  f.sim.run();
  ASSERT_EQ(f.reverse.cells.size(), 1u);
  EXPECT_FALSE(f.reverse.cells[0].ci);
}

TEST(AbrDestinationTest, EfciLatchIsPerVc) {
  DestFixture f;
  Cell marked = Cell::data(2);
  marked.efci = true;
  f.dest.receive_cell(marked);
  f.dest.receive_cell(Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150)));
  f.sim.run();
  ASSERT_EQ(f.reverse.cells.size(), 1u);
  EXPECT_FALSE(f.reverse.cells[0].ci);  // VC 1 never saw EFCI
}

TEST(AbrDestinationTest, PreexistingCiSurvivesTurnaround) {
  DestFixture f;
  Cell frm = Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150));
  frm.ci = true;  // some upstream switch set CI on the forward pass
  f.dest.receive_cell(frm);
  f.sim.run();
  ASSERT_EQ(f.reverse.cells.size(), 1u);
  EXPECT_TRUE(f.reverse.cells[0].ci);
}

TEST(AbrDestinationTest, IgnoresStrayBackwardRm) {
  DestFixture f;
  Cell brm = Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150));
  brm.kind = CellKind::kBackwardRm;
  f.dest.receive_cell(brm);
  f.sim.run();
  EXPECT_TRUE(f.reverse.cells.empty());
}

}  // namespace
}  // namespace phantom::atm
