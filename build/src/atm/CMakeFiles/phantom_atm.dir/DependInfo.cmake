
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atm/abr_destination.cc" "src/atm/CMakeFiles/phantom_atm.dir/abr_destination.cc.o" "gcc" "src/atm/CMakeFiles/phantom_atm.dir/abr_destination.cc.o.d"
  "/root/repo/src/atm/abr_source.cc" "src/atm/CMakeFiles/phantom_atm.dir/abr_source.cc.o" "gcc" "src/atm/CMakeFiles/phantom_atm.dir/abr_source.cc.o.d"
  "/root/repo/src/atm/cbr_source.cc" "src/atm/CMakeFiles/phantom_atm.dir/cbr_source.cc.o" "gcc" "src/atm/CMakeFiles/phantom_atm.dir/cbr_source.cc.o.d"
  "/root/repo/src/atm/cell.cc" "src/atm/CMakeFiles/phantom_atm.dir/cell.cc.o" "gcc" "src/atm/CMakeFiles/phantom_atm.dir/cell.cc.o.d"
  "/root/repo/src/atm/output_port.cc" "src/atm/CMakeFiles/phantom_atm.dir/output_port.cc.o" "gcc" "src/atm/CMakeFiles/phantom_atm.dir/output_port.cc.o.d"
  "/root/repo/src/atm/switch.cc" "src/atm/CMakeFiles/phantom_atm.dir/switch.cc.o" "gcc" "src/atm/CMakeFiles/phantom_atm.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/phantom_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
