# Empty dependencies file for tcp_packet_test.
# This may be replaced when dependencies are built.
