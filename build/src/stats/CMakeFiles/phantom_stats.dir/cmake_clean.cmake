file(REMOVE_RECURSE
  "CMakeFiles/phantom_stats.dir/fairness.cc.o"
  "CMakeFiles/phantom_stats.dir/fairness.cc.o.d"
  "CMakeFiles/phantom_stats.dir/histogram.cc.o"
  "CMakeFiles/phantom_stats.dir/histogram.cc.o.d"
  "CMakeFiles/phantom_stats.dir/series.cc.o"
  "CMakeFiles/phantom_stats.dir/series.cc.o.d"
  "libphantom_stats.a"
  "libphantom_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
