// Machine-checked runtime invariants for ABR simulations.
//
// assert()-based sanity checking disappears under NDEBUG, so a release
// build of a broken model fails silently. The InvariantMonitor is the
// release-mode replacement: a periodic probe that cross-checks the
// network's global bookkeeping and reports violations as structured
// records (printed via exp::print_violations) instead of dying — a run
// under fault injection finishes and tells you *what* broke.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom::fault {

/// One detected invariant violation.
struct InvariantViolation {
  sim::Time time;
  std::string invariant;  ///< short id, e.g. "cell-conservation"
  std::string detail;     ///< human-readable specifics with the numbers
  /// Flight recorder: the last few structured events (JSONL, oldest
  /// first) preceding the violation. Empty unless an obs::EventLog was
  /// attached to the monitor.
  std::vector<std::string> recent_events;
};

/// Periodically verifies, across the whole network:
///
///  * cell conservation — every cell ever created (source/CBR
///    transmissions + destination RM turnaround) is accounted for:
///    absorbed at an endpoint, dropped at a port, lost on a link,
///    sitting in a queue, or propagating in flight;
///  * queue bounds — no port's occupancy exceeds its configured limit;
///  * rate bounds — every controller's fair-share estimate is finite
///    and non-negative, and every source's ACR stays in [0, PCR]
///    (sources clamp ER into [MCR, PCR], so a violation here means
///    corrupted feedback escaped the clamps);
///  * no stale-rate transmission — once a compliant source's feedback
///    is Crm forward-RM cells overdue, its ACR must sit inside the
///    TM-4.0 decay envelope (last granted ER cut by CDF per overdue
///    FRM, ICR after the ADTF deadline; see
///    AbrSource::stale_rate_envelope). A violation means a source kept
///    transmitting at a rate the network never recently granted — the
///    failure mode the feedback-loss backoff exists to prevent, and
///    exactly what the --no-feedback-decay ablation exhibits;
///  * buffer budget — on switches with bounded cell memory, occupancy
///    never exceeds the effective budget (modulo the squeeze grace:
///    cells already resident when a memsqueeze lands drain, they are
///    not teleported away — the grace shrinks monotonically until the
///    budget holds);
///  * refusal monotonicity — CAC per-switch refusal totals only ever
///    grow (a squeeze must not "un-refuse" an earlier setup);
///  * time monotonicity — the simulation clock never runs backwards
///    between checks.
///
/// Checks run every `period` starting at construction time, and on
/// demand via check_now(). Violations accumulate; a healthy run ends
/// with violations().empty().
class InvariantMonitor {
 public:
  InvariantMonitor(sim::Simulator& sim, topo::AbrNetwork& net,
                   sim::Time period = sim::Time::ms(1));

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Configuration for the opt-in fair-share-retention check (the
  /// enforcement guarantee: with policing on, compliant sessions keep
  /// their fair share even in the presence of misbehaving sources).
  struct FairShareOptions {
    /// Minimum acceptable retention (mean over watched sessions of
    /// min(goodput / ideal, 1)) per measurement window.
    double bound = 0.85;
    /// Goodput measurement window. Must comfortably exceed the
    /// controllers' measurement interval so the estimate is settled.
    sim::Time window = sim::Time::ms(50);
    /// Target utilization for the reference allocation (paper: 0.95).
    double utilization = 0.95;
    /// Use the Phantom equilibrium (one phantom session per link) as
    /// the reference rather than plain max-min.
    bool phantom_per_link = true;
    /// Which sessions' retention to watch — the *compliant* ones (the
    /// misbehaving sessions are entitled to nothing beyond their
    /// share, and policing deliberately beats them down). Empty =
    /// watch every session.
    std::vector<std::size_t> sessions;
  };

  /// Turns on the fair-share-retention check. Goodput is sampled from
  /// the call time, so enable this after the network has warmed up —
  /// the first window otherwise includes the convergence transient.
  void enable_fair_share_check(FairShareOptions options);

  /// Configuration for the opt-in MCR-retention check (the overload
  /// guarantee: degradation sheds elastic traffic, never an admitted
  /// VC's contracted minimum).
  struct McrRetentionOptions {
    /// Minimum acceptable per-window goodput as a fraction of MCR.
    double bound = 0.95;
    /// Goodput measurement window.
    sim::Time window = sim::Time::ms(50);
    /// Which sessions to watch. Empty = every session that exists at
    /// enable time with MCR > 0 (sessions admitted later, e.g. by a VC
    /// storm, are not auto-enrolled).
    std::vector<std::size_t> sessions;
  };

  /// Turns on the MCR-retention check. Like the fair-share check,
  /// sampling starts at the call time — enable after warm-up.
  void enable_mcr_retention_check(McrRetentionOptions options);

  /// Runs every check immediately (also happens on the periodic tick).
  void check_now();

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }

  /// Attaches a flight recorder: each violation captures the event
  /// log's last `depth` records at detection time (see
  /// InvariantViolation::recent_events).
  void set_event_log(const obs::EventLog* log, std::size_t depth = 16) {
    event_log_ = log;
    flight_depth_ = depth;
  }

 private:
  void tick();
  void check_conservation();
  void check_queue_bounds();
  void check_rate_bounds();
  void check_stale_rate();
  void check_time_monotonic();
  void check_fair_share();
  void check_buffer_budget();
  void check_refusal_monotone();
  void check_mcr_retention();
  void add(const char* invariant, std::string detail);

  sim::Simulator* sim_;
  topo::AbrNetwork* net_;
  sim::Time period_;
  sim::Time last_check_ = sim::Time::zero();
  std::uint64_t checks_ = 0;
  std::vector<InvariantViolation> violations_;

  bool fs_enabled_ = false;
  FairShareOptions fs_options_;
  sim::Time fs_last_sample_ = sim::Time::zero();
  std::vector<std::uint64_t> fs_prev_delivered_;  // parallel to sessions

  bool mcr_enabled_ = false;
  McrRetentionOptions mcr_options_;
  sim::Time mcr_last_sample_ = sim::Time::zero();
  std::vector<std::uint64_t> mcr_prev_delivered_;  // parallel to sessions

  std::vector<std::uint64_t> prev_refused_;  // per switch, grows on demand

  const obs::EventLog* event_log_ = nullptr;
  std::size_t flight_depth_ = 16;
};

}  // namespace phantom::fault
