# Empty dependencies file for phantom_exp.
# This may be replaced when dependencies are built.
