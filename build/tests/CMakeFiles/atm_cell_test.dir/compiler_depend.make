# Empty compiler generated dependencies file for atm_cell_test.
# This may be replaced when dependencies are built.
