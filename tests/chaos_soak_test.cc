// Soak suite (label: soak, excluded from the default ctest run): longer
// chaos searches at full link rate over every algorithm and scenario.
//
// Phantom is held to zero failures of any kind. The baseline
// algorithms are allowed to miss reconvergence deadlines or drift from
// their fault-free operating point (those are the findings the harness
// exists to surface — APRC's slow burst recovery, for instance), but
// nothing may ever wedge the simulator, violate an invariant, or crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <tuple>

#include "chaos/search.h"

namespace phantom {
namespace {

using sim::Time;

chaos::SearchReport soak(chaos::ScenarioSpec::Kind kind, exp::Algorithm alg) {
  chaos::ScenarioSpec spec;
  spec.kind = kind;
  spec.algorithm = alg;
  spec.sessions = 4;
  spec.rate_mbps = 150.0;
  spec.horizon = Time::ms(600);
  chaos::SearchOptions opt;
  opt.trials = 60;
  opt.seed = 2026;
  opt.shrink = false;  // soak measures robustness, not repro minimality
  opt.max_failures = opt.trials;
  // Soak the way the CLI runs: every trial in an isolated child, fanned
  // out across cores. The report is byte-identical to a serial run.
  opt.isolate = true;
  opt.jobs = static_cast<int>(
      std::clamp(std::thread::hardware_concurrency(), 1u, 8u));
  return chaos::run_search(spec, opt);
}

class ChaosSoak : public testing::TestWithParam<
                      std::tuple<chaos::ScenarioSpec::Kind, exp::Algorithm>> {};

TEST_P(ChaosSoak, NoStructuralFailuresUnderRandomFaults) {
  const auto [kind, alg] = GetParam();
  const auto report = soak(kind, alg);
  EXPECT_EQ(report.trials_run, 60);
  for (const auto& f : report.failures) {
    // Structural failures are bugs in any algorithm or in the harness.
    EXPECT_NE(f.result.verdict, chaos::Verdict::kWatchdog) << f.result.detail;
    EXPECT_NE(f.result.verdict, chaos::Verdict::kInvariant) << f.result.detail;
    EXPECT_NE(f.result.verdict, chaos::Verdict::kCrash) << f.result.detail;
  }
  if (alg == exp::Algorithm::kPhantom) {
    // The paper's robustness claim, held strictly.
    EXPECT_TRUE(report.clean())
        << report.failures.size() << " failures, first: "
        << chaos::to_string(report.failures.front().result.verdict) << " — "
        << report.failures.front().result.detail << " (plan "
        << report.failures.front().plan.to_spec() << ")";
  }
}

std::string soak_name(
    const testing::TestParamInfo<ChaosSoak::ParamType>& info) {
  return chaos::to_string(std::get<0>(info.param)) + "_" +
         exp::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllScenarios, ChaosSoak,
    testing::Combine(testing::Values(chaos::ScenarioSpec::Kind::kBottleneck,
                                     chaos::ScenarioSpec::Kind::kParking),
                     testing::Values(exp::Algorithm::kPhantom,
                                     exp::Algorithm::kEprca,
                                     exp::Algorithm::kAprc,
                                     exp::Algorithm::kCapc,
                                     exp::Algorithm::kErica)),
    soak_name);

}  // namespace
}  // namespace phantom
