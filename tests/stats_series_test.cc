#include "stats/series.h"

#include <gtest/gtest.h>

#include <vector>

namespace phantom::stats {
namespace {

using sim::Sample;
using sim::Time;

std::vector<Sample> ramp() {
  // 10,20,...,100 at t = 1..10 ms.
  std::vector<Sample> v;
  for (int i = 1; i <= 10; ++i) {
    v.push_back({Time::ms(i), static_cast<double>(i) * 10});
  }
  return v;
}

TEST(SummaryTest, WholeSeries) {
  const auto s = summarize(ramp());
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 55.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.stddev, 28.7228, 1e-3);
}

TEST(SummaryTest, WindowedSelectsInclusiveRange) {
  const auto s = summarize(ramp(), Time::ms(3), Time::ms(5));
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 40.0);
  EXPECT_DOUBLE_EQ(s.min, 30.0);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
}

TEST(SummaryTest, EmptyWindow) {
  const auto s = summarize(ramp(), Time::ms(11), Time::ms(20));
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(ValueAtTest, StepInterpolation) {
  const auto v = ramp();
  EXPECT_DOUBLE_EQ(value_at(v, Time::ms(1)), 10.0);
  EXPECT_DOUBLE_EQ(value_at(v, Time::us(1500)), 10.0);
  EXPECT_DOUBLE_EQ(value_at(v, Time::ms(10)), 100.0);
  EXPECT_DOUBLE_EQ(value_at(v, Time::sec(1)), 100.0);
}

TEST(ValueAtTest, BeforeFirstSampleUsesFallback) {
  const auto v = ramp();
  EXPECT_DOUBLE_EQ(value_at(v, Time::us(500), -7.0), -7.0);
  EXPECT_DOUBLE_EQ(value_at({}, Time::ms(1), 3.0), 3.0);
}

TEST(TimeAverageTest, ConstantSeries) {
  std::vector<Sample> v{{Time::ms(0), 4.0}};
  EXPECT_DOUBLE_EQ(time_average(v, Time::ms(0), Time::ms(10)), 4.0);
}

TEST(TimeAverageTest, StepChangeWeighting) {
  // 0 until 5ms, then 10 until 10ms -> average 5 over [0,10].
  std::vector<Sample> v{{Time::ms(0), 0.0}, {Time::ms(5), 10.0}};
  EXPECT_DOUBLE_EQ(time_average(v, Time::ms(0), Time::ms(10)), 5.0);
  // Over [5,10] it is all 10.
  EXPECT_DOUBLE_EQ(time_average(v, Time::ms(5), Time::ms(10)), 10.0);
  // Over [2.5, 7.5]: half 0, half 10.
  EXPECT_DOUBLE_EQ(time_average(v, Time::us(2500), Time::us(7500)), 5.0);
}

TEST(ConvergenceTimeTest, DetectsSettlingPoint) {
  // Oscillates then settles at 100 from t=6ms.
  std::vector<Sample> v{
      {Time::ms(1), 50},  {Time::ms(2), 160}, {Time::ms(3), 70},
      {Time::ms(4), 130}, {Time::ms(5), 89},  {Time::ms(6), 101},
      {Time::ms(7), 99},  {Time::ms(8), 100}, {Time::ms(20), 100},
  };
  EXPECT_EQ(convergence_time(v, 100.0, 0.05), Time::ms(6));
}

TEST(ConvergenceTimeTest, NeverSettlesReturnsMax) {
  std::vector<Sample> v{{Time::ms(1), 0}, {Time::ms(2), 200}, {Time::ms(3), 0}};
  EXPECT_EQ(convergence_time(v, 100.0, 0.05), Time::max());
}

TEST(ConvergenceTimeTest, MinHoldRejectsLateSettling) {
  std::vector<Sample> v{{Time::ms(1), 0}, {Time::ms(9), 100}, {Time::ms(10), 100}};
  EXPECT_EQ(convergence_time(v, 100.0, 0.05, Time::ms(5)), Time::max());
  EXPECT_EQ(convergence_time(v, 100.0, 0.05, Time::ms(1)), Time::ms(9));
}

TEST(ConvergenceTimeTest, ImmediatelyInsideBand) {
  std::vector<Sample> v{{Time::ms(1), 100}, {Time::ms(2), 100}};
  EXPECT_EQ(convergence_time(v, 100.0, 0.05), Time::ms(1));
}

}  // namespace
}  // namespace phantom::stats
