#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace phantom::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ms(3), [&] { order.push_back(3); });
  q.schedule(Time::ms(1), [&] { order.push_back(1); });
  q.schedule(Time::ms(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimestampsFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::ms(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  q.schedule(Time::ms(7), [] {});
  q.schedule(Time::ms(4), [] {});
  EXPECT_EQ(q.next_time(), Time::ms(4));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(Time::ms(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelHeadExposesNextEvent) {
  EventQueue q;
  const EventId head = q.schedule(Time::ms(1), [] {});
  q.schedule(Time::ms(2), [] {});
  q.cancel(head);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), Time::ms(2));
}

TEST(EventQueueTest, DoubleCancelIsHarmless) {
  EventQueue q;
  const EventId id = q.schedule(Time::ms(1), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue q;
  const EventId id = q.schedule(Time::ms(1), [] {});
  q.pop().callback();
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelInvalidIdIsHarmless) {
  EventQueue q;
  q.cancel(EventId{});
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SizeTracksLiveEventsThroughCancel) {
  EventQueue q;
  const EventId a = q.schedule(Time::ms(1), [] {});
  q.schedule(Time::ms(2), [] {});
  q.schedule(Time::ms(3), [] {});
  EXPECT_EQ(q.size(), 3u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(Time::us(42), [] {});
  EXPECT_EQ(q.pop().time, Time::us(42));
}

TEST(EventQueueTest, SchedulingBeforeLastPopThrows) {
  EventQueue q;
  q.schedule(Time::ms(5), [] {});
  q.pop();
  EXPECT_THROW(q.schedule(Time::ms(2), [] {}), std::logic_error);
  // Exactly at the floor is fine (same-instant follow-up events).
  EXPECT_NO_THROW(q.schedule(Time::ms(5), [] {}));
}

TEST(EventQueueTest, NullCallbackThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule(Time::ms(1), nullptr), std::logic_error);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ManyInterleavedOperationsStayOrdered) {
  EventQueue q;
  std::vector<Time> popped;
  std::vector<EventId> ids;
  for (int i = 100; i > 0; --i) {
    ids.push_back(q.schedule(Time::us(i), [] {}));
  }
  // Cancel every third event.
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  while (!q.empty()) popped.push_back(q.pop().time);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
  EXPECT_EQ(popped.size(), 100u - 34u);
}

// Cancelling must destroy the captured state *now*, not when the
// tombstone eventually reaches the heap top. A chaos run cancels
// timers whose closures pin shared_ptrs to whole subsystems; holding
// them until pop time would stretch lifetimes unpredictably.
TEST(EventQueueTest, CancelReleasesCapturedStateEagerly) {
  EventQueue q;
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  const EventId id = q.schedule(Time::ms(10), [s = std::move(sentinel)] {
    (void)s;
  });
  // Keep an earlier event in front so the cancelled one never becomes
  // the heap top before we check.
  q.schedule(Time::ms(1), [] {});
  EXPECT_FALSE(watch.expired());
  q.cancel(id);
  EXPECT_TRUE(watch.expired()) << "capture must be destroyed at cancel time";
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, PoppedCallbackStateReleasedAfterInvocation) {
  EventQueue q;
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  q.schedule(Time::ms(1), [s = std::move(sentinel)] { (void)s; });
  {
    auto popped = q.pop();
    popped.callback();
    EXPECT_FALSE(watch.expired());  // the popped holder still owns it
  }
  EXPECT_TRUE(watch.expired());
}

// A stale EventId whose slot has been recycled by a newer event must
// not cancel the newcomer (the generation check).
TEST(EventQueueTest, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId old_id = q.schedule(Time::ms(1), [] {});
  q.cancel(old_id);
  // The freed slot is reused by the very next schedule.
  bool fired = false;
  q.schedule(Time::ms(2), [&] { fired = true; });
  q.cancel(old_id);  // stale: same slot, different generation
  ASSERT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, StaleIdSurvivesManyRecycles) {
  EventQueue q;
  std::vector<EventId> stale;
  for (int round = 0; round < 50; ++round) {
    const EventId id = q.schedule(Time::ms(1), [] {});
    for (const EventId& s : stale) q.cancel(s);  // all must be no-ops
    EXPECT_EQ(q.size(), 1u);
    q.cancel(id);
    stale.push_back(id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PeakSizeTracksHighWaterMark) {
  EventQueue q;
  EXPECT_EQ(q.peak_size(), 0u);
  const EventId a = q.schedule(Time::ms(1), [] {});
  q.schedule(Time::ms(2), [] {});
  q.schedule(Time::ms(3), [] {});
  EXPECT_EQ(q.peak_size(), 3u);
  q.cancel(a);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peak_size(), 3u);  // the peak never decays
  q.schedule(Time::ms(4), [] {});
  q.schedule(Time::ms(5), [] {});
  q.schedule(Time::ms(6), [] {});
  EXPECT_EQ(q.peak_size(), 4u);
}

// Zero-delay self-rescheduling at one timestamp must still interleave
// FIFO with other same-time events.
TEST(EventQueueTest, SameTimeRescheduleRunsAfterAlreadyQueuedPeers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ms(1), [&] {
    order.push_back(0);
    q.schedule(Time::ms(1), [&] { order.push_back(2); });
  });
  q.schedule(Time::ms(1), [&] { order.push_back(1); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace phantom::sim
