# Empty compiler generated dependencies file for bench_fig_parking_lot.
# This may be replaced when dependencies are built.
