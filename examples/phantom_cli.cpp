// phantom_cli — scripted scenario runner for the Phantom library.
//
// Usage:
//   phantom_cli [--scenario=bottleneck|parking|onoff|tcp]
//               [--algorithm=phantom|eprca|aprc|capc|erica]
//               [--sessions=N] [--rate-mbps=R] [--duration-ms=D]
//               [--seed=S] [--csv=PREFIX] [--fault-plan=SPEC]
//               [--validate-only]
//               [--adversaries=N] [--adversary-mode=greedy|forge|partial]
//               [--compliance=C] [--policing=off|monitor|tag|drop]
//               [--crm=N] [--cdf=F] [--adtf=MS] [--no-feedback-decay]
//               [--overload] [--buffer-cells=N] [--no-epd] [--mcr-mbps=R]
//               [--perf-report]
//               [--metrics-out=FILE] [--metrics-interval=MS]
//               [--trace-out=FILE] [--trace-jsonl=FILE]
//               [--trace-capacity=N] [--trace-vc=N] [--trace-node=N]
//               [--trace-port=N] [--trace-category=CAT]
//               [--metrics-doc]
//
// Runs the scenario, prints the per-session goodput table, fairness
// index and queue statistics, and (with --csv) writes the fair-share
// and queue time series for external plotting. Exit code 0 on success,
// 2 on bad arguments.
//
// --fault-plan injects scripted faults (ABR scenarios only) and arms the
// invariant monitor; the report then also carries the fault log, any
// invariant violations, and the bottleneck's time-to-reconvergence.
// SPEC grammar (see fault/fault_plan.h): events split on ';', e.g.
//   --fault-plan="outage:trunk0:250:50;restart:trunk0:450"
// --fault-plan=@PATH reads the spec from a file instead; a missing,
// unreadable or empty file is a hard error (exit 2), never a silent
// run with no faults.
//
// --validate-only parses the plan and resolves every target against the
// scenario topology without running the simulation: exit 0 if the plan
// would load, 1 with the parser/validator message (1-based event
// positions) on stderr otherwise.
//
// --adversaries=N makes the last N sessions misbehave per
// --adversary-mode (ER-ignoring greedy, RM-forging, or partially
// compliant with --compliance). --policing arms a per-VC GCRA policer
// at every switch ingress (see atm/policer.h) in the given action mode.
//
// --crm/--cdf/--adtf tune the TM 4.0 feedback-loss backoff (missing-RM
// threshold, cutoff decrease factor, stale-ACR deadline; see
// atm/abr_params.h) for every session; --no-feedback-decay disables the
// backoff entirely — the ablation that shows why it exists. All four
// are accepted by --validate-only (a replayed chaos plan carries the
// same source configuration).
//
// --overload arms overload protection: every switch gets a bounded cell
// memory (frame-aware EPD/PPD discard; --buffer-cells sets the budget,
// --no-epd is the early-discard ablation) and admission control, and the
// report gains refusal/discard counters plus the degradation level.
// --mcr-mbps gives every session that minimum cell rate (booked by CAC,
// protected by the buffer manager). memsqueeze/vcstorm fault plans
// require --overload — --validate-only rejects them without it.
//
// Observability (ABR scenarios; see docs/OPERATIONS.md and
// docs/METRICS.md): --metrics-out snapshots every registered metric at
// the end of the run — one JSON object per snapshot line, or long-format
// CSV when FILE ends in ".csv". --metrics-interval=MS adds a periodic
// snapshot every MS simulated milliseconds to the same file.
// --trace-out writes the structured event log as Chrome trace-event
// JSON (load it in https://ui.perfetto.dev or chrome://tracing);
// --trace-jsonl writes it as one JSON object per event, optionally
// filtered by --trace-vc / --trace-node / --trace-port /
// --trace-category (cell|rm|policer|admission|fault|controller).
// --trace-capacity sizes the event ring (default 65536, rounded up to a
// power of two; once full the oldest events are overwritten).
// --metrics-doc prints the canonical metric reference (the generated
// docs/METRICS.md) and exits without running a scenario.
//
// --perf-report appends kernel statistics after the scenario report:
// events executed, wall-clock, events/sec, the peak pending-event count
// (the event heap's high-water mark) and the inline-callback heap-
// fallback count — nonzero means some model's capture outgrew the
// kernel's inline buffer (see sim/inline_function.h).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "atm/abr_source.h"
#include "atm/policer.h"
#include "chaos/scenario.h"
#include "exp/factories.h"
#include "exp/metrics_doc.h"
#include "exp/probes.h"
#include "exp/report.h"
#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/recovery.h"
#include "tcp/phantom_policies.h"
#include "tcp/tcp_network.h"
#include "topo/abr_network.h"
#include "topo/workload.h"

namespace {

using namespace phantom;
using sim::Rate;
using sim::Time;

struct Args {
  std::string scenario = "bottleneck";
  std::string algorithm = "phantom";
  int sessions = 3;
  double rate_mbps = 150.0;
  double duration_ms = 600.0;
  std::uint64_t seed = 1;
  std::string csv;         // prefix; empty = no dump
  std::string fault_plan;  // fault::FaultPlan::parse spec; empty = none
  bool validate_only = false;        // parse + validate plan, don't run
  int adversaries = 0;               // last N sessions misbehave
  std::string adversary_mode = "greedy";  // greedy | forge | partial
  double compliance = 0.5;           // partial mode: fraction of ER honoured
  std::string policing = "off";      // off | monitor | tag | drop
  int crm = 32;                      // missing-RM threshold (FRMs)
  double cdf = 0.5;                  // cutoff decrease factor per FRM
  double adtf_ms = 250.0;            // stale-ACR deadline
  bool feedback_decay = true;        // --no-feedback-decay ablation
  bool overload = false;             // bounded buffers + admission control
  long buffer_cells = 0;             // per-switch budget; 0 = default
  bool epd = true;                   // --no-epd ablation
  double mcr_mbps = 0.0;             // per-session minimum cell rate
  bool perf_report = false;          // kernel statistics after the run
  std::string metrics_out;           // registry snapshots; ".csv" = CSV
  double metrics_interval_ms = 0.0;  // 0 = final snapshot only
  std::string trace_out;             // Chrome trace-event JSON
  std::string trace_jsonl;           // one JSON object per event
  long trace_capacity = 1 << 16;     // event ring size (rounded to 2^k)
  int trace_vc = -1;                 // JSONL filter axes; -1 / "" = all
  int trace_node = -1;
  int trace_port = -1;
  std::string trace_category;
  bool metrics_doc = false;          // print metric reference and exit

  [[nodiscard]] bool wants_trace() const {
    return !trace_out.empty() || !trace_jsonl.empty();
  }
  [[nodiscard]] bool wants_obs() const {
    return wants_trace() || !metrics_out.empty();
  }
};

/// Kernel statistics for --perf-report. Wall-clock covers simulation
/// execution only (not topology construction or report printing).
class PerfReporter {
 public:
  explicit PerfReporter(const sim::Simulator& sim)
      : sim_{&sim}, start_{std::chrono::steady_clock::now()} {}

  void print() const {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const auto executed = sim_->events_executed();
    std::printf(
        "\nperf: %llu events in %.3f s wall (%.3g events/sec)\n"
        "perf: peak pending events %zu, inline-callback heap fallbacks "
        "%llu\n",
        static_cast<unsigned long long>(executed), wall_s,
        static_cast<double>(executed) / wall_s, sim_->peak_pending_count(),
        static_cast<unsigned long long>(
            sim::EventQueue::Callback::heap_fallbacks()));
  }

 private:
  const sim::Simulator* sim_;
  std::chrono::steady_clock::time_point start_;
};

/// Resolves --fault-plan=@PATH to the file's contents. The file is the
/// authoritative fault schedule: failing to read it must kill the run,
/// not degrade it into a fault-free simulation whose clean report would
/// be mistaken for resilience.
std::optional<std::string> read_fault_plan_file(const std::string& path) {
  if (path.empty()) {
    std::fprintf(stderr, "--fault-plan=@ expects a file path after '@'\n");
    return std::nullopt;
  }
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "cannot read fault plan file '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    std::fprintf(stderr, "error reading fault plan file '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::string spec = contents.str();
  const auto first = spec.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    std::fprintf(stderr, "fault plan file '%s' is empty\n", path.c_str());
    return std::nullopt;
  }
  spec = spec.substr(first, spec.find_last_not_of(" \t\r\n") - first + 1);
  return spec;
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate-only") {  // bare flag
      a.validate_only = true;
      continue;
    }
    if (arg == "--no-feedback-decay") {  // bare flag
      a.feedback_decay = false;
      continue;
    }
    if (arg == "--perf-report") {  // bare flag
      a.perf_report = true;
      continue;
    }
    if (arg == "--overload") {  // bare flag
      a.overload = true;
      continue;
    }
    if (arg == "--no-epd") {  // bare flag
      a.epd = false;
      continue;
    }
    if (arg == "--metrics-doc") {  // bare flag
      a.metrics_doc = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad argument: %s (want --key=value)\n",
                   arg.c_str());
      return std::nullopt;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    try {
      if (key == "scenario") a.scenario = val;
      else if (key == "algorithm") a.algorithm = val;
      else if (key == "sessions") a.sessions = std::stoi(val);
      else if (key == "rate-mbps") a.rate_mbps = std::stod(val);
      else if (key == "duration-ms") a.duration_ms = std::stod(val);
      else if (key == "seed") a.seed = std::stoull(val);
      else if (key == "csv") a.csv = val;
      else if (key == "fault-plan") {
        if (val.empty()) {
          // An empty value must not silently run fault-free.
          std::fprintf(stderr, "--fault-plan needs a spec or @file\n");
          return std::nullopt;
        }
        a.fault_plan = val;
      }
      else if (key == "adversaries") a.adversaries = std::stoi(val);
      else if (key == "adversary-mode") a.adversary_mode = val;
      else if (key == "compliance") a.compliance = std::stod(val);
      else if (key == "policing") a.policing = val;
      else if (key == "crm") a.crm = std::stoi(val);
      else if (key == "cdf") a.cdf = std::stod(val);
      else if (key == "adtf") a.adtf_ms = std::stod(val);
      else if (key == "buffer-cells") {
        a.buffer_cells = std::stol(val);
        if (a.buffer_cells < 1) {
          std::fprintf(stderr, "--buffer-cells must be >= 1\n");
          return std::nullopt;
        }
      }
      else if (key == "mcr-mbps") a.mcr_mbps = std::stod(val);
      else if (key == "metrics-out") a.metrics_out = val;
      else if (key == "metrics-interval") a.metrics_interval_ms = std::stod(val);
      else if (key == "trace-out") a.trace_out = val;
      else if (key == "trace-jsonl") a.trace_jsonl = val;
      else if (key == "trace-capacity") a.trace_capacity = std::stol(val);
      else if (key == "trace-vc") a.trace_vc = std::stoi(val);
      else if (key == "trace-node") a.trace_node = std::stoi(val);
      else if (key == "trace-port") a.trace_port = std::stoi(val);
      else if (key == "trace-category") a.trace_category = val;
      else {
        std::fprintf(stderr, "unknown option: --%s\n", key.c_str());
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: %s\n", key.c_str(),
                   val.c_str());
      return std::nullopt;
    }
  }
  if (a.sessions < 1 || a.rate_mbps <= 0 || a.duration_ms < 50) {
    std::fprintf(stderr, "need sessions >= 1, rate > 0, duration >= 50 ms\n");
    return std::nullopt;
  }
  if (a.adversaries < 0 || a.adversaries > a.sessions) {
    std::fprintf(stderr, "need 0 <= adversaries <= sessions\n");
    return std::nullopt;
  }
  if (a.adversary_mode != "greedy" && a.adversary_mode != "forge" &&
      a.adversary_mode != "partial") {
    std::fprintf(stderr, "unknown adversary mode: %s\n",
                 a.adversary_mode.c_str());
    return std::nullopt;
  }
  if (a.compliance < 0.0 || a.compliance > 1.0) {
    std::fprintf(stderr, "compliance must be in [0, 1]\n");
    return std::nullopt;
  }
  if (a.policing != "off" && a.policing != "monitor" && a.policing != "tag" &&
      a.policing != "drop") {
    std::fprintf(stderr, "unknown policing action: %s\n", a.policing.c_str());
    return std::nullopt;
  }
  if (a.crm < 1 || a.cdf <= 0.0 || a.cdf > 1.0 || a.adtf_ms <= 0.0) {
    std::fprintf(stderr, "need crm >= 1, cdf in (0, 1], adtf > 0 ms\n");
    return std::nullopt;
  }
  if (a.mcr_mbps < 0.0) {
    std::fprintf(stderr, "mcr-mbps must be >= 0\n");
    return std::nullopt;
  }
  if (!a.overload && (a.buffer_cells > 0 || !a.epd)) {
    std::fprintf(stderr, "--buffer-cells and --no-epd need --overload\n");
    return std::nullopt;
  }
  if (a.metrics_interval_ms < 0.0) {
    std::fprintf(stderr, "--metrics-interval must be >= 0 ms\n");
    return std::nullopt;
  }
  if (a.metrics_interval_ms > 0.0 && a.metrics_out.empty()) {
    std::fprintf(stderr, "--metrics-interval needs --metrics-out\n");
    return std::nullopt;
  }
  if (a.trace_capacity < 1) {
    std::fprintf(stderr, "--trace-capacity must be >= 1\n");
    return std::nullopt;
  }
  if ((a.trace_vc >= 0 || a.trace_node >= 0 || a.trace_port >= 0 ||
       !a.trace_category.empty()) &&
      a.trace_jsonl.empty()) {
    std::fprintf(stderr, "--trace-vc/node/port/category filter the\n"
                         "--trace-jsonl export; pass --trace-jsonl=FILE\n");
    return std::nullopt;
  }
  if (!a.trace_category.empty() &&
      !obs::category_from_string(a.trace_category)) {
    std::fprintf(stderr,
                 "unknown trace category: %s (want "
                 "cell|rm|policer|admission|fault|controller)\n",
                 a.trace_category.c_str());
    return std::nullopt;
  }
  if (a.validate_only && a.fault_plan.empty()) {
    std::fprintf(stderr, "--validate-only needs --fault-plan\n");
    return std::nullopt;
  }
  if (!a.fault_plan.empty() && a.fault_plan.front() == '@') {
    const auto spec = read_fault_plan_file(a.fault_plan.substr(1));
    if (!spec) return std::nullopt;
    a.fault_plan = *spec;
  }
  return a;
}

/// Fault machinery armed when --fault-plan is given: the injector, the
/// invariant monitor, and a fair-share sampler on the bottleneck (the
/// trace time-to-reconvergence is computed from).
struct FaultHarness {
  FaultHarness(sim::Simulator& sim, topo::AbrNetwork& net,
               const atm::OutputPort& bottleneck, const fault::FaultPlan& p,
               obs::EventLog* events = nullptr)
      // The plan is applied before the monitor and sampler arm, mirroring
      // chaos::run_trial exactly so chaos-reported schedules replay 1:1.
      // The event log (may be null) attaches before apply() so the
      // kFaultArmed records land in the trace.
      : injector{sim, net},
        monitor{(injector.set_event_log(events), injector.apply(p), sim),
                net},
        share{sim, bottleneck.controller()},
        plan{p} {
    monitor.set_event_log(events);
  }

  fault::FaultInjector injector;
  fault::InvariantMonitor monitor;
  exp::FairShareSampler share;
  fault::FaultPlan plan;
};

/// Writes `content` to `path` (binary, whole file). Failing to write a
/// requested artifact is a hard error, not a warning — an operator
/// piping --trace-out into a dashboard must not get a silent no-op.
bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  if (!out.good()) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Writes registry snapshots to the --metrics-out file: a final
/// snapshot always (finish()), plus one every --metrics-interval
/// simulated milliseconds when set. A ".csv" path selects long-format
/// CSV (one header, every snapshot appends rows); any other path gets
/// one JSON snapshot object per line.
class MetricsDumper {
 public:
  MetricsDumper(sim::Simulator& sim, const obs::Registry& reg,
                const std::string& path, double interval_ms)
      : sim_{&sim},
        reg_{&reg},
        csv_{path.size() >= 4 &&
             path.compare(path.size() - 4, 4, ".csv") == 0},
        out_{path, std::ios::binary} {
    if (!out_) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    if (csv_) out_ << obs::Registry::csv_header();
    if (interval_ms > 0.0) {
      period_ = Time::from_seconds(interval_ms / 1e3);
      sim_->schedule(period_, [this] { tick(); });
    }
  }

  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  [[nodiscard]] bool ok() const { return out_.good(); }
  void finish() { snapshot(); }

 private:
  void tick() {
    snapshot();
    sim_->schedule(period_, [this] { tick(); });
  }
  void snapshot() {
    if (!out_) return;
    if (csv_) {
      out_ << reg_->snapshot_csv(sim_->now());
    } else {
      out_ << reg_->snapshot_json(sim_->now()) << '\n';
    }
  }

  sim::Simulator* sim_;
  const obs::Registry* reg_;
  bool csv_;
  std::ofstream out_;
  Time period_ = Time::zero();
};

void report_faults(const FaultHarness& h) {
  exp::print_fault_log(h.injector.log());
  exp::print_violations(h.monitor);
  // Reconvergence: back to the pre-fault operating point (mean fair
  // share over the half-window before the first fault) within 10%.
  const sim::Time first = h.plan.first_fault_time();
  const double target =
      stats::mean_in_window(h.share.trace().samples(), first * 0.5, first);
  const auto latency =
      stats::time_to_reconverge(h.share.trace().samples(), first, target);
  if (latency) {
    std::printf(
        "reconverged to pre-fault share (%.2f Mb/s +/- 10%%) %.3f ms after "
        "first fault\n",
        target * 1e-6, latency->milliseconds());
  } else {
    std::printf("did NOT reconverge to pre-fault share (%.2f Mb/s +/- 10%%)\n",
                target * 1e-6);
  }
}

void report_abr(sim::Simulator& sim, topo::AbrNetwork& net,
                atm::OutputPort& bottleneck, const Args& args,
                const sim::Trace& queue_trace,
                const FaultHarness* faults = nullptr) {
  exp::GoodputProbe probe{sim, net};
  const Time horizon = Time::from_seconds(args.duration_ms / 1e3);
  sim.run_until(horizon * 0.6);
  probe.mark();
  sim.run_until(horizon);

  const auto rates = probe.rates_mbps();
  exp::Table table{{"session", "goodput (Mb/s)"}};
  for (std::size_t s = 0; s < rates.size(); ++s) {
    table.add_row({std::to_string(s), exp::Table::num(rates[s])});
  }
  table.print();
  std::printf(
      "\nJain %.4f | total %.2f Mb/s | fair-share estimate %.2f Mb/s\n"
      "queue: now %zu, max %zu cells, drops %llu\n",
      stats::jain_index(rates), probe.total_mbps(),
      bottleneck.controller().fair_share().mbits_per_sec(),
      bottleneck.queue_length(), bottleneck.max_queue_length(),
      static_cast<unsigned long long>(bottleneck.cells_dropped()));
  if (faults != nullptr) {
    std::printf("cells lost on links: %llu\n",
                static_cast<unsigned long long>(net.total_cells_lost()));
    report_faults(*faults);
  }
  if (!args.csv.empty()) {
    exp::write_series_csv(args.csv + "_queue.csv", queue_trace.samples());
    std::printf("wrote %s_queue.csv\n", args.csv.c_str());
    if (faults != nullptr) {
      exp::write_series_csv(args.csv + "_share.csv",
                            faults->share.trace().samples(), 1e-6);
      std::printf("wrote %s_share.csv\n", args.csv.c_str());
    }
  }
}

int run_abr_scenario(const Args& args, exp::Algorithm alg) {
  // "onoff" is the bottleneck topology plus an OnOffDriver on the last
  // session; everything else maps straight onto a chaos scenario.
  chaos::ScenarioSpec spec;
  if (args.scenario == "onoff") {
    spec.kind = chaos::ScenarioSpec::Kind::kBottleneck;
  } else if (const auto kind = chaos::kind_from_string(args.scenario)) {
    spec.kind = *kind;
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", args.scenario.c_str());
    return 2;
  }
  spec.algorithm = alg;
  spec.sessions = args.sessions;
  spec.rate_mbps = args.rate_mbps;
  spec.horizon = Time::from_seconds(args.duration_ms / 1e3);
  spec.abr_params.crm = args.crm;
  spec.abr_params.cdf = args.cdf;
  spec.abr_params.adtf = Time::from_seconds(args.adtf_ms / 1e3);
  spec.abr_params.feedback_decay = args.feedback_decay;
  if (args.mcr_mbps > 0.0) spec.abr_params.mcr = Rate::mbps(args.mcr_mbps);
  spec.overload = args.overload;
  if (args.buffer_cells > 0) {
    spec.overload_options.buffer.budget_cells =
        static_cast<std::size_t>(args.buffer_cells);
  }
  spec.overload_options.buffer.epd = args.epd;

  if (args.validate_only) {
    // Dry run: parse the plan and resolve every target against the real
    // topology (eager validation), but never start the clock. Exit 0
    // iff the plan would load; errors keep their 1-based positions.
    try {
      const fault::FaultPlan p = fault::FaultPlan::parse(args.fault_plan);
      sim::Simulator sim{args.seed};
      topo::AbrNetwork net{sim, spec.factory()};
      chaos::build_topology(spec, net);
      fault::FaultInjector injector{sim, net};
      injector.apply(p, fault::FaultInjector::ValidateMode::kEager);
      std::printf("fault plan OK: %zu event%s\n", p.events.size(),
                  p.events.size() == 1 ? "" : "s");
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  std::optional<fault::FaultPlan> plan;
  if (!args.fault_plan.empty()) {
    try {
      plan = fault::FaultPlan::parse(args.fault_plan);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  sim::Simulator sim{args.seed};
  topo::AbrNetwork net{sim, spec.factory()};
  atm::OutputPort& bottleneck = chaos::build_topology(spec, net);

  std::optional<obs::EventLog> events;
  if (args.wants_trace()) {
    if (!obs::kObsEnabled) {
      std::fprintf(stderr,
                   "note: built with PHANTOM_DISABLE_OBS — traces will "
                   "contain no events\n");
    }
    events.emplace(static_cast<std::size_t>(args.trace_capacity));
    net.attach_event_log(&*events);
  }

  if (args.adversaries > 0) {
    // The last N sessions turn hostile; compliant ones keep low indices
    // so their goodput rows are easy to eyeball in the table.
    const auto mode = args.adversary_mode == "greedy"
                          ? atm::SourceBehavior::kGreedy
                          : args.adversary_mode == "forge"
                                ? atm::SourceBehavior::kForging
                                : atm::SourceBehavior::kPartial;
    for (int i = 0; i < args.adversaries; ++i) {
      net.set_session_behavior(
          static_cast<std::size_t>(args.sessions - 1 - i), mode,
          args.compliance);
    }
  }
  if (args.policing != "off") {
    atm::PolicerConfig pc;
    pc.action = args.policing == "monitor" ? atm::PolicingAction::kMonitor
                : args.policing == "tag"   ? atm::PolicingAction::kTag
                                           : atm::PolicingAction::kDrop;
    net.enable_policing(pc);
  }

  std::optional<FaultHarness> faults;
  if (plan) {
    try {
      faults.emplace(sim, net, bottleneck, *plan, events ? &*events : nullptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  // The registry samples by callback, so it registers after everything
  // that owns metrics exists (policers, buffer managers, the injector).
  obs::Registry registry;
  std::optional<MetricsDumper> metrics;
  if (!args.metrics_out.empty()) {
    net.register_metrics(registry);
    if (faults) faults->injector.register_metrics(registry, "fault");
    metrics.emplace(sim, registry, args.metrics_out,
                    args.metrics_interval_ms);
    if (!metrics->ok()) return 2;
  }
  exp::QueueSampler queue{sim, bottleneck};
  std::optional<topo::OnOffDriver> driver;
  if (args.scenario == "onoff") {
    topo::OnOffDriver::Options opt;  // last session toggles
    opt.first_toggle = Time::ms(60);
    driver.emplace(sim, net.source(static_cast<std::size_t>(args.sessions) - 1),
                   opt);
  }
  std::optional<PerfReporter> perf;
  if (args.perf_report) perf.emplace(sim);
  net.start_all(Time::zero(), Time::zero());

  const std::string detail =
      spec.kind == chaos::ScenarioSpec::Kind::kParking
          ? exp::to_string(alg) + ", " +
                std::to_string(std::max(2, args.sessions - 1)) + " hops"
          : exp::to_string(alg) + ", " + std::to_string(args.sessions) +
                " sessions @ " + exp::Table::num(args.rate_mbps, 0) + " Mb/s";
  exp::print_header("cli:" + args.scenario, detail);
  report_abr(sim, net, bottleneck, args, queue.trace(),
             faults ? &*faults : nullptr);
  if (!args.feedback_decay) {
    std::printf("feedback-loss decay: DISABLED (ablation)\n");
  }
  if (args.adversaries > 0) {
    std::printf("adversaries: %d (%s", args.adversaries,
                args.adversary_mode.c_str());
    if (args.adversary_mode == "partial") {
      std::printf(", compliance %.2f", args.compliance);
    }
    std::printf("), rm cells sanitized %llu\n",
                static_cast<unsigned long long>(net.rm_cells_sanitized()));
  }
  if (args.policing != "off") {
    std::uint64_t checked = 0, nonconforming = 0, tagged = 0, dropped = 0;
    for (std::size_t s = 0; s < net.num_switches(); ++s) {
      const atm::Policer* p = net.node(s).policer();
      if (p == nullptr) continue;
      checked += p->cells_checked();
      nonconforming += p->cells_nonconforming();
      tagged += p->cells_tagged();
      dropped += p->cells_dropped();
    }
    std::printf(
        "policing (%s): checked %llu, violations %llu (%.2f%%), tagged %llu, "
        "dropped %llu\n",
        args.policing.c_str(), static_cast<unsigned long long>(checked),
        static_cast<unsigned long long>(nonconforming),
        checked > 0 ? 100.0 * static_cast<double>(nonconforming) /
                          static_cast<double>(checked)
                    : 0.0,
        static_cast<unsigned long long>(tagged),
        static_cast<unsigned long long>(dropped));
  }
  if (args.overload) {
    const atm::CacCounters cac = net.cac_totals();
    std::printf(
        "admission: admitted %llu, refused %llu (vc-limit %llu, "
        "mcr-budget %llu, buffer %llu, pressure %llu)\n",
        static_cast<unsigned long long>(cac.admitted),
        static_cast<unsigned long long>(cac.refused_total()),
        static_cast<unsigned long long>(cac.refused_vc_limit),
        static_cast<unsigned long long>(cac.refused_mcr_budget),
        static_cast<unsigned long long>(cac.refused_buffer),
        static_cast<unsigned long long>(cac.refused_pressure));
    std::size_t peak = 0;
    auto worst = atm::DegradationLevel::kNormal;
    for (std::size_t s = 0; s < net.num_switches(); ++s) {
      const atm::BufferManager* bm = net.node(s).buffer_manager();
      if (bm == nullptr) continue;
      peak += bm->peak_cells_in_use();
      worst = std::max(worst, bm->worst_level());
    }
    std::printf(
        "buffers: in use %zu cells (peak %zu), epd frames %llu, "
        "ppd cells %llu, shed %llu, overflow %llu, worst level %s\n",
        net.buffer_cells_in_use(), peak,
        static_cast<unsigned long long>(net.epd_frames_discarded()),
        static_cast<unsigned long long>(net.cells_ppd_discarded()),
        static_cast<unsigned long long>(net.cells_shed()),
        static_cast<unsigned long long>(net.buffer_overflow_drops()),
        atm::to_string(worst).c_str());
  }
  if (perf) perf->print();
  if (metrics) {
    metrics->finish();
    std::printf("wrote %s (metrics)\n", args.metrics_out.c_str());
  }
  if (events) {
    if (!args.trace_out.empty()) {
      if (!write_file(args.trace_out, events->to_chrome_trace())) return 2;
      std::printf("wrote %s (chrome trace)\n", args.trace_out.c_str());
    }
    if (!args.trace_jsonl.empty()) {
      obs::EventLog::Filter f;
      if (args.trace_vc >= 0) f.vc = args.trace_vc;
      if (args.trace_node >= 0) {
        f.node = static_cast<std::int16_t>(args.trace_node);
      }
      if (args.trace_port >= 0) {
        f.port = static_cast<std::int16_t>(args.trace_port);
      }
      if (!args.trace_category.empty()) {
        f.category = obs::category_from_string(args.trace_category);
      }
      if (!write_file(args.trace_jsonl, events->to_jsonl(f))) return 2;
      std::printf("wrote %s (event jsonl)\n", args.trace_jsonl.c_str());
    }
    std::printf("trace: %llu events recorded, %llu overwritten (ring %zu)\n",
                static_cast<unsigned long long>(events->recorded()),
                static_cast<unsigned long long>(events->overwritten()),
                events->capacity());
  }
  return 0;
}

int run_tcp_scenario(const Args& args) {
  sim::Simulator sim{args.seed};
  std::optional<PerfReporter> perf;
  if (args.perf_report) perf.emplace(sim);
  tcp::TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  tcp::TcpTrunkOptions opts;
  opts.rate = Rate::mbps(args.rate_mbps);
  opts.queue_limit = 60;
  if (args.algorithm == "phantom") {
    // Factor 10: the upper end of the bench's uf sweep, the most robust
    // setting for small flow counts (see EXPERIMENTS.md, Ablation D).
    opts.policy = [](sim::Simulator& s, Rate rate) {
      return std::make_unique<tcp::SelectiveDiscardPolicy>(s, rate, 10.0);
    };
  }
  const auto sink = net.add_sink_node(r, opts);
  for (int i = 0; i < args.sessions; ++i) {
    // Geometric RTT spread (6, 12, 24, ... ms), the paper-style
    // heterogeneous mix.
    net.add_flow(r, {}, sink, tcp::RenoConfig{}, Rate::mbps(100),
                 Time::ms(3 * (std::int64_t{1} << std::min(i, 4))));
  }
  net.start_all(Time::zero(), Time::ms(73));

  const Time horizon = Time::from_seconds(args.duration_ms / 1e3);
  sim.run_until(horizon * 0.3);
  std::vector<std::int64_t> base;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    base.push_back(net.delivered_bytes(f));
  }
  sim.run_until(horizon);

  exp::print_header(
      "cli:tcp", std::string{"Reno over "} +
                     (opts.policy ? "selective discard" : "drop-tail") +
                     ", " + std::to_string(args.sessions) + " flows");
  exp::Table table{{"flow", "goodput (Mb/s)"}};
  std::vector<double> rates;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    rates.push_back(static_cast<double>(net.delivered_bytes(f) - base[f]) * 8 /
                    (horizon * 0.7).seconds() / 1e6);
    table.add_row({std::to_string(f), exp::Table::num(rates.back())});
  }
  table.print();
  std::printf("\nJain %.4f | max queue %zu packets | drops %llu\n",
              stats::jain_index(rates), net.sink_port(sink).max_queue_length(),
              static_cast<unsigned long long>(
                  net.sink_port(sink).packets_dropped()));
  if (perf) perf->print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return 2;
  if (args->metrics_doc) {
    // Reference mode: print the canonical metric table (the generated
    // docs/METRICS.md) and exit without running a scenario.
    std::fputs(exp::metrics_reference_markdown().c_str(), stdout);
    return 0;
  }
  if (args->scenario == "tcp") {
    if (!args->fault_plan.empty()) {
      std::fprintf(stderr, "--fault-plan requires an ABR scenario\n");
      return 2;
    }
    if (args->wants_obs()) {
      std::fprintf(stderr,
                   "--metrics-out/--trace-* require an ABR scenario\n");
      return 2;
    }
    return run_tcp_scenario(*args);
  }
  const auto alg = exp::algorithm_from_string(args->algorithm);
  if (!alg) {
    std::fprintf(stderr, "unknown algorithm: %s\n", args->algorithm.c_str());
    return 2;
  }
  return run_abr_scenario(*args, *alg);
}
