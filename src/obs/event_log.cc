#include "obs/event_log.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace phantom::obs {
namespace {

/// Smallest power of two >= n (and >= 16: a flight recorder smaller
/// than that records nothing useful).
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

/// Microseconds with nanosecond precision — the Chrome trace `ts` unit.
void append_ts_us(std::string& out, sim::Time t) {
  const std::int64_t ns = t.nanoseconds();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out += buf;
}

/// Whether an event belongs on the per-VC track rather than its port's.
bool vc_scoped(const Event& e) {
  switch (e.kind) {
    case EventKind::kRmForward:
    case EventKind::kRmBackward:
    case EventKind::kPolicerVerdict:
    case EventKind::kCacRefusal:
    case EventKind::kSourceRate:
      return e.vc >= 0;
    default:
      return false;
  }
}

/// The pid of the synthetic "VC sessions" process in the Chrome trace
/// (real switch nodes are int16, so this can never collide).
constexpr std::int64_t kVcPid = 100'000;

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCellEnqueue:    return "cell_enqueue";
    case EventKind::kCellDrop:       return "cell_drop";
    case EventKind::kRmForward:      return "rm_forward";
    case EventKind::kRmBackward:     return "rm_backward";
    case EventKind::kPolicerVerdict: return "policer_verdict";
    case EventKind::kCacRefusal:     return "cac_refusal";
    case EventKind::kFaultArmed:     return "fault_armed";
    case EventKind::kFaultFired:     return "fault_fired";
    case EventKind::kFaultRecovered: return "fault_recovered";
    case EventKind::kRateUpdate:     return "rate_update";
    case EventKind::kSourceRate:     return "source_rate";
  }
  return "unknown";
}

const char* to_string(Category cat) {
  switch (cat) {
    case Category::kCell:       return "cell";
    case Category::kRm:         return "rm";
    case Category::kPolicer:    return "policer";
    case Category::kAdmission:  return "admission";
    case Category::kFault:      return "fault";
    case Category::kController: return "controller";
  }
  return "unknown";
}

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kQueueLimit:     return "queue_limit";
    case DropReason::kClpThreshold:   return "clp_threshold";
    case DropReason::kBufferOverflow: return "buffer_overflow";
    case DropReason::kBufferEpd:      return "epd";
    case DropReason::kBufferPpd:      return "ppd";
    case DropReason::kBufferShed:     return "shed";
  }
  return "unknown";
}

std::optional<Category> category_from_string(std::string_view name) {
  for (const Category c :
       {Category::kCell, Category::kRm, Category::kPolicer,
        Category::kAdmission, Category::kFault, Category::kController}) {
    if (name == to_string(c)) return c;
  }
  return std::nullopt;
}

Category category_of(EventKind kind) {
  switch (kind) {
    case EventKind::kCellEnqueue:
    case EventKind::kCellDrop:
      return Category::kCell;
    case EventKind::kRmForward:
    case EventKind::kRmBackward:
      return Category::kRm;
    case EventKind::kPolicerVerdict:
      return Category::kPolicer;
    case EventKind::kCacRefusal:
      return Category::kAdmission;
    case EventKind::kFaultArmed:
    case EventKind::kFaultFired:
    case EventKind::kFaultRecovered:
      return Category::kFault;
    case EventKind::kRateUpdate:
    case EventKind::kSourceRate:
      return Category::kController;
  }
  return Category::kCell;
}

EventLog::EventLog(std::size_t capacity)
    : ring_(round_up_pow2(capacity)), mask_{ring_.size() - 1} {
  labels_.emplace_back();  // id 0 = no label
}

std::uint16_t EventLog::intern(std::string_view label) {
  const auto it = label_ids_.find(std::string{label});
  if (it != label_ids_.end()) return it->second;
  if (labels_.size() > 0xFFFF) return 0;  // table full: drop the label
  const auto id = static_cast<std::uint16_t>(labels_.size());
  labels_.emplace_back(label);
  label_ids_.emplace(labels_.back(), id);
  return id;
}

const std::string& EventLog::label(std::uint16_t id) const {
  return id < labels_.size() ? labels_[id] : labels_[0];
}

void EventLog::set_node_name(std::int16_t node, std::string name) {
  node_names_[node] = std::move(name);
}

void EventLog::clear() { head_ = 0; }

std::string EventLog::event_json(const Event& e) const {
  std::string out;
  out.reserve(160);
  out += "{\"t_ns\":";
  append_i64(out, e.time.nanoseconds());
  out += ",\"kind\":\"";
  out += to_string(e.kind);
  out += "\",\"cat\":\"";
  out += to_string(category_of(e.kind));
  out += '"';
  if (e.node >= 0) {
    out += ",\"node\":";
    append_i64(out, e.node);
  }
  if (e.port >= 0) {
    out += ",\"port\":";
    append_i64(out, e.port);
  }
  if (e.vc >= 0) {
    out += ",\"vc\":";
    append_i64(out, e.vc);
  }
  switch (e.kind) {
    case EventKind::kCellEnqueue:
      out += ",\"queue_cells\":";
      append_double(out, e.a);
      break;
    case EventKind::kCellDrop:
      out += ",\"reason\":\"";
      out += to_string(static_cast<DropReason>(e.detail));
      out += "\",\"queue_cells\":";
      append_double(out, e.a);
      break;
    case EventKind::kRmForward:
    case EventKind::kRmBackward:
      out += ",\"er_mbps\":";
      append_double(out, e.a);
      out += ",\"ccr_mbps\":";
      append_double(out, e.b);
      out += ",\"fair_share_mbps\":";
      append_double(out, e.c);
      break;
    case EventKind::kPolicerVerdict:
      out += ",\"verdict\":\"";
      out += e.detail == 2 ? "drop" : "tag";
      out += '"';
      break;
    case EventKind::kCacRefusal:
      out += ",\"reason_code\":";
      append_u64(out, e.detail);
      out += ",\"mcr_mbps\":";
      append_double(out, e.a);
      break;
    case EventKind::kFaultArmed:
    case EventKind::kFaultFired:
    case EventKind::kFaultRecovered:
      out += ",\"what\":\"";
      append_escaped(out, label(e.label));
      out += '"';
      break;
    case EventKind::kRateUpdate:
      out += ",\"fair_share_mbps\":";
      append_double(out, e.a);
      break;
    case EventKind::kSourceRate:
      out += ",\"acr_mbps\":";
      append_double(out, e.a);
      break;
  }
  out += '}';
  return out;
}

std::string EventLog::to_jsonl(const Filter& filter) const {
  std::string out;
  for_each([&](const Event& e) {
    if (!filter.matches(e)) return;
    out += event_json(e);
    out += '\n';
  });
  return out;
}

std::vector<std::string> EventLog::tail_jsonl(std::size_t n,
                                              const Filter& filter) const {
  std::vector<std::string> lines;
  for_each([&](const Event& e) {
    if (filter.matches(e)) lines.push_back(event_json(e));
  });
  if (lines.size() > n) lines.erase(lines.begin(), lines.end() - n);
  return lines;
}

std::string EventLog::to_chrome_trace() const {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& obj) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += obj;
  };

  // Track metadata first: name every process/thread a held event uses.
  std::set<std::int16_t> nodes;
  std::map<std::int16_t, std::set<std::int16_t>> ports;
  std::set<std::int32_t> vcs;
  for_each([&](const Event& e) {
    if (vc_scoped(e)) {
      vcs.insert(e.vc);
      return;
    }
    const std::int16_t node = e.node >= 0 ? e.node : std::int16_t{0};
    nodes.insert(node);
    ports[node].insert(e.port >= 0 ? e.port : std::int16_t{0});
  });
  for (const std::int16_t node : nodes) {
    std::string meta = "{\"ph\":\"M\",\"pid\":";
    append_i64(meta, node);
    meta += ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    const auto it = node_names_.find(node);
    if (it != node_names_.end()) {
      append_escaped(meta, it->second);
    } else {
      meta += "node";
      append_i64(meta, node);
    }
    meta += "\"}}";
    emit(meta);
    for (const std::int16_t port : ports[node]) {
      std::string tmeta = "{\"ph\":\"M\",\"pid\":";
      append_i64(tmeta, node);
      tmeta += ",\"tid\":";
      append_i64(tmeta, port);
      tmeta += ",\"name\":\"thread_name\",\"args\":{\"name\":\"port";
      append_i64(tmeta, port);
      tmeta += "\"}}";
      emit(tmeta);
    }
  }
  if (!vcs.empty()) {
    std::string meta = "{\"ph\":\"M\",\"pid\":";
    append_i64(meta, kVcPid);
    meta += ",\"name\":\"process_name\",\"args\":{\"name\":\"VC sessions\"}}";
    emit(meta);
    for (const std::int32_t vc : vcs) {
      std::string tmeta = "{\"ph\":\"M\",\"pid\":";
      append_i64(tmeta, kVcPid);
      tmeta += ",\"tid\":";
      append_i64(tmeta, vc);
      tmeta += ",\"name\":\"thread_name\",\"args\":{\"name\":\"vc";
      append_i64(tmeta, vc);
      tmeta += "\"}}";
      emit(tmeta);
    }
  }

  for_each([&](const Event& e) {
    std::string obj = "{\"ph\":\"";
    const bool counter =
        e.kind == EventKind::kRateUpdate || e.kind == EventKind::kSourceRate;
    obj += counter ? "C" : "i";
    obj += "\",\"pid\":";
    if (vc_scoped(e)) {
      append_i64(obj, kVcPid);
      obj += ",\"tid\":";
      append_i64(obj, e.vc);
    } else {
      append_i64(obj, e.node >= 0 ? e.node : 0);
      obj += ",\"tid\":";
      append_i64(obj, e.port >= 0 ? e.port : 0);
    }
    obj += ",\"ts\":";
    append_ts_us(obj, e.time);
    obj += ",\"cat\":\"";
    obj += to_string(category_of(e.kind));
    obj += "\",\"name\":\"";
    if (e.kind == EventKind::kRateUpdate) {
      // Distinct counter series per port: Chrome keys counters by
      // (pid, name), and every controlled port has its own fair share.
      obj += "fair_share.port";
      append_i64(obj, e.port >= 0 ? e.port : 0);
      obj += "\",\"args\":{\"mbps\":";
      append_double(obj, e.a);
      obj += "}}";
    } else if (e.kind == EventKind::kSourceRate) {
      obj += "acr.vc";
      append_i64(obj, e.vc >= 0 ? e.vc : 0);
      obj += "\",\"args\":{\"mbps\":";
      append_double(obj, e.a);
      obj += "}}";
    } else {
      obj += to_string(e.kind);
      obj += "\",\"s\":\"t\",\"args\":";
      // The JSONL object doubles as the instant's args payload.
      obj += event_json(e);
      obj += '}';
    }
    emit(obj);
  });
  out += "\n]}\n";
  return out;
}

}  // namespace phantom::obs
