file(REMOVE_RECURSE
  "CMakeFiles/background_traffic.dir/background_traffic.cpp.o"
  "CMakeFiles/background_traffic.dir/background_traffic.cpp.o.d"
  "background_traffic"
  "background_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
