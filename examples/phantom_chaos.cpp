// phantom_chaos — randomized fault-schedule search with automatic
// shrinking.
//
// Usage:
//   phantom_chaos [--scenario=bottleneck|parking]
//                 [--algorithm=phantom|eprca|aprc|capc|erica]
//                 [--sessions=N] [--rate-mbps=R] [--duration-ms=D]
//                 [--trials=T] [--seed=S] [--max-faults=K]
//                 [--max-failures=F] [--shrink=0|1] [--json=PATH]
//                 [--isolate|--no-isolate] [--jobs=N] [--timeout-ms=T]
//                 [--resume=PATH] [--misbehave=0|1] [--rm-blackhole=0|1]
//                 [--overload=0|1]
//
// Generates T randomized fault schedules for the scenario, runs each
// under a watchdog (event/sim-time budgets, livelock detection), and
// judges it against three oracles: invariant violations, reconvergence
// deadlines, and a differential check against the fault-free run of the
// same seed. Failures are delta-debugged to a minimal schedule that
// replays under `phantom_cli --fault-plan=...`, then triaged into
// unique failure classes.
//
// Isolation is on by default: each trial (and each shrink probe) runs
// in a forked, rlimited child, so a SIGSEGV / assert / sanitizer abort
// / OOM in the system under test becomes a structured process-crash
// failure instead of killing the search. --jobs=N runs N children
// concurrently; --timeout-ms sets the per-trial wall-clock kill
// deadline; --resume=PATH checkpoints completed trials to a JSONL file
// and, when the file already exists for the same search, resumes from
// it. Ctrl-C drains gracefully: in-flight trials finish, the
// checkpoint stays consistent, and a partial report is printed.
//
// The report is a pure function of (scenario flags, seed): the same
// seed produces a byte-identical JSON report at any --jobs value, and
// — for crash-free scenarios — with or without isolation. --json=-
// writes JSON to stdout; any other path writes a file. Exit code 0
// when every trial passed, 1 when failures were found, 2 on bad
// arguments, 130 when interrupted.
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "chaos/search.h"

namespace {

using namespace phantom;

struct Args {
  chaos::ScenarioSpec spec;
  chaos::SearchOptions search;
  std::string json;  // empty = no JSON; "-" = stdout
};

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  a.search.isolate = true;  // crash containment is the CLI's default
  double duration_ms = a.spec.horizon.milliseconds();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--isolate" || arg == "--no-isolate") {
      a.search.isolate = arg == "--isolate";
      continue;
    }
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad argument: %s (want --key=value)\n",
                   arg.c_str());
      return std::nullopt;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string val = arg.substr(eq + 1);
    try {
      if (key == "scenario") {
        const auto kind = chaos::kind_from_string(val);
        if (!kind) {
          std::fprintf(stderr, "unknown scenario: %s\n", val.c_str());
          return std::nullopt;
        }
        a.spec.kind = *kind;
      } else if (key == "algorithm") {
        const auto alg = exp::algorithm_from_string(val);
        if (!alg) {
          std::fprintf(stderr, "unknown algorithm: %s\n", val.c_str());
          return std::nullopt;
        }
        a.spec.algorithm = *alg;
      } else if (key == "sessions") a.spec.sessions = std::stoi(val);
      else if (key == "rate-mbps") a.spec.rate_mbps = std::stod(val);
      else if (key == "duration-ms") duration_ms = std::stod(val);
      else if (key == "trials") a.search.trials = std::stoi(val);
      else if (key == "seed") a.search.seed = std::stoull(val);
      else if (key == "max-faults") a.search.gen.max_events = std::stoi(val);
      else if (key == "max-failures") a.search.max_failures = std::stoi(val);
      else if (key == "shrink") a.search.shrink = std::stoi(val) != 0;
      else if (key == "json") a.json = val;
      else if (key == "jobs") a.search.jobs = std::stoi(val);
      else if (key == "isolate") a.search.isolate = std::stoi(val) != 0;
      else if (key == "timeout-ms") a.search.isolation.timeout_ms = std::stoll(val);
      else if (key == "resume") a.search.checkpoint = val;
      // Opt-in so historical seeds/checkpoints keep their schedules:
      // adds misbehave/comply pairs to the generated fault grammar.
      else if (key == "misbehave") a.search.gen.misbehave = std::stoi(val) != 0;
      // Opt-in for the same reason: adds directional feedback-blackhole
      // windows (backward RM loss with paired recovery).
      else if (key == "rm-blackhole") {
        a.search.gen.rm_blackhole = std::stoi(val) != 0;
      }
      // Opt-in resource-exhaustion faults: arms the scenario's overload
      // protection (bounded buffers + CAC) and adds memsqueeze/vcstorm
      // windows to the generated grammar.
      else if (key == "overload") {
        a.spec.overload = std::stoi(val) != 0;
        a.search.gen.overload = a.spec.overload;
      }
      else {
        std::fprintf(stderr, "unknown option: --%s\n", key.c_str());
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value for --%s: %s\n", key.c_str(),
                   val.c_str());
      return std::nullopt;
    }
  }
  a.spec.horizon = sim::Time::from_seconds(duration_ms / 1e3);
  if (a.spec.sessions < 1 || a.spec.rate_mbps <= 0 || a.search.trials < 1 ||
      a.search.gen.max_events < 1 || a.search.max_failures < 1 ||
      a.search.jobs < 1) {
    std::fprintf(stderr,
                 "need sessions >= 1, rate > 0, trials >= 1, "
                 "max-faults >= 1, max-failures >= 1, jobs >= 1\n");
    return std::nullopt;
  }
  if (!a.search.isolate && (a.search.jobs > 1 || !a.search.checkpoint.empty())) {
    std::fprintf(stderr,
                 "--jobs and --resume need process isolation "
                 "(drop --no-isolate)\n");
    return std::nullopt;
  }
  return a;
}

void print_summary(const chaos::SearchReport& report) {
  std::printf("chaos: %s/%s, %d sessions @ %.0f Mb/s, horizon %.0f ms\n",
              chaos::to_string(report.spec.kind).c_str(),
              exp::to_string(report.spec.algorithm).c_str(),
              report.spec.sessions, report.spec.rate_mbps,
              report.spec.horizon.milliseconds());
  std::printf("seed %llu | baseline share %.2f Mb/s | %d trials, %d passed, "
              "%zu failed\n",
              static_cast<unsigned long long>(report.options.seed),
              report.baseline_share_mbps, report.trials_run, report.passed,
              report.failures.size());
  if (report.resumed > 0) {
    std::printf("resumed %d completed trial%s from the checkpoint\n",
                report.resumed, report.resumed == 1 ? "" : "s");
  }
  for (const auto& f : report.failures) {
    std::printf("\nFAILURE (trial %d): %s\n  %s\n", f.trial,
                chaos::to_string(f.result.verdict), f.result.detail.c_str());
    if (f.result.verdict == chaos::Verdict::kProcessCrash &&
        !f.result.stderr_tail.empty()) {
      std::printf("  stderr tail:\n");
      const std::string& tail = f.result.stderr_tail;
      std::size_t start = 0;
      while (start < tail.size()) {
        std::size_t end = tail.find('\n', start);
        if (end == std::string::npos) end = tail.size();
        std::printf("    %.*s\n", static_cast<int>(end - start),
                    tail.data() + start);
        start = end + 1;
      }
    }
    std::printf("  plan:      %s\n", f.plan.to_spec().c_str());
    std::printf("  minimized: %s  (%zu of %zu events, %d probes)\n",
                f.shrunk_plan.to_spec().c_str(), f.shrunk_plan.events.size(),
                f.plan.events.size(), f.shrink_probes);
    std::printf("  replay:    %s\n", report.cli_replay(f).c_str());
  }
  if (!report.failures.empty()) {
    std::printf("\n%zu unique failure class%s:\n", report.classes.size(),
                report.classes.size() == 1 ? "" : "es");
    for (const auto& c : report.classes) {
      std::printf("  [%zu trial%s] %s%s%s — e.g. trial %d: %s\n",
                  c.trials.size(), c.trials.size() == 1 ? "" : "s",
                  chaos::to_string(c.verdict), c.signal.empty() ? "" : "/",
                  c.signal.c_str(), c.trials.front(),
                  c.sample_detail.c_str());
    }
  }
  if (report.interrupted) {
    std::printf("\ninterrupted — the report covers only completed trials");
    if (!report.options.checkpoint.empty()) {
      std::printf("; resume with --resume=%s",
                  report.options.checkpoint.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return 2;

  chaos::SearchReport report;
  try {
    report = chaos::run_search(args->spec, args->search);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos search failed: %s\n", e.what());
    return 2;
  }

  print_summary(report);
  if (!args->json.empty()) {
    const std::string json = report.to_json();
    if (args->json == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out{args->json, std::ios::binary};
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", args->json.c_str());
        return 2;
      }
      out << json;
      std::printf("wrote %s\n", args->json.c_str());
    }
  }
  if (report.interrupted) return 130;
  return report.clean() ? 0 : 1;
}
