// Resilience figure (new; no paper counterpart): recovery after faults
// on the parking-lot topology — a 50 ms outage of the first trunk while
// the network is in steady state, a Gilbert–Elliott burst-loss episode
// on the second trunk, then a controller restart that wipes the first
// trunk's learned state mid-run. Each algorithm runs the schedule under
// 5 seeds (the burst fault draws from the simulator's RNG, so seeds
// genuinely vary the loss pattern) and the table reports mean with
// min/max spread.
//
// Expected shape: all constant-space algorithms relearn their operating
// point from measurements alone, so the fair-share estimate returns to
// its pre-fault band within tens of ms of each perturbation; Phantom's
// MACR lands back within 10% of the max-min+phantom reference for every
// seed, queues drain the post-outage burst, and the invariant monitor
// stays silent.
#include "bench_util.h"

#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "stats/recovery.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

constexpr double kRelTol = 0.1;  // "reconverged" = within 10% of target
constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

struct RunResult {
  std::string algorithm;
  double target_mbps = 0.0;        // pre-fault fair-share operating point
  std::optional<Time> reconverge;  // latency from outage start
  double peak_queue = 0.0;         // cells, after the outage begins
  double post_fault_jain = 0.0;
  std::size_t violations = 0;
  double final_share_mbps = 0.0;
};

RunResult run_case(exp::Algorithm alg, std::uint64_t seed) {
  sim::Simulator sim{seed};
  topo::AbrNetwork net{sim, exp::make_factory(alg)};
  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, {});
  const auto d_end = net.add_destination(s2, {});
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  const auto d2 = net.add_destination(s2, stub);
  net.add_session(s0, {t01, t12}, d_end);  // long
  net.add_session(s0, {t01}, d1);
  net.add_session(s1, {t12}, d2);
  net.add_session(s2, {}, d_end);

  const Time outage_at = Time::ms(250);
  const Time outage_len = Time::ms(50);
  const Time restart_at = Time::ms(450);
  const Time end = Time::ms(800);

  fault::FaultInjector injector{sim, net};
  injector.apply(
      fault::FaultPlan{}
          .outage(fault::trunk(t01), outage_at, outage_len)
          .burst(fault::trunk(t12), Time::ms(330), Time::ms(40), 0.2, 0.5, 0.6)
          .restart(fault::trunk(t01), restart_at));
  fault::InvariantMonitor monitor{sim, net};
  exp::FairShareSampler share{sim, net.trunk_port(t01).controller()};
  exp::QueueSampler queue{sim, net.trunk_port(t01)};
  exp::GoodputProbe probe{sim, net};

  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(600));
  probe.mark();
  sim.run_until(end);
  monitor.check_now();

  RunResult r;
  r.algorithm = exp::to_string(alg);
  // Operating point = the algorithm's own pre-fault mean fair share; the
  // recovery question is "does it come back to where it was", which is
  // algorithm-independent even though the operating points differ.
  r.target_mbps = stats::mean_in_window(share.trace().samples(), Time::ms(150),
                                        outage_at) *
                  1e-6;
  r.reconverge = stats::time_to_reconverge(
      share.trace().samples(), outage_at, r.target_mbps * 1e6, kRelTol);
  r.peak_queue = stats::peak_in_window(queue.trace().samples(), outage_at, end);
  const auto rates = probe.rates_mbps();
  r.post_fault_jain = stats::jain_index(rates);
  r.violations = monitor.violations().size();
  r.final_share_mbps = share.trace().last_or(0.0) * 1e-6;

  if (seed == kSeeds[0]) {
    exp::maybe_dump_series("fig_faults", "share_" + r.algorithm,
                           share.trace().samples(), 1e-6);
    exp::maybe_dump_series("fig_faults", "queue_" + r.algorithm,
                           queue.trace().samples());
    if (alg == exp::Algorithm::kPhantom) {
      exp::print_fault_log(injector.log());
      exp::print_series("Phantom MACR on trunk0 (Mb/s, seed 1)",
                        share.trace().samples(), 1e-6, 30);
    }
  }
  return r;
}

/// mean [min, max] over the seeds, e.g. "34.2 [31.0, 38.5]".
std::string spread(const std::vector<double>& xs, int precision = 1) {
  double lo = xs.front(), hi = xs.front(), sum = 0.0;
  for (const double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
  }
  return exp::Table::num(sum / static_cast<double>(xs.size()), precision) +
         " [" + exp::Table::num(lo, precision) + ", " +
         exp::Table::num(hi, precision) + "]";
}

}  // namespace

int main() {
  exp::print_header("Fig F1",
                    "resilience: outage + burst loss + restart, parking lot");
  std::printf(
      "parking lot, 2 x 150 Mb/s trunks; outage of trunk0 at 250 ms for 50 ms,"
      "\nGilbert-Elliott burst on trunk1 at 330 ms for 40 ms,"
      "\ncontroller restart on trunk0 at 450 ms; run to 800 ms; 5 seeds\n\n");

  exp::Table table{{"algorithm", "pre-fault share (Mb/s)",
                    "reconverge (ms, mean [min,max])",
                    "peak queue (cells, mean [min,max])", "post-fault Jain",
                    "violations"}};
  bool phantom_ok = true;
  for (const auto alg : {exp::Algorithm::kPhantom, exp::Algorithm::kEprca,
                         exp::Algorithm::kErica}) {
    std::vector<double> reconverge_ms, peaks, shares, jains;
    std::size_t violations = 0, never = 0;
    for (const std::uint64_t seed : kSeeds) {
      const RunResult r = run_case(alg, seed);
      if (r.reconverge) {
        reconverge_ms.push_back(r.reconverge->milliseconds());
      } else {
        ++never;
      }
      peaks.push_back(r.peak_queue);
      shares.push_back(r.target_mbps);
      jains.push_back(r.post_fault_jain);
      violations += r.violations;

      if (alg == exp::Algorithm::kPhantom) {
        // Per-seed acceptance: back within 10% of the max-min+phantom
        // reference for trunk0 (2 real sessions + 1 phantom at u = 0.95:
        // 0.95 * 150 / 3 = 47.5 Mb/s), no misses, no violations.
        const double ideal = 47.5;
        const double err = std::abs(r.final_share_mbps - ideal) / ideal;
        if (err > kRelTol || !r.reconverge || r.violations != 0) {
          std::printf("Phantom FAILED seed %llu: final %.2f Mb/s, err %.1f%%, "
                      "reconverged %s, %zu violations\n",
                      static_cast<unsigned long long>(seed),
                      r.final_share_mbps, err * 100.0,
                      r.reconverge ? "yes" : "no", r.violations);
          phantom_ok = false;
        }
      }
    }
    std::string reconverge_cell =
        reconverge_ms.empty() ? "never" : spread(reconverge_ms);
    if (never > 0) {
      reconverge_cell += " (" + std::to_string(never) + " never)";
    }
    table.add_row({exp::to_string(alg), spread(shares), reconverge_cell,
                   spread(peaks, 0), spread(jains, 4),
                   std::to_string(violations)});
  }
  std::printf("\n");
  table.print();

  std::printf("\nacceptance (Phantom, all 5 seeds): %s\n",
              phantom_ok ? "PASS" : "FAIL");
  return phantom_ok ? 0 : 1;
}
