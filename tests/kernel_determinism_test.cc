// Bit-level determinism pins for the event kernel. A kernel rewrite
// that reorders same-timestamp events, changes how many events a run
// executes, or perturbs the rng consumption pattern shows up here as an
// exact-value mismatch — before it silently shifts every figure and
// chaos verdict in the repo.
#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "fault/fault_plan.h"
#include "sim/time.h"

namespace phantom {
namespace {

using sim::Time;

// The chaos CLI's default scenario (bottleneck, Phantom, 3 sessions,
// 150 Mb/s, 600 ms). Its baseline share is a checked-in golden: the
// same number the fixed-seed chaos reports have always printed.
TEST(KernelDeterminismTest, BaselineShareMatchesGolden) {
  const chaos::ScenarioSpec spec;
  chaos::TrialOptions opt;
  const auto base = chaos::run_baseline(spec, 1, opt);
  // chaos reports round to 3 decimals; the golden is 35.606 Mb/s.
  EXPECT_NEAR(base.settled_share_bps / 1e6, 35.606, 0.0005)
      << "kernel change perturbed the fixed-seed baseline figure";
}

// Identical seeds must give identical runs — not approximately, exactly.
TEST(KernelDeterminismTest, RepeatedTrialsAreExactlyIdentical) {
  const chaos::ScenarioSpec spec;
  fault::FaultPlan plan;
  plan.outage(fault::dest(0), Time::ms(250), Time::ms(20))
      .rm_fault(fault::dest(0), Time::ms(300), Time::ms(100), 0.3, 0.1);
  chaos::TrialOptions opt;
  const auto base1 = chaos::run_baseline(spec, 7, opt);
  const auto base2 = chaos::run_baseline(spec, 7, opt);
  EXPECT_EQ(base1.settled_share_bps, base2.settled_share_bps);
  EXPECT_EQ(base1.delivered_cells, base2.delivered_cells);

  const auto r1 = chaos::run_trial(spec, 7, plan, opt, &base1);
  const auto r2 = chaos::run_trial(spec, 7, plan, opt, &base2);
  EXPECT_EQ(r1.verdict, r2.verdict);
  EXPECT_EQ(r1.events, r2.events)
      << "executed-event count diverged: same seed, same plan";
  EXPECT_EQ(r1.settled_share_mbps, r2.settled_share_mbps);
  EXPECT_EQ(r1.peak_queue_cells, r2.peak_queue_cells);
  EXPECT_EQ(r1.detail, r2.detail);
}

// Different seeds must still diverge (the determinism above is not the
// runner ignoring the seed).
TEST(KernelDeterminismTest, DifferentSeedsDiverge) {
  chaos::ScenarioSpec spec;
  spec.horizon = Time::ms(600);
  chaos::TrialOptions opt;
  const auto a = chaos::run_baseline(spec, 1, opt);
  const auto b = chaos::run_baseline(spec, 2, opt);
  // Seeds drive fault-free runs identically only if the topology uses
  // no randomness at all; the settled share may match, but the runs
  // are distinguished through a faulted trial's loss pattern.
  fault::FaultPlan plan;
  plan.burst(fault::dest(0), Time::ms(100), Time::ms(300), 0.05, 0.2, 0.5);
  const auto ra = chaos::run_trial(spec, 1, plan, opt, &a);
  const auto rb = chaos::run_trial(spec, 2, plan, opt, &b);
  EXPECT_TRUE(ra.events != rb.events ||
              ra.settled_share_mbps != rb.settled_share_mbps)
      << "seed is being ignored: faulted runs came out identical";
}

}  // namespace
}  // namespace phantom
