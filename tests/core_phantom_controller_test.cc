#include "core/phantom_controller.h"

#include <gtest/gtest.h>

#include "atm/cell.h"
#include "sim/simulator.h"

namespace phantom::core {
namespace {

using atm::Cell;
using atm::CellKind;
using sim::Rate;
using sim::Simulator;
using sim::Time;

PhantomConfig cfg() { return PhantomConfig{}; }

TEST(PhantomControllerTest, NameAndInitialShare) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  EXPECT_EQ(ctl.name(), "phantom");
  EXPECT_DOUBLE_EQ(ctl.fair_share().mbits_per_sec(), 8.5);
}

TEST(PhantomControllerTest, IntervalTimerTicks) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  sim.run_until(Time::ms(10));
  EXPECT_EQ(ctl.intervals_elapsed(), 10u);
  // trace: initial sample + one per interval.
  EXPECT_EQ(ctl.macr_trace().size(), 11u);
}

TEST(PhantomControllerTest, IdlePortGrowsMacrTowardTarget) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  sim.run_until(Time::sec(2));
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 0.95 * 150, 2.0);
}

TEST(PhantomControllerTest, MeasuredLoadShiftsEquilibrium) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  // Offer exactly 100 Mb/s: one cell every 4.24 us.
  const Time cell_gap = Rate::mbps(100).transmission_time(atm::kCellBits);
  std::function<void()> feeder = [&] {
    ctl.on_cell_accepted(Cell::data(1), 1);
    sim.schedule(cell_gap, feeder);
  };
  sim.schedule(Time::zero(), feeder);
  sim.run_until(Time::sec(2));
  EXPECT_NEAR(ctl.fair_share().mbits_per_sec(), 0.95 * 150 - 100, 2.0);
}

TEST(PhantomControllerTest, DroppedCellsCountAsOfferedLoad) {
  Simulator sim;
  PhantomConfig c = cfg();
  c.adaptive_gain = false;  // deterministic steps for exact comparison
  PhantomController accepted_only{sim, Rate::mbps(150), c};
  PhantomController with_drops{sim, Rate::mbps(150), c};
  // Same totals: 200 accepted vs 100 accepted + 100 dropped.
  for (int i = 0; i < 200; ++i) {
    accepted_only.on_cell_accepted(Cell::data(1), 1);
  }
  for (int i = 0; i < 100; ++i) {
    with_drops.on_cell_accepted(Cell::data(1), 1);
    with_drops.on_cell_dropped(Cell::data(1));
  }
  sim.run_until(Time::ms(1));
  EXPECT_DOUBLE_EQ(accepted_only.fair_share().bits_per_sec(),
                   with_drops.fair_share().bits_per_sec());
}

TEST(PhantomControllerTest, BackwardRmErClampedToMacr) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  Cell brm = Cell::forward_rm(1, Rate::mbps(50), Rate::mbps(150));
  brm.kind = CellKind::kBackwardRm;
  ctl.on_backward_rm(brm, 0);
  EXPECT_DOUBLE_EQ(brm.er.mbits_per_sec(), 8.5);  // initial MACR
}

TEST(PhantomControllerTest, BackwardRmErNeverIncreased) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  Cell brm = Cell::forward_rm(1, Rate::mbps(50), Rate::mbps(2));
  brm.kind = CellKind::kBackwardRm;
  ctl.on_backward_rm(brm, 0);
  EXPECT_DOUBLE_EQ(brm.er.mbits_per_sec(), 2.0);
}

TEST(PhantomControllerTest, PureExplicitRateNeverSetsCi) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  Cell brm = Cell::forward_rm(1, Rate::mbps(50), Rate::mbps(150));
  brm.kind = CellKind::kBackwardRm;
  ctl.on_backward_rm(brm, 10'000);
  EXPECT_FALSE(brm.ci);
}

TEST(PhantomControllerTest, EfciDisabledByDefault) {
  Simulator sim;
  PhantomController ctl{sim, Rate::mbps(150), cfg()};
  EXPECT_FALSE(ctl.mark_efci(1'000'000));
}

TEST(PhantomControllerTest, EfciThresholdEnablesMarking) {
  Simulator sim;
  PhantomConfig c = cfg();
  c.efci_queue_threshold = 100;
  PhantomController ctl{sim, Rate::mbps(150), c};
  EXPECT_FALSE(ctl.mark_efci(99));
  EXPECT_TRUE(ctl.mark_efci(100));
  EXPECT_TRUE(ctl.mark_efci(500));
}

TEST(PhantomControllerTest, BinaryModeLeavesErAlone) {
  Simulator sim;
  PhantomConfig c = cfg();
  c.explicit_rate_mode = false;
  PhantomController ctl{sim, Rate::mbps(150), c};
  Cell brm = Cell::forward_rm(1, Rate::mbps(50), Rate::mbps(150));
  brm.kind = CellKind::kBackwardRm;
  ctl.on_backward_rm(brm, 0);
  EXPECT_DOUBLE_EQ(brm.er.mbits_per_sec(), 150.0);
}

TEST(PhantomControllerTest, BinaryModeMarksWhenOverSubscribed) {
  Simulator sim;
  PhantomConfig c = cfg();
  c.explicit_rate_mode = false;
  PhantomController ctl{sim, Rate::mbps(150), c};
  // Idle interval: not over-subscribed, no marking.
  sim.run_until(Time::ms(1));
  EXPECT_FALSE(ctl.mark_efci(0));
  // Offer ~190 Mb/s for one interval (above u*C = 142.5).
  for (int i = 0; i < 450; ++i) ctl.on_cell_accepted(Cell::data(1), 1);
  sim.run_until(Time::ms(2));
  EXPECT_TRUE(ctl.mark_efci(0));
  // Load vanishes: marking stops after the next interval.
  sim.run_until(Time::ms(3));
  EXPECT_FALSE(ctl.mark_efci(0));
}

TEST(PhantomControllerTest, ConstantSpaceFootprint) {
  // The controller's state (beyond the measurement trace) must not grow
  // with the number of VCs. sizeof is a compile-time proxy: the object
  // contains no containers keyed by VC.
  static_assert(sizeof(PhantomController) < 512,
                "controller state should be a handful of scalars");
  SUCCEED();
}

}  // namespace
}  // namespace phantom::core
