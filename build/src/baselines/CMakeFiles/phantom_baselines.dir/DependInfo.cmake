
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aprc.cc" "src/baselines/CMakeFiles/phantom_baselines.dir/aprc.cc.o" "gcc" "src/baselines/CMakeFiles/phantom_baselines.dir/aprc.cc.o.d"
  "/root/repo/src/baselines/capc.cc" "src/baselines/CMakeFiles/phantom_baselines.dir/capc.cc.o" "gcc" "src/baselines/CMakeFiles/phantom_baselines.dir/capc.cc.o.d"
  "/root/repo/src/baselines/eprca.cc" "src/baselines/CMakeFiles/phantom_baselines.dir/eprca.cc.o" "gcc" "src/baselines/CMakeFiles/phantom_baselines.dir/eprca.cc.o.d"
  "/root/repo/src/baselines/erica.cc" "src/baselines/CMakeFiles/phantom_baselines.dir/erica.cc.o" "gcc" "src/baselines/CMakeFiles/phantom_baselines.dir/erica.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/phantom_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/phantom_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
