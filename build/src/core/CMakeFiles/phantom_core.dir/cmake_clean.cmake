file(REMOVE_RECURSE
  "CMakeFiles/phantom_core.dir/phantom_controller.cc.o"
  "CMakeFiles/phantom_core.dir/phantom_controller.cc.o.d"
  "CMakeFiles/phantom_core.dir/residual_filter.cc.o"
  "CMakeFiles/phantom_core.dir/residual_filter.cc.o.d"
  "libphantom_core.a"
  "libphantom_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
