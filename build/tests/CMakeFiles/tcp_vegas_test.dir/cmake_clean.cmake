file(REMOVE_RECURSE
  "CMakeFiles/tcp_vegas_test.dir/tcp_vegas_test.cc.o"
  "CMakeFiles/tcp_vegas_test.dir/tcp_vegas_test.cc.o.d"
  "tcp_vegas_test"
  "tcp_vegas_test.pdb"
  "tcp_vegas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_vegas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
