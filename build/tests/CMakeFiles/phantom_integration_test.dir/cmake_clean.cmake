file(REMOVE_RECURSE
  "CMakeFiles/phantom_integration_test.dir/phantom_integration_test.cc.o"
  "CMakeFiles/phantom_integration_test.dir/phantom_integration_test.cc.o.d"
  "phantom_integration_test"
  "phantom_integration_test.pdb"
  "phantom_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
