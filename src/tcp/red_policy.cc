#include "tcp/red_policy.h"

#include <algorithm>

namespace phantom::tcp {

RedPolicy::RedPolicy(sim::Simulator& sim, RedConfig config)
    : sim_{&sim}, config_{config} {
  config_.validate();
}

Verdict RedPolicy::on_arrival(const Packet& packet, std::size_t queue_len,
                              std::size_t) {
  avg_ += config_.weight * (static_cast<double>(queue_len) - avg_);
  if (!eligible(packet)) return Verdict::accept();
  if (avg_ < config_.min_threshold) {
    count_ = -1;
    return Verdict::accept();
  }
  if (avg_ >= config_.max_threshold) {
    count_ = 0;
    ++early_drops_;
    return Verdict::discard();
  }
  ++count_;
  const double pb = config_.max_drop_prob *
                    (avg_ - config_.min_threshold) /
                    (config_.max_threshold - config_.min_threshold);
  const double pa =
      std::min(1.0, pb / std::max(1e-12, 1.0 - static_cast<double>(count_) * pb));
  if (sim_->rng().bernoulli(std::clamp(pa, 0.0, 1.0))) {
    count_ = 0;
    ++early_drops_;
    return Verdict::discard();
  }
  return Verdict::accept();
}

}  // namespace phantom::tcp
