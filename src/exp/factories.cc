#include "exp/factories.h"

#include <algorithm>
#include <cctype>

namespace phantom::exp {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kPhantom: return "Phantom";
    case Algorithm::kEprca: return "EPRCA";
    case Algorithm::kAprc: return "APRC";
    case Algorithm::kCapc: return "CAPC";
    case Algorithm::kErica: return "ERICA";
  }
  return "?";
}

std::optional<Algorithm> algorithm_from_string(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "phantom") return Algorithm::kPhantom;
  if (lower == "eprca") return Algorithm::kEprca;
  if (lower == "aprc") return Algorithm::kAprc;
  if (lower == "capc") return Algorithm::kCapc;
  if (lower == "erica") return Algorithm::kErica;
  return std::nullopt;
}

topo::ControllerFactory make_factory(Algorithm a) {
  switch (a) {
    case Algorithm::kPhantom:
      return make_phantom_factory(core::PhantomConfig{});
    case Algorithm::kEprca:
      return [](sim::Simulator& sim, sim::Rate rate) {
        return std::make_unique<baselines::EprcaController>(
            sim, rate, baselines::EprcaConfig{});
      };
    case Algorithm::kAprc:
      return [](sim::Simulator& sim, sim::Rate rate) {
        return std::make_unique<baselines::AprcController>(
            sim, rate, baselines::AprcConfig{});
      };
    case Algorithm::kCapc:
      return [](sim::Simulator& sim, sim::Rate rate) {
        return std::make_unique<baselines::CapcController>(
            sim, rate, baselines::CapcConfig{});
      };
    case Algorithm::kErica:
      return [](sim::Simulator& sim, sim::Rate rate) {
        return std::make_unique<baselines::EricaController>(
            sim, rate, baselines::EricaConfig{});
      };
  }
  return nullptr;
}

topo::ControllerFactory make_phantom_factory(core::PhantomConfig config) {
  return [config](sim::Simulator& sim, sim::Rate rate) {
    return std::make_unique<core::PhantomController>(sim, rate, config);
  };
}

}  // namespace phantom::exp
