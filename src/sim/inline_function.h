// Small-buffer move-only callable: the event kernel's allocation-free
// replacement for std::function<void()>.
//
// Every scheduled event used to pay one heap allocation for its capture
// block (std::function's SBO is 16 bytes on libstdc++; a Link delivery
// captures 64). InlineFunction<N> stores captures up to N bytes inline
// in the object, falling back to the heap only beyond that — and counts
// those fallbacks, so a model whose captures outgrow the buffer shows
// up in `phantom_cli --perf-report` instead of silently regressing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace phantom::sim {

namespace detail {

/// Process-wide fallback counter shared by every InlineFunction<N>
/// instantiation (the perf report wants one number, not one per size).
/// Relaxed atomic: the count is a diagnostic, and the chaos supervisor's
/// worker threads may schedule from forked children concurrently.
struct InlineFunctionStats {
  inline static std::atomic<std::uint64_t> heap_fallbacks{0};
};

}  // namespace detail

/// Move-only type-erased void() callable with N bytes of inline capture
/// storage. Captures that are larger than N, over-aligned, or whose move
/// constructor may throw are heap-allocated instead (InlineFunction's
/// own move must stay noexcept — the event heap relocates entries).
///
/// Invoking a null InlineFunction is undefined; callers (the event
/// queue) reject null callbacks at schedule time. The stored callable
/// must not destroy the InlineFunction it is running inside — the event
/// queue upholds this by moving callbacks out before invoking them, so
/// an event may freely cancel or reschedule itself.
template <std::size_t N>
class InlineFunction {
  static_assert(N >= sizeof(void*), "buffer must at least hold a pointer");

 public:
  /// True when a callable of type F is stored inline (no allocation).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  constexpr InlineFunction() = default;
  constexpr InlineFunction(std::nullptr_t) {}  // NOLINT: match std::function

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT: implicit like std::function
    if constexpr (std::is_pointer_v<D> || std::is_member_pointer_v<D>) {
      if (f == nullptr) return;  // a null function pointer stays null
    }
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      manage_ = &inline_manage<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      detail::InlineFunctionStats::heap_fallbacks.fetch_add(
          1, std::memory_order_relaxed);
      invoke_ = &heap_invoke<D>;
      manage_ = &heap_manage<D>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept
      : invoke_{o.invoke_}, manage_{o.manage_} {
    if (manage_ != nullptr) manage_(Op::kRelocate, buf_, o.buf_);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      if (manage_ != nullptr) manage_(Op::kRelocate, buf_, o.buf_);
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the stored callable (and everything it captured) now.
  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) noexcept {
    return f.invoke_ == nullptr;
  }

  void operator()() { invoke_(buf_); }

  /// Callables constructed with heap-allocated captures since process
  /// start (or the last reset_heap_fallbacks). Zero on every hot path
  /// in this library; nonzero means some capture outgrew the buffer.
  [[nodiscard]] static std::uint64_t heap_fallbacks() noexcept {
    return detail::InlineFunctionStats::heap_fallbacks.load(
        std::memory_order_relaxed);
  }
  static void reset_heap_fallbacks() noexcept {
    detail::InlineFunctionStats::heap_fallbacks.store(
        0, std::memory_order_relaxed);
  }

 private:
  enum class Op : unsigned char {
    kDestroy,   ///< destroy the callable held in `self`
    kRelocate,  ///< move-construct `self` from `other`, destroying `other`
  };
  using Invoker = void (*)(void*);
  using Manager = void (*)(Op, void* self, void* other);

  template <typename D>
  static void inline_invoke(void* buf) {
    (*std::launder(reinterpret_cast<D*>(buf)))();
  }
  template <typename D>
  static void inline_manage(Op op, void* self, void* other) {
    if (op == Op::kRelocate) {
      D* src = std::launder(reinterpret_cast<D*>(other));
      ::new (self) D(std::move(*src));
      src->~D();
    } else {
      std::launder(reinterpret_cast<D*>(self))->~D();
    }
  }

  template <typename D>
  static void heap_invoke(void* buf) {
    (**std::launder(reinterpret_cast<D**>(buf)))();
  }
  template <typename D>
  static void heap_manage(Op op, void* self, void* other) {
    if (op == Op::kRelocate) {
      ::new (self) D*(*std::launder(reinterpret_cast<D**>(other)));
    } else {
      delete *std::launder(reinterpret_cast<D**>(self));
    }
  }

  alignas(std::max_align_t) unsigned char buf_[N];
  Invoker invoke_ = nullptr;
  Manager manage_ = nullptr;
};

/// Pre-bound nullary member-function callback: a trivially copyable
/// {object pointer} closure, the canonical shape for self-rescheduling
/// events (controller ticks, transmitters, reapers). Use via
/// bind_member:
///
///     sim.schedule(interval, bind_member<&Controller::on_interval>(this));
template <auto Method, typename T>
struct MemberCallback {
  T* obj;
  void operator()() const { (obj->*Method)(); }
};

template <auto Method, typename T>
[[nodiscard]] constexpr MemberCallback<Method, T> bind_member(T* obj) {
  return {obj};
}

}  // namespace phantom::sim
