// Misbehavior figure (new; no paper counterpart): what happens to the
// *compliant* sessions when non-compliant sources share their
// bottleneck, and how much of the damage per-VC policing undoes.
//
// 3 compliant sessions + A greedy adversaries (A = 1, 2, 4, 8) on one
// 150 Mb/s link. A greedy source ignores every backward-RM ER and
// transmits at PCR; the queue drops it inflicts are counted as offered
// load by the controller (the paper counts every arrival), so the MACR
// collapses toward the floor and the compliant sessions starve. The
// policer (atm/policer.h) re-derives each VC's contract from the moving
// fair share: monitor mode only counts violations, drop mode discards
// non-conforming cells at ingress — before they can distort the
// controller's load measurement.
//
// Expected shape: with policing off the compliant mean goodput is a few
// percent of fair share (< 50% at every adversary count); monitor mode
// is identical except the violations are now visible; drop mode
// restores >= 85% of the ideal u*C/(n+1) share at A = 1 and degrades
// gracefully from there — each policed adversary still pushes
// headroom * MACR of *conforming* cells through, so retention tracks
// (n+1) / (n+1 + (headroom-1) * A), the price of leaving ramp headroom
// in the contract. A second table shows the RM-forging and
// partially-compliant models at A = 1 for the same off/drop contrast.
#include "bench_util.h"

#include "atm/abr_source.h"
#include "atm/policer.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};
constexpr int kCompliant = 3;
constexpr double kLinkMbps = 150.0;
constexpr double kUtilization = 0.95;  // exp::make_factory default

struct RunResult {
  double retention = 0.0;        // mean compliant goodput / ideal share
  double compliant_mbps = 0.0;   // mean compliant goodput
  double adversary_mbps = 0.0;   // mean adversary goodput
  std::uint64_t policer_drops = 0;
  double violation_rate = 0.0;
};

RunResult run_case(int adversaries, atm::SourceBehavior behavior,
                   std::optional<atm::PolicingAction> action,
                   std::uint64_t seed, double compliance = 0.5) {
  sim::Simulator sim{seed};
  const int n = kCompliant + adversaries;
  AbrBottleneck b{sim, exp::Algorithm::kPhantom, n, Rate::mbps(kLinkMbps)};
  for (int i = 0; i < adversaries; ++i) {
    b.net.set_session_behavior(static_cast<std::size_t>(kCompliant + i),
                               behavior, compliance);
  }
  if (action) {
    atm::PolicerConfig pc;
    pc.action = *action;
    b.net.enable_policing(pc);
  }

  exp::GoodputProbe probe{sim, b.net};
  b.net.start_all(Time::zero(), Time::zero());
  const Time horizon = Time::ms(600);
  sim.run_until(horizon * 0.6);
  probe.mark();
  sim.run_until(horizon);

  const auto rates = probe.rates_mbps();
  // One phantom session per port: the ideal compliant share is
  // u * C / (n + 1), the equilibrium every session would get if all of
  // them obeyed the feedback.
  const double ideal = kUtilization * kLinkMbps / (n + 1);
  RunResult r;
  std::vector<double> compliant{rates.begin(), rates.begin() + kCompliant};
  std::vector<double> ideals(compliant.size(), ideal);
  r.retention = stats::fair_share_retention(compliant, ideals);
  for (int s = 0; s < kCompliant; ++s) r.compliant_mbps += rates[s];
  r.compliant_mbps /= kCompliant;
  for (int s = kCompliant; s < n; ++s) r.adversary_mbps += rates[s];
  r.adversary_mbps /= adversaries;
  r.policer_drops = b.net.policer_dropped_cells();
  if (const atm::Policer* p = b.net.node(0).policer()) {
    r.violation_rate = p->violation_rate();
  }
  return r;
}

/// mean [min, max] over the seeds.
std::string spread(const std::vector<double>& xs, int precision = 1) {
  double lo = xs.front(), hi = xs.front(), sum = 0.0;
  for (const double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
  }
  return exp::Table::num(sum / static_cast<double>(xs.size()), precision) +
         " [" + exp::Table::num(lo, precision) + ", " +
         exp::Table::num(hi, precision) + "]";
}

std::string policy_name(const std::optional<atm::PolicingAction>& a) {
  return a ? atm::to_string(*a) : "off";
}

}  // namespace

int main() {
  exp::print_header("Fig M1", "misbehaving sources vs per-VC policing");
  std::printf(
      "%d compliant + A greedy sessions, one %.0f Mb/s link; retention ="
      "\nmean compliant goodput / ideal u*C/(n+1) share; %zu seeds\n\n",
      kCompliant, kLinkMbps, std::size(kSeeds));

  const std::optional<atm::PolicingAction> kPolicies[] = {
      std::nullopt, atm::PolicingAction::kMonitor, atm::PolicingAction::kDrop};

  bool ok = true;
  // Drop-mode floors: 0.85 at A = 1 (the headline acceptance bound,
  // mirrored by test_misbehavior.cc), then the headroom-tax curve
  // (n+1)/(n+1 + 0.5 A) minus a measurement margin.
  const auto drop_floor = [](int a) {
    switch (a) {
      case 1: return 0.85;
      case 2: return 0.75;
      case 4: return 0.70;
      default: return 0.65;
    }
  };
  exp::Table table{{"adversaries", "policing", "retention (mean [min,max])",
                    "compliant (Mb/s)", "adversary (Mb/s)", "violation rate",
                    "policer drops"}};
  for (const int adversaries : {1, 2, 4, 8}) {
    for (const auto& action : kPolicies) {
      std::vector<double> retention, compliant, adversary, viol;
      std::uint64_t drops = 0;
      for (const std::uint64_t seed : kSeeds) {
        const RunResult r =
            run_case(adversaries, atm::SourceBehavior::kGreedy, action, seed);
        retention.push_back(r.retention);
        compliant.push_back(r.compliant_mbps);
        adversary.push_back(r.adversary_mbps);
        viol.push_back(r.violation_rate);
        drops += r.policer_drops;

        // Acceptance mirrors test_misbehavior.cc: unpoliced greedy
        // sources starve compliant traffic below half its share; drop
        // policing restores at least 85% of it. Checked per seed.
        if (!action && r.retention >= 0.5) {
          std::printf("FAILED: A=%d policing=off seed %llu retention %.2f "
                      ">= 0.50\n",
                      adversaries, static_cast<unsigned long long>(seed),
                      r.retention);
          ok = false;
        }
        if (action == atm::PolicingAction::kDrop &&
            r.retention < drop_floor(adversaries)) {
          std::printf("FAILED: A=%d policing=drop seed %llu retention %.2f "
                      "< %.2f\n",
                      adversaries, static_cast<unsigned long long>(seed),
                      r.retention, drop_floor(adversaries));
          ok = false;
        }
      }
      table.add_row({std::to_string(adversaries), policy_name(action),
                     spread(retention, 2), spread(compliant), spread(adversary),
                     spread(viol, 2), std::to_string(drops)});
    }
  }
  table.print();

  std::printf("\nother adversary models (A = 1):\n\n");
  exp::Table table2{{"model", "policing", "retention (mean [min,max])",
                     "compliant (Mb/s)", "adversary (Mb/s)"}};
  const struct {
    const char* name;
    atm::SourceBehavior behavior;
    double compliance;
  } kModels[] = {
      {"forge", atm::SourceBehavior::kForging, 0.0},
      {"partial 0.5", atm::SourceBehavior::kPartial, 0.5},
  };
  for (const auto& m : kModels) {
    for (const auto& action :
         {std::optional<atm::PolicingAction>{}, kPolicies[2]}) {
      std::vector<double> retention, compliant, adversary;
      for (const std::uint64_t seed : kSeeds) {
        const RunResult r =
            run_case(1, m.behavior, action, seed, m.compliance);
        retention.push_back(r.retention);
        compliant.push_back(r.compliant_mbps);
        adversary.push_back(r.adversary_mbps);
      }
      table2.add_row({m.name, policy_name(action), spread(retention, 2),
                      spread(compliant), spread(adversary)});
    }
  }
  table2.print();

  std::printf("\nacceptance (greedy, all seeds): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
