#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace phantom::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  if (!cb) throw std::logic_error{"EventQueue::schedule: null callback"};
  if (at < floor_) {
    throw std::logic_error{"EventQueue::schedule: " + at.to_string() +
                           " is before the last popped event (" +
                           floor_.to_string() + ")"};
  }
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.seq = seq;
  s.callback = std::move(cb);
  heap_.push_back(Node{at, seq, slot});
  sift_up(heap_.size() - 1);
  ++live_count_;
  peak_live_ = std::max(peak_live_, live_count_);
  return EventId{seq, slot};
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  if (id.slot_ >= slots_.size()) return;  // id from another queue
  Slot& s = slots_[id.slot_];
  if (s.seq != id.seq_) return;  // already fired or cancelled
  // Eager release: whatever the callback captured (cells, session
  // state, shared link handles) dies now, not when the tombstone
  // eventually surfaces at the heap top.
  s.callback.reset();
  free_slot(id.slot_);
  --live_count_;
}

void EventQueue::free_slot(std::uint32_t slot) {
  slots_[slot].seq = 0;
  free_slots_.push_back(slot);
}

void EventQueue::sift_up(std::size_t i) const {
  const Node node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const Node node = heap_[i];
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], node)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = node;
}

void EventQueue::remove_root() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_cancelled_head() const {
  // Tombstones carry no callback (released at cancel), so discarding
  // them here is pure heap bookkeeping.
  while (!heap_.empty() && !is_live(heap_.front())) remove_root();
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty queue");
  const Node top = heap_.front();
  remove_root();
  floor_ = top.time;
  Slot& s = slots_[top.slot];
  assert(s.seq == top.seq);
  Popped out{top.time, std::move(s.callback)};
  free_slot(top.slot);
  --live_count_;
  return out;
}

}  // namespace phantom::sim
