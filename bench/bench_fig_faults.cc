// Resilience figure (new; no paper counterpart): recovery after faults
// on the parking-lot topology — a 50 ms outage of the first trunk while
// the network is in steady state, followed by a controller restart that
// wipes the trunk's learned state mid-run.
//
// Expected shape: all constant-space algorithms relearn their operating
// point from measurements alone, so the fair-share estimate returns to
// its pre-fault band within tens of ms of each perturbation; Phantom's
// MACR lands back within 10% of the max-min+phantom reference, queues
// drain the post-outage burst, and the invariant monitor stays silent.
#include "bench_util.h"

#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "stats/recovery.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

constexpr double kRelTol = 0.1;  // "reconverged" = within 10% of target

struct RunResult {
  std::string algorithm;
  double target_mbps = 0.0;        // pre-fault fair-share operating point
  std::optional<Time> reconverge;  // latency from outage start
  double peak_queue = 0.0;         // cells, after the outage begins
  double post_fault_jain = 0.0;
  std::size_t violations = 0;
  double final_share_mbps = 0.0;
};

RunResult run_case(exp::Algorithm alg) {
  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(alg)};
  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, {});
  const auto d_end = net.add_destination(s2, {});
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  const auto d2 = net.add_destination(s2, stub);
  net.add_session(s0, {t01, t12}, d_end);  // long
  net.add_session(s0, {t01}, d1);
  net.add_session(s1, {t12}, d2);
  net.add_session(s2, {}, d_end);

  const Time outage_at = Time::ms(250);
  const Time outage_len = Time::ms(50);
  const Time restart_at = Time::ms(450);
  const Time end = Time::ms(800);

  fault::FaultInjector injector{sim, net};
  injector.apply(fault::FaultPlan{}
                     .outage(fault::trunk(t01), outage_at, outage_len)
                     .restart(fault::trunk(t01), restart_at));
  fault::InvariantMonitor monitor{sim, net};
  exp::FairShareSampler share{sim, net.trunk_port(t01).controller()};
  exp::QueueSampler queue{sim, net.trunk_port(t01)};
  exp::GoodputProbe probe{sim, net};

  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(600));
  probe.mark();
  sim.run_until(end);
  monitor.check_now();

  RunResult r;
  r.algorithm = exp::to_string(alg);
  // Operating point = the algorithm's own pre-fault mean fair share; the
  // recovery question is "does it come back to where it was", which is
  // algorithm-independent even though the operating points differ.
  r.target_mbps = stats::mean_in_window(share.trace().samples(), Time::ms(150),
                                        outage_at) *
                  1e-6;
  r.reconverge = stats::time_to_reconverge(
      share.trace().samples(), outage_at, r.target_mbps * 1e6, kRelTol);
  r.peak_queue = stats::peak_in_window(queue.trace().samples(), outage_at, end);
  const auto rates = probe.rates_mbps();
  r.post_fault_jain = stats::jain_index(rates);
  r.violations = monitor.violations().size();
  r.final_share_mbps = share.trace().last_or(0.0) * 1e-6;

  exp::maybe_dump_series("fig_faults", "share_" + r.algorithm,
                         share.trace().samples(), 1e-6);
  exp::maybe_dump_series("fig_faults", "queue_" + r.algorithm,
                         queue.trace().samples());
  if (alg == exp::Algorithm::kPhantom) {
    exp::print_fault_log(injector.log());
    exp::print_series("Phantom MACR on trunk0 (Mb/s)", share.trace().samples(),
                      1e-6, 30);
  }
  return r;
}

}  // namespace

int main() {
  exp::print_header("Fig F1",
                    "resilience: trunk outage + controller restart, parking lot");
  std::printf(
      "parking lot, 2 x 150 Mb/s trunks; outage of trunk0 at 250 ms for 50 ms,"
      "\ncontroller restart on trunk0 at 450 ms; run to 800 ms\n\n");

  exp::Table table{{"algorithm", "pre-fault share (Mb/s)", "reconverge (ms)",
                    "peak queue (cells)", "post-fault Jain", "violations"}};
  std::vector<RunResult> results;
  for (const auto alg : {exp::Algorithm::kPhantom, exp::Algorithm::kEprca,
                         exp::Algorithm::kErica}) {
    results.push_back(run_case(alg));
    const RunResult& r = results.back();
    table.add_row({r.algorithm, exp::Table::num(r.target_mbps),
                   r.reconverge ? exp::Table::num(r.reconverge->milliseconds())
                                : "never",
                   exp::Table::num(r.peak_queue, 0),
                   exp::Table::num(r.post_fault_jain, 4),
                   std::to_string(r.violations)});
  }
  std::printf("\n");
  table.print();

  // The acceptance bar: Phantom's MACR back within 10% of the
  // max-min+phantom reference for trunk0 (2 real sessions + 1 phantom at
  // u = 0.95: 0.95 * 150 / 3 = 47.5 Mb/s).
  const double ideal = 47.5;
  const RunResult& ph = results.front();
  const double err = std::abs(ph.final_share_mbps - ideal) / ideal;
  std::printf("\nPhantom final MACR: %.2f Mb/s (ideal u*C/3 = %.2f, error %.1f%%)\n",
              ph.final_share_mbps, ideal, err * 100.0);
  const bool ok = err <= kRelTol && ph.reconverge.has_value() &&
                  ph.violations == 0;
  std::printf("acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
