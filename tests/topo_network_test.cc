#include "topo/abr_network.h"

#include <gtest/gtest.h>

#include "core/phantom_controller.h"
#include "sim/simulator.h"
#include "topo/workload.h"

namespace phantom::topo {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

ControllerFactory factory() {
  return [](Simulator& sim, Rate rate) {
    return std::make_unique<core::PhantomController>(sim, rate,
                                                     core::PhantomConfig{});
  };
}

TEST(AbrNetworkTest, RequiresFactory) {
  Simulator sim;
  EXPECT_THROW((AbrNetwork{sim, nullptr}), std::invalid_argument);
}

TEST(AbrNetworkTest, SingleBottleneckWiring) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto sw = net.add_switch("sw");
  const auto d = net.add_destination(sw, {});
  const auto s0 = net.add_session(sw, {}, d);
  const auto s1 = net.add_session(sw, {}, d);
  EXPECT_EQ(net.num_sessions(), 2u);
  EXPECT_EQ(s0, 0u);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(net.dest_port(d).controller().name(), "phantom");
  // 1 dest port + 2 per-source backward ports.
  EXPECT_EQ(net.node(sw).num_ports(), 3u);
}

TEST(AbrNetworkTest, CellsFlowEndToEnd) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto sw = net.add_switch("sw");
  const auto d = net.add_destination(sw, {});
  net.add_session(sw, {}, d);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(20));
  EXPECT_GT(net.delivered_cells(0), 100u);
  EXPECT_GT(net.source(0).brm_cells_received(), 2u);
  EXPECT_EQ(net.node(sw).unrouted_cells(), 0u);
}

TEST(AbrNetworkTest, TrunkPathValidation) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto a = net.add_switch("a");
  const auto b = net.add_switch("b");
  const auto c = net.add_switch("c");
  const auto t_ab = net.add_trunk(a, b, {});
  const auto t_bc = net.add_trunk(b, c, {});
  const auto d_at_c = net.add_destination(c, {});
  // Path not starting at ingress:
  EXPECT_THROW(net.add_session(a, {t_bc}, d_at_c), std::invalid_argument);
  // Destination not at the path's end:
  const auto d_at_b = net.add_destination(b, {});
  EXPECT_THROW(net.add_session(a, {t_ab, t_bc}, d_at_b),
               std::invalid_argument);
  // Correct path works.
  EXPECT_NO_THROW(net.add_session(a, {t_ab, t_bc}, d_at_c));
}

TEST(AbrNetworkTest, AddTrunkRejectsBadIds) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto a = net.add_switch("a");
  EXPECT_THROW(net.add_trunk(a, a, {}), std::out_of_range);
  EXPECT_THROW(net.add_trunk(a, 42, {}), std::out_of_range);
}

TEST(AbrNetworkTest, MultiHopCellsTraverseAllSwitches) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto a = net.add_switch("a");
  const auto b = net.add_switch("b");
  const auto t = net.add_trunk(a, b, {});
  const auto d = net.add_destination(b, {});
  net.add_session(a, {t}, d);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(20));
  EXPECT_GT(net.delivered_cells(0), 100u);
  EXPECT_GT(net.trunk_port(t).cells_transmitted(), 100u);
  EXPECT_GT(net.source(0).brm_cells_received(), 2u);
}

TEST(AbrNetworkTest, ReferenceRatesMatchHandComputation) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto a = net.add_switch("a");
  const auto b = net.add_switch("b");
  TrunkOptions narrow;
  narrow.rate = Rate::mbps(50);
  const auto t = net.add_trunk(a, b, narrow);
  const auto d = net.add_destination(b, {});  // 150 Mb/s controlled
  net.add_session(a, {t}, d);   // crosses both controlled links
  net.add_session(b, {}, d);    // only the dest link
  const auto plain = net.reference_rates(false, 1.0);
  EXPECT_DOUBLE_EQ(plain[0].mbits_per_sec(), 50.0);
  EXPECT_DOUBLE_EQ(plain[1].mbits_per_sec(), 100.0);
  const auto with_phantom = net.reference_rates(true, 1.0);
  // Trunk carries session 0 + phantom: 25 each. Dest link carries
  // session 0 (25), session 1 and a phantom: (150-25)/2 = 62.5.
  EXPECT_DOUBLE_EQ(with_phantom[0].mbits_per_sec(), 25.0);
  EXPECT_DOUBLE_EQ(with_phantom[1].mbits_per_sec(), 62.5);
}

TEST(AbrNetworkTest, ReferenceRatesRejectUnconstrainedSession) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto a = net.add_switch("a");
  TrunkOptions stub;
  stub.controlled = false;
  const auto d = net.add_destination(a, stub);
  net.add_session(a, {}, d);
  EXPECT_THROW(net.reference_rates(false, 1.0), std::logic_error);
}

TEST(OnOffDriverTest, TogglesSourceOnSchedule) {
  Simulator sim;
  AbrNetwork net{sim, factory()};
  const auto sw = net.add_switch("sw");
  const auto d = net.add_destination(sw, {});
  net.add_session(sw, {}, d);
  net.start_all(Time::zero(), Time::zero());
  OnOffDriver::Options opt;
  opt.on_period = Time::ms(10);
  opt.off_period = Time::ms(10);
  opt.first_toggle = Time::ms(10);
  OnOffDriver driver{sim, net.source(0), opt};
  sim.run_until(Time::ms(15));
  EXPECT_FALSE(net.source(0).active());
  sim.run_until(Time::ms(25));
  EXPECT_TRUE(net.source(0).active());
  sim.run_until(Time::ms(100));
  EXPECT_EQ(driver.toggles(), 10u);  // toggles at 10,20,...,100 ms
}

TEST(OnOffDriverTest, ExponentialPeriodsEventuallyToggle) {
  Simulator sim{123};
  AbrNetwork net{sim, factory()};
  const auto sw = net.add_switch("sw");
  const auto d = net.add_destination(sw, {});
  net.add_session(sw, {}, d);
  net.start_all(Time::zero(), Time::zero());
  OnOffDriver::Options opt;
  opt.on_period = Time::ms(5);
  opt.off_period = Time::ms(5);
  opt.first_toggle = Time::ms(5);
  opt.exponential = true;
  OnOffDriver driver{sim, net.source(0), opt};
  sim.run_until(Time::ms(200));
  EXPECT_GT(driver.toggles(), 10u);
}

}  // namespace
}  // namespace phantom::topo
