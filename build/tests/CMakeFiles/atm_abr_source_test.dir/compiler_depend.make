# Empty compiler generated dependencies file for atm_abr_source_test.
# This may be replaced when dependencies are built.
