#include "stats/recovery.h"

#include <gtest/gtest.h>

#include <vector>

namespace phantom::stats {
namespace {

using sim::Sample;
using sim::Time;

std::vector<Sample> trace(std::initializer_list<std::pair<double, double>> pts) {
  std::vector<Sample> out;
  for (const auto& [ms, v] : pts) out.push_back({Time::ms(ms), v});
  return out;
}

TEST(TimeToReconvergeTest, FindsReentryAfterDip) {
  // Steady at 100, dips to 20 at t=50, back in band at t=80, stable to 200.
  const auto t = trace({{0, 100}, {50, 20}, {80, 95}, {120, 100}, {200, 101}});
  const auto r = time_to_reconverge(t, Time::ms(50), 100.0, 0.1, Time::ms(5));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Time::ms(30));  // 80 - 50
}

TEST(TimeToReconvergeTest, LaterExcursionResetsTheClock) {
  // Re-enters at 80 but leaves the band again at 120 (restart transient),
  // final re-entry at 140.
  const auto t = trace(
      {{0, 100}, {50, 20}, {80, 95}, {120, 30}, {140, 102}, {250, 100}});
  const auto r = time_to_reconverge(t, Time::ms(50), 100.0, 0.1, Time::ms(5));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Time::ms(90));  // 140 - 50
}

TEST(TimeToReconvergeTest, NeverSettledIsNullopt) {
  const auto t = trace({{0, 100}, {50, 20}, {100, 25}, {200, 30}});
  EXPECT_FALSE(
      time_to_reconverge(t, Time::ms(50), 100.0, 0.1, Time::ms(5)).has_value());
}

TEST(TimeToReconvergeTest, UnprovenHoldIsNullopt) {
  // Back in band only 2 ms before the trace ends: not yet proven stable.
  const auto t = trace({{0, 100}, {50, 20}, {198, 100}, {200, 100}});
  EXPECT_FALSE(
      time_to_reconverge(t, Time::ms(50), 100.0, 0.1, Time::ms(5)).has_value());
}

TEST(TimeToReconvergeTest, AlreadyInBandIsZeroLatency) {
  const auto t = trace({{0, 100}, {100, 101}, {200, 99}});
  const auto r = time_to_reconverge(t, Time::ms(50), 100.0, 0.1, Time::ms(5));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Time::zero());
}

TEST(TimeToReconvergeTest, EmptyTraceIsNullopt) {
  EXPECT_FALSE(time_to_reconverge({}, Time::ms(50), 100.0).has_value());
}

TEST(PeakInWindowTest, FindsMaximumIncludingStepValueAtWindowStart) {
  const auto t = trace({{0, 5}, {40, 50}, {60, 10}, {90, 30}});
  // Window [45, 100]: step value entering is 50 (set at t=40).
  EXPECT_DOUBLE_EQ(peak_in_window(t, Time::ms(45), Time::ms(100)), 50.0);
  // Window [65, 100]: peak is the t=90 sample.
  EXPECT_DOUBLE_EQ(peak_in_window(t, Time::ms(65), Time::ms(100)), 30.0);
}

TEST(PeakInWindowTest, EmptyOrFutureWindowIsZero) {
  EXPECT_DOUBLE_EQ(peak_in_window({}, Time::ms(0), Time::ms(10)), 0.0);
  const auto t = trace({{50, 7}});
  EXPECT_DOUBLE_EQ(peak_in_window(t, Time::ms(0), Time::ms(10)), 0.0);
}

TEST(MeanInWindowTest, TimeWeightsStepSegments) {
  // 10 for [0,50), 30 for [50,100): mean over [0,100] = 20.
  const auto t = trace({{0, 10}, {50, 30}});
  EXPECT_DOUBLE_EQ(mean_in_window(t, Time::ms(0), Time::ms(100)), 20.0);
  // Over [25, 75]: 10 for 25 ms, 30 for 25 ms -> 20.
  EXPECT_DOUBLE_EQ(mean_in_window(t, Time::ms(25), Time::ms(75)), 20.0);
  // Fully inside one segment.
  EXPECT_DOUBLE_EQ(mean_in_window(t, Time::ms(60), Time::ms(90)), 30.0);
}

TEST(MeanInWindowTest, DegenerateWindowsAreZero) {
  const auto t = trace({{0, 10}});
  EXPECT_DOUBLE_EQ(mean_in_window(t, Time::ms(10), Time::ms(10)), 0.0);
  EXPECT_DOUBLE_EQ(mean_in_window(t, Time::ms(10), Time::ms(5)), 0.0);
  EXPECT_DOUBLE_EQ(mean_in_window({}, Time::ms(0), Time::ms(10)), 0.0);
}

TEST(SmoothSeriesTest, BucketsCarryTimeWeightedMeansStampedAtBucketEnd) {
  // 10 for [0,5), 30 for [5,20): bucket [0,10) means 20, stamped at 10.
  const auto t = trace({{0, 10}, {5, 30}, {20, 30}});
  const auto s = smooth_series(t, Time::ms(10));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].time, Time::ms(10));
  EXPECT_DOUBLE_EQ(s[0].value, 20.0);
  EXPECT_EQ(s[1].time, Time::ms(20));
  EXPECT_DOUBLE_EQ(s[1].value, 30.0);
}

TEST(SmoothSeriesTest, SuppressesAnOscillationAroundItsMean) {
  // A square wave flipping 80/120 every 5 ms never holds a 10% band,
  // but its 10 ms-bucket means sit exactly on 100 — the reason the
  // reconvergence oracle smooths noisy-by-design estimators (APRC).
  std::vector<Sample> wave;  // ends on a bucket boundary (t = 100)
  for (int i = 0; i <= 20; ++i) {
    wave.push_back({Time::ms(5 * i), i % 2 == 0 ? 80.0 : 120.0});
  }
  EXPECT_FALSE(
      time_to_reconverge(wave, Time::ms(0), 100.0, 0.1, Time::ms(5)));
  const auto s = smooth_series(wave, Time::ms(10));
  const auto r = time_to_reconverge(s, Time::ms(0), 100.0, 0.1, Time::ms(5));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, Time::ms(10));  // the first bucket stamp
}

TEST(SmoothSeriesTest, DegenerateInputsAreEmpty) {
  EXPECT_TRUE(smooth_series({}, Time::ms(10)).empty());
  const auto t = trace({{0, 10}, {20, 30}});
  EXPECT_TRUE(smooth_series(t, Time::zero()).empty());
}

TEST(SummarizeRecoveryTest, ReportsAllThreeNumbersInOneCall) {
  // Steady 100, crash to 20 at 50 ms, recover at 80 ms, settle at 100.
  const auto t = trace(
      {{0, 100}, {50, 20}, {80, 95}, {120, 100}, {180, 140}, {185, 100},
       {250, 100}});
  const auto s = summarize_recovery(t, Time::ms(50), 100.0, 0.1, Time::ms(5),
                                    Time::ms(40));
  ASSERT_TRUE(s.reconverge.has_value());
  EXPECT_EQ(*s.reconverge, Time::ms(135));  // the 185 ms final re-entry
  EXPECT_DOUBLE_EQ(s.peak, 140.0);
  EXPECT_DOUBLE_EQ(s.settled_mean, 100.0);  // tail [210, 250]
}

TEST(SummarizeRecoveryTest, EmptyTraceIsInert) {
  const auto s = summarize_recovery({}, Time::ms(50), 100.0);
  EXPECT_FALSE(s.reconverge.has_value());
  EXPECT_DOUBLE_EQ(s.peak, 0.0);
  EXPECT_DOUBLE_EQ(s.settled_mean, 0.0);
}

}  // namespace
}  // namespace phantom::stats
