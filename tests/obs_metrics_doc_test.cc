// docs/METRICS.md drift gate: the checked-in reference must match the
// generator byte for byte. If this fails you added/changed a metric
// without regenerating the doc:
//   ./build/examples/phantom_cli --metrics-doc > docs/METRICS.md
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exp/metrics_doc.h"

#ifndef PHANTOM_SOURCE_DIR
#error "build must define PHANTOM_SOURCE_DIR (see tests/CMakeLists.txt)"
#endif

namespace phantom {
namespace {

TEST(MetricsDocTest, CanonicalDefsAreNonEmptyAndUnique) {
  const auto defs = exp::canonical_metric_defs();
  ASSERT_GT(defs.size(), 30u);  // the full stack registers a lot
  for (std::size_t i = 1; i < defs.size(); ++i) {
    EXPECT_NE(defs[i].id, defs[i - 1].id);
    EXPECT_FALSE(defs[i].help.empty()) << defs[i].id;
    EXPECT_FALSE(defs[i].unit.empty()) << defs[i].id;
  }
}

TEST(MetricsDocTest, GeneratorIsDeterministic) {
  EXPECT_EQ(exp::metrics_reference_markdown(),
            exp::metrics_reference_markdown());
}

TEST(MetricsDocTest, CheckedInReferenceMatchesGenerator) {
  const std::string path = std::string{PHANTOM_SOURCE_DIR} + "/docs/METRICS.md";
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in) << "missing " << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), exp::metrics_reference_markdown())
      << "docs/METRICS.md is stale — regenerate with:\n"
         "  ./build/examples/phantom_cli --metrics-doc > docs/METRICS.md";
}

}  // namespace
}  // namespace phantom
