// The chaos search loop: generate → run → judge → shrink.
//
// run_search() drives `trials` randomized fault schedules through one
// scenario. The master seed fixes everything: the simulator seed for
// every trial (so the fault-free baseline is literally "the same run
// without faults") and, via splitmix64, each trial's private
// plan-generator stream. The report therefore reproduces byte-for-byte
// for the same (spec, options), and every failure carries a minimized
// plan that replays under `phantom_cli --fault-plan=...`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/generator.h"
#include "chaos/isolate.h"
#include "chaos/runner.h"
#include "chaos/shrinker.h"
#include "chaos/triage.h"

namespace phantom::chaos {

struct SearchOptions {
  int trials = 100;
  std::uint64_t seed = 1;
  /// Stop searching after this many failures (each costs a shrink).
  int max_failures = 10;
  bool shrink = true;
  /// Process isolation: run every trial — and every shrink probe — in a
  /// forked, rlimited child (chaos/isolate), so a SIGSEGV, sanitizer
  /// abort or OOM in the system under test becomes a kProcessCrash
  /// failure instead of killing the search. Off by default in the
  /// library API; phantom_chaos turns it on unless --no-isolate.
  bool isolate = false;
  /// Concurrent isolated trials (children); only meaningful with
  /// `isolate`. The report is byte-identical for any jobs value.
  int jobs = 1;
  IsolateOptions isolation;
  /// JSONL checkpoint path (isolation only); empty = no checkpointing.
  /// An existing matching file resumes: completed trials are loaded
  /// instead of re-run.
  std::string checkpoint;
  GenOptions gen;
  TrialOptions trial;
  ShrinkOptions shrinker;
};

/// One failing trial, with its minimized reproduction.
struct Failure {
  int trial = 0;                   ///< trial index within the search
  fault::FaultPlan plan;           ///< as generated
  fault::FaultPlan shrunk_plan;    ///< minimized (== plan when !shrink)
  TrialResult result;              ///< verdict on the generated plan
  TrialResult shrunk_result;       ///< verdict re-running the minimized plan
  int shrink_probes = 0;
};

struct SearchReport {
  ScenarioSpec spec;
  SearchOptions options;
  int trials_run = 0;
  int passed = 0;
  double baseline_share_mbps = 0.0;
  std::vector<Failure> failures;
  /// Failures deduplicated into unique classes (chaos/triage), ordered
  /// by first occurrence.
  std::vector<TriagedClass> classes;
  /// SIGINT drained the supervised run; the report covers only the
  /// trials that completed (resume via SearchOptions::checkpoint).
  bool interrupted = false;
  /// Trials loaded from the checkpoint instead of re-run.
  int resumed = 0;

  [[nodiscard]] bool clean() const { return failures.empty(); }

  /// Deterministic JSON rendering: field order fixed, doubles via %.6g,
  /// no timestamps, hostnames or pointers — the same search produces
  /// byte-identical output on every run.
  [[nodiscard]] std::string to_json() const;

  /// The phantom_cli invocation that replays `f`'s minimized plan on
  /// the identical topology, seed and horizon.
  [[nodiscard]] std::string cli_replay(const Failure& f) const;
};

/// Runs the search. Throws only if the scenario itself is unusable
/// (fault-free baseline trips the watchdog, or the horizon leaves no
/// fault window); individual trial crashes become kCrash failures.
[[nodiscard]] SearchReport run_search(const ScenarioSpec& spec,
                                      const SearchOptions& opt = {});

}  // namespace phantom::chaos
