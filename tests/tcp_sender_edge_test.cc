// Edge cases of the shared TCP sender chassis: recovery interplay,
// timer lifecycle, CR behaviour across idle periods, EFCI interactions.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "tcp/reno.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

struct Fixture {
  Simulator sim;
  std::vector<Packet> sent;
  std::unique_ptr<RenoSource> src;

  explicit Fixture(RenoConfig cfg = {}) {
    src = std::make_unique<RenoSource>(
        sim, 1, cfg, [this](Packet p) { sent.push_back(p); });
  }
  void start() {
    src->start(Time::zero());
    sim.run_until(Time::us(1));
  }
  void ack(std::int64_t n, bool efci = false) {
    Packet a = Packet::make_ack(1, n);
    a.timestamp = sim.now();
    a.ack_efci = efci;
    src->receive_packet(a);
  }
};

TEST(SenderEdgeTest, RtoTimerCancelledWhenAllDataAcked) {
  Fixture f;
  f.start();
  f.ack(512);  // everything outstanding is now... no: 2 more went out
  f.ack(1024);
  f.ack(1536);  // ack everything in flight
  // Window is open (cwnd 4 mss) but flight is... ack all until no data
  // outstanding is impossible for a greedy source — it refills. Verify
  // instead that no RTO fires while the ACK clock runs.
  for (int i = 4; i < 100; ++i) f.ack(512 * i);
  EXPECT_EQ(f.src->timeouts(), 0u);
}

TEST(SenderEdgeTest, TimeoutDuringFastRecoveryResetsCleanly) {
  Fixture f;
  f.start();
  f.ack(512);
  f.ack(1024);
  f.ack(1536);
  for (int i = 0; i < 3; ++i) f.ack(1536);  // enter recovery
  ASSERT_TRUE(f.src->in_fast_recovery());
  // The retransmission is lost too: no more ACKs, RTO fires.
  f.sim.run_until(Time::sec(3));
  EXPECT_GE(f.src->timeouts(), 1u);
  EXPECT_FALSE(f.src->in_fast_recovery());
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 512.0);
}

TEST(SenderEdgeTest, RecoveryAfterTimeoutStillWorks) {
  Fixture f;
  f.start();
  f.sim.run_until(Time::sec(2));  // one timeout cycle
  ASSERT_GE(f.src->timeouts(), 1u);
  // ACK clock resumes; the source climbs back in slow start.
  f.ack(512);
  f.ack(1024);
  EXPECT_GT(f.src->cwnd_bytes(), 512.0);
  EXPECT_GT(f.sent.size(), 2u);
}

TEST(SenderEdgeTest, DupAcksBelowThreeAreHarmless) {
  Fixture f;
  f.start();
  f.ack(512);
  const double cwnd = f.src->cwnd_bytes();
  f.ack(512);  // dup 1
  f.ack(512);  // dup 2
  EXPECT_EQ(f.src->fast_retransmits(), 0u);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), cwnd);
  // A new ACK resets the counter: two more dups still do not trigger.
  f.ack(1024);
  f.ack(1024);
  f.ack(1024);
  EXPECT_EQ(f.src->fast_retransmits(), 0u);
}

TEST(SenderEdgeTest, EfciDuringRecoveryDoesNotDoubleShrink) {
  Fixture f;
  f.start();
  f.ack(512);
  f.ack(1024);
  f.ack(1536);
  for (int i = 0; i < 3; ++i) f.ack(1536);
  ASSERT_TRUE(f.src->in_fast_recovery());
  // Recovery exit with EFCI set: the deflation to ssthresh happens, the
  // EFCI suppression is irrelevant (no growth was due anyway).
  f.ack(3072, /*efci=*/true);
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(),
                   static_cast<double>(f.src->ssthresh_bytes()));
}

TEST(SenderEdgeTest, CrDropsToZeroWhenAcksStop) {
  RenoConfig cfg;
  Fixture f{cfg};
  f.start();
  for (int i = 1; i <= 20; ++i) f.ack(512 * i);
  f.sim.run_until(Time::ms(11));
  EXPECT_GT(f.src->current_rate().bits_per_sec(), 0.0);
  // Nothing acked for several CR intervals: CR decays to zero (so a
  // quiesced flow is never policed by the router mechanisms).
  f.sim.run_until(Time::ms(45));
  EXPECT_DOUBLE_EQ(f.src->current_rate().bits_per_sec(), 0.0);
}

TEST(SenderEdgeTest, PacketsSentCounterIncludesRetransmissions) {
  Fixture f;
  f.start();
  f.ack(512);
  f.ack(1024);
  f.ack(1536);
  const auto before = f.src->packets_sent();
  for (int i = 0; i < 3; ++i) f.ack(1536);
  EXPECT_GT(f.src->packets_sent(), before);  // the fast retransmit
}

TEST(SenderEdgeTest, QuenchBeforeStartIsSafe) {
  Fixture f;
  f.src->receive_packet(Packet::source_quench(1));
  EXPECT_EQ(f.src->quenches_received(), 1u);
  f.start();
  EXPECT_EQ(f.sent.size(), 1u);  // starts normally afterwards
}

TEST(SenderEdgeTest, ForeignFlowPacketsIgnored) {
  Fixture f;
  f.start();
  Packet a = Packet::make_ack(99, 512);
  a.timestamp = f.sim.now();
  f.src->receive_packet(a);
  f.src->receive_packet(Packet::source_quench(99));
  EXPECT_DOUBLE_EQ(f.src->cwnd_bytes(), 512.0);
  EXPECT_EQ(f.src->quenches_received(), 0u);
}

TEST(SenderEdgeTest, StressManyLossCyclesStaysConsistent) {
  // Property-ish soak: alternate bursts of ACKs with silences (RTOs)
  // and dup-ack storms; the sender must never violate basic invariants.
  Fixture f;
  f.start();
  std::int64_t acked = 0;
  for (int round = 0; round < 30; ++round) {
    // Partial progress.
    for (int i = 0; i < 5; ++i) {
      acked += 512;
      f.ack(acked);
      EXPECT_GE(f.src->cwnd_bytes(), 512.0);
      EXPECT_GE(f.src->ssthresh_bytes(), 1024);
    }
    if (round % 3 == 0) {
      for (int i = 0; i < 4; ++i) f.ack(acked);  // dup storm
    } else if (round % 3 == 1) {
      f.sim.run_until(f.sim.now() + Time::ms(1500));  // silence -> RTO
    }
  }
  EXPECT_EQ(f.src->bytes_acked(), acked);
  EXPECT_GT(f.src->packets_sent(), 100u);
}

}  // namespace
}  // namespace phantom::tcp
