file(REMOVE_RECURSE
  "CMakeFiles/atm_resilience_test.dir/atm_resilience_test.cc.o"
  "CMakeFiles/atm_resilience_test.dir/atm_resilience_test.cc.o.d"
  "atm_resilience_test"
  "atm_resilience_test.pdb"
  "atm_resilience_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
