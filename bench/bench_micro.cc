// Microbenchmarks (google-benchmark): cost of the substrate primitives.
// These bound the simulator's capacity and show the controller's O(1)
// per-event cost — the "constant space, constant time" implementation
// claim.
//
// `--json-out=PATH` additionally writes the kernel rows in the compact
// schema the perf-smoke CI job diffs against the checked-in
// BENCH_kernel.json (see bench/check_perf.py). All standard
// google-benchmark flags still apply.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "atm/cell.h"
#include "core/phantom_controller.h"
#include "core/residual_filter.h"
#include "obs/event_log.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "tcp/tcp_sink.h"

namespace {

using namespace phantom;
using sim::Rate;
using sim::Time;

void BM_EventQueueSchedulePop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    q.schedule(Time::ns(t += 7), [] {});
    if (q.size() > 1000) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueSchedulePop);

void BM_EventQueueCancel(benchmark::State& state) {
  // O(1) cancel with eager callback release — the timer-churn path
  // (TCP RTO timers, delayed-ACK timers) that used to pay two hash-table
  // touches and kept the capture alive until the tombstone surfaced.
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    const sim::EventId id = q.schedule(Time::ns(t += 7), [] {});
    q.cancel(id);
    if (++t % 64 == 0) {
      // Keep a sprinkling of live events so cancel runs against a
      // non-trivial heap, then drain to bound memory.
      q.schedule(Time::ns(t), [] {});
      if (q.size() > 512) q.pop();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueCancel);

/// The model idiom after the kernel migration: a pre-bound callable
/// that reschedules itself, never rebuilding a capture list per event
/// (AbrSource pacing, OutputPort transmission, controller ticks all
/// follow this shape).
struct SelfRescheduler {
  sim::Simulator* sim;
  std::uint64_t* count;
  void operator()() const {
    ++*count;
    sim->schedule(Time::ns(10), *this);
  }
};
static_assert(sim::EventQueue::Callback::fits_inline<SelfRescheduler>);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  // Cost of a full schedule->dispatch cycle with a self-rescheduling
  // event, the hot path of every model.
  sim::Simulator sim;
  std::uint64_t count = 0;
  sim.schedule(Time::ns(10), SelfRescheduler{&sim, &count});
  Time horizon = Time::zero();
  for (auto _ : state) {
    horizon += Time::us(10);  // 1000 events per iteration
    sim.run_until(horizon);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_SimulatorPayloadDispatch(benchmark::State& state) {
  // A Link-delivery-shaped event: the callback carries a 40-byte Cell
  // by value (plus the sink pointer), the largest hot-path capture in
  // the library. Exercises the inline-capture storage end to end.
  sim::Simulator sim;
  std::uint64_t checksum = 0;
  atm::Cell cell = atm::Cell::data(7);
  Time horizon = Time::zero();
  std::int64_t t = 0;
  for (auto _ : state) {
    horizon += Time::us(1);
    for (int i = 0; i < 100; ++i) {
      cell.vc = static_cast<int>(t++ & 63);
      auto deliver = [&checksum, cell] {
        checksum += static_cast<std::uint64_t>(cell.vc);
      };
      static_assert(sim::EventQueue::Callback::fits_inline<decltype(deliver)>);
      sim.schedule(Time::ns(500), deliver);
    }
    sim.run_until(horizon);
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_SimulatorPayloadDispatch);

void BM_ResidualFilterUpdate(benchmark::State& state) {
  core::ResidualFilter filter{Rate::mbps(150), core::PhantomConfig{}};
  double load = 0;
  for (auto _ : state) {
    load = load > 140e6 ? 0 : load + 1e6;
    benchmark::DoNotOptimize(filter.update(Rate::bps(load)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResidualFilterUpdate);

void BM_PhantomBackwardRm(benchmark::State& state) {
  sim::Simulator sim;
  core::PhantomController ctl{sim, Rate::mbps(150)};
  atm::Cell brm = atm::Cell::forward_rm(1, Rate::mbps(10), Rate::mbps(150));
  brm.kind = atm::CellKind::kBackwardRm;
  for (auto _ : state) {
    brm.er = Rate::mbps(150);
    ctl.on_backward_rm(brm, 10);
    benchmark::DoNotOptimize(brm.er);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhantomBackwardRm);

void BM_TcpSinkInOrder(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t acks = 0;
  tcp::TcpSink sink{sim, 1, [&acks](tcp::Packet) { ++acks; }};
  std::int64_t seq = 0;
  for (auto _ : state) {
    sink.receive_packet(tcp::Packet::data(1, seq, 512));
    seq += 512;
  }
  benchmark::DoNotOptimize(acks);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TcpSinkInOrder);

void BM_EventLogRecord(benchmark::State& state) {
  // Hot-path cost of structured tracing: one fixed-size struct copy
  // into the preallocated ring (see obs/event_log.h). In a
  // PHANTOM_DISABLE_OBS build this measures the compiled-out guard
  // instead, which should be effectively free.
  obs::EventLog log{1 << 12};
  obs::Event e;
  e.kind = obs::EventKind::kCellEnqueue;
  e.node = 0;
  e.port = 0;
  e.vc = 7;
  std::int64_t t = 0;
  for (auto _ : state) {
    e.time = Time::ns(++t);
    e.a = static_cast<double>(t & 1023);
    log.record(e);
  }
  benchmark::DoNotOptimize(log.recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventLogRecord);

/// Collects per-benchmark results on top of the normal console output
/// so --json-out can emit the compact machine-readable schema.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double items_per_sec = 0.0;
    double ns_per_iter = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) e.items_per_sec = it->second;
      if (run.iterations > 0) {
        e.ns_per_iter = run.real_accumulated_time * 1e9 /
                        static_cast<double>(run.iterations);
      }
      entries.push_back(std::move(e));
    }
  }

  std::vector<Entry> entries;
};

bool write_json(const std::string& path,
                const std::vector<JsonCollector::Entry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"phantom-bench-micro-v1\",\n");
  std::fprintf(f, "  \"benchmarks\": {\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    std::fprintf(f,
                 "    \"%s\": {\"items_per_sec\": %.6g, \"ns_per_iter\": "
                 "%.6g}%s\n",
                 e.name.c_str(), e.items_per_sec, e.ns_per_iter,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json-out before google-benchmark sees (and rejects) it.
  std::string json_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  JsonCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_out.empty() && !write_json(json_out, reporter.entries)) return 1;
  return 0;
}
