# Empty compiler generated dependencies file for phantom_topo.
# This may be replaced when dependencies are built.
