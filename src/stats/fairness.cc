#include "stats/fairness.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace phantom::stats {

double jain_index(std::span<const double> rates) {
  if (rates.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double r : rates) {
    assert(r >= 0.0 && "rates must be non-negative");
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(rates.size()) * sum_sq);
}

double maxmin_closeness(std::span<const double> measured,
                        std::span<const double> ideal) {
  assert(measured.size() == ideal.size());
  if (measured.empty()) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double lo = std::min(measured[i], ideal[i]);
    const double hi = std::max(measured[i], ideal[i]);
    acc += (hi == 0.0) ? 1.0 : lo / hi;
  }
  return acc / static_cast<double>(measured.size());
}

double fair_share_retention(std::span<const double> measured,
                            std::span<const double> ideal) {
  assert(measured.size() == ideal.size());
  if (measured.empty()) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    acc += ideal[i] <= 0.0 ? 1.0 : std::min(measured[i] / ideal[i], 1.0);
  }
  return acc / static_cast<double>(measured.size());
}

std::size_t MaxMinSolver::add_link(sim::Rate capacity) {
  if (capacity.bits_per_sec() <= 0.0) {
    throw std::invalid_argument{"link capacity must be positive"};
  }
  capacities_.push_back(capacity);
  return capacities_.size() - 1;
}

std::size_t MaxMinSolver::add_session(std::vector<std::size_t> links,
                                      sim::Rate demand) {
  if (links.empty()) {
    throw std::invalid_argument{"a session must traverse at least one link"};
  }
  if (demand.bits_per_sec() <= 0.0) {
    throw std::invalid_argument{"session demand must be positive"};
  }
  for (const std::size_t l : links) {
    if (l >= capacities_.size()) {
      throw std::out_of_range{"session references unknown link"};
    }
  }
  sessions_.push_back(std::move(links));
  demands_.push_back(demand.bits_per_sec());
  return sessions_.size() - 1;
}

std::vector<sim::Rate> MaxMinSolver::solve(bool phantom_per_link,
                                           double utilization) const {
  assert(utilization > 0.0 && utilization <= 1.0);

  // Build the working session list; phantom sessions are single-hop
  // greedy sessions appended after the real ones and dropped from the
  // result.
  std::vector<std::vector<std::size_t>> sessions = sessions_;
  std::vector<double> demands = demands_;
  if (phantom_per_link) {
    for (std::size_t l = 0; l < capacities_.size(); ++l) {
      sessions.push_back({l});
      demands.push_back(std::numeric_limits<double>::infinity());
    }
  }

  const std::size_t n = sessions.size();
  std::vector<double> rate(n, 0.0);
  std::vector<bool> frozen(n, false);
  std::vector<double> headroom(capacities_.size());
  for (std::size_t l = 0; l < capacities_.size(); ++l) {
    headroom[l] = capacities_[l].bits_per_sec() * utilization;
  }
  std::vector<std::size_t> unfrozen_on(capacities_.size(), 0);
  for (const auto& s : sessions) {
    for (const std::size_t l : s) ++unfrozen_on[l];
  }

  // Progressive filling: all unfrozen sessions share one common level.
  // Each round we find the link that saturates first, pin its sessions
  // at that level, and continue. O(links * sessions) overall — fine for
  // simulation-scale topologies.
  double level = 0.0;
  std::size_t remaining = n;
  while (remaining > 0) {
    // The filling level rises until either a link saturates or some
    // session's demand is reached, whichever comes first.
    double next_level = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < capacities_.size(); ++l) {
      if (unfrozen_on[l] == 0) continue;
      next_level = std::min(
          next_level, headroom[l] / static_cast<double>(unfrozen_on[l]));
    }
    double min_demand = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; ++s) {
      if (!frozen[s]) min_demand = std::min(min_demand, demands[s]);
    }
    const bool demand_limited = min_demand < next_level;
    if (demand_limited) next_level = min_demand;
    assert(next_level >= level - 1e-9 && "filling level must be monotone");
    level = next_level;

    bool froze_any = false;
    if (demand_limited) {
      // Freeze every session whose demand is met at this level.
      for (std::size_t s = 0; s < n; ++s) {
        if (frozen[s] || demands[s] > level * (1.0 + 1e-12)) continue;
        frozen[s] = true;
        froze_any = true;
        rate[s] = demands[s];
        --remaining;
        for (const std::size_t l : sessions[s]) {
          headroom[l] -= demands[s];
          --unfrozen_on[l];
        }
      }
    } else {
      // Freeze every unfrozen session crossing a link saturated at
      // `level`.
      std::vector<bool> saturated(capacities_.size(), false);
      for (std::size_t l = 0; l < capacities_.size(); ++l) {
        if (unfrozen_on[l] == 0) continue;
        const double share = headroom[l] / static_cast<double>(unfrozen_on[l]);
        saturated[l] = share <= level * (1.0 + 1e-12);
      }
      for (std::size_t s = 0; s < n; ++s) {
        if (frozen[s]) continue;
        const bool hits_bottleneck = std::any_of(
            sessions[s].begin(), sessions[s].end(),
            [&](std::size_t l) { return saturated[l]; });
        if (!hits_bottleneck) continue;
        frozen[s] = true;
        froze_any = true;
        rate[s] = level;
        --remaining;
        for (const std::size_t l : sessions[s]) {
          headroom[l] -= level;
          --unfrozen_on[l];
        }
      }
    }
    assert(froze_any && "progressive filling must make progress");
    if (!froze_any) break;  // defensive: avoid an infinite loop in release
  }

  std::vector<sim::Rate> out;
  out.reserve(sessions_.size());
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    out.push_back(sim::Rate::bps(rate[s]));
  }
  return out;
}

}  // namespace phantom::stats
