#include "tcp/tcp_sink.h"

#include <cassert>
#include <stdexcept>

namespace phantom::tcp {

TcpSink::TcpSink(sim::Simulator& sim, int flow, Emitter emit_ack,
                 TcpSinkOptions options)
    : sim_{&sim},
      flow_{flow},
      emit_ack_{std::move(emit_ack)},
      options_{options} {
  if (!emit_ack_) throw std::invalid_argument{"TcpSink needs an emitter"};
}

void TcpSink::receive_packet(Packet packet) {
  if (packet.kind != PacketKind::kData || packet.flow != flow_) return;
  const std::int64_t start = packet.seq;
  const std::int64_t end = packet.seq + packet.payload;

  bool in_order = false;
  if (end <= rcv_nxt_) {
    ++dups_;  // fully duplicate segment
  } else if (start <= rcv_nxt_) {
    in_order = true;
    rcv_nxt_ = end;
    // Pull any previously buffered ranges that are now contiguous.
    auto it = pending_.begin();
    while (it != pending_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      it = pending_.erase(it);
    }
  } else {
    ++ooo_;
    buffer_segment(start, end);
  }

  if (options_.delayed_acks && in_order && pending_.empty()) {
    if (ack_pending_) {
      // Second in-order segment: one ACK now covers both.
      ack_pending_ = false;
      if (delayed_timer_.valid()) {
        sim_->cancel(delayed_timer_);
        delayed_timer_ = {};
      }
      emit_cumulative_ack(packet);
    } else {
      ack_pending_ = true;
      pending_trigger_ = packet;
      delayed_timer_ = sim_->schedule(options_.delayed_ack_timeout,
                                      [this] { flush_delayed_ack(); });
    }
    return;
  }
  // Immediate ACK: plain mode, or a duplicate / out-of-order segment
  // (which must generate prompt duplicate ACKs). A pending delayed ACK
  // is superseded — the cumulative ACK emitted here covers it.
  if (ack_pending_) {
    ack_pending_ = false;
    if (delayed_timer_.valid()) {
      sim_->cancel(delayed_timer_);
      delayed_timer_ = {};
    }
  }
  emit_cumulative_ack(packet);
}

void TcpSink::emit_cumulative_ack(const Packet& trigger) {
  Packet ack = Packet::make_ack(flow_, rcv_nxt_);
  ack.timestamp = trigger.timestamp;
  ack.ack_efci = trigger.efci;
  ++acks_;
  emit_ack_(ack);
}

void TcpSink::flush_delayed_ack() {
  if (!ack_pending_) return;
  ack_pending_ = false;
  if (delayed_timer_.valid()) {
    sim_->cancel(delayed_timer_);
    delayed_timer_ = {};
  }
  emit_cumulative_ack(pending_trigger_);
}

void TcpSink::buffer_segment(std::int64_t start, std::int64_t end) {
  // Merge [start, end) into the pending set.
  auto it = pending_.lower_bound(start);
  if (it != pending_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = pending_.erase(prev);
    }
  }
  while (it != pending_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = pending_.erase(it);
  }
  pending_.emplace(start, end);
}

}  // namespace phantom::tcp
