file(REMOVE_RECURSE
  "libphantom_stats.a"
)
