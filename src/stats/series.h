// Analysis of recorded time series: the numbers behind every figure.
#pragma once

#include <span>

#include "sim/time.h"
#include "sim/trace.h"

namespace phantom::stats {

/// Five-number-ish summary of a set of samples.
struct Summary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Summary over samples with time in [t0, t1].
[[nodiscard]] Summary summarize(std::span<const sim::Sample> samples,
                                sim::Time t0, sim::Time t1);

/// Summary over the whole series.
[[nodiscard]] Summary summarize(std::span<const sim::Sample> samples);

/// Value of the (step-interpolated) series at time t: the last sample at
/// or before t, or `fallback` if there is none.
[[nodiscard]] double value_at(std::span<const sim::Sample> samples,
                              sim::Time t, double fallback = 0.0);

/// Time-weighted average of the step-interpolated series over [t0, t1].
/// Series treated as holding each sample's value until the next sample.
[[nodiscard]] double time_average(std::span<const sim::Sample> samples,
                                  sim::Time t0, sim::Time t1);

/// First time after which the series stays within `tolerance_frac` of
/// `target` until its end (and for at least `min_hold`). Returns
/// Time::max() if it never settles. This is how EXPERIMENTS.md reports
/// "convergence time".
[[nodiscard]] sim::Time convergence_time(std::span<const sim::Sample> samples,
                                         double target, double tolerance_frac,
                                         sim::Time min_hold = sim::Time::zero());

}  // namespace phantom::stats
