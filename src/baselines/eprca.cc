#include "baselines/eprca.h"

#include <algorithm>
#include <cassert>

namespace phantom::baselines {

EprcaController::EprcaController(sim::Simulator& sim, sim::Rate link_capacity,
                                 EprcaConfig config)
    : sim_{&sim},
      config_{config},
      link_bps_{link_capacity.bits_per_sec()},
      macr_{std::min(config.initial_macr.bits_per_sec(), link_bps_)},
      macr_trace_{"eprca.macr"} {
  config_.validate();
  assert(link_bps_ > 0.0);
  macr_trace_.record(sim_->now(), macr_);
}

void EprcaController::on_forward_rm(atm::Cell& cell, std::size_t) {
  // After a warm restart, the first window of CCRs replaces the slow
  // 1/16-gain crawl from the boot constant with a one-shot seed at the
  // mean observed sending rate.
  if (warm_.open() && warm_.sample(cell.ccr.bits_per_sec())) {
    if (const auto seed = warm_.close()) {
      macr_ = std::clamp(*seed, 0.0, link_bps_);
      warm_.record_seed(macr_);
    }
  } else {
    macr_ += config_.averaging * (cell.ccr.bits_per_sec() - macr_);
    macr_ = std::clamp(macr_, 0.0, link_bps_);
  }
  macr_trace_.record(sim_->now(), macr_);
  note_rate_update(sim_->now());
}

void EprcaController::reset() {
  macr_ = std::min(config_.initial_macr.bits_per_sec(), link_bps_);
  macr_trace_.record(sim_->now(), macr_);
}

void EprcaController::warm_restart() {
  reset();
  warm_.begin();
}

void EprcaController::on_backward_rm(atm::Cell& cell, std::size_t queue_len) {
  if (queue_len > config_.very_congested_threshold) {
    cell.er = std::min(cell.er, sim::Rate::bps(config_.mrf * macr_));
    cell.ci = true;  // beats down every session indiscriminately
  } else if (queue_len > config_.queue_threshold &&
             cell.ccr.bits_per_sec() > config_.dpf * macr_) {
    cell.er = std::min(cell.er, sim::Rate::bps(config_.erf * macr_));
  }
}

}  // namespace phantom::baselines
