#include "atm/switch.h"

#include <cassert>
#include <stdexcept>

namespace phantom::atm {

std::size_t Switch::add_port(sim::Rate rate, std::size_t queue_limit,
                             Link link,
                             std::unique_ptr<PortController> controller,
                             QueueDiscipline discipline) {
  ports_.push_back(std::make_unique<OutputPort>(
      *sim_, rate, queue_limit, link, std::move(controller), discipline));
  return ports_.size() - 1;
}

void Switch::route_vc(int vc, std::size_t forward_port,
                      std::size_t backward_port) {
  if (forward_port >= ports_.size() || backward_port >= ports_.size()) {
    throw std::out_of_range{"route_vc: port index out of range"};
  }
  const auto [_, inserted] = routes_.emplace(vc, Route{forward_port, backward_port});
  if (!inserted) {
    throw std::invalid_argument{"route_vc: VC already routed on " + name_};
  }
}

void Switch::receive_cell(Cell cell) {
  const auto it = routes_.find(cell.vc);
  if (it == routes_.end()) {
    ++unrouted_;
    return;
  }
  const Route route = it->second;
  OutputPort& fwd = *ports_[route.forward_port];
  switch (cell.kind) {
    case CellKind::kData:
      fwd.send(cell);
      break;
    case CellKind::kForwardRm:
      fwd.controller().on_forward_rm(cell, fwd.queue_length());
      fwd.send(cell);
      break;
    case CellKind::kBackwardRm:
      // Feedback for the forward direction is written here, then the
      // cell continues along the reverse path.
      fwd.controller().on_backward_rm(cell, fwd.queue_length());
      ports_[route.backward_port]->send(cell);
      break;
  }
}

}  // namespace phantom::atm
