// CAPC — Congestion Avoidance using Proportional Control [Bar94].
//
// Barnhart's scheme is the closest relative of Phantom in the paper's
// comparison: both steer on unused capacity. CAPC uses the *fraction* of
// unused capacity (the load factor z) and adjusts its fair-share
// estimate ERS multiplicatively:
//
//   every Δt:  z = offered / (u * C)
//              z < 1:  ERS *= min(ERU, 1 + (1 - z) * Rup)
//              z >= 1: ERS *= max(ERF, 1 - (z - 1) * Rdn)
//   on BRM:    ER = min(ER, ERS); CI = 1 while queue > threshold
//
// whereas Phantom filters the *absolute* residual bandwidth. The paper's
// Fig. 22 finding (reproduced by `bench_fig_capc`): CAPC converges more
// slowly, with a smaller transient queue, because its per-interval rate
// moves are bounded multiplicative nudges while Phantom takes steps
// proportional to the measured residual.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "atm/port_controller.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace phantom::baselines {

struct CapcConfig {
  sim::Time interval = sim::Time::ms(1);  ///< measurement period Δt
  double utilization = 0.9;               ///< target utilization u
  double rate_up = 0.1;                   ///< Rup
  double rate_down = 0.8;                 ///< Rdn
  double eru = 1.5;                       ///< max multiplicative increase
  double erf = 0.5;                       ///< max multiplicative decrease
  std::size_t ci_queue_threshold = 50;    ///< cells; binary feedback kicks in
  sim::Rate initial_ers = sim::Rate::mbps(8.5);
  sim::Rate min_ers = sim::Rate::cells_per_sec(10);

  void validate() const {
    if (interval <= sim::Time::zero())
      throw std::invalid_argument{"interval must be positive"};
    if (utilization <= 0 || utilization > 1)
      throw std::invalid_argument{"utilization must be in (0,1]"};
    if (rate_up <= 0) throw std::invalid_argument{"rate_up must be positive"};
    if (rate_down <= 0) throw std::invalid_argument{"rate_down must be positive"};
    if (eru <= 1) throw std::invalid_argument{"eru must exceed 1"};
    if (erf <= 0 || erf >= 1) throw std::invalid_argument{"erf must be in (0,1)"};
    if (min_ers.bits_per_sec() <= 0)
      throw std::invalid_argument{"min_ers must be positive"};
  }
};

class CapcController final : public atm::PortController {
 public:
  CapcController(sim::Simulator& sim, sim::Rate link_capacity,
                 CapcConfig config = {});

  void on_cell_accepted(const atm::Cell& cell, std::size_t queue_len) override;
  void on_cell_dropped(const atm::Cell& cell) override;
  void on_forward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void on_backward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void reset() override;
  void warm_restart() override;
  [[nodiscard]] const atm::WarmStartAudit* warm_audit() const override {
    return &warm_.audit();
  }

  [[nodiscard]] sim::Rate fair_share() const override {
    return sim::Rate::bps(ers_);
  }
  [[nodiscard]] std::string name() const override { return "capc"; }
  [[nodiscard]] const sim::Trace& ers_trace() const { return ers_trace_; }

  /// Base surface plus the advertised ERS.
  void register_metrics(obs::Registry& reg,
                        const std::string& prefix) override {
    PortController::register_metrics(reg, prefix);
    reg.add_gauge({prefix + ".ers_mbps", "capc.ers_mbps",
                   obs::MetricType::kGauge, "Mb/s", "CapcController",
                   "explicit rate stamped on backward RM cells"},
                  [this] { return ers_ / 1e6; });
  }

 private:
  void on_interval();
  void close_warm_window();

  sim::Simulator* sim_;
  CapcConfig config_;
  double target_bps_;  // u * C
  double ers_;
  std::uint64_t arrived_cells_ = 0;
  atm::WarmStartWindow warm_;
  sim::Trace ers_trace_;
};

}  // namespace phantom::baselines
