file(REMOVE_RECURSE
  "CMakeFiles/exp_probes_test.dir/exp_probes_test.cc.o"
  "CMakeFiles/exp_probes_test.dir/exp_probes_test.cc.o.d"
  "exp_probes_test"
  "exp_probes_test.pdb"
  "exp_probes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_probes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
