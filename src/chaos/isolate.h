// Process isolation for chaos trials.
//
// A genuine crash — SIGSEGV, assert, sanitizer abort, OOM, livelock
// that defeats the in-process watchdog — must not take down the whole
// search: it is exactly the class of bug the harness exists to find.
// run_trial_isolated() forks, applies rlimits (CPU seconds, address
// space) and a wall-clock kill deadline in the child, runs the ordinary
// in-process trial there, and streams the result back over a pipe:
//
//   parent ──fork──► child: rlimits → run_trial() → result frame → _exit(0)
//     │                │
//     │   result pipe  │  'P' progress frames (events so far), then one
//     │◄───────────────┤  'R' frame carrying the bit-exact TrialResult
//     │   stderr pipe  │
//     │◄───────────────┤  assert/ASan/UBSan output, tail kept
//
// A child that dies instead of delivering a result becomes a structured
// Verdict::kProcessCrash (signal name, exit code, stderr tail, events
// executed so far) and the search carries on. Result frames carry
// doubles by bit pattern, so for a healthy trial the decoded result is
// byte-identical to what an in-process run would have produced — the
// report does not depend on whether isolation was on.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "chaos/runner.h"

namespace phantom::chaos {

struct IsolateOptions {
  /// Wall-clock kill deadline per trial; the parent SIGKILLs a child
  /// that outlives it. <= 0 disables (the in-process watchdog still
  /// bounds healthy runs by event count and sim time).
  std::int64_t timeout_ms = 30'000;
  /// RLIMIT_CPU in seconds (kernel sends SIGXCPU, then SIGKILL one
  /// second later). 0 disables.
  int cpu_limit_sec = 0;
  /// RLIMIT_AS in MiB, turning a runaway allocation into a bad_alloc /
  /// abort inside the child. 0 disables. Ignored in sanitizer builds:
  /// ASan/TSan reserve terabytes of shadow address space.
  std::int64_t memory_limit_mb = 0;
  /// How much of the end of the child's stderr to keep for the report.
  std::size_t stderr_tail_bytes = 4096;
};

/// How a child ended, from the parent's side of waitpid().
struct ChildExit {
  enum class Kind {
    kExited,    ///< _exit(code)
    kSignaled,  ///< killed by `code` (a signal number)
    kTimedOut,  ///< parent SIGKILLed it at the wall-clock deadline
  };
  Kind kind = Kind::kExited;
  int code = 0;  ///< exit code (kExited) or signal number (otherwise)
};

/// "SIGSEGV" for 11, ...; "SIG<n>" for signals without a common name.
[[nodiscard]] std::string signal_name(int sig);

/// Decodes a raw waitpid() status. `timed_out` marks a child the parent
/// killed at the deadline (the raw status is then a plain SIGKILL).
[[nodiscard]] ChildExit classify_wait_status(int wait_status, bool timed_out);

/// The structured kProcessCrash result for a child that died without
/// delivering a result frame. `timeout_ms` only shapes the kTimedOut
/// message.
[[nodiscard]] TrialResult process_crash_result(const ChildExit& how,
                                               const std::string& stderr_tail,
                                               std::uint64_t events_so_far,
                                               std::int64_t timeout_ms);

/// One in-flight isolated trial: the forked child, its two pipes, and
/// the wall-clock deadline. The supervisor multiplexes many of these;
/// run_trial_isolated() drives exactly one. Not copyable; the
/// destructor SIGKILLs and reaps a child that is still running.
class IsolatedTrial {
 public:
  /// Runs in the child between rlimit setup and _exit(0); writes frames
  /// to `result_fd`. Tests substitute hostile bodies (big allocations,
  /// spin loops, raise()) to exercise the parent-side decoding.
  using Body = std::function<void(int result_fd)>;

  /// Forks and starts `body`. Returns nullptr and fills `infra_error`
  /// on fork/pipe failure — an infrastructure problem the supervisor
  /// retries, never a trial verdict.
  [[nodiscard]] static std::unique_ptr<IsolatedTrial> spawn(
      const Body& body, const IsolateOptions& opt, std::string& infra_error);

  ~IsolatedTrial();
  IsolatedTrial(const IsolatedTrial&) = delete;
  IsolatedTrial& operator=(const IsolatedTrial&) = delete;

  /// Pipe fds the caller may poll(); -1 once they reached EOF.
  [[nodiscard]] int result_fd() const { return result_fd_; }
  [[nodiscard]] int stderr_fd() const { return stderr_fd_; }

  /// Absolute CLOCK_MONOTONIC kill deadline in ms, if a timeout is set.
  [[nodiscard]] std::optional<std::int64_t> deadline_ms() const {
    return deadline_ms_;
  }

  /// Drains whatever the pipes hold without blocking and reaps the
  /// child once both pipes hit EOF. Returns finished().
  bool pump();

  /// SIGKILLs the child (deadline exceeded, or its result is no longer
  /// needed). The trial still finishes through pump().
  void kill_child(bool timed_out);

  [[nodiscard]] bool finished() const { return reaped_; }

  /// The trial's outcome; only valid once finished(). A complete result
  /// frame is returned bit-exact; anything else is a kProcessCrash.
  [[nodiscard]] TrialResult result() const;

 private:
  IsolatedTrial() = default;

  pid_t pid_ = -1;
  int result_fd_ = -1;
  int stderr_fd_ = -1;
  std::optional<std::int64_t> deadline_ms_;
  std::int64_t timeout_ms_ = 0;
  std::size_t stderr_tail_bytes_ = 4096;
  bool killed_on_timeout_ = false;
  bool reaped_ = false;
  int wait_status_ = 0;
  std::string result_buf_;
  std::string stderr_tail_;
};

/// The Body that runs one chaos trial and reports it: periodic 'P'
/// progress frames via the simulator's crash-safe progress hook, then
/// the final 'R' result frame. Captures copies, so a supervisor can
/// outlive the call site's arguments.
[[nodiscard]] IsolatedTrial::Body trial_body(ScenarioSpec spec,
                                             std::uint64_t seed,
                                             fault::FaultPlan plan,
                                             TrialOptions opt,
                                             std::optional<Baseline> baseline);

/// Blocking convenience: one trial in one child, start to finish.
[[nodiscard]] TrialResult run_trial_isolated(const ScenarioSpec& spec,
                                             std::uint64_t seed,
                                             const fault::FaultPlan& plan,
                                             const TrialOptions& opt,
                                             const Baseline* baseline,
                                             const IsolateOptions& iso);

/// CLOCK_MONOTONIC now, in milliseconds (the clock deadlines use).
[[nodiscard]] std::int64_t monotonic_ms();

/// False in ASan/TSan builds, where RLIMIT_AS cannot be enforced (the
/// sanitizer runtimes reserve terabytes of shadow address space) and
/// IsolateOptions::memory_limit_mb is therefore ignored.
[[nodiscard]] bool address_space_limit_supported();

}  // namespace phantom::chaos
