// TCP Reno and Tahoe senders, after the pseudo-code in [Ste94] §21 as
// the paper specifies: slow start, congestion avoidance, fast
// retransmit; Reno adds fast recovery, Tahoe restarts in slow start.
//
// Paper-specific extensions (inherited from TcpSender, off-path for
// plain operation): CR stamping (§4.3), EFCI-suppressed window growth
// (Fig. 11), rate-damped Source Quench reaction (Fig. 9).
#pragma once

#include "tcp/tcp_sender.h"

namespace phantom::tcp {

/// Greedy Reno sender.
class RenoSource final : public TcpSender {
 public:
  RenoSource(sim::Simulator& sim, int flow, RenoConfig config, Emitter emit)
      : TcpSender{sim, flow, config, std::move(emit)} {}

  [[nodiscard]] std::string name() const override { return "reno"; }

 private:
  void on_ack_growth(bool efci_suppressed) override {
    if (efci_suppressed) return;
    if (cwnd_bytes() < static_cast<double>(ssthresh_bytes())) {
      set_cwnd(cwnd_bytes() + mss());  // slow start: exponential per RTT
    } else {
      set_cwnd(cwnd_bytes() + mss() * mss() / cwnd_bytes());  // cong. avoid
    }
  }

  bool on_fast_retransmit() override {
    // Fast recovery [Ste94 §21.7]: half the flight plus the three
    // segments the dup ACKs signalled have left the network.
    set_ssthresh(half_flight());
    set_cwnd(static_cast<double>(ssthresh_bytes()) + 3 * mss());
    return true;  // enter fast recovery
  }

  void on_recovery_exit() override {
    set_cwnd(static_cast<double>(ssthresh_bytes()));  // deflate
  }
};

/// Greedy Tahoe sender: like Reno but without fast recovery — after the
/// fast retransmit the window restarts from one segment in slow start
/// (the pre-1990 BSD behaviour, kept as a baseline ablation).
class TahoeSource final : public TcpSender {
 public:
  TahoeSource(sim::Simulator& sim, int flow, RenoConfig config, Emitter emit)
      : TcpSender{sim, flow, config, std::move(emit)} {}

  [[nodiscard]] std::string name() const override { return "tahoe"; }

 private:
  void on_ack_growth(bool efci_suppressed) override {
    if (efci_suppressed) return;
    if (cwnd_bytes() < static_cast<double>(ssthresh_bytes())) {
      set_cwnd(cwnd_bytes() + mss());
    } else {
      set_cwnd(cwnd_bytes() + mss() * mss() / cwnd_bytes());
    }
  }

  bool on_fast_retransmit() override {
    set_ssthresh(half_flight());
    set_cwnd(mss());  // back to slow start
    return false;     // no fast recovery
  }

  void on_recovery_exit() override {}  // never entered
};

}  // namespace phantom::tcp
