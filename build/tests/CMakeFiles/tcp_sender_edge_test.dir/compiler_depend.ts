# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tcp_sender_edge_test.
