// Cross-feature seams: Vegas under EFCI marking, Tahoe end-to-end,
// CBR across multi-hop paths, demand + CBR interaction.
#include <gtest/gtest.h>

#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "tcp/phantom_policies.h"
#include "tcp/tcp_network.h"
#include "topo/abr_network.h"
#include "topo/workload.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

TEST(CrossFeatureTest, VegasHonoursEfciMarking) {
  // The EFCI growth-suppression lives in the shared sender chassis, so
  // it must bind for Vegas too: with every packet marked, the window
  // can only shrink or hold.
  Simulator sim;
  tcp::TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  tcp::TcpTrunkOptions opts;
  opts.policy = [](Simulator& s, Rate rate) {
    // Factor so small that everything with a measured CR is over-rate.
    core::PhantomConfig cfg;
    cfg.initial_macr = Rate::kbps(1);
    return std::make_unique<tcp::EfciMarkPolicy>(s, rate, 1e-9, cfg);
  };
  const auto snk = net.add_sink_node(r, opts);
  tcp::FlowOptions fo;
  fo.kind = tcp::SenderKind::kVegas;
  net.add_flow(r, {}, snk, fo);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(3));
  // cwnd cannot have grown beyond the slow-start segments sent before
  // the first CR measurement existed (~1 RTT of unmarked growth).
  EXPECT_LT(net.source(0).cwnd_bytes(), 16 * 512.0);
}

TEST(CrossFeatureTest, TahoeDeliversEndToEnd) {
  Simulator sim;
  tcp::TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  tcp::TcpTrunkOptions opts;
  opts.queue_limit = 20;  // force losses so Tahoe's recovery is exercised
  const auto snk = net.add_sink_node(r, opts);
  tcp::FlowOptions fo;
  fo.kind = tcp::SenderKind::kTahoe;
  net.add_flow(r, {}, snk, fo);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(5));
  EXPECT_GT(net.delivered_bytes(0), 2'000'000);
  EXPECT_GT(net.source(0).fast_retransmits() + net.source(0).timeouts(), 0u);
}

TEST(CrossFeatureTest, CbrAcrossMultiHopPath) {
  // CBR routed over two trunks: consumes capacity on both; the long ABR
  // session sees the residual on each.
  Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto a = net.add_switch("a");
  const auto b = net.add_switch("b");
  const auto t = net.add_trunk(a, b, {});
  const auto d = net.add_destination(b, {});
  net.add_session(a, {t}, d);
  net.add_cbr_session(a, {t}, d, Rate::mbps(60));
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  probe.mark();
  sim.run_until(Time::ms(600));
  // ABR share: (u*C - 60)/2 = 41.25 on each link (both equally loaded).
  EXPECT_NEAR(probe.rates_mbps()[0], (0.95 * 150 - 60) / 2, 5.0);
  EXPECT_GT(net.cbr_source(0).cells_sent(), 10'000u);
  EXPECT_EQ(net.trunk_port(t).cells_dropped(), 0u);
}

TEST(CrossFeatureTest, DemandLimitedPlusCbrBackground) {
  // All three traffic kinds at once: CBR 40, one 8 Mb/s-demand session,
  // two greedy sessions. Greedy share: (u*C - 40 - 8)/3 = 31.5.
  Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto d = net.add_destination(sw, {});
  const auto bounded = net.add_session(sw, {}, d);
  net.add_session(sw, {}, d);
  net.add_session(sw, {}, d);
  net.set_session_demand(bounded, Rate::mbps(8));
  net.add_cbr_session(sw, {}, d, Rate::mbps(40));
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(500));
  probe.mark();
  sim.run_until(Time::ms(700));
  const auto rates = probe.rates_mbps();
  EXPECT_NEAR(rates[0], 8.0, 1.0);
  EXPECT_NEAR(rates[1], (0.95 * 150 - 40 - 8) / 3, 4.0);
  EXPECT_NEAR(rates[2], (0.95 * 150 - 40 - 8) / 3, 4.0);
  // Reference solver agrees on the full mixed allocation.
  const auto ref = net.reference_rates(true, 0.95);
  EXPECT_NEAR(ref[0].mbits_per_sec(), 8.0, 1e-9);
  EXPECT_NEAR(ref[1].mbits_per_sec(), (0.95 * 150 - 40 - 8) / 3, 1e-6);
}

TEST(CrossFeatureTest, EricaWithOnOffTraffic) {
  // The per-VC comparator also has to survive churn: its activity
  // timeout releases the shares of silent VCs.
  Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kErica)};
  const auto sw = net.add_switch("sw");
  const auto d = net.add_destination(sw, {});
  for (int i = 0; i < 3; ++i) net.add_session(sw, {}, d);
  net.start_all(Time::zero(), Time::zero());
  topo::OnOffDriver::Options opt;
  opt.on_period = Time::ms(60);
  opt.off_period = Time::ms(120);  // long off: must expire from the table
  opt.first_toggle = Time::ms(60);
  topo::OnOffDriver driver{sim, net.source(2), opt};
  // Inside an OFF phase (60-180 ms after a few cycles): the two greedy
  // sessions should share as n=2 under ERICA: u*C/2 = 71.25 each.
  sim.run_until(Time::ms(480));  // off at 420.. (60 on, 120 off cycle)
  exp::GoodputProbe probe{sim, net};
  probe.mark();
  sim.run_until(Time::ms(530));
  const auto rates = probe.rates_mbps();
  EXPECT_NEAR(rates[0], 0.95 * 150 / 2, 8.0);
  EXPECT_NEAR(rates[1], 0.95 * 150 / 2, 8.0);
  EXPECT_LT(rates[2], 1.0);
}

}  // namespace
}  // namespace phantom
