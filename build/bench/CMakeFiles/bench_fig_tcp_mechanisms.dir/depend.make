# Empty dependencies file for bench_fig_tcp_mechanisms.
# This may be replaced when dependencies are built.
