file(REMOVE_RECURSE
  "CMakeFiles/maxmin_property_test.dir/maxmin_property_test.cc.o"
  "CMakeFiles/maxmin_property_test.dir/maxmin_property_test.cc.o.d"
  "maxmin_property_test"
  "maxmin_property_test.pdb"
  "maxmin_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
