// ABR source end system: paced cell transmission + rate adaptation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

#include "atm/abr_params.h"
#include "atm/cell.h"
#include "atm/link.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace phantom::atm {

/// How a source treats the network's rate feedback. Everything except
/// kCompliant models a misbehaving end system the policing layer must
/// contain (Phantom itself, like all ER-based ABR control, has no
/// defense of its own against a source that simply ignores the ER
/// field).
enum class SourceBehavior {
  kCompliant,  ///< TM 4.0 behaviour (the default)
  kGreedy,     ///< ignores ER/CI entirely and transmits at PCR
  kForging,    ///< greedy, plus forged RM cells: understated CCR,
               ///< inflated ER, and self-addressed backward RM cells
  kPartial,    ///< obeys ER scaled by a compliance factor in [0, 1]
};

[[nodiscard]] std::string to_string(SourceBehavior b);

/// Source end system per the TM 4.0 subset the paper's simulations use:
///
///  * transmits cells paced at ACR while active; every Nrm-th cell is an
///    in-rate forward RM cell carrying CCR = ACR and ER = PCR;
///  * on a backward RM cell: multiplicative decrease by Nrm/RDF if CI is
///    set, otherwise additive increase by AIR*Nrm; then ACR is clamped
///    into [max(MCR, TCR), min(ER, PCR)] — the ER clamp is how explicit-
///    rate switches (Phantom and the baselines) actually steer sources;
///  * use-it-or-lose-it: a source that restarts after being idle longer
///    than TOF * Nrm / ACR falls back to ICR [Sat96, "TOF"];
///  * feedback-loss backoff: once `crm` FRMs have gone unanswered, each
///    further FRM cuts ACR by `cdf` (floored at ICR/MCR), and an ACR
///    with no backward RM for ADTF snaps to ICR — so a source degrades
///    gracefully through an outage instead of blasting at a stale rate,
///    and recovers through the normal increase path when feedback
///    resumes (TM 4.0 source rules 5 and ADTF).
///
/// On/off workloads drive `set_active`; greedy sources just start once.
class AbrSource final : public CellSink {
 public:
  AbrSource(sim::Simulator& sim, int vc, AbrParams params, Link to_network);

  AbrSource(const AbrSource&) = delete;
  AbrSource& operator=(const AbrSource&) = delete;

  /// Begins transmitting at `at` (absolute time).
  void start(sim::Time at);

  /// On/off control; re-activation applies use-it-or-lose-it.
  void set_active(bool active);

  /// Caps the source's sending rate below ACR: a non-greedy application
  /// that only ever has `demand` worth of traffic. The control loop
  /// still runs (RM cells flow at the effective rate); the unclaimed
  /// share is redistributed by the switches. Rate::max-like default =
  /// greedy.
  void set_demand(sim::Rate demand);

  /// Switches the source's feedback behaviour mid-run (the chaos
  /// `misbehave`/`comply` faults). Defecting to kGreedy/kForging jumps
  /// ACR straight to PCR; returning to kCompliant re-enters at ICR (a
  /// reformed defector must not keep its ill-gotten rate).
  /// `compliance` is only meaningful for kPartial: 1 = fully compliant,
  /// 0 = ignores ER entirely.
  void set_behavior(SourceBehavior behavior, double compliance = 1.0);

  [[nodiscard]] SourceBehavior behavior() const { return behavior_; }
  [[nodiscard]] double compliance() const { return compliance_; }

  /// Receives backward RM cells addressed to this source's VC.
  void receive_cell(Cell cell) override;

  [[nodiscard]] int vc() const { return vc_; }
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const AbrParams& params() const { return params_; }
  /// Access link into the network (shared fault state, see LinkState).
  [[nodiscard]] Link& link() { return link_; }
  [[nodiscard]] const Link& link() const { return link_; }
  [[nodiscard]] sim::Rate acr() const { return acr_; }
  /// The rate cells actually leave at: min(ACR, demand).
  [[nodiscard]] sim::Rate effective_rate() const {
    return std::min(acr_, demand_);
  }
  [[nodiscard]] std::uint64_t data_cells_sent() const { return data_sent_; }
  /// Complete AAL5 frames emitted (frame_cells data cells each); the
  /// numerator of frame-level goodput at the destination.
  [[nodiscard]] std::uint64_t frames_sent() const { return frame_id_; }
  [[nodiscard]] std::uint64_t rm_cells_sent() const { return rm_sent_; }
  [[nodiscard]] std::uint64_t brm_cells_received() const { return brm_received_; }

  /// Forward RM cells sent since the last backward RM was received —
  /// the TM 4.0 missing-RM counter driving the Crm/CDF decrease.
  [[nodiscard]] std::uint64_t frms_since_brm() const { return frm_since_brm_; }
  /// When the last backward RM arrived (start time until the first one).
  [[nodiscard]] sim::Time last_brm_time() const { return last_brm_time_; }
  /// The ER the source last obeyed (after any kPartial relaxation,
  /// capped at PCR); ICR before any feedback has arrived.
  [[nodiscard]] sim::Rate last_granted_er() const { return last_granted_er_; }

  /// The "no stale-rate transmission" envelope: the largest ACR the
  /// feedback-loss protocol permits this source *right now*. PCR (i.e.
  /// unconstrained) while feedback is live, inactive, or fewer than Crm
  /// FRMs are unacknowledged; otherwise the last granted ER shrunk by
  /// CDF per overdue FRM, floored at max(ICR, MCR); and max(ICR, MCR)
  /// outright once the ADTF backstop (plus two Trm of FRM-spacing
  /// slack) has expired. The InvariantMonitor flags any source above
  /// this — including one whose decay was ablated off.
  [[nodiscard]] sim::Rate stale_rate_envelope() const;
  /// Self-addressed forged backward RM cells emitted while kForging.
  [[nodiscard]] std::uint64_t forged_brm_sent() const { return forged_brm_sent_; }

  /// ACR over time; recorded at every rate change (the paper's
  /// "sessions' allowed rate" curves).
  [[nodiscard]] const sim::Trace& acr_trace() const { return acr_trace_; }

  /// Attaches the structured event log: every ACR change records a
  /// kSourceRate event on this source's VC track.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

  /// Registers this source's send/feedback counters and ACR gauge
  /// under `prefix`.
  void register_metrics(obs::Registry& reg, const std::string& prefix);

 private:
  void send_next_cell();
  void emit_forward_rm();
  void on_trm_check();
  void pre_frm_update();
  void apply_backward_rm(const Cell& cell);
  void set_acr(sim::Rate r);
  [[nodiscard]] Cell make_forward_rm() const;
  void emit_forged_backward_rm();

  sim::Simulator* sim_;
  int vc_;
  AbrParams params_;
  Link link_;

  sim::Rate acr_;
  sim::Rate demand_ = sim::Rate::bps(1e18);  // effectively unbounded
  bool active_ = false;
  bool started_ = false;
  bool sending_ = false;           // a pacing event is outstanding
  std::uint64_t cells_since_rm_ = 0;
  std::uint32_t frame_id_ = 0;   // AAL5 frame being emitted
  int frame_pos_ = 0;            // data cells of frame_id_ sent so far
  std::uint64_t data_sent_ = 0;
  std::uint64_t rm_sent_ = 0;
  std::uint64_t brm_received_ = 0;
  sim::Time last_send_ = sim::Time::zero();
  sim::Time last_rm_sent_ = sim::Time::zero();
  std::uint64_t frm_since_brm_ = 0;
  sim::Time last_brm_time_ = sim::Time::zero();
  sim::Rate last_granted_er_;
  std::uint64_t epoch_ = 0;        // invalidates stale pacing events
  SourceBehavior behavior_ = SourceBehavior::kCompliant;
  double compliance_ = 1.0;        // kPartial only: 1 = obeys ER fully
  std::uint64_t forged_brm_sent_ = 0;
  sim::Trace acr_trace_;
  obs::EventLog* event_log_ = nullptr;
};

}  // namespace phantom::atm
