// End-to-end behaviour of the EPRCA / APRC / CAPC baselines on the
// paper's configurations, and the comparative claims of §5.
#include <gtest/gtest.h>

#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/series.h"
#include "topo/abr_network.h"

namespace phantom::exp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;

struct Bottleneck {
  Bottleneck(Simulator& sim, Algorithm alg, int n)
      : net{sim, make_factory(alg)} {
    const auto sw = net.add_switch("sw");
    dest = net.add_destination(sw, {});
    for (int i = 0; i < n; ++i) net.add_session(sw, {}, dest);
    net.start_all(Time::zero(), Time::zero());
  }
  AbrNetwork net;
  AbrNetwork::DestId dest = 0;
};

class AllAlgorithms : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AllAlgorithms, TwoGreedySessionsShareFairly) {
  Simulator sim;
  Bottleneck b{sim, GetParam(), 2};
  sim.run_until(Time::ms(300));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(500));
  const auto rates = probe.rates_mbps();
  EXPECT_GT(stats::jain_index(rates), 0.90) << to_string(GetParam());
  // Aggregate goodput within a sane band: above half the link, at most
  // the link rate.
  EXPECT_GT(probe.total_mbps(), 75.0) << to_string(GetParam());
  EXPECT_LT(probe.total_mbps(), 151.0) << to_string(GetParam());
}

TEST_P(AllAlgorithms, FairShareEstimateIsLive) {
  Simulator sim;
  Bottleneck b{sim, GetParam(), 2};
  sim.run_until(Time::ms(200));
  const auto share =
      b.net.dest_port(b.dest).controller().fair_share().mbits_per_sec();
  EXPECT_GT(share, 1.0) << to_string(GetParam());
  EXPECT_LE(share, 150.0) << to_string(GetParam());
}

TEST_P(AllAlgorithms, TenSessionsRemainFairAndStable) {
  Simulator sim;
  Bottleneck b{sim, GetParam(), 10};
  sim.run_until(Time::ms(400));
  GoodputProbe probe{sim, b.net};
  probe.mark();
  sim.run_until(Time::ms(600));
  EXPECT_GT(stats::jain_index(probe.rates_mbps()), 0.85)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AllAlgorithms,
                         ::testing::Values(Algorithm::kPhantom,
                                           Algorithm::kEprca,
                                           Algorithm::kAprc,
                                           Algorithm::kCapc),
                         [](const auto& info) { return to_string(info.param); });

TEST(ComparisonTest, PhantomRampsFasterThanCapc) {
  // Fig. 22's qualitative claim: CAPC's bounded multiplicative steps
  // converge more slowly than Phantom's residual-proportional steps, so
  // early goodput is lower.
  auto early_goodput = [](Algorithm alg) {
    Simulator sim;
    Bottleneck b{sim, alg, 2};
    GoodputProbe probe{sim, b.net};
    sim.run_until(Time::ms(5));
    probe.mark();
    sim.run_until(Time::ms(25));
    return probe.total_mbps();
  };
  EXPECT_GT(early_goodput(Algorithm::kPhantom),
            1.2 * early_goodput(Algorithm::kCapc));
}

TEST(ComparisonTest, PhantomEquilibriumBelowCapcEquilibrium) {
  // Phantom's phantom session costs one share: u_p*C/(n+1) per session,
  // CAPC gives u_c*C/n. With n = 2: 47.5 vs 67.5 Mb/s.
  auto steady = [](Algorithm alg) {
    Simulator sim;
    Bottleneck b{sim, alg, 2};
    sim.run_until(Time::ms(400));
    GoodputProbe probe{sim, b.net};
    probe.mark();
    sim.run_until(Time::ms(600));
    return probe.rates_mbps();
  };
  const auto phantom = steady(Algorithm::kPhantom);
  const auto capc = steady(Algorithm::kCapc);
  EXPECT_NEAR(phantom[0], 47.5, 5.0);
  EXPECT_NEAR(capc[0], 67.5, 7.0);
}

TEST(ComparisonTest, LongPathSessionNotBeatenDownByPhantom) {
  // Beat-down configuration: a long session crossing three controlled
  // hops competing with one local session per hop. Under Phantom the
  // long session receives the same share as the locals (max-min with a
  // phantom per link); binary-feedback baselines systematically
  // disadvantage it [BdJ94].
  auto run = [](Algorithm alg) {
    Simulator sim;
    AbrNetwork net{sim, make_factory(alg)};
    const auto s0 = net.add_switch("s0");
    const auto s1 = net.add_switch("s1");
    const auto s2 = net.add_switch("s2");
    const auto t01 = net.add_trunk(s0, s1, {});
    const auto t12 = net.add_trunk(s1, s2, {});
    const auto d_end = net.add_destination(s2, {});
    topo::TrunkOptions stub;
    stub.controlled = false;
    stub.rate = Rate::mbps(622);
    const auto d1 = net.add_destination(s1, stub);
    const auto d2 = net.add_destination(s2, stub);
    net.add_session(s0, {t01, t12}, d_end);  // long (3 controlled links)
    net.add_session(s0, {t01}, d1);
    net.add_session(s1, {t12}, d2);
    net.add_session(s2, {}, d_end);  // local on the last hop
    net.start_all(Time::zero(), Time::zero());
    sim.run_until(Time::ms(400));
    GoodputProbe probe{sim, net};
    probe.mark();
    sim.run_until(Time::ms(700));
    return probe.rates_mbps();
  };
  const auto phantom = run(Algorithm::kPhantom);
  // Long session and each local share every link evenly (with the
  // phantom: u*C/3 = 47.5 each).
  EXPECT_NEAR(phantom[0], 47.5, 7.0);
  const double phantom_ratio = phantom[0] / phantom[1];
  EXPECT_GT(phantom_ratio, 0.8);

  const auto eprca = run(Algorithm::kEprca);
  const double eprca_ratio = eprca[0] / eprca[1];
  // The long session must do relatively worse under EPRCA than under
  // Phantom (beat-down), by a clear margin.
  EXPECT_LT(eprca_ratio, phantom_ratio);
}

TEST(ComparisonTest, PhantomDrainsQueueEprcaOscillates) {
  // Phantom's u < 1 target drains the queue in steady state; EPRCA's
  // threshold feedback keeps the queue bouncing around QT.
  auto steady_queue = [](Algorithm alg) {
    Simulator sim;
    Bottleneck b{sim, alg, 5};
    sim.run_until(Time::ms(500));
    return b.net.dest_port(b.dest).queue_length();
  };
  EXPECT_LT(steady_queue(Algorithm::kPhantom), 30u);
  EXPECT_GT(steady_queue(Algorithm::kEprca), 30u);
}

}  // namespace
}  // namespace phantom::exp
