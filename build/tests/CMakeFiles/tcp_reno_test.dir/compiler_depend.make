# Empty compiler generated dependencies file for tcp_reno_test.
# This may be replaced when dependencies are built.
