# Empty compiler generated dependencies file for bench_fig_vegas.
# This may be replaced when dependencies are built.
